(* arksim — drive the transkernel simulation from the command line.

     arksim run [--mode native|ark|mid|baseline] [--tier ark|superblock]
                [--cache-dir DIR] [--cycles N]
                [--kernel v3.16|v4.4|v4.9|v4.20] [--sleep-ms N]
                [--glitch-every N] [--resume-native] [--m3-cache KB]
                [--timeseries FILE] [--sample-every NS] [--manifest FILE]
                [-v]
     arksim report --baseline A --candidate B [--tolerance PCT]
                [--only k1,k2]         diff two manifests / BENCH files
     arksim sweep --kind stress|fuzz|whatif [--tasks N] [--jobs J]
                [--seed S] [--out FILE]  parallel campaign; same --seed
                                       gives the same digest at any -j
     arksim fleet --devices N [--arrival poisson|bursty|diurnal]
                [--jobs J] [--seed S] [--duration-ms D] [--gap-ms G]
                [--shard-cap C] [--reversed] [--out FILE]
                                       sharded device population over
                                       snapshotable worlds; the fleet
                                       digest is invariant under -j
     arksim compare [--cycles N]       native vs ARK side by side
     arksim disasm SYMBOL              show a kernel function and its
                                       ARK translation
     arksim info                       platform, ABI and image inventory
*)

open Cmdliner
open Tk_harness
module Translator = Tk_dbt.Translator
module Power = Tk_energy.Power_model
module Soc = Tk_machine.Soc

let layout_of_string = function
  | "v3.16" -> Ok Tk_kernel.Variants.v3_16
  | "v4.4" -> Ok Tk_kernel.Layout.v4_4
  | "v4.9" -> Ok Tk_kernel.Variants.v4_9
  | "v4.20" -> Ok Tk_kernel.Variants.v4_20
  | s -> Error (`Msg ("unknown kernel version " ^ s))

let layout_conv =
  Arg.conv
    ( layout_of_string,
      fun ppf (l : Tk_kernel.Layout.t) ->
        Format.pp_print_string ppf l.Tk_kernel.Layout.version )

let mode_conv =
  Arg.conv
    ( (function
      | "native" -> Ok `Native
      | "ark" -> Ok (`Dbt Translator.Ark)
      | "mid" -> Ok (`Dbt Translator.Mid)
      | "baseline" -> Ok (`Dbt Translator.Baseline)
      | s -> Error (`Msg ("unknown mode " ^ s))),
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with
          | `Native -> "native"
          | `Dbt Translator.Ark -> "ark"
          | `Dbt Translator.Mid -> "mid"
          | `Dbt Translator.Baseline -> "baseline") )

(* -------------------------------- run -------------------------------- *)

module Trace = Tk_stats.Trace

(* render phase-marker codes (Hyper.phase_mark payloads plus the
   runners' 900/901 sleep markers) for the per-phase summary table *)
let phase_name devices code =
  let open Tk_kernel.Hyper in
  if code = ph_suspend_begin then "suspend_begin"
  else if code = ph_suspend_end then "suspend_end"
  else if code = ph_resume_begin then "resume_begin"
  else if code = ph_resume_end then "resume_end"
  else if code = 900 then "sleep_begin"
  else if code = 901 then "sleep_end"
  else if code >= ph_dev_mark then begin
    let i = (code - ph_dev_mark) / 10 in
    let k = (code - ph_dev_mark) mod 10 in
    let dev =
      match List.nth_opt devices i with
      | Some d -> d
      | None -> Printf.sprintf "dev%d" i
    in
    let what =
      match k with
      | 0 -> "suspend.b"
      | 1 -> "suspend.e"
      | 2 -> "resume.b"
      | 3 -> "resume.e"
      | _ -> string_of_int k
    in
    dev ^ ":" ^ what
  end
  else string_of_int code

(* enable the flight recorder if any tracing option was given; returns
   whether it is on. Called after boot so the trace covers only the
   benchmark cycles. *)
let trace_setup tr ~trace_file ~trace_filter ~trace_cap =
  if trace_file = None && trace_filter = None && trace_cap = None then false
  else begin
    let filter =
      match trace_filter with
      | None -> None
      | Some s -> (
        match Trace.filter_of_names (String.split_on_char ',' s) with
        | Ok m -> Some m
        | Error n ->
          Printf.eprintf "unknown trace event kind: %s\n" n;
          exit 2)
    in
    Trace.enable ?cap:trace_cap ?filter tr;
    true
  end

let trace_finish tr ~trace_file ~devices =
  (match trace_file with
  | Some f ->
    let oc = open_out f in
    Trace.dump_jsonl oc tr;
    close_out oc;
    Printf.printf "trace: %d events (of %d recorded) -> %s\n"
      (Trace.retained tr) tr.Trace.total f
  | None -> ());
  Trace.summary ~phase_name:(phase_name devices) tr

(* causal span tracer: on when either export was requested. Enabled
   after boot, like the flight recorder, so the causal trees cover only
   the benchmark cycles. *)
let spans_setup (soc : Soc.t) ~spans_file ~perfetto_file =
  if spans_file <> None || perfetto_file <> None then
    Tk_stats.Span.enable soc.Soc.spans

let spans_finish (soc : Soc.t) ~spans_file ~perfetto_file =
  let sp = soc.Soc.spans in
  if sp.Tk_stats.Span.enabled then begin
    (match spans_file with
    | Some f ->
      let oc = open_out f in
      Tk_stats.Span.dump_jsonl oc sp;
      close_out oc;
      Printf.printf "spans: %d recorded (%d dropped) -> %s\n"
        (Tk_stats.Span.spans sp) (Tk_stats.Span.dropped sp) f
    | None -> ());
    (match perfetto_file with
    | Some f ->
      let oc = open_out f in
      let ts = soc.Soc.sampler in
      Tk_stats.Span.dump_perfetto
        ?timeseries:(if ts.Tk_stats.Timeseries.enabled then Some ts else None)
        oc sp;
      close_out oc;
      Printf.printf
        "perfetto trace -> %s (load in ui.perfetto.dev or chrome://tracing)\n"
        f
    | None -> ());
    Tk_stats.Span.summary sp
  end

let print_profile (e : Tk_dbt.Engine.t) =
  let rows = Tk_dbt.Engine.profile_blocks e in
  let top = List.filteri (fun i _ -> i < 24) rows in
  Tk_stats.Report.table ~title:"DBT hot blocks (top 24 by executions)"
    ~header:
      [ "guest_pc"; "host"; "execs"; "dispatch"; "chain_hit"; "g_insts";
        "h_words" ]
    (List.map
       (fun (bp : Tk_dbt.Engine.block_profile) ->
         [ Printf.sprintf "0x%x" bp.Tk_dbt.Engine.bp_guest;
           Printf.sprintf "0x%x" bp.Tk_dbt.Engine.bp_host;
           string_of_int bp.Tk_dbt.Engine.bp_execs;
           string_of_int bp.Tk_dbt.Engine.bp_dispatches;
           Tk_stats.Report.pct (Tk_dbt.Engine.chain_rate bp);
           string_of_int bp.Tk_dbt.Engine.bp_guest_insts;
           string_of_int bp.Tk_dbt.Engine.bp_host_words ])
       top)

(* ----------------------------- telemetry ----------------------------- *)

module Ts = Tk_stats.Timeseries
module Attribution = Tk_energy.Attribution
module Manifest = Run_manifest

(* phase 0 is everything sampled before the first phase mark *)
let tel_phase_name devices code =
  if code = 0 then "setup" else phase_name devices code

(* The sampler is enabled when any telemetry output was requested; the
   ledger and manifest are then derived from the sampled window itself
   (first-to-last retained row), so a wrapped ring still reconciles. *)
let telemetry_on ~ts_file ~manifest_file ~sample_every =
  ts_file <> None || manifest_file <> None || sample_every <> None

let telemetry_setup (soc : Soc.t) ~ts_file ~manifest_file ~sample_every =
  if telemetry_on ~ts_file ~manifest_file ~sample_every then
    Ts.enable ?period_ns:sample_every soc.Soc.sampler

(* window activity of the active core, reconstructed from the sampler's
   own first/last rows (the ledger integrates exactly this window) *)
let window_delta ts ~active first last =
  let g name r =
    match Ts.col_index ts name with
    | Some i -> r.(i)
    | None -> 0
  in
  let d name = g (active ^ "_" ^ name) last - g (active ^ "_" ^ name) first in
  ( { Tk_machine.Core.a_busy_cycles = d "busy_cy"; a_busy_ps = d "busy_ps";
      a_idle_ps = d "idle_ps"; a_instructions = d "instrs";
      a_cache_misses = d "miss"; a_rd_bytes = d "rd_bytes";
      a_wr_bytes = d "wr_bytes" },
    ( g "dma_rd_bytes" last - g "dma_rd_bytes" first,
      g "dma_wr_bytes" last - g "dma_wr_bytes" first ) )

let telemetry_finish (soc : Soc.t) ~active ~params ~devices ~variant ~kernel
    ~cycles ~wall_s ~ts_file ~manifest_file =
  let ts = soc.Soc.sampler in
  (* close the window with a final forced row *)
  Ts.sample_now ts;
  let rows = Ts.rows ts in
  let n = Array.length rows in
  if n < 2 then begin
    Printf.eprintf "telemetry: no samples recorded\n";
    1
  end
  else begin
    let first = rows.(0) and last = rows.(n - 1) in
    let act, dma = window_delta ts ~active first last in
    let model = Power.of_activity ~params ~act ~dma_bytes:dma () in
    let ledger =
      Attribution.integrate ts
        ~cores:[ ("a9", Soc.a9_params); ("m3", Soc.m3_params) ]
        ~active
    in
    (* per-phase energy table (active core), Figure-6-style *)
    Tk_stats.Report.table
      ~title:
        (Printf.sprintf "energy attribution (%s core, %d epochs)" active
           ledger.Attribution.l_epochs)
      ~header:[ "phase"; "core_busy"; "core_idle"; "dram"; "io"; "total" ]
      (List.map
         (fun ph ->
           let cells = Attribution.phase_breakdown ledger ph in
           let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 cells in
           tel_phase_name devices ph
           :: List.map (fun (_, v) -> Tk_stats.Report.mj v) cells
           @ [ Tk_stats.Report.mj total ])
         (Attribution.phases ledger));
    (* ledger vs the scalar model, the 0.1% reconciliation bar *)
    let checks = Attribution.reconcile ledger model in
    Tk_stats.Report.table ~title:"ledger vs power model"
      ~header:[ "component"; "ledger"; "model"; "rel_err" ]
      (List.map
         (fun (k : Attribution.check) ->
           [ k.Attribution.k_comp;
             Tk_stats.Report.mj k.Attribution.k_ledger_uj;
             Tk_stats.Report.mj k.Attribution.k_model_uj;
             Printf.sprintf "%.5f%%" (k.Attribution.k_rel_err *. 100.) ])
         checks);
    let worst = Attribution.max_rel_err checks in
    Printf.printf "reconciliation: worst component error %.5f%% (%s)\n"
      (worst *. 100.)
      (if worst <= 0.001 then "ok" else "EXCEEDS 0.1% BAR");
    (* raw series export *)
    (match ts_file with
    | None -> ()
    | Some f ->
      let oc = open_out f in
      if Filename.check_suffix f ".csv" then Ts.to_csv oc ts
      else Ts.to_jsonl oc ts;
      close_out oc;
      Printf.printf "timeseries: %d rows (%d dropped) -> %s\n"
        (Ts.retained ts) (Ts.dropped ts) f);
    (* manifest *)
    (match manifest_file with
    | None -> ()
    | Some f ->
      let open Manifest in
      let counters =
        (* every wired gauge becomes a window-delta counter *)
        let labels = Ts.labels ts in
        Obj
          (List.filter_map
             (fun i ->
               let name = labels.(i) in
               if name = "t_ns" || name = "phase" then None
               else Some (name, Int (last.(i) - first.(i))))
             (List.init (Array.length labels) Fun.id))
      in
      let comp_obj =
        Obj
          (List.map
             (fun c -> (c, Num (Attribution.component_total ledger c)))
             Attribution.components
          @ [ ("total", Num (Attribution.active_total ledger)) ])
      in
      let phase_obj =
        Obj
          (List.map
             (fun ph ->
               ( tel_phase_name devices ph,
                 Obj
                   (List.map
                      (fun (c, v) -> (c, Num v))
                      (Attribution.phase_breakdown ledger ph)) ))
             (Attribution.phases ledger))
      in
      let metrics =
        Obj
          [ ("busy_ms", Num model.Power.busy_ms);
            ("idle_ms", Num model.Power.idle_ms);
            ("window_ns", Int (ledger.Attribution.l_t1_ns
                               - ledger.Attribution.l_t0_ns));
            ("energy_uj", comp_obj); ("phase_energy_uj", phase_obj);
            ( "sampler",
              Obj
                [ ("rows", Int (Ts.retained ts));
                  ("epochs", Int ledger.Attribution.l_epochs);
                  ("dropped", Int (Ts.dropped ts));
                  ("period_ns", Int ts.Ts.period_ns) ] ) ]
      in
      let host =
        Obj
          [ ("wall_s", Num wall_s);
            ( "sim_mips",
              Num
                (if wall_s <= 0.0 then 0.0
                 else
                   float_of_int act.Tk_machine.Core.a_instructions
                   /. wall_s /. 1e6) ) ]
      in
      let doc =
        make ~variant ~kernel ~cycles ~metrics ~counters ~host ()
      in
      write_file f doc;
      Printf.printf "manifest -> %s\n" f);
    if worst <= 0.001 then 0 else 1
  end

let summarize label (core : Tk_machine.Core.t) params warns =
  let act = Tk_machine.Core.activity core in
  let e = Power.of_activity ~params ~act () in
  Printf.printf
    "%s: busy %.2f ms, idle %.2f ms, %d instructions, %.2f mJ system \
     energy, %d WARNs\n"
    label
    (float_of_int act.Tk_machine.Core.a_busy_ps /. 1e9)
    (float_of_int act.Tk_machine.Core.a_idle_ps /. 1e9)
    act.Tk_machine.Core.a_instructions
    (Power.total e /. 1000.)
    warns

let run_cmd mode tier cache_dir cycles layout sleep_ms glitch_every
    resume_native m3_cache certify_traces elide_smc quantum concurrent
    trace_file trace_filter trace_cap profile ts_file sample_every
    manifest_file spans_file perfetto_file verbose =
  let kernel = layout.Tk_kernel.Layout.version in
  let telemetry = telemetry_on ~ts_file ~manifest_file ~sample_every in
  let superblock = tier = `Superblock in
  if (superblock || cache_dir <> None) && mode <> `Dbt Translator.Ark then begin
    Printf.eprintf
      "run: --tier superblock and --cache-dir require --mode ark\n";
    exit 2
  end;
  if (certify_traces || elide_smc) && not superblock then begin
    Printf.eprintf
      "run: --certify-traces and --elide-smc-probes require --tier \
       superblock\n";
    exit 2
  end;
  if quantum < 0 then begin
    Printf.eprintf "run: --quantum must be >= 0\n";
    exit 2
  end;
  if concurrent <> `Off && (mode = `Native || resume_native) then begin
    Printf.eprintf
      "run: --concurrent-cores requires an offloaded mode without \
       --resume-native\n";
    exit 2
  end;
  match mode with
  | `Native ->
    let nat = Native_run.create ~layout ~sleep_ms () in
    let soc = nat.Native_run.plat.Tk_drivers.Platform.soc in
    let tr = Native_run.trace nat in
    let tracing = trace_setup tr ~trace_file ~trace_filter ~trace_cap in
    telemetry_setup soc ~ts_file ~manifest_file ~sample_every;
    spans_setup soc ~spans_file ~perfetto_file;
    let wall0 = Unix.gettimeofday () in
    for i = 1 to cycles do
      ignore (Native_run.suspend_resume_cycle nat);
      if verbose then Printf.printf "cycle %d done\n%!" i
    done;
    let wall_s = Unix.gettimeofday () -. wall0 in
    summarize "native" soc.Soc.cpu Soc.a9_params
      (List.length nat.Native_run.warns);
    if tracing then
      trace_finish tr ~trace_file ~devices:nat.Native_run.devices;
    spans_finish soc ~spans_file ~perfetto_file;
    if telemetry then
      telemetry_finish soc ~active:"a9" ~params:Soc.a9_params
        ~devices:nat.Native_run.devices ~variant:"native" ~kernel ~cycles
        ~wall_s ~ts_file ~manifest_file
    else 0
  | `Dbt dbt_mode ->
    let ark =
      Ark_run.create ~layout ~mode:dbt_mode ~superblock ?cache_dir ~sleep_ms
        ?m3_cache_kb:m3_cache ()
    in
    let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
    let tr = Ark_run.trace ark in
    let tracing = trace_setup tr ~trace_file ~trace_filter ~trace_cap in
    telemetry_setup soc ~ts_file ~manifest_file ~sample_every;
    spans_setup soc ~spans_file ~perfetto_file;
    let e = ark.Ark_run.ark.Transkernel.Ark.engine in
    if profile then e.Tk_dbt.Engine.profile <- true;
    if certify_traces || elide_smc then begin
      let built = (Ark_run.plat ark).Tk_drivers.Platform.built in
      let image = built.Tk_kernel.Image.image in
      if certify_traces then
        e.Tk_dbt.Engine.sb_certify <-
          Some
            (Tk_analysis.Certify.admit
               ~read_guest:(Tk_analysis.Certify.read_guest_of_image image)
               ~classify_target:e.Tk_dbt.Engine.classify_target
               ~block_limit:e.Tk_dbt.Engine.block_limit ());
      if elide_smc then begin
        let r = Tk_analysis.Absint.analyze (Tk_analysis.Cfg.build image) in
        Tk_dbt.Engine.set_smc_map e r.Tk_analysis.Absint.a_clean_ranges
      end
    end;
    ark.Ark_run.quantum <- quantum;
    let wifi = Tk_drivers.Platform.device (Ark_run.plat ark) "wifi" in
    let wall0 = Unix.gettimeofday () in
    for i = 1 to cycles do
      if glitch_every > 0 && i mod glitch_every = 0 then
        wifi.Tk_drivers.Device.glitch_next_resume <- true;
      let r =
        match concurrent with
        | `Off -> Ark_run.suspend_resume_cycle ~resume_native ark
        | `Interleave -> Ark_run.concurrent_cycle ark
        | `Domains -> Ark_run.concurrent_cycle ~domains:true ark
      in
      if verbose then
        Printf.printf "cycle %d: %s\n%!" i
          (match r with `Ok -> "ok" | `Fell_back r -> "fell back: " ^ r)
    done;
    let wall_s = Unix.gettimeofday () -. wall0 in
    summarize "offloaded" soc.Soc.m3 Soc.m3_params
      (List.length ark.Ark_run.nat.Native_run.warns);
    if quantum > 0 || concurrent <> `Off then
      Printf.printf
        "lockstep: %d round(s), %d barrier commit(s), max skew %d ns\n"
        ark.Ark_run.ls_rounds ark.Ark_run.ls_commits ark.Ark_run.ls_max_skew_ns;
    Printf.printf
      "DBT: %d blocks, %d guest -> %d host instructions, %d engine exits, \
       %d fallbacks\n"
      e.Tk_dbt.Engine.blocks e.Tk_dbt.Engine.guest_translated
      e.Tk_dbt.Engine.host_emitted e.Tk_dbt.Engine.engine_exits
      (List.length ark.Ark_run.fallbacks);
    if superblock then begin
      Printf.printf
        "superblock: %d traces, %d fusions, %d warm hits, \
         %d invalidations, %d flushes\n"
        e.Tk_dbt.Engine.traces_formed e.Tk_dbt.Engine.fusions_applied
        e.Tk_dbt.Engine.cache_warm_hits e.Tk_dbt.Engine.invalidations
        e.Tk_dbt.Engine.flushes;
      if certify_traces then
        Printf.printf "certifier: %d plan(s) rejected\n"
          e.Tk_dbt.Engine.certify_rejects;
      if elide_smc then
        Printf.printf "smc-clean map: %d probe(s) elided\n"
          e.Tk_dbt.Engine.probes_elided
    end;
    if cache_dir <> None then Ark_run.save_cache ark;
    if tracing then
      trace_finish tr ~trace_file
        ~devices:ark.Ark_run.nat.Native_run.devices;
    spans_finish soc ~spans_file ~perfetto_file;
    if profile then print_profile e;
    let variant =
      if superblock then "superblock"
      else
        match dbt_mode with
        | Translator.Ark -> "ark"
        | Translator.Mid -> "mid"
        | Translator.Baseline -> "baseline"
    in
    if telemetry then
      telemetry_finish soc ~active:"m3" ~params:Soc.m3_params
        ~devices:ark.Ark_run.nat.Native_run.devices ~variant ~kernel ~cycles
        ~wall_s ~ts_file ~manifest_file
    else 0

(* ------------------------------ report ------------------------------- *)

(* exit codes: 0 within tolerance, 1 regression (or gated key missing),
   2 parse/usage error *)
let report_cmd baseline candidate tolerance only =
  let only =
    match only with
    | None -> []
    | Some s ->
      List.filter (fun s -> s <> "") (String.split_on_char ',' s)
  in
  match
    Manifest.compare_manifests ~baseline ~candidate ~only
      ~tolerance_pct:tolerance
  with
  | exception Manifest.Parse_error msg ->
    Printf.eprintf "report: parse error: %s\n" msg;
    2
  | exception Sys_error msg ->
    Printf.eprintf "report: %s\n" msg;
    2
  | verdicts, missing ->
    if verdicts = [] && missing = [] then begin
      Printf.eprintf "report: no metrics selected\n";
      2
    end
    else begin
      Tk_stats.Report.table
        ~title:
          (Printf.sprintf "%s -> %s (tolerance %.1f%%)"
             (Filename.basename baseline)
             (Filename.basename candidate)
             tolerance)
        ~header:[ "metric"; "baseline"; "candidate"; "delta"; "verdict" ]
        (List.map
           (fun (v : Manifest.verdict) ->
             [ v.Manifest.v_key;
               Printf.sprintf "%.4g" v.Manifest.v_base;
               Printf.sprintf "%.4g" v.Manifest.v_cand;
               Printf.sprintf "%+.2f%%" v.Manifest.v_delta_pct;
               (if v.Manifest.v_regressed then "REGRESSED" else "ok") ])
           verdicts);
      List.iter
        (fun k -> Printf.printf "missing from candidate: %s\n" k)
        missing;
      let nreg =
        List.length (List.filter (fun v -> v.Manifest.v_regressed) verdicts)
      in
      Printf.printf "report: %d metric(s), %d regression(s), %d missing\n"
        (List.length verdicts) nreg (List.length missing);
      if nreg > 0 || missing <> [] then 1 else 0
    end

(* ------------------------------- sweep ------------------------------- *)

module Campaign = Tk_campaign.Campaign

(* exit codes: 0 clean, 1 any task error or fuzz divergence *)
let sweep_cmd kind tasks jobs seed out =
  let cfg =
    { (Campaign.default_config kind) with Campaign.tasks; jobs; seed }
  in
  let t = Campaign.run cfg in
  Campaign.print_summary t;
  (match out with
  | None -> ()
  | Some f ->
    Campaign.write_file f t;
    Printf.printf "campaign -> %s\n" f);
  if Campaign.failed t then begin
    (match Campaign.first_error t with
    | Some (i, msg) -> Printf.eprintf "sweep: task %d failed: %s\n" i msg
    | None -> Printf.eprintf "sweep: fuzz divergence\n");
    1
  end
  else 0

(* ------------------------------- fleet ------------------------------- *)

module Fleet = Tk_fleet.Fleet
module Arrival = Tk_fleet.Arrival

(* exit codes: 0 clean, 1 any shard error (first one is named) *)
let fleet_cmd devices arrival jobs seed duration_ms gap_ms shard_cap reversed
    quantum out =
  let cfg =
    { Fleet.default_config with
      Fleet.devices; arrival; jobs; seed; duration_ms;
      mean_gap_ms = gap_ms; shard_cap; quantum;
      schedule = (if reversed then Fleet.Reversed else Fleet.Chrono) }
  in
  let t = Fleet.run cfg in
  Fleet.print_summary t;
  (match out with
  | None -> ()
  | Some f ->
    Fleet.write_file f t;
    Printf.printf "fleet -> %s\n" f);
  if Fleet.failed t then begin
    (match Fleet.first_error t with
    | Some (i, msg) -> Printf.eprintf "fleet: shard %d failed: %s\n" i msg
    | None -> ());
    1
  end
  else 0

(* ------------------------------ compare ------------------------------ *)

let compare_cmd cycles =
  let nat = Native_run.create () in
  let ark = Ark_run.create () in
  for _ = 1 to cycles do
    ignore (Native_run.suspend_resume_cycle nat);
    ignore (Ark_run.suspend_resume_cycle ark)
  done;
  summarize "native   " nat.Native_run.plat.Tk_drivers.Platform.soc.Soc.cpu
    Soc.a9_params
    (List.length nat.Native_run.warns);
  summarize "offloaded" (Ark_run.plat ark).Tk_drivers.Platform.soc.Soc.m3
    Soc.m3_params
    (List.length ark.Ark_run.nat.Native_run.warns);
  let same =
    Native_run.device_states nat = Native_run.device_states ark.Ark_run.nat
  in
  Printf.printf "kernel end states agree: %b\n" same;
  0

(* ------------------------------ disasm ------------------------------- *)

let disasm_cmd symbol =
  let plat = Tk_drivers.Platform.create () in
  let image = plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  match Tk_isa.Asm.symbol_opt image symbol with
  | None ->
    Printf.eprintf "no such kernel symbol: %s\n" symbol;
    1
  | Some addr ->
    let soc = plat.Tk_drivers.Platform.soc in
    Printf.printf "guest %s @ 0x%x:\n" symbol addr;
    let stop = ref false in
    let a = ref addr in
    while not !stop do
      let w = Tk_machine.Mem.ram_read soc.Soc.mem !a 4 in
      let i = Tk_isa.V7a.decode w in
      Printf.printf "  %08x: %s\n" !a (Tk_isa.Types.to_string i);
      (match i.Tk_isa.Types.op with
      | Tk_isa.Types.Ldm (_, _, regs) when List.mem Tk_isa.Types.pc regs ->
        stop := true
      | Tk_isa.Types.Bx _ when i.Tk_isa.Types.cond = Tk_isa.Types.AL ->
        stop := true
      | _ -> ());
      a := !a + 4;
      if !a - addr > 400 then stop := true
    done;
    (* and its ARK translation *)
    let man = Ark_run.build_manifest plat in
    let engine = Tk_dbt.Engine.create ~soc ~mode:Translator.Ark () in
    engine.Tk_dbt.Engine.classify_target <-
      (fun a ->
        match man.Transkernel.Manifest.abi_name_of a with
        | Some n when List.mem n Transkernel.Ark.emulated_services ->
          Translator.T_emu n
        | Some n when List.mem n Transkernel.Ark.hooked_services ->
          Translator.T_hook n
        | _ -> Translator.T_normal);
    let h = Tk_dbt.Engine.entry_host engine addr in
    Printf.printf "\nARK translation (first block) @ code cache 0x%x:\n" h;
    let stop = ref false in
    let a = ref h in
    while not !stop do
      if !a >= engine.Tk_dbt.Engine.cursor then stop := true
      else begin
        let w = Tk_machine.Mem.ram_read soc.Soc.mem !a 4 in
        (try
           Printf.printf "  %08x: %s\n" !a
             (Tk_isa.Types.to_string ~wide:true (Tk_isa.V7m.decode w))
         with _ -> Printf.printf "  %08x: .word 0x%08x\n" !a w);
        a := !a + 4
      end
    done;
    0

(* ------------------------------ analyze ------------------------------ *)

module Finding = Tk_analysis.Finding
module Rule_check = Tk_analysis.Rule_check
module Image_lint = Tk_analysis.Image_lint
module Abi_check = Tk_analysis.Abi_check
module Cfg = Tk_analysis.Cfg
module Certify = Tk_analysis.Certify
module Absint = Tk_analysis.Absint

(* the same call-target classification ARK installs in the engine
   (Ark.classify_of_man), rebuilt from the linked image's resolved ABI:
   the offline certifier must translate exactly what the engine would *)
let classify_of_built (built : Tk_kernel.Image.built) =
  let abi = built.Tk_kernel.Image.abi in
  fun a ->
    match abi.Tk_kernel.Kabi.name_of_addr a with
    | Some n when List.mem n Transkernel.Ark.emulated_services ->
      Translator.T_emu n
    | Some n when List.mem n Transkernel.Ark.hooked_services ->
      Translator.T_hook n
    | Some n when List.mem n Tk_kernel.Kabi.cold -> Translator.T_cold n
    | Some _ | None -> Translator.T_normal

(* [--image] accepts a kernel version or "all" (the default: the static
   gate must hold on every variant ARK claims to run unmodified) *)
let variant_conv =
  Arg.conv
    ( (function
      | "all" -> Ok `All
      | s -> Result.map (fun l -> `One l) (layout_of_string s)),
      fun ppf v ->
        Format.pp_print_string ppf
          (match v with
          | `All -> "all"
          | `One (l : Tk_kernel.Layout.t) -> l.Tk_kernel.Layout.version) )

let analyze_cmd image_sel rules abi cfg certify absint json =
  let run_all = not (rules || abi || cfg || certify || absint) in
  let tagged : (string * Finding.t) list ref = ref [] in
  let collect image fs =
    tagged := !tagged @ List.map (fun f -> (image, f)) fs
  in
  if rules || run_all then begin
    let r = Rule_check.validate () in
    Rule_check.print_stats r;
    collect "-" r.Rule_check.findings
  end;
  let layouts =
    match image_sel with `All -> Tk_kernel.Variants.all | `One l -> [ l ]
  in
  if abi || cfg || certify || absint || run_all then
    List.iter
      (fun (lay : Tk_kernel.Layout.t) ->
        let version = lay.Tk_kernel.Layout.version in
        Printf.printf "\n===== kernel %s =====\n" version;
        let built = Tk_drivers.Platform.build_image ~layout:lay () in
        let image = built.Tk_kernel.Image.image in
        if cfg || run_all then begin
          let r = Image_lint.lint image in
          Image_lint.print_report r;
          collect version r.Image_lint.findings
        end;
        if abi || run_all then begin
          let r = Abi_check.check image in
          Abi_check.print_report r;
          collect version r.Abi_check.findings
        end;
        if absint || run_all then begin
          let r = Absint.analyze (Cfg.build image) in
          Absint.print_report r;
          collect version r.Absint.findings
        end;
        (* opt-in: differentially executes every formable trace plan *)
        if certify then begin
          let r =
            Certify.certify_image ~classify_target:(classify_of_built built)
              image
          in
          Certify.print_report r;
          collect version r.Certify.findings
        end)
      layouts;
  let findings = List.map snd !tagged in
  Finding.print_table findings;
  (match json with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    List.iter
      (fun (image, f) ->
        output_string oc (Finding.to_json ~extra:[ ("image", image) ] f);
        output_char oc '\n')
      !tagged;
    close_out oc;
    Printf.printf "findings: %d records -> %s\n" (List.length !tagged) file);
  let nerr = List.length (Finding.errors findings) in
  Printf.printf "\nanalyze: %d error(s), %d warning(s), %d finding(s) total\n"
    nerr
    (List.length (Finding.warnings findings))
    (List.length findings);
  if nerr > 0 then 1 else 0

(* ------------------------------- info -------------------------------- *)

let info_cmd () =
  let b = Tk_drivers.Platform.build_image () in
  Printf.printf "platform: OMAP4460 model — %s + %s\n"
    Soc.a9_params.Tk_machine.Core.cname Soc.m3_params.Tk_machine.Core.cname;
  Printf.printf "kernel image: %d instructions, %d fragments, %d devices\n"
    (Tk_kernel.Image.instructions b)
    (List.length b.Tk_kernel.Image.image.Tk_isa.Asm.frag_sizes)
    (List.length Tk_drivers.Platform.registration_order);
  Printf.printf "devices: %s\n"
    (String.concat ", " Tk_drivers.Platform.registration_order);
  Printf.printf "stable kernel ABI (Table 2): %s + jiffies\n"
    (String.concat ", "
       (List.filter (fun s -> s <> "jiffies") Tk_kernel.Kabi.table2));
  Printf.printf "kernel variants: %s\n"
    (String.concat ", "
       (List.map
          (fun (l : Tk_kernel.Layout.t) -> l.Tk_kernel.Layout.version)
          Tk_kernel.Variants.all));
  0

(* ----------------------------- cmdliner ------------------------------ *)

let mode_arg =
  Arg.(value & opt mode_conv (`Dbt Translator.Ark)
       & info [ "mode" ] ~docv:"MODE" ~doc:"native, ark, mid or baseline.")

let tier_arg =
  Arg.(value
       & opt (enum [ ("ark", `Ark); ("superblock", `Superblock) ]) `Ark
       & info [ "tier" ] ~docv:"TIER"
           ~doc:"DBT optimization tier: ark (block-at-a-time, default) or \
                 superblock (hot-chain trace formation with macro-op \
                 fusion; requires --mode ark).")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persistent translation cache directory, keyed by the \
                 kernel image digest: load it before the run (warm \
                 start) and save it after. Requires --mode ark.")

let cycles_arg =
  Arg.(value & opt int 1 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to run.")

let layout_arg =
  Arg.(value & opt layout_conv Tk_kernel.Layout.v4_4
       & info [ "kernel" ] ~docv:"VER" ~doc:"Kernel release to build.")

let sleep_arg =
  Arg.(value & opt int 50
       & info [ "sleep-ms" ] ~docv:"MS" ~doc:"Deep-sleep time per cycle.")

let glitch_arg =
  Arg.(value & opt int 0
       & info [ "glitch-every" ] ~docv:"N"
           ~doc:"Wedge the WiFi firmware every Nth cycle (0 = never).")

let resume_native_arg =
  Arg.(value & flag
       & info [ "resume-native" ]
           ~doc:"Urgent wakeup: resume on the CPU instead of the \
                 peripheral core.")

let m3_cache_arg =
  Arg.(value & opt (some int) None
       & info [ "m3-cache" ] ~docv:"KB" ~doc:"Peripheral-core LLC size.")

let certify_traces_arg =
  Arg.(value & flag
       & info [ "certify-traces" ]
           ~doc:"Certify every superblock plan online at formation time \
                 (and every warm-loaded plan): a plan whose fused trace \
                 is not provably equivalent to its constituent blocks is \
                 rejected and the plain blocks kept. Requires --tier \
                 superblock.")

let elide_smc_arg =
  Arg.(value & flag
       & info [ "elide-smc-probes" ]
           ~doc:"Install the abstract-interpretation SMC-clean map \
                 before the run: image-window stores executed from \
                 provably clean guest code skip the per-word \
                 store-invalidation probe. Requires --tier superblock.")

let quantum_arg =
  Arg.(value & opt int 0
       & info [ "quantum" ] ~docv:"NS"
           ~doc:"Bounded-quantum lockstep scheduling: slice offloaded \
                 phases every $(docv) nanoseconds (0 = the sequential \
                 scheduler). Any quantum produces the same architectural \
                 results; --quantum 1 is CI-gated byte-identical to \
                 sequential.")

let concurrent_arg =
  Arg.(value
       & opt
           (enum
              [ ("off", `Off); ("interleave", `Interleave);
                ("domains", `Domains) ])
           `Off
       & info [ "concurrent-cores" ] ~docv:"HOW"
           ~doc:"Run each offloaded phase concurrently with an A9 guest \
                 CPU workload under the lockstep scheduler: interleave \
                 (deterministic, single host domain) or domains (one \
                 host domain per core; same results, better wall-clock).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record the flight recorder and write the events as \
                 JSONL to $(docv).")

let trace_filter_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-filter" ] ~docv:"KINDS"
           ~doc:"Comma-separated event kinds to record (retire, read, \
                 write, irq-raise, irq-deliver, power, translate, chain, \
                 invalidate, form, phase; groups: mem, irq, dbt, all).")

let trace_cap_arg =
  Arg.(value & opt (some int) None
       & info [ "trace-cap" ] ~docv:"N"
           ~doc:"Ring capacity in events (oldest events drop beyond it).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"DBT hot-block profile: per-block execution counts, \
                 dispatch entries and chain hit rate.")

let timeseries_arg =
  Arg.(value & opt (some string) None
       & info [ "timeseries" ] ~docv:"FILE"
           ~doc:"Sample cycle-domain telemetry and write the series to \
                 $(docv) (CSV when it ends in .csv, JSONL otherwise).")

let sample_every_arg =
  Arg.(value & opt (some int) None
       & info [ "sample-every" ] ~docv:"NS"
           ~doc:"Virtual-time sampling period in nanoseconds \
                 (default 100000; implies telemetry).")

let manifest_arg =
  Arg.(value & opt (some string) None
       & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Write a machine-readable run manifest (git rev, \
                 counters, per-phase energy, throughput) to $(docv).")

let spans_arg =
  Arg.(value & opt (some string) None
       & info [ "spans" ] ~docv:"FILE"
           ~doc:"Record causal wakeup spans and write them as JSONL to \
                 $(docv): one object per span with kind, core, interval \
                 and the attribution deltas (instructions, stall and \
                 translate cycles, fallbacks, energy).")

let perfetto_arg =
  Arg.(value & opt (some string) None
       & info [ "perfetto" ] ~docv:"FILE"
           ~doc:"Write the recorded spans as a Chrome trace-event JSON \
                 file loadable in ui.perfetto.dev or chrome://tracing, \
                 with one track per core and counter tracks from the \
                 telemetry sampler when it is on.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ])

let run_t =
  Term.(
    const run_cmd $ mode_arg $ tier_arg $ cache_dir_arg $ cycles_arg
    $ layout_arg $ sleep_arg $ glitch_arg $ resume_native_arg $ m3_cache_arg
    $ certify_traces_arg $ elide_smc_arg $ quantum_arg $ concurrent_arg
    $ trace_arg $ trace_filter_arg
    $ trace_cap_arg $ profile_arg $ timeseries_arg $ sample_every_arg
    $ manifest_arg $ spans_arg $ perfetto_arg $ verbose_arg)

let report_t =
  Term.(
    const report_cmd
    $ Arg.(required & opt (some string) None
           & info [ "baseline" ] ~docv:"FILE"
               ~doc:"Baseline manifest or BENCH json.")
    $ Arg.(required & opt (some string) None
           & info [ "candidate" ] ~docv:"FILE"
               ~doc:"Candidate manifest or BENCH json.")
    $ Arg.(value & opt float 15.0
           & info [ "tolerance" ] ~docv:"PCT"
               ~doc:"Allowed relative change per metric, percent.")
    $ Arg.(value & opt (some string) None
           & info [ "only" ] ~docv:"KEYS"
               ~doc:"Comma-separated dotted metric paths to gate on \
                     (suffix match); default: every shared numeric \
                     metric."))

let cmds =
  [ Cmd.v (Cmd.info "run" ~doc:"Run suspend/resume cycles.") run_t;
    Cmd.v
      (Cmd.info "report"
         ~doc:"Diff two run manifests (or BENCH files) with a tolerance \
               band. Exits 1 on any regression, 2 on parse errors.")
      report_t;
    Cmd.v
      (Cmd.info "sweep"
         ~doc:"Run a campaign of independent simulations on a pool of \
               domains. The campaign digest depends only on \
               (kind, seed, tasks) — never on $(b,--jobs). Exits 1 on \
               any task error or fuzz divergence.")
      Term.(
        const sweep_cmd
        $ Arg.(
            required
            & opt
                (some
                   (conv
                      ( (fun s ->
                          match Campaign.kind_of_string s with
                          | Some k -> Ok k
                          | None -> Error (`Msg ("unknown kind " ^ s))),
                        fun ppf k ->
                          Format.pp_print_string ppf (Campaign.kind_name k)
                      )))
                None
            & info [ "kind" ] ~docv:"KIND"
                ~doc:"Campaign kind: stress, fuzz or whatif.")
        $ Arg.(value & opt int 8
               & info [ "tasks" ] ~docv:"N" ~doc:"Independent tasks to run.")
        $ Arg.(value & opt int 1
               & info [ "jobs"; "j" ] ~docv:"J"
                   ~doc:"Worker domains (affects wall time only).")
        $ Arg.(value & opt int 1
               & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed.")
        $ Arg.(value & opt (some string) None
               & info [ "out" ] ~docv:"FILE"
                   ~doc:"Write the campaign JSON document to $(docv)."));
    Cmd.v
      (Cmd.info "fleet"
         ~doc:"Simulate a sharded population of device instances over \
               snapshotable SoC worlds, with percentile telemetry. The \
               fleet digest depends only on (devices, arrival, seed and \
               the simulation knobs) — never on $(b,--jobs) or instance \
               execution order. Exits 1 on any shard error.")
      Term.(
        const fleet_cmd
        $ Arg.(value & opt int Fleet.default_config.Fleet.devices
               & info [ "devices" ] ~docv:"N"
                   ~doc:"Population size (device instances).")
        $ Arg.(
            value
            & opt
                (conv
                   ( (fun s ->
                       match Arrival.kind_of_string s with
                       | Some k -> Ok k
                       | None -> Error (`Msg ("unknown arrival " ^ s))),
                     fun ppf k ->
                       Format.pp_print_string ppf (Arrival.kind_name k) ))
                Arrival.Poisson
            & info [ "arrival" ] ~docv:"KIND"
                ~doc:"Arrival trace: poisson, bursty or diurnal.")
        $ Arg.(value & opt int 1
               & info [ "jobs"; "j" ] ~docv:"J"
                   ~doc:"Worker domains (affects wall time only).")
        $ Arg.(value & opt int 1
               & info [ "seed" ] ~docv:"S" ~doc:"Fleet seed.")
        $ Arg.(value & opt int Fleet.default_config.Fleet.duration_ms
               & info [ "duration-ms" ] ~docv:"D"
                   ~doc:"Simulated span per instance.")
        $ Arg.(value & opt int Fleet.default_config.Fleet.mean_gap_ms
               & info [ "gap-ms" ] ~docv:"G" ~doc:"Mean arrival gap.")
        $ Arg.(value & opt int Fleet.default_config.Fleet.shard_cap
               & info [ "shard-cap" ] ~docv:"C"
                   ~doc:"Max instances per shard world.")
        $ Arg.(value & flag
               & info [ "reversed" ]
                   ~doc:"Run each shard's instances in reverse order \
                         (digest must not move; determinism check).")
        $ Arg.(value & opt int 0
               & info [ "quantum" ] ~docv:"NS"
                   ~doc:"Bounded-quantum lockstep slicing inside every \
                         shard world (0 = sequential). Digest-invisible \
                         like $(b,--jobs).")
        $ Arg.(value & opt (some string) None
               & info [ "out" ] ~docv:"FILE"
                   ~doc:"Write the fleet JSON document to $(docv)."));
    Cmd.v
      (Cmd.info "compare" ~doc:"Native vs offloaded, side by side.")
      Term.(const compare_cmd $ cycles_arg);
    Cmd.v
      (Cmd.info "disasm" ~doc:"Disassemble a kernel symbol and its \
                               translation.")
      Term.(
        const disasm_cmd
        $ Arg.(required & pos 0 (some string) None & info [] ~docv:"SYMBOL"));
    Cmd.v (Cmd.info "info" ~doc:"Platform and image inventory.")
      Term.(const info_cmd $ const ());
    Cmd.v
      (Cmd.info "analyze"
         ~doc:"Static verification: translation-rule validation, guest \
               image CFG lint, ABI conformance, SMC-clean abstract \
               interpretation and (opt-in) superblock trace \
               certification. Exits non-zero on any error-severity \
               finding.")
      Term.(
        const analyze_cmd
        $ Arg.(value & opt variant_conv `All
               & info [ "image" ] ~docv:"VER"
                   ~doc:"Kernel variant to analyze (or $(b,all)).")
        $ Arg.(value & flag
               & info [ "rules" ]
                   ~doc:"Differential state-grid validation of every \
                         translation rule in the Spec.")
        $ Arg.(value & flag
               & info [ "abi" ]
                   ~doc:"Table 2 ABI conformance over every bl site.")
        $ Arg.(value & flag
               & info [ "cfg" ]
                   ~doc:"Image CFG lint: dead code, fallback census, \
                         stack bound, indirect-call audit.")
        $ Arg.(value & flag
               & info [ "certify" ]
                   ~doc:"Symbolic trace certifier: differentially execute \
                         every superblock plan the engine can form on the \
                         image against the sequential composition of its \
                         constituent blocks (opt-in; not part of the \
                         default pass set).")
        $ Arg.(value & flag
               & info [ "absint" ]
                   ~doc:"Whole-image abstract interpretation: classify \
                         every store target and prove SMC-clean \
                         functions whose probes the superblock tier may \
                         elide.")
        $ Arg.(value & opt (some string) None
               & info [ "json" ] ~docv:"FILE"
                   ~doc:"Also write the findings as JSONL to $(docv).")) ]

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "arksim" ~version:"1.0"
             ~doc:"Transkernel (ATC'19) full-system simulation")
          cmds))
