(** Arrival-rate traces: when the next ephemeral task wakes a device.

    Each fleet instance draws its suspend-interval sequence from one of
    three generators, all pure functions of the instance's private PRNG
    (plus, for the diurnal shape, the instance's own simulated clock) —
    never of the host, the shard, or a sibling instance. That keeps the
    whole fleet digest a function of [(population, arrival, seed)]
    alone, whatever [--jobs] or execution order did. *)

type kind =
  | Poisson  (** memoryless: exponential inter-arrival gaps *)
  | Bursty
      (** two-state mix: short intra-burst gaps, long inter-burst ones *)
  | Diurnal
      (** exponential gaps whose mean swings sinusoidally with the
          instance's simulated time-of-day *)

let kind_name = function
  | Poisson -> "poisson"
  | Bursty -> "bursty"
  | Diurnal -> "diurnal"

let kind_of_string = function
  | "poisson" -> Some Poisson
  | "bursty" -> Some Bursty
  | "diurnal" -> Some Diurnal
  | _ -> None

let all = [ Poisson; Bursty; Diurnal ]

(* exponential draw with the given mean; U clamped away from 0 so the
   log is finite *)
let exp_draw rng ~mean =
  let u = max 1e-12 (Random.State.float rng 1.0) in
  -.mean *. log u

(* one simulated "day", scaled the way the rest of the simulator scales
   hardware latencies: long enough that a run sees the rate swing,
   short enough to fit a campaign *)
let diurnal_period_ns = 2_000_000_000

(** [gap_ns kind rng ~mean_gap_ms ~now_ns] — the next sleep interval in
    nanoseconds (at least 1 ms, so a cycle always makes progress). *)
let gap_ns kind rng ~mean_gap_ms ~now_ns =
  let mean = float_of_int mean_gap_ms in
  let ms =
    match kind with
    | Poisson -> exp_draw rng ~mean
    | Bursty ->
      (* 1-in-4 draws open a burst of tight wakeups; the rest are the
         long quiet gaps between bursts (same overall mean) *)
      if Random.State.int rng 4 = 0 then exp_draw rng ~mean:(mean /. 5.0)
      else exp_draw rng ~mean:(mean *. 1.2)
    | Diurnal ->
      let phase =
        2.0 *. Float.pi
        *. (float_of_int (now_ns mod diurnal_period_ns)
           /. float_of_int diurnal_period_ns)
      in
      (* mean swings x0.4 (busy hours) .. x1.6 (night) *)
      exp_draw rng ~mean:(mean *. (1.0 +. (0.6 *. sin phase)))
  in
  max 1_000_000 (int_of_float (ms *. 1e6))
