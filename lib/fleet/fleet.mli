(** Fleet-scale simulation: sharded device populations over snapshotable
    SoC worlds.

    A fleet run simulates many device {e instances} — phones on a rack,
    each an independent suspend/resume history — without paying a full
    boot per instance. Instances are grouped by hardware/kernel
    configuration into {e shards}; each shard boots one world, warms the
    DBT to a translation fixpoint, takes a {!Tk_machine.World} snapshot,
    and interleaves its instances by restoring that snapshot and running
    each instance's private arrival trace over it.

    {b The invariant:} the digested sections ([meta]/[shards]/
    [aggregate]) are a pure function of [(devices, arrival, seed,
    knobs)] — independent of [--jobs] {e and} of the order instances
    execute within a shard. Anything host- or order-dependent (wall
    time, jobs, world snapshot stats) lives in the undigested [host]
    section. *)

module J = Tk_harness.Run_manifest

val instance_rng : seed:int -> int -> Random.State.t
(** instance [i]'s private PRNG: [Random.State.make [| seed; i; tag |]] *)

(** One hardware/kernel configuration a slice of the population runs.
    Instances are assigned round-robin ([id mod length]), so every
    population size exercises every configuration. *)
type dconfig = {
  dc_name : string;
  dc_devices : string list;  (** registered subset, a "kernel config" *)
  dc_superblock : bool;  (** stack the trace tier on Ark mode *)
  dc_glitch_every : int;
      (** expected cycles between WiFi firmware glitches (0 = never);
          only meaningful when the mix includes "wifi" *)
}

val dconfigs : dconfig array
val config_of_instance : int -> int
(** index into {!dconfigs} for an instance id *)

(** Execution order of instances inside a shard. Digests must not
    depend on it; the knob exists so tests can prove instance isolation
    by running both ways. *)
type schedule = Chrono | Reversed

val schedule_name : schedule -> string

type config = {
  devices : int;  (** population size (instances) *)
  arrival : Arrival.kind;
  jobs : int;
  seed : int;
  duration_ms : int;  (** simulated span per instance *)
  mean_gap_ms : int;  (** mean arrival gap *)
  max_wakeups : int;  (** per-instance safety cap *)
  shard_cap : int;  (** max instances per shard (one world each) *)
  schedule : schedule;
  quantum : int;
      (** bounded-quantum lockstep slicing inside every shard world
          (0 = sequential); digest-invisible like [jobs] — it lives in
          the undigested [host] section *)
  chaos_fail : int option;
      (** fault injection: the given shard index raises instead of
          running (tests pin the error-propagation path with it) *)
}

val default_config : config

type shard = {
  sh_index : int;
  sh_config : int;  (** index into {!dconfigs} *)
  sh_ids : int list;  (** member instances, ascending *)
}

val plan : config -> shard list
(** group instances by configuration, then split each group at
    [shard_cap]; pure function of (devices, shard_cap) *)

val install_hooks : Tk_machine.World.t -> Tk_harness.Ark_run.t -> unit
(** register restore hooks for all the simulator state {!Tk_machine.World}
    doesn't own: device models, ARK contexts and scalars, counters, the
    native runner's mutables, the interpreter's register file *)

val warmup : Tk_harness.Ark_run.t -> dc:dconfig -> int
(** run suspend/resume cycles until the engine's translation state
    holds still for two consecutive cycles; returns cycles spent. For
    the superblock tier the formation threshold is dropped to 1 during
    warmup and parked at [max_int] after, freezing the shared cache. *)

val span_fields : (string * int) list
(** the fixed per-span-kind duration telemetry schema: fleet JSON field
    name -> {!Tk_stats.Span} kind. Each shard serializes one duration
    sketch per entry and the aggregate reports merged quantiles. *)

(** Everything a shard returns. [o_host] is the only section allowed to
    vary with execution order; it never enters the digest. *)
type shard_out = {
  o_metrics : J.json;
  o_counters : (string * int) list;
  o_host : (string * int) list;
}

type instance_row = {
  i_id : int;
  i_wakeups : int;
  i_fallbacks : int;
  i_energy_nj : int;
}

val run_instance :
  config -> dconfig -> Tk_harness.Ark_run.t -> lat:Tk_stats.Sketch.t ->
  pressure:Tk_stats.Sketch.t -> energy_sk:Tk_stats.Sketch.t -> id:int ->
  instance_row
(** run one instance's whole arrival trace over the restored snapshot;
    all figures are deltas against the post-restore state *)

val shard_task : built:Tk_kernel.Image.built -> config -> shard -> shard_out
(** boot one world for the shard's configuration, warm it, snapshot it,
    and interleave the member instances over the snapshot *)

type t = {
  config : config;
  doc : J.json;
  digest : string;
  wall_s : float;
  errors : (int * string) list;  (** (shard index, message) *)
}

val failed : t -> bool
val first_error : t -> (int * string) option

val run : config -> t
(** plan the shards, execute them on [config.jobs] domains, and
    assemble the fleet document; the kernel image is compiled once and
    shared (immutably) by every shard world *)

val write_file : string -> t -> unit

val counter : t -> string -> int
(** an aggregate counter out of the fleet document
    (e.g. ["fleet.wakeups"]); 0 when absent *)

val print_summary : t -> unit
(** collector-side human rendering (shard workers never print) *)
