(** Arrival-rate traces: when the next ephemeral task wakes a device.

    Each fleet instance draws its suspend-interval sequence from one of
    three generators, all pure functions of the instance's private PRNG
    (plus, for the diurnal shape, the instance's own simulated clock) —
    never of the host, the shard, or a sibling instance. That keeps the
    whole fleet digest a function of [(population, arrival, seed)]
    alone, whatever [--jobs] or execution order did. *)

type kind =
  | Poisson  (** memoryless: exponential inter-arrival gaps *)
  | Bursty
      (** two-state mix: short intra-burst gaps, long inter-burst ones *)
  | Diurnal
      (** exponential gaps whose mean swings sinusoidally with the
          instance's simulated time-of-day *)

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all : kind list

val gap_ns : kind -> Random.State.t -> mean_gap_ms:int -> now_ns:int -> int
(** the next sleep interval in nanoseconds (at least 1 ms, so a cycle
    always makes progress) *)
