(** Fleet-scale simulation: sharded device populations over snapshotable
    SoC worlds.

    A fleet run simulates thousands of device {e instances} — phones on
    a rack, each an independent suspend/resume history — without paying
    a full [Soc]+[Ark_run] boot per instance. Instances are grouped by
    hardware/kernel configuration into {e shards}; each shard boots one
    world, warms the DBT to a translation fixpoint, takes a
    {!Tk_machine.World} snapshot, and then interleaves its instances by
    [restore]-ing that snapshot and running each instance's private
    arrival trace over it. A shard is one {!Tk_campaign.Pool} task, so
    a fleet parallelizes across domains exactly like a campaign.

    {b The invariant, inherited from {!Tk_campaign.Campaign}:} the
    digested sections ([meta]/[shards]/[aggregate]) are a pure function
    of [(devices, arrival, seed, knobs)] — independent of [--jobs]
    {e and} of the order instances execute within a shard. Three
    mechanisms carry that:

    - instance [i] draws randomness only from
      [Random.State.make [| seed; i; 0xF1EE7 |]];
    - every instance starts from the same restored snapshot, and the
      only state shared across instances (the DBT code cache +
      translation maps) is frozen at a warmup fixpoint before the
      snapshot is taken;
    - all digested figures are integers (energy in nJ) folded through
      commutative sums and mergeable {!Tk_stats.Sketch} buckets.

    Anything host- or order-dependent (wall time, jobs, world snapshot
    stats — restore traffic depends on execution order) lives in the
    undigested [host] section. *)

open Tk_isa
open Tk_machine
open Tk_drivers
open Tk_harness
module Ark = Transkernel.Ark
module Engine = Tk_dbt.Engine
module Hyper = Tk_kernel.Hyper
module Power = Tk_energy.Power_model
module Sketch = Tk_stats.Sketch
module Counters = Tk_stats.Counters
module Pool = Tk_campaign.Pool
module J = Run_manifest

(* per-instance PRNG tag (see module doc) *)
let instance_tag = 0xF1EE7

let instance_rng ~seed i = Random.State.make [| seed; i; instance_tag |]

(* ----------------------- device configurations ----------------------- *)

(** One hardware/kernel configuration a slice of the population runs:
    registered device subset, DBT tier, firmware-glitch rate. Instances
    are assigned round-robin ([id mod length]), so every population size
    exercises every configuration. *)
type dconfig = {
  dc_name : string;
  dc_devices : string list;  (** registered subset, a "kernel config" *)
  dc_superblock : bool;  (** stack the trace tier on Ark mode *)
  dc_glitch_every : int;
      (** expected cycles between WiFi firmware glitches (0 = never);
          only meaningful when the mix includes "wifi" *)
}

let dconfigs =
  [| { dc_name = "full"; dc_devices = Platform.registration_order;
       dc_superblock = false; dc_glitch_every = 0 };
     { dc_name = "full-sb"; dc_devices = Platform.registration_order;
       dc_superblock = true; dc_glitch_every = 0 };
     { dc_name = "net"; dc_devices = [ "reg"; "usb"; "bt"; "wifi" ];
       dc_superblock = false; dc_glitch_every = 6 };
     { dc_name = "net-sb"; dc_devices = [ "reg"; "usb"; "bt"; "wifi" ];
       dc_superblock = true; dc_glitch_every = 8 };
     { dc_name = "storage";
       dc_devices = [ "reg"; "mmc"; "usb"; "sd"; "flash" ];
       dc_superblock = false; dc_glitch_every = 0 };
     { dc_name = "minimal"; dc_devices = [ "reg"; "kb" ];
       dc_superblock = false; dc_glitch_every = 0 } |]

let config_of_instance id = id mod Array.length dconfigs

(* ------------------------------ config ------------------------------- *)

(** Execution order of instances inside a shard. Digests must not
    depend on it (the determinism battery pins this); the knob exists
    so tests can prove instance isolation by running both ways. *)
type schedule = Chrono | Reversed

let schedule_name = function Chrono -> "chrono" | Reversed -> "reversed"

type config = {
  devices : int;  (** population size (instances) *)
  arrival : Arrival.kind;
  jobs : int;
  seed : int;
  duration_ms : int;  (** simulated span per instance *)
  mean_gap_ms : int;  (** mean arrival gap *)
  max_wakeups : int;  (** per-instance safety cap *)
  shard_cap : int;  (** max instances per shard (one world each) *)
  schedule : schedule;
  quantum : int;
      (** bounded-quantum lockstep slicing inside every shard world
          (0 = sequential). Like [jobs] and [schedule] it must be
          digest-invisible: any quantum produces the same architectural
          results, so it lives in the undigested [host] section. *)
  chaos_fail : int option;
      (** fault injection: the given shard index raises instead of
          running (tests pin the error-propagation path with it) *)
}

let default_config =
  { devices = 60; arrival = Arrival.Poisson; jobs = 1; seed = 1;
    duration_ms = 100; mean_gap_ms = 40; max_wakeups = 50; shard_cap = 64;
    schedule = Chrono; quantum = 0; chaos_fail = None }

(* ----------------------------- sharding ------------------------------ *)

type shard = {
  sh_index : int;
  sh_config : int;  (** index into {!dconfigs} *)
  sh_ids : int list;  (** member instances, ascending *)
}

let rec chunk cap = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let head, rest = take cap [] l in
    head :: chunk cap rest

(** [plan cfg] — group instances by configuration, then split each
    group at [shard_cap]. Pure function of (devices, shard_cap): the
    shard list is identical at every [jobs] value. *)
let plan (cfg : config) =
  let n = Array.length dconfigs in
  let groups = Array.make n [] in
  for id = cfg.devices - 1 downto 0 do
    groups.(id mod n) <- id :: groups.(id mod n)
  done;
  let shards = ref [] and idx = ref 0 in
  Array.iteri
    (fun ci ids ->
      List.iter
        (fun ch ->
          shards := { sh_index = !idx; sh_config = ci; sh_ids = ch } :: !shards;
          incr idx)
        (chunk cfg.shard_cap ids))
    groups;
  List.rev !shards

(* ------------------------- world snapshot prep ------------------------ *)

(* Warm the DBT until its translation state stops moving: run
   suspend/resume cycles (with the glitch flavor mixed in for glitchy
   configs, so the fallback path is translated too) until the engine's
   structural counters hold still for two consecutive cycles. For the
   superblock tier the threshold is dropped to 1 during warmup and
   parked at max_int after, so no trace forms mid-fleet — the shared
   code cache is then read-only across instances, which is what makes
   instance execution order invisible to the digest. *)
let warmup ark ~(dc : dconfig) =
  let e = ark.Ark_run.ark.Ark.engine in
  if dc.dc_superblock then e.Engine.sb_threshold <- 1;
  let glitchy = dc.dc_glitch_every > 0 && List.mem "wifi" dc.dc_devices in
  let wifi =
    if glitchy then Some (Platform.device (Ark_run.plat ark) "wifi")
    else None
  in
  let fingerprint () =
    ( e.Engine.blocks, e.Engine.host_emitted, e.Engine.patches,
      e.Engine.traces_formed )
  in
  let stable = ref 0 and cycles = ref 0 in
  while !stable < 2 && !cycles < 18 do
    (match wifi with
    | Some w when !cycles mod 3 = 1 -> w.Device.glitch_next_resume <- true
    | _ -> ());
    let fp0 = fingerprint () in
    ignore (Ark_run.suspend_resume_cycle ark);
    incr cycles;
    if fingerprint () = fp0 then incr stable else stable := 0
  done;
  if dc.dc_superblock then e.Engine.sb_threshold <- max_int;
  !cycles

(* Register restore hooks for all the simulator state the World module
   doesn't own: device models, ARK contexts and scalars, counters, the
   native runner's mutables, the interpreter's register file. *)
let install_hooks w (ark : Ark_run.t) =
  let plat = Ark_run.plat ark in
  let nat = ark.Ark_run.nat in
  let interp = nat.Native_run.interp in
  let a = ark.Ark_run.ark in
  let devs = List.map snd plat.Platform.devices in
  World.add_hook w (fun () ->
      let saved = List.map Device.capture devs in
      fun () -> List.iter2 Device.restore devs saved);
  World.add_hook w (fun () ->
      let saved =
        List.map
          (fun (c : Transkernel.Context.t) ->
            ( Array.copy c.Transkernel.Context.cpu.Exec.r,
              Exec.flags_word c.Transkernel.Context.cpu,
              c.Transkernel.Context.cpu.Exec.irq_on,
              c.Transkernel.Context.state, c.Transkernel.Context.started,
              Array.copy c.Transkernel.Context.env_save,
              c.Transkernel.Context.pending, c.Transkernel.Context.slices ))
          a.Ark.contexts
      in
      fun () ->
        List.iter2
          (fun (c : Transkernel.Context.t)
               (r, fl, irq, st, sd, env, pend, sl) ->
            Array.blit r 0 c.Transkernel.Context.cpu.Exec.r 0 16;
            Exec.set_flags_word c.Transkernel.Context.cpu fl;
            c.Transkernel.Context.cpu.Exec.irq_on <- irq;
            c.Transkernel.Context.state <- st;
            c.Transkernel.Context.started <- sd;
            c.Transkernel.Context.env_save <- Array.copy env;
            c.Transkernel.Context.pending <- pend;
            c.Transkernel.Context.slices <- sl)
          a.Ark.contexts saved);
  World.add_hook w (fun () ->
      let saved =
        ( a.Ark.current, a.Ark.in_irq, a.Ark.rr, a.Ark.draining,
          a.Ark.tick_on, a.Ark.emu_cycles, a.Ark.fell_back )
      in
      fun () ->
        let cur, irq, rr, dr, tick, emu, fb = saved in
        a.Ark.current <- cur;
        a.Ark.in_irq <- irq;
        a.Ark.rr <- rr;
        a.Ark.draining <- dr;
        a.Ark.tick_on <- tick;
        a.Ark.emu_cycles <- emu;
        a.Ark.fell_back <- fb);
  World.add_hook w (fun () ->
      let saved = Counters.to_assoc a.Ark.counters in
      fun () -> Counters.load a.Ark.counters saved);
  World.add_hook w (fun () ->
      let saved =
        ( nat.Native_run.events, nat.Native_run.warns,
          nat.Native_run.console, nat.Native_run.sleep_ns_total,
          nat.Native_run.sleep_ns, nat.Native_run.last_exit_r0 )
      in
      fun () ->
        let ev, wa, co, st, sn, r0 = saved in
        nat.Native_run.events <- ev;
        nat.Native_run.warns <- wa;
        nat.Native_run.console <- co;
        nat.Native_run.sleep_ns_total <- st;
        nat.Native_run.sleep_ns <- sn;
        nat.Native_run.last_exit_r0 <- r0);
  World.add_hook w (fun () ->
      let cpu = interp.Interp.cpu in
      let saved =
        ( Array.copy cpu.Exec.r, Exec.flags_word cpu, cpu.Exec.irq_on,
          interp.Interp.irq_saved )
      in
      fun () ->
        let r, fl, irq, sv = saved in
        Array.blit r 0 cpu.Exec.r 0 16;
        Exec.set_flags_word cpu fl;
        cpu.Exec.irq_on <- irq;
        interp.Interp.irq_saved <- sv);
  World.add_hook w (fun () ->
      let saved = (ark.Ark_run.events, ark.Ark_run.fallbacks) in
      fun () ->
        let ev, fb = saved in
        ark.Ark_run.events <- ev;
        ark.Ark_run.fallbacks <- fb)

(* A restored page invalidates any host-side decode memoized over it.
   The dense interpreter decode span is cheap to clear per page. If the
   page also carries DBT-covered guest code, flush only when a covered
   {e word} actually changed value: kernel-image pages mix code and
   data, and an instance dirtying data next to translated code must not
   force a whole-cache flush (runtime self-modifying stores are already
   handled by the engine's own write barrier). A real covered-word
   change trips [pending_flush] and the canary counter — it means
   translated code differed between instances, which the warmup
   fixpoint is supposed to make impossible. *)
let page_restored interp (engine : Engine.t) cover_flushes ~ram_base page
    ~(old : Bytes.t) =
  let lo = ram_base + (page lsl Mem.page_bits) in
  let hi = lo + Mem.page_size in
  let dlo = max lo Soc.kernel_base and dhi = min hi Soc.page_pool_base in
  if dlo < dhi then begin
    let d = interp.Interp.decode in
    let i0 = (dlo - Soc.kernel_base) asr 2 in
    let i1 = min (((dhi - Soc.kernel_base) asr 2) - 1) (Array.length d - 1) in
    for k = i0 to i1 do
      Array.unsafe_set d k None
    done;
    let cover = engine.Engine.guest_cover in
    let mem = interp.Interp.soc.Soc.mem in
    let changed = ref false in
    for k = i0 to min i1 (Bytes.length cover - 1) do
      if (not !changed) && Bytes.unsafe_get cover k <> '\000' then begin
        let addr = Soc.kernel_base + (k lsl 2) in
        let off = addr - lo in
        let old_w =
          Char.code (Bytes.get old off)
          lor (Char.code (Bytes.get old (off + 1)) lsl 8)
          lor (Char.code (Bytes.get old (off + 2)) lsl 16)
          lor (Char.code (Bytes.get old (off + 3)) lsl 24)
        in
        if Mem.ram_read mem addr 4 <> old_w then changed := true
      end
    done;
    if !changed then begin
      engine.Engine.pending_flush <- true;
      incr cover_flushes
    end
  end
  else Hashtbl.reset interp.Interp.decode_cache

(* --------------------------- the shard task --------------------------- *)

(* Everything a shard returns. [o_host] is the only section allowed to
   vary with execution order (snapshot traffic does); it never enters
   the digest. *)
type shard_out = {
  o_metrics : J.json;
  o_counters : (string * int) list;
  o_host : (string * int) list;
}

type instance_row = {
  i_id : int;
  i_wakeups : int;
  i_fallbacks : int;
  i_energy_nj : int;
}

let ev_time code evs =
  List.fold_left
    (fun acc (e : Ark_run.phase_event) ->
      if acc >= 0 then acc
      else if e.Ark_run.ev_code = code then e.Ark_run.ev_time_ns
      else acc)
    (-1) evs

(* run one instance's whole arrival trace over the restored snapshot;
   all figures are deltas against the post-restore state, so they are
   independent of which instance ran before. Only arrivals that land
   inside the instance's window [now, now + duration) are simulated: a
   draw past the window's end means the device sleeps the window out
   (many instances in a sparse fleet wake zero times — that is the
   population shape the snapshot machinery exists for). The slept-out
   remainder is still charged deep-sleep energy, so an idle instance
   reports its true window cost, not zero. *)
let run_instance (cfg : config) (dc : dconfig) ark ~lat ~pressure ~energy_sk
    ~id =
  let rng = instance_rng ~seed:cfg.seed id in
  let soc = (Ark_run.plat ark).Platform.soc in
  let nat = ark.Ark_run.nat in
  let wifi =
    if dc.dc_glitch_every > 0 && List.mem "wifi" dc.dc_devices then
      Some (Platform.device (Ark_run.plat ark) "wifi")
    else None
  in
  let m3_0 = Core.activity soc.Soc.m3
  and cpu_0 = Core.activity soc.Soc.cpu in
  let dma_rd0 = soc.Soc.mem.Mem.dma_read_bytes
  and dma_wr0 = soc.Soc.mem.Mem.dma_write_bytes in
  let sleep0 = nat.Native_run.sleep_ns_total in
  let t_end = soc.Soc.clock.Clock.now + (cfg.duration_ms * 1_000_000) in
  let wakeups = ref 0 and falls = ref 0 in
  let finished = ref false in
  while (not !finished) && !wakeups < cfg.max_wakeups do
    let gap =
      Arrival.gap_ns cfg.arrival rng ~mean_gap_ms:cfg.mean_gap_ms
        ~now_ns:soc.Soc.clock.Clock.now
    in
    if soc.Soc.clock.Clock.now + gap >= t_end then finished := true
    else begin
      nat.Native_run.sleep_ns <- gap;
      (match wifi with
      | Some w when Random.State.int rng dc.dc_glitch_every = 0 ->
        w.Device.glitch_next_resume <- true
      | _ -> ());
      let before = List.length ark.Ark_run.events in
      let misses0 = soc.Soc.m3.Core.cache.Cache.misses in
      (match Ark_run.suspend_resume_cycle ark with
      | `Ok -> ()
      | `Fell_back _ -> incr falls);
      let evs = Ark_run.events_of_cycle ark ~before in
      let t_wake = ev_time 901 evs
      and t_up = ev_time Hyper.ph_resume_end evs in
      if t_wake >= 0 && t_up >= t_wake then Sketch.add lat (t_up - t_wake);
      Sketch.add pressure (soc.Soc.m3.Core.cache.Cache.misses - misses0);
      incr wakeups
    end
  done;
  let m3_d = Core.activity_delta m3_0 (Core.activity soc.Soc.m3)
  and cpu_d = Core.activity_delta cpu_0 (Core.activity soc.Soc.cpu) in
  let dma =
    ( soc.Soc.mem.Mem.dma_read_bytes - dma_rd0,
      soc.Soc.mem.Mem.dma_write_bytes - dma_wr0 )
  in
  (* sleep actually simulated, plus the slept-out window remainder *)
  let residual_ns = max 0 (t_end - soc.Soc.clock.Clock.now) in
  let slept_ms =
    float_of_int (nat.Native_run.sleep_ns_total - sleep0 + residual_ns)
    /. 1e6
  in
  let uj =
    Power.total (Power.of_activity ~params:Soc.m3_params ~act:m3_d
                   ~dma_bytes:dma ())
    +. Power.total (Power.of_activity ~params:Soc.a9_params ~act:cpu_d ())
    +. Power.deep_sleep_uj slept_ms
  in
  let nj = int_of_float (uj *. 1000.0) in
  Sketch.add energy_sk nj;
  { i_id = id; i_wakeups = !wakeups; i_fallbacks = !falls; i_energy_nj = nj }

let sketch_rows_json sk =
  J.Arr
    (List.map
       (fun (lo, hi, c) -> J.Arr [ J.Int lo; J.Int hi; J.Int c ])
       (Sketch.rows sk))

(* Per-span-kind duration telemetry: the causal tracer runs in every
   shard world and each closed span's duration feeds one of these
   sketches. The field list is fixed (not everything the tracer knows)
   so the fleet schema stays stable. Span durations are pure simulated
   time, so the digest stays jobs- and order-invariant. *)
let span_fields =
  [ ("span_irq_deliver_ns", Tk_stats.Span.sk_irq_deliver);
    ("span_resume_ns", Tk_stats.Span.sk_resume);
    ("span_dbt_translate_ns", Tk_stats.Span.sk_dbt_translate);
    ("span_run_ns", Tk_stats.Span.sk_run);
    ("span_suspend_ns", Tk_stats.Span.sk_suspend) ]

(* harvest one instance's closed spans into the per-kind sketches *)
let harvest_spans sp sks =
  Tk_stats.Span.iter sp
    (fun ~id:_ ~parent:_ ~kind ~core:_ ~t0 ~t1 ~arg:_ ->
      match List.assoc_opt kind sks with
      | Some sk -> Sketch.add sk (t1 - t0)
      | None -> ())

(** [shard_task ~built cfg shard] — boot one world for the shard's
    configuration, warm it, snapshot it, and interleave the member
    instances over the snapshot. *)
let shard_task ~built (cfg : config) (sh : shard) =
  let dc = dconfigs.(sh.sh_config) in
  let ark =
    Ark_run.create ~built ~devices:dc.dc_devices
      ~superblock:dc.dc_superblock ~quantum:cfg.quantum ()
  in
  let warm_cycles = warmup ark ~dc in
  let soc = (Ark_run.plat ark).Platform.soc in
  let w =
    World.create
      ~shared_ranges:
        [ (Soc.code_cache_base, Soc.code_cache_base + Soc.code_cache_size) ]
      soc
  in
  install_hooks w ark;
  let snap0 = World.fork w in
  let interp = ark.Ark_run.nat.Native_run.interp in
  let engine = ark.Ark_run.ark.Ark.engine in
  let cover_flushes = ref 0 in
  let on_page =
    page_restored interp engine cover_flushes ~ram_base:soc.Soc.mem.Mem.ram_base
  in
  let lat = Sketch.create ()
  and pressure = Sketch.create ()
  and energy_sk = Sketch.create () in
  (* per-kind span-duration sketches; the tracer goes live only after
     warmup + snapshot so causal trees cover fleet cycles alone *)
  let span_sks = List.map (fun (f, k) -> (k, (f, Sketch.create ()))) span_fields in
  Tk_stats.Span.enable soc.Soc.spans;
  let order =
    match cfg.schedule with
    | Chrono -> sh.sh_ids
    | Reversed -> List.rev sh.sh_ids
  in
  let rows =
    List.map
      (fun id ->
        World.restore w ~on_page snap0;
        (* instance isolation: every instance starts span-clean, like
           everything else behind the snapshot *)
        Tk_stats.Span.reset soc.Soc.spans;
        let r = run_instance cfg dc ark ~lat ~pressure ~energy_sk ~id in
        harvest_spans soc.Soc.spans
          (List.map (fun (k, (_, sk)) -> (k, sk)) span_sks);
        r)
      order
    |> List.sort (fun a b -> compare a.i_id b.i_id)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let wakeups = sum (fun r -> r.i_wakeups)
  and falls = sum (fun r -> r.i_fallbacks)
  and energy_nj = sum (fun r -> r.i_energy_nj) in
  let st = World.stats w in
  { o_metrics =
      J.Obj
        ([ ("config", J.Str dc.dc_name);
           ("superblock", J.Int (if dc.dc_superblock then 1 else 0));
           ("glitch_every", J.Int dc.dc_glitch_every);
           ("instances", J.Int (List.length rows));
           ("wakeups", J.Int wakeups); ("fallbacks", J.Int falls);
           ("energy_nj", J.Int energy_nj);
           ("warmup_cycles", J.Int warm_cycles);
           ("wakeup_ns", sketch_rows_json lat);
           ("pressure_misses", sketch_rows_json pressure);
           ("energy_nj_dist", sketch_rows_json energy_sk) ]
         @ List.map
             (fun (_, (f, sk)) -> (f, sketch_rows_json sk))
             span_sks
         @ [ ( "per_instance",
               J.Arr
                 (List.map
                    (fun r ->
                      J.Obj
                        [ ("id", J.Int r.i_id);
                          ("wakeups", J.Int r.i_wakeups);
                          ("fallbacks", J.Int r.i_fallbacks);
                          ("energy_nj", J.Int r.i_energy_nj) ])
                    rows) ) ]);
    o_counters =
      [ ("fleet.instances", List.length rows); ("fleet.wakeups", wakeups);
        ("fleet.fallbacks", falls); ("fleet.energy_nj", energy_nj);
        ("fleet.cover_flush", !cover_flushes) ];
    o_host =
      [ ("world.forks", st.World.forks);
        ("world.restores", st.World.restores);
        ("world.pages_captured", st.World.pages_captured);
        ("world.pages_interned", st.World.pages_interned);
        ("world.pages_loaded", st.World.pages_loaded);
        ("world.chunks_captured", st.World.chunks_captured);
        ("world.chunks_interned", st.World.chunks_interned);
        ("world.false_dirty", st.World.false_dirty);
        ("world.warmup_cycles", warm_cycles) ] }

(* ----------------------------- the fleet ------------------------------ *)

type t = {
  config : config;
  doc : J.json;
  digest : string;
  wall_s : float;
  errors : (int * string) list;  (** (shard index, message) *)
}

let failed t = t.errors <> []

(** [first_error t] — the lowest-shard-index worker error, if any
    (mirrors {!Tk_campaign.Campaign.first_error}). *)
let first_error t = match t.errors with [] -> None | e :: _ -> Some e

let merge_counters outs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (k, v) ->
         let cur = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
         Hashtbl.replace tbl k (cur + v)))
    outs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters_obj kvs = J.Obj (List.map (fun (k, v) -> (k, J.Int v)) kvs)

(* rebuild a sketch from the serialized rows of every shard (bucket
   rows reload bucket-stably, and bucket adds commute, so this equals
   the union whatever order shards merged in) *)
let merged_sketch field shard_metrics =
  let sk = Sketch.create () in
  List.iter
    (fun m ->
      match m with
      | J.Obj kvs -> (
        match List.assoc_opt field kvs with
        | Some (J.Arr rows) ->
          Sketch.load sk
            (List.filter_map
               (function
                 | J.Arr [ J.Int lo; J.Int hi; J.Int c ] -> Some (lo, hi, c)
                 | _ -> None)
               rows)
        | _ -> ())
      | _ -> ())
    shard_metrics;
  sk

let quantiles_json sk =
  J.Obj
    [ ("count", J.Int (Sketch.count sk));
      ("p50", J.Int (Sketch.quantile sk 0.50));
      ("p99", J.Int (Sketch.quantile sk 0.99));
      ("p999", J.Int (Sketch.quantile sk 0.999));
      ("max", J.Int (Sketch.max_value sk)) ]

(** [run config] — plan the shards, execute them on [config.jobs]
    domains, and assemble the fleet document. The kernel image is
    compiled once and shared (immutably) by every shard world. *)
let run (cfg : config) =
  let shards = plan cfg in
  let built = Platform.build_image () in
  let shard_arr = Array.of_list shards in
  let task i =
    (match cfg.chaos_fail with
    | Some j when j = i ->
      failwith (Printf.sprintf "chaos injection (shard %d)" i)
    | _ -> ());
    shard_task ~built cfg shard_arr.(i)
  in
  let wall0 = Unix.gettimeofday () in
  let outcomes = Pool.run ~jobs:cfg.jobs ~tasks:(Array.length shard_arr) task in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let errors = ref [] in
  let shard_docs =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Ok out ->
             J.Obj
               [ ("shard", J.Int i); ("metrics", out.o_metrics);
                 ("counters", counters_obj out.o_counters) ]
           | Error msg ->
             errors := (i, msg) :: !errors;
             J.Obj [ ("shard", J.Int i); ("error", J.Str msg) ])
         outcomes)
  in
  let errors = List.rev !errors in
  let ok_outs =
    Array.to_list outcomes
    |> List.filter_map (function Ok o -> Some o | Error _ -> None)
  in
  let merged = merge_counters (List.map (fun o -> o.o_counters) ok_outs) in
  let counter k = Option.value ~default:0 (List.assoc_opt k merged) in
  let metrics_list =
    List.map
      (fun o -> o.o_metrics)
      ok_outs
  in
  let lat = merged_sketch "wakeup_ns" metrics_list
  and pressure = merged_sketch "pressure_misses" metrics_list
  and energy_sk = merged_sketch "energy_nj_dist" metrics_list in
  let span_agg =
    List.map (fun (f, _) -> (f, merged_sketch f metrics_list)) span_fields
  in
  let meta =
    J.Obj
      [ ("devices", J.Int cfg.devices);
        ("arrival", J.Str (Arrival.kind_name cfg.arrival));
        ("seed", J.Int cfg.seed); ("duration_ms", J.Int cfg.duration_ms);
        ("mean_gap_ms", J.Int cfg.mean_gap_ms);
        ("shard_cap", J.Int cfg.shard_cap);
        ("shards", J.Int (Array.length shard_arr));
        ( "configs",
          J.Arr
            (Array.to_list
               (Array.map (fun d -> J.Str d.dc_name) dconfigs)) );
        ("git_rev", J.Str (Run_manifest.git_rev ())) ]
  in
  let shards_json = J.Arr shard_docs in
  let aggregate =
    J.Obj
      ([ ("instances", J.Int (counter "fleet.instances"));
        ("wakeups", J.Int (counter "fleet.wakeups"));
        ("fallbacks", J.Int (counter "fleet.fallbacks"));
        ("energy_uj", J.Num (float_of_int (counter "fleet.energy_nj") /. 1e3));
        ("wakeup_ns", quantiles_json lat);
        ("pressure_misses", quantiles_json pressure);
        ("energy_nj_dist", quantiles_json energy_sk) ]
       @ List.map (fun (f, sk) -> (f, quantiles_json sk)) span_agg
       @ [ ("shard_errors", J.Int (List.length errors));
           ("counters", counters_obj merged) ])
  in
  let digest =
    Run_manifest.digest_string
      (J.to_string
         (J.Obj
            [ ("meta", meta); ("shards", shards_json);
              ("aggregate", aggregate) ]))
  in
  let host_world = merge_counters (List.map (fun o -> o.o_host) ok_outs) in
  let host =
    J.Obj
      [ ("jobs", J.Int cfg.jobs);
        ("schedule", J.Str (schedule_name cfg.schedule));
        ("quantum", J.Int cfg.quantum);
        ("wall_s", J.Num wall_s);
        ("host_cores", J.Int (Domain.recommended_domain_count ()));
        ("world", counters_obj host_world) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "arksim-fleet-v1"); ("meta", meta);
        ("shards", shards_json); ("aggregate", aggregate);
        ("digest", J.Str digest); ("host", host) ]
  in
  { config = cfg; doc; digest; wall_s; errors }

let write_file path t = J.write_file path t.doc

(** [counter t k] — an aggregate counter out of the fleet document
    (e.g. ["fleet.wakeups"]); 0 when absent. *)
let counter t k =
  match t.doc with
  | J.Obj kvs -> (
    match List.assoc_opt "aggregate" kvs with
    | Some (J.Obj agg) -> (
      match List.assoc_opt "counters" agg with
      | Some (J.Obj cs) -> (
        match List.assoc_opt k cs with Some (J.Int v) -> v | _ -> 0)
      | _ -> 0)
    | _ -> 0)
  | _ -> 0

(** Collector-side human rendering (shard workers never print). *)
let print_summary t =
  let cfg = t.config in
  Printf.printf
    "fleet %s: %d instance(s) on %d job(s) in %.2f s — digest %s\n"
    (Arrival.kind_name cfg.arrival) cfg.devices cfg.jobs t.wall_s t.digest;
  (match t.doc with
  | J.Obj kvs -> (
    match List.assoc_opt "aggregate" kvs with
    | Some (J.Obj agg) ->
      let geti k =
        match List.assoc_opt k agg with Some (J.Int v) -> v | _ -> 0
      in
      let q k f =
        match List.assoc_opt k agg with
        | Some (J.Obj o) -> (
          match List.assoc_opt f o with Some (J.Int v) -> v | _ -> 0)
        | _ -> 0
      in
      Printf.printf
        "  wakeups %d  fallbacks %d  wakeup p50/p99/p999 %d/%d/%d ns\n"
        (geti "wakeups") (geti "fallbacks") (q "wakeup_ns" "p50")
        (q "wakeup_ns" "p99") (q "wakeup_ns" "p999");
      List.iter
        (fun (f, _) ->
          Printf.printf "  %-21s p50/p99/p999 %d/%d/%d ns (n=%d)\n" f
            (q f "p50") (q f "p99") (q f "p999") (q f "count"))
        span_fields
    | _ -> ())
  | _ -> ());
  List.iter
    (fun (i, msg) -> Printf.printf "  shard %d FAILED: %s\n" i msg)
    t.errors;
  if t.errors = [] then Printf.printf "  all shards completed\n"
