(** Energy-attribution ledger: the §7.4 model, time-resolved.

    {!Power_model.of_activity} turns one activity window into one
    breakdown — a scalar per component. This module integrates the same
    model over the epochs recorded by the cycle-domain sampler
    ({!Tk_stats.Timeseries}) and charges every microjoule to a
    [(phase, core, component)] cell, so the paper's 66%-of-native figure
    decomposes into "which phase, on which core, spent what, where".

    The attribution is {e exact} with respect to the aggregate model:
    the core busy/idle and IO terms are linear in time, so per-epoch
    charges telescope to the window totals; the DRAM traffic term is
    not (it multiplies the window's bandwidth by its busy time), so
    each epoch's traffic bytes are weighted by the {e window-global}
    busy fraction — summing epochs then reproduces
    [of_activity]'s e_dram identically, and {!reconcile} checks that
    (the acceptance bar is 0.1%; the residual is pure float
    rounding). DRAM and IO energy are charged to the [active] core —
    the one the model runs on — while the other core's busy/idle cells
    are additional decomposition the scalar model cannot see. *)

open Tk_machine
module Ts = Tk_stats.Timeseries

let comp_core_busy = "core_busy"
let comp_core_idle = "core_idle"
let comp_dram = "dram"
let comp_io = "io"

(** Component names in canonical (reporting) order. *)
let components = [ comp_core_busy; comp_core_idle; comp_dram; comp_io ]

type cell = {
  c_phase : int;  (** phase code in effect over the epoch *)
  c_core : string;  (** gauge prefix, e.g. "a9" / "m3" *)
  c_comp : string;  (** one of {!components} *)
  c_uj : float;
}

type t = {
  l_active : string;  (** the core DRAM/IO energy is charged to *)
  l_epochs : int;  (** sampled epochs integrated *)
  l_t0_ns : int;  (** window start (first retained row) *)
  l_t1_ns : int;  (** window end (last row) *)
  l_cells : cell list;  (** sorted by (phase, core, component) *)
}

let empty active =
  { l_active = active; l_epochs = 0; l_t0_ns = 0; l_t1_ns = 0; l_cells = [] }

(** [integrate ts ~cores ~active] walks the sampler's retained rows and
    charges each epoch's energy. [cores] maps gauge prefixes (as wired
    by [Soc.create]) to their power parameters; [active] names the core
    whose window {!Power_model.of_activity} describes — DRAM and IO are
    charged there. An epoch is attributed to the phase recorded with its
    {e ending} row: [Ts.phase] forces a boundary row before switching,
    so no epoch straddles a phase mark. *)
let integrate (ts : Ts.t) ~(cores : (string * Core.params) list) ~active =
  let rows = Ts.rows ts in
  let n = Array.length rows in
  if n < 2 then empty active
  else begin
    let idx name =
      match Ts.col_index ts name with
      | Some i -> i
      | None -> invalid_arg ("Attribution.integrate: no gauge " ^ name)
    in
    let i_phase = idx "phase" in
    let core_cols =
      List.map
        (fun (pfx, params) ->
          (pfx, params, idx (pfx ^ "_busy_ps"), idx (pfx ^ "_idle_ps")))
        cores
    in
    let i_ard = idx (active ^ "_rd_bytes") in
    let i_awr = idx (active ^ "_wr_bytes") in
    let i_abusy = idx (active ^ "_busy_ps") in
    let i_aidle = idx (active ^ "_idle_ps") in
    let i_dma_rd = idx "dma_rd_bytes" in
    let i_dma_wr = idx "dma_wr_bytes" in
    let first = rows.(0) and last = rows.(n - 1) in
    (* window-global busy fraction of the active core: the DRAM traffic
       term of the model is bandwidth x busy-time over the whole window,
       so per-epoch byte charges carry this weight to telescope exactly *)
    let tot_busy = last.(i_abusy) - first.(i_abusy) in
    let tot_active = tot_busy + (last.(i_aidle) - first.(i_aidle)) in
    let busy_frac =
      if tot_active = 0 then 0.0
      else float_of_int tot_busy /. float_of_int tot_active
    in
    let cells : (int * string * string, float ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let charge phase core comp uj =
      if uj <> 0.0 then begin
        let key = (phase, core, comp) in
        match Hashtbl.find_opt cells key with
        | Some r -> r := !r +. uj
        | None -> Hashtbl.add cells key (ref uj)
      end
    in
    for k = 0 to n - 2 do
      let r0 = rows.(k) and r1 = rows.(k + 1) in
      let ph = r1.(i_phase) in
      List.iter
        (fun (pfx, (params : Core.params), ib, ii) ->
          let dbusy_ms = float_of_int (r1.(ib) - r0.(ib)) /. 1e9 in
          let didle_ms = float_of_int (r1.(ii) - r0.(ii)) /. 1e9 in
          charge ph pfx comp_core_busy (dbusy_ms *. params.Core.busy_mw);
          charge ph pfx comp_core_idle (didle_ms *. params.Core.idle_mw);
          if pfx = active then begin
            let drd =
              r1.(i_ard) - r0.(i_ard) + (r1.(i_dma_rd) - r0.(i_dma_rd))
            and dwr =
              r1.(i_awr) - r0.(i_awr) + (r1.(i_dma_wr) - r0.(i_dma_wr))
            in
            let e_traffic =
              ((Power_model.p_mem_per_mbps_rd *. float_of_int drd)
              +. (Power_model.p_mem_per_mbps_wr *. float_of_int dwr))
              /. 1e3 *. busy_frac
            in
            charge ph pfx comp_dram
              ((dbusy_ms *. Power_model.p_mem_active_base_mw)
              +. (didle_ms *. Power_model.p_mem_sr_mw)
              +. e_traffic);
            charge ph pfx comp_io
              ((dbusy_ms +. didle_ms) *. Power_model.p_io_mw)
          end)
        core_cols
    done;
    let l_cells =
      Hashtbl.fold
        (fun (ph, core, comp) r acc ->
          { c_phase = ph; c_core = core; c_comp = comp; c_uj = !r } :: acc)
        cells []
      |> List.sort (fun a b ->
             compare (a.c_phase, a.c_core, a.c_comp)
               (b.c_phase, b.c_core, b.c_comp))
    in
    { l_active = active; l_epochs = n - 1; l_t0_ns = first.(0);
      l_t1_ns = last.(0); l_cells }
  end

(* --------------------------- aggregation ----------------------------- *)

let sum_if pred t =
  List.fold_left
    (fun acc c -> if pred c then acc +. c.c_uj else acc)
    0.0 t.l_cells

(** [component_total t comp] — microjoules charged to [comp] on the
    active core (the slice {!reconcile} compares against the model). *)
let component_total t comp =
  sum_if (fun c -> c.c_core = t.l_active && c.c_comp = comp) t

(** [active_total t] — total microjoules on the active core; equals
    [Power_model.total] of the window breakdown up to rounding. *)
let active_total t =
  sum_if (fun c -> c.c_core = t.l_active) t

(** [phases t] — the distinct phase codes, in ascending code order. *)
let phases t =
  List.sort_uniq compare (List.map (fun c -> c.c_phase) t.l_cells)

(** [phase_breakdown t ph] — active-core microjoules per component for
    phase [ph], in {!components} order. *)
let phase_breakdown t ph =
  List.map
    (fun comp ->
      ( comp,
        sum_if
          (fun c ->
            c.c_phase = ph && c.c_core = t.l_active && c.c_comp = comp)
          t ))
    components

(* -------------------------- reconciliation --------------------------- *)

type check = {
  k_comp : string;
  k_ledger_uj : float;
  k_model_uj : float;
  k_rel_err : float;  (** |ledger - model| / max(|model|, 1e-9) *)
}

(** [reconcile t b] compares the ledger's per-component totals against
    the scalar model's breakdown [b] for the same window. *)
let reconcile t (b : Power_model.breakdown) =
  let one comp model =
    let ledger = component_total t comp in
    { k_comp = comp; k_ledger_uj = ledger; k_model_uj = model;
      k_rel_err =
        abs_float (ledger -. model) /. Float.max (abs_float model) 1e-9 }
  in
  [ one comp_core_busy b.Power_model.e_core_busy;
    one comp_core_idle b.Power_model.e_core_idle;
    one comp_dram b.Power_model.e_dram;
    one comp_io b.Power_model.e_io ]

(** [max_rel_err checks] — the worst component divergence. *)
let max_rel_err checks =
  List.fold_left (fun acc k -> Float.max acc k.k_rel_err) 0.0 checks
