(** Guest-native interpreter: the CPU executing V7A kernel code directly.

    This is the paper's "native execution" arm: the monolithic kernel
    running device suspend/resume on the Cortex-A9. The loop fetches
    encoded words from DRAM (through the A9's cache model), decodes them
    (memoized in a dense pre-decoded array), executes via {!Tk_isa.Exec}
    and charges cycles; pending GIC interrupts vector to the kernel's
    IRQ entry stub between instructions. Self-modifying stores
    invalidate the pre-decoded entries they touch.

    Guest [SVC] is used as a simulation hypercall (halt / platform-off /
    console), dispatched to the embedding runner through [on_svc]. *)

open Tk_isa

exception Halt of string  (** raised by hypercalls to end a run *)

exception Fault of string  (** simulation bug: deadlock, bad fetch, ... *)

type t = {
  soc : Soc.t;
  core : Core.t;
  tr : Tk_stats.Trace.t;  (** the platform flight recorder, cached *)
  cpu : Exec.cpu;
  decode : Types.inst option array;  (** dense, indexed by image word *)
  decode_cache : (int, Types.inst) Hashtbl.t;  (** out-of-span fallback *)
  mutable env : Exec.env;
  mutable env_traced : Exec.env;
      (** same environment with flight-recorder emission on memory
          accesses; [step] selects it only while tracing is enabled *)
  mutable irq_vector : int;  (** guest address of the IRQ entry stub *)
  mutable irq_saved : (int * int) list;  (** (return pc, flags) *)
  mutable on_svc : t -> Exec.cpu -> int -> unit;
  mutable trace : (int -> Types.inst -> unit) option;
}

val create : soc:Soc.t -> unit -> t

(** [set_pc t addr] positions the next fetch. *)
val set_pc : t -> int -> unit

(** [step t] executes one instruction (delivering a pending enabled IRQ
    first). *)
val step : t -> unit

(** [run t ~fuel] steps until a hypercall raises {!Halt} (or [fuel]
    instructions elapse, which raises {!Fault} — a runaway guest). *)
val run : t -> fuel:int -> unit

(** [run_until t ~deadline ~fuel] — bounded-quantum slice of {!run}:
    step until the core's clock reaches absolute time [deadline], then
    return normally; the next call resumes at the saved pc. {!Halt}
    still propagates when the guest finishes inside the slice. *)
val run_until : t -> deadline:int -> fuel:int -> unit
