(** Snapshotable SoC worlds: [fork] / [restore] over a live {!Soc.t}.

    The fleet layer hosts thousands of device-instances per worker
    domain. Building a fresh [Soc] (24 MB DRAM, dense decode arrays,
    image compile, kernel boot) per instance is a million-fold
    allocation problem; instead one live world per shard is multiplexed
    across instances, and each instance's divergence from a shared
    baseline is captured as a sparse, structurally-shared snapshot:

    - {b RAM} — copy-on-write at 4 KiB page granularity. {!Mem} marks
      touched pages on every store; [fork] compares only touched pages
      against the baseline and interns the diverging ones in a
      content-addressed store, so the many instances that follow the
      same execution path share one copy of each page.
    - {b caches} — tag/dirty arrays diffed against the baseline in
      fixed chunks, interned the same way.
    - {b cores, interrupt controllers, clock, timers} — small flat
      state, copied verbatim. Timers are special: a pending tick is an
      event-queue closure, so capture records its [(period, next_at)]
      and restore re-arms at the exact absolute instant.

    Snapshots are taken with the periodic ticks paused (their events
    pulled off the queue and re-armed at the exact absolute instant on
    restore). Whatever one-shot events remain queued — a device
    completion in flight, ARK's conditional tick — close only over
    state this snapshot restores, so the event list itself is captured
    and replayed verbatim: replaying it against restored state is
    deterministic. Callers still snapshot between suspend/resume
    cycles, where nothing structurally novel is pending.

    State outside the machine layer (devices, ARK contexts, harness
    accumulators) is captured through registered hooks: each hook
    returns a restore thunk closing over whatever it captured, keeping
    this module ignorant of upper-layer types. *)

type core_state = {
  w_cpi_acc : int;
  w_frac_ps : int;
  w_busy_cycles : int;
  w_busy_ps : int;
  w_idle_ps : int;
  w_instructions : int;
  w_stall_cycles : int;
}

(* cache tag/dirty arrays are diffed in chunks of this many sets:
   1 MB A9 cache = 32768 sets -> 128 chunks, 32 KB M3 = 1024 sets -> 4 *)
let chunk_sets = 256

type cache_chunk = {
  k_idx : int;
  k_tags : int array;
  k_dirty : bool array;
}

type cache_state = {
  w_hits : int;
  w_misses : int;
  w_rd_bytes : int;
  w_wr_bytes : int;
  w_chunks : cache_chunk list;  (** chunks diverging from baseline *)
}

type intc_state = {
  w_enabled : bool array;
  w_pending : bool array;
  w_in_service : int option;
  w_live : int;
}

type mach_state = {
  w_now : int;
  w_seq : int;
  w_cpu : core_state;
  w_m3 : core_state;
  w_cpu_cache : cache_state;
  w_m3_cache : cache_state;
  w_gic : intc_state;
  w_nvic : intc_state;
  w_cpu_tick : (int * int) option;  (** (period, next_at) *)
  w_m3_tick : (int * int) option;
  w_events : Clock.event list;
      (** non-tick events pending at the snapshot instant. Their
          closures only reference world state this snapshot restores
          (device completions, ARK's self-checking tick), so replaying
          the list verbatim is sound and deterministic. *)
  w_dma_rd : int;
  w_dma_wr : int;
}

type snap = {
  s_pages : (int * Bytes.t) list;  (** pages differing from baseline,
                                       ascending index, interned *)
  s_mach : mach_state;
  s_ext : (unit -> unit) list;  (** hook restore thunks, hook order *)
}

(** Host-side accounting (never part of any digest: intern-hit counts
    depend on instance scheduling order). *)
type stats = {
  mutable forks : int;
  mutable restores : int;
  mutable pages_captured : int;  (** diverging pages seen across forks *)
  mutable pages_interned : int;  (** of those, new to the intern store *)
  mutable pages_loaded : int;  (** pages rewritten by restores *)
  mutable chunks_captured : int;
  mutable chunks_interned : int;
  mutable false_dirty : int;  (** touched pages equal to baseline *)
}

type t = {
  soc : Soc.t;
  shared : Bytes.t;
      (** '\001' for pages exempt from snapshot/restore: state owned by
          a process-wide component (the DBT code cache) that must stay
          consistent with host-side structures shared across instances
          (block map, host-decode array) rather than follow any one
          instance's timeline *)
  base_pages : Bytes.t array;
  base_cpu_tags : int array;
  base_cpu_dirty : bool array;
  base_m3_tags : int array;
  base_m3_dirty : bool array;
  page_intern : (int, Bytes.t list ref) Hashtbl.t;
  chunk_intern : (int, cache_chunk list ref) Hashtbl.t;
  mutable hooks : (unit -> unit -> unit) list;  (** reverse order *)
  stats : stats;
}

(* ----------------------- content interning -------------------------- *)

let fnv_bytes b =
  let h = ref 0xcbf29ce484222 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x100000001b3
  done;
  !h land max_int

let intern_page t (b : Bytes.t) =
  let h = fnv_bytes b in
  match Hashtbl.find_opt t.page_intern h with
  | None ->
    Hashtbl.add t.page_intern h (ref [ b ]);
    t.stats.pages_interned <- t.stats.pages_interned + 1;
    b
  | Some bucket ->
    (match List.find_opt (fun p -> Bytes.equal p b) !bucket with
    | Some p -> p
    | None ->
      bucket := b :: !bucket;
      t.stats.pages_interned <- t.stats.pages_interned + 1;
      b)

let chunk_eq a b =
  a.k_idx = b.k_idx && a.k_tags = b.k_tags && a.k_dirty = b.k_dirty

let fnv_chunk (c : cache_chunk) =
  let h = ref (0xcbf29ce484222 lxor c.k_idx) in
  Array.iter (fun tg -> h := (!h lxor (tg land 0xFFFFFF)) * 0x100000001b3)
    c.k_tags;
  Array.iter
    (fun d -> h := (!h lxor (if d then 1 else 0)) * 0x100000001b3)
    c.k_dirty;
  !h land max_int

let intern_chunk t c =
  let h = fnv_chunk c in
  match Hashtbl.find_opt t.chunk_intern h with
  | None ->
    Hashtbl.add t.chunk_intern h (ref [ c ]);
    t.stats.chunks_interned <- t.stats.chunks_interned + 1;
    c
  | Some bucket ->
    (match List.find_opt (chunk_eq c) !bucket with
    | Some c' -> c'
    | None ->
      bucket := c :: !bucket;
      t.stats.chunks_interned <- t.stats.chunks_interned + 1;
      c)

(* ----------------------- component capture -------------------------- *)

let capture_core (c : Core.t) =
  { w_cpi_acc = c.Core.cpi_acc; w_frac_ps = c.Core.frac_ps;
    w_busy_cycles = c.Core.busy_cycles; w_busy_ps = c.Core.busy_ps;
    w_idle_ps = c.Core.idle_ps; w_instructions = c.Core.instructions;
    w_stall_cycles = c.Core.stall_cycles }

let restore_core (c : Core.t) s =
  c.Core.cpi_acc <- s.w_cpi_acc;
  c.Core.frac_ps <- s.w_frac_ps;
  c.Core.busy_cycles <- s.w_busy_cycles;
  c.Core.busy_ps <- s.w_busy_ps;
  c.Core.idle_ps <- s.w_idle_ps;
  c.Core.instructions <- s.w_instructions;
  c.Core.stall_cycles <- s.w_stall_cycles

let capture_cache t (cache : Cache.t) ~base_tags ~base_dirty =
  let nsets = cache.Cache.nsets in
  let chunks = ref [] in
  let c = ref ((nsets - 1) / chunk_sets) in
  while !c >= 0 do
    let lo = !c * chunk_sets in
    let len = min chunk_sets (nsets - lo) in
    let differs = ref false in
    let i = ref lo in
    while (not !differs) && !i < lo + len do
      if
        cache.Cache.tags.(!i) <> base_tags.(!i)
        || cache.Cache.dirty.(!i) <> base_dirty.(!i)
      then differs := true;
      incr i
    done;
    if !differs then begin
      t.stats.chunks_captured <- t.stats.chunks_captured + 1;
      chunks :=
        intern_chunk t
          { k_idx = !c; k_tags = Array.sub cache.Cache.tags lo len;
            k_dirty = Array.sub cache.Cache.dirty lo len }
        :: !chunks
    end;
    decr c
  done;
  { w_hits = cache.Cache.hits; w_misses = cache.Cache.misses;
    w_rd_bytes = cache.Cache.rd_bytes; w_wr_bytes = cache.Cache.wr_bytes;
    w_chunks = !chunks }

let restore_cache (cache : Cache.t) s ~base_tags ~base_dirty =
  Array.blit base_tags 0 cache.Cache.tags 0 cache.Cache.nsets;
  Array.blit base_dirty 0 cache.Cache.dirty 0 cache.Cache.nsets;
  List.iter
    (fun k ->
      let lo = k.k_idx * chunk_sets in
      Array.blit k.k_tags 0 cache.Cache.tags lo (Array.length k.k_tags);
      Array.blit k.k_dirty 0 cache.Cache.dirty lo (Array.length k.k_dirty))
    s.w_chunks;
  cache.Cache.hits <- s.w_hits;
  cache.Cache.misses <- s.w_misses;
  cache.Cache.rd_bytes <- s.w_rd_bytes;
  cache.Cache.wr_bytes <- s.w_wr_bytes

let capture_intc (i : Intc.t) =
  { w_enabled = Array.copy i.Intc.enabled;
    w_pending = Array.copy i.Intc.pending;
    w_in_service = i.Intc.in_service; w_live = i.Intc.live }

let restore_intc (i : Intc.t) s =
  Array.blit s.w_enabled 0 i.Intc.enabled 0 (Array.length s.w_enabled);
  Array.blit s.w_pending 0 i.Intc.pending 0 (Array.length s.w_pending);
  i.Intc.in_service <- s.w_in_service;
  i.Intc.live <- s.w_live

(* --------------------------- lifecycle ------------------------------- *)

(** [create ?shared_ranges soc] — capture the shared baseline from a
    {e quiescent} live world (typically: booted and warmed, between
    cycles). All subsequent forks and restores diff against this
    baseline. [shared_ranges] are address ranges [(lo, hi)] (hi
    exclusive) whose pages are exempt from capture and restore — they
    belong to process-wide state (e.g. the DBT code cache, which must
    stay consistent with the engine's shared block map). *)
let create ?(shared_ranges = []) (soc : Soc.t) =
  let mem = soc.Soc.mem in
  let shared = Bytes.make (Mem.npages mem) '\000' in
  List.iter
    (fun (lo, hi) ->
      let p0 = max 0 ((lo - mem.Mem.ram_base) asr Mem.page_bits) in
      let p1 =
        min (Mem.npages mem - 1)
          ((hi - 1 - mem.Mem.ram_base) asr Mem.page_bits)
      in
      for i = p0 to p1 do
        Bytes.set shared i '\001'
      done)
    shared_ranges;
  let t =
    { soc; shared;
      base_pages = Array.init (Mem.npages mem) (fun i -> Mem.page_copy mem i);
      base_cpu_tags = Array.copy soc.Soc.cpu.Core.cache.Cache.tags;
      base_cpu_dirty = Array.copy soc.Soc.cpu.Core.cache.Cache.dirty;
      base_m3_tags = Array.copy soc.Soc.m3.Core.cache.Cache.tags;
      base_m3_dirty = Array.copy soc.Soc.m3.Core.cache.Cache.dirty;
      page_intern = Hashtbl.create 4096; chunk_intern = Hashtbl.create 256;
      hooks = [];
      stats =
        { forks = 0; restores = 0; pages_captured = 0; pages_interned = 0;
          pages_loaded = 0; chunks_captured = 0; chunks_interned = 0;
          false_dirty = 0 } }
  in
  (* the baseline pages are canonical content: seed the intern store so
     a page that diverges and later reverts re-shares the baseline copy *)
  Array.iter (fun p -> ignore (intern_page t p)) t.base_pages;
  t.stats.pages_interned <- 0;
  (* every page now matches the baseline by construction *)
  for i = 0 to Mem.npages mem - 1 do
    Mem.set_page_touched mem i false
  done;
  t

(** [add_hook t hook] — register an upper-layer capture hook: called at
    each fork, must return a thunk that restores whatever it captured.
    Thunks run (in registration order) at each restore. *)
let add_hook t hook = t.hooks <- hook :: t.hooks

let soc t = t.soc
let stats t = t.stats

(* pause both ticks (pulling their events off the queue), run [f],
   resume. The tick state is returned so captures can embed it in the
   snap; whatever events remain queued are one-shot machine events
   (device completions, ARK's conditional tick) and are captured as a
   list — see [mach_state.w_events]. *)
let with_quiesced t f =
  let cpu_tick = Timer.pause_tick t.soc.Soc.cpu_timer in
  let m3_tick = Timer.pause_tick t.soc.Soc.m3_timer in
  let resume () =
    (match cpu_tick with
    | Some s -> Timer.resume_tick t.soc.Soc.cpu_timer s
    | None -> ());
    match m3_tick with
    | Some s -> Timer.resume_tick t.soc.Soc.m3_timer s
    | None -> ()
  in
  let out = f ~cpu_tick ~m3_tick in
  resume ();
  out

let capture_mach t ~cpu_tick ~m3_tick =
  let soc = t.soc in
  { w_now = soc.Soc.clock.Clock.now;
    w_seq = Clock.seq_value soc.Soc.clock;
    w_cpu = capture_core soc.Soc.cpu; w_m3 = capture_core soc.Soc.m3;
    w_cpu_cache =
      capture_cache t soc.Soc.cpu.Core.cache ~base_tags:t.base_cpu_tags
        ~base_dirty:t.base_cpu_dirty;
    w_m3_cache =
      capture_cache t soc.Soc.m3.Core.cache ~base_tags:t.base_m3_tags
        ~base_dirty:t.base_m3_dirty;
    w_gic = capture_intc soc.Soc.fabric.Intc.gic;
    w_nvic = capture_intc soc.Soc.fabric.Intc.nvic;
    w_cpu_tick = cpu_tick; w_m3_tick = m3_tick;
    w_events = Clock.pending soc.Soc.clock;
    w_dma_rd = soc.Soc.mem.Mem.dma_read_bytes;
    w_dma_wr = soc.Soc.mem.Mem.dma_write_bytes }

(** [fork t] — snapshot the live world as an independently-restorable
    fork point. O(diverged state): only pages touched since the last
    fork/restore are compared against the baseline, and page content is
    structurally shared between snapshots via the intern store. *)
let fork t =
  t.stats.forks <- t.stats.forks + 1;
  let mem = t.soc.Soc.mem in
  with_quiesced t (fun ~cpu_tick ~m3_tick ->
      let pages = ref [] in
      for i = Mem.npages mem - 1 downto 0 do
        if Mem.page_touched mem i then
          if Bytes.get t.shared i <> '\000' then
            (* shared page: never captured; unmark so later forks skip *)
            Mem.set_page_touched mem i false
          else begin
            let live = Mem.page_copy mem i in
            if Bytes.equal live t.base_pages.(i) then begin
              (* touched but reverted (or spuriously marked): clean it
                 so future forks skip the compare *)
              Mem.set_page_touched mem i false;
              t.stats.false_dirty <- t.stats.false_dirty + 1
            end
            else begin
              t.stats.pages_captured <- t.stats.pages_captured + 1;
              pages := (i, intern_page t live) :: !pages
            end
          end
      done;
      let ext = List.rev_map (fun hook -> hook ()) t.hooks in
      { s_pages = !pages; s_mach = capture_mach t ~cpu_tick ~m3_tick;
        s_ext = ext })

(** [restore t ?on_page snap] — rewrite the live world to [snap].
    [on_page i ~old] fires for every page index whose bytes were
    rewritten, with the page's prior content, so callers can invalidate
    derived host-side state precisely (the native interpreter's dense
    pre-decode span; the DBT cover — flushing only if a covered word
    really changed, not merely data sharing its page). *)
let restore t ?(on_page = fun _ ~old:_ -> ()) snap =
  t.stats.restores <- t.stats.restores + 1;
  let mem = t.soc.Soc.mem in
  with_quiesced t (fun ~cpu_tick:_ ~m3_tick:_ ->
      (* pages present in the snap, for the touched-page walk below *)
      let want = Hashtbl.create (List.length snap.s_pages * 2) in
      List.iter (fun (i, p) -> Hashtbl.replace want i p) snap.s_pages;
      (* pass 1: every page that may differ from baseline right now
         either gets its snap content or reverts to baseline *)
      for i = 0 to Mem.npages mem - 1 do
        if Mem.page_touched mem i then
          if Bytes.get t.shared i <> '\000' then
            (* shared page (e.g. DBT code cache): content is owned by
               machinery common to all instances — leave it alone *)
            Mem.set_page_touched mem i false
          else
          match Hashtbl.find_opt want i with
          | Some p ->
            Hashtbl.remove want i;
            if not (Mem.page_equal mem i p) then begin
              let old = Mem.page_copy mem i in
              Mem.page_load mem i p;
              t.stats.pages_loaded <- t.stats.pages_loaded + 1;
              on_page i ~old
            end
          | None ->
            if not (Mem.page_equal mem i t.base_pages.(i)) then begin
              let old = Mem.page_copy mem i in
              Mem.page_load mem i t.base_pages.(i);
              t.stats.pages_loaded <- t.stats.pages_loaded + 1;
              on_page i ~old
            end;
            Mem.set_page_touched mem i false
      done;
      (* pass 2: snap pages whose live copy was still at baseline *)
      Hashtbl.iter
        (fun i p ->
          Mem.page_load mem i p;
          Mem.set_page_touched mem i true;
          t.stats.pages_loaded <- t.stats.pages_loaded + 1;
          on_page i ~old:t.base_pages.(i))
        want;
      let soc = t.soc in
      let m = snap.s_mach in
      Clock.restore_pending soc.Soc.clock ~now:m.w_now ~seq:m.w_seq
        m.w_events;
      restore_core soc.Soc.cpu m.w_cpu;
      restore_core soc.Soc.m3 m.w_m3;
      restore_cache soc.Soc.cpu.Core.cache m.w_cpu_cache
        ~base_tags:t.base_cpu_tags ~base_dirty:t.base_cpu_dirty;
      restore_cache soc.Soc.m3.Core.cache m.w_m3_cache
        ~base_tags:t.base_m3_tags ~base_dirty:t.base_m3_dirty;
      restore_intc soc.Soc.fabric.Intc.gic m.w_gic;
      restore_intc soc.Soc.fabric.Intc.nvic m.w_nvic;
      soc.Soc.mem.Mem.dma_read_bytes <- m.w_dma_rd;
      soc.Soc.mem.Mem.dma_write_bytes <- m.w_dma_wr;
      List.iter (fun thunk -> thunk ()) snap.s_ext);
  (* with_quiesced resumed the ticks the *live* world had; replace them
     with the snap's tick state *)
  Timer.stop_tick t.soc.Soc.cpu_timer;
  Timer.stop_tick t.soc.Soc.m3_timer;
  (match snap.s_mach.w_cpu_tick with
  | Some s -> Timer.resume_tick t.soc.Soc.cpu_timer s
  | None -> ());
  match snap.s_mach.w_m3_tick with
  | Some s -> Timer.resume_tick t.soc.Soc.m3_timer s
  | None -> ()
