(** The simulated SoC: an OMAP4460-like platform (Table 6).

    One Cortex-A9-class CPU (1.2 GHz, 1 MB LLC, 630/80 mW busy/idle) and
    one Cortex-M3-class peripheral core (200 MHz, 32 KB LLC, 17/1 mW), in
    separate power domains, sharing DRAM and devices; heterogeneous
    interrupt controllers with a partial routing table. *)

(* ------------------------- memory map ------------------------------- *)

let ram_base = 0x10000000
let ram_size = 24 * 1024 * 1024

(** Where the guest kernel image is linked — shifted low so the
    peripheral core can address it, the paper's §7.5 workaround for the
    Cortex-M3 addressing limit. *)
let kernel_base = 0x10010000

(** Buddy-allocator page pool managed by the guest kernel. *)
let page_pool_base = 0x10800000

let page_pool_size = 4 * 1024 * 1024

(** Kernel stacks (one per kthread / DBT context). *)
let stacks_base = 0x10C00000

let stack_size = 64 * 1024

(** DBT code cache lives in DRAM on the peripheral-core side. *)
let code_cache_base = 0x11000000

let code_cache_size = 2 * 1024 * 1024

(** GIC distributor — mapped for the CPU only; peripheral-core accesses
    fault and are emulated by ARK (§4.2). *)
let gic_base = 0x48240000

let gic_size = 0x100
let cpu_timer_base = 0x48032000
let m3_timer_base = 0x48034000
let dev_mmio_base = 0x4A000000
let dev_mmio_stride = 0x10000

(** [is_cpu_private addr] — true for regions the peripheral core's MPU
    does not map (currently the GIC register file). *)
let is_cpu_private addr = addr >= gic_base && addr < gic_base + gic_size

(** [in_kernel_image addr] — inside the span where guest kernel code can
    live: the region the interpreter pre-decodes densely and the DBT's
    superblock tier covers with its store-invalidation map. *)
let in_kernel_image addr = addr >= kernel_base && addr < page_pool_base

(* ------------------------- IRQ lines -------------------------------- *)

let nlines = 102
(* peripheral core -> CPU (fallback / resume done) *)
let irq_ipi_cpu = 1
let irq_cpu_timer = 37
let irq_m3_timer = 38
(* device i uses line irq_dev_first + i *)
let irq_dev_first = 40

(* ------------------------- core parameters -------------------------- *)

let a9_params : Core.params =
  { cname = "cortex-a9"; freq_mhz = 1200; busy_mw = 630.0; idle_mw = 80.0;
    mmio_penalty = 24; cpi_num = 0; cpi_den = 1 }

let m3_params : Core.params =
  { cname = "cortex-m3"; freq_mhz = 200; busy_mw = 17.0; idle_mw = 1.0;
    mmio_penalty = 4; cpi_num = 4; cpi_den = 3 }

let a9_cache_kb = 1024
let m3_cache_kb = 32
(* same ~100ns DRAM, counted in each core's own cycles *)
let a9_miss_penalty = 110
let m3_miss_penalty = 20

type t = {
  clock : Clock.t;
  mutable sched_clock : Clock.t;
      (** the queue device completions and DMA events arm on: the
          platform clock, except inside a lockstep concurrent segment,
          where it is the lane of the core driving the device — so a
          device poked by the M3 completes in M3 time, deterministically,
          whatever the other core is doing. Aliases [clock] otherwise. *)
  mem : Mem.t;
  fabric : Intc.fabric;
  cpu : Core.t;
  m3 : Core.t;
  cpu_timer : Timer.t;
  m3_timer : Timer.t;
  trace : Tk_stats.Trace.t;
      (** the platform's flight recorder (disabled by default); every
          component of this SoC emits into it *)
  sampler : Tk_stats.Timeseries.t;
      (** the cycle-domain telemetry sampler (disabled by default);
          gauges over every counter of this SoC are wired here, and the
          run loops tick it on the sampling period *)
  spans : Tk_stats.Span.t;
      (** the causal span tracer (disabled by default); the harness
          marks phase frames into it and the interrupt controllers,
          devices and DBT engine record latency/burst spans, each
          snapshotting the attribution gauges wired here *)
}

(** [create ?m3_cache_kb ()] builds a fresh platform. [m3_cache_kb]
    defaults to the OMAP4460's 32 KB; §7.5's "enlarge the LLC modestly"
    recommendation is explored by overriding it. *)
let create ?(m3_cache_kb = m3_cache_kb) () =
  let clock = Clock.create () in
  let mem = Mem.create ~ram_base ~ram_size in
  (* Route device lines and the M3 timer to the NVIC; leave the rest
     (GPIO banks etc.) CPU-only, mirroring OMAP4460's 39/102. *)
  let routed =
    irq_m3_timer :: List.init 30 (fun i -> irq_dev_first + i)
  in
  let fabric = Intc.make_fabric ~nlines ~routed in
  let cpu =
    Core.create ~clock
      ~cache:(Cache.create ~name:"a9-llc" ~size_kb:a9_cache_kb
                ~miss_penalty:a9_miss_penalty)
      a9_params
  in
  let m3 =
    Core.create ~clock
      ~cache:(Cache.create ~name:"m3-llc" ~size_kb:m3_cache_kb
                ~miss_penalty:m3_miss_penalty)
      m3_params
  in
  let cpu_timer = Timer.create ~clock ~fabric ~irq_line:irq_cpu_timer in
  let m3_timer = Timer.create ~clock ~fabric ~irq_line:irq_m3_timer in
  Mem.add_region mem (Intc.mmio_region fabric.gic ~base:gic_base);
  Mem.add_region mem (Timer.mmio_region cpu_timer ~base:cpu_timer_base);
  Mem.add_region mem (Timer.mmio_region m3_timer ~base:m3_timer_base);
  (* flight recorder: one per platform, time-sourced from the shared
     clock, with per-core busy/traffic gauges sampled at phase marks *)
  let trace = Tk_stats.Trace.create () in
  trace.Tk_stats.Trace.now <- (fun () -> clock.Clock.now);
  trace.Tk_stats.Trace.probes <-
    [ ("a9_busy_cy", fun () -> cpu.Core.busy_cycles);
      ("a9_instrs", fun () -> cpu.Core.instructions);
      ("a9_miss", fun () -> cpu.Core.cache.Cache.misses);
      ("m3_busy_cy", fun () -> m3.Core.busy_cycles);
      ("m3_instrs", fun () -> m3.Core.instructions);
      ("m3_miss", fun () -> m3.Core.cache.Cache.misses) ];
  fabric.Intc.gic.Intc.tr <- trace;
  fabric.Intc.gic.Intc.tr_core <- Tk_stats.Trace.core_cpu;
  fabric.Intc.nvic.Intc.tr <- trace;
  fabric.Intc.nvic.Intc.tr_core <- Tk_stats.Trace.core_m3;
  (* cycle-domain sampler: shares the clock with the recorder; one gauge
     per platform counter (core time/work, cache traffic, DMA). Higher
     layers (DBT engine, device drivers) wire their own gauges on top. *)
  let sampler = Tk_stats.Timeseries.create () in
  sampler.Tk_stats.Timeseries.now <- (fun () -> clock.Clock.now);
  let gauge = Tk_stats.Timeseries.add_gauge sampler in
  let core_gauges prefix (c : Core.t) =
    gauge (prefix ^ "_busy_ps") (fun () -> c.Core.busy_ps);
    gauge (prefix ^ "_idle_ps") (fun () -> c.Core.idle_ps);
    gauge (prefix ^ "_busy_cy") (fun () -> c.Core.busy_cycles);
    gauge (prefix ^ "_instrs") (fun () -> c.Core.instructions);
    gauge (prefix ^ "_hits") (fun () -> c.Core.cache.Cache.hits);
    gauge (prefix ^ "_miss") (fun () -> c.Core.cache.Cache.misses);
    gauge (prefix ^ "_rd_bytes") (fun () -> c.Core.cache.Cache.rd_bytes);
    gauge (prefix ^ "_wr_bytes") (fun () -> c.Core.cache.Cache.wr_bytes)
  in
  core_gauges "a9" cpu;
  core_gauges "m3" m3;
  gauge "dma_rd_bytes" (fun () -> mem.Mem.dma_read_bytes);
  gauge "dma_wr_bytes" (fun () -> mem.Mem.dma_write_bytes);
  (* causal span tracer: same clock; attribution gauges are monotone
     counters so sibling span deltas telescope into their parent's
     (Span.reconcile audits the 0.1% bar). Energy is integrated in
     integer nJ from the same busy/idle-ps figures the power model
     uses — truncation of a nondecreasing float keeps it monotone. *)
  let spans = Tk_stats.Span.create () in
  spans.Tk_stats.Span.now <- (fun () -> clock.Clock.now);
  let core_energy_nj (c : Core.t) =
    int_of_float
      (((float_of_int c.Core.busy_ps *. c.Core.p.Core.busy_mw)
       +. (float_of_int c.Core.idle_ps *. c.Core.p.Core.idle_mw))
      /. 1e6)
  in
  Tk_stats.Span.add_gauge spans "instructions" (fun () ->
      cpu.Core.instructions + m3.Core.instructions);
  Tk_stats.Span.add_gauge spans "stall_cycles" (fun () ->
      cpu.Core.stall_cycles + m3.Core.stall_cycles);
  Tk_stats.Span.add_gauge spans "energy_nj" (fun () ->
      core_energy_nj cpu + core_energy_nj m3);
  fabric.Intc.gic.Intc.sp <- spans;
  fabric.Intc.nvic.Intc.sp <- spans;
  { clock; sched_clock = clock; mem; fabric; cpu; m3; cpu_timer; m3_timer;
    trace; sampler; spans }

(** [dev_base i] is the MMIO base address of device slot [i]. *)
let dev_base i = dev_mmio_base + (i * dev_mmio_stride)

(** [dev_irq i] is the platform IRQ line of device slot [i]. *)
let dev_irq i = irq_dev_first + i

(** [stack_top i] is the initial SP for kthread / DBT-context slot [i]
    (full-descending stacks). *)
let stack_top i = stacks_base + ((i + 1) * stack_size) - 16
