(** Guest-native interpreter: the CPU executing V7A kernel code directly.

    This is the paper's "native execution" arm: the monolithic kernel
    running device suspend/resume on the Cortex-A9. The loop fetches
    encoded words from DRAM (through the A9's cache model), decodes them
    (memoized), executes via {!Tk_isa.Exec} and charges cycles; pending
    GIC interrupts vector to the kernel's IRQ entry stub between
    instructions.

    Decode memoization is a {e dense pre-decoded array} over the guest
    kernel image span ([Soc.kernel_base ..) — fetch-decode is one array
    load, and the self-modifying-store invalidation is an O(1) array
    write (covering {e both} words touched by a store that straddles a
    word boundary). Fetches outside the image span (none in practice)
    fall back to a hashtable. All of this is host-side speed only: the
    simulated cycle/traffic counters are bit-identical to the lazy
    hashtable scheme (pinned by test/test_neutrality.ml).

    Guest [SVC] is used as a simulation hypercall (halt / platform-off /
    console), dispatched to the embedding runner through [on_svc]. *)

open Tk_isa

exception Halt of string  (** raised by hypercalls to end a run *)

exception Fault of string  (** simulation bug: deadlock, bad fetch, ... *)

(* The dense decode array covers where kernel code lives: the image
   region below the page pool. *)
let dense_base = Soc.kernel_base
let dense_top = Soc.page_pool_base
let dense_words = (dense_top - dense_base) / 4

type t = {
  soc : Soc.t;
  core : Core.t;
  tr : Tk_stats.Trace.t;  (** the platform flight recorder, cached *)
  cpu : Exec.cpu;
  decode : Types.inst option array;  (** dense, indexed by image word *)
  decode_cache : (int, Types.inst) Hashtbl.t;  (** out-of-span fallback *)
  mutable env : Exec.env;
  mutable env_traced : Exec.env;
      (** same environment with flight-recorder emission on memory
          accesses; [step] selects it only while tracing is enabled, so
          the disabled hot path carries no trace branches *)
  mutable irq_vector : int;  (** guest address of the IRQ entry stub *)
  mutable irq_saved : (int * int) list;  (** (return pc, flags) *)
  mutable on_svc : t -> Exec.cpu -> int -> unit;
  mutable trace : (int -> Types.inst -> unit) option;
}

let dummy_env : Exec.env =
  { load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
    svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
    undef = (fun _ _ -> ()) }

let in_dense = Soc.in_kernel_image

let create ~(soc : Soc.t) () =
  let core = soc.cpu in
  let tr = soc.trace in
  let t =
    { soc; core; tr; cpu = Exec.make_cpu ();
      decode = Array.make dense_words None;
      decode_cache = Hashtbl.create 64;
      env = dummy_env; env_traced = dummy_env; irq_vector = 0;
      irq_saved = [];
      on_svc = (fun _ _ _ -> ()); trace = None }
  in
  let mem = soc.mem in
  (* The untraced closures below are the seed's hot path, byte for
     byte: [step] only hands [env_traced] to the executor while the
     flight recorder is enabled, so tracing costs nothing when off. *)
  let load addr nbytes =
    if Mem.in_ram mem addr then begin
      Core.charge_stall core (Cache.access core.cache ~write:false addr);
      if nbytes = 4 then Mem.ram_read32 mem addr
      else Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge core core.p.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  (* self-modifying code safety: drop any stale decode for a word the
     store touches. A store may straddle a word boundary (e.g. a 4-byte
     store at an unaligned address), so both affected words are
     invalidated. *)
  let invalidate_word w =
    if in_dense w then Array.unsafe_set t.decode ((w - dense_base) asr 2) None
    else Hashtbl.remove t.decode_cache w
  in
  let store addr nbytes v =
    if Mem.in_ram mem addr then begin
      Core.charge_stall core (Cache.access core.cache ~write:true addr);
      let w0 = addr land lnot 3 in
      invalidate_word w0;
      let w1 = (addr + nbytes - 1) land lnot 3 in
      if w1 <> w0 then invalidate_word w1;
      if nbytes = 4 then Mem.ram_write32 mem addr v
      else Mem.ram_write mem addr nbytes v
    end
    else begin
      Core.charge core core.p.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let load_traced addr nbytes =
    if Mem.in_ram mem addr then begin
      let stall = Cache.access core.cache ~write:false addr in
      Core.charge_stall core stall;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_cpu
        Tk_stats.Trace.ev_read addr stall;
      if nbytes = 4 then Mem.ram_read32 mem addr
      else Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge core core.p.mmio_penalty;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_cpu
        Tk_stats.Trace.ev_read addr core.p.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  (* traced variant: also reports decode invalidations that actually
     dropped a cached entry (a self-modifying-code signal) *)
  let invalidate_word_traced w =
    if in_dense w then begin
      let idx = (w - dense_base) asr 2 in
      if Array.unsafe_get t.decode idx <> None then
        Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_cpu
          Tk_stats.Trace.ev_invalidate w 0;
      Array.unsafe_set t.decode idx None
    end
    else begin
      if Hashtbl.mem t.decode_cache w then
        Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_cpu
          Tk_stats.Trace.ev_invalidate w 0;
      Hashtbl.remove t.decode_cache w
    end
  in
  let store_traced addr nbytes v =
    if Mem.in_ram mem addr then begin
      let stall = Cache.access core.cache ~write:true addr in
      Core.charge_stall core stall;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_cpu
        Tk_stats.Trace.ev_write addr stall;
      let w0 = addr land lnot 3 in
      invalidate_word_traced w0;
      let w1 = (addr + nbytes - 1) land lnot 3 in
      if w1 <> w0 then invalidate_word_traced w1;
      if nbytes = 4 then Mem.ram_write32 mem addr v
      else Mem.ram_write mem addr nbytes v
    end
    else begin
      Core.charge core core.p.mmio_penalty;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_cpu
        Tk_stats.Trace.ev_write addr core.p.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let wfi _cpu =
    if not (Core.idle_until_event core) then
      raise (Fault "WFI with no pending event: platform deadlock")
  in
  let irq_ret cpu =
    match t.irq_saved with
    | [] -> raise (Fault "IRQ return with empty saved-context stack")
    | (ret_pc, flags) :: rest ->
      t.irq_saved <- rest;
      cpu.Exec.r.(Types.pc) <- ret_pc;
      Exec.set_flags_word cpu flags;
      cpu.Exec.irq_on <- true
  in
  let undef _cpu inst =
    raise (Fault (Printf.sprintf "undefined instruction: %s" (Types.to_string inst)))
  in
  let svc cpu n = t.on_svc t cpu n in
  t.env <- { load; store; svc; wfi; irq_ret; undef };
  t.env_traced <-
    { load = load_traced; store = store_traced; svc; wfi; irq_ret; undef };
  t

(** [set_pc t addr] positions the next fetch. *)
let set_pc t addr = t.cpu.Exec.r.(Types.pc) <- addr

let decode_word t addr =
  let w = Mem.ram_read32 t.soc.mem addr in
  try V7a.decode w
  with V7a.Decode_error _ | Invalid_argument _ ->
    raise (Fault (Printf.sprintf "bad fetch at 0x%x (word 0x%x)" addr w))

let fetch_decode t addr =
  if in_dense addr && addr land 3 = 0 then begin
    let idx = (addr - dense_base) asr 2 in
    match Array.unsafe_get t.decode idx with
    | Some i -> i
    | None ->
      let i = decode_word t addr in
      Array.unsafe_set t.decode idx (Some i);
      i
  end
  else
    match Hashtbl.find_opt t.decode_cache addr with
    | Some i -> i
    | None ->
      let i = decode_word t addr in
      Hashtbl.add t.decode_cache addr i;
      i

let deliver_irq t =
  let cpu = t.cpu in
  t.irq_saved <- (cpu.Exec.r.(Types.pc), Exec.flags_word cpu) :: t.irq_saved;
  cpu.Exec.irq_on <- false;
  cpu.Exec.r.(Types.pc) <- t.irq_vector

(* one step with the tracing decision precomputed: [run] hoists the
   enabled check out of its loop entirely (tracing never toggles while
   guest code is executing), so the disabled path tests only an
   immutable register-resident bool *)
let step_env t traced env =
  let cpu = t.cpu in
  if cpu.Exec.irq_on && Intc.deliverable t.soc.fabric.gic then
    deliver_irq t;
  let addr = Array.unsafe_get cpu.Exec.r Types.pc in
  if not (Mem.in_ram t.soc.mem addr) then
    raise (Fault (Printf.sprintf "PC outside RAM: 0x%x" addr));
  let i = fetch_decode t addr in
  (match t.trace with Some f -> f addr i | None -> ());
  Core.retire t.core addr;
  if traced then
    Tk_stats.Trace.emit t.tr ~core:Tk_stats.Trace.core_cpu
      Tk_stats.Trace.ev_retire addr 0;
  match Exec.step cpu env ~addr i with
  | Exec.Next -> Array.unsafe_set cpu.Exec.r Types.pc (addr + 4)
  | Exec.Branched -> ()

(** [step t] executes one instruction (delivering a pending enabled IRQ
    first). *)
let step t =
  let traced = t.tr.Tk_stats.Trace.enabled in
  step_env t traced (if traced then t.env_traced else t.env);
  let ts = t.soc.Soc.sampler in
  if ts.Tk_stats.Timeseries.enabled then Tk_stats.Timeseries.tick ts

(** [run t ~fuel] steps until a hypercall raises {!Halt} (or [fuel]
    instructions elapse, which raises {!Fault} — a runaway guest). *)
let run_loop t ~fuel =
  let n = ref 0 in
  let traced = t.tr.Tk_stats.Trace.enabled in
  let env = if traced then t.env_traced else t.env in
  (* telemetry sampler: same hoisting discipline as tracing — when
     sampling is off the loop only tests an immutable bool *)
  let ts = t.soc.Soc.sampler in
  let sampling = ts.Tk_stats.Timeseries.enabled in
  while !n < fuel do
    incr n;
    step_env t traced env;
    if sampling then Tk_stats.Timeseries.tick ts
  done;
  raise (Fault (Printf.sprintf "fuel exhausted after %d instructions" fuel))

(** [run_until t ~deadline ~fuel] — bounded-quantum slice of {!run}:
    step until the core's clock reaches absolute time [deadline], then
    return normally (the next call resumes at the saved pc — between
    instructions every interpreter state is a resume point). {!Halt}
    still propagates when the guest finishes inside the slice. *)
let run_until t ~deadline ~fuel =
  let n = ref 0 in
  let traced = t.tr.Tk_stats.Trace.enabled in
  let env = if traced then t.env_traced else t.env in
  let ts = t.soc.Soc.sampler in
  let sampling = ts.Tk_stats.Timeseries.enabled in
  let clock = t.core.Core.clock in
  while clock.Clock.now < deadline do
    if !n >= fuel then
      raise (Fault (Printf.sprintf "fuel exhausted after %d instructions" fuel));
    incr n;
    step_env t traced env;
    if sampling then Tk_stats.Timeseries.tick ts
  done

let run t ~fuel =
  (* one execution-burst span per call; [run] only ever exits by
     exception (Halt / Fault), so the close rides in [~finally] *)
  let sp = t.soc.Soc.spans in
  if sp.Tk_stats.Span.enabled then begin
    let tok =
      Tk_stats.Span.enter sp ~core:Tk_stats.Trace.core_cpu
        Tk_stats.Span.sk_run 0
    in
    Fun.protect
      ~finally:(fun () -> Tk_stats.Span.leave sp tok)
      (fun () -> run_loop t ~fuel)
  end
  else run_loop t ~fuel
