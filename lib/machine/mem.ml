(** Shared physical memory and the MMIO bus.

    Both cores address the same DRAM at the same addresses — the "shared
    platform resources" half of the paper's hardware model (§2.2): the
    peripheral core maps all kernel code/data at identical addresses as
    the CPU. Accesses outside DRAM are routed to registered MMIO regions
    (devices, interrupt controllers, timers); an unclaimed access raises
    {!Bus_fault}, which is how the M3's MPU fault on the CPU's interrupt
    controller registers is modelled. *)

exception Bus_fault of { addr : int; write : bool }

type region = {
  rbase : int;
  rsize : int;
  rname : string;
  rread : int -> int -> int;  (** [rread offset nbytes] *)
  rwrite : int -> int -> int -> unit;  (** [rwrite offset nbytes value] *)
}

(* DRAM is tracked in 4 KiB pages for the world-snapshot layer: every
   store marks its page in [page_touched], so a snapshot only has to
   compare the touched pages against the baseline instead of all of
   DRAM. The barrier is one unsafe byte store per write path — the
   bitmap is a Bytes so marking is branch-free. *)
let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  ram_base : int;
  ram : Bytes.t;
  page_touched : Bytes.t;  (** '\001' where the page may differ from
                               the snapshot baseline *)
  mutable regions : region list;
  mutable dma_read_bytes : int;  (** device-initiated DRAM traffic *)
  mutable dma_write_bytes : int;
}

(** [create ~ram_base ~ram_size] makes a platform memory with zeroed
    DRAM. *)
let create ~ram_base ~ram_size =
  { ram_base; ram = Bytes.make ram_size '\000';
    (* one slack byte past the end: the write barrier marks the page of
       [off + nbytes - 1] before the Bytes primitive bounds-checks the
       store, and a straddling write at the very top of RAM would index
       one past the last page *)
    page_touched =
      Bytes.make (((ram_size + page_size - 1) lsr page_bits) + 1) '\000';
    regions = []; dma_read_bytes = 0; dma_write_bytes = 0 }

let npages t = Bytes.length t.page_touched - 1
let page_touched t i = Bytes.unsafe_get t.page_touched i <> '\000'

let set_page_touched t i v =
  Bytes.unsafe_set t.page_touched i (if v then '\001' else '\000')

(** [page_bounds t i] — the in-RAM byte offset and length of page [i]
    (the last page may be partial). *)
let page_bounds t i =
  let off = i lsl page_bits in
  (off, min page_size (Bytes.length t.ram - off))

(** [page_copy t i] — a fresh copy of page [i]'s bytes. *)
let page_copy t i =
  let off, len = page_bounds t i in
  Bytes.sub t.ram off len

let page_equal t i buf =
  let off, len = page_bounds t i in
  len = Bytes.length buf && Bytes.sub t.ram off len = buf

(** [page_load t i buf] — overwrite page [i] with [buf] (no dirty
    marking: the snapshot layer maintains the bitmap itself). *)
let page_load t i buf =
  let off, len = page_bounds t i in
  Bytes.blit buf 0 t.ram off len

(** [add_region t r] registers an MMIO region (latest wins on overlap). *)
let add_region t r = t.regions <- r :: t.regions

let in_ram t addr = addr >= t.ram_base && addr < t.ram_base + Bytes.length t.ram

let find_region t addr =
  List.find_opt (fun r -> addr >= r.rbase && addr < r.rbase + r.rsize) t.regions

(* Raw RAM accessors, little-endian. *)
let ram_read t addr nbytes =
  let off = addr - t.ram_base in
  match nbytes with
  | 1 -> Char.code (Bytes.get t.ram off)
  | 2 -> Bytes.get_uint16_le t.ram off
  | 4 -> Int32.to_int (Bytes.get_int32_le t.ram off) land 0xFFFFFFFF
  | n -> invalid_arg (Printf.sprintf "ram_read size %d" n)

let ram_write t addr nbytes v =
  let off = addr - t.ram_base in
  Bytes.unsafe_set t.page_touched (off lsr page_bits) '\001';
  Bytes.unsafe_set t.page_touched ((off + nbytes - 1) lsr page_bits) '\001';
  match nbytes with
  | 1 -> Bytes.set t.ram off (Char.chr (v land 0xFF))
  | 2 -> Bytes.set_uint16_le t.ram off (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le t.ram off (Int32.of_int (Tk_isa.Bits.s32 v))
  | n -> invalid_arg (Printf.sprintf "ram_write size %d" n)

(* Fast-path word accessors for the interpreter hot loops: same
   semantics as [ram_read]/[ram_write] with [nbytes = 4], minus the size
   dispatch. The caller has already established [in_ram addr]; the
   Bytes primitives still bounds-check the (rare) case of a word
   straddling the end of RAM. *)
let ram_read32 t addr =
  Int32.to_int (Bytes.get_int32_le t.ram (addr - t.ram_base)) land 0xFFFFFFFF

let ram_write32 t addr v =
  let off = addr - t.ram_base in
  Bytes.unsafe_set t.page_touched (off lsr page_bits) '\001';
  Bytes.unsafe_set t.page_touched ((off + 3) lsr page_bits) '\001';
  Bytes.set_int32_le t.ram off (Int32.of_int (Tk_isa.Bits.s32 v))

(** [read t addr nbytes] — core- or DBT-initiated read; RAM or MMIO.
    @raise Bus_fault on unclaimed addresses. *)
let read t addr nbytes =
  if in_ram t addr then ram_read t addr nbytes
  else
    match find_region t addr with
    | Some r -> r.rread (addr - r.rbase) nbytes land 0xFFFFFFFF
    | None -> raise (Bus_fault { addr; write = false })

(** [write t addr nbytes v] — core- or DBT-initiated write. *)
let write t addr nbytes v =
  if in_ram t addr then ram_write t addr nbytes v
  else
    match find_region t addr with
    | Some r -> r.rwrite (addr - r.rbase) nbytes v
    | None -> raise (Bus_fault { addr; write = true })

(** [dma_read t addr n] models a device reading [n] bytes from DRAM
    (counted as DRAM traffic, bypassing core caches). Returns the bytes
    as ints. *)
let dma_read t addr n =
  t.dma_read_bytes <- t.dma_read_bytes + n;
  List.init n (fun i -> ram_read t (addr + i) 1)

(** [dma_write t addr bytes] models a device writing to DRAM. *)
let dma_write t addr bytes =
  t.dma_write_bytes <- t.dma_write_bytes + List.length bytes;
  List.iteri (fun i b -> ram_write t (addr + i) 1 b) bytes

(** [load_image t (img : Tk_isa.Asm.image)] copies a linked guest image
    into DRAM at its base address. *)
let load_image t (img : Tk_isa.Asm.image) =
  Array.iteri (fun i w -> ram_write t (img.base + (4 * i)) 4 w) img.words

(** [digest t ~lo ~hi] is a cheap checksum of a DRAM range, used by the
    differential tests to compare end states of native vs translated
    execution. *)
let digest t ~lo ~hi =
  let h = ref 5381 in
  for a = lo to hi - 1 do
    if in_ram t a then h := ((!h lsl 5) + !h + ram_read t a 1) land 0x3FFFFFFFFFFF
  done;
  !h
