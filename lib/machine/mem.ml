(** Shared physical memory and the MMIO bus.

    Both cores address the same DRAM at the same addresses — the "shared
    platform resources" half of the paper's hardware model (§2.2): the
    peripheral core maps all kernel code/data at identical addresses as
    the CPU. Accesses outside DRAM are routed to registered MMIO regions
    (devices, interrupt controllers, timers); an unclaimed access raises
    {!Bus_fault}, which is how the M3's MPU fault on the CPU's interrupt
    controller registers is modelled. *)

exception Bus_fault of { addr : int; write : bool }

type region = {
  rbase : int;
  rsize : int;
  rname : string;
  rread : int -> int -> int;  (** [rread offset nbytes] *)
  rwrite : int -> int -> int -> unit;  (** [rwrite offset nbytes value] *)
}

type t = {
  ram_base : int;
  ram : Bytes.t;
  mutable regions : region list;
  mutable dma_read_bytes : int;  (** device-initiated DRAM traffic *)
  mutable dma_write_bytes : int;
}

(** [create ~ram_base ~ram_size] makes a platform memory with zeroed
    DRAM. *)
let create ~ram_base ~ram_size =
  { ram_base; ram = Bytes.make ram_size '\000'; regions = [];
    dma_read_bytes = 0; dma_write_bytes = 0 }

(** [add_region t r] registers an MMIO region (latest wins on overlap). *)
let add_region t r = t.regions <- r :: t.regions

let in_ram t addr = addr >= t.ram_base && addr < t.ram_base + Bytes.length t.ram

let find_region t addr =
  List.find_opt (fun r -> addr >= r.rbase && addr < r.rbase + r.rsize) t.regions

(* Raw RAM accessors, little-endian. *)
let ram_read t addr nbytes =
  let off = addr - t.ram_base in
  match nbytes with
  | 1 -> Char.code (Bytes.get t.ram off)
  | 2 -> Bytes.get_uint16_le t.ram off
  | 4 -> Int32.to_int (Bytes.get_int32_le t.ram off) land 0xFFFFFFFF
  | n -> invalid_arg (Printf.sprintf "ram_read size %d" n)

let ram_write t addr nbytes v =
  let off = addr - t.ram_base in
  match nbytes with
  | 1 -> Bytes.set t.ram off (Char.chr (v land 0xFF))
  | 2 -> Bytes.set_uint16_le t.ram off (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le t.ram off (Int32.of_int (Tk_isa.Bits.s32 v))
  | n -> invalid_arg (Printf.sprintf "ram_write size %d" n)

(* Fast-path word accessors for the interpreter hot loops: same
   semantics as [ram_read]/[ram_write] with [nbytes = 4], minus the size
   dispatch. The caller has already established [in_ram addr]; the
   Bytes primitives still bounds-check the (rare) case of a word
   straddling the end of RAM. *)
let ram_read32 t addr =
  Int32.to_int (Bytes.get_int32_le t.ram (addr - t.ram_base)) land 0xFFFFFFFF

let ram_write32 t addr v =
  Bytes.set_int32_le t.ram (addr - t.ram_base)
    (Int32.of_int (Tk_isa.Bits.s32 v))

(** [read t addr nbytes] — core- or DBT-initiated read; RAM or MMIO.
    @raise Bus_fault on unclaimed addresses. *)
let read t addr nbytes =
  if in_ram t addr then ram_read t addr nbytes
  else
    match find_region t addr with
    | Some r -> r.rread (addr - r.rbase) nbytes land 0xFFFFFFFF
    | None -> raise (Bus_fault { addr; write = false })

(** [write t addr nbytes v] — core- or DBT-initiated write. *)
let write t addr nbytes v =
  if in_ram t addr then ram_write t addr nbytes v
  else
    match find_region t addr with
    | Some r -> r.rwrite (addr - r.rbase) nbytes v
    | None -> raise (Bus_fault { addr; write = true })

(** [dma_read t addr n] models a device reading [n] bytes from DRAM
    (counted as DRAM traffic, bypassing core caches). Returns the bytes
    as ints. *)
let dma_read t addr n =
  t.dma_read_bytes <- t.dma_read_bytes + n;
  List.init n (fun i -> ram_read t (addr + i) 1)

(** [dma_write t addr bytes] models a device writing to DRAM. *)
let dma_write t addr bytes =
  t.dma_write_bytes <- t.dma_write_bytes + List.length bytes;
  List.iteri (fun i b -> ram_write t (addr + i) 1 b) bytes

(** [load_image t (img : Tk_isa.Asm.image)] copies a linked guest image
    into DRAM at its base address. *)
let load_image t (img : Tk_isa.Asm.image) =
  Array.iteri (fun i w -> ram_write t (img.base + (4 * i)) 4 w) img.words

(** [digest t ~lo ~hi] is a cheap checksum of a DRAM range, used by the
    differential tests to compare end states of native vs translated
    execution. *)
let digest t ~lo ~hi =
  let h = ref 5381 in
  for a = lo to hi - 1 do
    if in_ram t a then h := ((!h lsl 5) + !h + ram_read t a 1) land 0x3FFFFFFFFFFF
  done;
  !h
