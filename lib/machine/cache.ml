(** Last-level cache model (per core).

    A direct-mapped cache with 32-byte lines. Its purpose is not
    microarchitectural fidelity but the paper's two first-order effects:

    {ul
    {- miss {e cycles} lengthen busy time — the Cortex-M3's 32 KB LLC
       thrashes under the ~230 KB of emitted host code plus kernel data,
       while the A9's 1 MB LLC absorbs the working set (§7.3);}
    {- miss {e traffic} drives the DRAM power model — the paper measures
       32 MB/s read on M3 vs 8 MB/s on A9 and attributes the extra DRAM
       energy to LLC thrashing (Figure 5b).}} *)

type t = {
  name : string;
  line_bits : int;  (** log2 of line size *)
  nsets : int;
  set_mask : int;
      (** [nsets - 1] when [nsets] is a power of two (every realistic
          size is), else [-1]; lets {!access} replace the per-access
          integer division by a bitmask *)
  tags : int array;  (** -1 = invalid *)
  dirty : bool array;
  miss_penalty : int;  (** core cycles per miss *)
  mutable hits : int;
  mutable misses : int;
  mutable rd_bytes : int;  (** DRAM reads caused by fills *)
  mutable wr_bytes : int;  (** DRAM writes caused by evictions *)
}

(** [create ~name ~size_kb ~miss_penalty] builds a direct-mapped cache
    with 32-byte lines. *)
let create ~name ~size_kb ~miss_penalty =
  let line = 32 in
  let nsets = size_kb * 1024 / line in
  let set_mask = if nsets land (nsets - 1) = 0 then nsets - 1 else -1 in
  { name; line_bits = 5; nsets; set_mask; tags = Array.make nsets (-1);
    dirty = Array.make nsets false; miss_penalty; hits = 0; misses = 0;
    rd_bytes = 0; wr_bytes = 0 }

let line_size t = 1 lsl t.line_bits

(** [access t ~write addr] simulates one access; returns the stall cycles
    (0 on hit, [miss_penalty] on miss) and updates traffic counters. *)
let access t ~write addr =
  let line = addr lsr t.line_bits in
  let set =
    if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets
  in
  (* [set < nsets] by construction (mask or mod), so the unchecked
     accesses are safe *)
  if Array.unsafe_get t.tags set = line then begin
    t.hits <- t.hits + 1;
    if write then Array.unsafe_set t.dirty set true;
    0
  end
  else begin
    t.misses <- t.misses + 1;
    if Array.unsafe_get t.tags set >= 0 && Array.unsafe_get t.dirty set then
      t.wr_bytes <- t.wr_bytes + line_size t;
    Array.unsafe_set t.tags set line;
    Array.unsafe_set t.dirty set write;
    t.rd_bytes <- t.rd_bytes + line_size t;
    t.miss_penalty
  end

(** [flush t] invalidates everything (writing back dirty lines), as ARK
    does on fallback migration; returns the number of lines written
    back. *)
let flush t =
  let wb = ref 0 in
  for s = 0 to t.nsets - 1 do
    if t.tags.(s) >= 0 && t.dirty.(s) then begin
      incr wb;
      t.wr_bytes <- t.wr_bytes + line_size t
    end;
    t.tags.(s) <- -1;
    t.dirty.(s) <- false
  done;
  !wb

(** [reset_counters t] zeroes hit/miss/traffic counters (cache contents
    are kept — benches measure warm caches, as the paper does). *)
let reset_counters t =
  t.hits <- 0; t.misses <- 0; t.rd_bytes <- 0; t.wr_bytes <- 0

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total
