(** The simulated SoC: an OMAP4460-like platform (Table 6).

    One Cortex-A9-class CPU (1.2 GHz, 1 MB LLC, 630/80 mW busy/idle) and
    one Cortex-M3-class peripheral core (200 MHz, 32 KB LLC, 17/1 mW), in
    separate power domains, sharing DRAM and devices; heterogeneous
    interrupt controllers with a partial routing table. *)

(* ------------------------- memory map ------------------------------- *)

val ram_base : int

(** Where the guest kernel image is linked — shifted low so the
    peripheral core can address it, the paper's §7.5 workaround for the
    Cortex-M3 addressing limit. *)
val kernel_base : int

(** Buddy-allocator page pool managed by the guest kernel. *)
val page_pool_base : int

val page_pool_size : int

(** Kernel stacks (one per kthread / DBT context). *)
val stacks_base : int

(** Per-thread stack budget in bytes (checked statically by
    [arksim analyze --cfg]). *)
val stack_size : int

(** DBT code cache lives in DRAM on the peripheral-core side. *)
val code_cache_base : int

val code_cache_size : int

(** GIC distributor — mapped for the CPU only; peripheral-core accesses
    fault and are emulated by ARK (§4.2). *)
val gic_base : int

val cpu_timer_base : int

(** [is_cpu_private addr] — true for regions the peripheral core's MPU
    does not map (currently the GIC register file). *)
val is_cpu_private : int -> bool

(** [in_kernel_image addr] — inside the span where guest kernel code can
    live ([kernel_base, page_pool_base)): the interpreter's dense-decode
    span and the superblock tier's store-invalidation cover. *)
val in_kernel_image : int -> bool

(* ------------------------- IRQ lines -------------------------------- *)

val nlines : int

(** Peripheral core -> CPU doorbell (fallback / resume done). *)
val irq_ipi_cpu : int

val irq_cpu_timer : int

(* ------------------------- core parameters -------------------------- *)

val a9_params : Core.params
val m3_params : Core.params
val a9_cache_kb : int
val m3_cache_kb : int

type t = {
  clock : Clock.t;
  mutable sched_clock : Clock.t;
      (** the queue device completions and DMA events arm on: the
          platform clock, except inside a lockstep concurrent segment,
          where it is the lane of the core driving the device — so a
          device poked by the M3 completes in M3 time, deterministically,
          whatever the other core is doing. Aliases [clock] otherwise. *)
  mem : Mem.t;
  fabric : Intc.fabric;
  cpu : Core.t;
  m3 : Core.t;
  cpu_timer : Timer.t;
  m3_timer : Timer.t;
  trace : Tk_stats.Trace.t;
      (** the platform's flight recorder (disabled by default); every
          component of this SoC emits into it *)
  sampler : Tk_stats.Timeseries.t;
      (** the cycle-domain telemetry sampler (disabled by default);
          gauges over every counter of this SoC are wired here, and the
          run loops tick it on the sampling period *)
  spans : Tk_stats.Span.t;
      (** the causal span tracer (disabled by default); the harness
          marks phase frames into it and the interrupt controllers,
          devices and DBT engine record latency/burst spans, each
          snapshotting the attribution gauges wired here *)
}

(** [create ?m3_cache_kb ()] builds a fresh platform. [m3_cache_kb]
    defaults to the OMAP4460's 32 KB; §7.5's "enlarge the LLC modestly"
    recommendation is explored by overriding it. *)
val create : ?m3_cache_kb:int -> unit -> t

(** [dev_base i] is the MMIO base address of device slot [i]. *)
val dev_base : int -> int

(** MMIO stride between device slots. *)
val dev_mmio_stride : int

(** [dev_irq i] is the platform IRQ line of device slot [i]. *)
val dev_irq : int -> int

(** [stack_top i] is the initial SP for kthread / DBT-context slot [i]
    (full-descending stacks). *)
val stack_top : int -> int
