(** Bounded-quantum two-core lockstep scheduler.

    The sequential scheduler runs one core at a time against the single
    platform clock. This module runs several {e lanes} — each a core
    with a private event queue split from the platform clock via
    {!Clock.lane} — in rounds of at most [quantum] ns, with a
    deterministic barrier at every quantum boundary:

    - within a round, every live lane advances its own clock up to the
      round boundary [b = start + k*quantum] (never past it, except by
      the tail of one indivisible charge — an [udelay], an IRQ entry
      sequence — which bounds worst-case skew at [quantum + that tail]);
    - at the barrier, cross-lane effects posted during the round (IRQ
      deliveries, DMA completions, shared-memory pokes) are committed in
      a fixed (time, lane, arrival-seq) order, so the observable
      interleaving is a pure function of the configuration — never of
      host scheduling;
    - lanes share the platform clock's [seq] allocator, so the merged
      event order across both queues is total, and at [--quantum 1] a
      solo-core run is byte-identical to the sequential scheduler
      (CI-gated against the manifest and fleet digests).

    Rounds are driven either by a deterministic interleave (lane order
    fixed, single domain — the default, safe for any telemetry) or with
    each extra lane on its own [Domain] ([~domains:true]) — the barrier
    is then a real synchronization point and per-SoC throughput roughly
    doubles on a multicore host. Domain mode requires the lanes to touch
    disjoint mutable state between barriers (the harness guarantees
    this: trace/sampler/spans off, A9 running IRQ-masked CPU work, M3
    owning the devices via [Soc.sched_clock]). *)

type status = [ `Runnable | `Blocked | `Done ]

type lane = {
  l_name : string;
  l_clock : Clock.t;
  l_run : deadline:int -> status;
      (** advance the lane until its clock reaches [deadline] (or it
          completes / has nothing left to do). [`Blocked] means nothing
          runnable {e and} no pending events: the driver drags the
          lane's clock along and re-polls it after each barrier, since a
          cross-lane commit can wake it. *)
}

type commit = { c_at : int; c_seq : int; c_fn : unit -> unit }

type stats = {
  mutable rounds : int;
  mutable commits : int;
  mutable max_skew_ns : int;
      (** widest observed gap between any two live lanes' clocks at a
          barrier *)
}

type t = {
  quantum : int;
  lanes : lane array;
  status : status array;
  posted : commit list ref array;  (** per-lane, newest first *)
  seqs : int array;  (** per-lane commit arrival counters *)
  stats : stats;
  mutable barrier_at : int;
}

let create ~quantum lanes =
  if quantum <= 0 then invalid_arg "Lockstep.create: quantum must be > 0";
  let lanes = Array.of_list lanes in
  if Array.length lanes = 0 then invalid_arg "Lockstep.create: no lanes";
  let start = lanes.(0).l_clock.Clock.now in
  Array.iter
    (fun l ->
      if l.l_clock.Clock.now <> start then
        invalid_arg "Lockstep.create: lanes must start at a common time")
    lanes;
  { quantum; lanes; status = Array.make (Array.length lanes) `Runnable;
    posted = Array.init (Array.length lanes) (fun _ -> ref []);
    seqs = Array.make (Array.length lanes) 0;
    stats = { rounds = 0; commits = 0; max_skew_ns = 0 };
    barrier_at = start }

(** [post t ~lane fn] — record a cross-lane effect produced by [lane]
    during the current round; [fn] runs at the next barrier, ordered by
    (time-posted-at, lane, arrival order). Lanes may only post from
    their own execution (in domain mode this keeps the buffers
    single-writer). *)
let post t ~lane fn =
  let at = t.lanes.(lane).l_clock.Clock.now in
  let seq = t.seqs.(lane) in
  t.seqs.(lane) <- seq + 1;
  let buf = t.posted.(lane) in
  buf := { c_at = at; c_seq = seq; c_fn = fn } :: !buf

(* flush every posted commit in (time, lane, arrival) order; returns how
   many ran. Commits run on the driving domain, after all lanes have
   reached the barrier — they may schedule events on any lane. *)
let flush_commits t =
  let all = ref [] in
  Array.iteri
    (fun lane buf ->
      List.iter (fun c -> all := (c.c_at, lane, c.c_seq, c.c_fn) :: !all) !buf;
      buf := [])
    t.posted;
  let ordered =
    List.sort
      (fun (a1, l1, s1, _) (a2, l2, s2, _) -> compare (a1, l1, s1) (a2, l2, s2))
      !all
  in
  List.iter (fun (_, _, _, fn) -> fn ()) ordered;
  List.length ordered

exception Deadlock of string

let live t i = t.status.(i) <> `Done

let describe t =
  String.concat "; "
    (Array.to_list
       (Array.mapi
          (fun i l ->
            Printf.sprintf "%s: %s at %d ns (next event %s)" l.l_name
              (match t.status.(i) with
              | `Runnable -> "runnable"
              | `Blocked -> "blocked"
              | `Done -> "done")
              l.l_clock.Clock.now
              (match Clock.next_event_time l.l_clock with
              | Some at -> string_of_int at
              | None -> "none"))
          t.lanes))

let record_skew t =
  let mn = ref max_int and mx = ref min_int in
  Array.iteri
    (fun i l ->
      if live t i then begin
        mn := min !mn l.l_clock.Clock.now;
        mx := max !mx l.l_clock.Clock.now
      end)
    t.lanes;
  if !mx > !mn then t.stats.max_skew_ns <- max t.stats.max_skew_ns (!mx - !mn)

let step_lane t i ~deadline =
  let l = t.lanes.(i) in
  let st = l.l_run ~deadline in
  t.status.(i) <- st;
  (* a blocked lane's time is dragged to the boundary so a later wakeup
     resumes in the present, not the past; any event a commit armed in
     the meantime fires on arrival at the boundary — and may unblock
     the lane, so re-poll to keep the status (and with it the stuck
     detection) honest. The clock sits at the boundary, so the re-poll
     cannot advance time: it only refreshes the status. *)
  if st = `Blocked && l.l_clock.Clock.now < deadline then begin
    l.l_clock.Clock.now <- deadline;
    Clock.run_due l.l_clock;
    t.status.(i) <- l.l_run ~deadline
  end

(* ------------------------ deterministic rounds ----------------------- *)

let run_interleaved t =
  let n = Array.length t.lanes in
  let any_live () =
    let r = ref false in
    for i = 0 to n - 1 do
      if live t i then r := true
    done;
    !r
  in
  while any_live () do
    t.stats.rounds <- t.stats.rounds + 1;
    t.barrier_at <- t.barrier_at + t.quantum;
    for i = 0 to n - 1 do
      if live t i then step_lane t i ~deadline:t.barrier_at
    done;
    record_skew t;
    let committed = flush_commits t in
    t.stats.commits <- t.stats.commits + committed;
    (* forward progress: a round where every live lane is blocked, no
       commit ran and no lane holds a pending event can never unblock *)
    if committed = 0 then begin
      (* vacuously "stuck" when every lane just finished: not a deadlock *)
      let stuck = ref (any_live ()) in
      for i = 0 to n - 1 do
        if
          live t i
          && (t.status.(i) <> `Blocked
             || Clock.next_event_time t.lanes.(i).l_clock <> None)
        then stuck := false
      done;
      if !stuck then
        raise
          (Deadlock
             ("lockstep deadlock: all lanes blocked with no events or \
               commits pending (" ^ describe t ^ ")"))
    end
  done

(* --------------------------- domain rounds --------------------------- *)

(* One persistent worker domain per extra lane; the main domain runs
   lane 0. Each round: publish the boundary, let every live lane run
   concurrently, then rendezvous — the mutex/condition pair is the
   barrier. Commits are flushed on the main domain only, between
   rounds, so cross-lane state is never touched concurrently. *)
type worker_cmd = Run of int | Quit

type worker_box = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable cmd : worker_cmd option;
  mutable done_round : bool;
}

let run_domains t =
  let n = Array.length t.lanes in
  let boxes =
    Array.init (n - 1) (fun _ ->
        { mu = Mutex.create (); cv = Condition.create (); cmd = None;
          done_round = false })
  in
  let workers =
    Array.init (n - 1) (fun w ->
        Domain.spawn (fun () ->
            let box = boxes.(w) in
            let lane = w + 1 in
            let rec serve () =
              Mutex.lock box.mu;
              while box.cmd = None do
                Condition.wait box.cv box.mu
              done;
              let cmd = Option.get box.cmd in
              box.cmd <- None;
              Mutex.unlock box.mu;
              match cmd with
              | Quit -> ()
              | Run deadline ->
                if live t lane then step_lane t lane ~deadline;
                Mutex.lock box.mu;
                box.done_round <- true;
                Condition.signal box.cv;
                Mutex.unlock box.mu;
                serve ()
            in
            serve ()))
  in
  let tell w cmd =
    let box = boxes.(w) in
    Mutex.lock box.mu;
    box.cmd <- Some cmd;
    Condition.signal box.cv;
    Mutex.unlock box.mu
  in
  let await w =
    let box = boxes.(w) in
    Mutex.lock box.mu;
    while not box.done_round do
      Condition.wait box.cv box.mu
    done;
    box.done_round <- false;
    Mutex.unlock box.mu
  in
  let any_live () =
    let r = ref false in
    for i = 0 to n - 1 do
      if live t i then r := true
    done;
    !r
  in
  Fun.protect
    ~finally:(fun () ->
      for w = 0 to n - 2 do
        tell w Quit
      done;
      Array.iter Domain.join workers)
    (fun () ->
      while any_live () do
        t.stats.rounds <- t.stats.rounds + 1;
        t.barrier_at <- t.barrier_at + t.quantum;
        for w = 0 to n - 2 do
          tell w (Run t.barrier_at)
        done;
        if live t 0 then step_lane t 0 ~deadline:t.barrier_at;
        for w = 0 to n - 2 do
          await w
        done;
        record_skew t;
        let committed = flush_commits t in
        t.stats.commits <- t.stats.commits + committed;
        if committed = 0 then begin
          (* vacuously "stuck" when every lane just finished: not a deadlock *)
      let stuck = ref (any_live ()) in
          for i = 0 to n - 1 do
            if
              live t i
              && (t.status.(i) <> `Blocked
                 || Clock.next_event_time t.lanes.(i).l_clock <> None)
            then stuck := false
          done;
          if !stuck then
            raise
              (Deadlock
                 ("lockstep deadlock: all lanes blocked with no events or \
                   commits pending (" ^ describe t ^ ")"))
        end
      done)

(** [run ?domains t] — drive all lanes to [`Done]. Returns the stats. *)
let run ?(domains = false) t =
  if domains && Array.length t.lanes > 1 then run_domains t
  else run_interleaved t;
  t.stats

(** [merge_lane ~into lane] — after a concurrent segment: advance the
    surviving clock to the latest lane time and fold any still-pending
    lane events back onto it with their original (at, seq), so the
    merged queue fires in exactly the order the shared-allocator global
    order defines. The lane is left empty at the merged time. *)
let merge_lane ~(into : Clock.t) (lane : Clock.t) =
  into.Clock.now <- max into.Clock.now lane.Clock.now;
  let evs = Clock.pending lane in
  let keep = Clock.pending into in
  Clock.restore_pending into ~now:into.Clock.now ~seq:(Clock.seq_value into)
    (List.sort
       (fun (a : Clock.event) b ->
         compare (a.Clock.at, a.Clock.seq) (b.Clock.at, b.Clock.seq))
       (keep @ evs));
  Clock.restore_pending lane ~now:into.Clock.now ~seq:(Clock.seq_value lane)
    []
