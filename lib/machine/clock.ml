(** Simulated platform time and event queues.

    One nanosecond clock per simulated platform — or, under the
    bounded-quantum lockstep scheduler, one {e lane} per core split from
    the platform clock with {!lane}. The currently executing core
    advances its clock as it retires instructions; device-side activity
    (power-state transitions completing, DMA finishing, timer expiry) is
    scheduled as absolute-time events. When the core idles (WFI), time
    fast-forwards to the next event — that is exactly how the busy/idle
    split of Figure 5a arises.

    The pending queue is a binary min-heap keyed by [(at, seq)] — [seq]
    is a monotone insertion counter, so same-instant events still fire
    in FIFO order, byte-identical to the seed's sorted-list insertion.
    Cancellation is lazy (a [live] flag; dead events are purged when
    they reach the root), so both [at] and cancel are O(log n) where the
    seed's were O(n) — fleet worlds carry dozens of armed timers and
    device completions, where the quadratic list walk was measurable.

    Lanes split from one platform clock {e share} the [seq] allocator:
    the global [(at, seq)] order over both lanes' events is therefore
    total and identical to what a single merged queue would produce,
    which is what makes the lockstep scheduler's barrier commit order
    (time, seq, lane) deterministic and quantum=1 digest-identical. *)

type event = {
  at : int;
  seq : int;
  fn : unit -> unit;
  mutable live : bool;  (** lazily-cancelled events are skipped at pop *)
}

type t = {
  mutable now : int;  (** ns since simulation start *)
  mutable heap : event array;  (** min-heap by (at, seq); [size] slots used *)
  mutable size : int;
  seq : int Atomic.t;
      (** shared by every lane split from one platform clock — atomic so
          concurrent lanes on separate domains still mint unique,
          totally-ordered tie-breakers *)
  mutable next_at : int;
      (** [at] of the earliest live event, [max_int] when none — may
          transiently under-report after a root cancellation, which only
          costs callers a spurious {!run_due} (it fires nothing). The
          DBT engine's inlined fast path reads this field directly. *)
}

let dummy = { at = 0; seq = -1; fn = ignore; live = false }

let create () =
  { now = 0; heap = Array.make 8 dummy; size = 0; seq = Atomic.make 0;
    next_at = max_int }

(** [lane t] — a fresh empty queue at [t]'s current time sharing [t]'s
    [seq] allocator, so events scheduled on either keep a total global
    (at, seq) order. Used by the lockstep scheduler to give the M3 a
    private per-core queue. *)
let lane t =
  { now = t.now; heap = Array.make 8 dummy; size = 0; seq = t.seq;
    next_at = max_int }

(* ------------------------------ heap ------------------------------ *)

let less (a : event) (b : event) =
  a.at < b.at || (a.at = b.at && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let h = t.heap in
  let i = ref t.size in
  t.size <- t.size + 1;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less ev h.(parent) then begin
      h.(!i) <- h.(parent);
      i := parent
    end
    else continue := false
  done;
  h.(!i) <- ev;
  if ev.at < t.next_at then t.next_at <- ev.at

(* remove the root, restoring the heap property *)
let pop_discard t =
  let h = t.heap in
  t.size <- t.size - 1;
  let last = h.(t.size) in
  h.(t.size) <- dummy;
  if t.size > 0 then begin
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let smallest = ref !i in
      (* h.(!i) currently conceptually holds [last] *)
      if l < t.size && less h.(l) last then smallest := l;
      if
        r < t.size
        && less h.(r) (if !smallest = !i then last else h.(!smallest))
      then smallest := r;
      if !smallest = !i then begin
        h.(!i) <- last;
        continue := false
      end
      else begin
        h.(!i) <- h.(!smallest);
        i := !smallest
      end
    done
  end

(* drop dead events off the root and refresh [next_at] *)
let rec purge t =
  if t.size = 0 then t.next_at <- max_int
  else begin
    let e = t.heap.(0) in
    if e.live then t.next_at <- e.at
    else begin
      pop_discard t;
      purge t
    end
  end

(* ------------------------------ API ------------------------------- *)

(** [at t ns fn] schedules [fn] to run at absolute time [ns] (clamped to
    now). Returns a cancel function. *)
let at t ns fn =
  let ev = { at = max ns t.now; seq = Atomic.fetch_and_add t.seq 1; fn;
             live = true } in
  push t ev;
  fun () ->
    if ev.live then begin
      ev.live <- false;
      (* keep [next_at] honest when the root died, so the engine's
         inlined fast-path check stays cheap and rarely spurious *)
      if t.size > 0 && t.heap.(0) == ev then purge t
    end

(** [after t dns fn] schedules [fn] in [dns] ns from now. *)
let after t dns fn = at t (t.now + dns) fn

(** [after_ t dns fn] — like {!after}, discarding the cancel handle. *)
let after_ t dns fn =
  let _cancel : unit -> unit = after t dns fn in
  ()

(** [run_due t] fires every live event with [at <= now], in (at, seq)
    order — including events scheduled by the handlers themselves. *)
let run_due t =
  let rec go () =
    if t.size = 0 then t.next_at <- max_int
    else begin
      let e = t.heap.(0) in
      if not e.live then begin
        pop_discard t;
        go ()
      end
      else if e.at <= t.now then begin
        pop_discard t;
        e.fn ();
        go ()
      end
      else t.next_at <- e.at
    end
  in
  go ()

(** [advance t dns] moves time forward by [dns] ns and fires due events. *)
let advance t dns =
  t.now <- t.now + dns;
  if t.next_at <= t.now then run_due t

(** [next_event_time t] is the time of the earliest live pending event. *)
let next_event_time t =
  purge t;
  if t.size = 0 then None else Some t.heap.(0).at

(** [skip_to_next_event t] fast-forwards to the next event and fires it;
    returns the ns skipped. Returns [None] when no event is pending —
    a deadlocked WFI, which callers treat as a simulation bug. *)
let skip_to_next_event t =
  match next_event_time t with
  | None -> None
  | Some at ->
    let skipped = max 0 (at - t.now) in
    t.now <- max t.now at;
    run_due t;
    Some skipped

(** [skip_to_next_event_before t ~limit] — like {!skip_to_next_event}
    but never past absolute time [limit]: if the next event lies at or
    beyond [limit], idle only up to [limit] (firing whatever becomes due
    there) and return [`Capped ns]. The lockstep scheduler uses this so
    an idling core cannot overrun its quantum boundary. *)
let skip_to_next_event_before t ~limit =
  match next_event_time t with
  | Some at when at < limit ->
    let skipped = max 0 (at - t.now) in
    t.now <- max t.now at;
    run_due t;
    `Skipped skipped
  | (None | Some _) when t.now < limit ->
    let skipped = limit - t.now in
    t.now <- limit;
    run_due t;
    `Capped skipped
  | _ -> `Capped 0

(* --------------------------- snapshots ---------------------------- *)

(** [seq_value t] / [pending t] — the capture half of World fork: the
    allocator position and the live pending events in (at, seq) order.
    The returned records are fresh copies, so cancellations that happen
    after the capture cannot reach into the snapshot. *)
let seq_value t = Atomic.get t.seq

let pending t =
  let live = ref [] in
  for i = t.size - 1 downto 0 do
    let e = t.heap.(i) in
    if e.live then live := e :: !live
  done;
  List.sort
    (fun (a : event) b -> compare (a.at, a.seq) (b.at, b.seq))
    !live

(** [restore_pending t ~now ~seq evs] — the restore half: rewind time
    and the allocator and replace the whole queue with (fresh copies of)
    [evs]. Cancel handles minted before the restore are dead letters
    afterwards — every in-tree cancel user (the tick timers) is
    stopped/re-armed around a World restore, so none survive. *)
let restore_pending t ~now ~seq evs =
  t.now <- now;
  Atomic.set t.seq seq;
  t.size <- 0;
  Array.fill t.heap 0 (Array.length t.heap) dummy;
  t.next_at <- max_int;
  List.iter
    (fun (e : event) -> push t { at = e.at; seq = e.seq; fn = e.fn; live = true })
    evs
