(** Per-core timing and activity accounting.

    A core charges cycles for every retired instruction (plus cache-miss
    stalls and uncached-IO penalties) and the platform clock advances
    accordingly — only one core runs at a time, matching the paper's
    execution model (all other CPU cores are shut down around the
    offloaded phase). WFI fast-forwards to the next platform event and
    books the gap as idle.

    Busy/idle picosecond totals per core are what Figure 5a plots and the
    energy model integrates. *)

type params = {
  cname : string;
  freq_mhz : int;
  busy_mw : float;  (** typical busy power (Table 6) *)
  idle_mw : float;  (** idle power with the core clock-gated (Table 6) *)
  mmio_penalty : int;  (** extra cycles for an uncached device access *)
  cpi_num : int;
  cpi_den : int;
      (** average CPI = 1 + cpi_num/cpi_den: pipeline bubbles on the
          3-stage, prediction-less M3 vs the out-of-order A9 *)
}

type t = {
  p : params;
  mutable clock : Clock.t;
      (** the clock this core advances — the platform clock, or a
          private lane under the bounded-quantum lockstep scheduler *)
  cache : Cache.t;
  ps_per_cycle : int;
  mutable cpi_acc : int;  (** accumulator for the fractional CPI *)
  mutable frac_ps : int;  (** sub-ns remainder not yet pushed to the clock *)
  mutable busy_cycles : int;
  mutable busy_ps : int;
  mutable idle_ps : int;
  mutable instructions : int;
  mutable stall_cycles : int;
      (** cycles lost to cache-miss / uncached-IO stalls, a subset of
          [busy_cycles]; the span tracer's attribution ledger reads it *)
}

let create ~clock ~cache p =
  { p; clock; cache; ps_per_cycle = 1_000_000 / p.freq_mhz; cpi_acc = 0;
    frac_ps = 0;
    busy_cycles = 0; busy_ps = 0; idle_ps = 0; instructions = 0;
    stall_cycles = 0 }

(** [charge t cycles] books [cycles] of busy execution and advances the
    platform clock (firing any due events). *)
let charge t cycles =
  t.busy_cycles <- t.busy_cycles + cycles;
  let dps = cycles * t.ps_per_cycle in
  let ps = dps + t.frac_ps in
  t.busy_ps <- t.busy_ps + dps;
  (* ps/1000 by reciprocal multiplication — exact for 0 <= ps < 2^32
     (the 56-ulp error of 274877907 ~= 2^38/1000 stays below 1/1000
     there); this runs once per retired instruction, where the idiv
     pair it replaces was a measurable share of the accounting cost *)
  let q =
    if ps < 0x1_0000_0000 then (ps * 274877907) asr 38 else ps / 1000
  in
  t.frac_ps <- ps - (q * 1000);
  Clock.advance t.clock q

(** [charge_stall t stall] — fast path for charging a cache-access
    result: on a hit ([stall = 0]) it skips the zero-cycle bookkeeping
    and only fires platform events that are already due, which is
    exactly what [charge t 0] does (busy counters gain 0, the
    sub-cycle remainder is unchanged, and [Clock.advance 0] reduces to
    [Clock.run_due]). Cycle-identical to [charge t stall], cheaper on
    the hot hit path. *)
let charge_stall t stall =
  if stall <> 0 then begin
    t.stall_cycles <- t.stall_cycles + stall;
    charge t stall
  end
  else Clock.run_due t.clock

(** [fetch_cost t addr] is the stall cost of fetching from [addr] through
    this core's cache. *)
let fetch_cost t addr = Cache.access t.cache ~write:false addr

(** [set_clock t clock] — retarget the core's time charges (lockstep
    lane attach/detach; the sequential scheduler never calls it). *)
let set_clock t clock = t.clock <- clock

(** [idle_until_event t] models WFI: sleep to the next platform event.
    Returns [false] when no event is pending (deadlock — callers raise). *)
let idle_until_event t =
  match Clock.skip_to_next_event t.clock with
  | None -> false
  | Some skipped_ns ->
    t.idle_ps <- t.idle_ps + (skipped_ns * 1000);
    true

(** [idle_until_limit t ~limit] — WFI bounded by a quantum boundary:
    sleep to the next event, or only as far as absolute time [limit]
    when the event lies at or beyond it (or none is pending). The idle
    gap books identically to {!idle_until_event} taken in pieces, so a
    solo-core lockstep run charges byte-identical busy/idle totals.
    Returns [false] iff the queue was empty (the caller decides whether
    a cross-lane commit can still arrive before calling it deadlock). *)
let idle_until_limit t ~limit =
  let had_event = Clock.next_event_time t.clock <> None in
  (match Clock.skip_to_next_event_before t.clock ~limit with
  | `Skipped ns | `Capped ns -> t.idle_ps <- t.idle_ps + (ns * 1000));
  had_event

(** [count_instruction t] bumps the retired-instruction counter. *)
let count_instruction t = t.instructions <- t.instructions + 1

(** [instr_cycles t] — base cycles for one instruction under the core's
    fractional CPI model (1 + cpi_num/cpi_den on average). *)
let instr_cycles t =
  if t.p.cpi_num = 0 then 1
  else begin
    (* the accumulator stays below cpi_den, so after adding cpi_num it
       is below cpi_den + cpi_num — for the small num/den ratios cores
       use, the carry resolves with compares instead of an idiv *)
    let acc = t.cpi_acc + t.p.cpi_num in
    let den = t.p.cpi_den in
    if acc < den then begin t.cpi_acc <- acc; 1 end
    else if acc < 2 * den then begin t.cpi_acc <- acc - den; 2 end
    else if acc < 3 * den then begin t.cpi_acc <- acc - (2 * den); 3 end
    else begin
      t.cpi_acc <- acc mod den;
      1 + (acc / den)
    end
  end

(** [retire t addr] — fused per-instruction accounting for the hot
    interpreter loops: count the instruction and charge base CPI plus
    the fetch stall in one call. Cycle-identical to
    [count_instruction t; charge t (instr_cycles t + fetch_cost t addr)]
    including side-effect order (the fetch's cache access happens before
    the CPI accumulator update, as in the seed's right-to-left argument
    evaluation). *)
let retire t addr =
  t.instructions <- t.instructions + 1;
  let stall = Cache.access t.cache ~write:false addr in
  if stall <> 0 then t.stall_cycles <- t.stall_cycles + stall;
  charge t (instr_cycles t + stall)

let busy_ns t = t.busy_ps / 1000
let idle_ns t = t.idle_ps / 1000

(** [reset_activity t] zeroes busy/idle/instruction counters (used at
    phase boundaries so each measured phase starts clean). *)
let reset_activity t =
  t.busy_cycles <- 0; t.busy_ps <- 0; t.idle_ps <- 0; t.instructions <- 0;
  t.stall_cycles <- 0;
  Cache.reset_counters t.cache

(** Snapshot of a core's activity, used for per-phase deltas. *)
type activity = {
  a_busy_cycles : int;
  a_busy_ps : int;
  a_idle_ps : int;
  a_instructions : int;
  a_cache_misses : int;
  a_rd_bytes : int;
  a_wr_bytes : int;
}

let activity t =
  { a_busy_cycles = t.busy_cycles; a_busy_ps = t.busy_ps;
    a_idle_ps = t.idle_ps; a_instructions = t.instructions;
    a_cache_misses = t.cache.Cache.misses;
    a_rd_bytes = t.cache.Cache.rd_bytes; a_wr_bytes = t.cache.Cache.wr_bytes }

let activity_delta a b =
  { a_busy_cycles = b.a_busy_cycles - a.a_busy_cycles;
    a_busy_ps = b.a_busy_ps - a.a_busy_ps;
    a_idle_ps = b.a_idle_ps - a.a_idle_ps;
    a_instructions = b.a_instructions - a.a_instructions;
    a_cache_misses = b.a_cache_misses - a.a_cache_misses;
    a_rd_bytes = b.a_rd_bytes - a.a_rd_bytes;
    a_wr_bytes = b.a_wr_bytes - a.a_wr_bytes }
