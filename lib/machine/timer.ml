(** Hardware timers.

    Each side of the SoC has one: the CPU timer drives the native kernel's
    periodic tick (jiffies) and exposes a free-running counter the guest
    reads for [udelay]/[ktime_get]; the peripheral core's private timer
    gives ARK its time base (§4.6: "ARK converts the expected wait time to
    the hardware timer cycles on the peripheral core").

    MMIO register file:
    - 0x00 R: COUNT_LO — free-running ns counter, low 32 bits
    - 0x04 R: COUNT_HI
    - 0x08 W: TICK_PERIOD_NS — start periodic IRQs (0 stops)
    - 0x0C W: ONESHOT_NS — raise one IRQ after this delay *)

type t = {
  mutable clock : Clock.t;
      (** the queue this timer arms events on — the platform clock, or a
          per-core lane under the lockstep scheduler *)
  fabric : Intc.fabric;
  irq_line : int;
  mutable period : int;
  mutable cancel_tick : (unit -> unit) option;
  mutable next_at : int;
      (** absolute ns of the pending tick (meaningful while
          [period > 0]) — lets the snapshot layer re-arm a restored
          tick at the exact instant it was due, not [now + period] *)
}

let create ~clock ~fabric ~irq_line =
  { clock; fabric; irq_line; period = 0; cancel_tick = None; next_at = 0 }

(** [set_clock t clock] — retarget the timer's event queue. Only legal
    while no tick is armed (the lockstep driver swaps lanes at phase
    boundaries, where World-style quiescing has the tick stopped). *)
let set_clock t clock =
  assert (t.period = 0 && t.cancel_tick = None);
  t.clock <- clock

(** [now_ns t] is the free-running counter value. *)
let now_ns t = t.clock.Clock.now

let stop_tick t =
  (match t.cancel_tick with Some c -> c () | None -> ());
  t.cancel_tick <- None;
  t.period <- 0

(** [start_tick t ns] raises the timer IRQ every [ns] nanoseconds. *)
let start_tick t ns =
  stop_tick t;
  if ns > 0 then begin
    t.period <- ns;
    let rec arm () =
      t.next_at <- t.clock.Clock.now + t.period;
      t.cancel_tick <-
        Some
          (Clock.after t.clock t.period (fun () ->
               Intc.raise_line t.fabric t.irq_line;
               if t.period > 0 then arm ()))
    in
    arm ()
  end

(** [pause_tick t] — cancel the pending tick event without forgetting
    the tick: returns [Some (period, next_at)] to hand to
    [resume_tick]. Used by the snapshot layer, which needs the clock's
    event queue empty while it captures. [None] if no tick is armed. *)
let pause_tick t =
  if t.period = 0 then None
  else begin
    let saved = (t.period, t.next_at) in
    (match t.cancel_tick with Some c -> c () | None -> ());
    t.cancel_tick <- None;
    t.period <- 0;
    Some saved
  end

(** [resume_tick t (period, at)] — re-arm the periodic tick with its
    first fire at absolute time [at] (clamped to now), then every
    [period] ns: the exact phase a paused or restored tick had. *)
let resume_tick t (period, at) =
  stop_tick t;
  if period > 0 then begin
    t.period <- period;
    let rec arm delay =
      t.next_at <- t.clock.Clock.now + delay;
      t.cancel_tick <-
        Some
          (Clock.after t.clock delay (fun () ->
               Intc.raise_line t.fabric t.irq_line;
               if t.period > 0 then arm t.period))
    in
    arm (max 0 (at - t.clock.Clock.now))
  end

(** [oneshot t ns] raises the timer IRQ once, [ns] from now. Returns a
    cancel function. *)
let oneshot t ns =
  Clock.after t.clock ns (fun () -> Intc.raise_line t.fabric t.irq_line)

let mmio_region t ~base : Mem.region =
  { rbase = base; rsize = 0x100; rname = "timer";
    rread =
      (fun off _ ->
        match off with
        | 0x00 -> now_ns t land 0xFFFFFFFF
        | 0x04 -> (now_ns t lsr 32) land 0xFFFFFFFF
        | _ -> 0);
    rwrite =
      (fun off _ v ->
        match off with
        | 0x08 -> if v = 0 then stop_tick t else start_tick t v
        | 0x0C ->
          let _cancel : unit -> unit = oneshot t v in
          ()
        | _ -> ()) }
