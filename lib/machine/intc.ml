(** Interrupt controllers.

    The SoC has two heterogeneous controllers, as in the paper's hardware
    model: a GIC-like distributor serving the CPU and an NVIC-like
    controller serving the peripheral core. Devices raise platform IRQ
    lines; the fabric forwards each line to the GIC and — only if the
    routing table maps it — to the NVIC. OMAP4460 routes just 39 of 102
    lines to the Cortex-M3 (§7.5); the routing table models that, and the
    two controllers may see {e different line numbers} for the same
    device.

    The GIC exposes an MMIO register file because the {e guest kernel
    code} masks/acks interrupts through it; on the peripheral core those
    addresses are unmapped, so translated code faults and ARK emulates
    the access against the NVIC (§4.2). *)

type t = {
  iname : string;
  nlines : int;
  enabled : bool array;
  pending : bool array;
  mutable in_service : int option;
  mutable live : int;
      (** number of lines both pending and enabled, maintained
          incrementally so the interpreters' per-instruction /
          per-block "any deliverable interrupt?" poll is O(1) instead
          of a scan over all lines *)
  mutable tr : Tk_stats.Trace.t;
      (** flight recorder (the platform's; {!Tk_stats.Trace.null} until
          the SoC wires it) *)
  mutable tr_core : int;  (** which side this controller serves *)
  mutable sp : Tk_stats.Span.t;
      (** span tracer (the platform's; {!Tk_stats.Span.null} until the
          SoC wires it) — records raise-to-ack delivery latency *)
  raise_t : int array;
      (** per-line raise time (ns), -1 when not pending; feeds the
          async irq-deliver span closed at {!ack} *)
}

let create ~name ~nlines =
  { iname = name; nlines; enabled = Array.make nlines false;
    pending = Array.make nlines false; in_service = None; live = 0;
    tr = Tk_stats.Trace.null; tr_core = Tk_stats.Trace.core_none;
    sp = Tk_stats.Span.null; raise_t = Array.make nlines (-1) }

let set_pending t line =
  if line >= 0 && line < t.nlines && not t.pending.(line) then begin
    t.pending.(line) <- true;
    if t.enabled.(line) then t.live <- t.live + 1;
    if t.tr.Tk_stats.Trace.enabled then
      Tk_stats.Trace.emit t.tr ~core:t.tr_core Tk_stats.Trace.ev_irq_raise
        line 0;
    if t.sp.Tk_stats.Span.enabled then
      t.raise_t.(line) <- t.sp.Tk_stats.Span.now ()
  end

let clear_pending t line =
  if t.pending.(line) then begin
    t.pending.(line) <- false;
    if t.enabled.(line) then t.live <- t.live - 1
  end

let enable t line v =
  if t.enabled.(line) <> v then begin
    t.enabled.(line) <- v;
    if t.pending.(line) then t.live <- t.live + (if v then 1 else -1)
  end

(** [highest t] is the lowest-numbered enabled pending line, if any
    (fixed priority by line number, like a default-configured GIC). *)
let highest t =
  let rec go i =
    if i >= t.nlines then None
    else if t.pending.(i) && t.enabled.(i) then Some i
    else go (i + 1)
  in
  if t.in_service <> None || t.live = 0 then None else go 0

(** [deliverable t] — O(1) equivalent of [highest t <> None]: is there
    an enabled pending line and nothing in service? The hot interpreter
    loops poll this between instructions / at block starts. *)
let deliverable t = t.live > 0 && t.in_service = None

(** [ack t] — interrupt acknowledge: returns the highest pending line,
    marks it in-service and clears pending. 1023 = spurious (none). *)
let ack t =
  match highest t with
  | Some l ->
    t.pending.(l) <- false;
    t.live <- t.live - 1;  (* [highest] only returns enabled lines *)
    t.in_service <- Some l;
    if t.tr.Tk_stats.Trace.enabled then
      Tk_stats.Trace.emit t.tr ~core:t.tr_core Tk_stats.Trace.ev_irq_deliver
        l 0;
    (if t.sp.Tk_stats.Span.enabled then begin
       let t0 = t.raise_t.(l) in
       t.raise_t.(l) <- -1;
       if t0 >= 0 then
         Tk_stats.Span.emit_async t.sp ~core:t.tr_core
           Tk_stats.Span.sk_irq_deliver ~t0 l
     end);
    l
  | None -> 1023

(** [eoi t line] — end of interrupt. *)
let eoi t line = if t.in_service = Some line then t.in_service <- None

(* GIC-style MMIO register file (simplified):
   0x00 W: ENABLE_SET (write line number)
   0x04 W: ENABLE_CLR
   0x08 R: IAR (acknowledge)   W: ignored
   0x0C W: EOI (write line number)
   0x10 W: PENDING_CLR
   0x14 R: number of lines *)
let enable_set_off = 0x00
let enable_clr_off = 0x04
let iar_off = 0x08
let eoi_off = 0x0C
let pending_clr_off = 0x10

(** [mmio_region t ~base] exposes [t] as a GIC-style MMIO region. *)
let mmio_region t ~base : Mem.region =
  { rbase = base; rsize = 0x100; rname = t.iname;
    rread =
      (fun off _ ->
        match off with
        | 0x08 -> ack t
        | 0x14 -> t.nlines
        | _ -> 0);
    rwrite =
      (fun off _ v ->
        match off with
        | 0x00 -> if v < t.nlines then enable t v true
        | 0x04 -> if v < t.nlines then enable t v false
        | 0x0C -> eoi t v
        | 0x10 -> if v < t.nlines then clear_pending t v
        | _ -> ()) }

(** The SoC interrupt fabric: one GIC (CPU side), one NVIC (peripheral
    side), and the routing table from platform lines to NVIC lines. *)
type fabric = {
  gic : t;
  nvic : t;
  route : int -> int option;  (** platform line -> NVIC line *)
  reverse_route : int -> int;  (** NVIC line -> platform line *)
}

(** [make_fabric ~nlines ~routed] builds a fabric where only the lines in
    [routed] reach the peripheral core. NVIC line numbers deliberately
    differ from platform line numbers (index in [routed]), as the
    hardware model allows. *)
let make_fabric ~nlines ~routed =
  let gic = create ~name:"gic" ~nlines in
  let nvic = create ~name:"nvic" ~nlines:(List.length routed) in
  let fwd = Hashtbl.create 32 and bwd = Hashtbl.create 32 in
  List.iteri
    (fun i line ->
      Hashtbl.replace fwd line i;
      Hashtbl.replace bwd i line)
    routed;
  { gic; nvic;
    route = (fun l -> Hashtbl.find_opt fwd l);
    reverse_route = (fun n -> match Hashtbl.find_opt bwd n with
      | Some l -> l
      | None -> invalid_arg "reverse_route") }

(** [raise_line fab line] — a device asserts platform IRQ [line]; it
    becomes pending in the GIC and, if routed, in the NVIC. *)
let raise_line fab line =
  set_pending fab.gic line;
  match fab.route line with
  | Some n -> set_pending fab.nvic n
  | None -> ()
