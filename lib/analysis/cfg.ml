(** Control-flow graph recovery over a linked guest image.

    ECMO-style rehosting starts from static analysis of the kernel image
    before any execution; this module is that front end. It decodes the
    code section of an {!Tk_isa.Asm.image} back into the shared AST,
    splits it into basic blocks at fragment entries, branch targets and
    control-flow terminators, and records the three site classes the
    dataflow passes in {!Image_lint} consume: direct calls, indirect
    calls, and returns/indirect branches.

    Literal words embedded in the code stream (e.g. jump-table data) that
    do not decode are kept as [data] slots — they terminate blocks and
    are reported by the lint pass if reachable. *)

open Tk_isa
open Tk_isa.Types

(** One decoded code-section slot. *)
type slot =
  | Inst of inst
  | Data of int  (** word that does not decode as V7A *)

(** How a basic block ends (mirrors the DBT engine's interception set:
    the translator ends translation units at exactly these shapes). *)
type terminator =
  | Fallthrough  (** next block is a leader (branch target / fragment) *)
  | Jump of int  (** unconditional [b]: one successor *)
  | Cond_jump of int * int  (** conditional branch: (taken, fallthrough) *)
  | Call of int * int  (** [bl]: (callee, return successor) *)
  | Indirect_call of int  (** [blx reg]: unknown callee, return successor *)
  | Ret  (** [bx], pc-writing [ldm]/[pop] or data-processing, [irqret] *)
  | Stop  (** [udf] or undecodable word: execution cannot continue *)

type block = {
  b_start : int;  (** address of the first instruction *)
  b_insts : (int * inst) list;  (** (address, instruction), ascending *)
  b_term : terminator;
  b_succs : int list;
      (** intra-procedural successor block addresses (calls fall through
          to their return site; callees are {e not} successors) *)
}

type func = {
  f_name : string;
  f_entry : int;
  f_size : int;  (** code bytes *)
}

type t = {
  image : Asm.image;
  slots : slot array;  (** code section, word-indexed from [image.base] *)
  blocks : block list;  (** ascending by [b_start] *)
  block_at : (int, block) Hashtbl.t;
  funcs : func list;  (** link order = address order *)
}

let code_words (image : Asm.image) = image.Asm.code_size / 4

let in_code (image : Asm.image) addr =
  addr >= image.Asm.base
  && addr < image.Asm.base + image.Asm.code_size
  && addr land 3 = 0

let slot_at t addr =
  if in_code t.image addr then Some t.slots.((addr - t.image.Asm.base) / 4)
  else None

(* does this instruction write the pc other than through B/Bl (i.e. a
   return or computed branch the translator intercepts)? *)
let writes_pc i = List.mem pc (regs_written i)

(* terminator + raw successor addresses for an instruction at [addr];
   [next] = addr + 4 *)
let classify_inst addr (i : inst) =
  let next = addr + 4 in
  match i.op with
  | B off when i.cond = AL -> Some (Jump (addr + off), [ addr + off ])
  | B off -> Some (Cond_jump (addr + off, next), [ addr + off; next ])
  | Bl off ->
    (* conditional bl exists architecturally; either way control returns
       to the next instruction *)
    Some (Call (addr + off, next), [ next ])
  | Blx_r _ -> Some (Indirect_call next, [ next ])
  | Bx _ | Irq_ret -> Some (Ret, [])
  | Udf _ -> Some (Stop, [])
  | _ when writes_pc i -> Some (Ret, [])
  | _ -> None

(** [build image] — decode and block-structure the code section. *)
let build (image : Asm.image) : t =
  let n = code_words image in
  let slots =
    Array.init n (fun k ->
        let w = image.Asm.words.(k) in
        match V7a.decode w with
        | i -> Inst i
        | exception V7a.Decode_error _ -> Data w
        | exception Invalid_argument _ -> Data w)
  in
  let addr_of k = image.Asm.base + (4 * k) in
  (* leaders: fragment entries, labels, branch targets, successors of
     terminators *)
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  Hashtbl.iter
    (fun name addr ->
      ignore name;
      if in_code image addr then leader.((addr - image.Asm.base) / 4) <- true)
    image.Asm.symbols;
  Array.iteri
    (fun k slot ->
      let addr = addr_of k in
      let mark a =
        if in_code image a then leader.((a - image.Asm.base) / 4) <- true
      in
      match slot with
      | Data _ -> mark (addr + 4)
      | Inst i -> (
        match classify_inst addr i with
        | None -> ()
        | Some (_, succs) ->
          mark (addr + 4);
          List.iter mark succs))
    slots;
  (* carve blocks *)
  let blocks = ref [] in
  let block_at = Hashtbl.create 64 in
  let k = ref 0 in
  while !k < n do
    let start = addr_of !k in
    let insts = ref [] in
    let term = ref None in
    let stop = ref false in
    while not !stop do
      let addr = addr_of !k in
      (match slots.(!k) with
      | Data _ ->
        term := Some (Stop, []);
        stop := true
      | Inst i -> (
        insts := (addr, i) :: !insts;
        match classify_inst addr i with
        | Some (t, succs) ->
          term := Some (t, succs);
          stop := true
        | None -> ()));
      incr k;
      if (not !stop) && (!k >= n || leader.(!k)) then stop := true
    done;
    let term, succs =
      match !term with
      | Some (t, succs) -> (t, List.filter (in_code image) succs)
      | None ->
        (* ran into the next leader or the end of the code section *)
        let next = addr_of !k in
        (Fallthrough, if in_code image next then [ next ] else [])
    in
    let b =
      { b_start = start; b_insts = List.rev !insts; b_term = term;
        b_succs = succs }
    in
    blocks := b :: !blocks;
    Hashtbl.replace block_at start b
  done;
  let funcs =
    let cursor = ref image.Asm.base in
    List.map
      (fun (name, size) ->
        let entry = !cursor in
        cursor := !cursor + size;
        { f_name = name; f_entry = entry; f_size = size })
      image.Asm.frag_sizes
  in
  { image; slots; blocks = List.rev !blocks; block_at; funcs }

(** [func_of_addr t addr] — the fragment containing [addr]. *)
let func_of_addr t addr =
  List.find_opt
    (fun f -> addr >= f.f_entry && addr < f.f_entry + f.f_size)
    t.funcs

(** [func_blocks t f] — the blocks whose start lies inside fragment
    [f], address order. *)
let func_blocks t f =
  List.filter
    (fun b -> b.b_start >= f.f_entry && b.b_start < f.f_entry + f.f_size)
    t.blocks

(** [call_sites t f] — [(site, callee)] for every direct [bl] in [f]. *)
let call_sites t f =
  List.filter_map
    (fun b ->
      match b.b_term with
      | Call (callee, _) -> (
        match List.rev b.b_insts with
        | (site, _) :: _ -> Some (site, callee)
        | [] -> None)
      | _ -> None)
    (func_blocks t f)

(** [indirect_sites t f] — addresses of [blx reg] sites in [f]. *)
let indirect_sites t f =
  List.filter_map
    (fun b ->
      match b.b_term with
      | Indirect_call _ -> (
        match List.rev b.b_insts with
        | (site, _) :: _ -> Some site
        | [] -> None)
      | _ -> None)
    (func_blocks t f)

(** Decoded-instruction count (excludes data words). *)
let inst_count t =
  Array.fold_left
    (fun acc s -> match s with Inst _ -> acc + 1 | Data _ -> acc)
    0 t.slots

let data_count t =
  Array.fold_left
    (fun acc s -> match s with Data _ -> acc + 1 | Inst _ -> acc)
    0 t.slots

let edge_count t =
  List.fold_left (fun acc b -> acc + List.length b.b_succs) 0 t.blocks

(** [print_summary t] — per-image CFG shape table. *)
let print_summary t =
  Tk_stats.Report.kv "guest image CFG"
    [ ("code bytes", string_of_int t.image.Asm.code_size);
      ("functions", string_of_int (List.length t.funcs));
      ("instructions", string_of_int (inst_count t));
      ("data words in code", string_of_int (data_count t));
      ("basic blocks", string_of_int (List.length t.blocks));
      ("intra-procedural edges", string_of_int (edge_count t)) ]
