(** Control-flow graph recovery over a linked guest image: decode the
    code section back into the shared AST, split it into basic blocks at
    fragment entries, branch targets and control-flow terminators, and
    expose the site classes the dataflow passes ({!Image_lint},
    {!Absint}, {!Certify}) consume. *)

open Tk_isa
open Tk_isa.Types

(** One decoded code-section slot. *)
type slot =
  | Inst of inst
  | Data of int  (** word that does not decode as V7A *)

(** How a basic block ends (mirrors the DBT engine's interception set:
    the translator ends translation units at exactly these shapes). *)
type terminator =
  | Fallthrough  (** next block is a leader (branch target / fragment) *)
  | Jump of int  (** unconditional [b]: one successor *)
  | Cond_jump of int * int  (** conditional branch: (taken, fallthrough) *)
  | Call of int * int  (** [bl]: (callee, return successor) *)
  | Indirect_call of int  (** [blx reg]: unknown callee, return successor *)
  | Ret  (** [bx], pc-writing [ldm]/[pop] or data-processing, [irqret] *)
  | Stop  (** [udf] or undecodable word: execution cannot continue *)

type block = {
  b_start : int;  (** address of the first instruction *)
  b_insts : (int * inst) list;  (** (address, instruction), ascending *)
  b_term : terminator;
  b_succs : int list;
      (** intra-procedural successor block addresses (calls fall through
          to their return site; callees are {e not} successors) *)
}

type func = {
  f_name : string;
  f_entry : int;
  f_size : int;  (** code bytes *)
}

type t = {
  image : Asm.image;
  slots : slot array;  (** code section, word-indexed from [image.base] *)
  blocks : block list;  (** ascending by [b_start] *)
  block_at : (int, block) Hashtbl.t;
  funcs : func list;  (** link order = address order *)
}

val code_words : Asm.image -> int
val in_code : Asm.image -> int -> bool
(** word-aligned address inside the image's code section? *)

val slot_at : t -> int -> slot option
val writes_pc : inst -> bool

val classify_inst : int -> inst -> (terminator * int list) option
(** terminator + raw successor addresses for an instruction at [addr],
    or [None] when control falls through *)

val build : Asm.image -> t
(** decode and block-structure the code section *)

val func_of_addr : t -> int -> func option
val func_blocks : t -> func -> block list
(** the blocks whose start lies inside the fragment, address order *)

val call_sites : t -> func -> (int * int) list
(** [(site, callee)] for every direct [bl] in the function *)

val indirect_sites : t -> func -> int list
(** addresses of [blx reg] sites in the function *)

val inst_count : t -> int
(** decoded-instruction count (excludes data words) *)

val data_count : t -> int
val edge_count : t -> int
val print_summary : t -> unit
