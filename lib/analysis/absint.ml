(** Whole-image abstract interpretation for SMC-clean region proof.

    The superblock engine probes every guest store that lands in the
    kernel-image window against its per-word cover map, because a store
    into translated code must invalidate the cache (self-modifying
    code). That probe is pure overhead for the overwhelming majority of
    kernel code, which only ever writes to its data section, the stack,
    the page pool or MMIO. This pass proves it: a light abstract
    interpretation over the recovered {!Cfg} classifies every store's
    target and marks a guest {e word} SMC-clean when its instruction
    cannot write into the image's code section — the only place
    translated guest words live (functions also get an aggregate
    verdict, for reporting). The merged ranges of clean words form
    the SMC-clean map {!Tk_dbt.Engine.set_smc_map} consumes: host code
    emitted entirely from clean guest words skips the per-word cover
    probe on every image-window store.

    Soundness argument: [probe_exempt] is keyed by the {e executing}
    host word, i.e. by which guest code performs the store. A store
    executed by clean code cannot hit the code section, hence cannot
    hit a covered word, hence skipping its probe can never miss an
    invalidation — regardless of where unclean code or the cover map
    evolve. Self-modifying code is, by construction, unclean (its store
    targets the code section), so SMC detection is preserved: the first
    modifying store always executes from un-exempt host code, and the
    engine drops the map with the cache on flush. The map's contract
    covers images whose code section is the only executed region (the
    engine would fall back on undecodable data words anyway).

    Abstract domain, deliberately minimal (registers only, one basic
    block at a time, no widening needed because there are no loops
    inside a block):

    {ul
    {- [Const v] — the register holds the literal [v]
       ([movw]/[movt]/[mov #imm] chains and [+-] on constants);}
    {- [SpRel k] — stack-derived: [sp_entry + k]. Trusted only while
       every SP write in the function is a push/pop or [sp +- #imm]
       (the same discipline {!Image_lint.stack_delta} bounds);}
    {- [Top] — anything else.}}

    Store targets classify as stack, image code, image data, other RAM,
    MMIO, or unknown; only {e code} and {e unknown} make a function
    unclean. Per-function stack displacement falls out of the [SpRel]
    tracking for free and is reported as the deepest static frame. *)

open Tk_isa
open Tk_isa.Types
module Soc = Tk_machine.Soc

type aval = Top | Const of int | SpRel of int

type store_class =
  | C_stack  (** SP-relative, SP-discipline intact *)
  | C_code  (** inside the image's code section: SMC evidence *)
  | C_image_data  (** image window, past the code section *)
  | C_ram  (** RAM outside the probe window (pool, env, stacks) *)
  | C_mmio  (** device/GIC register space *)
  | C_unknown  (** target not provable *)

let class_name = function
  | C_stack -> "stack"
  | C_code -> "code"
  | C_image_data -> "image-data"
  | C_ram -> "ram"
  | C_mmio -> "mmio"
  | C_unknown -> "unknown"

(* ------------------------ transfer function -------------------------- *)

let v_add a b =
  match (a, b) with
  | Const x, Const y -> Const (Bits.mask32 (x + y))
  | SpRel x, Const y | Const y, SpRel x -> SpRel (x + y)
  | _ -> Top

let v_sub a b =
  match (a, b) with
  | Const x, Const y -> Const (Bits.mask32 (x - y))
  | SpRel x, Const y -> SpRel (x - y)
  | _ -> Top

let eval_op2 (st : aval array) = function
  | Imm v -> Const v
  | Reg r -> st.(r)
  | Sreg _ | Sregreg _ -> Top

(* register effects of one instruction (stores are classified
   separately). Conditional writes join with the unknown not-taken arm,
   i.e. go straight to Top. *)
let transfer (st : aval array) (i : inst) =
  let wr r v = st.(r) <- (if i.cond = AL then v else Top) in
  (match i.op with
  | Movw (rd, v) -> wr rd (Const v)
  | Movt (rd, v) ->
    wr rd
      (match st.(rd) with
      | Const c -> Const (Bits.mask32 ((v lsl 16) lor (c land 0xFFFF)))
      | _ -> Top)
  | Dp (MOV, false, rd, _, op2) -> wr rd (eval_op2 st op2)
  | Dp (ADD, false, rd, rn, op2) -> wr rd (v_add st.(rn) (eval_op2 st op2))
  | Dp (SUB, false, rd, rn, op2) -> wr rd (v_sub st.(rn) (eval_op2 st op2))
  | Mem { ld; rt; rn; off = Oimm k; idx = Pre | Post; _ } ->
    if ld then wr rt Top;
    wr rn (v_add st.(rn) (Const k))
  | Ldm (rn, wb, regs) ->
    List.iter (fun r -> wr r Top) regs;
    if wb then wr rn (v_add st.(rn) (Const (4 * List.length regs)))
  | Stm (rn, wb, regs) ->
    if wb then wr rn (v_sub st.(rn) (Const (4 * List.length regs)))
  | _ -> List.iter (fun r -> wr r Top) (regs_written i))

(* --------------------------- store targets --------------------------- *)

(* the [lo, hi) byte spans one instruction may store to, or None for
   unbounded; evaluated BEFORE the transfer (pre-state addresses) *)
let store_spans (st : aval array) (i : inst) =
  let of_base base span =
    match base with
    | SpRel _ -> Some (`Stack)
    | Const c -> Some (`Span (span c))
    | Top -> Some `Unknown
  in
  match i.op with
  | Mem { ld = false; size; rn; off; idx; _ } -> (
    let nbytes = bytes_of_mem_size size in
    match off, idx with
    | Oimm k, (Offset | Pre) -> of_base st.(rn) (fun c -> (c + k, c + k + nbytes))
    | Oimm _, Post -> of_base st.(rn) (fun c -> (c, c + nbytes))
    | Oreg _, _ -> Some `Unknown)
  | Stm (rn, _, regs) ->
    (* decrement-before: words land just below the base *)
    let n = 4 * List.length regs in
    of_base st.(rn) (fun c -> (c - n, c))
  | Swp (_, _, rn) -> of_base st.(rn) (fun c -> (c, c + 4))
  | _ -> None

let classify_span (image : Asm.image) (lo, hi) =
  let code_lo = image.Asm.base and code_hi = image.Asm.base + image.Asm.code_size in
  if hi <= lo then C_unknown
  else if lo < code_hi && hi > code_lo then C_code
  else if lo >= Soc.kernel_base && hi <= Soc.page_pool_base then C_image_data
  else if lo >= Soc.ram_base && hi <= Soc.code_cache_base + Soc.code_cache_size
  then C_ram
  else if lo >= Soc.cpu_timer_base then C_mmio
  else C_unknown

(* --------------------------- the analysis ---------------------------- *)

type fverdict = {
  v_name : string;
  v_entry : int;
  v_size : int;  (** code bytes, [\[v_entry, v_entry + v_size)] *)
  v_stores : int;
  v_clean : bool;  (** no store can reach the image's code section *)
  v_frame : int;  (** deepest static SP displacement seen (bytes) *)
  v_first_unclean : string option;  (** site + disassembly, for findings *)
}

type report = {
  a_funcs : fverdict list;  (** address order *)
  a_clean : int;
  a_hist : (string * int) list;  (** store-target histogram, whole image *)
  a_clean_ranges : (int * int) list;
      (** merged [\[lo, hi)] guest ranges of clean {e words} — feed to
          {!Tk_dbt.Engine.set_smc_map}. Word-granular, not
          function-granular: a word is clean iff its instruction either
          performs no store or its store target is provably outside the
          code section. Sound because the engine's probe exemption is
          keyed by the executing host word and requires {e every} guest
          word of a translated span to be clean — so one pointer-chased
          store only disqualifies the translation blocks that contain
          it, not its whole function. *)
  a_max_frame : int;
  findings : Finding.t list;
}

(* is the function's SP discipline bounded pushes/pops only? reuse the
   lint pass's delta classifier so the two agree on what "disciplined"
   means *)
let sp_trusted (t : Cfg.t) (f : Cfg.func) =
  List.for_all
    (fun (b : Cfg.block) ->
      List.for_all
        (fun (_addr, i) -> Image_lint.stack_delta i <> None)
        b.Cfg.b_insts)
    (Cfg.func_blocks t f)

(** [analyze t] — classify every store in every function, produce
    per-function SMC-clean verdicts and the merged clean-range list. *)
let analyze (t : Cfg.t) : report =
  let image = t.Cfg.image in
  let hist = Hashtbl.create 8 in
  let bump cls =
    Hashtbl.replace hist cls
      (1 + Option.value ~default:0 (Hashtbl.find_opt hist cls))
  in
  let findings = ref [] in
  (* per-word cleanliness over the code section, default unclean: data
     slots and words outside any known function never earn exemption.
     A word's abstract pre-state is sound for every execution because a
     basic block is single-entry and the engine only begins translation
     blocks at CFG leaders (call/jump targets, return sites) — a
     block-limit split continuation is still only reachable by falling
     through the words above it. *)
  let wclean = Array.make (image.Asm.code_size / 4) false in
  let funcs =
    List.map
      (fun (f : Cfg.func) ->
        let trusted = sp_trusted t f in
        let stores = ref 0 and clean = ref true and frame = ref 0 in
        let first_unclean = ref None in
        List.iter
          (fun (b : Cfg.block) ->
            let st = Array.make 16 Top in
            st.(13) <- SpRel 0;
            List.iter
              (fun (addr, i) ->
                (match store_spans st i with
                | None -> wclean.((addr - image.Asm.base) asr 2) <- true
                | Some target ->
                  incr stores;
                  let cls =
                    match target with
                    | `Stack -> if trusted then C_stack else C_unknown
                    | `Unknown -> C_unknown
                    | `Span span -> classify_span image span
                  in
                  bump cls;
                  if cls = C_code || cls = C_unknown then begin
                    clean := false;
                    if !first_unclean = None then
                      first_unclean :=
                        Some
                          (Printf.sprintf "%s: `%s' -> %s"
                             (Asm.nearest_symbol image addr)
                             (to_string i) (class_name cls))
                  end
                  else wclean.((addr - image.Asm.base) asr 2) <- true);
                transfer st i;
                (match st.(13) with
                | SpRel k when -k > !frame -> frame := -k
                | _ -> ()))
              b.Cfg.b_insts)
          (Cfg.func_blocks t f);
        { v_name = f.Cfg.f_name;
          v_entry = f.Cfg.f_entry;
          v_size = f.Cfg.f_size;
          v_stores = !stores;
          v_clean = !clean;
          v_frame = !frame;
          v_first_unclean = !first_unclean })
      t.Cfg.funcs
  in
  List.iter
    (fun v ->
      match v.v_first_unclean with
      | Some site when not v.v_clean ->
        findings :=
          Finding.v ~pass:"absint" ~severity:Finding.Info ~code:"smc-unclean"
            ~where:v.v_name
            (Printf.sprintf
               "%d store(s) not provably outside translated code; first: %s"
               v.v_stores site)
          :: !findings
      | _ -> ())
    funcs;
  (* merge runs of clean words into maximal [lo, hi) ranges *)
  let ranges = ref [] and run_lo = ref None in
  let flush_run hi_k =
    match !run_lo with
    | Some lo_k ->
      ranges :=
        (image.Asm.base + (4 * lo_k), image.Asm.base + (4 * hi_k)) :: !ranges;
      run_lo := None
    | None -> ()
  in
  Array.iteri
    (fun k c ->
      if c then (if !run_lo = None then run_lo := Some k)
      else flush_run k)
    wclean;
  flush_run (Array.length wclean);
  let ranges = List.rev !ranges in
  let hist =
    List.sort compare (Hashtbl.fold (fun k v acc -> (class_name k, v) :: acc) hist [])
  in
  { a_funcs = funcs;
    a_clean = List.length (List.filter (fun v -> v.v_clean) funcs);
    a_hist = hist;
    a_clean_ranges = ranges;
    a_max_frame = List.fold_left (fun m v -> max m v.v_frame) 0 funcs;
    findings = List.rev !findings }

(** [clean_words r] — guest words covered by the clean ranges. *)
let clean_words (r : report) =
  List.fold_left (fun acc (lo, hi) -> acc + ((hi - lo) / 4)) 0 r.a_clean_ranges

(** [print_report r] — the SMC-clean summary ([arksim analyze
    --absint]). *)
let print_report (r : report) =
  Tk_stats.Report.kv "SMC-clean abstract interpretation"
    [ ("functions", string_of_int (List.length r.a_funcs));
      ("SMC-clean functions", string_of_int r.a_clean);
      ("clean ranges", string_of_int (List.length r.a_clean_ranges));
      ("clean guest words", string_of_int (clean_words r));
      ("deepest static frame (bytes)", string_of_int r.a_max_frame) ];
  Tk_stats.Report.table ~title:"store-target classification"
    ~aligns:[ Tk_stats.Report.L; Tk_stats.Report.R ]
    ~header:[ "target"; "stores" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) r.a_hist)
