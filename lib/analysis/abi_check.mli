(** ABI conformance: prove the guest image only leans on ARK through the
    narrow Table 2 interface.

    Three obligations, per kernel variant: {b structural} (the
    {!Tk_kernel.Kabi} sets are well-formed and within Table 2),
    {b resolution} ({!Tk_kernel.Kabi.resolve} succeeds — the Figure 3
    ABI-break detector), and the {b call audit} (every direct [bl] site
    targets a known function entry, classified as emulated / hooked /
    cold / translated).

    Works on a raw {!Tk_isa.Asm.image} so tests can craft deliberately
    broken images without going through the kernel builder. *)

module Asm = Tk_isa.Asm

type callee_class = Emulated | Hooked | Cold | Translated

val class_name : callee_class -> string
val classify_name : string -> callee_class

type report = {
  class_counts : (string * int) list;  (** call sites per callee class *)
  callees : (string * string) list;  (** callee -> class, call-audit view *)
  findings : Finding.t list;
}

val structural_findings : unit -> Finding.t list
val resolution_findings : Asm.image -> Finding.t list

val check : Asm.image -> report
(** all three obligations over one linked image *)

val print_report : report -> unit
