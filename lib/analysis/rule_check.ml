(** Translation-rule validator: static differential checking of every
    {!Tk_isa.Spec} instruction form over a dense grid of machine states.

    The PR-2 differential fuzzer samples random programs; this pass is
    the complementary {e exhaustive-per-rule} check in the spirit of
    translation validation: for each guest instruction form the rules
    claim to translate, enumerate flags (all 16 NZCV combinations),
    condition codes, register-value vectors chosen for carry/shift/sign
    edge cases, and register {e placements} that exercise the r10
    emulation wrap — then run the guest instruction and its legalized
    host sequence through the same {!Tk_isa.Exec} semantics and demand
    bit-identical outcomes.

    What "identical" means under ARK's conventions (§5.2):
    {ul
    {- r0..r9, r11, sp, lr pass through — must match exactly;}
    {- guest r10 is emulated at {!Tk_dbt.Layout.env_r10}: the guest's
       final r10 is compared against that memory word after the host run
       (host r10 itself is the dedicated scratch and may hold anything);}
    {- host r12 is the secondary scratch, {e dead only} when the guest
       instruction itself touches r10 — otherwise clobbering it is a
       scratch-leak violation;}
    {- NZCV, memory writes outside the env block, and environment traps
       (SVC/WFI) must agree.}}

    The [legalize] hook exists so tests can seed a deliberately broken
    rule and watch this pass name the exact form and machine state. *)

open Tk_isa
open Tk_isa.Types
module Rules = Tk_dbt.Rules
module Layout = Tk_dbt.Layout

(* ----------------------- machine-state grid -------------------------- *)

(** Guest address every form is legalized and executed at (pc-relative
    forms materialize [gpc + 8]). *)
let gpc = 0x10010000

(* host code-cache stand-in address; only used as the amendment
   sequence's notional location, never fetched through memory *)
let hbase = 0x11000000

(* host scratch sentinel: a rules bug that *reads* r10/r12 before
   writing them sees this value and diverges from the guest *)
let scratch_sentinel = 0xA5A5A5A5

let conds = [ AL; EQ; NE; CS; LT ]

(* r0..r14 assignments; each vector targets a failure family. Values
   avoid the env block (0x10FF0000) so guest stores cannot collide with
   the emulated-r10 slot (collisions are detected and skipped anyway). *)
let reg_vectors =
  [| (* distinct small values: placement/substitution bugs *)
     Array.init 15 (fun i -> (i + 1) * 0x11);
     (* zeros: flag-setting on zero results, null bases *)
     Array.make 15 0;
     (* carry/overflow edges *)
     [| 0xFFFFFFFF; 1; 0x80000000; 0x7FFFFFFF; 0xFFFFFFFE; 2;
        0x55555555; 0xAAAAAAAA; 31; 0xCAFEBABE; 0x0BADF00D; 0x10203040;
        0xDEADBEEF; 0x10600000; 0x10600100 |];
     (* memory-addressing: plausible word-aligned bases in r1/r8, small
        index registers *)
     [| 0x12345678; 0x10500000; 0x40; 3; 4; 0x10500800; 6; 7;
        0x10501000; 9; 0x77777777; 11; 12; 0x105FF000; 14 |];
     (* shift-amount edges: amounts 0, 31, 32, 33 and 0x100 (-> 0 after
        the &0xFF register-shift mask) through the operand registers *)
     [| 0x80000001; 0xFFFFFFFF; 32; 33; 0x100; 31; 1; 0; 0x10500000;
        2; 0x3F; 0x20; 0x1F; 0x105F0000; 0xF0F0F0F0 |] |]

(* ------------------------- sparse memory ----------------------------- *)

(* Byte-granular sparse memory with deterministic non-zero background
   content, so an erroneous load from an unwritten address still yields
   a value both arms must agree on. *)
let background addr = (addr * 0x9E3779B1) lsr 16 land 0xFF

type smem = (int, int) Hashtbl.t

let smem_create () : smem = Hashtbl.create 16

let smem_load (m : smem) addr nbytes =
  let v = ref 0 in
  for k = nbytes - 1 downto 0 do
    let a = Bits.mask32 (addr + k) in
    let byte =
      match Hashtbl.find_opt m a with Some b -> b | None -> background a
    in
    v := (!v lsl 8) lor byte
  done;
  !v

let smem_store (m : smem) addr nbytes v =
  for k = 0 to nbytes - 1 do
    Hashtbl.replace m (Bits.mask32 (addr + k)) ((v lsr (8 * k)) land 0xFF)
  done

let smem_copy (m : smem) : smem = Hashtbl.copy m

(* the env block words the host legitimately uses for r10 emulation and
   flag spills; excluded from the memory diff *)
let env_addr a =
  a >= Layout.env_r10 && a < Layout.env_flags_spill + 4

let smem_diff (guest : smem) (host : smem) =
  let diffs = ref [] in
  let probe a =
    if not (env_addr a) then begin
      let gv =
        match Hashtbl.find_opt guest a with Some b -> b | None -> background a
      in
      let hv =
        match Hashtbl.find_opt host a with Some b -> b | None -> background a
      in
      if gv <> hv then diffs := (a, gv, hv) :: !diffs
    end
  in
  Hashtbl.iter (fun a _ -> probe a) guest;
  Hashtbl.iter (fun a _ -> if not (Hashtbl.mem guest a) then probe a) host;
  List.sort_uniq compare !diffs

(* --------------------------- execution ------------------------------- *)

(* environment traps are part of the observable outcome *)
type run = {
  cpu : Exec.cpu;
  mem : smem;
  mutable traps : string list;  (** newest first *)
  mutable fault : string option;
}

let make_run mem =
  { cpu = Exec.make_cpu (); mem; traps = []; fault = None }

let env_of run : Exec.env =
  { Exec.load = (fun a n -> smem_load run.mem a n);
    store = (fun a n v -> smem_store run.mem a n v);
    svc = (fun _ n -> run.traps <- Printf.sprintf "svc %d" n :: run.traps);
    wfi = (fun _ -> run.traps <- "wfi" :: run.traps);
    irq_ret = (fun _ -> run.traps <- "irq_ret" :: run.traps);
    undef =
      (fun _ i ->
        run.traps <- Printf.sprintf "undef %s" (to_string i) :: run.traps) }

let set_flags (cpu : Exec.cpu) (n, z, c, v) =
  cpu.Exec.n <- n; cpu.Exec.z <- z; cpu.Exec.c <- c; cpu.Exec.v <- v

let flags_str (cpu : Exec.cpu) =
  Printf.sprintf "%c%c%c%c"
    (if cpu.Exec.n then 'N' else 'n') (if cpu.Exec.z then 'Z' else 'z')
    (if cpu.Exec.c then 'C' else 'c') (if cpu.Exec.v then 'V' else 'v')

(* one guest instruction at [gpc] *)
let run_guest inst flags vec =
  let run = make_run (smem_create ()) in
  Array.blit vec 0 run.cpu.Exec.r 0 15;
  set_flags run.cpu flags;
  (try ignore (Exec.step run.cpu (env_of run) ~addr:gpc inst)
   with e -> run.fault <- Some (Printexc.to_string e));
  run

(* the legalized host sequence, laid out at [hbase]; the only internal
   control flow is the wrap_cond skip branch, which must land inside or
   exactly one past the sequence *)
let run_host hosts flags vec uses_r10 =
  let run = make_run (smem_create ()) in
  Array.blit vec 0 run.cpu.Exec.r 0 15;
  (* guest r10 lives in the env block; host r10 is scratch *)
  smem_store run.mem Layout.env_r10 4 vec.(10);
  run.cpu.Exec.r.(10) <- scratch_sentinel;
  if uses_r10 then run.cpu.Exec.r.(12) <- scratch_sentinel;
  set_flags run.cpu flags;
  let n = Array.length hosts in
  let env = env_of run in
  let idx = ref 0 and fuel = ref (4 * (n + 4)) in
  (try
     while !idx < n && run.fault = None do
       decr fuel;
       if !fuel < 0 then begin
         run.fault <- Some "host sequence does not terminate"
       end
       else begin
         let addr = hbase + (4 * !idx) in
         match Exec.step run.cpu env ~addr hosts.(!idx) with
         | Exec.Next -> incr idx
         | Exec.Branched ->
           let target = run.cpu.Exec.r.(pc) in
           let j = (target - hbase) asr 2 in
           if j < 0 || j > n || target land 3 <> 0 then
             run.fault <-
               Some (Printf.sprintf "host branch escapes sequence (0x%x)" target)
           else idx := j
       end
     done
   with e -> run.fault <- Some (Printexc.to_string e));
  run

(* ------------------------- state comparison -------------------------- *)

(* registers that pass through and must survive the amendment sequence
   bit-exactly; r10 is compared via the env slot, r12 via [uses_r10] *)
let passthrough = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 11; 13; 14 ]

let compare_state ~uses_r10 (g : run) (h : run) =
  let bad = ref [] in
  let note fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  (match g.fault, h.fault with
  | None, None -> ()
  | gf, hf ->
    note "fault: guest=%s host=%s"
      (Option.value ~default:"-" gf) (Option.value ~default:"-" hf));
  List.iter
    (fun r ->
      if g.cpu.Exec.r.(r) <> h.cpu.Exec.r.(r) then
        note "%s: guest=0x%x host=0x%x" (reg_name r) g.cpu.Exec.r.(r)
          h.cpu.Exec.r.(r))
    passthrough;
  let g10 = g.cpu.Exec.r.(10) in
  let h10 = smem_load h.mem Layout.env_r10 4 in
  if g10 <> h10 then note "r10(env): guest=0x%x host=0x%x" g10 h10;
  if (not uses_r10) && g.cpu.Exec.r.(12) <> h.cpu.Exec.r.(12) then
    note "r12 scratch leak: guest=0x%x host=0x%x" g.cpu.Exec.r.(12)
      h.cpu.Exec.r.(12);
  if flags_str g.cpu <> flags_str h.cpu then
    note "flags: guest=%s host=%s" (flags_str g.cpu) (flags_str h.cpu);
  if g.traps <> h.traps then
    note "traps: guest=[%s] host=[%s]"
      (String.concat "; " (List.rev g.traps))
      (String.concat "; " (List.rev h.traps));
  (match smem_diff g.mem h.mem with
  | [] -> ()
  | (a, gv, hv) :: _ as ds ->
    note "memory: %d bytes differ, first at 0x%x (guest=0x%02x host=0x%02x)"
      (List.length ds) a gv hv);
  List.rev !bad

(* --------------------------- the validator --------------------------- *)

type stats = {
  spec_forms : int;  (** Table 3 total — 558 architectural forms *)
  spec_entries : int;  (** entries in {!Spec.all_forms} *)
  implemented : int;  (** entries carrying a representative AST *)
  validated : int;  (** forms put through the state grid *)
  control_flow : int;  (** engine-mediated (sites), excluded here *)
  fallback : int;  (** untranslatable -> fallback, by design *)
  variants : int;  (** form variants incl. r10 placements *)
  states : int;  (** machine states differentially executed *)
  divergent : int;  (** states whose two arms disagreed *)
  hazard_skips : int;  (** states skipped: guest store hit the env block *)
}

type report = { stats : stats; findings : Finding.t list }

let is_control { op; _ } =
  match op with B _ | Bl _ | Bx _ | Blx_r _ -> true | _ -> false

(* register placements: the representative AST, its flag-setting twin
   (the spec reprs are all s=false, but the S-bit path carries the §5.2
   shifter-carry caveat), plus substitutions that drag r10 through the
   operand/destination positions to exercise the emulation wrap and the
   r12 secondary scratch *)
let placements i =
  let subst old =
    match Rules.subst_all ~old ~rep:Rules.scratch i with
    | j when j <> i -> Some j
    | _ -> None
    | exception Rules.Untranslatable _ -> None
  in
  let s_variant =
    match i.op with
    | Dp ((CMP | CMN | TST | TEQ), _, _, _, _) -> None
    | Dp (o, false, rd, rn, op2) ->
      Some ({ i with op = Dp (o, true, rd, rn, op2) }, "flag-setting")
    | Mul (false, rd, rn, rm) ->
      Some ({ i with op = Mul (true, rd, rn, rm) }, "flag-setting")
    | _ -> None
  in
  ((i, "as-spec") :: Option.to_list s_variant)
  @ List.filter_map
      (fun (old, tag) ->
        match subst old with Some j -> Some (j, tag) | None -> None)
      [ (0, "r10-as-dest"); (1, "r10-as-src") ]

let default_legalize = Rules.legalize

(** [validate ?legalize ?max_findings ()] runs the full grid. At most
    [max_findings] divergences are materialized as findings (the
    [divergent] counter keeps exact count); a broken rule would
    otherwise flood the report with thousands of states. *)
let validate ?(legalize = default_legalize) ?(max_findings = 40) () =
  let findings = ref [] and nfind = ref 0 in
  let states = ref 0 and divergent = ref 0 and hazard = ref 0 in
  let variants = ref 0 in
  let validated = ref 0 and control = ref 0 and fellback = ref 0 in
  let implemented = ref 0 in
  let add f =
    incr nfind;
    if !nfind <= max_findings then findings := f :: !findings
  in
  let flag_grid =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun z ->
            List.concat_map
              (fun c -> List.map (fun v -> (n, z, c, v)) [ false; true ])
              [ false; true ])
          [ false; true ])
      [ false; true ]
  in
  let check_variant (form : Spec.form) (inst0, tag) =
    incr variants;
    List.iter
      (fun cond ->
        let inst = { inst0 with cond } in
        match legalize ~gpc inst with
        | exception Rules.Untranslatable _ -> ()
        | _cat, hosts ->
          (try Rules.check_encodable hosts
           with Rules.Untranslatable msg ->
             add
               (Finding.v ~pass:"rules" ~severity:Finding.Error
                  ~code:"amendment-not-encodable"
                  ~where:(Printf.sprintf "%s [%s]" form.Spec.fname tag)
                  msg));
          let hosts = Array.of_list hosts in
          let uses_r10 =
            List.mem Rules.scratch (regs_read inst)
            || List.mem Rules.scratch (regs_written inst)
          in
          List.iter
            (fun flags ->
              Array.iteri
                (fun vid vec ->
                  let g = run_guest inst flags vec in
                  (* a guest store landing in the env block would fight
                     the emulated r10 slot; the real engine has the same
                     (documented) hazard, so the state is skipped *)
                  if Hashtbl.fold (fun a _ acc -> acc || env_addr a)
                       g.mem false
                  then incr hazard
                  else begin
                    incr states;
                    let h = run_host hosts flags vec uses_r10 in
                    match compare_state ~uses_r10 g h with
                    | [] -> ()
                    | problems ->
                      incr divergent;
                      add
                        (Finding.v ~pass:"rules" ~severity:Finding.Error
                           ~code:"rule-divergence"
                           ~where:form.Spec.fname
                           (Printf.sprintf
                              "%s [%s] cond=%s flags=%s vec=%d: %s"
                              (to_string inst) tag
                              (match cond_suffix cond with
                              | "" -> "al"
                              | s -> s)
                              (let cpu = Exec.make_cpu () in
                               set_flags cpu flags; flags_str cpu)
                              vid
                              (String.concat "; " problems)))
                  end)
                reg_vectors)
            flag_grid)
      conds
  in
  List.iter
    (fun (form : Spec.form) ->
      match form.Spec.repr with
      | None -> ()
      | Some i ->
        incr implemented;
        if is_control i then incr control
        else begin
          match legalize ~gpc i with
          | exception Rules.Untranslatable _ -> incr fellback
          | _ ->
            incr validated;
            List.iter (check_variant form) (placements i)
        end)
    Spec.all_forms;
  { stats =
      { spec_forms = Spec.total;
        spec_entries = List.length Spec.all_forms;
        implemented = !implemented;
        validated = !validated;
        control_flow = !control;
        fallback = !fellback;
        variants = !variants;
        states = !states;
        divergent = !divergent;
        hazard_skips = !hazard };
    findings = List.rev !findings }

(** [print_stats r] — the coverage counter block ([arksim analyze
    --rules]). *)
let print_stats (r : report) =
  let s = r.stats in
  Tk_stats.Report.kv "rule validator coverage"
    [ ("spec forms (Table 3 total)", string_of_int s.spec_forms);
      ("spec entries", string_of_int s.spec_entries);
      ("implemented (representative AST)", string_of_int s.implemented);
      ("state-grid validated", string_of_int s.validated);
      ("control flow (engine sites)", string_of_int s.control_flow);
      ("fallback by design", string_of_int s.fallback);
      ("form variants (incl. r10 placements)", string_of_int s.variants);
      ("machine states executed", string_of_int s.states);
      ("divergent states", string_of_int s.divergent);
      ("env-hazard skips", string_of_int s.hazard_skips) ]
