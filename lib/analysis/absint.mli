(** Whole-image abstract interpretation proving SMC-clean regions: a
    light interval/stack-relative domain over the recovered {!Cfg}
    classifies every store's target; guest words whose instruction
    cannot write into the image's code section are {e SMC-clean}. The
    merged clean ranges feed {!Tk_dbt.Engine.set_smc_map}, letting the
    superblock tier skip the per-word store-invalidation probe for code
    emitted entirely from clean words — soundly, because a clean store
    can never hit a covered (translated) word, and self-modifying code
    is by construction unclean. *)

open Tk_isa
open Tk_isa.Types

(** Abstract register value. *)
type aval =
  | Top
  | Const of int  (** the register holds the literal *)
  | SpRel of int  (** [sp_at_block_entry + k] *)

(** Store-target classes (census + cleanliness verdicts). *)
type store_class =
  | C_stack  (** SP-relative, SP-discipline intact *)
  | C_code  (** inside the image's code section: SMC evidence *)
  | C_image_data  (** image window, past the code section *)
  | C_ram  (** RAM outside the probe window (pool, env, stacks) *)
  | C_mmio  (** device/GIC register space *)
  | C_unknown  (** target not provable *)

val class_name : store_class -> string

val transfer : aval array -> inst -> unit
(** register effects of one instruction on the abstract state
    (index 13 = SP); conditional writes go to [Top] *)

val store_spans :
  aval array -> inst -> [ `Stack | `Span of int * int | `Unknown ] option
(** the [\[lo, hi)] byte span the instruction may store to, [`Stack]
    for SP-relative targets, [`Unknown] for unbounded ones, [None] when
    it does not store; evaluated on the {e pre}-state *)

val classify_span : Asm.image -> int * int -> store_class

type fverdict = {
  v_name : string;
  v_entry : int;
  v_size : int;  (** code bytes, [\[v_entry, v_entry + v_size)] *)
  v_stores : int;
  v_clean : bool;  (** no store can reach the image's code section *)
  v_frame : int;  (** deepest static SP displacement seen (bytes) *)
  v_first_unclean : string option;  (** site + disassembly, for findings *)
}

type report = {
  a_funcs : fverdict list;  (** address order *)
  a_clean : int;
  a_hist : (string * int) list;  (** store-target histogram, whole image *)
  a_clean_ranges : (int * int) list;
      (** merged [\[lo, hi)] guest ranges of clean {e words} — feed to
          {!Tk_dbt.Engine.set_smc_map}. Word-granular: one
          pointer-chased store only disqualifies the translation blocks
          containing it, not its whole function. *)
  a_max_frame : int;
  findings : Finding.t list;
}

val sp_trusted : Cfg.t -> Cfg.func -> bool
(** is every SP write in the function a push/pop or [sp +- #imm]
    ({!Image_lint.stack_delta}-bounded)? *)

val analyze : Cfg.t -> report
(** classify every store in every function, produce per-function
    SMC-clean verdicts and the merged clean-range list *)

val clean_words : report -> int
(** guest words covered by the clean ranges *)

val print_report : report -> unit
