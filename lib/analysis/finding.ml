(** Shared currency of the static verification layer: one {e finding} per
    rule divergence, CFG lint hit or ABI violation.

    Every analysis pass ({!Rule_check}, {!Image_lint}, {!Abi_check})
    reduces to a list of findings; the [arksim analyze] driver renders
    them as a human table and/or JSONL, and the CI gate fails when any
    {!Error}-severity finding survives. Keeping the record flat and
    stringly keeps the JSON schema stable across passes (documented in
    README "Static verification"). *)

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  pass : string;  (** producing pass: ["rules"], ["cfg"] or ["abi"] *)
  severity : severity;
  code : string;  (** stable machine tag, e.g. ["rule-divergence"] *)
  where : string;  (** instruction form or [symbol+0xoff] site *)
  detail : string;  (** human explanation, one line *)
}

let v ~pass ~severity ~code ~where detail =
  { pass; severity; code; where; detail }

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs

(* JSON string escaping: the details embed disassembly, which is plain
   ASCII, but quotes/backslashes must survive a jq round-trip *)
let json_escape = Tk_stats.Json.escape

(** [to_json ?extra f] — one JSONL record:
    [{"pass":..,"severity":..,"code":..,"where":..,"detail":..}], with
    [extra] [(key, value)] string fields prepended (the analyze driver
    tags findings with the kernel variant this way). *)
let to_json ?(extra = []) f =
  let extra_fields =
    String.concat ""
      (List.map
         (fun (k, v) ->
           Printf.sprintf {|"%s":"%s",|} (json_escape k) (json_escape v))
         extra)
  in
  Printf.sprintf
    {|{%s"pass":"%s","severity":"%s","code":"%s","where":"%s","detail":"%s"}|}
    extra_fields (json_escape f.pass) (severity_name f.severity)
    (json_escape f.code) (json_escape f.where) (json_escape f.detail)

(** [print_table fs] renders findings through {!Tk_stats.Report} (errors
    first). No-op on an empty list. *)
let print_table ?(title = "findings") fs =
  if fs <> [] then
    let weight f =
      match f.severity with Error -> 0 | Warning -> 1 | Info -> 2
    in
    let fs = List.stable_sort (fun a b -> compare (weight a) (weight b)) fs in
    Tk_stats.Report.table ~title
      ~aligns:[ Tk_stats.Report.L; Tk_stats.Report.L; Tk_stats.Report.L;
                Tk_stats.Report.L; Tk_stats.Report.L ]
      ~header:[ "pass"; "severity"; "code"; "where"; "detail" ]
      (List.map
         (fun f ->
           [ f.pass; severity_name f.severity; f.code; f.where; f.detail ])
         fs)
