(** Translation-rule validator: static differential checking of every
    {!Tk_isa.Spec} instruction form over a dense grid of machine states
    — flags, condition codes, edge-case register vectors and register
    placements that exercise the r10 emulation wrap. The guest
    instruction and its legalized host sequence run through the same
    {!Tk_isa.Exec} semantics and must produce bit-identical outcomes.

    The sparse-memory/differential-run helpers are exported for
    {!Certify}, which reuses them to execute whole superblock traces
    under the same observational conventions. *)

open Tk_isa
open Tk_isa.Types

val gpc : int
(** guest address every form is legalized and executed at *)

val hbase : int
(** host code-cache stand-in address for laid-out sequences *)

val scratch_sentinel : int
(** initial host r10/r12 value: a rules bug that {e reads} a scratch
    before writing it sees this and diverges *)

val conds : cond list
val reg_vectors : int array array
(** r0..r14 assignments; each vector targets a failure family *)

(** {2 Sparse differential memory} *)

val background : int -> int
(** deterministic non-zero byte at an unwritten address *)

type smem = (int, int) Hashtbl.t

val smem_create : unit -> smem
val smem_load : smem -> int -> int -> int
val smem_store : smem -> int -> int -> int -> unit
val smem_copy : smem -> smem

val env_addr : int -> bool
(** inside the env-block words the host legitimately uses for r10
    emulation and flag spills (excluded from the memory diff) *)

val smem_diff : smem -> smem -> (int * int * int) list
(** [(addr, guest_byte, host_byte)] differences outside the env block *)

(** {2 Differential execution} *)

type run = {
  cpu : Exec.cpu;
  mem : smem;
  mutable traps : string list;  (** newest first *)
  mutable fault : string option;
}

val make_run : smem -> run
val env_of : run -> Exec.env
val set_flags : Exec.cpu -> bool * bool * bool * bool -> unit
val flags_str : Exec.cpu -> string

val run_guest : inst -> bool * bool * bool * bool -> int array -> run
(** one guest instruction at {!gpc} *)

val run_host :
  inst array -> bool * bool * bool * bool -> int array -> bool -> run
(** the legalized host sequence laid out at {!hbase};
    [run_host hosts flags vec uses_r10] *)

val passthrough : int list
(** registers that pass through ARK's conventions and must survive
    bit-exactly (r10 is compared via the env slot, r12 conditionally) *)

val compare_state : uses_r10:bool -> run -> run -> string list
(** divergence descriptions; [] = identical observable outcome *)

(** {2 The validator} *)

type stats = {
  spec_forms : int;  (** Table 3 total — architectural forms *)
  spec_entries : int;  (** entries in {!Tk_isa.Spec.all_forms} *)
  implemented : int;  (** entries carrying a representative AST *)
  validated : int;  (** forms put through the state grid *)
  control_flow : int;  (** engine-mediated (sites), excluded here *)
  fallback : int;  (** untranslatable -> fallback, by design *)
  variants : int;  (** form variants incl. r10 placements *)
  states : int;  (** machine states differentially executed *)
  divergent : int;  (** states whose two arms disagreed *)
  hazard_skips : int;  (** states skipped: guest store hit the env block *)
}

type report = { stats : stats; findings : Finding.t list }

val is_control : inst -> bool
val placements : inst -> (inst * string) list

val default_legalize :
  gpc:int -> inst -> Tk_isa.Spec.category * inst list

val validate :
  ?legalize:(gpc:int -> inst -> Tk_isa.Spec.category * inst list) ->
  ?max_findings:int -> unit -> report
(** run the full grid; at most [max_findings] divergences are
    materialized as findings (the [divergent] counter keeps exact
    count). The [legalize] hook exists so tests can seed a deliberately
    broken rule and watch the pass name the exact form and state. *)

val print_stats : report -> unit
