(** Superblock trace certifier: differential equivalence checking of a
    formed (or warm-loaded) {!Tk_dbt.Superblock.plan} against the
    sequential composition of its constituent blocks' reference
    translations.

    The planner composes transforms no single-rule check covers —
    interior terminals dropped, guest r10 re-homed into host r12 across
    the trace, spill/reload woven around engine sites. This pass
    certifies the {e composition}: both emit streams execute over a grid
    of machine states through the shared {!Tk_isa.Exec} semantics and
    must take the same engine sites in the same order with identical
    guest-visible state, exit identically, and agree on the final state.
    Engine/callback effects at resumable sites are modeled by a
    deterministic havoc applied identically to both arms. *)

open Tk_isa
module Translator = Tk_dbt.Translator
module Superblock = Tk_dbt.Superblock

exception Mismatch of string
(** the plan's recorded shape contradicts its constituent blocks'
    reference translations (corrupted or stale warm plan) *)

type outcome = {
  o_states : int;  (** machine states differentially executed *)
  o_problems : string list;  (** divergences; [] certifies the plan *)
}

val certify_plan :
  read_guest:(int -> Types.inst) ->
  classify_target:(int -> Translator.target_class) ->
  block_limit:int ->
  Superblock.plan ->
  outcome
(** rebuild the reference composition for the plan and differentially
    execute it against the plan's woven trace body over the state grid *)

val admit :
  read_guest:(int -> Types.inst) ->
  classify_target:(int -> Translator.target_class) ->
  block_limit:int ->
  unit ->
  Superblock.plan -> bool
(** the online certifier for {!Tk_dbt.Engine.t.sb_certify}: admit a
    plan only when {!certify_plan} finds no divergence *)

type report = {
  r_blocks : int;  (** translation blocks reachable on the image *)
  r_chains : int;  (** heads whose successor chain reaches length >= 2 *)
  r_plans : int;  (** plans the planner formed (all chain prefixes) *)
  r_cached : int;  (** plans with r10-in-r12 caching applied *)
  r_aborts : int;  (** chains the planner refused (Superblock.Abort) *)
  r_states : int;  (** machine states differentially executed *)
  r_divergent : int;  (** plans with at least one divergence *)
  findings : Finding.t list;
}

val read_guest_of_image : Asm.image -> int -> Types.inst
(** a [Translator.ctx]-shaped fetcher over the pristine linked image
    (decode failures and out-of-image fetches raise) *)

val certify_image :
  ?block_limit:int ->
  ?max_blocks:int ->
  classify_target:(int -> Translator.target_class) ->
  Asm.image ->
  report
(** enumerate every superblock the planner can form on the pristine
    image — every chain prefix of length >= 2, mirroring the engine's
    formation walk — and certify each one *)

val print_report : report -> unit
