(** Dataflow passes over a recovered guest-image CFG ({!Cfg}):
    reachability/dead code, untranslatable-instruction census, worst-case
    stack-depth bound against the M3 stack budget, and the indirect-call
    audit (the static pre-flight ECMO argues a rehosted kernel needs).

    Severity policy: a finding is an {!Finding.Error} only when it would
    make offloaded execution wrong or crash the peripheral core (stack
    overrun, undecodable word on a reachable path); expected properties
    of ARK's design — fallback sites, dead fragments, indirect calls —
    are reported as census ([Warning]/[Info]) so the CI gate tracks them
    without failing the build. *)

open Tk_isa.Types
module Asm = Tk_isa.Asm
module Rules = Tk_dbt.Rules
module Kabi = Tk_kernel.Kabi
module Spec = Tk_isa.Spec

(** Entry points invoked from outside the image: the boot/PM calls the
    harness (stand-in user space) makes, the IRQ vector, and ARK's
    upcall entry points (Table 2 top). Fragment names ending in [_init]
    are driver init entry points. *)
let entry_symbols (image : Asm.image) =
  let fixed =
    [ "kernel_main"; "irq_entry"; "call_exit_stub"; "pm_suspend";
      "wifi_prepare_traffic"; "dpm_set_async"; "pm_runtime_suspend";
      "pm_runtime_resume"; Kabi.worker_thread; Kabi.irq_thread;
      Kabi.do_softirq; Kabi.run_local_timers; Kabi.generic_handle_irq ]
  in
  let is_init name =
    String.length name > 5
    && String.sub name (String.length name - 5) 5 = "_init"
  in
  let inits =
    List.filter_map
      (fun (name, _) -> if is_init name then Some name else None)
      image.Asm.frag_sizes
  in
  List.filter (fun s -> Hashtbl.mem image.Asm.symbols s) (fixed @ inits)

(** ARK's translated-execution entry points: reachability from here,
    with emulated/cold callees cut (the engine diverts those), is the
    hot path that actually runs under DBT. *)
let hot_entry_symbols (image : Asm.image) =
  List.filter
    (fun s -> Hashtbl.mem image.Asm.symbols s)
    [ Kabi.worker_thread; Kabi.irq_thread; Kabi.do_softirq;
      Kabi.run_local_timers; Kabi.generic_handle_irq ]

(* function-level call-graph reachability. [cut name] prunes the
   traversal at callees the DBT engine never translates into. *)
let reachable_funcs (t : Cfg.t) ~entries ~cut =
  let seen = Hashtbl.create 64 in
  let rec visit (f : Cfg.func) =
    if not (Hashtbl.mem seen f.Cfg.f_name) then begin
      Hashtbl.replace seen f.Cfg.f_name ();
      List.iter
        (fun (_site, callee) ->
          match Cfg.func_of_addr t callee with
          | Some g when not (cut g.Cfg.f_name) -> visit g
          | _ -> ())
        (Cfg.call_sites t f)
    end
  in
  List.iter
    (fun s ->
      match Asm.symbol_opt t.Cfg.image s with
      | Some addr -> (
        match Cfg.func_of_addr t addr with
        | Some f -> visit f
        | None -> ())
      | None -> ())
    entries;
  seen

(* ------------------- reachability / dead code ------------------------ *)

(* Address-taken functions: indirect calls ([blx reg]) can reach any
   function whose entry address escapes into a register or memory. Two
   conservative sources cover this image format completely: initialized
   data-section words, and movw/movt pairs in code (the only way the
   assembler materializes a 32-bit function address — [Asm.Adr]). *)
let address_taken (t : Cfg.t) =
  let image = t.Cfg.image in
  let entries = Hashtbl.create 64 in
  List.iter
    (fun (f : Cfg.func) -> Hashtbl.replace entries f.Cfg.f_entry f.Cfg.f_name)
    t.Cfg.funcs;
  let taken = ref [] in
  let note addr =
    match Hashtbl.find_opt entries addr with
    | Some name -> taken := name :: !taken
    | None -> ()
  in
  let ncode = image.Asm.code_size / 4 in
  Array.iteri (fun k w -> if k >= ncode then note w) image.Asm.words;
  let n = Array.length t.Cfg.slots in
  for k = 0 to n - 2 do
    match (t.Cfg.slots.(k), t.Cfg.slots.(k + 1)) with
    | ( Cfg.Inst { op = Movw (rd, lo); _ },
        Cfg.Inst { op = Movt (rd', hi); _ } )
      when rd = rd' ->
      note ((hi lsl 16) lor lo)
    | _ -> ()
  done;
  List.sort_uniq compare !taken

let dead_code_findings (t : Cfg.t) =
  let live =
    reachable_funcs t
      ~entries:(entry_symbols t.Cfg.image @ address_taken t)
      ~cut:(fun _ -> false)
  in
  let dead =
    List.filter (fun f -> not (Hashtbl.mem live f.Cfg.f_name)) t.Cfg.funcs
  in
  List.map
    (fun (f : Cfg.func) ->
      Finding.v ~pass:"cfg" ~severity:Finding.Warning ~code:"dead-function"
        ~where:f.Cfg.f_name
        (Printf.sprintf
           "%d bytes unreachable from any entry point or address-taken \
            function"
           f.Cfg.f_size))
    dead

(* --------------- untranslatable / fallback census -------------------- *)

(* instructions the DBT engine intercepts rather than sending through
   the rules: all control flow (block terminators in the CFG) *)
let engine_mediated (i : inst) =
  match i.op with
  | B _ | Bl _ | Bx _ | Blx_r _ | Irq_ret -> true
  | _ -> List.mem pc (regs_written i)

let fallback_census (t : Cfg.t) =
  (* address-taken functions are conservatively hot: work items, timer
     callbacks and driver pm ops all run translated via blx *)
  let hot =
    reachable_funcs t
      ~entries:(hot_entry_symbols t.Cfg.image @ address_taken t)
      ~cut:(fun name -> List.mem name Kabi.emulated || List.mem name Kabi.cold)
  in
  let findings = ref [] in
  let counts = Hashtbl.create 8 in
  let bump key = Hashtbl.replace counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  in
  List.iter
    (fun (f : Cfg.func) ->
      let in_hot = Hashtbl.mem hot f.Cfg.f_name in
      List.iter
        (fun (b : Cfg.block) ->
          List.iter
            (fun (addr, i) ->
              if not (engine_mediated i) then
                match Rules.classify i with
                | cat, _ -> bump (Spec.category_name cat)
                | exception Rules.Untranslatable msg ->
                  bump "fallback";
                  let sev, code =
                    if in_hot then (Finding.Warning, "untranslatable-hot")
                    else (Finding.Info, "untranslatable")
                  in
                  findings :=
                    Finding.v ~pass:"cfg" ~severity:sev ~code
                      ~where:(Asm.nearest_symbol t.Cfg.image addr)
                      (Printf.sprintf "`%s' hits fallback: %s" (to_string i)
                         msg)
                    :: !findings)
            b.Cfg.b_insts)
        (Cfg.func_blocks t f))
    t.Cfg.funcs;
  (counts, List.rev !findings)

(* ----------------------- stack-depth bound --------------------------- *)

(* stack delta of one instruction, in bytes of growth (full-descending
   stacks); [None] = writes SP in a way we cannot bound *)
let stack_delta (i : inst) =
  match i.op with
  | Stm (13, true, regs) -> Some (4 * List.length regs)
  | Ldm (13, true, regs) -> Some (-4 * List.length regs)
  | Dp (SUB, _, 13, 13, Imm v) -> Some v
  | Dp (ADD, _, 13, 13, Imm v) -> Some (-v)
  | _ -> if List.mem 13 (regs_written i) then None else Some 0

type frame = {
  fr_local : int;  (** max depth reached inside the function *)
  fr_calls : (int * int) list;  (** (depth at call site, callee addr) *)
  fr_unknown : bool;  (** SP modified unboundably *)
}

(* intra-procedural worst depth: forward propagation of depth-at-entry
   over the function's blocks; revisits only on increase, capped so a
   push-in-a-loop cannot spin us (it is reported as unbounded) *)
let frame_of (t : Cfg.t) (f : Cfg.func) =
  let entry_depth = Hashtbl.create 8 in
  let local = ref 0 and unknown = ref false and calls = ref [] in
  let budget = ref 4096 in
  let rec walk (b : Cfg.block) depth =
    decr budget;
    let prev = Hashtbl.find_opt entry_depth b.Cfg.b_start in
    if !budget > 0 && (prev = None || Option.get prev < depth) then begin
      Hashtbl.replace entry_depth b.Cfg.b_start depth;
      let d = ref depth in
      List.iter
        (fun (_addr, i) ->
          (match stack_delta i with
          | Some delta -> d := !d + delta
          | None -> unknown := true);
          if !d > !local then local := !d)
        b.Cfg.b_insts;
      (match b.Cfg.b_term with
      | Cfg.Call (callee, _) -> calls := (!d, callee) :: !calls
      | Cfg.Indirect_call _ ->
        (* unknowable callee: noted by the indirect audit; depth-wise we
           assume it returns without extra guest stack (ARK translates
           the target like any other code, so its own frame is counted
           when the target is a known function) *)
        ()
      | _ -> ());
      List.iter
        (fun succ ->
          match Hashtbl.find_opt t.Cfg.block_at succ with
          | Some nb
            when succ >= f.Cfg.f_entry
                 && succ < f.Cfg.f_entry + f.Cfg.f_size ->
            walk nb !d
          | _ -> ())
        b.Cfg.b_succs
    end
  in
  (match Hashtbl.find_opt t.Cfg.block_at f.Cfg.f_entry with
  | Some b -> walk b 0
  | None -> ());
  if !budget <= 0 then unknown := true;
  { fr_local = !local; fr_calls = !calls; fr_unknown = !unknown }

type stack_bound = {
  sb_worst : int;  (** bytes, over all thread entry points *)
  sb_worst_entry : string;
  sb_irq : int;  (** extra bytes an IRQ adds on top *)
  sb_budget : int;  (** {!Tk_machine.Soc.stack_size} *)
  sb_findings : Finding.t list;
}

let stack_bound (t : Cfg.t) =
  let frames = Hashtbl.create 64 in
  List.iter
    (fun (f : Cfg.func) ->
      Hashtbl.replace frames f.Cfg.f_name (frame_of t f))
    t.Cfg.funcs;
  let findings = ref [] in
  let unknowns = ref [] in
  let memo = Hashtbl.create 64 in
  (* worst depth of [f] including callees; cycles in the call graph are
     recursion -> unbounded, reported once per cycle entry *)
  let rec total (f : Cfg.func) stack_names =
    match Hashtbl.find_opt memo f.Cfg.f_name with
    | Some v -> v
    | None ->
      if List.mem f.Cfg.f_name stack_names then begin
        findings :=
          Finding.v ~pass:"cfg" ~severity:Finding.Warning
            ~code:"recursion" ~where:f.Cfg.f_name
            (Printf.sprintf "recursive call cycle: %s"
               (String.concat " -> "
                  (List.rev (f.Cfg.f_name :: stack_names))))
          :: !findings;
        0 (* frame already counted once by the caller chain *)
      end
      else begin
        let fr = Hashtbl.find frames f.Cfg.f_name in
        if fr.fr_unknown then unknowns := f.Cfg.f_name :: !unknowns;
        let v =
          List.fold_left
            (fun acc (depth, callee) ->
              match Cfg.func_of_addr t callee with
              | Some g ->
                max acc (depth + total g (f.Cfg.f_name :: stack_names))
              | None -> acc)
            fr.fr_local fr.fr_calls
        in
        Hashtbl.replace memo f.Cfg.f_name v;
        v
      end
  in
  let entry_bound name =
    match Asm.symbol_opt t.Cfg.image name with
    | None -> None
    | Some addr -> (
      match Cfg.func_of_addr t addr with
      | Some f -> Some (name, total f [])
      | None -> None)
  in
  (* thread roots: external entry points plus address-taken functions
     (kthread entries and callbacks start on a fresh or unknown-depth
     stack; taking their own worst chain is the conservative bound) *)
  let entries =
    List.filter_map entry_bound
      (List.sort_uniq compare
         (entry_symbols t.Cfg.image @ address_taken t))
  in
  let thread_entries =
    List.filter (fun (n, _) -> n <> "irq_entry") entries
  in
  let worst_entry, worst =
    List.fold_left
      (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
      ("-", 0) thread_entries
  in
  let irq =
    match List.assoc_opt "irq_entry" entries with Some v -> v | None -> 0
  in
  List.iter
    (fun name ->
      findings :=
        Finding.v ~pass:"cfg" ~severity:Finding.Warning ~code:"sp-unbounded"
          ~where:name "SP modified in a way static analysis cannot bound"
        :: !findings)
    (List.sort_uniq compare !unknowns);
  let budget = Tk_machine.Soc.stack_size in
  if worst + irq > budget then
    findings :=
      Finding.v ~pass:"cfg" ~severity:Finding.Error ~code:"stack-overrun"
        ~where:worst_entry
        (Printf.sprintf
           "worst-case stack %d B (+%d B IRQ) exceeds the %d B budget"
           worst irq budget)
      :: !findings;
  { sb_worst = worst; sb_worst_entry = worst_entry; sb_irq = irq;
    sb_budget = budget; sb_findings = List.rev !findings }

(* ----------------------- indirect-call audit ------------------------- *)

let indirect_audit (t : Cfg.t) =
  List.concat_map
    (fun (f : Cfg.func) ->
      List.map
        (fun site ->
          let target =
            match Cfg.slot_at t site with
            | Some (Cfg.Inst i) -> to_string i
            | _ -> "blx ?"
          in
          Finding.v ~pass:"cfg" ~severity:Finding.Info ~code:"indirect-call"
            ~where:(Asm.nearest_symbol t.Cfg.image site)
            (Printf.sprintf
               "`%s': target resolved at run time (function pointer)"
               target))
        (Cfg.indirect_sites t f))
    t.Cfg.funcs

(* --------------------------- driver ---------------------------------- *)

type report = {
  cfg : Cfg.t;
  census : (string * int) list;  (** translation-category histogram *)
  stack : stack_bound;
  findings : Finding.t list;
}

(** [lint image] — run all image passes. *)
let lint (image : Asm.image) : report =
  let t = Cfg.build image in
  let counts, fallback_findings = fallback_census t in
  let stack = stack_bound t in
  let census =
    List.sort (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  let findings =
    dead_code_findings t @ fallback_findings @ stack.sb_findings
    @ indirect_audit t
  in
  { cfg = t; census; stack; findings }

let print_report (r : report) =
  Cfg.print_summary r.cfg;
  Tk_stats.Report.table ~title:"translation census (code section)"
    ~aligns:[ Tk_stats.Report.L; Tk_stats.Report.R ]
    ~header:[ "category"; "instructions" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) r.census);
  Tk_stats.Report.kv "worst-case stack bound"
    [ ("deepest entry", r.stack.sb_worst_entry);
      ("thread depth (bytes)", string_of_int r.stack.sb_worst);
      ("irq_entry adds (bytes)", string_of_int r.stack.sb_irq);
      ("per-thread budget (bytes)", string_of_int r.stack.sb_budget) ]
