(** Dataflow passes over a recovered guest-image CFG ({!Cfg}):
    reachability/dead code, untranslatable-instruction census,
    worst-case stack-depth bound against the M3 stack budget, and the
    indirect-call audit.

    Severity policy: a finding is an {!Finding.Error} only when it would
    make offloaded execution wrong or crash the peripheral core (stack
    overrun, undecodable word on a reachable path); expected properties
    of ARK's design — fallback sites, dead fragments, indirect calls —
    are reported as census ([Warning]/[Info]) so the CI gate tracks them
    without failing the build. *)

open Tk_isa.Types
module Asm = Tk_isa.Asm

val entry_symbols : Asm.image -> string list
(** entry points invoked from outside the image: boot/PM harness calls,
    the IRQ vector, ARK's upcall entry points and [*_init] fragments *)

val hot_entry_symbols : Asm.image -> string list
(** ARK's translated-execution entry points: reachability from here,
    with emulated/cold callees cut, is the hot path under DBT *)

val reachable_funcs :
  Cfg.t -> entries:string list -> cut:(string -> bool) ->
  (string, unit) Hashtbl.t
(** function-level call-graph reachability; [cut name] prunes the
    traversal at callees the DBT engine never translates into *)

val address_taken : Cfg.t -> string list
(** functions whose entry address escapes into data words or
    movw/movt pairs — conservatively callable through [blx reg] *)

val dead_code_findings : Cfg.t -> Finding.t list

val engine_mediated : inst -> bool
(** control flow the engine intercepts rather than sending through the
    translation rules *)

val fallback_census : Cfg.t -> (string, int) Hashtbl.t * Finding.t list
(** translation-category histogram over the code section plus findings
    for instructions that hit fallback (warning when on the hot path) *)

val stack_delta : inst -> int option
(** stack growth of one instruction in bytes (full-descending stacks);
    [None] = writes SP in a way static analysis cannot bound. Shared
    with {!Absint} so both passes agree on SP discipline. *)

type frame = {
  fr_local : int;  (** max depth reached inside the function *)
  fr_calls : (int * int) list;  (** (depth at call site, callee addr) *)
  fr_unknown : bool;  (** SP modified unboundably *)
}

val frame_of : Cfg.t -> Cfg.func -> frame

type stack_bound = {
  sb_worst : int;  (** bytes, over all thread entry points *)
  sb_worst_entry : string;
  sb_irq : int;  (** extra bytes an IRQ adds on top *)
  sb_budget : int;  (** {!Tk_machine.Soc.stack_size} *)
  sb_findings : Finding.t list;
}

val stack_bound : Cfg.t -> stack_bound

val indirect_audit : Cfg.t -> Finding.t list

type report = {
  cfg : Cfg.t;
  census : (string * int) list;  (** translation-category histogram *)
  stack : stack_bound;
  findings : Finding.t list;
}

val lint : Asm.image -> report
(** run all image passes *)

val print_report : report -> unit
