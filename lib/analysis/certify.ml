(** Superblock trace certifier: differential equivalence checking of a
    formed (or warm-loaded) {!Tk_dbt.Superblock.plan} against the
    sequential composition of its constituent blocks' reference
    translations.

    The superblock planner composes transforms no single-rule check
    covers: interior terminals are dropped, the emulated guest r10 is
    re-homed into host r12 across the whole trace, and spill/reload
    sequences are woven around engine sites. This pass certifies the
    {e composition}: it rebuilds each constituent block with the plain
    (uncached) legalization, stitches them exactly as the planner's
    reference semantics dictates — verifying every interior terminal
    links to the next block — and then executes both emit streams over a
    grid of machine states through the shared {!Tk_isa.Exec} semantics,
    demanding identical observable behavior:

    {ul
    {- the same engine sites taken, in the same order, with identical
       guest-visible state (pass-through registers, emulated r10, NZCV,
       traps, non-env memory) at each site;}
    {- identical exit (final terminal site, or an identity-translated
       trace exit to the same target);}
    {- identical final state.}}

    Engine and callback effects at {e resumable} sites (calls, emulated
    services, hooks, guest hypercalls, skippable fallback) are modeled
    by a deterministic havoc applied identically to both arms: r0-r3,
    both scratch registers, the emulated-r10 slot and the flags are
    overwritten with values keyed by the site's ordinal, exactly the
    state the engine contract allows the site to clobber. The trace
    arm's woven reload must therefore re-derive anything it cached — a
    missing spill or reload diverges on the very next observation.

    Macro-op fusion needs no modeling: the engine's fusion pass is a
    pure cycle-accounting waiver over the emitted words and never
    changes the executed instruction sequence.

    Known (documented) blind spot, shared with {!Rule_check}: guest
    stores that land inside the engine's env block would fight the
    emulated-r10 slot; the state grid's register vectors avoid that
    region, as does any sane guest. *)

open Tk_isa
open Tk_isa.Types
module Translator = Tk_dbt.Translator
module Superblock = Tk_dbt.Superblock
module Layout = Tk_dbt.Layout

let hbase = Rule_check.hbase

(* the four flag corners are enough here: every cond the streams contain
   was already grid-checked per-rule; trace-level conditionality only
   needs both polarities of each flag *)
let flag_grid =
  [ (false, false, false, false); (true, false, true, false);
    (false, true, false, true); (true, true, true, true) ]

(* ------------------------ stream execution --------------------------- *)

type halt =
  | H_site of cond * Translator.site_info  (** final (non-resumable) site *)
  | H_exit of int  (** identity-translated branch left the stream *)
  | H_end  (** fell off the end of the stream (malformed) *)
  | H_fault  (** execution faulted; [run.fault] has the message *)

type arm = {
  a_run : Rule_check.run;
  a_obs : string list;  (** site/exit observations, oldest first *)
  a_halt : halt;
}

let site_name (info : Translator.site_info) =
  match info with
  | Translator.S_call { target; ret_guest } ->
    Printf.sprintf "call 0x%x ret 0x%x" target ret_guest
  | Translator.S_jump { target } -> Printf.sprintf "jump 0x%x" target
  | Translator.S_tail { target } -> Printf.sprintf "tail 0x%x" target
  | Translator.S_emu { name; resume_guest } ->
    Printf.sprintf "emu %s resume 0x%x" name resume_guest
  | Translator.S_hook { name; resume_guest } ->
    Printf.sprintf "hook %s resume 0x%x" name resume_guest
  | Translator.S_indirect { reg; ret_guest } ->
    Printf.sprintf "indirect %s ret 0x%x" (reg_name reg) ret_guest
  | Translator.S_exit_pc -> "exit-pc"
  | Translator.S_guest_svc { n; resume_guest } ->
    Printf.sprintf "guest-svc %d resume 0x%x" n resume_guest
  | Translator.S_fallback { reason; gpc; skippable } ->
    Printf.sprintf "fallback(%s) 0x%x%s" reason gpc
      (if skippable then " skippable" else "")

(* order-independent digest of the non-env memory writes; background
   rules make an unwritten byte indistinguishable from an explicit write
   of the background value, same caveat as [Rule_check.smem_diff] *)
let mem_digest (m : Rule_check.smem) =
  Hashtbl.fold
    (fun a v acc -> if Rule_check.env_addr a then acc else acc + Hashtbl.hash (a, v))
    m 0

(* guest-visible state at an observation point: pass-through registers,
   the emulated r10 (its env slot — the weave spills before every site),
   flags, traps, memory. Host r10 is always scratch; host r12 is guest
   state only when the trace did not claim it as the r10 cache. *)
let fingerprint (run : Rule_check.run) ~with_r12 =
  let b = Buffer.create 96 in
  List.iter
    (fun r -> Buffer.add_string b (Printf.sprintf "%x," run.Rule_check.cpu.Exec.r.(r)))
    Rule_check.passthrough;
  if with_r12 then
    Buffer.add_string b
      (Printf.sprintf "r12=%x," run.Rule_check.cpu.Exec.r.(12));
  Buffer.add_string b
    (Printf.sprintf "r10=%x,"
       (Rule_check.smem_load run.Rule_check.mem Layout.env_r10 4));
  Buffer.add_string b (Rule_check.flags_str run.Rule_check.cpu);
  Buffer.add_string b
    (Printf.sprintf ",traps=%s"
       (String.concat ";" (List.rev run.Rule_check.traps)));
  Buffer.add_string b (Printf.sprintf ",mem=%x" (mem_digest run.Rule_check.mem));
  Buffer.contents b

(* deterministic model of what the engine/callback may clobber across a
   resumable site, keyed by the site ordinal [k] and applied identically
   to both arms: argument registers, both scratches, the emulated r10
   slot and the flags *)
let havoc (run : Rule_check.run) k =
  let h salt = Bits.mask32 (((k + 1) * salt) lxor 0x5DEECE66) in
  let r = run.Rule_check.cpu.Exec.r in
  r.(0) <- h 0x0F1E2D3;
  r.(1) <- h 0x11C3A55;
  r.(2) <- h 0x2B7E151;
  r.(3) <- h 0x3C6EF37;
  r.(10) <- h 0x7A5A5A5;
  r.(12) <- h 0x58B91E3;
  Rule_check.smem_store run.Rule_check.mem Layout.env_r10 4 (h 0x6D2B79F);
  Rule_check.set_flags run.Rule_check.cpu
    (k land 1 = 1, k land 2 = 2, k land 4 = 4, k land 8 = 8)

(** [exec_stream emits flags vec ~with_r12] runs one emit stream laid
    out at {!Rule_check.hbase} from the machine state [(flags, vec)],
    collecting an observation per engine site taken and per trace exit. *)
let exec_stream (emits : Translator.emit array) flags vec ~with_r12 : arm =
  let run = Rule_check.make_run (Rule_check.smem_create ()) in
  Array.blit vec 0 run.Rule_check.cpu.Exec.r 0 15;
  Rule_check.smem_store run.Rule_check.mem Layout.env_r10 4 vec.(10);
  run.Rule_check.cpu.Exec.r.(10) <- Rule_check.scratch_sentinel;
  Rule_check.set_flags run.Rule_check.cpu flags;
  let n = Array.length emits in
  let env = Rule_check.env_of run in
  let obs = ref [] and halt = ref None in
  let resumed = ref 0 in
  let observe what =
    obs :=
      Printf.sprintf "%s | %s" what (fingerprint run ~with_r12) :: !obs
  in
  let idx = ref 0 and fuel = ref (8 * (n + 8)) in
  (try
     while !halt = None && run.Rule_check.fault = None do
       if !idx >= n then halt := Some H_end
       else begin
         decr fuel;
         if !fuel < 0 then
           run.Rule_check.fault <- Some "stream does not terminate"
         else begin
           let addr = hbase + (4 * !idx) in
           match emits.(!idx) with
           | Translator.E_site (cond, info, _) ->
             if not (Exec.cond_holds run.Rule_check.cpu cond) then incr idx
             else begin
               observe (Printf.sprintf "site[%s]" (site_name info));
               if Superblock.resumable info then begin
                 havoc run !resumed;
                 incr resumed;
                 incr idx
               end
               else halt := Some (H_site (cond, info))
             end
           | Translator.E_inst i -> (
             match Exec.step run.Rule_check.cpu env ~addr i with
             | Exec.Next -> incr idx
             | Exec.Branched ->
               let target = run.Rule_check.cpu.Exec.r.(pc) in
               let j = (target - hbase) asr 2 in
               if j >= 0 && j <= n && target land 3 = 0 then idx := j
               else begin
                 observe (Printf.sprintf "exit[0x%x]" target);
                 halt := Some (H_exit target)
               end)
         end
       end
     done
   with e -> run.Rule_check.fault <- Some (Printexc.to_string e));
  { a_run = run;
    a_obs = List.rev !obs;
    a_halt =
      (match !halt with
      | Some h when run.Rule_check.fault = None -> h
      | _ -> H_fault) }

(* ------------------------- arm comparison ---------------------------- *)

let halt_desc = function
  | H_site (_, info) -> Printf.sprintf "site[%s]" (site_name info)
  | H_exit t -> Printf.sprintf "exit[0x%x]" t
  | H_end -> "end-of-stream"
  | H_fault -> "fault"

(* [reference] vs [trace]; empty = equivalent on this state *)
let compare_arms ~with_r12 (g : arm) (h : arm) =
  let bad = ref [] in
  let note fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  (match g.a_run.Rule_check.fault, h.a_run.Rule_check.fault with
  | None, None -> ()
  | gf, hf ->
    note "fault: reference=%s trace=%s"
      (Option.value ~default:"-" gf)
      (Option.value ~default:"-" hf));
  let rec obs k = function
    | [], [] -> ()
    | go :: gtl, ho :: htl ->
      if go <> ho then note "observation %d: reference{%s} trace{%s}" k go ho
      else obs (k + 1) (gtl, htl)
    | go :: _, [] -> note "observation %d only in reference: %s" k go
    | [], ho :: _ -> note "observation %d only in trace: %s" k ho
  in
  obs 0 (g.a_obs, h.a_obs);
  if g.a_halt <> h.a_halt then
    note "halt: reference=%s trace=%s" (halt_desc g.a_halt)
      (halt_desc h.a_halt);
  List.iter
    (fun r ->
      if g.a_run.Rule_check.cpu.Exec.r.(r) <> h.a_run.Rule_check.cpu.Exec.r.(r)
      then
        note "%s: reference=0x%x trace=0x%x" (reg_name r)
          g.a_run.Rule_check.cpu.Exec.r.(r)
          h.a_run.Rule_check.cpu.Exec.r.(r))
    Rule_check.passthrough;
  let g10 = Rule_check.smem_load g.a_run.Rule_check.mem Layout.env_r10 4 in
  let h10 = Rule_check.smem_load h.a_run.Rule_check.mem Layout.env_r10 4 in
  if g10 <> h10 then note "r10(env): reference=0x%x trace=0x%x" g10 h10;
  if
    with_r12
    && g.a_run.Rule_check.cpu.Exec.r.(12)
       <> h.a_run.Rule_check.cpu.Exec.r.(12)
  then
    note "r12: reference=0x%x trace=0x%x"
      g.a_run.Rule_check.cpu.Exec.r.(12)
      h.a_run.Rule_check.cpu.Exec.r.(12);
  if
    Rule_check.flags_str g.a_run.Rule_check.cpu
    <> Rule_check.flags_str h.a_run.Rule_check.cpu
  then
    note "flags: reference=%s trace=%s"
      (Rule_check.flags_str g.a_run.Rule_check.cpu)
      (Rule_check.flags_str h.a_run.Rule_check.cpu);
  if g.a_run.Rule_check.traps <> h.a_run.Rule_check.traps then
    note "traps: reference=[%s] trace=[%s]"
      (String.concat "; " (List.rev g.a_run.Rule_check.traps))
      (String.concat "; " (List.rev h.a_run.Rule_check.traps));
  (match
     Rule_check.smem_diff g.a_run.Rule_check.mem h.a_run.Rule_check.mem
   with
  | [] -> ()
  | (a, gv, hv) :: _ as ds ->
    note "memory: %d bytes differ, first at 0x%x (reference=0x%02x trace=0x%02x)"
      (List.length ds) a gv hv);
  List.rev !bad

(* ---------------------- per-plan certification ----------------------- *)

type outcome = {
  o_states : int;  (** machine states differentially executed *)
  o_problems : string list;  (** empty = plan certified *)
}

exception Mismatch of string

(* the reference semantics: each constituent re-translated with the
   plain legalization, interior always-taken terminals verified against
   the next constituent's start and dropped — the planner's stitch,
   re-derived independently from the plan's (start, count) list *)
let reference_emits ctx (p : Superblock.plan) =
  let blocks =
    List.map (fun (g, _) -> Translator.translate ctx ~gpc:g) p.Superblock.p_blocks
  in
  List.iter2
    (fun (g, cnt) (b : Translator.block) ->
      if b.Translator.b_guest_count <> cnt then
        raise
          (Mismatch
             (Printf.sprintf
                "block 0x%x: plan records %d guest instructions, reference \
                 translation has %d"
                g cnt b.Translator.b_guest_count)))
    p.Superblock.p_blocks blocks;
  let rec split_last = function
    | [] -> raise (Mismatch "constituent block with no emits")
    | [ x ] -> ([], x)
    | x :: tl ->
      let init, last = split_last tl in
      (x :: init, last)
  in
  let rec stitch acc = function
    | [] -> raise (Mismatch "plan with no blocks")
    | [ (last : Translator.block) ] ->
      List.rev_append acc last.Translator.b_emits
    | (b : Translator.block) :: (next :: _ as tl) -> (
      let init, term = split_last b.Translator.b_emits in
      match term with
      | Translator.E_site
          (AL, (Translator.S_tail { target } | Translator.S_jump { target }), _)
        when target = next.Translator.b_guest_start ->
        stitch (List.rev_append init acc) tl
      | _ ->
        raise
          (Mismatch
             (Printf.sprintf
                "block 0x%x does not link to next constituent 0x%x"
                b.Translator.b_guest_start next.Translator.b_guest_start)))
  in
  Array.of_list (stitch [] blocks)

(** [certify_plan ~read_guest ~classify_target ~block_limit p] — rebuild
    the reference composition for [p] and differentially execute it
    against [p]'s woven trace body over the state grid. An empty
    [o_problems] certifies the plan. *)
let certify_plan ~read_guest ~classify_target ~block_limit
    (p : Superblock.plan) : outcome =
  let problems = ref [] and nprob = ref 0 and states = ref 0 in
  let note s =
    incr nprob;
    if !nprob <= 6 then problems := s :: !problems
  in
  let ctx =
    { Translator.mode = Translator.Ark; classify_target; block_limit;
      read_guest; legalize = Translator.default_legalize }
  in
  (match reference_emits ctx p with
  | exception Mismatch msg -> note msg
  | exception e -> note (Printf.sprintf "reference translation failed: %s"
                           (Printexc.to_string e))
  | reference ->
    let trace = Array.of_list p.Superblock.p_emits in
    (* a cached trace owns host r12; otherwise it is guest state *)
    let with_r12 = not p.Superblock.p_cached_r10 in
    List.iter
      (fun flags ->
        Array.iteri
          (fun vid vec ->
            incr states;
            let g = exec_stream reference flags vec ~with_r12 in
            let h = exec_stream trace flags vec ~with_r12 in
            match compare_arms ~with_r12 g h with
            | [] -> ()
            | probs ->
              note
                (Printf.sprintf "flags=%c%c%c%c vec=%d: %s"
                   (if (fun (n, _, _, _) -> n) flags then 'N' else 'n')
                   (if (fun (_, z, _, _) -> z) flags then 'Z' else 'z')
                   (if (fun (_, _, c, _) -> c) flags then 'C' else 'c')
                   (if (fun (_, _, _, v) -> v) flags then 'V' else 'v')
                   vid
                   (String.concat "; " probs)))
          Rule_check.reg_vectors)
      flag_grid);
  { o_states = !states; o_problems = List.rev !problems }

(** [admit ~read_guest ~classify_target ~block_limit ()] — the online
    certifier for {!Tk_dbt.Engine.t.sb_certify}: admit a plan only when
    {!certify_plan} finds no divergence. *)
let admit ~read_guest ~classify_target ~block_limit () =
  fun p ->
    (certify_plan ~read_guest ~classify_target ~block_limit p).o_problems = []

(* ------------------- whole-image plan enumeration -------------------- *)

type report = {
  r_blocks : int;  (** translation blocks reachable on the image *)
  r_chains : int;  (** heads whose successor chain reaches length >= 2 *)
  r_plans : int;  (** plans the planner formed (all chain prefixes) *)
  r_cached : int;  (** plans with r10-in-r12 caching applied *)
  r_aborts : int;  (** chains the planner refused (Superblock.Abort) *)
  r_states : int;  (** machine states differentially executed *)
  r_divergent : int;  (** plans with at least one divergence *)
  findings : Finding.t list;
}

(** [read_guest_of_image image] — a [Translator.ctx]-shaped fetcher over
    the pristine linked image (decode failures and out-of-image fetches
    raise, ending enumeration of that block). *)
let read_guest_of_image (image : Asm.image) a =
  let k = (a - image.Asm.base) asr 2 in
  if a < image.Asm.base || k >= Array.length image.Asm.words || a land 3 <> 0
  then invalid_arg (Printf.sprintf "guest fetch outside image: 0x%x" a)
  else V7a.decode image.Asm.words.(k)

(** [certify_image ?block_limit ?max_blocks ~classify_target image] —
    enumerate every superblock the planner can form on the pristine
    image and certify each one.

    Enumeration mirrors the engine: translation blocks are discovered
    from every CFG leader plus every site-successor (call targets,
    return sites, jump targets), the always-taken-successor map is
    rebuilt from the blocks' terminals exactly as the engine records it,
    and chains are walked from every head up to [max_blocks]. Every
    chain {e prefix} of length >= 2 is planned and certified — at run
    time the engine forms whatever prefix is translated when the head
    turns hot, so all of them are formable. *)
let certify_image ?(block_limit = Translator.default_block_limit)
    ?(max_blocks = 8) ~classify_target (image : Asm.image) : report =
  let read_guest = read_guest_of_image image in
  let cfg = Cfg.build image in
  let ctx =
    { Translator.mode = Translator.Ark; classify_target; block_limit;
      read_guest; legalize = Translator.default_legalize }
  in
  let visited = Hashtbl.create 256 in  (* gpc -> translated ok *)
  let succ = Hashtbl.create 64 in
  let pending = Queue.create () in
  let enqueue a =
    if Cfg.in_code image a && not (Hashtbl.mem visited a) then
      Queue.add a pending
  in
  List.iter (fun (b : Cfg.block) -> enqueue b.Cfg.b_start) cfg.Cfg.blocks;
  while not (Queue.is_empty pending) do
    let g = Queue.pop pending in
    if not (Hashtbl.mem visited g) then begin
      match Translator.translate ctx ~gpc:g with
      | exception _ -> Hashtbl.replace visited g false
      | b ->
        Hashtbl.replace visited g true;
        (match List.rev b.Translator.b_emits with
        | Translator.E_site
            (AL, (Translator.S_tail { target } | Translator.S_jump { target }), _)
          :: _ ->
          Hashtbl.replace succ g target
        | _ -> ());
        List.iter
          (fun e ->
            match e with
            | Translator.E_site (_, info, _) -> (
              match info with
              | Translator.S_call { target; ret_guest } ->
                enqueue target;
                enqueue ret_guest
              | Translator.S_jump { target } | Translator.S_tail { target } ->
                enqueue target
              | Translator.S_indirect { ret_guest; _ } -> enqueue ret_guest
              | _ -> ())
            | Translator.E_inst _ -> ())
          b.Translator.b_emits
    end
  done;
  let translated a = Hashtbl.find_opt visited a = Some true in
  let chain_of head =
    let chain = ref [ head ] and len = ref 1 and cur = ref head in
    (try
       while !len < max_blocks do
         match Hashtbl.find_opt succ !cur with
         | Some next when translated next && not (List.mem next !chain) ->
           chain := next :: !chain;
           incr len;
           cur := next
         | _ -> raise Exit
       done
     with Exit -> ());
    List.rev !chain
  in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  let heads =
    List.sort compare
      (Hashtbl.fold (fun g ok acc -> if ok then g :: acc else acc) visited [])
  in
  let blocks = List.length heads in
  let chains = ref 0 and plans = ref 0 and cached = ref 0 in
  let aborts = ref 0 and states = ref 0 and divergent = ref 0 in
  let findings = ref [] in
  List.iter
    (fun head ->
      let chain = chain_of head in
      let len = List.length chain in
      if len >= 2 then begin
        incr chains;
        for l = 2 to len do
          match
            Superblock.plan ~read_guest ~classify_target ~block_limit
              ~chain:(take l chain)
          with
          | exception Superblock.Abort _ -> incr aborts
          | p ->
            incr plans;
            if p.Superblock.p_cached_r10 then incr cached;
            let o = certify_plan ~read_guest ~classify_target ~block_limit p in
            states := !states + o.o_states;
            if o.o_problems <> [] then begin
              incr divergent;
              findings :=
                Finding.v ~pass:"certify" ~severity:Finding.Error
                  ~code:"trace-divergence"
                  ~where:
                    (Printf.sprintf "%s (head 0x%x, %d blocks%s)"
                       (Asm.nearest_symbol image head)
                       head l
                       (if p.Superblock.p_cached_r10 then ", r10-cached"
                        else ""))
                  (String.concat " | " (take 3 o.o_problems))
                :: !findings
            end
        done
      end)
    heads;
  (* the clean-sweep summary rides along as an Info finding so the
     certification report is never empty: it records what was proven
     (and over how many states), not just what failed *)
  let summary =
    Finding.v ~pass:"certify" ~severity:Finding.Info ~code:"certified"
      ~where:"image"
      (Printf.sprintf
         "%d plan(s) over %d machine state(s): %d divergent, %d abort(s)"
         !plans !states !divergent !aborts)
  in
  { r_blocks = blocks;
    r_chains = !chains;
    r_plans = !plans;
    r_cached = !cached;
    r_aborts = !aborts;
    r_states = !states;
    r_divergent = !divergent;
    findings = List.rev !findings @ [ summary ] }

(** [print_report r] — the certification counter block ([arksim analyze
    --certify]). *)
let print_report (r : report) =
  Tk_stats.Report.kv "superblock trace certifier"
    [ ("translation blocks", string_of_int r.r_blocks);
      ("chains (len >= 2)", string_of_int r.r_chains);
      ("plans formed (all prefixes)", string_of_int r.r_plans);
      ("r10-in-r12 cached plans", string_of_int r.r_cached);
      ("planner aborts", string_of_int r.r_aborts);
      ("machine states executed", string_of_int r.r_states);
      ("divergent plans", string_of_int r.r_divergent) ]
