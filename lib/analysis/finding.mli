(** Shared currency of the static verification layer: one {e finding}
    per rule divergence, CFG lint hit, ABI violation, trace-certifier
    divergence or abstract-interpretation verdict.

    Every analysis pass reduces to a list of findings; the
    [arksim analyze] driver renders them as a human table and/or JSONL,
    and the CI gate fails when any {!Error}-severity finding survives.
    The record is flat and stringly so the JSON schema stays stable
    across passes. *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type t = {
  pass : string;
      (** producing pass: ["rules"], ["cfg"], ["abi"], ["certify"] or
          ["absint"] *)
  severity : severity;
  code : string;  (** stable machine tag, e.g. ["rule-divergence"] *)
  where : string;  (** instruction form or [symbol+0xoff] site *)
  detail : string;  (** human explanation, one line *)
}

val v :
  pass:string -> severity:severity -> code:string -> where:string ->
  string -> t

val errors : t list -> t list
val warnings : t list -> t list

val to_json : ?extra:(string * string) list -> t -> string
(** one JSONL record
    [{"pass":..,"severity":..,"code":..,"where":..,"detail":..}], with
    [extra] [(key, value)] string fields prepended (the analyze driver
    tags findings with the kernel variant this way) *)

val print_table : ?title:string -> t list -> unit
(** render through {!Tk_stats.Report}, errors first; no-op on [] *)
