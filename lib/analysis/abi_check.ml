(** ABI conformance: prove the guest image only leans on ARK through the
    narrow Table 2 interface.

    Three obligations, per kernel variant:
    {ol
    {- {b structural}: the {!Tk_kernel.Kabi} sets are well-formed —
       emulated/hooked/cold are pairwise disjoint and every emulated or
       hooked name is a Table 2 symbol or a core-specific service;}
    {- {b resolution}: {!Kabi.resolve} succeeds, i.e. every Table 2
       symbol exists in the image (the Figure 3 ABI-break detector);}
    {- {b call audit}: every direct [bl] site in the image targets a
       known function entry — each one is classified as emulated /
       hooked / cold / translated, and a target that is {e none} of
       these (no symbol at all, or a branch into the middle of a
       function) is an error: it would be translated garbage on the
       peripheral core.}}

    The checker works on a raw {!Tk_isa.Asm.image} so tests can craft
    deliberately broken images without going through the kernel
    builder. *)

module Asm = Tk_isa.Asm
module Kabi = Tk_kernel.Kabi

type callee_class = Emulated | Hooked | Cold | Translated

let class_name = function
  | Emulated -> "emulated"
  | Hooked -> "hooked"
  | Cold -> "cold"
  | Translated -> "translated"

let classify_name name =
  if List.mem name Kabi.emulated then Emulated
  else if List.mem name Kabi.hooked then Hooked
  else if List.mem name Kabi.cold then Cold
  else Translated

type report = {
  class_counts : (string * int) list;  (** call sites per callee class *)
  callees : (string * string) list;  (** callee -> class, call-audit view *)
  findings : Finding.t list;
}

let structural_findings () =
  let overlap a b = List.filter (fun x -> List.mem x b) a in
  let pairs =
    [ ("emulated", Kabi.emulated, "hooked", Kabi.hooked);
      ("emulated", Kabi.emulated, "cold", Kabi.cold);
      ("hooked", Kabi.hooked, "cold", Kabi.cold) ]
  in
  List.concat_map
    (fun (na, a, nb, b) ->
      List.map
        (fun sym ->
          Finding.v ~pass:"abi" ~severity:Finding.Error ~code:"set-overlap"
            ~where:sym
            (Printf.sprintf "symbol is in both the %s and %s sets" na nb))
        (overlap a b))
    pairs
  @ List.filter_map
      (fun sym ->
        if
          List.mem sym Kabi.table2
          || List.mem sym [ Kabi.spin_lock; Kabi.spin_unlock ]
        then None
        else
          Some
            (Finding.v ~pass:"abi" ~severity:Finding.Error
               ~code:"outside-table2" ~where:sym
               "emulated/hooked symbol is not part of the Table 2 ABI"))
      (Kabi.emulated @ Kabi.hooked)

let resolution_findings (image : Asm.image) =
  match Kabi.resolve (Asm.symbol_opt image) with
  | _ -> []
  | exception Failure msg ->
    [ Finding.v ~pass:"abi" ~severity:Finding.Error ~code:"abi-break"
        ~where:"Table 2" msg ]

(** [check image] — all three obligations over one linked image. *)
let check (image : Asm.image) : report =
  let cfg = Cfg.build image in
  let counts = Hashtbl.create 8 in
  let callees = Hashtbl.create 64 in
  let findings = ref [] in
  let audit (site, target) =
    match Hashtbl.find_opt image.Asm.sym_of_addr target with
    | Some name ->
      let cls = classify_name name in
      Hashtbl.replace callees name (class_name cls);
      Hashtbl.replace counts cls
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts cls))
    | None ->
      let code, detail =
        match Cfg.func_of_addr cfg target with
        | Some f ->
          ( "bl-into-function-body",
            Printf.sprintf "bl targets 0x%x inside `%s', not an entry point"
              target f.Cfg.f_name )
        | None ->
          ( "unknown-callee",
            Printf.sprintf
              "bl targets 0x%x: no function there — neither an image \
               function nor an ABI symbol"
              target )
      in
      findings :=
        Finding.v ~pass:"abi" ~severity:Finding.Error ~code
          ~where:(Asm.nearest_symbol image site)
          detail
        :: !findings
  in
  List.iter
    (fun f -> List.iter audit (Cfg.call_sites cfg f))
    cfg.Cfg.funcs;
  let class_counts =
    List.filter_map
      (fun cls ->
        match Hashtbl.find_opt counts cls with
        | Some n -> Some (class_name cls, n)
        | None -> Some (class_name cls, 0))
      [ Emulated; Hooked; Cold; Translated ]
  in
  let callees =
    List.sort compare
      (Hashtbl.fold (fun name cls acc -> (name, cls) :: acc) callees [])
  in
  { class_counts;
    callees;
    findings =
      structural_findings () @ resolution_findings image
      @ List.rev !findings }

let print_report (r : report) =
  Tk_stats.Report.table ~title:"cross-boundary call classes"
    ~aligns:[ Tk_stats.Report.L; Tk_stats.Report.R ]
    ~header:[ "callee class"; "bl sites" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) r.class_counts);
  let boundary =
    List.filter (fun (_, cls) -> cls <> "translated") r.callees
  in
  if boundary <> [] then
    Tk_stats.Report.table ~title:"ABI boundary callees"
      ~aligns:[ Tk_stats.Report.L; Tk_stats.Report.L ]
      ~header:[ "symbol"; "class" ]
      (List.map (fun (n, c) -> [ n; c ]) boundary)
