(** ARK — the transkernel runtime (§3, §4).

    A lightweight virtual executor on the peripheral core: it runs the
    unmodified guest kernel's device suspend/resume through the DBT
    engine, underpinned by a small set of {e stateless} emulated services
    (scheduler of DBT contexts, spinlocks, delays and timekeeping, the
    early interrupt stage, the CPU interrupt controller), and falls back
    to native CPU execution when leaving the hot path (§6).

    ARK's only knowledge of the guest kernel is the narrow Table 2 ABI
    (12 functions + jiffies, plus the spinlock entries) and the opaque
    runtime pointers in the handoff {!Manifest}. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine
open Tk_dbt
module Counters = Tk_stats.Counters

(* The Table 2 contract ARK is compiled against (names must match the
   guest's exported symbols — that is the whole point). *)
let emulated_services =
  [ "schedule"; "msleep"; "udelay"; "ktime_get"; "spin_lock"; "spin_unlock" ]

let hooked_services = [ "queue_work_on"; "tasklet_schedule"; "async_schedule" ]
let upcall_worker = "worker_thread"
let upcall_irq_thread = "irq_thread"
let upcall_softirq = "do_softirq"
let upcall_timers = "run_local_timers"
let upcall_irq = "generic_handle_irq"

(* emulated-service costs, in peripheral-core cycles (measured in §7.3
   as ~1% of busy execution) *)
let cost_schedule = 90
let cost_spin = 12
let cost_msleep = 160
let cost_ktime = 20
let cost_hook = 25
let cost_early_irq = 1200  (* the v7m-specific early interrupt stage *)
let cost_tick = 40
let ns_stack_rewrite = 20_000  (* §7.3: ~20us *)
let ns_cache_flush = 17_000
let ns_ipi = 2_000

exception Switch
(* carries (reason, guest pc, faulting context) *)
exception Fallback_exc of string * int * Context.t

(* a context hit a terminal untranslatable site while draining *)
exception Abandon
exception Ark_error of string

(** A migrated context's guest-visible state, handed back to the CPU. *)
type guest_state = { g_regs : int array; g_flags : int }

type outcome =
  | Completed
  | Fell_back of { fb_reason : string; fb_state : guest_state }

type t = {
  soc : Soc.t;
  engine : Engine.t;
  man : Manifest.t;
  mutable contexts : Context.t list;
  mutable current : Context.t option;
  mutable in_irq : bool;
  mutable rr : int;  (** round-robin cursor over contexts (§4.1) *)
  mutable draining : bool;
  mutable tick_on : bool;
  mutable on_hypercall : int -> Exec.cpu -> unit;
  counters : Counters.t;
  mutable emu_cycles : int;  (** cycles booked to emulated services *)
  (* virtual-GIC mask state is the real (shared) GIC object; ARK applies
     guest masking to both controllers *)
  mutable fell_back : (string * guest_state) option;
  mutable paused : Context.t option;
      (** bounded-quantum lockstep: the context whose engine run raised
          {!Engine.Quantum} mid-slice. {!phase_step} resumes it (without
          re-dispatching through the scheduler or recharging the tick)
          before considering any other context, so the dispatch sequence
          is exactly the sequential one cut at quantum boundaries. *)
}

let charge_emu t cycles =
  t.emu_cycles <- t.emu_cycles + cycles;
  Core.charge t.soc.Soc.m3 cycles

(* Nested context runs — IRQ delivery at a block boundary, draining
   contexts to their parking points during a fallback — must finish
   indivisibly even under a lockstep quantum: a pause inside them would
   leave two contexts mid-flight. Suppress the engine deadline around
   them; the outer run loop re-checks it at its next resumable point. *)
let with_deadline_suppressed t f =
  let eng = t.engine in
  let d = eng.Engine.deadline_ns in
  if d = max_int then f ()
  else begin
    eng.Engine.deadline_ns <- max_int;
    Fun.protect ~finally:(fun () -> eng.Engine.deadline_ns <- d) f
  end

let env_words = 36 (* saved engine env block: 0x00..0x8C; env_save is 64 *)

let sync_in t (ctx : Context.t) =
  for i = 0 to env_words - 1 do
    Mem.ram_write t.soc.Soc.mem (Layout.env_base + (4 * i)) 4 ctx.env_save.(i)
  done;
  if t.engine.Engine.mode <> Translator.Ark then
    ctx.cpu.Exec.r.(11) <- Layout.env_base

let sync_out t (ctx : Context.t) =
  for i = 0 to env_words - 1 do
    ctx.env_save.(i) <- Mem.ram_read t.soc.Soc.mem (Layout.env_base + (4 * i)) 4
  done

let find_ctx t pred = List.find_opt pred t.contexts

let wake (ctx : Context.t) =
  match ctx.state with
  | Context.Parked | Context.Idle -> ctx.state <- Context.Ready
  | Context.Ready | Context.Sleeping | Context.Done -> ()

(* ------------------------- emulated services ------------------------ *)

let cur t =
  match t.current with
  | Some c -> c
  | None -> raise (Ark_error "no current context")

let emu_service t name (cpu : Exec.cpu) =
  let arg n = Engine.guest_reg t.engine cpu n in
  Counters.incr t.counters ("emu." ^ name);
  match name with
  | "spin_lock" ->
    charge_emu t cost_spin;
    t.engine.Engine.irq_dispatch <- false
  | "spin_unlock" ->
    charge_emu t cost_spin;
    t.engine.Engine.irq_dispatch <- true
  | "ktime_get" ->
    charge_emu t cost_ktime;
    (* the M3's own view of time: its core clock — the platform clock,
       or its private lane inside a lockstep concurrent segment *)
    Engine.set_guest_reg t.engine cpu 0
      (t.soc.Soc.m3.Core.clock.Clock.now land 0xFFFFFFFF)
  | "udelay" ->
    (* busy wait, converted to the peripheral core's own timer (§4.6):
       same wall time as native, but at 200 MHz *)
    let us = arg 0 in
    Counters.add t.counters "emu.udelay_us" us;
    charge_emu t (us * t.soc.Soc.m3.Core.p.Core.freq_mhz)
  | "msleep" ->
    let ms = arg 0 in
    let ctx = cur t in
    charge_emu t cost_msleep;
    ctx.state <- Context.Sleeping;
    let ns = (ms * t.man.Manifest.ms_ns) + t.man.Manifest.tick_ns in
    Clock.after_ t.soc.Soc.m3.Core.clock ns (fun () ->
        if ctx.state = Context.Sleeping then ctx.state <- Context.Ready);
    raise Switch
  | "schedule" ->
    let ctx = cur t in
    charge_emu t cost_schedule;
    (match ctx.kind with
    | Context.Primary ->
      (* cooperative yield: the syscall context stays ready *)
      ctx.state <- Context.Ready;
      raise Switch
    | Context.Worker _ | Context.Irq_thread _ ->
      (* a daemon main ran dry: park until its wake hook *)
      ctx.state <- Context.Parked;
      raise Switch
    | Context.Softirq | Context.Timerd | Context.Irq ->
      ctx.state <- Context.Idle;
      raise Switch)
  | other -> raise (Ark_error ("unknown emulated service " ^ other))

let hook t name (cpu : Exec.cpu) =
  charge_emu t cost_hook;
  Counters.incr t.counters ("hook." ^ name);
  match name with
  | "queue_work_on" ->
    let wq = Engine.guest_reg t.engine cpu 1 in
    (match
       find_ctx t (fun c ->
           match c.Context.kind with
           | Context.Worker w -> w = wq
           | _ -> false)
     with
    | Some c -> wake c
    | None ->
      (* unknown workqueue: wake every worker, they re-check and re-park *)
      List.iter
        (fun (c : Context.t) ->
          match c.kind with Context.Worker _ -> wake c | _ -> ())
        t.contexts)
  | "tasklet_schedule" -> (
    match find_ctx t (fun c -> c.Context.kind = Context.Softirq) with
    | Some c -> wake c
    | None -> ())
  | "async_schedule" ->
    (* the translated body queues onto a workqueue, whose hook fires *)
    ()
  | other -> raise (Ark_error ("unknown hook " ^ other))

(* ----------------------------- contexts ----------------------------- *)

(* DBT-context stack slots live above the kernel threads' slots. The
   slot cursor is per-create local state: a module-level ref here would
   be shared mutable state across every ARK instance — a data race (and
   a determinism leak) once the campaign runner builds worlds on
   concurrent domains. *)
let ctx_slot_first = 8

let classify_of_man (man : Manifest.t) addr =
  match man.abi_name_of addr with
  | Some n when List.mem n emulated_services -> Translator.T_emu n
  | Some n when List.mem n hooked_services -> Translator.T_hook n
  | Some n when List.mem n [ "warn"; "panic_stop"; "kernel_oom"; "syslog" ] ->
    Translator.T_cold n
  | Some _ | None -> Translator.T_normal

(** [create ~soc ~mode ~manifest ()] prepares ARK on the peripheral core.
    [mode] selects the DBT optimization level (the Figure 6 bars);
    [superblock] stacks the trace-formation tier on top of [Ark]. *)
let rec create ~(soc : Soc.t) ?(mode = Translator.Ark) ?(superblock = false)
    ~(man : Manifest.t) () =
  let engine = Engine.create ~soc ~mode () in
  (* the superblock tier is an optimization level above Ark: it relies
     on Ark's register/flag passthrough and r10 slot discipline (guest
     r10 in env_r10, host r12 dead between blocks), neither of which
     holds for Mid/Baseline *)
  if superblock then begin
    if mode <> Translator.Ark then
      raise (Ark_error "superblock tier requires the Ark mode");
    engine.Engine.superblock <- true
  end;
  engine.Engine.classify_target <- classify_of_man man;
  let t =
    { soc; engine; man; contexts = []; current = None; in_irq = false;
      rr = 0; draining = false; tick_on = false;
      on_hypercall = (fun _ _ -> ()); counters = Counters.create ();
      emu_cycles = 0; fell_back = None; paused = None }
  in
  let ctx_stack_slot = ref ctx_slot_first in
  let fresh_stack () =
    let s = !ctx_stack_slot in
    incr ctx_stack_slot;
    Soc.stack_top s
  in
  let mk kind =
    let id = List.length t.contexts in
    let c = Context.create ~id ~kind ~stack_top:(fresh_stack ()) in
    t.contexts <- t.contexts @ [ c ];
    c
  in
  let _primary = mk Context.Primary in
  List.iter (fun wq -> ignore (mk (Context.Worker wq))) man.workqueues;
  List.iter (fun d -> ignore (mk (Context.Irq_thread d))) man.threaded_irqs;
  ignore (mk Context.Softirq);
  ignore (mk Context.Timerd);
  ignore (mk Context.Irq);
  (* engine callbacks *)
  t.engine.Engine.cb.Engine.on_emu <- (fun name cpu -> emu_service t name cpu);
  t.engine.Engine.cb.Engine.on_hook <- (fun name cpu -> hook t name cpu);
  t.engine.Engine.cb.Engine.on_guest_svc <-
    (fun n cpu -> t.on_hypercall n cpu);
  t.engine.Engine.cb.Engine.on_fallback <-
    (fun reason ~guest_pc ~skippable cpu ->
      ignore cpu;
      Counters.incr t.counters "fallback.hits";
      let ctx =
        match t.current with
        | Some c -> c
        | None -> raise (Ark_error "fallback with no context")
      in
      match ctx.Context.kind with
      | Context.Primary when not t.draining ->
        raise (Fallback_exc (reason, guest_pc, ctx))
      | _ ->
        (* secondary context (or drain mode): diagnostic calls are
           emulated and stepped over so the context reaches its parking
           point; terminal sites abandon the context (see DESIGN.md) *)
        if skippable then Counters.incr t.counters "fallback.cold_skipped"
        else begin
          Counters.incr t.counters "fallback.abandoned";
          raise Abandon
        end);
  t.engine.Engine.cb.Engine.on_gic_access <-
    (fun ~write addr value -> gic_access t ~write addr value);
  t.engine.Engine.cb.Engine.on_irq_window <- (fun _ -> irq_window t);
  t

(* guest-kernel interrupt-controller emulation (§4.2): translated code
   faults on the GIC's registers; ARK applies the operation to both the
   (virtual) GIC state and the NVIC *)
and gic_access t ~write off_addr value =
  let fab = t.soc.Soc.fabric in
  let off = off_addr - Soc.gic_base in
  Counters.incr t.counters "emu.gic_access";
  if write then begin
    (if off = Intc.enable_set_off then begin
       Intc.enable fab.Intc.gic value true;
       match fab.Intc.route value with
       | Some n -> Intc.enable fab.Intc.nvic n true
       | None -> ()
     end
     else if off = Intc.enable_clr_off then begin
       Intc.enable fab.Intc.gic value false;
       match fab.Intc.route value with
       | Some n -> Intc.enable fab.Intc.nvic n false
       | None -> ()
     end
     else if off = Intc.eoi_off then Intc.eoi fab.Intc.gic value
     else if off = Intc.pending_clr_off then
       Intc.clear_pending fab.Intc.gic value);
    0
  end
  else if off = Intc.iar_off then 1023 (* never used by translated code *)
  else 0

(* interrupt delivery at a translation-block boundary (§4.2) *)
and irq_window t = if not t.in_irq then ignore (deliver_pending_irq t)

and deliver_pending_irq t =
  if t.in_irq || not t.engine.Engine.irq_dispatch then false
  else begin
    let fab = t.soc.Soc.fabric in
    (* O(1) poll: this runs at every translation-block boundary *)
    if not (Intc.deliverable fab.Intc.nvic) then false
    else begin
      let nline = Intc.ack fab.Intc.nvic in
      Intc.eoi fab.Intc.nvic nline;
      let pline = fab.Intc.reverse_route nline in
      (* the CPU-side view must not see it again after handback *)
      Intc.clear_pending fab.Intc.gic pline;
      charge_emu t cost_early_irq;
      Counters.incr t.counters "emu.early_irq";
      let irq_ctx =
        match find_ctx t (fun c -> c.Context.kind = Context.Irq) with
        | Some c -> c
        | None -> raise (Ark_error "no irq context")
      in
      irq_ctx.Context.pending <- irq_ctx.Context.pending @ [ pline ];
      irq_ctx.Context.state <- Context.Ready;
      t.in_irq <- true;
      let saved = t.current in
      (match saved with Some c -> sync_out t c | None -> ());
      with_deadline_suppressed t (fun () -> run_ctx t irq_ctx);
      (match saved with Some c -> sync_in t c | None -> ());
      t.current <- saved;
      t.in_irq <- false;
      (* kick threaded-irq daemons: they re-check their flag (guest
         state) and re-park if spurious *)
      List.iter
        (fun (c : Context.t) ->
          match c.kind with Context.Irq_thread _ -> wake c | _ -> ())
        t.contexts;
      true
    end
  end

(* ------------------------- context slices --------------------------- *)

and setup_entry t (ctx : Context.t) entry_name arg =
  let cpu = ctx.Context.cpu in
  Array.fill cpu.Exec.r 0 16 0;
  cpu.Exec.n <- false; cpu.Exec.z <- false; cpu.Exec.c <- false;
  cpu.Exec.v <- false;
  let entry = t.man.Manifest.abi_addr_of entry_name in
  let host = Engine.entry_host t.engine entry in
  (match t.engine.Engine.mode with
  | Translator.Ark ->
    cpu.Exec.r.(0) <- arg;
    cpu.Exec.r.(sp) <- ctx.stack_top;
    cpu.Exec.r.(lr) <- Layout.exit_magic
  | Translator.Mid | Translator.Baseline ->
    cpu.Exec.r.(11) <- Layout.env_base;
    Engine.set_guest_reg t.engine cpu 0 arg;
    Engine.set_guest_reg t.engine cpu sp ctx.stack_top;
    Engine.set_guest_reg t.engine cpu lr Layout.exit_magic);
  cpu.Exec.r.(pc) <- host

and entry_of (ctx : Context.t) =
  match ctx.Context.kind with
  | Context.Primary -> None (* set explicitly by run_phase *)
  | Context.Worker wq ->
    if ctx.started then None else Some (upcall_worker, wq)
  | Context.Irq_thread d ->
    if ctx.started then None else Some (upcall_irq_thread, d)
  | Context.Softirq -> Some (upcall_softirq, 0)
  | Context.Timerd -> Some (upcall_timers, 0)
  | Context.Irq -> (
    match ctx.pending with
    | l :: rest ->
      ctx.pending <- rest;
      Some (upcall_irq, l)
    | [] -> None)

and run_ctx ?(resume = false) t (ctx : Context.t) =
  t.current <- Some ctx;
  (* a quantum-paused context resuming is the same scheduler slice
     continuing: no fresh slice count, and no entry setup — the engine
     picks up at the saved host pc in the context's register file *)
  if not resume then begin
    ctx.slices <- ctx.slices + 1
  end;
  sync_in t ctx;
  (if not resume then
     match entry_of ctx with
     | Some (name, arg) ->
       setup_entry t ctx name arg;
       ctx.started <- true
     | None -> ());
  (try
     Engine.run t.engine ctx.cpu ~fuel:200_000_000;
     raise (Ark_error "engine run returned")
   with
  | Abandon -> ctx.state <- Context.Done
  | Engine.Quantum -> t.paused <- Some ctx
  | Engine.Context_exit -> (
    match ctx.kind with
    | Context.Primary -> ctx.state <- Context.Done
    | Context.Worker _ | Context.Irq_thread _ -> ctx.state <- Context.Done
    | Context.Softirq | Context.Timerd ->
      ctx.state <- Context.Idle
    | Context.Irq ->
      ctx.state <- (if ctx.pending = [] then Context.Idle else Context.Ready))
  | Switch -> ());
  sync_out t ctx;
  t.current <- None

(* ----------------------------- scheduler ---------------------------- *)

(* simple round-robin over the runnable contexts (§4.1), so a yielding
   primary cannot starve the deferred-work contexts *)
let pick_ready t =
  let cs = Array.of_list t.contexts in
  let n = Array.length cs in
  let rec go i =
    if i >= n then None
    else
      let c = cs.((t.rr + i) mod n) in
      if Context.is_runnable c && c.Context.kind <> Context.Irq then begin
        t.rr <- (t.rr + i + 1) mod n;
        Some c
      end
      else go (i + 1)
  in
  go 0

let rec arm_tick t =
  Clock.after_ t.soc.Soc.m3.Core.clock t.man.Manifest.tick_ns (fun () ->
      if t.tick_on then begin
        (* §4.6: ARK directly updates jiffies from its own timer *)
        let j = Mem.ram_read t.soc.Soc.mem t.man.Manifest.jiffies_addr 4 in
        Mem.ram_write t.soc.Soc.mem t.man.Manifest.jiffies_addr 4 (j + 1);
        (match find_ctx t (fun c -> c.Context.kind = Context.Timerd) with
        | Some c -> wake c
        | None -> ());
        arm_tick t
      end)

let primary t =
  match find_ctx t (fun c -> c.Context.kind = Context.Primary) with
  | Some c -> c
  | None -> raise (Ark_error "no primary context")

let rec schedule_loop t =
  let p = primary t in
  let guard = ref 0 in
  while p.Context.state <> Context.Done && t.fell_back = None do
    incr guard;
    if !guard > 5_000_000 then raise (Ark_error "scheduler livelock");
    (match pick_ready t with
    | Some ctx -> (
      (* emulated scheduler tick *)
      charge_emu t cost_tick;
      try run_ctx t ctx
      with Fallback_exc (reason, guest_pc, fctx) ->
        sync_out t fctx;
        t.current <- None;
        perform_fallback t fctx ~reason ~guest_pc)
    | None ->
      (* an interrupt may be pending with every context asleep *)
      if not (deliver_pending_irq t) then
        if not (Core.idle_until_event t.soc.Soc.m3) then
          raise (Ark_error "ARK deadlock: nothing runnable and no events"))
  done

(* --------------------------- fallback (§6) -------------------------- *)

and guest_state_of t (ctx : Context.t) ~guest_pc =
  sync_in t ctx;
  let regs = Array.make 16 0 in
  for i = 0 to 14 do
    regs.(i) <- Engine.guest_reg t.engine ctx.cpu i
  done;
  regs.(pc) <- guest_pc;
  let flags =
    match t.engine.Engine.mode with
    | Translator.Ark | Translator.Mid -> Exec.flags_word ctx.Context.cpu
    | Translator.Baseline ->
      Mem.ram_read t.soc.Soc.mem Layout.env_guest_flags 4
  in
  (* registers holding code-cache addresses (LR after a host BL) map
     back to guest addresses; the context's entry LR maps to the handoff
     return stub *)
  for i = 0 to 14 do
    if regs.(i) = Layout.exit_magic then regs.(i) <- t.man.Manifest.exit_to
    else if Engine.in_cache t.engine regs.(i) then
      match Engine.guest_point_of_host t.engine regs.(i) with
      | Some g -> regs.(i) <- g
      | None -> ()
  done;
  { g_regs = regs; g_flags = flags }

and rewrite_stack t (ctx : Context.t) =
  (* §5.3: rewrite all code-cache addresses on the guest stack *)
  let sp_v = ctx.Context.cpu.Exec.r.(sp) in
  let rewritten = ref 0 in
  let a = ref (sp_v land lnot 3) in
  while !a < ctx.stack_top do
    let w = Mem.ram_read t.soc.Soc.mem !a 4 in
    (if w = Layout.exit_magic then begin
       Mem.ram_write t.soc.Soc.mem !a 4 t.man.Manifest.exit_to;
       incr rewritten
     end
     else if Engine.in_cache t.engine w then
       match Engine.guest_point_of_host t.engine w with
       | Some g ->
         Mem.ram_write t.soc.Soc.mem !a 4 g;
         incr rewritten
       | None -> ());
    a := !a + 4
  done;
  !rewritten

and perform_fallback t (ctx : Context.t) ~reason ~guest_pc =
  with_deadline_suppressed t @@ fun () ->
  Counters.incr t.counters "fallback.migrations";
  (* drain the other contexts to their parking points on the peripheral
     core (receiver-thread equivalent; see DESIGN.md) *)
  t.draining <- true;
  let budget = ref 500 in
  let rec drain () =
    match
      find_ctx t (fun c ->
          c != ctx && Context.is_runnable c && c.Context.kind <> Context.Irq)
    with
    | Some c when !budget > 0 ->
      decr budget;
      run_ctx t c;
      drain ()
    | _ -> ()
  in
  drain ();
  t.draining <- false;
  (* stack rewrite, cache flush, IPI — the §7.3 cost sequence *)
  let m3 = t.soc.Soc.m3 in
  ignore (rewrite_stack t ctx);
  Core.charge m3 (ns_stack_rewrite * m3.Core.p.Core.freq_mhz / 1000);
  ignore (Cache.flush m3.Core.cache);
  Core.charge m3 (ns_cache_flush * m3.Core.p.Core.freq_mhz / 1000);
  let st = guest_state_of t ctx ~guest_pc in
  Intc.raise_line t.soc.Soc.fabric Soc.irq_ipi_cpu;
  Core.charge m3 (ns_ipi * m3.Core.p.Core.freq_mhz / 1000);
  t.fell_back <- Some (reason, st)

(* ------------------------------ phases ------------------------------ *)

(** [phase_begin t which] — the handoff prelude of a phase: reset the
    per-phase context states, mirror the CPU's interrupt-enable state
    into the NVIC, stage the primary context at the phase entry and arm
    the scheduler tick. Drive to completion with {!schedule_loop} (via
    {!run_phase}) or in bounded-quantum slices with {!phase_step}, then
    collect the {!outcome} with {!phase_finish}. *)
let phase_begin t (which : [ `Suspend | `Resume ]) =
  let entry =
    match which with
    | `Suspend -> t.man.Manifest.entry_suspend
    | `Resume -> t.man.Manifest.entry_resume
  in
  (* reset per-phase context states; contexts for deferred work start
     Ready so work queued on the CPU before handoff gets drained (§4.3) *)
  t.fell_back <- None;
  t.paused <- None;
  t.engine.Engine.span_cut <- -1;
  List.iter
    (fun (c : Context.t) ->
      c.Context.started <- false;
      c.Context.pending <- [];
      Array.fill c.Context.env_save 0 env_words 0;
      c.Context.state <-
        (match c.Context.kind with
        | Context.Primary | Context.Worker _ | Context.Irq_thread _
        | Context.Softirq ->
          Context.Ready
        | Context.Timerd | Context.Irq -> Context.Idle))
    t.contexts;
  (* mirror the CPU's interrupt-enable state into the NVIC (handoff) *)
  let fab = t.soc.Soc.fabric in
  for line = 0 to Soc.nlines - 1 do
    if fab.Intc.gic.Intc.enabled.(line) then
      match fab.Intc.route line with
      | Some n -> Intc.enable fab.Intc.nvic n true
      | None -> ()
  done;
  (* primary context enters at the phase entry *)
  let p = primary t in
  let cpu = p.Context.cpu in
  Array.fill cpu.Exec.r 0 16 0;
  let host = Engine.entry_host t.engine entry in
  (match t.engine.Engine.mode with
  | Translator.Ark ->
    cpu.Exec.r.(sp) <- p.stack_top;
    cpu.Exec.r.(lr) <- Layout.exit_magic
  | Translator.Mid | Translator.Baseline ->
    cpu.Exec.r.(11) <- Layout.env_base;
    sync_in t p;
    Engine.set_guest_reg t.engine cpu sp p.stack_top;
    Engine.set_guest_reg t.engine cpu lr Layout.exit_magic;
    sync_out t p);
  cpu.Exec.r.(pc) <- host;
  p.Context.started <- true;
  t.tick_on <- true;
  arm_tick t

(** [phase_finish t] — stop the scheduler tick and collect the phase
    outcome. Pairs with {!phase_begin}. *)
let phase_finish t : outcome =
  t.tick_on <- false;
  match t.fell_back with
  | Some (reason, st) -> Fell_back { fb_reason = reason; fb_state = st }
  | None -> Completed

(** [phase_step t ~deadline] — the bounded-quantum slice of
    {!schedule_loop}: dispatch contexts (resuming a quantum-paused one
    first, without recharging the scheduler tick) until the M3 clock
    reaches absolute time [deadline], the phase completes or falls back
    ([`Done]), or nothing is runnable and no M3-side event is pending
    ([`Blocked] — under the lockstep scheduler a cross-core commit may
    still wake a context, where the sequential loop would declare
    deadlock). The dispatch sequence over a whole phase is exactly the
    sequential one cut at quantum boundaries, which is what makes
    [--quantum 1] digest-identical. *)
let phase_step t ~deadline : [ `Runnable | `Blocked | `Done ] =
  let p = primary t in
  let m3 = t.soc.Soc.m3 in
  let m3clock = m3.Core.clock in
  let eng = t.engine in
  let guard = ref 0 in
  let blocked = ref false in
  while
    p.Context.state <> Context.Done
    && t.fell_back = None
    && m3clock.Clock.now < deadline
    && not !blocked
  do
    incr guard;
    if !guard > 5_000_000 then raise (Ark_error "scheduler livelock");
    eng.Engine.deadline_ns <- deadline;
    (match t.paused with
    | Some ctx -> (
      t.paused <- None;
      try run_ctx t ~resume:true ctx
      with Fallback_exc (reason, guest_pc, fctx) ->
        sync_out t fctx;
        t.current <- None;
        perform_fallback t fctx ~reason ~guest_pc)
    | None -> (
      match pick_ready t with
      | Some ctx -> (
        charge_emu t cost_tick;
        try run_ctx t ctx
        with Fallback_exc (reason, guest_pc, fctx) ->
          sync_out t fctx;
          t.current <- None;
          perform_fallback t fctx ~reason ~guest_pc)
      | None ->
        if not (deliver_pending_irq t) then
          if Clock.next_event_time m3clock = None then blocked := true
          else ignore (Core.idle_until_limit m3 ~limit:deadline)))
  done;
  eng.Engine.deadline_ns <- max_int;
  if p.Context.state = Context.Done || t.fell_back <> None then `Done
  else if !blocked then `Blocked
  else `Runnable

(** [run_phase t which] executes one offloaded device phase
    ([`Suspend] or [`Resume]) to completion or fallback. The handoff has
    already shut down the CPU; on return the caller (the CPU-side
    module) resumes native execution. *)
let run_phase t (which : [ `Suspend | `Resume ]) : outcome =
  phase_begin t which;
  Fun.protect
    ~finally:(fun () -> t.tick_on <- false)
    (fun () ->
      schedule_loop t;
      phase_finish t)
