(** ARK — the transkernel runtime (paper §3-§6).

    A lightweight virtual executor for the peripheral core: it runs the
    unmodified guest kernel's device suspend/resume phases through the
    cross-ISA DBT engine, underpins them with a small set of stateless
    emulated services, and falls back to native CPU execution off the
    hot path. Its only knowledge of the guest kernel is the Table 2 ABI
    plus the opaque runtime pointers of the handoff {!Manifest}.

    Typical use (the CPU-side kernel module's view):
    {[
      let ark = Ark.create ~soc ~man () in
      (* CPU shuts down, control passes to the peripheral core *)
      match Ark.run_phase ark `Suspend with
      | Ark.Completed -> (* platform sleeps; later: run_phase `Resume *)
      | Ark.Fell_back { fb_reason; fb_state } ->
        (* resume fb_state natively on the CPU *)
    ]} *)

(** {1 The ABI contract ARK is compiled against} *)

(** Downcalls ARK emulates (the stateless services of Table 2 plus the
    core-specific spinlock entries). *)
val emulated_services : string list

(** Calls ARK observes (to wake the right DBT context) and then lets the
    translated body execute — deferred work is stateful (§4.3). *)
val hooked_services : string list

(** {1 Costs} (peripheral-core cycles / nanoseconds, reported by the
    §7.3 benches) *)

val cost_early_irq : int
(** emulated v7m-specific early interrupt stage, per interrupt *)

val ns_stack_rewrite : int
(** fallback: rewriting code-cache addresses on the guest stack (§5.3) *)

val ns_cache_flush : int
val ns_ipi : int

(** {1 Exceptions} *)

exception Switch
(** raised inside emulated services to return control to the context
    scheduler (the current context's state has already been updated) *)

exception Ark_error of string
(** internal invariant violation (simulation bug, not guest behaviour) *)

(** {1 Types} *)

(** A migrated context's guest-visible state: 16 registers (PC holding
    the guest resume address after stack/register rewriting) and the
    NZCV flags word. *)
type guest_state = { g_regs : int array; g_flags : int }

type outcome =
  | Completed
  | Fell_back of { fb_reason : string; fb_state : guest_state }

type t = {
  soc : Tk_machine.Soc.t;
  engine : Tk_dbt.Engine.t;
  man : Manifest.t;
  mutable contexts : Context.t list;
  mutable current : Context.t option;
  mutable in_irq : bool;
  mutable rr : int;  (** round-robin cursor over contexts (§4.1) *)
  mutable draining : bool;
  mutable tick_on : bool;
  mutable on_hypercall : int -> Tk_isa.Exec.cpu -> unit;
      (** forwarded guest SVCs (benchmark phase markers, WARN counts) *)
  counters : Tk_stats.Counters.t;
  mutable emu_cycles : int;  (** cycles booked to emulated services *)
  mutable fell_back : (string * guest_state) option;
  mutable paused : Context.t option;
      (** bounded-quantum lockstep: the context whose engine run raised
          {!Tk_dbt.Engine.Quantum} mid-slice; {!phase_step} resumes it
          first, without re-dispatching through the scheduler *)
}

(** {1 API} *)

val create :
  soc:Tk_machine.Soc.t ->
  ?mode:Tk_dbt.Translator.mode ->
  ?superblock:bool ->
  man:Manifest.t ->
  unit ->
  t
(** [create ~soc ~man ()] prepares ARK on the platform's peripheral
    core. [mode] selects the DBT optimization level (default
    {!Tk_dbt.Translator.Ark}; [Mid]/[Baseline] are the Figure 6
    comparison engines). [superblock] (default false) stacks the
    trace-formation tier on top of [Ark] — it requires [mode = Ark]
    ({!Ark_error} otherwise) and is cycle-{e accounted} rather than
    cycle-neutral: it gates through the differential fuzz battery and
    [arksim report], not the seed goldens. *)

val run_phase : t -> [ `Suspend | `Resume ] -> outcome
(** [run_phase t which] executes one offloaded device phase to
    completion or fallback. The handoff has already shut the CPU down;
    deferred-work contexts start ready so work queued on the CPU before
    handoff is drained (§4.3). On [Fell_back], the stack rewrite, cache
    flush and IPI of §6 have been performed and [fb_state] is ready to
    resume natively. *)

(** {1 Bounded-quantum slicing} (the lockstep scheduler's view of a
    phase: [phase_begin], then [phase_step] per quantum, then
    [phase_finish]) *)

val phase_begin : t -> [ `Suspend | `Resume ] -> unit
(** the handoff prelude of {!run_phase}: reset per-phase context state,
    mirror the CPU's interrupt-enable state into the NVIC, stage the
    primary context at the phase entry, arm the scheduler tick *)

val phase_step : t -> deadline:int -> [ `Blocked | `Done | `Runnable ]
(** dispatch contexts until the M3 clock reaches absolute time
    [deadline] ([`Runnable] — call again with a later deadline), the
    phase completes or falls back ([`Done]), or nothing is runnable and
    no M3-side event is pending ([`Blocked] — only a cross-core commit
    can make progress). The dispatch sequence over a whole phase is the
    sequential one cut at quantum boundaries: at [--quantum 1] digests
    are byte-identical to {!run_phase}. *)

val phase_finish : t -> outcome
(** stop the scheduler tick and collect the phase outcome *)
