(** The guest ISA ("V7A"), modelled on ARMv7-A A32.

    Fixed 32-bit encodings. The CPU of the simulated SoC executes V7A; the
    mini monolithic kernel is compiled to V7A by {!Tk_kcc}; the DBT engine
    decodes V7A words out of kernel memory and re-encodes them as
    {!V7m} words.

    The encoding layout is our own (documented below), not the
    architectural A32 layout, but it preserves the properties that matter
    to the paper: an 8-bit-rotated immediate form, full shift modes on
    operand2 and on load/store register offsets, pre/post-indexed
    writeback addressing, and a handful of instructions (RSC, SWP, ...)
    with no host counterpart.

    Layout: [cond(4) @28 | class(3) @25 | payload(25)].
    {ul
    {- class 0: Dp imm — op(4)@21 s@20 rd@16 rn@12 rot(4)@8 imm8@0}
    {- class 1: Dp reg — op(4)@21 s@20 rd@16 rn@12 rm@8 kind(2)@6 byreg@5 amt(5)@0}
    {- class 2: Mem imm — ld@24 size(2)@22 rt@18 rn@14 idx(2)@12 sign@11 imm11@0}
    {- class 3: Mem reg — ld@24 size(2)@22 rt@18 rn@14 idx(2)@12 rm@8 kind(2)@6 amt(5)@1}
    {- class 4: Ldm/Stm — ld@24 wb@23 rn@19 reglist16@0}
    {- class 5: branch — sub(2)@23; B/BL: word offset s23@0; BX/BLX: rm@0}
    {- class 6: misc — sub(5)@20, see source}
    {- class 7: Movw/Movt — which@20 rd@16 imm16@0}} *)

open Types

exception Decode_error of int

(** [imm_ok v] — can [v] be encoded as an A32-style immediate, i.e. an
    8-bit value rotated right by an even amount? *)
let imm_ok v =
  let v = Bits.mask32 v in
  let rec go k = k < 16 && (Bits.rol32 v (2 * k) < 256 || go (k + 1)) in
  go 0

(** [encode_imm v] is [(rot, imm8)] such that [ror32 imm8 (2*rot) = v]. *)
let encode_imm v =
  let v = Bits.mask32 v in
  let rec go k =
    if k >= 16 then None
    else
      let r = Bits.rol32 v (2 * k) in
      if r < 256 then Some (k, r) else go (k + 1)
  in
  go 0

(** Maximum magnitude of a load/store immediate offset. *)
let mem_imm_max = 2047

let idx_to_int = function Offset -> 0 | Pre -> 1 | Post -> 2

let idx_of_int = function
  | 0 -> Offset | 1 -> Pre | 2 -> Post
  | n -> invalid_arg (Printf.sprintf "idx_of_int %d" n)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(** [encode i] encodes [i] to a 32-bit word, or [Error reason] when the
    shape is not expressible in V7A (e.g. out-of-range immediates). *)
let encode { cond; op } : (int, string) result =
  let open Bits in
  let w klass payload = put (put payload 25 3 klass) 28 4 (int_of_cond cond) in
  match op with
  | Dp (o, s, rd, rn, Imm v) ->
    (match encode_imm v with
    | None -> err "v7a: immediate 0x%x not encodable" v
    | Some (rot, imm8) ->
      let p = put 0 21 4 (int_of_dp_op o) in
      let p = put p 20 1 (Bool.to_int s) in
      let p = put p 16 4 rd in
      let p = put p 12 4 rn in
      let p = put p 8 4 rot in
      Ok (w 0 (put p 0 8 imm8)))
  | Dp (o, s, rd, rn, (Reg _ | Sreg _ | Sregreg _ as op2)) ->
    let rm, kind, byreg, amt =
      match op2 with
      | Reg rm -> rm, LSL, 0, 0
      | Sreg (rm, k, a) -> rm, k, 0, a
      | Sregreg (rm, k, rs) -> rm, k, 1, rs
      | Imm _ -> assert false
    in
    if amt > 31 then err "v7a: shift amount %d > 31" amt
    else
      let p = put 0 21 4 (int_of_dp_op o) in
      let p = put p 20 1 (Bool.to_int s) in
      let p = put p 16 4 rd in
      let p = put p 12 4 rn in
      let p = put p 8 4 rm in
      let p = put p 6 2 (int_of_shift_kind kind) in
      let p = put p 5 1 byreg in
      Ok (w 1 (put p 0 5 amt))
  | Mem { ld; size; rt; rn; off = Oimm o; idx } ->
    if abs o > mem_imm_max then err "v7a: mem offset %d out of range" o
    else
      let p = put 0 24 1 (Bool.to_int ld) in
      let p = put p 22 2 (int_of_mem_size size) in
      let p = put p 18 4 rt in
      let p = put p 14 4 rn in
      let p = put p 12 2 (idx_to_int idx) in
      let p = put p 11 1 (if o < 0 then 1 else 0) in
      Ok (w 2 (put p 0 11 (abs o)))
  | Mem { ld; size; rt; rn; off = Oreg (rm, kind, amt); idx } ->
    if amt > 31 then err "v7a: mem shift %d > 31" amt
    else
      let p = put 0 24 1 (Bool.to_int ld) in
      let p = put p 22 2 (int_of_mem_size size) in
      let p = put p 18 4 rt in
      let p = put p 14 4 rn in
      let p = put p 12 2 (idx_to_int idx) in
      let p = put p 8 4 rm in
      let p = put p 6 2 (int_of_shift_kind kind) in
      Ok (w 3 (put p 1 5 amt))
  | Ldm (rn, wb, regs) | Stm (rn, wb, regs) ->
    let ld = match op with Ldm _ -> 1 | _ -> 0 in
    let* list =
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          if r > 15 then err "v7a: bad reg %d" r else Ok (acc lor (1 lsl r)))
        (Ok 0) regs
    in
    let p = put 0 24 1 ld in
    let p = put p 23 1 (Bool.to_int wb) in
    let p = put p 19 4 rn in
    Ok (w 4 (put p 0 16 list))
  | B off | Bl off ->
    if off land 3 <> 0 then err "v7a: unaligned branch offset %d" off
    else
      let wo = off asr 2 in
      if wo < -(1 lsl 22) || wo >= 1 lsl 22 then
        err "v7a: branch offset %d out of range" off
      else
        let sub = match op with B _ -> 0 | _ -> 1 in
        let p = put 0 23 2 sub in
        Ok (w 5 (put p 0 23 (wo land 0x7FFFFF)))
  | Bx r -> Ok (w 5 (put (put 0 23 2 2) 0 4 r))
  | Blx_r r -> Ok (w 5 (put (put 0 23 2 3) 0 4 r))
  | Mul (s, rd, rn, rm) ->
    let p = put (put (put (put 0 16 1 (Bool.to_int s)) 12 4 rd) 8 4 rn) 4 4 rm in
    Ok (w 6 (put p 20 5 0))
  | Mla (rd, rn, rm, ra) ->
    let p = put (put (put (put 0 16 4 rd) 12 4 rn) 8 4 rm) 4 4 ra in
    Ok (w 6 (put p 20 5 1))
  | Udiv (rd, rn, rm) ->
    Ok (w 6 (put (put (put (put 0 20 5 2) 12 4 rd) 8 4 rn) 4 4 rm))
  | Clz (rd, rm) -> Ok (w 6 (put (put (put 0 20 5 3) 4 4 rd) 0 4 rm))
  | Sxt (sz, rd, rm) ->
    Ok (w 6 (put (put (put (put 0 20 5 4) 8 2 (int_of_mem_size sz)) 4 4 rd) 0 4 rm))
  | Uxt (sz, rd, rm) ->
    Ok (w 6 (put (put (put (put 0 20 5 5) 8 2 (int_of_mem_size sz)) 4 4 rd) 0 4 rm))
  | Rev (rd, rm) -> Ok (w 6 (put (put (put 0 20 5 6) 4 4 rd) 0 4 rm))
  | Mrs rd -> Ok (w 6 (put (put 0 20 5 7) 0 4 rd))
  | Msr rd -> Ok (w 6 (put (put 0 20 5 8) 0 4 rd))
  | Svc n -> Ok (w 6 (put (put 0 20 5 9) 0 16 n))
  | Wfi -> Ok (w 6 (put 0 20 5 10))
  | Cps en -> Ok (w 6 (put (put 0 20 5 11) 0 1 (Bool.to_int en)))
  | Irq_ret -> Ok (w 6 (put 0 20 5 12))
  | Swp (rd, rm, rn) ->
    Ok (w 6 (put (put (put (put 0 20 5 13) 8 4 rd) 4 4 rm) 0 4 rn))
  | Nop -> Ok (w 6 (put 0 20 5 14))
  | Udf n -> Ok (w 6 (put (put 0 20 5 15) 0 16 n))
  | Movw (rd, i) ->
    if i > 0xFFFF then err "v7a: movw imm 0x%x" i
    else Ok (w 7 (put (put (put 0 20 1 0) 16 4 rd) 0 16 i))
  | Movt (rd, i) ->
    if i > 0xFFFF then err "v7a: movt imm 0x%x" i
    else Ok (w 7 (put (put (put 0 20 1 1) 16 4 rd) 0 16 i))

(** [encode_exn i] is [encode i], raising [Invalid_argument] on failure. *)
let encode_exn i =
  match encode i with Ok w -> w | Error e -> invalid_arg e

(** [decode w] decodes a V7A word back to the AST.
    @raise Decode_error on malformed words. *)
let decode word : inst =
  let open Bits in
  let cond = cond_of_int (get word 28 4) in
  let p = word land 0x1FFFFFF in
  let op =
    match get word 25 3 with
    | 0 ->
      let o = dp_op_of_int (get p 21 4) in
      let s = get p 20 1 = 1 in
      let v = Bits.ror32 (get p 0 8) (2 * get p 8 4) in
      Dp (o, s, get p 16 4, get p 12 4, Imm v)
    | 1 ->
      let o = dp_op_of_int (get p 21 4) in
      let s = get p 20 1 = 1 in
      let rm = get p 8 4 in
      let kind = shift_kind_of_int (get p 6 2) in
      let amt = get p 0 5 in
      let op2 =
        if get p 5 1 = 1 then Sregreg (rm, kind, amt land 0xF)
        else if kind = LSL && amt = 0 then Reg rm
        else Sreg (rm, kind, amt)
      in
      Dp (o, s, get p 16 4, get p 12 4, op2)
    | 2 ->
      let o = get p 0 11 in
      let o = if get p 11 1 = 1 then -o else o in
      Mem { ld = get p 24 1 = 1; size = mem_size_of_int (get p 22 2);
            rt = get p 18 4; rn = get p 14 4; idx = idx_of_int (get p 12 2);
            off = Oimm o }
    | 3 ->
      Mem { ld = get p 24 1 = 1; size = mem_size_of_int (get p 22 2);
            rt = get p 18 4; rn = get p 14 4; idx = idx_of_int (get p 12 2);
            off = Oreg (get p 8 4, shift_kind_of_int (get p 6 2), get p 1 5) }
    | 4 ->
      let regs =
        List.filter (fun r -> bit p r) (List.init 16 Fun.id)
      in
      let rn = get p 19 4 and wb = get p 23 1 = 1 in
      if get p 24 1 = 1 then Ldm (rn, wb, regs) else Stm (rn, wb, regs)
    | 5 ->
      (match get p 23 2 with
      | 0 -> B (Bits.sext (get p 0 23) 23 * 4)
      | 1 -> Bl (Bits.sext (get p 0 23) 23 * 4)
      | 2 -> Bx (get p 0 4)
      | _ -> Blx_r (get p 0 4))
    | 6 ->
      (match get p 20 5 with
      | 0 -> Mul (get p 16 1 = 1, get p 12 4, get p 8 4, get p 4 4)
      | 1 -> Mla (get p 16 4, get p 12 4, get p 8 4, get p 4 4)
      | 2 -> Udiv (get p 12 4, get p 8 4, get p 4 4)
      | 3 -> Clz (get p 4 4, get p 0 4)
      | 4 -> Sxt (mem_size_of_int (get p 8 2), get p 4 4, get p 0 4)
      | 5 -> Uxt (mem_size_of_int (get p 8 2), get p 4 4, get p 0 4)
      | 6 -> Rev (get p 4 4, get p 0 4)
      | 7 -> Mrs (get p 0 4)
      | 8 -> Msr (get p 0 4)
      | 9 -> Svc (get p 0 16)
      | 10 -> Wfi
      | 11 -> Cps (get p 0 1 = 1)
      | 12 -> Irq_ret
      | 13 -> Swp (get p 8 4, get p 4 4, get p 0 4)
      | 14 -> Nop
      | 15 -> Udf (get p 0 16)
      | _ -> raise (Decode_error word))
    | 7 ->
      if get p 20 1 = 0 then Movw (get p 16 4, get p 0 16)
      else Movt (get p 16 4, get p 0 16)
    | _ -> raise (Decode_error word)
  in
  { cond; op }

(** [decode_total w] — total variant of {!decode}: malformed words
    become a defined [Udf] (undefined-instruction) result instead of an
    exception, so random-word fetches always produce {e something} the
    executor can trap on. *)
let decode_total word =
  try decode word
  with Decode_error _ | Invalid_argument _ ->
    Types.at (Types.Udf (word land 0xFFFF))
