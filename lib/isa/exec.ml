(** Single-instruction semantics, shared by both ISAs.

    V7A and V7M implement the same semantics in different encodings, so
    one executor serves both the simulated Cortex-A9 (decoding {!V7a}
    words — "native execution") and the simulated Cortex-M3 (decoding
    {!V7m} words out of the DBT code cache). The equivalence of the two
    paths is what the differential property tests check.

    Conventions (documented simplifications vs architectural ARM):
    {ul
    {- reads of PC (r15) yield [instruction address + 8] (A32 style);}
    {- an [Imm] or plain [Reg] operand2 leaves the carry flag unchanged
       (we do not model the encoder's rotation carry-out);}
    {- shift amounts are taken literally (no "LSR #0 means 32").}} *)

open Types

(** Architectural state of one core: 16 registers, NZCV flags, IRQ enable.
    Values are 32-bit-masked OCaml ints. *)
type cpu = {
  r : int array;
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
  mutable irq_on : bool;
  mutable branched : bool;
      (** scratch used by {!step} to record a PC write without
          allocating a per-instruction ref cell; only meaningful while
          a [step] call is in flight *)
}

let make_cpu () =
  { r = Array.make 16 0; n = false; z = false; c = false; v = false;
    irq_on = false; branched = false }

(** [copy_into src dst] copies all architectural state. *)
let copy_into src dst =
  Array.blit src.r 0 dst.r 0 16;
  dst.n <- src.n; dst.z <- src.z; dst.c <- src.c; dst.v <- src.v;
  dst.irq_on <- src.irq_on

(** [flags_word cpu] packs NZCV into bits 31:28 (MRS view). *)
let flags_word cpu =
  (Bool.to_int cpu.n lsl 31) lor (Bool.to_int cpu.z lsl 30)
  lor (Bool.to_int cpu.c lsl 29) lor (Bool.to_int cpu.v lsl 28)

(** [set_flags_word cpu w] unpacks bits 31:28 into NZCV (MSR view). *)
let set_flags_word cpu w =
  cpu.n <- Bits.bit w 31; cpu.z <- Bits.bit w 30;
  cpu.c <- Bits.bit w 29; cpu.v <- Bits.bit w 28

(** Environment an instruction executes against: memory plus the traps
    that escape pure data flow. The owner (core interpreter or DBT
    engine) decides what those mean. *)
type env = {
  load : int -> int -> int;  (** [load addr nbytes], zero-extended *)
  store : int -> int -> int -> unit;  (** [store addr nbytes value] *)
  svc : cpu -> int -> unit;
  wfi : cpu -> unit;
  irq_ret : cpu -> unit;
  undef : cpu -> inst -> unit;  (** UDF or unimplementable op *)
}

(** [cond_holds cpu c] evaluates condition [c] against the flags. *)
let cond_holds cpu = function
  | AL -> true
  | EQ -> cpu.z
  | NE -> not cpu.z
  | CS -> cpu.c
  | CC -> not cpu.c
  | MI -> cpu.n
  | PL -> not cpu.n
  | VS -> cpu.v
  | VC -> not cpu.v
  | HI -> cpu.c && not cpu.z
  | LS -> (not cpu.c) || cpu.z
  | GE -> cpu.n = cpu.v
  | LT -> cpu.n <> cpu.v
  | GT -> (not cpu.z) && cpu.n = cpu.v
  | LE -> cpu.z || cpu.n <> cpu.v

(* [shift_value] split into a value half and a carry half so the hot
   paths (which usually need only one of the two) stay tuple-free *)
let shift_res kind v amt =
  let v = Bits.mask32 v in
  match kind, amt with
  | _, 0 -> v
  | LSL, a when a < 32 -> Bits.mask32 (v lsl a)
  | LSL, _ -> 0
  | LSR, a when a < 32 -> v lsr a
  | LSR, _ -> 0
  | ASR, a when a < 32 -> Bits.mask32 (Bits.s32 v asr a)
  | ASR, _ -> if Bits.bit v 31 then 0xFFFFFFFF else 0
  | ROR, a -> Bits.ror32 v (a land 31)

let shift_carry kind v amt carry_in =
  let v = Bits.mask32 v in
  match kind, amt with
  | _, 0 -> carry_in
  | LSL, a when a < 32 -> Bits.bit v (32 - a)
  | LSL, _ -> false
  | LSR, a when a < 32 -> Bits.bit v (a - 1)
  | LSR, _ -> false
  | ASR, a when a < 32 -> Bits.bit v (a - 1)
  | ASR, _ -> Bits.bit v 31
  | ROR, a -> Bits.bit (Bits.ror32 v (a land 31)) 31

let shift_value kind v amt carry_in =
  shift_res kind v amt, shift_carry kind v amt carry_in

(** Result of executing one instruction: did it write the PC? *)
type outcome = Next | Branched

(* Register access for [step]. Top-level (rather than closures inside
   [step]) so that the non-flambda compiler emits zero allocations per
   executed instruction — this loop is the simulator's hottest path.
   Register numbers are 4-bit decode fields (both decoders mask them to
   0..15), so the accesses skip the bounds check. [rset] records a PC
   write in [cpu.branched]. *)
let rget cpu addr r =
  if r = pc then Bits.mask32 (addr + 8) else Array.unsafe_get cpu.r r

let rset cpu r v =
  if r = pc then begin
    Array.unsafe_set cpu.r pc (Bits.mask32 v land lnot 1);
    cpu.branched <- true
  end
  else Array.unsafe_set cpu.r r (Bits.mask32 v)

let dp_logical cpu s shc res =
  if s then begin
    cpu.n <- Bits.bit res 31; cpu.z <- res = 0; cpu.c <- shc
  end;
  res

(* TST/TEQ (like CMP/CMN) always set flags; they have no S bit *)
let dp_flags cpu shc res =
  cpu.n <- Bits.bit res 31;
  cpu.z <- res = 0;
  cpu.c <- shc

let dp_arith cpu ~s ~sub ~rev ~carry rnv op2v =
  let a = if rev then op2v else rnv in
  let b = if rev then rnv else op2v in
  let b' = if sub then Bits.mask32 (lnot b) else b in
  let cin = Bool.to_int carry in
  let full = a + b' + cin in
  let res = Bits.mask32 full in
  if s then begin
    cpu.n <- Bits.bit res 31;
    cpu.z <- res = 0;
    cpu.c <- full > 0xFFFFFFFF;
    let sa = Bits.bit a 31 and sb = Bits.bit b' 31 and sr = Bits.bit res 31 in
    cpu.v <- sa = sb && sa <> sr
  end;
  res

(** [step cpu env ~addr inst] executes [inst] located at [addr]. Returns
    {!Branched} iff the instruction wrote PC (the caller otherwise
    advances PC by 4). All register/flag effects are applied to [cpu]. *)
let step cpu env ~addr ({ cond; op } as inst) : outcome =
  if not (cond_holds cpu cond) then Next
  else begin
    cpu.branched <- false;
    (match op with
    | Dp (o, s, rd, rn, op2) ->
      (* value and shifter-carry are computed separately (both reads are
         pure) so the common Imm/Reg operands never build a pair *)
      let op2v =
        match op2 with
        | Imm v -> Bits.mask32 v
        | Reg r -> rget cpu addr r
        | Sreg (r, k, a) -> shift_res k (rget cpu addr r) a
        | Sregreg (r, k, rs) ->
          shift_res k (rget cpu addr r) (rget cpu addr rs land 0xFF)
      in
      let shc =
        match op2 with
        | Imm _ | Reg _ -> cpu.c
        | Sreg (r, k, a) -> shift_carry k (rget cpu addr r) a cpu.c
        | Sregreg (r, k, rs) ->
          shift_carry k (rget cpu addr r) (rget cpu addr rs land 0xFF) cpu.c
      in
      let rnv = rget cpu addr rn in
      (match o with
      | MOV -> rset cpu rd (dp_logical cpu s shc op2v)
      | MVN -> rset cpu rd (dp_logical cpu s shc (Bits.mask32 (lnot op2v)))
      | AND -> rset cpu rd (dp_logical cpu s shc (rnv land op2v))
      | ORR -> rset cpu rd (dp_logical cpu s shc (rnv lor op2v))
      | EOR -> rset cpu rd (dp_logical cpu s shc (rnv lxor op2v))
      | BIC -> rset cpu rd (dp_logical cpu s shc (rnv land lnot op2v))
      | TST -> dp_flags cpu shc (rnv land op2v)
      | TEQ -> dp_flags cpu shc (rnv lxor op2v)
      | ADD ->
        rset cpu rd (dp_arith cpu ~s ~sub:false ~rev:false ~carry:false rnv op2v)
      | ADC ->
        rset cpu rd (dp_arith cpu ~s ~sub:false ~rev:false ~carry:cpu.c rnv op2v)
      | SUB ->
        rset cpu rd (dp_arith cpu ~s ~sub:true ~rev:false ~carry:true rnv op2v)
      | SBC ->
        rset cpu rd (dp_arith cpu ~s ~sub:true ~rev:false ~carry:cpu.c rnv op2v)
      | RSB ->
        rset cpu rd (dp_arith cpu ~s ~sub:true ~rev:true ~carry:true rnv op2v)
      | RSC ->
        rset cpu rd (dp_arith cpu ~s ~sub:true ~rev:true ~carry:cpu.c rnv op2v)
      | CMP ->
        (* CMP/CMN always set flags regardless of the s bit *)
        let full = rnv + Bits.mask32 (lnot op2v) + 1 in
        let res = Bits.mask32 full in
        cpu.n <- Bits.bit res 31;
        cpu.z <- res = 0;
        cpu.c <- full > 0xFFFFFFFF;
        let sb = Bits.bit (Bits.mask32 (lnot op2v)) 31 in
        cpu.v <- Bits.bit rnv 31 = sb && Bits.bit rnv 31 <> Bits.bit res 31
      | CMN ->
        let full = rnv + op2v in
        let res = Bits.mask32 full in
        cpu.n <- Bits.bit res 31;
        cpu.z <- res = 0;
        cpu.c <- full > 0xFFFFFFFF;
        cpu.v <- Bits.bit rnv 31 = Bits.bit op2v 31
                 && Bits.bit rnv 31 <> Bits.bit res 31)
    | Movw (rd, i) -> rset cpu rd i
    | Movt (rd, i) -> rset cpu rd ((rget cpu addr rd land 0xFFFF) lor (i lsl 16))
    | Mul (s, rd, rn, rm) ->
      let res = Bits.mask32 (rget cpu addr rn * rget cpu addr rm) in
      if s then begin cpu.n <- Bits.bit res 31; cpu.z <- res = 0 end;
      rset cpu rd res
    | Mla (rd, rn, rm, ra) ->
      rset cpu rd
        ((rget cpu addr rn * rget cpu addr rm) + rget cpu addr ra)
    | Udiv (rd, rn, rm) ->
      let d = rget cpu addr rm in
      rset cpu rd (if d = 0 then 0 else rget cpu addr rn / d)
    | Mem { ld; size; rt; rn; off; idx } ->
      let offv =
        match off with
        | Oimm i -> i
        | Oreg (rm, k, a) -> shift_res k (rget cpu addr rm) a
      in
      let base = rget cpu addr rn in
      let addr_eff =
        match idx with
        | Offset | Pre -> Bits.mask32 (base + offv)
        | Post -> base
      in
      let nb = bytes_of_mem_size size in
      if ld then begin
        let v = env.load addr_eff nb in
        (* writeback first so a loaded rt = rn wins *)
        (match idx with
        | Pre -> rset cpu rn (base + offv)
        | Post -> rset cpu rn (base + offv)
        | Offset -> ());
        rset cpu rt v
      end
      else begin
        let vmask = (1 lsl (nb * 8)) - 1 in
        env.store addr_eff nb (rget cpu addr rt land vmask);
        match idx with
        | Pre | Post -> rset cpu rn (base + offv)
        | Offset -> ()
      end
    | Ldm (rn, wb, regs) ->
      let base = rget cpu addr rn in
      (* writeback before the loaded values land, so a loaded rt = rn
         wins — same final state as load-all-then-set, without building
         an intermediate value list per instruction (loads still issue
         left to right, and none of them reads the register file) *)
      if wb then rset cpu rn (base + (4 * List.length regs));
      List.iteri
        (fun i r -> rset cpu r (env.load (Bits.mask32 (base + (4 * i))) 4))
        regs
    | Stm (rn, wb, regs) ->
      let base = rget cpu addr rn in
      let n = List.length regs in
      let start = Bits.mask32 (base - (4 * n)) in
      List.iteri
        (fun i r ->
          env.store (Bits.mask32 (start + (4 * i))) 4 (rget cpu addr r))
        regs;
      if wb then rset cpu rn start
    | B off -> rset cpu pc (addr + off)
    | Bl off ->
      rset cpu lr (addr + 4);
      rset cpu pc (addr + off)
    | Bx r -> rset cpu pc (rget cpu addr r)
    | Blx_r r ->
      let target = rget cpu addr r in
      rset cpu lr (addr + 4);
      rset cpu pc target
    | Clz (rd, rm) -> rset cpu rd (Bits.clz32 (rget cpu addr rm))
    | Sxt (sz, rd, rm) ->
      let v = rget cpu addr rm in
      rset cpu rd
        (match sz with
        | Byte -> Bits.mask32 (Bits.sext (v land 0xFF) 8)
        | Half -> Bits.mask32 (Bits.sext (v land 0xFFFF) 16)
        | Word -> v)
    | Uxt (sz, rd, rm) ->
      let v = rget cpu addr rm in
      rset cpu rd
        (match sz with Byte -> v land 0xFF | Half -> v land 0xFFFF | Word -> v)
    | Rev (rd, rm) ->
      let v = rget cpu addr rm in
      rset cpu rd
        (((v land 0xFF) lsl 24) lor ((v land 0xFF00) lsl 8)
        lor ((v lsr 8) land 0xFF00) lor ((v lsr 24) land 0xFF))
    | Mrs rd -> rset cpu rd (flags_word cpu)
    | Msr rs -> set_flags_word cpu (rget cpu addr rs)
    | Svc n -> env.svc cpu n
    | Wfi -> env.wfi cpu
    | Cps en -> cpu.irq_on <- en
    | Irq_ret -> env.irq_ret cpu; cpu.branched <- true
    | Swp (rd, rm, rn) ->
      let a = rget cpu addr rn in
      let old = env.load a 4 in
      env.store a 4 (rget cpu addr rm);
      rset cpu rd old
    | Nop -> ()
    | Udf _ -> env.undef cpu inst);
    if cpu.branched then Branched else Next
  end
