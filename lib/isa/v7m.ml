(** The host ISA ("V7M"), modelled on ARMv7-M Thumb-2.

    This is what the peripheral core executes; the DBT engine emits V7M
    words into the code cache. Same register file, same NZCV flags, same
    PC/LR/SP conventions as {!V7a} — but with the ARMv7-M restrictions the
    paper's translation rules (Table 3) revolve around:

    {ul
    {- {b Constant constraints}: data-processing immediates use the
       Thumb-2 "modified immediate" scheme ({!imm_ok}) — a strictly
       different set from V7A's rotated 8-bit immediates;}
    {- {b No side effects}: no pre/post-indexed addressing with register
       offsets; immediate writeback offsets limited to ±255;}
    {- {b Restricted shift modes}: load/store register offsets shift only
       by LSL #0..3; shift-by-register appears only as a bare move;}
    {- {b Missing counterparts}: RSC, SWP and exception-return have no
       V7M encoding.}}

    Every instruction is conditional (standing in for Thumb-2 IT blocks),
    which keeps identity translation of conditional guest code 1:1.

    Layout: [cond(4) @28 | class(3) @25 | payload(25)] with class codes and
    field positions deliberately different from V7A, so "identity"
    translation is still a genuine re-encoding. *)

open Types

exception Decode_error of int

(* ---------------- Thumb-2 style modified immediates ------------------ *)

(** [encode_imm v] encodes [v] as a 12-bit modified-immediate code:
    - [v < 256]: code = v;
    - [0x00XY00XY]: selector 1; [0xXY00XY00]: selector 2;
      [0xXYXYXYXY]: selector 3 (selector in bits 9:8);
    - otherwise [v = ror32 (0x80 lor low7) rot] with [rot] in 8..31:
      code = rot<<7 | low7. *)
let encode_imm v =
  let v = Bits.mask32 v in
  if v < 256 then Some v
  else
    let b = v land 0xFF in
    let b2 = (v lsr 8) land 0xFF in
    if v = b lor (b lsl 16) && b <> 0 then Some (0x100 lor b)
    else if v = (b2 lsl 8) lor (b2 lsl 24) && b2 <> 0 then Some (0x200 lor b2)
    else if v = b lor (b lsl 8) lor (b lsl 16) lor (b lsl 24) && b <> 0 then
      Some (0x300 lor b)
    else
        let rec go rot =
          if rot > 31 then None
          else
            let b = Bits.rol32 v rot in
            if b >= 0x80 && b < 0x100 then Some ((rot lsl 7) lor (b land 0x7F))
            else go (rot + 1)
        in
        go 8

(** [decode_imm code] inverts {!encode_imm}. *)
let decode_imm code =
  if code < 0x100 then code
  else if code < 0x400 then
    let b = code land 0xFF in
    match (code lsr 8) land 3 with
    | 1 -> b lor (b lsl 16)
    | 2 -> (b lsl 8) lor (b lsl 24)
    | 3 -> b lor (b lsl 8) lor (b lsl 16) lor (b lsl 24)
    | _ -> assert false
  else
    let rot = (code lsr 7) land 0x1F in
    let b = 0x80 lor (code land 0x7F) in
    Bits.ror32 b rot

(** [imm_ok v] — is [v] a valid V7M data-processing immediate? *)
let imm_ok v = encode_imm v <> None

(** Offset range limits (Thumb-2 LDR/STR immediate forms). *)
let mem_offset_pos_max = 4095

let mem_offset_neg_max = 255
let mem_wb_max = 255

(** [mem_imm_ok ~idx off] — is immediate offset [off] encodable under
    addressing mode [idx]? *)
let mem_imm_ok ~idx off =
  match idx with
  | Offset -> off >= -mem_offset_neg_max && off <= mem_offset_pos_max
  | Pre | Post -> abs off <= mem_wb_max

let idx_to_int = function Offset -> 0 | Pre -> 1 | Post -> 2

let idx_of_int = function
  | 0 -> Offset | 1 -> Pre | 2 -> Post
  | n -> invalid_arg (Printf.sprintf "idx_of_int %d" n)

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let ( let* ) = Result.bind

(** [encode i] encodes [i] as a V7M word, or [Error reason] if the shape
    has no V7M counterpart — exactly the cases the DBT must legalize with
    amendment instructions. *)
let encode { cond; op } : (int, string) result =
  let open Bits in
  let w klass payload = put (put payload 25 3 klass) 28 4 (int_of_cond cond) in
  match op with
  | Dp (RSC, _, _, _, _) -> err "v7m: RSC has no counterpart"
  | Dp (o, s, rd, rn, Imm v) ->
    (match encode_imm v with
    | None -> err "v7m: immediate 0x%x not a modified constant" v
    | Some code ->
      let p = put 0 21 4 (int_of_dp_op o) in
      let p = put p 20 1 (Bool.to_int s) in
      let p = put p 16 4 rn in
      let p = put p 12 4 rd in
      Ok (w 6 (put p 0 12 code)))
  | Dp (o, s, rd, rn, (Reg _ | Sreg _ | Sregreg _ as op2)) ->
    let* rm, kind, byreg, amt =
      match op2 with
      | Reg rm -> Ok (rm, LSL, 0, 0)
      | Sreg (rm, k, a) ->
        if a > 31 then err "v7m: shift %d > 31" a else Ok (rm, k, 0, a)
      | Sregreg (rm, k, rs) ->
        if o <> MOV then
          err "v7m: register-shift only as a bare move (got %s)" (dp_name o)
        else Ok (rm, k, 1, rs)
      | Imm _ -> assert false
    in
    let p = put 0 20 5 amt in
    let p = put p 16 4 (int_of_dp_op o) in
    let p = put p 15 1 (Bool.to_int s) in
    let p = put p 14 1 byreg in
    let p = put p 12 2 (int_of_shift_kind kind) in
    let p = put p 8 4 rn in
    let p = put p 4 4 rd in
    Ok (w 2 (put p 0 4 rm))
  | Mem { ld; size; rt; rn; off = Oimm o; idx } ->
    if not (mem_imm_ok ~idx o) then
      err "v7m: mem offset %d out of range for this addressing mode" o
    else
      let p = put 0 24 1 (Bool.to_int ld) in
      let p = put p 22 2 (int_of_mem_size size) in
      let p = put p 18 4 rt in
      let p = put p 14 4 rn in
      let mode, rest =
        match idx with
        | Offset when o >= 0 -> 0, o
        | Offset -> 1, -o
        | Pre -> 2, (if o < 0 then 0x100 lor (-o) else o)
        | Post -> 3, (if o < 0 then 0x100 lor (-o) else o)
      in
      Ok (w 0 (put (put p 12 2 mode) 0 12 rest))
  | Mem { ld; size; rt; rn; off = Oreg (rm, kind, amt); idx } ->
    if idx <> Offset then err "v7m: no writeback with register offsets"
    else if kind <> LSL || amt > 3 then
      err "v7m: register offset shift must be LSL #0..3"
    else
      let p = put 0 24 1 (Bool.to_int ld) in
      let p = put p 22 2 (int_of_mem_size size) in
      let p = put p 18 4 rt in
      let p = put p 14 4 rn in
      let p = put p 10 4 rm in
      Ok (w 4 (put p 8 2 amt))
  | Ldm (rn, wb, regs) | Stm (rn, wb, regs) ->
    let ld = match op with Ldm _ -> 1 | _ -> 0 in
    let list = List.fold_left (fun acc r -> acc lor (1 lsl r)) 0 regs in
    let p = put 0 21 1 ld in
    let p = put p 20 1 (Bool.to_int wb) in
    let p = put p 16 4 rn in
    Ok (w 1 (put p 0 16 list))
  | B off | Bl off ->
    if off land 3 <> 0 then err "v7m: unaligned branch offset %d" off
    else
      let wo = off asr 2 in
      if wo < -(1 lsl 22) || wo >= 1 lsl 22 then
        err "v7m: branch offset %d out of range" off
      else
        let sub = match op with B _ -> 0 | _ -> 1 in
        Ok (w 7 (put (put 0 0 2 sub) 2 23 (wo land 0x7FFFFF)))
  | Bx r -> Ok (w 7 (put (put 0 0 2 2) 2 4 r))
  | Blx_r r -> Ok (w 7 (put (put 0 0 2 3) 2 4 r))
  | Swp _ -> err "v7m: SWP has no counterpart"
  | Irq_ret -> err "v7m: guest exception-return has no counterpart"
  | Mul (s, rd, rn, rm) ->
    let p = put (put (put (put 0 16 1 (Bool.to_int s)) 12 4 rd) 8 4 rn) 4 4 rm in
    Ok (w 3 (put p 20 5 0))
  | Mla (rd, rn, rm, ra) ->
    let p = put (put (put (put 0 16 4 rd) 12 4 rn) 8 4 rm) 4 4 ra in
    Ok (w 3 (put p 20 5 1))
  | Udiv (rd, rn, rm) ->
    Ok (w 3 (put (put (put (put 0 20 5 2) 12 4 rd) 8 4 rn) 4 4 rm))
  | Clz (rd, rm) -> Ok (w 3 (put (put (put 0 20 5 3) 4 4 rd) 0 4 rm))
  | Sxt (sz, rd, rm) ->
    Ok (w 3 (put (put (put (put 0 20 5 4) 8 2 (int_of_mem_size sz)) 4 4 rd) 0 4 rm))
  | Uxt (sz, rd, rm) ->
    Ok (w 3 (put (put (put (put 0 20 5 5) 8 2 (int_of_mem_size sz)) 4 4 rd) 0 4 rm))
  | Rev (rd, rm) -> Ok (w 3 (put (put (put 0 20 5 6) 4 4 rd) 0 4 rm))
  | Mrs rd -> Ok (w 3 (put (put 0 20 5 7) 0 4 rd))
  | Msr rd -> Ok (w 3 (put (put 0 20 5 8) 0 4 rd))
  | Svc n -> Ok (w 3 (put (put 0 20 5 9) 0 16 n))
  | Wfi -> Ok (w 3 (put 0 20 5 10))
  | Cps en -> Ok (w 3 (put (put 0 20 5 11) 0 1 (Bool.to_int en)))
  | Nop -> Ok (w 3 (put 0 20 5 14))
  | Udf n -> Ok (w 3 (put (put 0 20 5 15) 0 16 n))
  | Movw (rd, i) ->
    if i > 0xFFFF then err "v7m: movw imm 0x%x" i
    else Ok (w 5 (put (put (put 0 24 1 0) 20 4 rd) 0 16 i))
  | Movt (rd, i) ->
    if i > 0xFFFF then err "v7m: movt imm 0x%x" i
    else Ok (w 5 (put (put (put 0 24 1 1) 20 4 rd) 0 16 i))

(** [encode_exn i] is [encode i], raising [Invalid_argument] on failure. *)
let encode_exn i =
  match encode i with Ok w -> w | Error e -> invalid_arg e

(** [encodable i] — does [i] encode as-is (the DBT identity-rule test)? *)
let encodable i = Result.is_ok (encode i)

(** [decode w] decodes a V7M word.
    @raise Decode_error on malformed words. *)
let decode word : inst =
  let open Bits in
  let cond = cond_of_int (get word 28 4) in
  let p = word land 0x1FFFFFF in
  let op =
    match get word 25 3 with
    | 6 ->
      let o = dp_op_of_int (get p 21 4) in
      let s = get p 20 1 = 1 in
      Dp (o, s, get p 12 4, get p 16 4, Imm (decode_imm (get p 0 12)))
    | 2 ->
      let o = dp_op_of_int (get p 16 4) in
      let s = get p 15 1 = 1 in
      let kind = shift_kind_of_int (get p 12 2) in
      let amt = get p 20 5 in
      let rm = get p 0 4 in
      let op2 =
        if get p 14 1 = 1 then Sregreg (rm, kind, amt land 0xF)
        else if kind = LSL && amt = 0 then Reg rm
        else Sreg (rm, kind, amt)
      in
      Dp (o, s, get p 4 4, get p 8 4, op2)
    | 0 ->
      let mode = get p 12 2 in
      let rest = get p 0 12 in
      let idx, o =
        match mode with
        | 0 -> Offset, rest
        | 1 -> Offset, -rest
        | 2 -> Pre, (if rest land 0x100 <> 0 then -(rest land 0xFF) else rest land 0xFF)
        | _ -> Post, (if rest land 0x100 <> 0 then -(rest land 0xFF) else rest land 0xFF)
      in
      Mem { ld = get p 24 1 = 1; size = mem_size_of_int (get p 22 2);
            rt = get p 18 4; rn = get p 14 4; idx; off = Oimm o }
    | 4 ->
      Mem { ld = get p 24 1 = 1; size = mem_size_of_int (get p 22 2);
            rt = get p 18 4; rn = get p 14 4; idx = Offset;
            off = Oreg (get p 10 4, LSL, get p 8 2) }
    | 1 ->
      let regs = List.filter (fun r -> bit p r) (List.init 16 Fun.id) in
      let rn = get p 16 4 and wb = get p 20 1 = 1 in
      if get p 21 1 = 1 then Ldm (rn, wb, regs) else Stm (rn, wb, regs)
    | 7 ->
      (match get p 0 2 with
      | 0 -> B (Bits.sext (get p 2 23) 23 * 4)
      | 1 -> Bl (Bits.sext (get p 2 23) 23 * 4)
      | 2 -> Bx (get p 2 4)
      | _ -> Blx_r (get p 2 4))
    | 3 ->
      (match get p 20 5 with
      | 0 -> Mul (get p 16 1 = 1, get p 12 4, get p 8 4, get p 4 4)
      | 1 -> Mla (get p 16 4, get p 12 4, get p 8 4, get p 4 4)
      | 2 -> Udiv (get p 12 4, get p 8 4, get p 4 4)
      | 3 -> Clz (get p 4 4, get p 0 4)
      | 4 -> Sxt (mem_size_of_int (get p 8 2), get p 4 4, get p 0 4)
      | 5 -> Uxt (mem_size_of_int (get p 8 2), get p 4 4, get p 0 4)
      | 6 -> Rev (get p 4 4, get p 0 4)
      | 7 -> Mrs (get p 0 4)
      | 8 -> Msr (get p 0 4)
      | 9 -> Svc (get p 0 16)
      | 10 -> Wfi
      | 11 -> Cps (get p 0 1 = 1)
      | 14 -> Nop
      | 15 -> Udf (get p 0 16)
      | _ -> raise (Decode_error word))
    | 5 ->
      if get p 24 1 = 0 then Movw (get p 20 4, get p 0 16)
      else Movt (get p 20 4, get p 0 16)
    | _ -> raise (Decode_error word)
  in
  { cond; op }

(** [decode_total w] — total variant of {!decode}: malformed words
    become a defined [Udf] result instead of an exception. *)
let decode_total word =
  try decode word
  with Decode_error _ | Invalid_argument _ ->
    Types.at (Types.Udf (word land 0xFFFF))
