(** ARK's translation rules: guest (V7A) instruction -> host (V7M)
    instruction sequence (§5.1).

    Most instructions translate by {e identity} — the same AST re-encoded
    in the host encoding. The rest get a few "amendment" instructions
    using the dedicated scratch register r10 (whose guest counterpart is
    emulated in memory, §5.2) and, when an instruction itself touches
    guest r10, the dead register r12. Amendment instructions never set
    condition flags, preserving the flag-passthrough invariant; they
    carry the guest instruction's condition so a skipped guest
    instruction skips its amendments too.

    The classification these rules induce over {!Tk_isa.Spec} is exactly
    the paper's Table 3; [test_rules.ml] checks the two agree. *)

open Tk_isa
open Tk_isa.Types

exception Untranslatable of string

let untranslatable fmt = Printf.ksprintf (fun s -> raise (Untranslatable s)) fmt

(** The dedicated scratch: guest r10 is emulated at {!Layout.env_r10}. *)
let scratch = 10

(** Secondary scratch for instructions that themselves use r10 — "a dead
    register", r12 being the intra-procedure-call scratch the guest
    compiler leaves dead at amendment points. *)
let scratch2 = 12

let lo16 v = v land 0xFFFF
let hi16 v = (v lsr 16) land 0xFFFF

(** [movw_movt ~cond rd v] — 1-2 instructions loading [v] into [rd]. *)
let movw_movt ~cond rd value =
  let value = Bits.mask32 value in
  at ~cond (Movw (rd, lo16 value))
  :: (if hi16 value <> 0 then [ at ~cond (Movt (rd, hi16 value)) ] else [])

(* a rotation k such that the value is an 8-bit constant rotated right:
   enables the paper's mov+ror amendment pair (Table 4 G2) *)
let ror_candidate value =
  let value = Bits.mask32 value in
  let rec go k =
    if k > 31 then None
    else
      let b = Bits.rol32 value k in
      if b < 256 then Some (b, k) else go (k + 1)
  in
  if value < 256 then None else go 1

(** [materialize ~cond rd v] — shortest amendment sequence leaving
    constant [v] in [rd] without touching flags. *)
let materialize ~cond rd value =
  let value = Bits.mask32 value in
  if V7m.imm_ok value then [ at ~cond (Dp (MOV, false, rd, 0, Imm value)) ]
  else
    match ror_candidate value with
    | Some (b, k) ->
      [ at ~cond (Dp (MOV, false, rd, 0, Imm b));
        at ~cond (Dp (MOV, false, rd, 0, Sreg (rd, ROR, k))) ]
    | None -> movw_movt ~cond rd value

let reads_pc i = List.mem pc (regs_read i)

let uses_r10 i =
  List.mem scratch (regs_read i) || List.mem scratch (regs_written i)

(* substitute register [old] with [rep] in the operand positions of a
   non-control instruction (used to replace pc reads with a materialized
   constant) *)
let subst_reg ~old ~rep { cond; op } =
  let s r = if r = old then rep else r in
  let s2 = function
    | Imm v -> Imm v
    | Reg r -> Reg (s r)
    | Sreg (r, k, a) -> Sreg (s r, k, a)
    | Sregreg (r, k, rs) -> Sregreg (s r, k, s rs)
  in
  let op =
    match op with
    | Dp (o, fl, rd, rn, op2) -> Dp (o, fl, rd, s rn, s2 op2)
    | Mem m ->
      let off = match m.off with
        | Oimm _ as x -> x
        | Oreg (r, k, a) -> Oreg (s r, k, a)
      in
      Mem { m with rn = s m.rn; off }
    | other -> other
  in
  { cond; op }

(* one mov putting a (possibly shifted) register operand into [rd].
   [s] makes it a MOVS: needed when a flag-setting LOGICAL guest
   instruction has its shift split out — the shifter's carry-out must
   land in C, and the subsequent register-operand logical op leaves C
   untouched (the second flag caveat of §5.2) *)
let shift_to ?(s = false) ~cond rd = function
  | Reg r -> [ at ~cond (Dp (MOV, s, rd, 0, Reg r)) ]
  | Sreg (r, k, a) -> [ at ~cond (Dp (MOV, s, rd, 0, Sreg (r, k, a))) ]
  | Sregreg (r, k, rs) ->
    [ at ~cond (Dp (MOV, s, rd, 0, Sregreg (r, k, rs))) ]
  | Imm v -> materialize ~cond rd v

let is_logical = function
  | AND | ORR | EOR | BIC | MOV | MVN | TST | TEQ -> true
  | ADD | ADC | SUB | SBC | RSB | RSC | CMP | CMN -> false

(* Conditional multi-instruction sequences must evaluate the guest
   condition exactly ONCE, before the sequence: a flag-setting member
   (e.g. a conditional SUBS) would otherwise change the condition its own
   trailing amendments re-evaluate. We emit a skip branch with the
   inverse condition and run the body unconditionally — the Thumb-2
   branch-around equivalent of an IT block (see the §5.2 flag caveats). *)
let wrap_cond cond hosts =
  match hosts with
  | [] | [ _ ] -> hosts
  | _ when cond = AL -> hosts
  | _ ->
    let body = List.map (fun h -> { h with cond = AL }) hosts in
    at ~cond:(negate_cond cond) (B (4 * (List.length body + 1))) :: body

(** [legalize ~gpc i] — the host sequence for non-control-flow guest
    instruction [i] at guest address [gpc], with its Table 3 category.
    Conditional multi-instruction results are wrapped by {!wrap_cond}.
    @raise Untranslatable for instructions ARK sends to fallback. *)
let rec legalize ~gpc ({ cond; _ } as i) : Spec.category * inst list =
  let cat, hosts = legalize_unwrapped ~gpc i in
  (cat, wrap_cond cond hosts)

and legalize_unwrapped ~gpc ({ cond; _ } as i) : Spec.category * inst list =
  if uses_r10 i then begin
    (* guest r10 is emulated in memory: load it around the instruction,
       legalizing the core with the secondary scratch *)
    let cat, core = legalize_core ~gpc ~sc:scratch2 i in
    let prefix =
      movw_movt ~cond scratch Layout.env_r10
      @ [ at ~cond (Mem { ld = true; size = Word; rt = scratch; rn = scratch;
                          off = Oimm 0; idx = Offset }) ]
    in
    let suffix =
      if List.mem scratch (regs_written i) then
        movw_movt ~cond scratch2 Layout.env_r10
        @ [ at ~cond (Mem { ld = false; size = Word; rt = scratch;
                            rn = scratch2; off = Oimm 0; idx = Offset }) ]
      else []
    in
    (cat, prefix @ core @ suffix)
  end
  else legalize_core ~gpc ~sc:scratch i

and legalize_core ~gpc ~sc ({ cond; op } as i) : Spec.category * inst list =
  (* pc-relative data access: the guest pc is a link-time constant *)
  if reads_pc i then
    match op with
    | B _ | Bl _ | Bx _ | Blx_r _ -> untranslatable "control flow in legalize"
    | _ ->
      let pre = movw_movt ~cond sc (gpc + 8) in
      let cat, rest = legalize_core ~gpc ~sc (subst_reg ~old:pc ~rep:sc i) in
      ignore cat;
      (Spec.Const_constraint, pre @ rest)
  else
    match V7m.encode i with
    | Ok _ -> (Spec.Identity, [ i ])
    | Error _ -> (
      match op with
      | Dp (RSC, s, rd, rn, op2) ->
        (* rsc rd, rn, op2 = op2 - rn - !C; SBC with operands swapped *)
        (match op2 with
        | Reg r -> (Spec.No_counterpart, [ at ~cond (Dp (SBC, s, rd, r, Reg rn)) ])
        | _ ->
          ( Spec.No_counterpart,
            shift_to ~cond sc op2 @ [ at ~cond (Dp (SBC, s, rd, sc, Reg rn)) ] ))
      | Swp (rd, rm, rn) ->
        ( Spec.No_counterpart,
          [ at ~cond (Mem { ld = true; size = Word; rt = sc; rn;
                            off = Oimm 0; idx = Offset });
            at ~cond (Mem { ld = false; size = Word; rt = rm; rn;
                            off = Oimm 0; idx = Offset });
            at ~cond (Dp (MOV, false, rd, 0, Reg sc)) ] )
      | Irq_ret -> untranslatable "guest exception return (emulated early stage)"
      | Wfi -> untranslatable "wfi (only in the emulated scheduler)"
      | Cps _ -> untranslatable "interrupt masking (emulated spinlocks)"
      | Udf n -> untranslatable "udf #%d" n
      | Dp (o, s, rd, rn, Imm v) ->
        ( Spec.Const_constraint,
          materialize ~cond sc v @ [ at ~cond (Dp (o, s, rd, rn, Reg sc)) ] )
      | Dp (o, s, rd, rn, (Sregreg _ as op2)) ->
        let sets =
          s || (match o with CMP | CMN | TST | TEQ -> true | _ -> false)
        in
        ( Spec.Shift_mode,
          shift_to ~s:(sets && is_logical o) ~cond sc op2
          @ [ at ~cond (Dp (o, s, rd, rn, Reg sc)) ] )
      | Mem ({ off = Oimm o; idx = Offset; _ } as m) ->
        ( Spec.Const_constraint,
          materialize ~cond sc o
          @ [ at ~cond (Mem { m with off = Oreg (sc, LSL, 0) }) ] )
      | Mem ({ off = Oimm o; idx = Pre; _ } as m) ->
        if m.ld && m.rt = m.rn then untranslatable "writeback into base";
        ( Spec.Side_effect,
          materialize ~cond sc o
          @ [ at ~cond (Dp (ADD, false, m.rn, m.rn, Reg sc));
              at ~cond (Mem { m with off = Oimm 0; idx = Offset }) ] )
      | Mem ({ off = Oimm o; idx = Post; _ } as m) ->
        if m.ld && m.rt = m.rn then untranslatable "writeback into base";
        ( Spec.Side_effect,
          (at ~cond (Mem { m with off = Oimm 0; idx = Offset })
          :: materialize ~cond sc o)
          @ [ at ~cond (Dp (ADD, false, m.rn, m.rn, Reg sc)) ] )
      | Mem ({ off = Oreg (rm, k, a); idx = Offset; _ } as m) ->
        ( Spec.Shift_mode,
          shift_to ~cond sc (Sreg (rm, k, a))
          @ [ at ~cond (Mem { m with off = Oreg (sc, LSL, 0) }) ] )
      | Mem ({ off = Oreg (rm, k, a); idx = Pre; _ } as m) ->
        if m.ld && m.rt = m.rn then untranslatable "writeback into base";
        ( Spec.Side_effect,
          shift_to ~cond sc (Sreg (rm, k, a))
          @ [ at ~cond (Dp (ADD, false, m.rn, m.rn, Reg sc));
              at ~cond (Mem { m with off = Oimm 0; idx = Offset }) ] )
      | Mem ({ off = Oreg (rm, k, a); idx = Post; _ } as m) ->
        (* the paper's Table 4 G1: ldr r0, [r1], r2, lsr #4 *)
        if m.ld && m.rt = m.rn then untranslatable "writeback into base";
        let add =
          if k = LSL && a = 0 then
            [ at ~cond (Dp (ADD, false, m.rn, m.rn, Reg rm)) ]
          else
            shift_to ~cond sc (Sreg (rm, k, a))
            @ [ at ~cond (Dp (ADD, false, m.rn, m.rn, Reg sc)) ]
        in
        ( Spec.Side_effect,
          at ~cond (Mem { m with off = Oimm 0; idx = Offset }) :: add )
      | Dp _ | Movw _ | Movt _ | Mul _ | Mla _ | Udiv _ | Ldm _
      | Stm _ | B _ | Bl _ | Bx _ | Blx_r _ | Clz _ | Sxt _ | Uxt _ | Rev _
      | Mrs _ | Msr _ | Svc _ | Nop ->
        untranslatable "no rule for `%s'" (to_string i))

(** [legalize_nowrap ~gpc ~sc i] — like {!legalize} but without the
    guest-r10 emulation wrap, amending with scratch [sc]; used by the
    Mid engine, which owns r10 itself. The caller is responsible for
    condition wrapping across its whole per-instruction emission. *)
let legalize_nowrap ~gpc ~sc i = legalize_core ~gpc ~sc i

(** [subst_all ~old ~rep i] substitutes register [old] with [rep] in all
    positions (destination included) of a data-processing or memory
    instruction.
    @raise Untranslatable for other shapes *)
let subst_all ~old ~rep { cond; op } =
  let s r = if r = old then rep else r in
  let s2 = function
    | Imm v -> Imm v
    | Reg r -> Reg (s r)
    | Sreg (r, k, a) -> Sreg (s r, k, a)
    | Sregreg (r, k, rs) -> Sregreg (s r, k, s rs)
  in
  let op =
    match op with
    | Dp (o, fl, rd, rn, op2) -> Dp (o, fl, s rd, s rn, s2 op2)
    | Mem m ->
      let off = match m.off with
        | Oimm _ as x -> x
        | Oreg (r, k, a) -> Oreg (s r, k, a)
      in
      Mem { m with rt = s m.rt; rn = s m.rn; off }
    | _ -> untranslatable "subst_all: unsupported shape"
  in
  { cond; op }

(** [subst_wide ~old ~rep i] substitutes register [old] with [rep] in
    every register position of any register-bearing shape — destination,
    sources, shift amounts, LDM/STM lists, swap operands. Control-flow
    and register-free shapes pass through unchanged. Unlike
    {!subst_all} (whose narrow domain the Mid engine's sp-substitution
    relies on to reject shapes it cannot re-emulate), this never raises:
    the superblock planner uses it to re-home guest r10 into the host
    r12 slot across a whole trace, where any shape the ARK rules accept
    is fair game. *)
let subst_wide ~old ~rep { cond; op } =
  let s r = if r = old then rep else r in
  let s2 = function
    | Imm v -> Imm v
    | Reg r -> Reg (s r)
    | Sreg (r, k, a) -> Sreg (s r, k, a)
    | Sregreg (r, k, rs) -> Sregreg (s r, k, s rs)
  in
  let op =
    match op with
    | Dp (o, fl, rd, rn, op2) -> Dp (o, fl, s rd, s rn, s2 op2)
    | Movw (rd, v) -> Movw (s rd, v)
    | Movt (rd, v) -> Movt (s rd, v)
    | Mul (fl, rd, rn, rm) -> Mul (fl, s rd, s rn, s rm)
    | Mla (rd, rn, rm, ra) -> Mla (s rd, s rn, s rm, s ra)
    | Udiv (rd, rn, rm) -> Udiv (s rd, s rn, s rm)
    | Mem m ->
      let off =
        match m.off with
        | Oimm _ as x -> x
        | Oreg (r, k, a) -> Oreg (s r, k, a)
      in
      Mem { m with rt = s m.rt; rn = s m.rn; off }
    | Ldm (rn, wb, regs) -> Ldm (s rn, wb, List.map s regs)
    | Stm (rn, wb, regs) -> Stm (s rn, wb, List.map s regs)
    | Clz (rd, rm) -> Clz (s rd, s rm)
    | Sxt (sz, rd, rm) -> Sxt (sz, s rd, s rm)
    | Uxt (sz, rd, rm) -> Uxt (sz, s rd, s rm)
    | Rev (rd, rm) -> Rev (s rd, s rm)
    | Mrs rd -> Mrs (s rd)
    | Msr rs -> Msr (s rs)
    | Swp (rd, rm, rn) -> Swp (s rd, s rm, s rn)
    | ( B _ | Bl _ | Bx _ | Blx_r _ | Svc _ | Wfi | Cps _ | Irq_ret | Nop
      | Udf _ ) as other ->
      other
  in
  { cond; op }

(** [classify i] — Table 3 view: category and host-instruction count for
    one guest instruction (at a nominal address). *)
let classify i =
  let cat, hosts = legalize ~gpc:0x10010000 i in
  (cat, List.length hosts)

(** Sanity: every emitted host instruction must encode in V7M. *)
let check_encodable hosts =
  List.iter
    (fun h ->
      match V7m.encode h with
      | Ok _ -> ()
      | Error e -> untranslatable "amendment not encodable: %s (%s)" (to_string h) e)
    hosts
