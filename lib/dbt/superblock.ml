(** Superblock (trace) formation for the IR-less DBT tier above [Ark].

    A superblock is the concatenation of a hot chain of translation
    blocks linked by always-taken terminals (AL direct jumps and
    fallthrough tails). The planner re-translates each constituent
    block, drops the interior terminal sites — so execution falls
    straight through block boundaries with no dispatch, no patching, no
    per-block probe — and keeps every side exit and the final terminal
    as ordinary engine sites, which the existing dispatcher chains and
    patches exactly as it does for plain blocks.

    On top of the concatenation the planner applies the register-caching
    transform: ARK emulates guest r10 in the env block
    ([Layout.env_r10]) because host r10 is the scratch register, so
    every r10-using guest instruction pays a
    materialize-env-base + load (and possibly store) wrap. Inside a
    trace whose guest code never touches r12 (the secondary dead
    register), guest r10 is re-homed into host r12 for the whole trace:
    one reload at the head, a spill before every engine site or trace
    exit while the slot is dirty, and a reload after every resumable
    site. Between those boundaries r10-using instructions run as single
    substituted host instructions.

    The result is pure data ({!plan}) — Marshal-safe, so
    {!Cache_store} persists plans alongside plain blocks for
    warm-starting. *)

open Tk_isa.Types

exception Abort of string
(** chain not formable (link mismatch, too short); the engine abandons
    formation and keeps executing the plain blocks *)

type plan = {
  p_head : int;  (** guest address of the chain head *)
  p_blocks : (int * int) list;
      (** constituent (guest start, guest count), head first *)
  p_guest_count : int;  (** total guest instructions covered *)
  p_cached_r10 : bool;  (** r10-in-r12 caching applied *)
  p_emits : Translator.emit list;  (** the woven trace body *)
}

(* ------------------- r10-in-r12 caching sequences -------------------- *)

(* Both sequences are unconditional, flag-transparent, and clobber only
   host r10 — which holds no guest state between instructions in Ark
   mode (it is the amendment scratch; guest r10 lives in env_r10). *)

let env_slot ~ld =
  at
    (Mem
       { ld; size = Word; rt = Rules.scratch2; rn = Rules.scratch;
         off = Oimm 0; idx = Offset })

(** host r12 <- [env_r10] *)
let reload_seq =
  Rules.movw_movt ~cond:AL Rules.scratch Layout.env_r10 @ [ env_slot ~ld:true ]

(** [env_r10] <- host r12 *)
let spill_seq =
  Rules.movw_movt ~cond:AL Rules.scratch Layout.env_r10 @ [ env_slot ~ld:false ]

(* Sites after which execution resumes inside the trace (at site + 4):
   the cached slot must be reloaded because the engine — or whatever ran
   during the site (emulated service, hooked callee, translated call) —
   may have rewritten env_r10 and has certainly clobbered host r12. *)
let resumable = function
  | Translator.S_call _ | Translator.S_indirect _ | Translator.S_emu _
  | Translator.S_hook _ | Translator.S_guest_svc _ ->
    true
  | Translator.S_fallback { skippable; _ } -> skippable
  | Translator.S_jump _ | Translator.S_tail _ | Translator.S_exit_pc -> false

(* Identity-translated control transfers that leave the trace without a
   site (host lr / popped words hold host addresses — §5.3). The cached
   slot must be spilled first. Guest B never appears as E_inst (it
   becomes a jump site); an E_inst B is always a wrap_cond skip branch,
   internal to one legalized sequence, and must not be touched. *)
let is_trace_exit (i : inst) =
  match i.op with
  | Bx _ -> true
  | Ldm (_, _, regs) -> List.mem pc regs
  | Dp ((MOV | ADD | SUB), _, rd, _, _) -> rd = pc
  | _ -> false

(* Weave spill/reload around the concatenated emit stream with static
   may-be-dirty tracking. Insertion happens only at sites and trace
   exits — both standalone emits — never inside a wrap_cond body, so
   skip-branch offsets stay valid. Conditional writes mark dirty
   unconditionally (spilling a clean slot is harmless). *)
let weave emits =
  let out = ref [] in
  let push e = out := e :: !out in
  let push_insts l = List.iter (fun i -> push (Translator.E_inst i)) l in
  let dirty = ref false in
  let spill_if_dirty () =
    if !dirty then begin
      push_insts spill_seq;
      dirty := false
    end
  in
  List.iter
    (fun e ->
      match e with
      | Translator.E_site (_, info, _) ->
        spill_if_dirty ();
        push e;
        if resumable info then push_insts reload_seq
      | Translator.E_inst i ->
        if is_trace_exit i then begin
          spill_if_dirty ();
          push e
        end
        else begin
          push e;
          if List.mem Rules.scratch2 (regs_written i) then dirty := true
        end)
    emits;
  List.rev !out

(* --------------------------- the planner ----------------------------- *)

let uses r i = List.mem r (regs_read i) || List.mem r (regs_written i)

let rec split_last = function
  | [] -> raise (Abort "empty block")
  | [ x ] -> ([], x)
  | x :: tl ->
    let init, last = split_last tl in
    (x :: init, last)

(* Drop each interior block's terminal site after checking it links to
   the next constituent; keep the final block's terminal (side exits and
   the backedge stay ordinary sites for the dispatcher). *)
let rec stitch acc = function
  | [] -> raise (Abort "empty chain")
  | [ (last : Translator.block) ] -> List.rev_append acc last.b_emits
  | (b : Translator.block) :: (next :: _ as tl) ->
    let init, term = split_last b.b_emits in
    (match term with
    | Translator.E_site
        ( AL,
          (Translator.S_tail { target } | Translator.S_jump { target }),
          _ )
      when target = next.b_guest_start ->
      ()
    | _ -> raise (Abort "chain link mismatch"));
    stitch (List.rev_append init acc) tl

let plan ~read_guest ~classify_target ~block_limit ~chain =
  (match chain with [] | [ _ ] -> raise (Abort "chain too short") | _ -> ());
  let ctx legalize =
    { Translator.mode = Translator.Ark; classify_target; block_limit;
      read_guest; legalize }
  in
  let base = ctx Translator.default_legalize in
  let blocks0 = List.map (fun g -> Translator.translate base ~gpc:g) chain in
  let guests =
    List.concat_map
      (fun (b : Translator.block) ->
        List.init b.b_guest_count (fun i ->
            read_guest (b.b_guest_start + (4 * i))))
      blocks0
  in
  (* caching eligibility: the guest code must never touch r12 (it is the
     cache slot for the whole trace) and must actually use r10 *)
  let cached =
    (not (List.exists (uses Rules.scratch2) guests))
    && List.exists (uses Rules.scratch) guests
  in
  let blocks =
    if not cached then blocks0
    else begin
      let legalize ~gpc gi =
        if uses Rules.scratch gi then
          snd
            (Rules.legalize ~gpc
               (Rules.subst_wide ~old:Rules.scratch ~rep:Rules.scratch2 gi))
        else snd (Rules.legalize ~gpc gi)
      in
      let bs = List.map (fun g -> Translator.translate (ctx legalize) ~gpc:g) chain in
      (* the substitution is shape-preserving, so block boundaries must
         not move; abort rather than form a mismatched trace *)
      List.iter2
        (fun (a : Translator.block) (b : Translator.block) ->
          if a.b_guest_count <> b.b_guest_count then
            raise (Abort "caching changed block shape"))
        blocks0 bs;
      bs
    end
  in
  let body = stitch [] blocks in
  let body = if cached then weave body else body in
  let emits =
    if cached then
      List.map (fun i -> Translator.E_inst i) reload_seq @ body
    else body
  in
  let p_blocks =
    List.map
      (fun (b : Translator.block) -> (b.b_guest_start, b.b_guest_count))
      blocks
  in
  { p_head = List.hd chain;
    p_blocks;
    p_guest_count =
      List.fold_left (fun a (_, n) -> a + n) 0 p_blocks;
    p_cached_r10 = cached;
    p_emits = emits }
