(** Superblock (trace) planner for the IR-less DBT tier above [Ark]:
    concatenates a hot chain of translation blocks (interior terminal
    sites dropped, side exits kept), and re-homes the emulated guest r10
    into the dead host register r12 across the whole trace when the
    chain's guest code never touches r12. Produces pure Marshal-safe
    data so {!Cache_store} can persist plans for warm-starting. *)

open Tk_isa

exception Abort of string
(** chain not formable (link mismatch, shape change under caching, too
    short); the engine abandons formation and keeps the plain blocks *)

type plan = {
  p_head : int;  (** guest address of the chain head *)
  p_blocks : (int * int) list;
      (** constituent (guest start, guest count), head first *)
  p_guest_count : int;  (** total guest instructions covered *)
  p_cached_r10 : bool;  (** r10-in-r12 caching applied *)
  p_emits : Translator.emit list;  (** the woven trace body *)
}

val resumable : Translator.site_info -> bool
(** does execution re-enter the trace right after this site? (calls,
    emulated services, hooks, guest hypercalls, skippable fallback);
    exported for the trace certifier, which must model the same
    engine-resume contract the weaver assumes *)

val reload_seq : Types.inst list
(** host r12 <- [env_r10]; emitted at the trace head and after every
    resumable site *)

val spill_seq : Types.inst list
(** [env_r10] <- host r12; emitted before sites and trace exits while
    the slot may be dirty *)

val plan :
  read_guest:(int -> Types.inst) ->
  classify_target:(int -> Translator.target_class) ->
  block_limit:int ->
  chain:int list ->
  plan
(** [plan ~read_guest ~classify_target ~block_limit ~chain] builds a
    superblock over [chain] (guest block starts, head first, each linked
    to the next by an always-taken terminal).
    @raise Abort when the chain cannot be formed *)
