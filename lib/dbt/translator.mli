(** Translation-block construction for the three engine configurations
    (the Figure 6 comparison):

    - [Ark]: the paper's full design (§5) — identity rules + amendments,
      register/flag passthrough, direct stack and call/return;
    - [Mid]: baseline + register/flag passthrough only;
    - [Baseline]: the straight QEMU port — guest registers and flags in
      memory off host r11, every guest instruction expanded into
      load/compute/store. *)

open Tk_isa

type mode = Ark | Mid | Baseline

(** Engine trap points embedded in emitted code as host SVCs; the engine
    dispatches on the SVC's address. *)
type site_info =
  | S_call of { target : int; ret_guest : int }
      (** direct guest call; patched to a host BL once resolved *)
  | S_jump of { target : int }
      (** direct branch; patched to a host B<cond> *)
  | S_tail of { target : int }  (** block fallthrough chain *)
  | S_emu of { name : string; resume_guest : int }
      (** downcall into an emulated kernel service *)
  | S_hook of { name : string; resume_guest : int }
      (** observation hook; execution continues into the translated body *)
  | S_indirect of { reg : int; ret_guest : int }
      (** call through a register holding a guest address *)
  | S_exit_pc
      (** baseline/mid: the next guest pc is in [Layout.env_next_pc] *)
  | S_guest_svc of { n : int; resume_guest : int }
      (** forwarded guest hypercall *)
  | S_fallback of { reason : string; gpc : int; skippable : bool }
      (** cold path / untranslatable: migrate to the CPU at [gpc];
          [skippable] marks diagnostic calls drain mode may step over *)

type emit =
  | E_inst of Types.inst  (** encodable host instruction *)
  | E_site of Types.cond * site_info * int
      (** trap point: condition, dispatch info, SVC immediate (cosmetic) *)

type block = {
  b_guest_start : int;
  b_guest_count : int;  (** guest instructions consumed *)
  b_emits : emit list;
}

(** Classification of direct call targets, supplied by ARK from the
    resolved Table 2 ABI. *)
type target_class =
  | T_normal
  | T_emu of string
  | T_hook of string
  | T_cold of string

type ctx = {
  mode : mode;
  classify_target : int -> target_class;
  block_limit : int;  (** guest instructions per translation block *)
  read_guest : int -> Types.inst;  (** decode the guest word at address *)
  legalize : gpc:int -> Types.inst -> Types.inst list;
      (** ARK-mode legalization hook (normally {!default_legalize}); the
          superblock planner overrides it to re-home guest r10 into host
          r12 across a trace. Must raise {!Rules.Untranslatable} for
          fallback instructions. *)
}

val default_block_limit : int

val default_legalize : gpc:int -> Types.inst -> Types.inst list
(** [snd (Rules.legalize ~gpc i)] — the standard ARK legalization *)

val translate : ctx -> gpc:int -> block
(** [translate ctx ~gpc] builds one translation block starting at guest
    address [gpc]: instructions until a control transfer (or the block
    limit, then a tail-chain site), each conditional multi-emit sequence
    wrapped for once-only condition evaluation. *)
