(** The DBT execution engine running on the peripheral core.

    Owns the code cache (a region of shared DRAM), the guest->host block
    map, the site table (engine trap points emitted by {!Translator}),
    direct-branch patching ("chaining"), and the host execution loop —
    a V7M interpreter charged against the M3 core model, fetching emitted
    words through the M3's 32 KB cache (whose thrashing is the DRAM story
    of §7.3).

    The engine is policy-free: ARK (the [transkernel] library) supplies
    callbacks for emulated services, hooks, guest hypercalls, interrupt
    windows and fallback. Callbacks may raise to take control; the
    engine always leaves the context's host pc at the correct resume
    point before invoking them. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine

type callbacks = {
  mutable on_emu : string -> Exec.cpu -> unit;
  mutable on_hook : string -> Exec.cpu -> unit;
  mutable on_guest_svc : int -> Exec.cpu -> unit;
  mutable on_fallback :
    string -> guest_pc:int -> skippable:bool -> Exec.cpu -> unit;
      (** returning normally skips the cold call (drain mode) *)
  mutable on_irq_window : Exec.cpu -> unit;  (** at block starts *)
  mutable on_gic_access : write:bool -> int -> int -> int;
      (** MPU-fault emulation of the CPU interrupt controller (§4.2):
          [on_gic_access ~write addr value] returns the read value *)
}

exception Context_exit
exception Host_error of string

exception Quantum
(** The M3 clock reached [deadline_ns] (bounded-quantum lockstep): the
    run loop unwound at an instruction boundary with the context's pc
    saved, so a later [run] with the same cpu resumes exactly where it
    stopped. Never raised while [deadline_ns = max_int] (the default). *)

(** Distinguished not-yet-decoded marker for [host_decode] slots,
    compared by physical equality ([==]) and never executed. *)
let undecoded : inst = { cond = AL; op = Udf (-1) }

type t = {
  soc : Soc.t;
  mode : Translator.mode;
  tr : Tk_stats.Trace.t;  (** the platform flight recorder, cached *)
  mutable classify_target : int -> Translator.target_class;
  cb : callbacks;
  (* code cache *)
  mutable cursor : int;
  block_map : (int, int) Hashtbl.t;  (** guest block start -> host addr *)
  block_starts : (int, int) Hashtbl.t;  (** host block start -> guest start *)
  sites : (int, Translator.site_info) Hashtbl.t;  (** host addr -> site *)
  host_points : (int, int) Hashtbl.t;
      (** host addr -> guest addr, for every host point that can appear
          in a saved context or on the stack (call return sites, svc
          resume points, block starts) — the map fallback migration uses
          to rewrite code-cache addresses (§5.3) *)
  host_decode : inst array;
      (** dense pre-decoded code cache, indexed by
          [(addr - Soc.code_cache_base) / 4]: populated at [write_host]
          time (so patching a site re-decodes it in place), read by the
          hot loop as one array load. Empty slots hold the physically
          distinguished {!undecoded} sentinel rather than an option, so
          the per-instruction fetch is a pointer compare with no [Some]
          indirection. Host-side speed only — the simulated charges are
          unchanged. *)
  block_start : bool array;
      (** dense membership set mirroring [block_starts], same indexing
          as [host_decode] — the hot loop's IRQ-window probe *)
  mutable cur_pc : int;
  mutable pc_overridden : bool;
  mutable chain : bool;
      (** patch direct branch/call sites into host branches (on by
          default; the no-chaining ablation turns it off) *)
  mutable block_limit : int;  (** guest instructions per block *)
  mutable irq_dispatch : bool;  (** ARK spinlock emulation pauses this *)
  mutable env : Exec.env;
  mutable env_traced : Exec.env;
      (** same host environment with flight-recorder emission on memory
          accesses; the run loop selects it only while tracing is
          enabled, keeping the disabled path free of trace branches *)
  (* statistics *)
  mutable guest_translated : int;
  mutable host_emitted : int;
  mutable blocks : int;
  mutable engine_exits : int;
  mutable patches : int;
  mutable host_executed : int;
  mutable translate_cycles : int;
      (** simulated M3 cycles charged for translation / trace formation
          (the [cost_translate_per_guest] charges); a monotone
          attribution gauge for the span tracer *)
  (* hot-block profiler (host-side observability; simulated charges are
     unaffected whether it is on or off) *)
  mutable profile : bool;
  block_exec : int array;
      (** per-block execution count, same dense indexing as
          [block_start]; bumped when the hot loop enters a block start *)
  block_dispatch : (int, int) Hashtbl.t;
      (** host block start -> entries through the dispatch slow path
          (i.e. not via a chained direct branch) *)
  block_size : (int, int * int) Hashtbl.t;
      (** host block start -> (guest instruction count, host words) *)
  (* superblock tier (above Ark; cycle-accounted, not cycle-neutral) *)
  mutable superblock : bool;
      (** select the superblock run loop: trace formation over hot block
          chains, macro-op fused execution, whole-trace invalidation.
          Only meaningful with [mode = Ark]. *)
  mutable sb_threshold : int;
      (** block executions before its chain is considered for formation *)
  mutable sb_max_blocks : int;  (** max constituent blocks per trace *)
  block_succ : (int, int) Hashtbl.t;
      (** guest block start -> always-taken successor (AL tail/jump
          terminal) — the chain statistics trace formation walks *)
  formed : (int, unit) Hashtbl.t;
      (** guest heads already considered for formation (one-shot) *)
  fuse_next : bool array;
      (** same dense indexing as [host_decode]: host word at [i] issues
          fused with the word at [i+1] (Table 4 macro-op idioms) *)
  guest_cover : Bytes.t;
      (** per guest kernel-image word ([Soc.in_kernel_image] span):
          non-zero if some translation consumed it — the multi-block
          store-invalidation map *)
  mutable pending_flush : bool;
      (** a guest store hit covered code; the whole cache is evicted at
          the next block/trace boundary *)
  mutable store : Cache_store.t option;
      (** persistent translation cache (lazy warm replay) *)
  mutable traces_formed : int;
  mutable fusions_applied : int;
  mutable cache_warm_hits : int;
      (** deliberately {e not} a telemetry gauge: warm and cold runs must
          produce byte-identical manifests, and this is the one counter
          that differs between them *)
  mutable invalidations : int;  (** covered words hit by guest stores *)
  mutable flushes : int;  (** whole-cache evictions performed *)
  (* static-analysis products consumed by the tier (certify + absint) *)
  mutable sb_certify : (Superblock.plan -> bool) option;
      (** online trace certifier hook: a formed (or warm-loaded) plan is
          admitted only if the hook proves it equivalent to its
          constituent blocks; [None] (default) admits everything *)
  mutable certify_rejects : int;
      (** plans refused by [sb_certify] (warm or fresh) *)
  mutable smc_map : Bytes.t option;
      (** SMC-clean map, same per-guest-word indexing as [guest_cover]:
          non-zero marks code proven (by whole-image abstract
          interpretation) to never store into translated code ranges.
          Derived from the {e pristine} image, so a whole-cache flush —
          which only ever follows guest self-modification — drops it. *)
  probe_exempt : bool array;
      (** same dense host-word indexing as [host_decode]: translated
          code emitted entirely from SMC-clean guest words; its stores
          skip the cover-map probe *)
  mutable probes_elided : int;
      (** image-span stores that skipped the probe via [probe_exempt] *)
  mutable deadline_ns : int;
      (** bounded-quantum lockstep: the run loops raise {!Quantum} at
          the first resumable point once the M3 clock reaches this
          absolute time. [max_int] (default) = run to completion. The
          scheduler clears it around nested context runs (IRQ delivery,
          fallback draining), which must finish indivisibly. *)
  mutable span_cut : int;
      (** slot of an execution-burst span cut by {!Quantum} ([-1] =
          none); the next {!run} reopens that exact frame instead of
          opening a fresh one, so span telemetry — counts and durations
          both — is identical at every quantum, slicing included *)
}

(* cost knobs, in M3 cycles *)
(* the prediction-less M3 refills its pipeline on every taken branch,
   unlike the branch-predicting A9 — this is what makes control-dense
   drivers (USB) the worst DBT cases in Figure 6 *)
let cost_taken_branch = 3
let cost_translate_per_guest = 60
let cost_dispatch = 28  (* svc trap + table lookup *)
let cost_patch = 30
let cost_exit_pc = 150  (* map lookup on an engine exit *)
let cost_gic_fault = 150  (* MPU fault + controller emulation *)

let charge t cycles = Core.charge t.soc.Soc.m3 cycles

let dummy_cb () =
  { on_emu = (fun _ _ -> ());
    on_hook = (fun _ _ -> ());
    on_guest_svc = (fun _ _ -> ());
    on_fallback =
      (fun r ~guest_pc:_ ~skippable:_ _ -> raise (Host_error ("fallback: " ^ r)));
    on_irq_window = (fun _ -> ());
    on_gic_access = (fun ~write:_ _ _ -> 0) }

let in_cache t addr =
  addr >= Soc.code_cache_base && addr < t.cursor

let dummy_env : Exec.env =
  { Exec.load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
    svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
    undef = (fun _ _ -> ()) }

let rec create ~(soc : Soc.t) ~mode () =
  let tr = soc.Soc.trace in
  let t =
    { soc; mode; tr; classify_target = (fun _ -> Translator.T_normal);
      cb = dummy_cb (); cursor = Soc.code_cache_base;
      block_map = Hashtbl.create 1024; block_starts = Hashtbl.create 1024;
      sites = Hashtbl.create 1024; host_points = Hashtbl.create 4096;
      host_decode = Array.make (Soc.code_cache_size / 4) undecoded;
      block_start = Array.make (Soc.code_cache_size / 4) false;
      cur_pc = 0; pc_overridden = false;
      chain = true; block_limit = Translator.default_block_limit;
      irq_dispatch = true; env = dummy_env; env_traced = dummy_env;
      guest_translated = 0;
      host_emitted = 0; blocks = 0; engine_exits = 0; patches = 0;
      host_executed = 0; translate_cycles = 0; profile = false;
      block_exec = Array.make (Soc.code_cache_size / 4) 0;
      block_dispatch = Hashtbl.create 1024;
      block_size = Hashtbl.create 1024;
      superblock = false; sb_threshold = 16; sb_max_blocks = 8;
      block_succ = Hashtbl.create 1024; formed = Hashtbl.create 64;
      fuse_next = Array.make (Soc.code_cache_size / 4) false;
      guest_cover =
        Bytes.make ((Soc.page_pool_base - Soc.kernel_base) / 4) '\000';
      pending_flush = false; store = None;
      traces_formed = 0; fusions_applied = 0; cache_warm_hits = 0;
      invalidations = 0; flushes = 0;
      sb_certify = None; certify_rejects = 0; smc_map = None;
      probe_exempt = Array.make (Soc.code_cache_size / 4) false;
      probes_elided = 0; deadline_ns = max_int; span_cut = -1 }
  in
  let m3 = soc.Soc.m3 in
  let mem = soc.Soc.mem in
  (* the untraced closures are the seed's hot path, byte for byte: the
     run loop only hands [env_traced] to the executor while the flight
     recorder is enabled, so tracing costs nothing when it is off *)
  let load addr nbytes =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      t.cb.on_gic_access ~write:false addr 0
    end
    else if Mem.in_ram mem addr then begin
      Core.charge_stall m3 (Cache.access m3.Core.cache ~write:false addr);
      if nbytes = 4 then Mem.ram_read32 mem addr
      else Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  let store addr nbytes v =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      ignore (t.cb.on_gic_access ~write:true addr v)
    end
    else if Mem.in_ram mem addr then begin
      Core.charge_stall m3 (Cache.access m3.Core.cache ~write:true addr);
      if nbytes = 4 then Mem.ram_write32 mem addr v
      else Mem.ram_write mem addr nbytes v;
      (* superblock store-invalidation probe: host-only (no simulated
         charges), so the seed tiers' timelines are untouched. The
         image-span gate is inline so the overwhelmingly common
         data-region store pays two compares, not a call; the widened
         lower bound covers a store whose tail word straddles into the
         image. Stores issued from code proven SMC-clean (the executing
         word is marked in [probe_exempt]) skip the probe entirely —
         clean code cannot hit covered words by construction. *)
      if
        t.superblock
        && addr + nbytes > Soc.kernel_base
        && addr < Soc.page_pool_base
      then
        if
          Array.unsafe_get t.probe_exempt
            ((t.cur_pc - Soc.code_cache_base) asr 2)
        then t.probes_elided <- t.probes_elided + 1
        else sb_store_check t addr nbytes
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let load_traced addr nbytes =
    if Soc.is_cpu_private addr then begin
      (* gic-private accesses surface as controller events, not reads *)
      charge t cost_gic_fault;
      t.cb.on_gic_access ~write:false addr 0
    end
    else if Mem.in_ram mem addr then begin
      let stall = Cache.access m3.Core.cache ~write:false addr in
      Core.charge_stall m3 stall;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_read addr stall;
      if nbytes = 4 then Mem.ram_read32 mem addr
      else Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_read addr m3.Core.p.Core.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  let store_traced addr nbytes v =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      ignore (t.cb.on_gic_access ~write:true addr v)
    end
    else if Mem.in_ram mem addr then begin
      let stall = Cache.access m3.Core.cache ~write:true addr in
      Core.charge_stall m3 stall;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_write addr stall;
      if nbytes = 4 then Mem.ram_write32 mem addr v
      else Mem.ram_write mem addr nbytes v;
      if
        t.superblock
        && addr + nbytes > Soc.kernel_base
        && addr < Soc.page_pool_base
      then
        if
          Array.unsafe_get t.probe_exempt
            ((t.cur_pc - Soc.code_cache_base) asr 2)
        then t.probes_elided <- t.probes_elided + 1
        else sb_store_check t addr nbytes
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_write addr m3.Core.p.Core.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let svc cpu n = dispatch t cpu n in
  let wfi _ = raise (Host_error "host wfi in translated code") in
  let irq_ret _ = raise (Host_error "host exception return in translated code") in
  let undef _ i =
    raise (Host_error ("host undef: " ^ Types.to_string i))
  in
  t.env <- { Exec.load; store; svc; wfi; irq_ret; undef };
  t.env_traced <-
    { Exec.load = load_traced; store = store_traced; svc; wfi; irq_ret;
      undef };
  (* telemetry gauges: translation-cache occupancy and engine work.
     add_gauge replaces by name, so a second engine on the same SoC
     re-binds these columns instead of duplicating them. *)
  let gauge = Tk_stats.Timeseries.add_gauge soc.Soc.sampler in
  gauge "dbt_blocks" (fun () -> t.blocks);
  gauge "dbt_host_words" (fun () -> (t.cursor - Soc.code_cache_base) asr 2);
  gauge "dbt_patches" (fun () -> t.patches);
  gauge "dbt_exits" (fun () -> t.engine_exits);
  gauge "dbt_host_retired" (fun () -> t.host_executed);
  (* superblock counters (warm hits intentionally absent: warm and cold
     manifests must stay byte-identical) *)
  gauge "dbt_traces" (fun () -> t.traces_formed);
  gauge "dbt_fusions" (fun () -> t.fusions_applied);
  (* span-tracer attribution gauges ride on Span, not the sampler: the
     golden manifest digests pin the sampler's column set *)
  Tk_stats.Span.add_gauge soc.Soc.spans "translate_cycles" (fun () ->
      t.translate_cycles);
  t

(* --------------------- superblock store probe ------------------------ *)

(* A guest store into code some translation consumed: a single store can
   straddle two words, and the consumed span can belong to the middle of
   a formed trace, so the probe checks both words against the dense
   cover map and schedules a whole-cache eviction (consumed at the next
   block/trace boundary — the translated-code analogue of the
   interpreter's invalidate-on-store / take-effect-on-next-fetch). *)
and sb_check_word t w =
  if Soc.in_kernel_image w
     && Bytes.unsafe_get t.guest_cover ((w - Soc.kernel_base) asr 2) <> '\000'
  then begin
    t.pending_flush <- true;
    t.invalidations <- t.invalidations + 1;
    if t.tr.Tk_stats.Trace.enabled then
      Tk_stats.Trace.emit t.tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_invalidate w 0
  end

and sb_store_check t addr nbytes =
  let w0 = addr land lnot 3 in
  sb_check_word t w0;
  let w1 = (addr + nbytes - 1) land lnot 3 in
  if w1 <> w0 then sb_check_word t w1

(* ------------------------- code emission ---------------------------- *)

and write_host t addr (i : inst) =
  let w = V7m.encode_exn i in
  (* emitting through the M3 cache: translation produces real traffic *)
  Core.charge t.soc.Soc.m3
    (Cache.access t.soc.Soc.m3.Core.cache ~write:true addr);
  Mem.ram_write32 t.soc.Soc.mem addr w;
  (* pre-decode the freshly written word; a word that does not decode
     (impossible for encode_exn output, but kept equivalent to the lazy
     seed path) is left for decode_host to report at execution time *)
  t.host_decode.((addr - Soc.code_cache_base) asr 2) <-
    (match V7m.decode w with i -> i | exception _ -> undecoded)

and emit_block t (b : Translator.block) =
  let host_start = t.cursor in
  List.iter
    (fun e ->
      let a = t.cursor in
      (match e with
      | Translator.E_inst i -> write_host t a i
      | Translator.E_site (cond, info, code) ->
        write_host t a (at ~cond (Svc code));
        Hashtbl.replace t.sites a info;
        (match info with
        | Translator.S_call { ret_guest; _ }
        | Translator.S_indirect { ret_guest; _ } ->
          Hashtbl.replace t.host_points (a + 4) ret_guest
        | Translator.S_emu { resume_guest; _ }
        | Translator.S_hook { resume_guest; _ }
        | Translator.S_guest_svc { resume_guest; _ } ->
          Hashtbl.replace t.host_points (a + 4) resume_guest
        | Translator.S_jump _ | Translator.S_tail _ | Translator.S_exit_pc
        | Translator.S_fallback _ -> ()));
      t.cursor <- t.cursor + 4;
      t.host_emitted <- t.host_emitted + 1)
    b.Translator.b_emits;
  if t.cursor >= Soc.code_cache_base + Soc.code_cache_size then
    raise (Host_error "code cache full");
  host_start

and read_guest t a =
  if not (Mem.in_ram t.soc.Soc.mem a) then
    raise (Host_error (Printf.sprintf "guest fetch outside RAM: 0x%x" a));
  V7a.decode (Mem.ram_read t.soc.Soc.mem a 4)

and translate_block t gpc =
  match Hashtbl.find_opt t.block_map gpc with
  | Some h -> h
  | None ->
    (* lazy warm replay: the store is consulted at the very instant a
       cold run would translate, and the simulated translation cost is
       still charged, so the warm timeline (and manifest digest) is
       byte-identical — only the host-side translation work is skipped *)
    let warm =
      match t.store with
      | None -> None
      | Some st -> Cache_store.find_block st gpc
    in
    let b =
      match warm with
      | Some b ->
        t.cache_warm_hits <- t.cache_warm_hits + 1;
        b
      | None ->
        let ctx =
          { Translator.mode = t.mode; classify_target = t.classify_target;
            block_limit = t.block_limit; read_guest = read_guest t;
            legalize = Translator.default_legalize }
        in
        let b = Translator.translate ctx ~gpc in
        (match t.store with
        | Some st -> Cache_store.record_block st gpc b
        | None -> ());
        b
    in
    (* span: the translation burst covers the simulated translation
       charge; back-to-back misses coalesce into one burst span *)
    let sp = t.soc.Soc.spans in
    let stok =
      if sp.Tk_stats.Span.enabled then
        Tk_stats.Span.enter_coalesced sp ~core:Tk_stats.Trace.core_m3
          Tk_stats.Span.sk_dbt_translate b.Translator.b_guest_count
      else 0
    in
    t.translate_cycles <-
      t.translate_cycles + (cost_translate_per_guest * b.Translator.b_guest_count);
    charge t (cost_translate_per_guest * b.Translator.b_guest_count);
    let h = emit_block t b in
    Hashtbl.replace t.block_map gpc h;
    Hashtbl.replace t.block_starts h gpc;
    t.block_start.((h - Soc.code_cache_base) asr 2) <- true;
    Hashtbl.replace t.host_points h gpc;
    t.blocks <- t.blocks + 1;
    t.guest_translated <- t.guest_translated + b.Translator.b_guest_count;
    Hashtbl.replace t.block_size h
      (b.Translator.b_guest_count, (t.cursor - h) asr 2);
    if t.superblock then begin
      sb_mark_cover t gpc b.Translator.b_guest_count;
      sb_record_succ t b;
      sb_mark_fusions t h t.cursor;
      if sb_span_clean t gpc b.Translator.b_guest_count then
        sb_mark_exempt t h t.cursor
    end;
    if t.tr.Tk_stats.Trace.enabled then
      Tk_stats.Trace.emit t.tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_translate gpc b.Translator.b_guest_count;
    if sp.Tk_stats.Span.enabled then Tk_stats.Span.leave sp stok;
    h

(* --------------------- superblock bookkeeping ----------------------- *)

and sb_mark_cover t gpc count =
  for k = 0 to count - 1 do
    let a = gpc + (4 * k) in
    if Soc.in_kernel_image a then
      Bytes.unsafe_set t.guest_cover ((a - Soc.kernel_base) asr 2) '\001'
  done

(* is every guest word of the span proven SMC-clean? (vacuously false
   with no map installed, and for any word outside the image span) *)
and sb_span_clean t gpc count =
  match t.smc_map with
  | None -> false
  | Some map ->
    let clean = ref true in
    for k = 0 to count - 1 do
      let a = gpc + (4 * k) in
      if
        not
          (Soc.in_kernel_image a
          && Bytes.unsafe_get map ((a - Soc.kernel_base) asr 2) <> '\000')
      then clean := false
    done;
    !clean

and sb_mark_exempt t lo hi =
  Array.fill t.probe_exempt
    ((lo - Soc.code_cache_base) asr 2)
    ((hi - lo) asr 2) true

(* chain statistics: a block whose terminal is an always-taken direct
   transfer has a statically-known successor *)
and sb_record_succ t (b : Translator.block) =
  match List.rev b.Translator.b_emits with
  | Translator.E_site
      (AL, (Translator.S_tail { target } | Translator.S_jump { target }), _)
    :: _ ->
    Hashtbl.replace t.block_succ b.Translator.b_guest_start target
  | _ -> ()

(* Table 4 macro-op idioms over the emitted host stream: compare +
   conditional control, load + dependent ALU, movw + movt. The second
   element of a marked pair executes in the same issue slot as the
   first: it keeps its instruction count and cache traffic but the base
   CPI is waived (see the superblock run loop). Pair shapes survive
   patching — the first element is never a site, and a patched site only
   turns an SVC into a branch, which stays in the control class. *)
and sb_pair_fusable (a : inst) (b : inst) =
  match a.op, b.op with
  | Dp ((CMP | CMN | TST | TEQ), _, _, _, _), (B _ | Bl _ | Svc _) -> true
  | Mem { ld = true; rt; _ }, Dp (_, _, rd, rn, op2) when rt <> pc && rd <> pc
    ->
    rn = rt
    || (match op2 with
       | Reg r | Sreg (r, _, _) -> r = rt
       | Sregreg (r, _, rs) -> r = rt || rs = rt
       | Imm _ -> false)
  | Movw (rd, _), Movt (rd', _) -> rd = rd' && rd <> pc
  | _ -> false

and sb_mark_fusions t lo hi =
  let i0 = (lo - Soc.code_cache_base) asr 2 in
  let i1 = (hi - Soc.code_cache_base) asr 2 in
  let k = ref i0 in
  (* greedy non-overlapping pairing, left to right *)
  while !k < i1 - 1 do
    let fusable =
      let a = Array.unsafe_get t.host_decode !k in
      let b = Array.unsafe_get t.host_decode (!k + 1) in
      a != undecoded && b != undecoded && sb_pair_fusable a b
    in
    if fusable then begin
      Array.unsafe_set t.fuse_next !k true;
      t.fusions_applied <- t.fusions_applied + 1;
      k := !k + 2
    end
    else incr k
  done

(* whole-cache eviction: the translated-code invalidation granularity.
   Blocks, traces, chain links, fusion marks and the cover map all go;
   counters survive. The persistent store is dropped too — a
   self-modified image no longer matches its on-disk key. *)
and flush_cache t =
  t.cursor <- Soc.code_cache_base;
  Hashtbl.reset t.block_map;
  Hashtbl.reset t.block_starts;
  Hashtbl.reset t.sites;
  Hashtbl.reset t.host_points;
  Hashtbl.reset t.block_dispatch;
  Hashtbl.reset t.block_size;
  Hashtbl.reset t.block_succ;
  Hashtbl.reset t.formed;
  Array.fill t.host_decode 0 (Array.length t.host_decode) undecoded;
  Array.fill t.block_start 0 (Array.length t.block_start) false;
  Array.fill t.block_exec 0 (Array.length t.block_exec) 0;
  Array.fill t.fuse_next 0 (Array.length t.fuse_next) false;
  Array.fill t.probe_exempt 0 (Array.length t.probe_exempt) false;
  Bytes.fill t.guest_cover 0 (Bytes.length t.guest_cover) '\000';
  t.pending_flush <- false;
  t.flushes <- t.flushes + 1;
  t.store <- None;
  (* the clean map was proven over the pristine image; after guest
     self-modification it no longer describes what will be fetched *)
  t.smc_map <- None

(* ----------------------- superblock formation ----------------------- *)

(* walk the always-taken chain from [head] through already-translated,
   distinct blocks *)
and sb_chain_of t head =
  let chain = ref [ head ] and len = ref 1 in
  let cur = ref head in
  (try
     while !len < t.sb_max_blocks do
       match Hashtbl.find_opt t.block_succ !cur with
       | Some next
         when Hashtbl.mem t.block_map next && not (List.mem next !chain) ->
         chain := next :: !chain;
         incr len;
         cur := next
       | _ -> raise Exit
     done
   with Exit -> ());
  List.rev !chain

and sb_try_form t head =
  let chain = sb_chain_of t head in
  if List.length chain >= 2 then begin
    let certified p =
      match t.sb_certify with
      | None -> true
      | Some ok ->
        ok p
        ||
        (t.certify_rejects <- t.certify_rejects + 1;
         false)
    in
    match
      let warm =
        match t.store with
        | None -> None
        | Some st -> Cache_store.find_trace st head
      in
      let fresh () =
        let p =
          Superblock.plan ~read_guest:(read_guest t)
            ~classify_target:t.classify_target ~block_limit:t.block_limit
            ~chain
        in
        (* a fresh plan failing certification aborts formation outright:
           no charge, no emission, and [formed] one-shots the head so
           the rejected chain is never retried *)
        if not (certified p) then raise (Superblock.Abort "certify");
        (match t.store with
        | Some st -> Cache_store.record_trace st p
        | None -> ());
        p
      in
      match warm with
      | Some p when List.map fst p.Superblock.p_blocks = chain ->
        if certified p then begin
          t.cache_warm_hits <- t.cache_warm_hits + 1;
          p
        end
        else begin
          (* warm plan refused: evict it from the store and re-derive
             from the guest stream (cache_store certificate gating) *)
          (match t.store with
          | Some st -> Hashtbl.remove st.Cache_store.traces head
          | None -> ());
          fresh ()
        end
      | _ -> fresh ()
    with
    | exception Superblock.Abort _ -> ()
    | p ->
      (* forming re-derives every constituent's translation *)
      let sp = t.soc.Soc.spans in
      let stok =
        if sp.Tk_stats.Span.enabled then
          Tk_stats.Span.enter_coalesced sp ~core:Tk_stats.Trace.core_m3
            Tk_stats.Span.sk_dbt_form p.Superblock.p_guest_count
        else 0
      in
      t.translate_cycles <-
        t.translate_cycles
        + (cost_translate_per_guest * p.Superblock.p_guest_count);
      charge t (cost_translate_per_guest * p.Superblock.p_guest_count);
      let b =
        { Translator.b_guest_start = head;
          b_guest_count = p.Superblock.p_guest_count;
          b_emits = p.Superblock.p_emits }
      in
      let old_h = Hashtbl.find t.block_map head in
      let h = emit_block t b in
      Hashtbl.replace t.block_map head h;
      Hashtbl.replace t.block_starts h head;
      t.block_start.((h - Soc.code_cache_base) asr 2) <- true;
      Hashtbl.replace t.host_points h head;
      Hashtbl.replace t.block_size h
        (p.Superblock.p_guest_count, (t.cursor - h) asr 2);
      t.traces_formed <- t.traces_formed + 1;
      sb_mark_fusions t h t.cursor;
      if
        List.for_all
          (fun (g, c) -> sb_span_clean t g c)
          p.Superblock.p_blocks
      then sb_mark_exempt t h t.cursor;
      (* redirect the old head into the trace: its first word becomes a
         branch, so chained predecessors and saved resume points all
         land in the trace from now on *)
      patch t old_h (at (B (h - old_h)));
      if t.tr.Tk_stats.Trace.enabled then
        Tk_stats.Trace.emit t.tr ~core:Tk_stats.Trace.core_m3
          Tk_stats.Trace.ev_form head p.Superblock.p_guest_count;
      if sp.Tk_stats.Span.enabled then Tk_stats.Span.leave sp stok
  end

(* Block-boundary work for the superblock run loop, out of line so the
   loop body stays register-tight: consume a pending whole-cache flush
   (landing on the retranslated head — itself a block start, hence the
   self-recursion), bump the execution count that feeds the formation
   trigger, fire one-shot trace formation at the threshold, and open
   the IRQ window. Returns the host pc to execute at (different from
   [pcv] only after a flush redirect). *)
and sb_boundary t (cpu : Exec.cpu) pcv idx =
  if t.pending_flush then begin
    (* read the guest mapping before the flush wipes it *)
    let gpc = Hashtbl.find t.block_starts pcv in
    flush_cache t;
    let h = translate_block t gpc in
    cpu.Exec.r.(pc) <- h;
    sb_boundary t cpu h ((h - Soc.code_cache_base) asr 2)
  end
  else begin
    let c = Array.unsafe_get t.block_exec idx + 1 in
    Array.unsafe_set t.block_exec idx c;
    if c = t.sb_threshold then begin
      let gpc = Hashtbl.find t.block_starts pcv in
      if not (Hashtbl.mem t.formed gpc) then begin
        Hashtbl.replace t.formed gpc ();
        sb_try_form t gpc
        (* no manual redirect: the old head's first word is now a
           branch into the trace, picked up by this very fetch *)
      end
    end;
    if t.irq_dispatch then t.cb.on_irq_window cpu;
    pcv
  end

(* patch a resolved direct branch/call site *)
and patch t site_addr (i : inst) =
  write_host t site_addr i;
  Hashtbl.remove t.sites site_addr;
  t.patches <- t.patches + 1;
  charge t cost_patch;
  if t.tr.Tk_stats.Trace.enabled then
    Tk_stats.Trace.emit t.tr ~core:Tk_stats.Trace.core_m3
      Tk_stats.Trace.ev_chain site_addr 0

and set_pc t (cpu : Exec.cpu) v =
  cpu.Exec.r.(pc) <- v;
  t.pc_overridden <- true

(* jump to a translated block through the dispatch slow path; the
   profiler counts these to compute each block's chain hit rate *)
and goto_block t (cpu : Exec.cpu) h =
  if t.profile then
    Hashtbl.replace t.block_dispatch h
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.block_dispatch h));
  set_pc t cpu h

(* --------------------------- dispatch ------------------------------- *)

and dispatch t cpu _code =
  charge t cost_dispatch;
  t.engine_exits <- t.engine_exits + 1;
  let site_addr = t.cur_pc in
  match Hashtbl.find_opt t.sites site_addr with
  | None -> raise (Host_error (Printf.sprintf "stray svc at 0x%x" site_addr))
  | Some info -> (
    match info with
    | Translator.S_call { target; ret_guest = _ } ->
      let h = translate_block t target in
      let off = h - site_addr in
      let cond = (decode_host t site_addr).cond in
      if t.chain && Result.is_ok (V7m.encode (at ~cond (Bl off))) then
        patch t site_addr (at ~cond (Bl off));
      cpu.Exec.r.(lr) <- site_addr + 4;
      goto_block t cpu h
    | Translator.S_jump { target } ->
      let h = translate_block t target in
      let cond = (decode_host t site_addr).cond in
      let off = h - site_addr in
      if t.chain && Result.is_ok (V7m.encode (at ~cond (B off))) then
        patch t site_addr (at ~cond (B off));
      goto_block t cpu h
    | Translator.S_tail { target } ->
      let h = translate_block t target in
      let off = h - site_addr in
      if t.chain && Result.is_ok (V7m.encode (at (B off))) then
        patch t site_addr (at (B off));
      goto_block t cpu h
    | Translator.S_emu { name; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_emu name cpu
    | Translator.S_hook { name; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_hook name cpu
    | Translator.S_indirect { reg; ret_guest = _ } ->
      charge t cost_exit_pc;
      let target = guest_reg t cpu reg in
      let h = translate_block t target in
      cpu.Exec.r.(lr) <- site_addr + 4;
      goto_block t cpu h
    | Translator.S_exit_pc ->
      charge t cost_exit_pc;
      let gtarget = Mem.ram_read t.soc.Soc.mem Layout.env_next_pc 4 in
      if gtarget = Layout.exit_magic then begin
        set_pc t cpu Layout.exit_magic
      end
      else begin
        let h = translate_block t gtarget in
        goto_block t cpu h
      end
    | Translator.S_guest_svc { n; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_guest_svc n cpu
    | Translator.S_fallback { reason; gpc; skippable } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_fallback reason ~guest_pc:gpc ~skippable cpu)

and decode_host t addr =
  let cached = t.host_decode.((addr - Soc.code_cache_base) asr 2) in
  if cached != undecoded then cached
  else begin
    let w = Mem.ram_read32 t.soc.Soc.mem addr in
    let i =
      try V7m.decode w
      with V7m.Decode_error _ | Invalid_argument _ ->
        raise (Host_error (Printf.sprintf "bad host fetch at 0x%x (0x%x)" addr w))
    in
    t.host_decode.((addr - Soc.code_cache_base) asr 2) <- i;
    i
  end

(* -------------------- guest-state accessors ------------------------- *)

(** [guest_reg t cpu i] reads guest register [i] for the current mode
    (pass-through, scratch-emulated or env-emulated). *)
and guest_reg t (cpu : Exec.cpu) i =
  match t.mode with
  | Translator.Ark ->
    if i = Rules.scratch then Mem.ram_read32 t.soc.Soc.mem Layout.env_r10
    else cpu.Exec.r.(i)
  | Translator.Mid ->
    if i = 10 || i = 11 || i = sp || i = lr then
      Mem.ram_read32 t.soc.Soc.mem (Layout.env_reg i)
    else cpu.Exec.r.(i)
  | Translator.Baseline -> Mem.ram_read32 t.soc.Soc.mem (Layout.env_reg i)

let set_guest_reg t (cpu : Exec.cpu) i v =
  match t.mode with
  | Translator.Ark ->
    if i = Rules.scratch then Mem.ram_write32 t.soc.Soc.mem Layout.env_r10 v
    else cpu.Exec.r.(i) <- Bits.mask32 v
  | Translator.Mid ->
    if i = 10 || i = 11 || i = sp || i = lr then
      Mem.ram_write32 t.soc.Soc.mem (Layout.env_reg i) v
    else cpu.Exec.r.(i) <- Bits.mask32 v
  | Translator.Baseline ->
    Mem.ram_write32 t.soc.Soc.mem (Layout.env_reg i) v

(* ----------------------- SMC-clean region map ------------------------ *)

(** [set_smc_map t ranges] installs the SMC-clean map from proven guest
    address intervals [\[lo, hi)] (kernel-image addresses, word-aligned):
    translations emitted entirely from clean words skip the per-word
    store-invalidation probe. The map describes the pristine image — it
    is dropped (with the whole cache) if the guest self-modifies. *)
let set_smc_map t ranges =
  let map = Bytes.make ((Soc.page_pool_base - Soc.kernel_base) / 4) '\000' in
  List.iter
    (fun (lo, hi) ->
      let lo = max lo Soc.kernel_base and hi = min hi Soc.page_pool_base in
      for k = (lo - Soc.kernel_base) asr 2 to ((hi - Soc.kernel_base) asr 2) - 1
      do
        Bytes.unsafe_set map k '\001'
      done)
    ranges;
  t.smc_map <- Some map

(* ----------------------------- run ---------------------------------- *)

(** [run t cpu ~fuel] executes translated code until the context returns
    to {!Layout.exit_magic} (raising {!Context_exit}) or a callback
    raises. The [cpu] is mutated in place; callbacks observe a host pc
    that is always a valid resume point. *)
let run_plain t (cpu : Exec.cpu) ~fuel =
  let m3 = t.soc.Soc.m3 in
  let tr = t.tr in
  (* tracing never toggles while translated code is executing, so the
     decision is hoisted: the disabled loop tests only an immutable
     register-resident bool and runs the seed's untraced environment *)
  let traced = tr.Tk_stats.Trace.enabled in
  let env = if traced then t.env_traced else t.env in
  (* telemetry sampler: same hoisting discipline *)
  let ts = t.soc.Soc.sampler in
  let sampling = ts.Tk_stats.Timeseries.enabled in
  let r = cpu.Exec.r in
  let clock = m3.Core.clock in
  let n = ref 0 in
  while true do
    if !n >= fuel then raise (Host_error "DBT fuel exhausted");
    incr n;
    if clock.Clock.now >= t.deadline_ns then raise Quantum;
    if sampling then Tk_stats.Timeseries.tick ts;
    let pcv = Array.unsafe_get r pc in
    if pcv = Layout.exit_magic then raise Context_exit;
    if not (in_cache t pcv) then
      raise
        (Host_error (Printf.sprintf "host pc outside code cache: 0x%x" pcv));
    let idx = (pcv - Soc.code_cache_base) asr 2 in
    if Array.unsafe_get t.block_start idx then begin
      if t.profile then
        Array.unsafe_set t.block_exec idx
          (Array.unsafe_get t.block_exec idx + 1);
      if t.irq_dispatch then t.cb.on_irq_window cpu
    end;
    let i =
      let c = Array.unsafe_get t.host_decode idx in
      if c != undecoded then c else decode_host t pcv
    in
    t.cur_pc <- pcv;
    t.pc_overridden <- false;
    t.host_executed <- t.host_executed + 1;
    Core.retire m3 pcv;
    if traced then
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_retire pcv 0;
    match Exec.step cpu env ~addr:pcv i with
    | Exec.Next -> if not t.pc_overridden then Array.unsafe_set r pc (pcv + 4)
    | Exec.Branched -> Core.charge m3 cost_taken_branch
  done

(* The superblock tier's run loop. Differences from [run_plain]:

   - the block-boundary probe counts executions unconditionally (the
     formation trigger needs chain statistics even without the
     profiler) and fires one-shot trace formation when a block's count
     reaches [sb_threshold];
   - a pending whole-cache flush (self-modifying guest) is consumed at
     the probe, before this block's fetch — the next-boundary semantics
     matching the interpreter's next-fetch granularity;
   - a host word marked in [fuse_next] executes its successor in the
     same iteration as a fused macro-op: the partner keeps its
     instruction count and its cache traffic, but its base CPI charge
     is waived;
   - the boundary work lives out of line in {!sb_boundary} and the
     per-instruction retire accounting ([Core.retire] and its
     [charge]/[Clock.advance] call chain) is inlined, keeping the loop
     body allocation-free and register-tight;
   - the loop-head probes (exit sentinel, cache bounds, block start)
     only run after a control transfer or a callback pc override:
     translated blocks always end in an unconditional terminal, so
     straight-line fall-through can never reach the exit sentinel,
     leave the cache, or cross into another block's head.

   Inside a formed trace there are no block starts, so interior
   boundaries pay no probe, no dispatch and no IRQ window — interrupt
   latency is bounded by the trace length (sb_max_blocks * block_limit
   guest instructions). *)
let run_superblock t (cpu : Exec.cpu) ~fuel =
  let m3 = t.soc.Soc.m3 in
  let cache = m3.Core.cache in
  let tags = cache.Cache.tags in
  let line_bits = cache.Cache.line_bits in
  let set_mask = cache.Cache.set_mask in
  let clock = m3.Core.clock in
  let cpi_num = m3.Core.p.Core.cpi_num in
  let cpi_den = m3.Core.p.Core.cpi_den in
  let tr = t.tr in
  let traced = tr.Tk_stats.Trace.enabled in
  let env = if traced then t.env_traced else t.env in
  let ts = t.soc.Soc.sampler in
  let sampling = ts.Tk_stats.Timeseries.enabled in
  let r = cpu.Exec.r in
  let n = ref 0 in
  let cur = ref 0 in
  let cur_idx = ref 0 in
  let probe = ref true in
  while true do
    if !n >= fuel then raise (Host_error "DBT fuel exhausted");
    incr n;
    (* quantum check before the sampler tick so an unwound iteration
       leaves no trace: the resumed iteration re-runs from here *)
    if !probe && clock.Clock.now >= t.deadline_ns then raise Quantum;
    if sampling then Tk_stats.Timeseries.tick ts;
    if !probe then begin
      let v = Array.unsafe_get r pc in
      if v = Layout.exit_magic then raise Context_exit;
      if not (in_cache t v) then
        raise
          (Host_error (Printf.sprintf "host pc outside code cache: 0x%x" v));
      let i0 = (v - Soc.code_cache_base) asr 2 in
      let v' =
        if Array.unsafe_get t.block_start i0 then sb_boundary t cpu v i0
        else v
      in
      cur := v';
      cur_idx := (if v' = v then i0 else (v' - Soc.code_cache_base) asr 2);
      probe := false
    end;
    let pcv = !cur and idx = !cur_idx in
    let i =
      let c = Array.unsafe_get t.host_decode idx in
      if c != undecoded then c else decode_host t pcv
    in
    t.cur_pc <- pcv;
    t.pc_overridden <- false;
    t.host_executed <- t.host_executed + 1;
    (* [Core.retire m3 pcv], inlined with its charge/advance call chain
       and the CPI carry resolution — side effects and cycle arithmetic
       identical (count, I-fetch through the cache, then base CPI +
       stall booked to the clock) *)
    m3.Core.instructions <- m3.Core.instructions + 1;
    (* I-fetch hit fast path of [Cache.access ~write:false], inlined; a
       tag mismatch falls back to the full call, which re-runs the
       (still-missing) lookup and books the miss identically *)
    let stall =
      let line = pcv lsr line_bits in
      let set =
        if set_mask >= 0 then line land set_mask
        else line mod cache.Cache.nsets
      in
      if Array.unsafe_get tags set = line then begin
        cache.Cache.hits <- cache.Cache.hits + 1;
        0
      end
      else Cache.access cache ~write:false pcv
    in
    if stall <> 0 then m3.Core.stall_cycles <- m3.Core.stall_cycles + stall;
    let base =
      if cpi_num = 0 then 1
      else begin
        let acc = m3.Core.cpi_acc + cpi_num in
        if acc < cpi_den then begin m3.Core.cpi_acc <- acc; 1 end
        else if acc < 2 * cpi_den then begin
          m3.Core.cpi_acc <- acc - cpi_den; 2
        end
        else if acc < 3 * cpi_den then begin
          m3.Core.cpi_acc <- acc - (2 * cpi_den); 3
        end
        else begin
          m3.Core.cpi_acc <- acc mod cpi_den;
          1 + (acc / cpi_den)
        end
      end
    in
    let cycles = base + stall in
    m3.Core.busy_cycles <- m3.Core.busy_cycles + cycles;
    let dps = cycles * m3.Core.ps_per_cycle in
    let ps = dps + m3.Core.frac_ps in
    m3.Core.busy_ps <- m3.Core.busy_ps + dps;
    let q =
      if ps < 0x1_0000_0000 then (ps * 274877907) asr 38 else ps / 1000
    in
    m3.Core.frac_ps <- ps - (q * 1000);
    clock.Clock.now <- clock.Clock.now + q;
    if clock.Clock.next_at <= clock.Clock.now then Clock.run_due clock;
    if traced then
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_retire pcv 0;
    match Exec.step cpu env ~addr:pcv i with
    | Exec.Next ->
      if t.pc_overridden then probe := true
      else if Array.unsafe_get t.fuse_next idx then begin
        (* fused macro-op slot: the partner issues with its
           predecessor — count it and its cache traffic, waive its
           base CPI ([Core.charge_stall] of [Core.fetch_cost],
           inlined) *)
        let pcv2 = pcv + 4 in
        Array.unsafe_set r pc pcv2;
        let i2 =
          let c = Array.unsafe_get t.host_decode (idx + 1) in
          if c != undecoded then c else decode_host t pcv2
        in
        t.cur_pc <- pcv2;
        t.host_executed <- t.host_executed + 1;
        m3.Core.instructions <- m3.Core.instructions + 1;
        let stall2 =
          let line = pcv2 lsr line_bits in
          let set =
            if set_mask >= 0 then line land set_mask
            else line mod cache.Cache.nsets
          in
          if Array.unsafe_get tags set = line then begin
            cache.Cache.hits <- cache.Cache.hits + 1;
            0
          end
          else Cache.access cache ~write:false pcv2
        in
        if stall2 <> 0 then begin
          m3.Core.stall_cycles <- m3.Core.stall_cycles + stall2;
          Core.charge m3 stall2
        end
        else if clock.Clock.next_at <= clock.Clock.now then
          Clock.run_due clock;
        if traced then
          Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
            Tk_stats.Trace.ev_retire pcv2 0;
        match Exec.step cpu env ~addr:pcv2 i2 with
        | Exec.Next ->
          if t.pc_overridden then probe := true
          else begin
            Array.unsafe_set r pc (pcv2 + 4);
            cur := pcv2 + 4;
            cur_idx := idx + 2
          end
        | Exec.Branched ->
          Core.charge m3 cost_taken_branch;
          probe := true
      end
      else begin
        Array.unsafe_set r pc (pcv + 4);
        cur := pcv + 4;
        cur_idx := idx + 1
      end
    | Exec.Branched ->
      Core.charge m3 cost_taken_branch;
      probe := true
  done

let run t cpu ~fuel =
  (* one execution-burst span per engine entry; the loops only exit by
     exception (Context_exit, fallback, host error), so the close rides
     in [~finally]. A burst cut by {!Quantum} reopens coalesced on
     resume (zero simulated time passes across the cut, and nothing
     else records in between), so the span stream is the sequential
     one at every quantum. *)
  let sp = t.soc.Soc.spans in
  if sp.Tk_stats.Span.enabled then begin
    let cut = t.span_cut in
    t.span_cut <- -1;
    let tok =
      if cut >= 0 then
        Tk_stats.Span.reopen sp ~core:Tk_stats.Trace.core_m3
          Tk_stats.Span.sk_run ~slot:cut 0
      else
        Tk_stats.Span.enter sp ~core:Tk_stats.Trace.core_m3
          Tk_stats.Span.sk_run 0
    in
    Fun.protect
      ~finally:(fun () -> Tk_stats.Span.leave sp tok)
      (fun () ->
        try
          if t.superblock then run_superblock t cpu ~fuel
          else run_plain t cpu ~fuel
        with Quantum ->
          t.span_cut <- Tk_stats.Span.slot_of sp tok;
          raise Quantum)
  end
  else if t.superblock then run_superblock t cpu ~fuel
  else run_plain t cpu ~fuel

(** [entry_host t gpc] — host address for guest entry [gpc], translating
    on demand (used by ARK to start contexts). *)
let entry_host t gpc = translate_block t gpc

(** [guest_point_of_host t haddr] — guest address for a saved host resume
    point, for fallback migration. *)
let guest_point_of_host t haddr = Hashtbl.find_opt t.host_points haddr

(* ------------------------ hot-block profiler ------------------------- *)

type block_profile = {
  bp_guest : int;  (** guest block start address *)
  bp_host : int;  (** host (code-cache) block start address *)
  bp_execs : int;  (** times the hot loop entered this block *)
  bp_dispatches : int;  (** entries through the dispatch slow path *)
  bp_guest_insts : int;  (** guest instructions translated *)
  bp_host_words : int;  (** host words emitted (incl. engine sites) *)
}

(** [chain_rate bp] — fraction of entries into the block that arrived
    via a chained (patched) direct branch rather than the dispatch slow
    path. *)
let chain_rate bp =
  if bp.bp_execs = 0 then 0.0
  else float_of_int (bp.bp_execs - bp.bp_dispatches)
       /. float_of_int bp.bp_execs

(** [profile_blocks t] — per-block profile rows, hottest first. Only
    meaningful after a run with [t.profile] set. *)
let profile_blocks t =
  let rows =
    Hashtbl.fold
      (fun h gpc acc ->
        let idx = (h - Soc.code_cache_base) asr 2 in
        let execs = t.block_exec.(idx) in
        let dispatches =
          Option.value ~default:0 (Hashtbl.find_opt t.block_dispatch h)
        in
        let gi, hw =
          Option.value ~default:(0, 0) (Hashtbl.find_opt t.block_size h)
        in
        { bp_guest = gpc; bp_host = h; bp_execs = execs;
          bp_dispatches = dispatches; bp_guest_insts = gi;
          bp_host_words = hw }
        :: acc)
      t.block_starts []
  in
  List.sort (fun a b -> compare (b.bp_execs, b.bp_guest) (a.bp_execs, a.bp_guest)) rows
