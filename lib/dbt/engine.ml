(** The DBT execution engine running on the peripheral core.

    Owns the code cache (a region of shared DRAM), the guest->host block
    map, the site table (engine trap points emitted by {!Translator}),
    direct-branch patching ("chaining"), and the host execution loop —
    a V7M interpreter charged against the M3 core model, fetching emitted
    words through the M3's 32 KB cache (whose thrashing is the DRAM story
    of §7.3).

    The engine is policy-free: ARK (the [transkernel] library) supplies
    callbacks for emulated services, hooks, guest hypercalls, interrupt
    windows and fallback. Callbacks may raise to take control; the
    engine always leaves the context's host pc at the correct resume
    point before invoking them. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine

type callbacks = {
  mutable on_emu : string -> Exec.cpu -> unit;
  mutable on_hook : string -> Exec.cpu -> unit;
  mutable on_guest_svc : int -> Exec.cpu -> unit;
  mutable on_fallback :
    string -> guest_pc:int -> skippable:bool -> Exec.cpu -> unit;
      (** returning normally skips the cold call (drain mode) *)
  mutable on_irq_window : Exec.cpu -> unit;  (** at block starts *)
  mutable on_gic_access : write:bool -> int -> int -> int;
      (** MPU-fault emulation of the CPU interrupt controller (§4.2):
          [on_gic_access ~write addr value] returns the read value *)
}

exception Context_exit
exception Host_error of string

type t = {
  soc : Soc.t;
  mode : Translator.mode;
  mutable classify_target : int -> Translator.target_class;
  cb : callbacks;
  (* code cache *)
  mutable cursor : int;
  block_map : (int, int) Hashtbl.t;  (** guest block start -> host addr *)
  block_starts : (int, int) Hashtbl.t;  (** host block start -> guest start *)
  sites : (int, Translator.site_info) Hashtbl.t;  (** host addr -> site *)
  host_points : (int, int) Hashtbl.t;
      (** host addr -> guest addr, for every host point that can appear
          in a saved context or on the stack (call return sites, svc
          resume points, block starts) — the map fallback migration uses
          to rewrite code-cache addresses (§5.3) *)
  host_decode : inst option array;
      (** dense pre-decoded code cache, indexed by
          [(addr - Soc.code_cache_base) / 4]: populated at [write_host]
          time (so patching a site re-decodes it in place), read by the
          hot loop as one array load. Host-side speed only — the
          simulated charges are unchanged. *)
  block_start : bool array;
      (** dense membership set mirroring [block_starts], same indexing
          as [host_decode] — the hot loop's IRQ-window probe *)
  mutable cur_pc : int;
  mutable pc_overridden : bool;
  mutable chain : bool;
      (** patch direct branch/call sites into host branches (on by
          default; the no-chaining ablation turns it off) *)
  mutable block_limit : int;  (** guest instructions per block *)
  mutable irq_dispatch : bool;  (** ARK spinlock emulation pauses this *)
  mutable env : Exec.env;
  (* statistics *)
  mutable guest_translated : int;
  mutable host_emitted : int;
  mutable blocks : int;
  mutable engine_exits : int;
  mutable patches : int;
  mutable host_executed : int;
}

(* cost knobs, in M3 cycles *)
(* the prediction-less M3 refills its pipeline on every taken branch,
   unlike the branch-predicting A9 — this is what makes control-dense
   drivers (USB) the worst DBT cases in Figure 6 *)
let cost_taken_branch = 3
let cost_translate_per_guest = 60
let cost_dispatch = 28  (* svc trap + table lookup *)
let cost_patch = 30
let cost_exit_pc = 150  (* map lookup on an engine exit *)
let cost_gic_fault = 150  (* MPU fault + controller emulation *)

let charge t cycles = Core.charge t.soc.Soc.m3 cycles

let dummy_cb () =
  { on_emu = (fun _ _ -> ());
    on_hook = (fun _ _ -> ());
    on_guest_svc = (fun _ _ -> ());
    on_fallback =
      (fun r ~guest_pc:_ ~skippable:_ _ -> raise (Host_error ("fallback: " ^ r)));
    on_irq_window = (fun _ -> ());
    on_gic_access = (fun ~write:_ _ _ -> 0) }

let in_cache t addr =
  addr >= Soc.code_cache_base && addr < t.cursor

let dummy_env : Exec.env =
  { Exec.load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
    svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
    undef = (fun _ _ -> ()) }

let rec create ~(soc : Soc.t) ~mode () =
  let t =
    { soc; mode; classify_target = (fun _ -> Translator.T_normal);
      cb = dummy_cb (); cursor = Soc.code_cache_base;
      block_map = Hashtbl.create 1024; block_starts = Hashtbl.create 1024;
      sites = Hashtbl.create 1024; host_points = Hashtbl.create 4096;
      host_decode = Array.make (Soc.code_cache_size / 4) None;
      block_start = Array.make (Soc.code_cache_size / 4) false;
      cur_pc = 0; pc_overridden = false;
      chain = true; block_limit = Translator.default_block_limit;
      irq_dispatch = true; env = dummy_env; guest_translated = 0;
      host_emitted = 0; blocks = 0; engine_exits = 0; patches = 0;
      host_executed = 0 }
  in
  let m3 = soc.Soc.m3 in
  let mem = soc.Soc.mem in
  let load addr nbytes =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      t.cb.on_gic_access ~write:false addr 0
    end
    else if Mem.in_ram mem addr then begin
      Core.charge_stall m3 (Cache.access m3.Core.cache ~write:false addr);
      if nbytes = 4 then Mem.ram_read32 mem addr
      else Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  let store addr nbytes v =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      ignore (t.cb.on_gic_access ~write:true addr v)
    end
    else if Mem.in_ram mem addr then begin
      Core.charge_stall m3 (Cache.access m3.Core.cache ~write:true addr);
      if nbytes = 4 then Mem.ram_write32 mem addr v
      else Mem.ram_write mem addr nbytes v
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let svc cpu n = dispatch t cpu n in
  let wfi _ = raise (Host_error "host wfi in translated code") in
  let irq_ret _ = raise (Host_error "host exception return in translated code") in
  let undef _ i =
    raise (Host_error ("host undef: " ^ Types.to_string i))
  in
  t.env <- { Exec.load; store; svc; wfi; irq_ret; undef };
  t

(* ------------------------- code emission ---------------------------- *)

and write_host t addr (i : inst) =
  let w = V7m.encode_exn i in
  (* emitting through the M3 cache: translation produces real traffic *)
  Core.charge t.soc.Soc.m3
    (Cache.access t.soc.Soc.m3.Core.cache ~write:true addr);
  Mem.ram_write32 t.soc.Soc.mem addr w;
  (* pre-decode the freshly written word; a word that does not decode
     (impossible for encode_exn output, but kept equivalent to the lazy
     seed path) is left for decode_host to report at execution time *)
  t.host_decode.((addr - Soc.code_cache_base) asr 2) <-
    (match V7m.decode w with i -> Some i | exception _ -> None)

and emit_block t (b : Translator.block) =
  let host_start = t.cursor in
  List.iter
    (fun e ->
      let a = t.cursor in
      (match e with
      | Translator.E_inst i -> write_host t a i
      | Translator.E_site (cond, info, code) ->
        write_host t a (at ~cond (Svc code));
        Hashtbl.replace t.sites a info;
        (match info with
        | Translator.S_call { ret_guest; _ }
        | Translator.S_indirect { ret_guest; _ } ->
          Hashtbl.replace t.host_points (a + 4) ret_guest
        | Translator.S_emu { resume_guest; _ }
        | Translator.S_hook { resume_guest; _ }
        | Translator.S_guest_svc { resume_guest; _ } ->
          Hashtbl.replace t.host_points (a + 4) resume_guest
        | Translator.S_jump _ | Translator.S_tail _ | Translator.S_exit_pc
        | Translator.S_fallback _ -> ()));
      t.cursor <- t.cursor + 4;
      t.host_emitted <- t.host_emitted + 1)
    b.Translator.b_emits;
  if t.cursor >= Soc.code_cache_base + Soc.code_cache_size then
    raise (Host_error "code cache full");
  host_start

and translate_block t gpc =
  match Hashtbl.find_opt t.block_map gpc with
  | Some h -> h
  | None ->
    let ctx =
      { Translator.mode = t.mode; classify_target = t.classify_target;
        block_limit = t.block_limit;
        read_guest =
          (fun a ->
            if not (Mem.in_ram t.soc.Soc.mem a) then
              raise (Host_error (Printf.sprintf "guest fetch outside RAM: 0x%x" a));
            V7a.decode (Mem.ram_read t.soc.Soc.mem a 4)) }
    in
    let b = Translator.translate ctx ~gpc in
    charge t (cost_translate_per_guest * b.Translator.b_guest_count);
    let h = emit_block t b in
    Hashtbl.replace t.block_map gpc h;
    Hashtbl.replace t.block_starts h gpc;
    t.block_start.((h - Soc.code_cache_base) asr 2) <- true;
    Hashtbl.replace t.host_points h gpc;
    t.blocks <- t.blocks + 1;
    t.guest_translated <- t.guest_translated + b.Translator.b_guest_count;
    h

(* patch a resolved direct branch/call site *)
and patch t site_addr (i : inst) =
  write_host t site_addr i;
  Hashtbl.remove t.sites site_addr;
  t.patches <- t.patches + 1;
  charge t cost_patch

and set_pc t (cpu : Exec.cpu) v =
  cpu.Exec.r.(pc) <- v;
  t.pc_overridden <- true

(* --------------------------- dispatch ------------------------------- *)

and dispatch t cpu _code =
  charge t cost_dispatch;
  t.engine_exits <- t.engine_exits + 1;
  let site_addr = t.cur_pc in
  match Hashtbl.find_opt t.sites site_addr with
  | None -> raise (Host_error (Printf.sprintf "stray svc at 0x%x" site_addr))
  | Some info -> (
    match info with
    | Translator.S_call { target; ret_guest = _ } ->
      let h = translate_block t target in
      let off = h - site_addr in
      let cond = (decode_host t site_addr).cond in
      if t.chain && Result.is_ok (V7m.encode (at ~cond (Bl off))) then
        patch t site_addr (at ~cond (Bl off));
      cpu.Exec.r.(lr) <- site_addr + 4;
      set_pc t cpu h
    | Translator.S_jump { target } ->
      let h = translate_block t target in
      let cond = (decode_host t site_addr).cond in
      let off = h - site_addr in
      if t.chain && Result.is_ok (V7m.encode (at ~cond (B off))) then
        patch t site_addr (at ~cond (B off));
      set_pc t cpu h
    | Translator.S_tail { target } ->
      let h = translate_block t target in
      let off = h - site_addr in
      if t.chain && Result.is_ok (V7m.encode (at (B off))) then
        patch t site_addr (at (B off));
      set_pc t cpu h
    | Translator.S_emu { name; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_emu name cpu
    | Translator.S_hook { name; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_hook name cpu
    | Translator.S_indirect { reg; ret_guest = _ } ->
      charge t cost_exit_pc;
      let target = guest_reg t cpu reg in
      let h = translate_block t target in
      cpu.Exec.r.(lr) <- site_addr + 4;
      set_pc t cpu h
    | Translator.S_exit_pc ->
      charge t cost_exit_pc;
      let gtarget = Mem.ram_read t.soc.Soc.mem Layout.env_next_pc 4 in
      if gtarget = Layout.exit_magic then begin
        set_pc t cpu Layout.exit_magic
      end
      else begin
        let h = translate_block t gtarget in
        set_pc t cpu h
      end
    | Translator.S_guest_svc { n; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_guest_svc n cpu
    | Translator.S_fallback { reason; gpc; skippable } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_fallback reason ~guest_pc:gpc ~skippable cpu)

and decode_host t addr =
  match t.host_decode.((addr - Soc.code_cache_base) asr 2) with
  | Some i -> i
  | None ->
    let w = Mem.ram_read32 t.soc.Soc.mem addr in
    let i =
      try V7m.decode w
      with V7m.Decode_error _ | Invalid_argument _ ->
        raise (Host_error (Printf.sprintf "bad host fetch at 0x%x (0x%x)" addr w))
    in
    t.host_decode.((addr - Soc.code_cache_base) asr 2) <- Some i;
    i

(* -------------------- guest-state accessors ------------------------- *)

(** [guest_reg t cpu i] reads guest register [i] for the current mode
    (pass-through, scratch-emulated or env-emulated). *)
and guest_reg t (cpu : Exec.cpu) i =
  match t.mode with
  | Translator.Ark ->
    if i = Rules.scratch then Mem.ram_read32 t.soc.Soc.mem Layout.env_r10
    else cpu.Exec.r.(i)
  | Translator.Mid ->
    if i = 10 || i = 11 || i = sp || i = lr then
      Mem.ram_read32 t.soc.Soc.mem (Layout.env_reg i)
    else cpu.Exec.r.(i)
  | Translator.Baseline -> Mem.ram_read32 t.soc.Soc.mem (Layout.env_reg i)

let set_guest_reg t (cpu : Exec.cpu) i v =
  match t.mode with
  | Translator.Ark ->
    if i = Rules.scratch then Mem.ram_write32 t.soc.Soc.mem Layout.env_r10 v
    else cpu.Exec.r.(i) <- Bits.mask32 v
  | Translator.Mid ->
    if i = 10 || i = 11 || i = sp || i = lr then
      Mem.ram_write32 t.soc.Soc.mem (Layout.env_reg i) v
    else cpu.Exec.r.(i) <- Bits.mask32 v
  | Translator.Baseline ->
    Mem.ram_write32 t.soc.Soc.mem (Layout.env_reg i) v

(* ----------------------------- run ---------------------------------- *)

(** [run t cpu ~fuel] executes translated code until the context returns
    to {!Layout.exit_magic} (raising {!Context_exit}) or a callback
    raises. The [cpu] is mutated in place; callbacks observe a host pc
    that is always a valid resume point. *)
let run t (cpu : Exec.cpu) ~fuel =
  let m3 = t.soc.Soc.m3 in
  let r = cpu.Exec.r in
  let n = ref 0 in
  while true do
    if !n >= fuel then raise (Host_error "DBT fuel exhausted");
    incr n;
    let pcv = Array.unsafe_get r pc in
    if pcv = Layout.exit_magic then raise Context_exit;
    if not (in_cache t pcv) then
      raise
        (Host_error (Printf.sprintf "host pc outside code cache: 0x%x" pcv));
    let idx = (pcv - Soc.code_cache_base) asr 2 in
    if t.irq_dispatch && Array.unsafe_get t.block_start idx then
      t.cb.on_irq_window cpu;
    let i =
      match Array.unsafe_get t.host_decode idx with
      | Some i -> i
      | None -> decode_host t pcv
    in
    t.cur_pc <- pcv;
    t.pc_overridden <- false;
    t.host_executed <- t.host_executed + 1;
    Core.retire m3 pcv;
    match Exec.step cpu t.env ~addr:pcv i with
    | Exec.Next -> if not t.pc_overridden then Array.unsafe_set r pc (pcv + 4)
    | Exec.Branched -> Core.charge m3 cost_taken_branch
  done

(** [entry_host t gpc] — host address for guest entry [gpc], translating
    on demand (used by ARK to start contexts). *)
let entry_host t gpc = translate_block t gpc

(** [guest_point_of_host t haddr] — guest address for a saved host resume
    point, for fallback migration. *)
let guest_point_of_host t haddr = Hashtbl.find_opt t.host_points haddr
