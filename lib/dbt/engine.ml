(** The DBT execution engine running on the peripheral core.

    Owns the code cache (a region of shared DRAM), the guest->host block
    map, the site table (engine trap points emitted by {!Translator}),
    direct-branch patching ("chaining"), and the host execution loop —
    a V7M interpreter charged against the M3 core model, fetching emitted
    words through the M3's 32 KB cache (whose thrashing is the DRAM story
    of §7.3).

    The engine is policy-free: ARK (the [transkernel] library) supplies
    callbacks for emulated services, hooks, guest hypercalls, interrupt
    windows and fallback. Callbacks may raise to take control; the
    engine always leaves the context's host pc at the correct resume
    point before invoking them. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine

type callbacks = {
  mutable on_emu : string -> Exec.cpu -> unit;
  mutable on_hook : string -> Exec.cpu -> unit;
  mutable on_guest_svc : int -> Exec.cpu -> unit;
  mutable on_fallback :
    string -> guest_pc:int -> skippable:bool -> Exec.cpu -> unit;
      (** returning normally skips the cold call (drain mode) *)
  mutable on_irq_window : Exec.cpu -> unit;  (** at block starts *)
  mutable on_gic_access : write:bool -> int -> int -> int;
      (** MPU-fault emulation of the CPU interrupt controller (§4.2):
          [on_gic_access ~write addr value] returns the read value *)
}

exception Context_exit
exception Host_error of string

type t = {
  soc : Soc.t;
  mode : Translator.mode;
  tr : Tk_stats.Trace.t;  (** the platform flight recorder, cached *)
  mutable classify_target : int -> Translator.target_class;
  cb : callbacks;
  (* code cache *)
  mutable cursor : int;
  block_map : (int, int) Hashtbl.t;  (** guest block start -> host addr *)
  block_starts : (int, int) Hashtbl.t;  (** host block start -> guest start *)
  sites : (int, Translator.site_info) Hashtbl.t;  (** host addr -> site *)
  host_points : (int, int) Hashtbl.t;
      (** host addr -> guest addr, for every host point that can appear
          in a saved context or on the stack (call return sites, svc
          resume points, block starts) — the map fallback migration uses
          to rewrite code-cache addresses (§5.3) *)
  host_decode : inst option array;
      (** dense pre-decoded code cache, indexed by
          [(addr - Soc.code_cache_base) / 4]: populated at [write_host]
          time (so patching a site re-decodes it in place), read by the
          hot loop as one array load. Host-side speed only — the
          simulated charges are unchanged. *)
  block_start : bool array;
      (** dense membership set mirroring [block_starts], same indexing
          as [host_decode] — the hot loop's IRQ-window probe *)
  mutable cur_pc : int;
  mutable pc_overridden : bool;
  mutable chain : bool;
      (** patch direct branch/call sites into host branches (on by
          default; the no-chaining ablation turns it off) *)
  mutable block_limit : int;  (** guest instructions per block *)
  mutable irq_dispatch : bool;  (** ARK spinlock emulation pauses this *)
  mutable env : Exec.env;
  mutable env_traced : Exec.env;
      (** same host environment with flight-recorder emission on memory
          accesses; the run loop selects it only while tracing is
          enabled, keeping the disabled path free of trace branches *)
  (* statistics *)
  mutable guest_translated : int;
  mutable host_emitted : int;
  mutable blocks : int;
  mutable engine_exits : int;
  mutable patches : int;
  mutable host_executed : int;
  (* hot-block profiler (host-side observability; simulated charges are
     unaffected whether it is on or off) *)
  mutable profile : bool;
  block_exec : int array;
      (** per-block execution count, same dense indexing as
          [block_start]; bumped when the hot loop enters a block start *)
  block_dispatch : (int, int) Hashtbl.t;
      (** host block start -> entries through the dispatch slow path
          (i.e. not via a chained direct branch) *)
  block_size : (int, int * int) Hashtbl.t;
      (** host block start -> (guest instruction count, host words) *)
}

(* cost knobs, in M3 cycles *)
(* the prediction-less M3 refills its pipeline on every taken branch,
   unlike the branch-predicting A9 — this is what makes control-dense
   drivers (USB) the worst DBT cases in Figure 6 *)
let cost_taken_branch = 3
let cost_translate_per_guest = 60
let cost_dispatch = 28  (* svc trap + table lookup *)
let cost_patch = 30
let cost_exit_pc = 150  (* map lookup on an engine exit *)
let cost_gic_fault = 150  (* MPU fault + controller emulation *)

let charge t cycles = Core.charge t.soc.Soc.m3 cycles

let dummy_cb () =
  { on_emu = (fun _ _ -> ());
    on_hook = (fun _ _ -> ());
    on_guest_svc = (fun _ _ -> ());
    on_fallback =
      (fun r ~guest_pc:_ ~skippable:_ _ -> raise (Host_error ("fallback: " ^ r)));
    on_irq_window = (fun _ -> ());
    on_gic_access = (fun ~write:_ _ _ -> 0) }

let in_cache t addr =
  addr >= Soc.code_cache_base && addr < t.cursor

let dummy_env : Exec.env =
  { Exec.load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
    svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
    undef = (fun _ _ -> ()) }

let rec create ~(soc : Soc.t) ~mode () =
  let tr = soc.Soc.trace in
  let t =
    { soc; mode; tr; classify_target = (fun _ -> Translator.T_normal);
      cb = dummy_cb (); cursor = Soc.code_cache_base;
      block_map = Hashtbl.create 1024; block_starts = Hashtbl.create 1024;
      sites = Hashtbl.create 1024; host_points = Hashtbl.create 4096;
      host_decode = Array.make (Soc.code_cache_size / 4) None;
      block_start = Array.make (Soc.code_cache_size / 4) false;
      cur_pc = 0; pc_overridden = false;
      chain = true; block_limit = Translator.default_block_limit;
      irq_dispatch = true; env = dummy_env; env_traced = dummy_env;
      guest_translated = 0;
      host_emitted = 0; blocks = 0; engine_exits = 0; patches = 0;
      host_executed = 0; profile = false;
      block_exec = Array.make (Soc.code_cache_size / 4) 0;
      block_dispatch = Hashtbl.create 1024;
      block_size = Hashtbl.create 1024 }
  in
  let m3 = soc.Soc.m3 in
  let mem = soc.Soc.mem in
  (* the untraced closures are the seed's hot path, byte for byte: the
     run loop only hands [env_traced] to the executor while the flight
     recorder is enabled, so tracing costs nothing when it is off *)
  let load addr nbytes =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      t.cb.on_gic_access ~write:false addr 0
    end
    else if Mem.in_ram mem addr then begin
      Core.charge_stall m3 (Cache.access m3.Core.cache ~write:false addr);
      if nbytes = 4 then Mem.ram_read32 mem addr
      else Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  let store addr nbytes v =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      ignore (t.cb.on_gic_access ~write:true addr v)
    end
    else if Mem.in_ram mem addr then begin
      Core.charge_stall m3 (Cache.access m3.Core.cache ~write:true addr);
      if nbytes = 4 then Mem.ram_write32 mem addr v
      else Mem.ram_write mem addr nbytes v
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let load_traced addr nbytes =
    if Soc.is_cpu_private addr then begin
      (* gic-private accesses surface as controller events, not reads *)
      charge t cost_gic_fault;
      t.cb.on_gic_access ~write:false addr 0
    end
    else if Mem.in_ram mem addr then begin
      let stall = Cache.access m3.Core.cache ~write:false addr in
      Core.charge_stall m3 stall;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_read addr stall;
      if nbytes = 4 then Mem.ram_read32 mem addr
      else Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_read addr m3.Core.p.Core.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  let store_traced addr nbytes v =
    if Soc.is_cpu_private addr then begin
      charge t cost_gic_fault;
      ignore (t.cb.on_gic_access ~write:true addr v)
    end
    else if Mem.in_ram mem addr then begin
      let stall = Cache.access m3.Core.cache ~write:true addr in
      Core.charge_stall m3 stall;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_write addr stall;
      if nbytes = 4 then Mem.ram_write32 mem addr v
      else Mem.ram_write mem addr nbytes v
    end
    else begin
      Core.charge m3 m3.Core.p.Core.mmio_penalty;
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_write addr m3.Core.p.Core.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let svc cpu n = dispatch t cpu n in
  let wfi _ = raise (Host_error "host wfi in translated code") in
  let irq_ret _ = raise (Host_error "host exception return in translated code") in
  let undef _ i =
    raise (Host_error ("host undef: " ^ Types.to_string i))
  in
  t.env <- { Exec.load; store; svc; wfi; irq_ret; undef };
  t.env_traced <-
    { Exec.load = load_traced; store = store_traced; svc; wfi; irq_ret;
      undef };
  (* telemetry gauges: translation-cache occupancy and engine work.
     add_gauge replaces by name, so a second engine on the same SoC
     re-binds these columns instead of duplicating them. *)
  let gauge = Tk_stats.Timeseries.add_gauge soc.Soc.sampler in
  gauge "dbt_blocks" (fun () -> t.blocks);
  gauge "dbt_host_words" (fun () -> (t.cursor - Soc.code_cache_base) asr 2);
  gauge "dbt_patches" (fun () -> t.patches);
  gauge "dbt_exits" (fun () -> t.engine_exits);
  gauge "dbt_host_retired" (fun () -> t.host_executed);
  t

(* ------------------------- code emission ---------------------------- *)

and write_host t addr (i : inst) =
  let w = V7m.encode_exn i in
  (* emitting through the M3 cache: translation produces real traffic *)
  Core.charge t.soc.Soc.m3
    (Cache.access t.soc.Soc.m3.Core.cache ~write:true addr);
  Mem.ram_write32 t.soc.Soc.mem addr w;
  (* pre-decode the freshly written word; a word that does not decode
     (impossible for encode_exn output, but kept equivalent to the lazy
     seed path) is left for decode_host to report at execution time *)
  t.host_decode.((addr - Soc.code_cache_base) asr 2) <-
    (match V7m.decode w with i -> Some i | exception _ -> None)

and emit_block t (b : Translator.block) =
  let host_start = t.cursor in
  List.iter
    (fun e ->
      let a = t.cursor in
      (match e with
      | Translator.E_inst i -> write_host t a i
      | Translator.E_site (cond, info, code) ->
        write_host t a (at ~cond (Svc code));
        Hashtbl.replace t.sites a info;
        (match info with
        | Translator.S_call { ret_guest; _ }
        | Translator.S_indirect { ret_guest; _ } ->
          Hashtbl.replace t.host_points (a + 4) ret_guest
        | Translator.S_emu { resume_guest; _ }
        | Translator.S_hook { resume_guest; _ }
        | Translator.S_guest_svc { resume_guest; _ } ->
          Hashtbl.replace t.host_points (a + 4) resume_guest
        | Translator.S_jump _ | Translator.S_tail _ | Translator.S_exit_pc
        | Translator.S_fallback _ -> ()));
      t.cursor <- t.cursor + 4;
      t.host_emitted <- t.host_emitted + 1)
    b.Translator.b_emits;
  if t.cursor >= Soc.code_cache_base + Soc.code_cache_size then
    raise (Host_error "code cache full");
  host_start

and translate_block t gpc =
  match Hashtbl.find_opt t.block_map gpc with
  | Some h -> h
  | None ->
    let ctx =
      { Translator.mode = t.mode; classify_target = t.classify_target;
        block_limit = t.block_limit;
        read_guest =
          (fun a ->
            if not (Mem.in_ram t.soc.Soc.mem a) then
              raise (Host_error (Printf.sprintf "guest fetch outside RAM: 0x%x" a));
            V7a.decode (Mem.ram_read t.soc.Soc.mem a 4)) }
    in
    let b = Translator.translate ctx ~gpc in
    charge t (cost_translate_per_guest * b.Translator.b_guest_count);
    let h = emit_block t b in
    Hashtbl.replace t.block_map gpc h;
    Hashtbl.replace t.block_starts h gpc;
    t.block_start.((h - Soc.code_cache_base) asr 2) <- true;
    Hashtbl.replace t.host_points h gpc;
    t.blocks <- t.blocks + 1;
    t.guest_translated <- t.guest_translated + b.Translator.b_guest_count;
    Hashtbl.replace t.block_size h
      (b.Translator.b_guest_count, (t.cursor - h) asr 2);
    if t.tr.Tk_stats.Trace.enabled then
      Tk_stats.Trace.emit t.tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_translate gpc b.Translator.b_guest_count;
    h

(* patch a resolved direct branch/call site *)
and patch t site_addr (i : inst) =
  write_host t site_addr i;
  Hashtbl.remove t.sites site_addr;
  t.patches <- t.patches + 1;
  charge t cost_patch;
  if t.tr.Tk_stats.Trace.enabled then
    Tk_stats.Trace.emit t.tr ~core:Tk_stats.Trace.core_m3
      Tk_stats.Trace.ev_chain site_addr 0

and set_pc t (cpu : Exec.cpu) v =
  cpu.Exec.r.(pc) <- v;
  t.pc_overridden <- true

(* jump to a translated block through the dispatch slow path; the
   profiler counts these to compute each block's chain hit rate *)
and goto_block t (cpu : Exec.cpu) h =
  if t.profile then
    Hashtbl.replace t.block_dispatch h
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.block_dispatch h));
  set_pc t cpu h

(* --------------------------- dispatch ------------------------------- *)

and dispatch t cpu _code =
  charge t cost_dispatch;
  t.engine_exits <- t.engine_exits + 1;
  let site_addr = t.cur_pc in
  match Hashtbl.find_opt t.sites site_addr with
  | None -> raise (Host_error (Printf.sprintf "stray svc at 0x%x" site_addr))
  | Some info -> (
    match info with
    | Translator.S_call { target; ret_guest = _ } ->
      let h = translate_block t target in
      let off = h - site_addr in
      let cond = (decode_host t site_addr).cond in
      if t.chain && Result.is_ok (V7m.encode (at ~cond (Bl off))) then
        patch t site_addr (at ~cond (Bl off));
      cpu.Exec.r.(lr) <- site_addr + 4;
      goto_block t cpu h
    | Translator.S_jump { target } ->
      let h = translate_block t target in
      let cond = (decode_host t site_addr).cond in
      let off = h - site_addr in
      if t.chain && Result.is_ok (V7m.encode (at ~cond (B off))) then
        patch t site_addr (at ~cond (B off));
      goto_block t cpu h
    | Translator.S_tail { target } ->
      let h = translate_block t target in
      let off = h - site_addr in
      if t.chain && Result.is_ok (V7m.encode (at (B off))) then
        patch t site_addr (at (B off));
      goto_block t cpu h
    | Translator.S_emu { name; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_emu name cpu
    | Translator.S_hook { name; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_hook name cpu
    | Translator.S_indirect { reg; ret_guest = _ } ->
      charge t cost_exit_pc;
      let target = guest_reg t cpu reg in
      let h = translate_block t target in
      cpu.Exec.r.(lr) <- site_addr + 4;
      goto_block t cpu h
    | Translator.S_exit_pc ->
      charge t cost_exit_pc;
      let gtarget = Mem.ram_read t.soc.Soc.mem Layout.env_next_pc 4 in
      if gtarget = Layout.exit_magic then begin
        set_pc t cpu Layout.exit_magic
      end
      else begin
        let h = translate_block t gtarget in
        goto_block t cpu h
      end
    | Translator.S_guest_svc { n; _ } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_guest_svc n cpu
    | Translator.S_fallback { reason; gpc; skippable } ->
      set_pc t cpu (site_addr + 4);
      t.cb.on_fallback reason ~guest_pc:gpc ~skippable cpu)

and decode_host t addr =
  match t.host_decode.((addr - Soc.code_cache_base) asr 2) with
  | Some i -> i
  | None ->
    let w = Mem.ram_read32 t.soc.Soc.mem addr in
    let i =
      try V7m.decode w
      with V7m.Decode_error _ | Invalid_argument _ ->
        raise (Host_error (Printf.sprintf "bad host fetch at 0x%x (0x%x)" addr w))
    in
    t.host_decode.((addr - Soc.code_cache_base) asr 2) <- Some i;
    i

(* -------------------- guest-state accessors ------------------------- *)

(** [guest_reg t cpu i] reads guest register [i] for the current mode
    (pass-through, scratch-emulated or env-emulated). *)
and guest_reg t (cpu : Exec.cpu) i =
  match t.mode with
  | Translator.Ark ->
    if i = Rules.scratch then Mem.ram_read32 t.soc.Soc.mem Layout.env_r10
    else cpu.Exec.r.(i)
  | Translator.Mid ->
    if i = 10 || i = 11 || i = sp || i = lr then
      Mem.ram_read32 t.soc.Soc.mem (Layout.env_reg i)
    else cpu.Exec.r.(i)
  | Translator.Baseline -> Mem.ram_read32 t.soc.Soc.mem (Layout.env_reg i)

let set_guest_reg t (cpu : Exec.cpu) i v =
  match t.mode with
  | Translator.Ark ->
    if i = Rules.scratch then Mem.ram_write32 t.soc.Soc.mem Layout.env_r10 v
    else cpu.Exec.r.(i) <- Bits.mask32 v
  | Translator.Mid ->
    if i = 10 || i = 11 || i = sp || i = lr then
      Mem.ram_write32 t.soc.Soc.mem (Layout.env_reg i) v
    else cpu.Exec.r.(i) <- Bits.mask32 v
  | Translator.Baseline ->
    Mem.ram_write32 t.soc.Soc.mem (Layout.env_reg i) v

(* ----------------------------- run ---------------------------------- *)

(** [run t cpu ~fuel] executes translated code until the context returns
    to {!Layout.exit_magic} (raising {!Context_exit}) or a callback
    raises. The [cpu] is mutated in place; callbacks observe a host pc
    that is always a valid resume point. *)
let run t (cpu : Exec.cpu) ~fuel =
  let m3 = t.soc.Soc.m3 in
  let tr = t.tr in
  (* tracing never toggles while translated code is executing, so the
     decision is hoisted: the disabled loop tests only an immutable
     register-resident bool and runs the seed's untraced environment *)
  let traced = tr.Tk_stats.Trace.enabled in
  let env = if traced then t.env_traced else t.env in
  (* telemetry sampler: same hoisting discipline *)
  let ts = t.soc.Soc.sampler in
  let sampling = ts.Tk_stats.Timeseries.enabled in
  let r = cpu.Exec.r in
  let n = ref 0 in
  while true do
    if !n >= fuel then raise (Host_error "DBT fuel exhausted");
    incr n;
    if sampling then Tk_stats.Timeseries.tick ts;
    let pcv = Array.unsafe_get r pc in
    if pcv = Layout.exit_magic then raise Context_exit;
    if not (in_cache t pcv) then
      raise
        (Host_error (Printf.sprintf "host pc outside code cache: 0x%x" pcv));
    let idx = (pcv - Soc.code_cache_base) asr 2 in
    if Array.unsafe_get t.block_start idx then begin
      if t.profile then
        Array.unsafe_set t.block_exec idx
          (Array.unsafe_get t.block_exec idx + 1);
      if t.irq_dispatch then t.cb.on_irq_window cpu
    end;
    let i =
      match Array.unsafe_get t.host_decode idx with
      | Some i -> i
      | None -> decode_host t pcv
    in
    t.cur_pc <- pcv;
    t.pc_overridden <- false;
    t.host_executed <- t.host_executed + 1;
    Core.retire m3 pcv;
    if traced then
      Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_m3
        Tk_stats.Trace.ev_retire pcv 0;
    match Exec.step cpu env ~addr:pcv i with
    | Exec.Next -> if not t.pc_overridden then Array.unsafe_set r pc (pcv + 4)
    | Exec.Branched -> Core.charge m3 cost_taken_branch
  done

(** [entry_host t gpc] — host address for guest entry [gpc], translating
    on demand (used by ARK to start contexts). *)
let entry_host t gpc = translate_block t gpc

(** [guest_point_of_host t haddr] — guest address for a saved host resume
    point, for fallback migration. *)
let guest_point_of_host t haddr = Hashtbl.find_opt t.host_points haddr

(* ------------------------ hot-block profiler ------------------------- *)

type block_profile = {
  bp_guest : int;  (** guest block start address *)
  bp_host : int;  (** host (code-cache) block start address *)
  bp_execs : int;  (** times the hot loop entered this block *)
  bp_dispatches : int;  (** entries through the dispatch slow path *)
  bp_guest_insts : int;  (** guest instructions translated *)
  bp_host_words : int;  (** host words emitted (incl. engine sites) *)
}

(** [chain_rate bp] — fraction of entries into the block that arrived
    via a chained (patched) direct branch rather than the dispatch slow
    path. *)
let chain_rate bp =
  if bp.bp_execs = 0 then 0.0
  else float_of_int (bp.bp_execs - bp.bp_dispatches)
       /. float_of_int bp.bp_execs

(** [profile_blocks t] — per-block profile rows, hottest first. Only
    meaningful after a run with [t.profile] set. *)
let profile_blocks t =
  let rows =
    Hashtbl.fold
      (fun h gpc acc ->
        let idx = (h - Soc.code_cache_base) asr 2 in
        let execs = t.block_exec.(idx) in
        let dispatches =
          Option.value ~default:0 (Hashtbl.find_opt t.block_dispatch h)
        in
        let gi, hw =
          Option.value ~default:(0, 0) (Hashtbl.find_opt t.block_size h)
        in
        { bp_guest = gpc; bp_host = h; bp_execs = execs;
          bp_dispatches = dispatches; bp_guest_insts = gi;
          bp_host_words = hw }
        :: acc)
      t.block_starts []
  in
  List.sort (fun a b -> compare (b.bp_execs, b.bp_guest) (a.bp_execs, a.bp_guest)) rows
