(** Persistent translation cache: blocks and superblock plans keyed by a
    digest of the pristine guest image. Replay is lazy — the engine
    consults the store at the same instants it would translate or form,
    and still charges the simulated translation cost, so warm runs keep
    a byte-identical simulated timeline (and manifest digest) while
    skipping the host-side translation work. [load] degrades every
    failure mode (missing file, wrong magic/version/key, corruption) to
    [None] — a cold start, never a poisoned run. *)

type t = {
  key : string;  (** image digest this cache is valid for *)
  blocks : (int, Translator.block) Hashtbl.t;  (** guest start -> block *)
  traces : (int, Superblock.plan) Hashtbl.t;  (** chain head -> plan *)
}

val key_of_image : base:int -> words:int array -> string
(** FNV-1a digest over the link base and pristine image words *)

val format_mismatches : int ref
(** header refusals (wrong magic or wrong plaintext version line) seen
    by [load] since program start; each one degraded to a cold start
    without touching the Marshal payload *)

val create : key:string -> t
val find_block : t -> int -> Translator.block option
val record_block : t -> int -> Translator.block -> unit
val find_trace : t -> int -> Superblock.plan option
val record_trace : t -> Superblock.plan -> unit

val path : dir:string -> key:string -> string
(** the cache file a [save]/[load] pair uses for [key] under [dir] *)

val save : dir:string -> t -> unit
(** atomic (write + rename); creates [dir] if missing *)

val load : dir:string -> key:string -> t option
