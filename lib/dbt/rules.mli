(** ARK's translation rules: guest (V7A) instruction -> host (V7M)
    sequence (paper §5.1).

    Identity translation re-encodes the same AST; everything else gets a
    few "amendment" instructions using the dedicated scratch register
    r10 (guest r10 is emulated in memory) and, where needed, the dead
    register r12. The induced classification over {!Tk_isa.Spec} is
    Table 3. *)

open Tk_isa

exception Untranslatable of string
(** instructions ARK does not translate (exception return, WFI,
    interrupt masking, writeback-into-base): the translator turns these
    into fallback sites *)

val scratch : int
(** the dedicated scratch register, r10 (§5.2) *)

val scratch2 : int
(** the secondary "dead register" scratch, r12 *)

val movw_movt : cond:Types.cond -> int -> int -> Types.inst list
(** [movw_movt ~cond rd v] — 1-2 instructions loading constant [v] *)

val materialize : cond:Types.cond -> int -> int -> Types.inst list
(** shortest flag-preserving amendment sequence leaving a constant in a
    register: V7M immediate, the mov+ror pair of Table 4 G2, or
    movw/movt *)

val is_logical : Types.dp_op -> bool
(** logical ops take their carry from the shifter; arithmetic ops from
    the carry chain — the distinction behind the MOVS amendment rule *)

val subst_reg : old:int -> rep:int -> Types.inst -> Types.inst
(** substitute a register in operand positions (pc-relative reads) *)

val subst_all : old:int -> rep:int -> Types.inst -> Types.inst
(** substitute a register everywhere, destination included (the Mid
    engine's sp replacement).
    @raise Untranslatable on non data-processing/memory shapes *)

val subst_wide : old:int -> rep:int -> Types.inst -> Types.inst
(** substitute a register in every register position of any
    register-bearing shape (LDM/STM lists and swap operands included);
    control-flow and register-free shapes pass through. Never raises —
    the superblock planner's r10-to-r12 re-homing transform *)

val wrap_cond : Types.cond -> Types.inst list -> Types.inst list
(** conditional multi-instruction sequences evaluate the guest condition
    exactly once: a skip branch with the inverse condition around an
    unconditional body (the §5.2 flag caveat, IT-block style) *)

val legalize : gpc:int -> Types.inst -> Spec.category * Types.inst list
(** [legalize ~gpc i] — the host sequence for non-control-flow guest
    instruction [i] at guest address [gpc], condition-wrapped, with its
    Table 3 category.
    @raise Untranslatable for fallback instructions *)

val legalize_nowrap :
  gpc:int -> sc:int -> Types.inst -> Spec.category * Types.inst list
(** like {!legalize} without the guest-r10 emulation wrap, amending with
    scratch [sc]; used by the Mid engine, which owns r10. The caller is
    responsible for condition wrapping. *)

val classify : Types.inst -> Spec.category * int
(** Table 3 view: category and host-instruction count for one guest
    instruction *)

val check_encodable : Types.inst list -> unit
(** assert every host instruction encodes in V7M.
    @raise Untranslatable otherwise *)
