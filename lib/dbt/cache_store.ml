(** Persistent translation cache: serializes translated blocks and
    superblock plans keyed by a digest of the pristine guest image, so a
    second run of the same image warm-starts — every translation and
    formation the engine would perform is replayed from the store
    instead of re-deriving it from the guest stream.

    Replay is {e lazy}: the engine consults the store at the very same
    instants it would otherwise translate or form, and charges the same
    simulated translation cost, so a warm run's simulated timeline — and
    therefore its run-manifest digest — is byte-identical to the cold
    run's. What the store eliminates is the host-side translation work
    (decode, legalize, plan), which is where the wall-clock translation
    stalls live.

    Robustness discipline: [load] never lets a bad file poison a run —
    wrong magic, wrong version, wrong key, truncation or any unmarshal
    failure all degrade to [None], i.e. an ordinary cold start. The
    image key is embedded in both the filename and the payload, so a
    stale cache directory for a rebuilt image simply misses. *)

type t = {
  key : string;  (** image digest this cache is valid for *)
  blocks : (int, Translator.block) Hashtbl.t;  (** guest start -> block *)
  traces : (int, Superblock.plan) Hashtbl.t;  (** chain head -> plan *)
}

(* bump on any change to Translator.block / Superblock.plan layout *)
let version = 3
let magic = "TKDBTCACHE\n"

(* The version rides in a plaintext header line right after the magic,
   BEFORE the Marshal payload: a file written by a different layout
   generation is recognized and refused without ever handing its bytes
   to [Marshal.from_channel] (whose failure mode on a stale layout is
   undefined data, not a clean exception). *)
let header_of v = Printf.sprintf "version %d\n" v

let format_mismatches = ref 0
(** wrong-magic / wrong-version header refusals since program start —
    each one was a graceful cold start *)

(* ----------------------------- keying -------------------------------- *)

let fnv32 h b = ((h lxor b) * 0x01000193) land 0xFFFFFFFF

(** [key_of_image ~base ~words] — FNV-1a over the link base and the
    pristine image words (the linker output, before any guest store). *)
let key_of_image ~base ~words =
  let h = ref 0x811C9DC5 in
  let word w =
    h := fnv32 !h (w land 0xFF);
    h := fnv32 !h ((w lsr 8) land 0xFF);
    h := fnv32 !h ((w lsr 16) land 0xFF);
    h := fnv32 !h ((w lsr 24) land 0xFF)
  in
  word base;
  word (Array.length words);
  Array.iter word words;
  Printf.sprintf "%08x" !h

(* ---------------------------- accessors ------------------------------ *)

let create ~key = { key; blocks = Hashtbl.create 64; traces = Hashtbl.create 8 }
let find_block t gpc = Hashtbl.find_opt t.blocks gpc

let record_block t gpc b =
  if not (Hashtbl.mem t.blocks gpc) then Hashtbl.add t.blocks gpc b

let find_trace t head = Hashtbl.find_opt t.traces head

let record_trace t (p : Superblock.plan) =
  if not (Hashtbl.mem t.traces p.Superblock.p_head) then
    Hashtbl.add t.traces p.Superblock.p_head p

(* --------------------------- persistence ----------------------------- *)

let path ~dir ~key = Filename.concat dir (Printf.sprintf "tkdbt-%s.cache" key)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Atomic, concurrency-safe save. The tmp name is unique per writer
    ([Filename.temp_file] stamps pid + a random suffix), so sweep tasks
    and fleet shards sharing one [--cache-dir] cannot rename each
    other's half-written files; the final [Sys.rename] into place is
    atomic and last-writer-wins. On any failure the tmp is unlinked by
    the finaliser, and an unwritable cache dir degrades to a warning —
    the run simply stays cold instead of crashing. *)
let save ~dir t =
  if not (Sys.file_exists dir) then (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let file = path ~dir ~key:t.key in
  match Filename.temp_file ~temp_dir:dir "tkdbt-save" ".tmp" with
  | exception Sys_error msg ->
    Printf.eprintf "warning: cache dir %s unwritable (%s); running cold\n%!"
      dir msg
  | tmp ->
    let committed = ref false in
    Fun.protect
      ~finally:(fun () ->
        if not !committed then try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc magic;
            output_string oc (header_of version);
            (* sorted bindings: the file bytes are a function of the cache
               contents, not hash-table iteration order *)
            Marshal.to_channel oc
              (t.key, sorted_bindings t.blocks, sorted_bindings t.traces)
              []);
        Sys.rename tmp file;
        committed := true)

let load ~dir ~key =
  let file = path ~dir ~key in
  match
    if not (Sys.file_exists file) then None
    else begin
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m = really_input_string ic (String.length magic) in
          if m <> magic then begin
            incr format_mismatches;
            None
          end
          else begin
            let want = header_of version in
            let h =
              try really_input_string ic (String.length want)
              with End_of_file -> ""
            in
            if h <> want then begin
              incr format_mismatches;
              None
            end
            else begin
              let k, bl, tl =
                (Marshal.from_channel ic
                  : string
                    * (int * Translator.block) list
                    * (int * Superblock.plan) list)
              in
              if k <> key then None
              else begin
                let t = create ~key in
                List.iter (fun (g, b) -> Hashtbl.replace t.blocks g b) bl;
                List.iter (fun (h, p) -> Hashtbl.replace t.traces h p) tl;
                Some t
              end
            end
          end)
    end
  with
  | exception _ -> None
  | r -> r
