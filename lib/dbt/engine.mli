(** The DBT execution engine on the peripheral core.

    Owns the code cache (a region of shared DRAM), the guest->host block
    map, the site table, direct-branch patching ("chaining"), and the
    host execution loop — a V7M interpreter charged against the M3 core
    model, fetching emitted words through the M3's cache.

    The engine is policy-free: ARK supplies {!callbacks} for emulated
    services, hooks, guest hypercalls, interrupt windows and fallback.
    Callbacks may raise to take control; the engine always leaves the
    context's host pc at the correct resume point first. *)

open Tk_isa
open Tk_machine

type callbacks = {
  mutable on_emu : string -> Exec.cpu -> unit;
  mutable on_hook : string -> Exec.cpu -> unit;
  mutable on_guest_svc : int -> Exec.cpu -> unit;
  mutable on_fallback :
    string -> guest_pc:int -> skippable:bool -> Exec.cpu -> unit;
      (** returning normally skips the cold call (drain mode) *)
  mutable on_irq_window : Exec.cpu -> unit;
      (** invoked at translation-block boundaries (§4.2) *)
  mutable on_gic_access : write:bool -> int -> int -> int;
      (** MPU-fault emulation of the CPU's interrupt controller:
          [on_gic_access ~write addr value] returns the read value *)
}

exception Context_exit
(** the context returned to {!Layout.exit_magic}: its entry call is done *)

exception Host_error of string
(** engine invariant violation (bad host fetch, cache overflow, ...) *)

exception Quantum
(** the M3 clock reached [deadline_ns] (bounded-quantum lockstep): the
    run loop unwound at an instruction boundary with the context's pc
    saved, so a later {!run} with the same cpu resumes exactly where it
    stopped. Never raised while [deadline_ns = max_int] (the default). *)

val undecoded : Types.inst
(** distinguished not-yet-decoded marker filling empty [host_decode]
    slots; compared by physical equality, never executed *)

type t = {
  soc : Soc.t;
  mode : Translator.mode;
  tr : Tk_stats.Trace.t;  (** the platform flight recorder, cached *)
  mutable classify_target : int -> Translator.target_class;
  cb : callbacks;
  mutable cursor : int;  (** code-cache allocation point *)
  block_map : (int, int) Hashtbl.t;  (** guest block start -> host addr *)
  block_starts : (int, int) Hashtbl.t;  (** host block start -> guest *)
  sites : (int, Translator.site_info) Hashtbl.t;  (** host addr -> site *)
  host_points : (int, int) Hashtbl.t;
      (** host addr -> guest addr for every point that can appear in a
          saved context or on the stack — fallback's rewrite map (§5.3) *)
  host_decode : Types.inst array;
      (** dense pre-decoded code cache, indexed by
          [(addr - Soc.code_cache_base) / 4]; populated at emission and
          patch time, read by the hot loop as one array load; empty
          slots hold the physically distinguished {!undecoded} sentinel *)
  block_start : bool array;
      (** dense membership set mirroring [block_starts] (same indexing),
          probed per instruction for the IRQ window *)
  mutable cur_pc : int;
  mutable pc_overridden : bool;
  mutable chain : bool;  (** patch direct branches (ablation knob) *)
  mutable block_limit : int;  (** guest instructions per block *)
  mutable irq_dispatch : bool;  (** ARK's spinlock emulation pauses this *)
  mutable env : Exec.env;
  mutable env_traced : Exec.env;
      (** [env] with flight-recorder emission on memory accesses; the
          run loop selects it only while tracing is enabled *)
  mutable guest_translated : int;
  mutable host_emitted : int;
  mutable blocks : int;
  mutable engine_exits : int;
  mutable patches : int;
  mutable host_executed : int;
  mutable translate_cycles : int;
      (** simulated M3 cycles charged for translation / trace formation;
          a monotone attribution gauge for the span tracer *)
  mutable profile : bool;
      (** count per-block executions / dispatch entries (host-side
          observability; simulated charges are unaffected) *)
  block_exec : int array;
  block_dispatch : (int, int) Hashtbl.t;
  block_size : (int, int * int) Hashtbl.t;
  (* superblock tier (above Ark; cycle-accounted, not cycle-neutral) *)
  mutable superblock : bool;
      (** select the superblock run loop: trace formation over hot block
          chains, macro-op fused execution, whole-trace invalidation.
          Only meaningful with [mode = Ark]. *)
  mutable sb_threshold : int;
      (** block executions before its chain is considered for formation *)
  mutable sb_max_blocks : int;  (** max constituent blocks per trace *)
  block_succ : (int, int) Hashtbl.t;
      (** guest block start -> always-taken successor *)
  formed : (int, unit) Hashtbl.t;
      (** guest heads already considered for formation (one-shot) *)
  fuse_next : bool array;
      (** same dense indexing as [host_decode]: word [i] issues fused
          with word [i+1] (Table 4 macro-op idioms) *)
  guest_cover : Bytes.t;
      (** per kernel-image word: non-zero if some translation consumed
          it — the multi-block store-invalidation map *)
  mutable pending_flush : bool;
      (** a guest store hit covered code; the cache is evicted at the
          next block/trace boundary *)
  mutable store : Cache_store.t option;
      (** persistent translation cache (lazy warm replay) *)
  mutable traces_formed : int;
  mutable fusions_applied : int;
  mutable cache_warm_hits : int;
      (** deliberately not a telemetry gauge: warm and cold manifests
          must stay byte-identical and this counter differs *)
  mutable invalidations : int;  (** covered words hit by guest stores *)
  mutable flushes : int;  (** whole-cache evictions performed *)
  (* static-analysis products consumed by the tier (certify + absint) *)
  mutable sb_certify : (Superblock.plan -> bool) option;
      (** online trace certifier: a formed (or warm-loaded) plan is
          admitted only if the hook proves it equivalent to its
          constituent blocks; [None] (default) admits everything *)
  mutable certify_rejects : int;
      (** plans refused by [sb_certify] (warm or fresh) *)
  mutable smc_map : Bytes.t option;
      (** SMC-clean map (same indexing as [guest_cover]); install via
          {!set_smc_map}; dropped on whole-cache flush *)
  probe_exempt : bool array;
      (** host words emitted from SMC-clean guest code (same indexing as
          [host_decode]): their stores skip the cover-map probe *)
  mutable probes_elided : int;
      (** image-span stores that skipped the probe via [probe_exempt] *)
  mutable deadline_ns : int;
      (** bounded-quantum lockstep: the run loops raise {!Quantum} at
          the first resumable point once the M3 clock reaches this
          absolute time. [max_int] (default) = run to completion. The
          scheduler clears it around nested context runs (IRQ delivery,
          fallback draining), which must finish indivisibly. *)
  mutable span_cut : int;
      (** slot of an execution-burst span cut by {!Quantum} ([-1] =
          none); the next {!run} reopens that exact frame instead of
          opening a fresh one, so span telemetry — counts and durations
          both — is identical at every quantum, slicing included *)
}

val cost_taken_branch : int
(** extra cycles per taken branch on the prediction-less M3 *)

val create : soc:Soc.t -> mode:Translator.mode -> unit -> t

val in_cache : t -> int -> bool
(** is the address inside the emitted code cache? *)

val translate_block : t -> int -> int
(** [translate_block t gpc] — host address of the block at guest [gpc],
    translating and emitting on demand *)

val entry_host : t -> int -> int
(** alias of {!translate_block} for starting contexts *)

val guest_reg : t -> Exec.cpu -> int -> int
(** read guest register [i] under the engine's mode (pass-through,
    scratch-emulated or env-emulated) *)

val set_guest_reg : t -> Exec.cpu -> int -> int -> unit

val guest_point_of_host : t -> int -> int option
(** guest address for a saved host resume point (fallback migration) *)

val set_smc_map : t -> (int * int) list -> unit
(** [set_smc_map t ranges] installs the SMC-clean map from proven guest
    address intervals [\[lo, hi)] within the kernel image: superblock
    translations emitted entirely from clean words skip the per-word
    store-invalidation probe. The map describes the pristine image and
    is dropped with the cache if the guest self-modifies. *)

val run : t -> Exec.cpu -> fuel:int -> unit
(** [run t cpu ~fuel] executes translated code until the context returns
    to {!Layout.exit_magic} (raising {!Context_exit}) or a callback
    raises; [cpu] is mutated in place and is always at a valid resume
    point when callbacks fire.
    @raise Host_error on engine errors or fuel exhaustion *)

(** One row of the hot-block profiler (see {!profile_blocks}). *)
type block_profile = {
  bp_guest : int;  (** guest block start address *)
  bp_host : int;  (** host (code-cache) block start address *)
  bp_execs : int;  (** times the hot loop entered this block *)
  bp_dispatches : int;  (** entries through the dispatch slow path *)
  bp_guest_insts : int;  (** guest instructions translated *)
  bp_host_words : int;  (** host words emitted (incl. engine sites) *)
}

val chain_rate : block_profile -> float
(** fraction of block entries that arrived via a chained direct branch
    rather than the dispatch slow path *)

val profile_blocks : t -> block_profile list
(** per-block profile rows, hottest first; meaningful after a run with
    [profile] set *)
