(** Translation-block construction for the three engine configurations.

    {ul
    {- [Ark]: the paper's full design — identity rules + amendments
       ({!Rules}), register/flag passthrough, direct stack and
       call/return (§5);}
    {- [Mid]: baseline + register/flag passthrough only (the middle bar
       of Figure 6): SP/LR/PC still emulated in the env block, returns
       still exit to the engine;}
    {- [Baseline]: the straight QEMU port — every guest register and the
       flags live in memory off the reserved host r11; each guest
       instruction expands into load/compute/store.}}

    The translator emits host instructions plus {e sites}: engine
    trap points (SVC) for direct calls/jumps pending patching, emulated
    services, hooks, indirect calls, engine exits and fallback. *)

open Tk_isa
open Tk_isa.Types

type mode = Ark | Mid | Baseline

(** How the engine reaches non-host-resolvable control transfers. *)
type site_info =
  | S_call of { target : int; ret_guest : int }
      (** direct guest call; patched to a host BL *)
  | S_jump of { target : int }  (** direct branch; patched to host B<cond> *)
  | S_tail of { target : int }  (** block fallthrough; patched to host B *)
  | S_emu of { name : string; resume_guest : int }
      (** downcall into an emulated kernel service *)
  | S_hook of { name : string; resume_guest : int }
      (** observation hook; execution then continues *)
  | S_indirect of { reg : int; ret_guest : int }
      (** call through a register holding a guest address *)
  | S_exit_pc  (** baseline/mid: next guest pc is in [Layout.env_next_pc] *)
  | S_guest_svc of { n : int; resume_guest : int }
      (** forwarded guest hypercall *)
  | S_fallback of { reason : string; gpc : int; skippable : bool }
      (** cold path / untranslatable: migrate to the CPU at [gpc].
          [skippable] = the site is a diagnostic call (WARN/syslog) that
          drain mode may emulate and step over; terminal untranslatable
          sites are not skippable *)

type emit =
  | E_inst of inst
  | E_site of cond * site_info * int  (** cond, info, svc immediate *)

type block = {
  b_guest_start : int;
  b_guest_count : int;  (** guest instructions consumed *)
  b_emits : emit list;
}

(** Classification of a direct call target, provided by ARK from the
    resolved {!Kabi}. *)
type target_class =
  | T_normal
  | T_emu of string
  | T_hook of string
  | T_cold of string

type ctx = {
  mode : mode;
  classify_target : int -> target_class;
  block_limit : int;  (** guest instructions per translation block *)
  read_guest : int -> inst;  (** decode guest word at address *)
  legalize : gpc:int -> inst -> inst list;
      (** ARK-mode legalization hook; the superblock planner overrides
          it to re-home the emulated guest r10 into host r12 across a
          trace. Must raise {!Rules.Untranslatable} for fallback
          instructions, like the default [Rules.legalize]. *)
}

let default_block_limit = 16
let default_legalize ~gpc gi = snd (Rules.legalize ~gpc gi)

(* ---------------------- baseline/mid helpers ------------------------ *)

(* env offsets relative to host r11 = Layout.env_base *)
let off_reg i = 0x40 + (4 * i)
let off_flags = 0x80
let off_next_pc = 0x84

let ldg ~cond rt i =
  at ~cond (Mem { ld = true; size = Word; rt; rn = 11; off = Oimm (off_reg i);
                  idx = Offset })

let stg ~cond rt i =
  at ~cond (Mem { ld = false; size = Word; rt; rn = 11; off = Oimm (off_reg i);
                  idx = Offset })

let load_flags ~cond =
  [ at ~cond (Mem { ld = true; size = Word; rt = 3; rn = 11;
                    off = Oimm off_flags; idx = Offset });
    at ~cond (Msr 3) ]

let save_flags ~cond =
  [ at ~cond (Mrs 3);
    at ~cond (Mem { ld = false; size = Word; rt = 3; rn = 11;
                    off = Oimm off_flags; idx = Offset }) ]

let set_next_pc ~cond rt =
  at ~cond (Mem { ld = false; size = Word; rt; rn = 11;
                  off = Oimm off_next_pc; idx = Offset })

exception Stop  (* block ends *)

(* ------------------------- ARK translation -------------------------- *)

let translate_inst_ark ctx gpc (gi : inst) (push : emit -> unit) =
  let c = gi.cond in
  match gi.op with
  | Bl off -> (
    let target = Bits.mask32 (gpc + off) in
    match ctx.classify_target target with
    | T_emu name ->
      push (E_site (c, S_emu { name; resume_guest = gpc + 4 }, Layout.svc_emu))
    | T_cold name ->
      push (E_site (c, S_fallback { reason = name; gpc; skippable = true }, Layout.svc_fallback))
    | T_hook name ->
      push (E_site (c, S_hook { name; resume_guest = gpc }, Layout.svc_hook));
      push (E_site (c, S_call { target; ret_guest = gpc + 4 }, Layout.svc_call))
    | T_normal ->
      push (E_site (c, S_call { target; ret_guest = gpc + 4 }, Layout.svc_call)))
  | B off ->
    let target = Bits.mask32 (gpc + off) in
    push (E_site (c, S_jump { target }, Layout.svc_jump));
    if c = AL then raise Stop
  | Bx _ ->
    (* return: LR holds a host (code cache) address — §5.3 *)
    push (E_inst gi);
    if c = AL then raise Stop
  | Blx_r reg ->
    push (E_site (c, S_indirect { reg; ret_guest = gpc + 4 }, Layout.svc_indirect))
  | Ldm (_, _, regs) when List.mem pc regs ->
    (* pop {..., pc}: the popped word is a host return address *)
    push (E_inst gi);
    if c = AL then raise Stop
  | Dp ((MOV | ADD | SUB), _, rd, _, _) when rd = pc ->
    push (E_inst gi);
    if c = AL then raise Stop
  | Svc n ->
    push (E_site (c, S_guest_svc { n; resume_guest = gpc + 4 }, Layout.svc_guest))
  | _ -> (
    match ctx.legalize ~gpc gi with
    | hosts -> List.iter (fun h -> push (E_inst h)) hosts
    | exception Rules.Untranslatable reason ->
      push (E_site (AL, S_fallback { reason; gpc; skippable = false }, Layout.svc_fallback));
      raise Stop)

(* ------------------------ Baseline translation ---------------------- *)

(* load op2 from env; returns (setup hosts, operand2 for the final op).
   Shifts stay inline in the final op so the shifter carry-out reaches
   the flags exactly as the guest's would. [s_logical] marks a
   flag-setting logical guest op, whose split register-shift must MOVS. *)
let baseline_op2 ~cond ~s_logical (op2 : operand2) =
  match op2 with
  | Imm v when V7m.imm_ok v -> ([], Imm v)
  | Imm v -> (Rules.materialize ~cond 1 v, Reg 1)
  | Reg r -> ([ ldg ~cond 1 r ], Reg 1)
  | Sreg (r, k, a) -> ([ ldg ~cond 1 r ], Sreg (1, k, a))
  | Sregreg (r, k, rs) ->
    ( [ ldg ~cond 1 r; ldg ~cond 2 rs;
        at ~cond (Dp (MOV, s_logical, 1, 0, Sregreg (1, k, 2))) ],
      Reg 1 )

let translate_inst_baseline ctx gpc (gi : inst) (push : emit -> unit) =
  let c = gi.cond in
  let emit l = List.iter (fun h -> push (E_inst h)) l in
  (* guest flags -> host flags: needed for conditions and carry-in ops;
     the straightforward port just always restores them *)
  emit (load_flags ~cond:AL);
  match gi.op with
  | Dp (o, s, rd, rn, op2) ->
    let s_logical = (s || match o with TST | TEQ -> true | _ -> false)
                    && Rules.is_logical o in
    let setup, op2h = baseline_op2 ~cond:c ~s_logical op2 in
    emit setup;
    let uses_rn = match o with MOV | MVN -> false | _ -> true in
    if uses_rn then emit [ ldg ~cond:c 0 rn ];
    (match o with
    | RSC ->
      (* no host RSC: swap operands into an SBC *)
      (match op2h with
      | Reg 1 -> emit [ at ~cond:c (Dp (SBC, s, 2, 1, Reg 0)) ]
      | _ ->
        emit [ at ~cond:c (Dp (MOV, false, 1, 0, op2h));
               at ~cond:c (Dp (SBC, s, 2, 1, Reg 0)) ])
    | MOV | MVN -> emit [ at ~cond:c (Dp (o, s, 2, 0, op2h)) ]
    | _ -> emit [ at ~cond:c (Dp (o, s, 2, 0, op2h)) ]);
    (match o with
    | CMP | CMN | TST | TEQ -> ()
    | _ -> emit [ stg ~cond:c 2 rd ]);
    if s || (match o with CMP | CMN | TST | TEQ -> true | _ -> false) then
      emit (save_flags ~cond:c)
  | Movw (rd, v) -> emit [ at ~cond:c (Movw (0, v)); stg ~cond:c 0 rd ]
  | Movt (rd, v) ->
    emit [ ldg ~cond:c 0 rd; at ~cond:c (Movt (0, v)); stg ~cond:c 0 rd ]
  | Mul (s, rd, rn, rm) ->
    emit [ ldg ~cond:c 0 rn; ldg ~cond:c 1 rm;
           at ~cond:c (Mul (s, 2, 0, 1)); stg ~cond:c 2 rd ];
    if s then emit (save_flags ~cond:c)
  | Mla (rd, rn, rm, ra) ->
    emit [ ldg ~cond:c 0 rn; ldg ~cond:c 1 rm; ldg ~cond:c 2 ra;
           at ~cond:c (Mla (3, 0, 1, 2)); stg ~cond:c 3 rd ]
  | Udiv (rd, rn, rm) ->
    emit [ ldg ~cond:c 0 rn; ldg ~cond:c 1 rm;
           at ~cond:c (Udiv (2, 0, 1)); stg ~cond:c 2 rd ]
  | Clz (rd, rm) -> emit [ ldg ~cond:c 0 rm; at ~cond:c (Clz (1, 0)); stg ~cond:c 1 rd ]
  | Sxt (sz, rd, rm) ->
    emit [ ldg ~cond:c 0 rm; at ~cond:c (Sxt (sz, 1, 0)); stg ~cond:c 1 rd ]
  | Uxt (sz, rd, rm) ->
    emit [ ldg ~cond:c 0 rm; at ~cond:c (Uxt (sz, 1, 0)); stg ~cond:c 1 rd ]
  | Rev (rd, rm) -> emit [ ldg ~cond:c 0 rm; at ~cond:c (Rev (1, 0)); stg ~cond:c 1 rd ]
  | Mrs rd ->
    emit [ at ~cond:c (Mem { ld = true; size = Word; rt = 0; rn = 11;
                             off = Oimm off_flags; idx = Offset });
           stg ~cond:c 0 rd ]
  | Msr rs ->
    emit [ ldg ~cond:c 0 rs;
           at ~cond:c (Mem { ld = false; size = Word; rt = 0; rn = 11;
                             off = Oimm off_flags; idx = Offset }) ]
  | Swp (rd, rm, rn) ->
    emit [ ldg ~cond:c 0 rn;
           at ~cond:c (Mem { ld = true; size = Word; rt = 1; rn = 0;
                             off = Oimm 0; idx = Offset });
           ldg ~cond:c 2 rm;
           at ~cond:c (Mem { ld = false; size = Word; rt = 2; rn = 0;
                             off = Oimm 0; idx = Offset });
           stg ~cond:c 1 rd ]
  | Mem { ld; size; rt; rn; off; idx } ->
    emit [ ldg ~cond:c 0 rn ];
    (* offset value -> r1 *)
    (match off with
    | Oimm o -> emit (Rules.materialize ~cond:c 1 (Bits.mask32 o))
    | Oreg (rm, k, a) ->
      emit [ ldg ~cond:c 1 rm ];
      if not (k = LSL && a = 0) then
        emit [ at ~cond:c (Dp (MOV, false, 1, 0, Sreg (1, k, a))) ]);
    (* effective address -> r2 *)
    (match idx with
    | Offset | Pre -> emit [ at ~cond:c (Dp (ADD, false, 2, 0, Reg 1)) ]
    | Post -> emit [ at ~cond:c (Dp (MOV, false, 2, 0, Reg 0)) ]);
    if ld then begin
      emit [ at ~cond:c (Mem { ld = true; size; rt = 3; rn = 2; off = Oimm 0;
                               idx = Offset }) ];
      if rt = pc then begin
        emit [ set_next_pc ~cond:c 3 ];
        push (E_site (c, S_exit_pc, Layout.svc_exit_pc))
      end
      else emit [ stg ~cond:c 3 rt ]
    end
    else
      emit [ ldg ~cond:c 3 rt;
             at ~cond:c (Mem { ld = false; size; rt = 3; rn = 2; off = Oimm 0;
                               idx = Offset }) ];
    (match idx with
    | Pre | Post ->
      emit [ at ~cond:c (Dp (ADD, false, 0, 0, Reg 1)); stg ~cond:c 0 rn ]
    | Offset -> ())
  | Stm (rn, wb, regs) ->
    let n = List.length regs in
    emit [ ldg ~cond:c 0 rn;
           at ~cond:c (Dp (SUB, false, 0, 0, Imm (4 * n))) ];
    List.iteri
      (fun i r ->
        emit [ ldg ~cond:c 2 r;
               at ~cond:c (Mem { ld = false; size = Word; rt = 2; rn = 0;
                                 off = Oimm (4 * i); idx = Offset }) ])
      regs;
    if wb then emit [ stg ~cond:c 0 rn ]
  | Ldm (rn, wb, regs) ->
    let n = List.length regs in
    let has_pc = List.mem pc regs in
    emit [ ldg ~cond:c 0 rn ];
    List.iteri
      (fun i r ->
        emit [ at ~cond:c (Mem { ld = true; size = Word; rt = 2; rn = 0;
                                 off = Oimm (4 * i); idx = Offset }) ];
        if r = pc then emit [ set_next_pc ~cond:c 2 ]
        else emit [ stg ~cond:c 2 r ])
      regs;
    if wb then
      emit [ at ~cond:c (Dp (ADD, false, 0, 0, Imm (4 * n))); stg ~cond:c 0 rn ];
    if has_pc then begin
      push (E_site (c, S_exit_pc, Layout.svc_exit_pc));
      if c = AL then raise Stop
    end
  | B off ->
    push (E_site (c, S_jump { target = Bits.mask32 (gpc + off) }, Layout.svc_jump));
    if c = AL then raise Stop
  | Bl off -> (
    let target = Bits.mask32 (gpc + off) in
    match ctx.classify_target target with
    | T_emu name ->
      (* marshal args: the emu handler reads guest state from env *)
      push (E_site (c, S_emu { name; resume_guest = gpc + 4 }, Layout.svc_emu))
    | T_cold name ->
      push (E_site (c, S_fallback { reason = name; gpc; skippable = true }, Layout.svc_fallback))
    | T_hook name ->
      push (E_site (c, S_hook { name; resume_guest = gpc }, Layout.svc_hook));
      emit (Rules.movw_movt ~cond:c 3 (gpc + 4));
      emit [ stg ~cond:c 3 lr ];
      push (E_site (c, S_jump { target }, Layout.svc_jump));
      if c = AL then raise Stop
    | T_normal ->
      emit (Rules.movw_movt ~cond:c 3 (gpc + 4));
      emit [ stg ~cond:c 3 lr ];
      push (E_site (c, S_jump { target }, Layout.svc_jump));
      if c = AL then raise Stop)
  | Bx r ->
    emit [ ldg ~cond:c 3 r; set_next_pc ~cond:c 3 ];
    push (E_site (c, S_exit_pc, Layout.svc_exit_pc));
    if c = AL then raise Stop
  | Blx_r r ->
    emit [ ldg ~cond:c 3 r; set_next_pc ~cond:c 3 ];
    emit (Rules.movw_movt ~cond:c 2 (gpc + 4));
    emit [ stg ~cond:c 2 lr ];
    push (E_site (c, S_exit_pc, Layout.svc_exit_pc));
    if c = AL then raise Stop
  | Svc n ->
    emit [ ldg ~cond:c 0 0; ldg ~cond:c 1 1; ldg ~cond:c 2 2 ];
    push (E_site (c, S_guest_svc { n; resume_guest = gpc + 4 }, Layout.svc_guest));
    emit [ stg ~cond:c 0 0 ]
  | Nop -> ()
  | Wfi | Cps _ | Irq_ret | Udf _ ->
    push (E_site (AL, S_fallback { reason = "unsupported in baseline"; gpc; skippable = false },
                  Layout.svc_fallback));
    raise Stop

(* ------------------------- Mid translation -------------------------- *)

(* r0-r9 and r12 pass through; r10 scratch, r11 env base; SP/LR/PC
   emulated; flags pass through. *)
let mid_emulated r = r = 10 || r = 11 || r = sp || r = lr || r = pc

let translate_inst_mid ctx gpc (gi : inst) (push : emit -> unit) =
  let c = gi.cond in
  let emit l = List.iter (fun h -> push (E_inst h)) l in
  let fallback reason =
    push (E_site (AL, S_fallback { reason; gpc; skippable = false }, Layout.svc_fallback));
    raise Stop
  in
  match gi.op with
  | B off ->
    push (E_site (c, S_jump { target = Bits.mask32 (gpc + off) }, Layout.svc_jump));
    if c = AL then raise Stop
  | Bl off -> (
    let target = Bits.mask32 (gpc + off) in
    match ctx.classify_target target with
    | T_emu name ->
      push (E_site (c, S_emu { name; resume_guest = gpc + 4 }, Layout.svc_emu))
    | T_cold name ->
      push (E_site (c, S_fallback { reason = name; gpc; skippable = true }, Layout.svc_fallback))
    | T_hook name ->
      push (E_site (c, S_hook { name; resume_guest = gpc }, Layout.svc_hook));
      emit (Rules.movw_movt ~cond:c 10 (gpc + 4));
      emit [ stg ~cond:c 10 lr ];
      push (E_site (c, S_jump { target }, Layout.svc_jump));
      if c = AL then raise Stop
    | T_normal ->
      emit (Rules.movw_movt ~cond:c 10 (gpc + 4));
      emit [ stg ~cond:c 10 lr ];
      push (E_site (c, S_jump { target }, Layout.svc_jump));
      if c = AL then raise Stop)
  | Bx r when not (mid_emulated r) ->
    emit [ set_next_pc ~cond:c r ];
    push (E_site (c, S_exit_pc, Layout.svc_exit_pc));
    if c = AL then raise Stop
  | Bx r ->
    emit [ ldg ~cond:c 10 r; set_next_pc ~cond:c 10 ];
    push (E_site (c, S_exit_pc, Layout.svc_exit_pc));
    if c = AL then raise Stop
  | Blx_r r ->
    if mid_emulated r then fallback "blx through emulated reg";
    emit [ set_next_pc ~cond:c r ];
    emit (Rules.movw_movt ~cond:c 10 (gpc + 4));
    emit [ stg ~cond:c 10 lr ];
    push (E_site (c, S_exit_pc, Layout.svc_exit_pc));
    if c = AL then raise Stop
  | Svc n ->
    push (E_site (c, S_guest_svc { n; resume_guest = gpc + 4 }, Layout.svc_guest))
  | Stm (rn, wb, regs) when rn = sp ->
    let n = List.length regs in
    emit [ ldg ~cond:c 10 sp;
           at ~cond:c (Dp (SUB, false, 10, 10, Imm (4 * n))) ];
    List.iteri
      (fun i r ->
        if r = lr then
          emit [ ldg ~cond:c 12 lr;
                 at ~cond:c (Mem { ld = false; size = Word; rt = 12; rn = 10;
                                   off = Oimm (4 * i); idx = Offset }) ]
        else if mid_emulated r then fallback "stm of emulated reg"
        else
          emit [ at ~cond:c (Mem { ld = false; size = Word; rt = r; rn = 10;
                                   off = Oimm (4 * i); idx = Offset }) ])
      regs;
    if wb then emit [ stg ~cond:c 10 sp ]
  | Ldm (rn, wb, regs) when rn = sp ->
    let n = List.length regs in
    let has_pc = List.mem pc regs in
    emit [ ldg ~cond:c 10 sp ];
    List.iteri
      (fun i r ->
        if r = pc then
          emit [ at ~cond:c (Mem { ld = true; size = Word; rt = 12; rn = 10;
                                   off = Oimm (4 * i); idx = Offset });
                 set_next_pc ~cond:c 12 ]
        else if r = lr then
          emit [ at ~cond:c (Mem { ld = true; size = Word; rt = 12; rn = 10;
                                   off = Oimm (4 * i); idx = Offset });
                 stg ~cond:c 12 lr ]
        else if mid_emulated r then fallback "ldm of emulated reg"
        else
          emit [ at ~cond:c (Mem { ld = true; size = Word; rt = r; rn = 10;
                                   off = Oimm (4 * i); idx = Offset }) ])
      regs;
    if wb then
      emit [ at ~cond:c (Dp (ADD, false, 10, 10, Imm (4 * n)));
             stg ~cond:c 10 sp ];
    if has_pc then begin
      push (E_site (c, S_exit_pc, Layout.svc_exit_pc));
      if c = AL then raise Stop
    end
  | _ ->
    let reads = regs_read gi and writes = regs_written gi in
    let emul =
      List.sort_uniq compare (List.filter mid_emulated (reads @ writes))
    in
    if emul = [] then (
      (* same as ARK, except r10 is a free host scratch (no wrap) *)
      match Rules.legalize_nowrap ~gpc ~sc:10 gi with
      | _, hosts -> List.iter (fun h -> push (E_inst h)) hosts
      | exception Rules.Untranslatable reason -> fallback reason)
    else if emul = [ sp ] then (
      (* sp-based: load the emulated sp into r10, substitute everywhere,
         amend with the dead r12, store sp back if written *)
      emit [ ldg ~cond:c 10 sp ];
      match
        Rules.legalize_nowrap ~gpc ~sc:12 (Rules.subst_all ~old:sp ~rep:10 gi)
      with
      | _, hosts ->
        List.iter (fun h -> push (E_inst h)) hosts;
        if List.mem sp writes then emit [ stg ~cond:c 10 sp ]
      | exception Rules.Untranslatable reason -> fallback reason)
    else fallback "mid: emulated register use"

(* --------------------------- block driver --------------------------- *)

let strip_emit = function
  | E_inst i -> E_inst { i with cond = AL }
  | E_site (_, info, code) -> E_site (AL, info, code)

(* Mid/Baseline build multi-emit sequences by hand, so they need the same
   once-only condition evaluation Rules.wrap_cond gives ARK: a skip
   branch with the inverse condition around an unconditional body. For
   Baseline the two flag-restoring emits stay in front (host flags must
   hold the guest flags before the skip branch tests them). *)
let wrap_emits mode (gi : inst) emits =
  let skip n =
    E_inst (at ~cond:(negate_cond gi.cond) (B (4 * (n + 1))))
  in
  match mode with
  | Ark -> emits
  | Mid ->
    if gi.cond = AL || List.length emits <= 1 then emits
    else skip (List.length emits) :: List.map strip_emit emits
  | Baseline -> (
    match emits with
    | a :: b :: rest when gi.cond <> AL && List.length rest > 1 ->
      a :: b :: skip (List.length rest) :: List.map strip_emit rest
    | _ -> emits)

(** [translate ctx ~gpc] builds one translation block starting at guest
    address [gpc]. *)
let translate ctx ~gpc : block =
  let emits = ref [] in
  let one =
    match ctx.mode with
    | Ark -> translate_inst_ark ctx
    | Mid -> translate_inst_mid ctx
    | Baseline -> translate_inst_baseline ctx
  in
  let count = ref 0 in
  let stopped = ref false in
  (try
     while (not !stopped) && !count < ctx.block_limit do
       let a = gpc + (4 * !count) in
       let gi = ctx.read_guest a in
       incr count;
       let local = ref [] in
       (try one a gi (fun e -> local := e :: !local)
        with Stop -> stopped := true);
       List.iter
         (fun e -> emits := e :: !emits)
         (wrap_emits ctx.mode gi (List.rev !local))
     done;
     if not !stopped then
       (* fell off the limit: chain to the next guest instruction *)
       emits :=
         E_site (AL, S_tail { target = gpc + (4 * !count) }, Layout.svc_tail)
         :: !emits
   with Stop -> ());
  { b_guest_start = gpc; b_guest_count = !count; b_emits = List.rev !emits }
