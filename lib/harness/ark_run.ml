(** The offloaded execution arm: ARK on the peripheral core.

    This module plays the paper's small CPU-side kernel module: it is
    compiled "with the kernel" (so it may use {!Tk_kernel} internals to
    collect handoff data), builds the {!Transkernel.Manifest}, performs
    the handoff around each device phase, and — on fallback — receives
    migrated contexts back into native execution (§6).

    ARK itself ({!Transkernel.Ark}) sees none of the kernel's internals:
    the manifest carries the Table 2 ABI plus opaque pointers. *)

open Tk_isa
open Tk_machine
open Tk_kernel
open Tk_drivers
module Ark = Transkernel.Ark
module Manifest = Transkernel.Manifest
module Translator = Tk_dbt.Translator

type phase_event = {
  ev_code : int;
  ev_time_ns : int;
  ev_m3 : Core.activity;
}

type t = {
  nat : Native_run.t;  (** the booted platform (native side) *)
  ark : Ark.t;
  mutable events : phase_event list;
  mutable fallbacks : (string * int) list;  (** reason, time *)
  cache_dir : string option;
      (** persistent translation cache directory, when warm-starting *)
}

let plat t = t.nat.Native_run.plat

(* ------------------------ manifest (handoff) ------------------------ *)

let build_manifest (plat : Platform.t) : Manifest.t =
  let image = plat.built.Image.image in
  let lay = plat.built.Image.layout in
  let abi = plat.built.Image.abi in
  (* collect registered threaded IRQs: module-side code, entitled to walk
     its own kernel's structures *)
  let mem = plat.soc.Soc.mem in
  let descs = ref [] in
  let irq_desc = Asm.symbol image "irq_desc" in
  for line = 0 to Soc.nlines - 1 do
    let d = irq_desc + (line * lay.Layout.irqd_size) in
    if Mem.ram_read mem (d + lay.Layout.irqd_thread_fn) 4 <> 0 then
      descs := d :: !descs
  done;
  { Manifest.abi_addr_of = abi.Kabi.addr_of;
    abi_name_of = abi.Kabi.name_of_addr;
    jiffies_addr = abi.Kabi.jiffies_addr;
    entry_suspend = Asm.symbol image "dpm_suspend";
    entry_resume = Asm.symbol image "dpm_resume";
    workqueues =
      List.map (Asm.symbol image) [ "system_wq"; "pm_wq"; "wifi_wq" ];
    threaded_irqs = List.rev !descs;
    tick_ns = Layout.jiffy_ns;
    ms_ns = Layout.ms_ns;
    exit_to = Asm.symbol image "call_exit_stub" }

(** [create ?layout ?mode ?sleep_ms ()] boots the platform natively and
    prepares ARK. [mode] picks the DBT optimization level; [superblock]
    stacks the trace tier on top of [Ark]; [cache_dir] attaches a
    persistent translation cache keyed by the pristine image digest (a
    stale or missing file is an ordinary cold start). *)
let create ?layout ?built ?devices ?(mode = Translator.Ark)
    ?(superblock = false) ?cache_dir ?sleep_ms ?m3_cache_kb () =
  let plat = Platform.create ?layout ?built ?m3_cache_kb () in
  let nat = Native_run.create ?devices ?sleep_ms ~plat () in
  let man = build_manifest plat in
  let ark = Ark.create ~soc:plat.soc ~mode ~superblock ~man () in
  (match cache_dir with
  | Some dir when mode = Translator.Ark ->
    let image = plat.built.Image.image in
    let key =
      Tk_dbt.Cache_store.key_of_image ~base:image.Asm.base
        ~words:image.Asm.words
    in
    ark.Ark.engine.Tk_dbt.Engine.store <-
      Some
        (match Tk_dbt.Cache_store.load ~dir ~key with
        | Some st -> st
        | None -> Tk_dbt.Cache_store.create ~key)
  | Some _ | None -> ());
  let t = { nat; ark; events = []; fallbacks = []; cache_dir } in
  (* span-tracer attribution: fallbacks taken, from ARK's own counter *)
  Tk_stats.Span.add_gauge plat.soc.Soc.spans "fallbacks" (fun () ->
      Tk_stats.Counters.get ark.Ark.counters "fallback.hits");
  ark.Ark.on_hypercall <-
    (fun n cpu ->
      if n = Hyper.phase_mark then begin
        let code = Tk_dbt.Engine.guest_reg ark.Ark.engine cpu 0 in
        t.events <-
          { ev_code = code;
            ev_time_ns = plat.soc.Soc.clock.Clock.now;
            ev_m3 = Core.activity plat.soc.Soc.m3 }
          :: t.events;
        Tk_stats.Trace.phase plat.soc.Soc.trace code;
        Tk_stats.Timeseries.phase plat.soc.Soc.sampler code;
        Tk_stats.Span.phase plat.soc.Soc.spans code
      end
      else if n = Hyper.warn_hit then
        t.nat.Native_run.warns <-
          Tk_dbt.Engine.guest_reg ark.Ark.engine cpu 0
          :: t.nat.Native_run.warns);
  t

(** [save_cache t] persists the engine's translation cache to the
    directory given at [create] time (no-op otherwise, or when the
    image self-modified and the store was dropped). *)
let save_cache t =
  match (t.cache_dir, t.ark.Ark.engine.Tk_dbt.Engine.store) with
  | Some dir, Some st -> Tk_dbt.Cache_store.save ~dir st
  | _ -> ()

(* resume a migrated context natively: the receiver-thread step of §6 *)
let receive_fallback t (st : Ark.guest_state) =
  let nat = t.nat in
  let cpu = nat.Native_run.interp.Interp.cpu in
  Array.blit st.Ark.g_regs 0 cpu.Exec.r 0 16;
  Exec.set_flags_word cpu st.Ark.g_flags;
  cpu.Exec.irq_on <- true;
  (try Interp.run nat.Native_run.interp ~fuel:200_000_000
   with Interp.Halt _ -> ());
  nat.Native_run.last_exit_r0

let record t code =
  t.events <-
    { ev_code = code; ev_time_ns = (plat t).soc.Soc.clock.Clock.now;
      ev_m3 = Core.activity (plat t).soc.Soc.m3 }
    :: t.events;
  Tk_stats.Trace.phase (plat t).soc.Soc.trace code;
  Tk_stats.Timeseries.phase (plat t).soc.Soc.sampler code;
  Tk_stats.Span.phase (plat t).soc.Soc.spans code

(** [trace t] — the platform's flight recorder (enable/dump through
    {!Tk_stats.Trace}). *)
let trace t = (plat t).soc.Soc.trace

(** [suspend_resume_cycle t] runs one full ephemeral-task cycle with the
    device phases offloaded: native freeze -> handoff -> ARK dpm_suspend
    -> platform sleep -> ARK dpm_resume -> handback -> native thaw.
    Returns [`Ok] or [`Fell_back reason]. *)
let suspend_resume_cycle ?(prepare_traffic = true) ?(resume_native = false) t =
  let nat = t.nat in
  let soc = (plat t).soc in
  if prepare_traffic && List.mem "wifi" nat.Native_run.devices then
    ignore (Native_run.call nat "wifi_prepare_traffic" []);
  ignore (Native_run.call nat "freeze_processes" []);
  (* ---- handoff: the kernel shuts down the CPU and passes control ---- *)
  Timer.stop_tick soc.Soc.cpu_timer;
  record t Hyper.ph_suspend_begin;
  let result = ref `Ok in
  (match Ark.run_phase t.ark `Suspend with
  | Ark.Completed -> ()
  | Ark.Fell_back { fb_reason; fb_state } ->
    t.fallbacks <- (fb_reason, soc.Soc.clock.Clock.now) :: t.fallbacks;
    result := `Fell_back fb_reason;
    (* CPU takes over: restart its tick, finish the phase natively *)
    Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
    ignore (receive_fallback t fb_state);
    Timer.stop_tick soc.Soc.cpu_timer);
  record t Hyper.ph_suspend_end;
  (* ---- platform deep sleep ---- *)
  record t 900;
  Clock.advance soc.Soc.clock nat.Native_run.sleep_ns;
  nat.Native_run.sleep_ns_total <-
    nat.Native_run.sleep_ns_total + nat.Native_run.sleep_ns;
  record t 901;
  (* ---- resume ---- *)
  record t Hyper.ph_resume_begin;
  (if resume_native then begin
     (* urgent wakeup: the kernel resumes on the CPU natively (§4) *)
     Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
     ignore (Native_run.call nat "dpm_resume" []);
     Timer.stop_tick soc.Soc.cpu_timer
   end
   else
     match Ark.run_phase t.ark `Resume with
     | Ark.Completed -> ()
     | Ark.Fell_back { fb_reason; fb_state } ->
       t.fallbacks <- (fb_reason, soc.Soc.clock.Clock.now) :: t.fallbacks;
       result := `Fell_back fb_reason;
       Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
       ignore (receive_fallback t fb_state);
       Timer.stop_tick soc.Soc.cpu_timer);
  record t Hyper.ph_resume_end;
  (* ---- handback: CPU resumes, thaws user space ---- *)
  Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
  ignore (Native_run.call nat "thaw_processes" []);
  !result

(** Per-cycle phase events, oldest first (same shape as the native
    runner's). *)
let events_of_cycle t ~before =
  let evs = ref [] and n = ref (List.length t.events - before) in
  List.iter
    (fun e ->
      if !n > 0 then begin
        evs := e :: !evs;
        decr n
      end)
    t.events;
  !evs
