(** The offloaded execution arm: ARK on the peripheral core.

    This module plays the paper's small CPU-side kernel module: it is
    compiled "with the kernel" (so it may use {!Tk_kernel} internals to
    collect handoff data), builds the {!Transkernel.Manifest}, performs
    the handoff around each device phase, and — on fallback — receives
    migrated contexts back into native execution (§6).

    ARK itself ({!Transkernel.Ark}) sees none of the kernel's internals:
    the manifest carries the Table 2 ABI plus opaque pointers. *)

open Tk_isa
open Tk_machine
open Tk_kernel
open Tk_drivers
module Ark = Transkernel.Ark
module Manifest = Transkernel.Manifest
module Translator = Tk_dbt.Translator

type phase_event = {
  ev_code : int;
  ev_time_ns : int;
  ev_m3 : Core.activity;
}

type t = {
  nat : Native_run.t;  (** the booted platform (native side) *)
  ark : Ark.t;
  mutable events : phase_event list;
  mutable fallbacks : (string * int) list;  (** reason, time *)
  cache_dir : string option;
      (** persistent translation cache directory, when warm-starting *)
  mutable quantum : int;
      (** bounded-quantum lockstep: slice offloaded phases every this
          many ns (0 = the sequential scheduler). At [1] digests are
          byte-identical to sequential — larger quanta only batch the
          slicing, they never change architectural results. *)
  mutable ls_rounds : int;  (** lockstep rounds driven (cumulative) *)
  mutable ls_commits : int;  (** barrier commits applied (cumulative) *)
  mutable ls_max_skew_ns : int;
      (** widest cross-lane clock gap seen at any barrier *)
}

let plat t = t.nat.Native_run.plat

(* ------------------------ manifest (handoff) ------------------------ *)

let build_manifest (plat : Platform.t) : Manifest.t =
  let image = plat.built.Image.image in
  let lay = plat.built.Image.layout in
  let abi = plat.built.Image.abi in
  (* collect registered threaded IRQs: module-side code, entitled to walk
     its own kernel's structures *)
  let mem = plat.soc.Soc.mem in
  let descs = ref [] in
  let irq_desc = Asm.symbol image "irq_desc" in
  for line = 0 to Soc.nlines - 1 do
    let d = irq_desc + (line * lay.Layout.irqd_size) in
    if Mem.ram_read mem (d + lay.Layout.irqd_thread_fn) 4 <> 0 then
      descs := d :: !descs
  done;
  { Manifest.abi_addr_of = abi.Kabi.addr_of;
    abi_name_of = abi.Kabi.name_of_addr;
    jiffies_addr = abi.Kabi.jiffies_addr;
    entry_suspend = Asm.symbol image "dpm_suspend";
    entry_resume = Asm.symbol image "dpm_resume";
    workqueues =
      List.map (Asm.symbol image) [ "system_wq"; "pm_wq"; "wifi_wq" ];
    threaded_irqs = List.rev !descs;
    tick_ns = Layout.jiffy_ns;
    ms_ns = Layout.ms_ns;
    exit_to = Asm.symbol image "call_exit_stub" }

(** [create ?layout ?mode ?sleep_ms ()] boots the platform natively and
    prepares ARK. [mode] picks the DBT optimization level; [superblock]
    stacks the trace tier on top of [Ark]; [cache_dir] attaches a
    persistent translation cache keyed by the pristine image digest (a
    stale or missing file is an ordinary cold start). *)
let create ?layout ?built ?devices ?(mode = Translator.Ark)
    ?(superblock = false) ?cache_dir ?sleep_ms ?m3_cache_kb
    ?(quantum = 0) () =
  let plat = Platform.create ?layout ?built ?m3_cache_kb () in
  let nat = Native_run.create ?devices ?sleep_ms ~plat () in
  let man = build_manifest plat in
  let ark = Ark.create ~soc:plat.soc ~mode ~superblock ~man () in
  (match cache_dir with
  | Some dir when mode = Translator.Ark ->
    let image = plat.built.Image.image in
    let key =
      Tk_dbt.Cache_store.key_of_image ~base:image.Asm.base
        ~words:image.Asm.words
    in
    ark.Ark.engine.Tk_dbt.Engine.store <-
      Some
        (match Tk_dbt.Cache_store.load ~dir ~key with
        | Some st -> st
        | None -> Tk_dbt.Cache_store.create ~key)
  | Some _ | None -> ());
  let t =
    { nat; ark; events = []; fallbacks = []; cache_dir; quantum;
      ls_rounds = 0; ls_commits = 0; ls_max_skew_ns = 0 }
  in
  (* span-tracer attribution: fallbacks taken, from ARK's own counter *)
  Tk_stats.Span.add_gauge plat.soc.Soc.spans "fallbacks" (fun () ->
      Tk_stats.Counters.get ark.Ark.counters "fallback.hits");
  ark.Ark.on_hypercall <-
    (fun n cpu ->
      if n = Hyper.phase_mark then begin
        let code = Tk_dbt.Engine.guest_reg ark.Ark.engine cpu 0 in
        (* M3-side marks read the M3's own clock: the platform clock,
           or its private lane inside a lockstep concurrent segment *)
        t.events <-
          { ev_code = code;
            ev_time_ns = plat.soc.Soc.m3.Core.clock.Clock.now;
            ev_m3 = Core.activity plat.soc.Soc.m3 }
          :: t.events;
        Tk_stats.Trace.phase plat.soc.Soc.trace code;
        Tk_stats.Timeseries.phase plat.soc.Soc.sampler code;
        Tk_stats.Span.phase plat.soc.Soc.spans code
      end
      else if n = Hyper.warn_hit then
        t.nat.Native_run.warns <-
          Tk_dbt.Engine.guest_reg ark.Ark.engine cpu 0
          :: t.nat.Native_run.warns);
  t

(** [save_cache t] persists the engine's translation cache to the
    directory given at [create] time (no-op otherwise, or when the
    image self-modified and the store was dropped). *)
let save_cache t =
  match (t.cache_dir, t.ark.Ark.engine.Tk_dbt.Engine.store) with
  | Some dir, Some st -> Tk_dbt.Cache_store.save ~dir st
  | _ -> ()

(* resume a migrated context natively: the receiver-thread step of §6 *)
let receive_fallback t (st : Ark.guest_state) =
  let nat = t.nat in
  let cpu = nat.Native_run.interp.Interp.cpu in
  Array.blit st.Ark.g_regs 0 cpu.Exec.r 0 16;
  Exec.set_flags_word cpu st.Ark.g_flags;
  cpu.Exec.irq_on <- true;
  (try Interp.run nat.Native_run.interp ~fuel:200_000_000
   with Interp.Halt _ -> ());
  nat.Native_run.last_exit_r0

(* [offload_phase t which] — run one offloaded phase under the
   configured scheduler: sequential ([quantum = 0]) or sliced on the
   shared clock in bounded quanta. The slicing pauses only at resumable
   points (instruction/probe boundaries, the idle loop), so every
   quantum produces the same architectural results — at [--quantum 1]
   this is CI-gated byte-identity. *)
let offload_phase t which : Ark.outcome =
  if t.quantum <= 0 then Ark.run_phase t.ark which
  else begin
    let ark = t.ark in
    let m3clock = (plat t).soc.Soc.m3.Core.clock in
    Ark.phase_begin ark which;
    Fun.protect
      ~finally:(fun () -> ark.Ark.tick_on <- false)
      (fun () ->
        let deadline = ref m3clock.Clock.now in
        let rec go () =
          deadline := !deadline + t.quantum;
          t.ls_rounds <- t.ls_rounds + 1;
          match Ark.phase_step ark ~deadline:!deadline with
          | `Runnable -> go ()
          | `Done -> ()
          | `Blocked ->
            (* solo lane: no cross-core commit can ever wake it — the
               same condition the sequential scheduler calls deadlock *)
            raise (Ark.Ark_error "ARK deadlock: nothing runnable and no events")
        in
        go ();
        Ark.phase_finish ark)
  end

let record t code =
  t.events <-
    { ev_code = code; ev_time_ns = (plat t).soc.Soc.clock.Clock.now;
      ev_m3 = Core.activity (plat t).soc.Soc.m3 }
    :: t.events;
  Tk_stats.Trace.phase (plat t).soc.Soc.trace code;
  Tk_stats.Timeseries.phase (plat t).soc.Soc.sampler code;
  Tk_stats.Span.phase (plat t).soc.Soc.spans code

(** [trace t] — the platform's flight recorder (enable/dump through
    {!Tk_stats.Trace}). *)
let trace t = (plat t).soc.Soc.trace

(** [suspend_resume_cycle t] runs one full ephemeral-task cycle with the
    device phases offloaded: native freeze -> handoff -> ARK dpm_suspend
    -> platform sleep -> ARK dpm_resume -> handback -> native thaw.
    Returns [`Ok] or [`Fell_back reason]. *)
let suspend_resume_cycle ?(prepare_traffic = true) ?(resume_native = false) t =
  let nat = t.nat in
  let soc = (plat t).soc in
  if prepare_traffic && List.mem "wifi" nat.Native_run.devices then
    ignore (Native_run.call nat "wifi_prepare_traffic" []);
  ignore (Native_run.call nat "freeze_processes" []);
  (* ---- handoff: the kernel shuts down the CPU and passes control ---- *)
  Timer.stop_tick soc.Soc.cpu_timer;
  record t Hyper.ph_suspend_begin;
  let result = ref `Ok in
  (match offload_phase t `Suspend with
  | Ark.Completed -> ()
  | Ark.Fell_back { fb_reason; fb_state } ->
    t.fallbacks <- (fb_reason, soc.Soc.clock.Clock.now) :: t.fallbacks;
    result := `Fell_back fb_reason;
    (* CPU takes over: restart its tick, finish the phase natively *)
    Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
    ignore (receive_fallback t fb_state);
    Timer.stop_tick soc.Soc.cpu_timer);
  record t Hyper.ph_suspend_end;
  (* ---- platform deep sleep ---- *)
  record t 900;
  Clock.advance soc.Soc.clock nat.Native_run.sleep_ns;
  nat.Native_run.sleep_ns_total <-
    nat.Native_run.sleep_ns_total + nat.Native_run.sleep_ns;
  record t 901;
  (* ---- resume ---- *)
  record t Hyper.ph_resume_begin;
  (if resume_native then begin
     (* urgent wakeup: the kernel resumes on the CPU natively (§4) *)
     Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
     ignore (Native_run.call nat "dpm_resume" []);
     Timer.stop_tick soc.Soc.cpu_timer
   end
   else
     match offload_phase t `Resume with
     | Ark.Completed -> ()
     | Ark.Fell_back { fb_reason; fb_state } ->
       t.fallbacks <- (fb_reason, soc.Soc.clock.Clock.now) :: t.fallbacks;
       result := `Fell_back fb_reason;
       Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
       ignore (receive_fallback t fb_state);
       Timer.stop_tick soc.Soc.cpu_timer);
  record t Hyper.ph_resume_end;
  (* ---- handback: CPU resumes, thaws user space ---- *)
  Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
  ignore (Native_run.call nat "thaw_processes" []);
  !result

(* ---------------------- concurrent phases ------------------------- *)

(* scratch DRAM above the code cache: touched by nothing else in the
   platform, so the A9 can churn it while ARK owns the guest kernel *)
let workload_base = Soc.code_cache_base + Soc.code_cache_size

(* [concurrent_phase t which ~domains ~workload_bytes] — run one
   offloaded phase on the M3 *while* the A9 executes a guest CPU
   workload (an IRQ-masked [memset] over scratch DRAM), under the
   bounded-quantum lockstep scheduler:

   - the M3 gets a private clock lane (events already armed for devices
     move with it — devices are M3-owned during the segment, via
     [Soc.sched_clock]);
   - the A9 keeps the platform clock and runs with IRQs masked: no MMIO,
     no events, no shared guest state (it only touches the scratch), so
     between barriers the lanes' mutable state is disjoint and
     [~domains:true] may run them on separate host domains;
   - at the end the lane merges back into the platform clock preserving
     the global (at, seq) event order, and the platform returns to the
     sequential single-clock regime. *)
let concurrent_phase t which ~domains ~workload_bytes : Ark.outcome =
  let soc = (plat t).soc in
  let nat = t.nat in
  let quantum = if t.quantum > 0 then t.quantum else 20_000 in
  (* the handoff prelude runs in the single-clock regime: entry
     translation charges M3 time, and both lanes must observe it before
     they split (Lockstep.create requires a common start time) *)
  Ark.phase_begin t.ark which;
  (* split the M3 lane and move the pending events (device completions,
     traffic arrivals, the scheduler tick just armed) onto it: during
     the segment the devices complete in M3 time *)
  let main = soc.Soc.clock in
  let lane = Clock.lane main in
  let evs = Clock.pending main in
  Clock.restore_pending main ~now:main.Clock.now
    ~seq:(Clock.seq_value main) [];
  Clock.restore_pending lane ~now:lane.Clock.now
    ~seq:(Clock.seq_value lane) evs;
  Core.set_clock soc.Soc.m3 lane;
  Timer.set_clock soc.Soc.m3_timer lane;
  soc.Soc.sched_clock <- lane;
  (* A9 workload: staged, IRQ-masked, pure CPU + scratch DRAM *)
  let cpu = nat.Native_run.interp.Interp.cpu in
  let irq_was = cpu.Exec.irq_on in
  cpu.Exec.irq_on <- false;
  Native_run.start_call nat "memset" [ workload_base; 0x5A; workload_bytes ];
  let a9_done = ref false in
  let a9 =
    { Lockstep.l_name = "a9"; l_clock = main;
      l_run =
        (fun ~deadline ->
          if !a9_done then `Done
          else
            match Native_run.call_step nat ~deadline with
            | `Done _ ->
              a9_done := true;
              `Done
            | `Runnable -> `Runnable) }
  in
  let m3 =
    { Lockstep.l_name = "m3"; l_clock = lane;
      l_run = (fun ~deadline -> Ark.phase_step t.ark ~deadline) }
  in
  Fun.protect
    ~finally:(fun () ->
      (* back to the single-clock regime whatever happened: merge the
         lane's remaining events into the platform clock (global
         (at, seq) order preserved), restore the pointers and the A9's
         interrupt mask *)
      Lockstep.merge_lane ~into:main lane;
      Core.set_clock soc.Soc.m3 main;
      Timer.set_clock soc.Soc.m3_timer main;
      soc.Soc.sched_clock <- main;
      cpu.Exec.irq_on <- irq_was;
      t.ark.Ark.tick_on <- false)
    (fun () ->
      let ls = Lockstep.create ~quantum [ a9; m3 ] in
      let st = Lockstep.run ~domains ls in
      t.ls_rounds <- t.ls_rounds + st.Lockstep.rounds;
      t.ls_commits <- t.ls_commits + st.Lockstep.commits;
      t.ls_max_skew_ns <- max t.ls_max_skew_ns st.Lockstep.max_skew_ns;
      Ark.phase_finish t.ark)

(** [concurrent_cycle t] — one full ephemeral-task cycle with both
    device phases offloaded and a guest CPU workload riding on the A9
    concurrently with each ([workload_bytes] of scratch [memset] per
    phase). [domains] runs the two cores on separate host domains —
    results are identical to the deterministic interleave, only
    wall-clock differs. Returns [`Ok] or [`Fell_back reason]. *)
let concurrent_cycle ?(prepare_traffic = true) ?(domains = false)
    ?(workload_bytes = 256 * 1024) t =
  let nat = t.nat in
  let soc = (plat t).soc in
  if prepare_traffic && List.mem "wifi" nat.Native_run.devices then
    ignore (Native_run.call nat "wifi_prepare_traffic" []);
  ignore (Native_run.call nat "freeze_processes" []);
  Timer.stop_tick soc.Soc.cpu_timer;
  record t Hyper.ph_suspend_begin;
  let result = ref `Ok in
  (match concurrent_phase t `Suspend ~domains ~workload_bytes with
  | Ark.Completed -> ()
  | Ark.Fell_back { fb_reason; fb_state } ->
    t.fallbacks <- (fb_reason, soc.Soc.clock.Clock.now) :: t.fallbacks;
    result := `Fell_back fb_reason;
    Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
    ignore (receive_fallback t fb_state);
    Timer.stop_tick soc.Soc.cpu_timer);
  record t Hyper.ph_suspend_end;
  record t 900;
  Clock.advance soc.Soc.clock nat.Native_run.sleep_ns;
  nat.Native_run.sleep_ns_total <-
    nat.Native_run.sleep_ns_total + nat.Native_run.sleep_ns;
  record t 901;
  record t Hyper.ph_resume_begin;
  (match concurrent_phase t `Resume ~domains ~workload_bytes with
  | Ark.Completed -> ()
  | Ark.Fell_back { fb_reason; fb_state } ->
    t.fallbacks <- (fb_reason, soc.Soc.clock.Clock.now) :: t.fallbacks;
    result := `Fell_back fb_reason;
    Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
    ignore (receive_fallback t fb_state);
    Timer.stop_tick soc.Soc.cpu_timer);
  record t Hyper.ph_resume_end;
  Timer.start_tick soc.Soc.cpu_timer Layout.jiffy_ns;
  ignore (Native_run.call nat "thaw_processes" []);
  !result

(** Per-cycle phase events, oldest first (same shape as the native
    runner's). *)
let events_of_cycle t ~before =
  let evs = ref [] and n = ref (List.length t.events - before) in
  List.iter
    (fun e ->
      if !n > 0 then begin
        evs := e :: !evs;
        decr n
      end)
    t.events;
  !evs
