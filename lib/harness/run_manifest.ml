(** Run manifests: machine-readable results + the regression gate.

    Every [arksim run]/[bench] invocation can emit a manifest — a small
    JSON document carrying the run's identity (git rev, variant,
    kernel), its {e deterministic} metrics (simulated counters, the
    per-phase energy table from the attribution ledger) and its
    {e volatile} host figures (wall time, sim-MIPS). [arksim report]
    diffs two manifests metric by metric with a tolerance band, which is
    what turns BENCH_N.json from a dead scalar dump into a trajectory CI
    can gate on.

    No JSON library ships in this toolchain, so both the writer and the
    (deliberately minimal) reader live here. The reader flattens numeric
    leaves to dotted paths ("metrics.energy_uj.dram"), which is also the
    key syntax [report --only] accepts. *)

(* ------------------------------ writing ------------------------------ *)

type json =
  | Int of int
  | Num of float
  | Str of string
  | Obj of (string * json) list
  | Arr of json list

(* every interpolated string goes through the shared escaper so the
   document stays valid JSON whatever the model data contains *)
let esc = Tk_stats.Json.escape

(** Canonical rendering: fixed float precision, insertion order
    preserved — two runs of the same code produce byte-identical
    documents, which the golden-digest test relies on. *)
let rec to_string = function
  | Int i -> string_of_int i
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6f" f
  | Str s -> "\"" ^ esc s ^ "\""
  | Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ esc k ^ "\":" ^ to_string v) kvs)
    ^ "}"
  | Arr vs -> "[" ^ String.concat "," (List.map to_string vs) ^ "]"

let rec pretty ?(indent = 0) j =
  match j with
  | Obj kvs when kvs <> [] ->
    let pad = String.make (indent + 2) ' ' in
    "{\n"
    ^ String.concat ",\n"
        (List.map
           (fun (k, v) ->
             pad ^ "\"" ^ esc k ^ "\": " ^ pretty ~indent:(indent + 2) v)
           kvs)
    ^ "\n" ^ String.make indent ' ' ^ "}"
  | Arr vs when vs <> [] ->
    let pad = String.make (indent + 2) ' ' in
    "[\n"
    ^ String.concat ",\n"
        (List.map (fun v -> pad ^ pretty ~indent:(indent + 2) v) vs)
    ^ "\n" ^ String.make indent ' ' ^ "]"
  | j -> to_string j

(* ------------------------------ git rev ------------------------------ *)

(** [git_rev ()] — the checked-out revision, read straight from
    [.git/HEAD] (no subprocess; "unknown" outside a work tree). *)
let git_rev () =
  let read_line path =
    try
      let ic = open_in path in
      let l = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim l)
    with Sys_error _ -> None
  in
  let rec find_git dir depth =
    if depth > 6 then None
    else if Sys.file_exists (Filename.concat dir ".git") then
      Some (Filename.concat dir ".git")
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_git parent (depth + 1)
  in
  match find_git (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some git -> (
    match read_line (Filename.concat git "HEAD") with
    | None -> "unknown"
    | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then
        let r = String.sub head 5 (String.length head - 5) in
        (match read_line (Filename.concat git r) with
        | Some rev when rev <> "" -> rev
        | _ -> "unknown")
      else if head <> "" then head
      else "unknown")

(* ------------------------------ digest ------------------------------- *)

(** FNV-1a over the canonical serialization of the {e deterministic}
    sections only (metrics + counters) — host wall time and throughput
    never perturb it. Same digest scheme as the flight recorder's. *)
let fnv_prime = 0x100000001b3

let digest_string s =
  let h = ref 0x1bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime land max_int)
    s;
  Printf.sprintf "%016x" !h

let metrics_digest ~metrics ~counters =
  digest_string (to_string (Obj [ ("metrics", metrics); ("counters", counters) ]))

(** [make ~variant ~kernel ~cycles ~metrics ~counters ~host ()] — the
    manifest document (schema documented in README "Telemetry"). *)
let make ~variant ~kernel ~cycles ~metrics ~counters ~host () =
  Obj
    [ ("schema", Str "arksim-manifest-v1");
      ( "meta",
        Obj
          [ ("git_rev", Str (git_rev ())); ("variant", Str variant);
            ("kernel", Str kernel); ("cycles", Int cycles) ] );
      ("metrics", metrics); ("counters", counters); ("host", host);
      ("digest", Str (metrics_digest ~metrics ~counters)) ]

let write_file path j =
  let oc = open_out path in
  output_string oc (pretty j);
  output_char oc '\n';
  close_out oc

(* ------------------------------ reading ------------------------------ *)

exception Parse_error of string

(** Minimal JSON reader, just enough for our own manifests and BENCH
    files: objects, arrays, numbers, strings, true/false/null. Numeric
    leaves land in a flat [(dotted.path, value)] list; everything else
    is structure or ignored. *)
let load_flat path =
  let s =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b
  in
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos >= len then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          (* keep the raw escape; path keys never use them *)
          Buffer.add_char b '?';
          pos := !pos + 4
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < len && is_num s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let acc = ref [] in
  let emit path v = acc := (path, v) :: !acc in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec parse_value path =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then advance ()
      else begin
        let rec members () =
          let k = parse_string () in
          expect ':';
          parse_value (join path k);
          skip_ws ();
          if peek () = ',' then begin
            advance ();
            skip_ws ();
            members ()
          end
          else expect '}'
        in
        members ()
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then advance ()
      else begin
        let i = ref 0 in
        let rec elems () =
          parse_value (join path (string_of_int !i));
          incr i;
          skip_ws ();
          if peek () = ',' then begin
            advance ();
            skip_ws ();
            elems ()
          end
          else expect ']'
        in
        elems ()
      end
    | '"' -> ignore (parse_string ())
    | 't' -> pos := !pos + 4
    | 'f' -> pos := !pos + 5
    | 'n' -> pos := !pos + 4
    | _ -> emit path (parse_number ())
  in
  parse_value "";
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  List.rev !acc

(* --------------------------- comparison ------------------------------ *)

type direction = Higher_better | Lower_better | Neutral

(** Metric polarity by naming convention, so manifests stay plain data:
    throughput-like names regress downward, cost-like names regress
    upward, anything else is gated on |delta|.

    Cost-like substrings are checked {e first}: a key like [miss_rate]
    or [fallback_rate] is a cost expressed as a rate, and classifying it
    by its [rate] suffix would gate it in the wrong direction (a
    worsened miss rate would pass CI). Benefit-rates without a cost
    marker ([chain_hit_rate]) still land on [Higher_better].
    Span/latency keys are costs too: [*_ns] durations, [*_p99]
    quantiles, tracer [overhead] and reconciliation [residual] figures
    all regress upward. Certifier/elision counters: [rejects] and
    [mismatch] are costs, [elided] and superblock [chain_len] are
    benefits — without these, [probes_elided] and friends fell through
    to [Neutral], whose |delta| gate fails CI on an {e improvement}
    larger than the tolerance. Lockstep [skew] and barrier [wait] are
    costs. Pinned by test/test_timeseries.ml. *)
let direction_of key =
  let k = String.lowercase_ascii key in
  let has sub =
    let n = String.length sub and m = String.length k in
    let rec go i = i + n <= m && (String.sub k i n = sub || go (i + 1)) in
    go 0
  in
  if
    has "wall" || has "cycles" || has "_uj" || has "_ms" || has "bytes"
    || has "miss" || has "exits" || has "fallback" || has "divergen"
    || has "dropped" || has "stall" || has "error" || has "_ns"
    || has "_p99" || has "overhead" || has "residual" || has "rejects"
    || has "mismatch" || has "skew" || has "barrier_wait"
  then Lower_better
  else if
    has "mips" || has "throughput" || has "rate" || has "speedup"
    || has "per_sec" || has "elided" || has "chain_len"
  then Higher_better
  else Neutral

type verdict = {
  v_key : string;
  v_base : float;
  v_cand : float;
  v_delta_pct : float;  (** signed relative change, percent *)
  v_regressed : bool;
}

(** [compare_manifests ~baseline ~candidate ~only ~tolerance_pct] loads
    both files and checks every numeric metric present in both (the
    [meta]/[digest] sections carry no numbers, so they never gate).
    [only] restricts to the listed dotted paths, matched as suffixes so
    ["sim_mips_dbt"] finds ["host.sim_mips_dbt"] in a manifest and the
    bare key in a BENCH file. Returns the verdicts plus any keys of the
    baseline missing from the candidate. *)
let compare_manifests ~baseline ~candidate ~only ~tolerance_pct =
  let base = load_flat baseline and cand = load_flat candidate in
  let suffix_match key pat =
    key = pat
    ||
    let kn = String.length key and pn = String.length pat in
    kn > pn
    && String.sub key (kn - pn) pn = pat
    && key.[kn - pn - 1] = '.'
  in
  let selected key =
    match only with
    | [] -> true
    | pats -> List.exists (suffix_match key) pats
  in
  let missing = ref [] in
  let verdicts =
    List.filter_map
      (fun (key, b) ->
        if not (selected key) then None
        else
          match List.assoc_opt key cand with
          | None ->
            missing := key :: !missing;
            None
          | Some c ->
            let delta_pct =
              if b = 0.0 then if c = 0.0 then 0.0 else infinity
              else (c -. b) /. Float.abs b *. 100.0
            in
            let regressed =
              match direction_of key with
              | Higher_better -> delta_pct < -.tolerance_pct
              | Lower_better -> delta_pct > tolerance_pct
              | Neutral -> Float.abs delta_pct > tolerance_pct
            in
            Some
              { v_key = key; v_base = b; v_cand = c;
                v_delta_pct = delta_pct; v_regressed = regressed })
      base
  in
  (verdicts, List.rev !missing)
