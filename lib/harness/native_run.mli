(** The native execution arm: minikern on the simulated Cortex-A9 — the
    baseline the paper compares ARK against.

    The runner stands in for user space: it invokes guest entry points
    through a call shim (LR pointed at the kernel's [call_exit_stub])
    and services the guest's hypercalls (halt, platform-off, phase
    markers, console, WARN). *)

open Tk_machine

(** A benchmark phase-boundary event: marker code, platform time, and
    the CPU's activity snapshot at that instant. *)
type phase_event = { ev_code : int; ev_time_ns : int; ev_cpu : Core.activity }

type t = {
  plat : Tk_drivers.Platform.t;
  interp : Interp.t;
  devices : string list;  (** registered subset (a "kernel config") *)
  mutable events : phase_event list;  (** newest first *)
  mutable warns : int list;  (** WARN codes, newest first *)
  mutable console : char list;
  mutable sleep_ns_total : int;
  mutable sleep_ns : int;  (** deep-sleep time per cycle *)
  mutable last_exit_r0 : int;
}

exception Guest_panic of int

val create :
  ?layout:Tk_kernel.Layout.t ->
  ?devices:string list ->
  ?sleep_ms:int ->
  ?plat:Tk_drivers.Platform.t ->
  unit ->
  t
(** [create ()] builds a platform and boots minikern (kernel_main +
    driver inits). [devices] selects the registered subset (the image
    always contains every driver); [layout] picks the kernel release. *)

val call : ?fuel:int -> t -> string -> int list -> int
(** [call t fn args] invokes guest function [fn] (up to 4 args) on the
    boot thread and runs until it returns. Returns guest r0. *)

val start_call : t -> string -> int list -> unit
(** [start_call t fn args] stages [fn] on the boot thread without
    executing anything; drive it in bounded-quantum slices with
    {!call_step} (the lockstep scheduler's A9 lane) *)

val call_step : ?fuel:int -> t -> deadline:int -> [ `Done of int | `Runnable ]
(** advance a staged call until the A9 clock reaches absolute time
    [deadline] or the call returns ([`Done r0]) *)

val suspend_resume_cycle :
  ?prepare_traffic:bool -> t -> phase_event list
(** one full ephemeral-task kernel cycle (freeze -> dpm_suspend -> deep
    sleep -> dpm_resume -> thaw), natively; returns the cycle's phase
    events, oldest first *)

val set_async : t -> string -> bool -> unit
(** mark a device for asynchronous suspend/resume (Linux's parallelized
    power transitions) *)

val runtime_pm : t -> string -> [ `Suspend | `Resume ] -> int
(** runtime power management for one device while the system stays
    awake (the complementary mechanism of the paper's §8) *)

val device_states : t -> (string * int) list
(** each registered device's kernel-side power state (1 = on), read out
    of guest memory *)

val read_sym : t -> string -> int
(** read a word-sized guest kernel variable by symbol name *)

val trace : t -> Tk_stats.Trace.t
(** the platform's flight recorder; phase-marker hypercalls are mirrored
    into it as [ev_phase] marks (enable/dump through {!Tk_stats.Trace}) *)
