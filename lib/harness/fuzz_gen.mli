(** Random guest-program generation + native-vs-DBT differential
    execution (the §7.3 methodology as a library).

    Every generator takes the [Random.State.t] it draws from as an
    explicit argument — no ambient [Random] calls anywhere in this
    module — so a program is reproducible from its seed alone and
    generation is race-free when campaign tasks run on concurrent
    domains (each task derives its own state from [(campaign seed,
    task index)]). *)

(** One program slot: a concrete instruction, or a conditional forward
    branch to a later slot index (the index one past the end is the
    terminating [Bx lr], so every program terminates by construction). *)
type slot = I of Tk_isa.Types.inst | Br of Tk_isa.Types.cond * int

val gen_straight : Random.State.t -> slot array
(** 4..24 random straight-line instructions *)

val gen_branchy : Random.State.t -> slot array
(** 8..20 slots, ~1/4 of them conditional forward branches *)

val program_str : slot array -> string
(** printable listing, one [.Ln:] line per slot *)

val translatable : Tk_dbt.Translator.mode -> slot array -> bool
(** filter shapes [mode]'s translator legitimately rejects *)

val program_fnv : slot array -> int
(** FNV-1a over {!program_str} — the campaign's generator-determinism
    witness *)

(** Architectural result of one arm: r0..r15, NZCV word, and an FNV
    digest of the data buffer both arms hammer. *)
type arch = { regs : int array; flags : int; digest : int }

exception Harness_error of string
(** harness failure (runaway, decode crash, engine exception) — distinct
    from a divergence, which {!compare_arms} returns as data *)

val run_native : slot array -> arch
(** execute on a fresh simulated A9 through the interpreter *)

val run_dbt : Tk_dbt.Translator.mode -> slot array -> arch
(** translate and execute on a fresh simulated M3 through the engine *)

val compare_arms :
  Tk_dbt.Translator.mode -> slot array -> (unit, string) result
(** run both arms and diff r0..r10, flags and buffer digest;
    [Error report] describes the divergence *)

val run_superblock : slot array -> arch * arch
(** execute twice through one superblock-tier engine (formation
    threshold 2): the cold pass exercises macro-op fusion, the hot pass
    forms and runs superblock traces. State is fully re-seeded between
    passes; returns [(cold, hot)]. *)

val compare_superblock : slot array -> (unit, string) result
(** diff both superblock passes against one native oracle run *)
