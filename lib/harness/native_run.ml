(** The native execution arm: boot minikern on the simulated A9 and drive
    suspend/resume cycles — the baseline the paper compares ARK against.

    The runner stands in for user space: it invokes guest entry points
    through a call shim (LR pointed at [call_exit_stub]) and services the
    guest's hypercalls (halt, platform-off, phase markers, console). *)

open Tk_isa
open Tk_machine
open Tk_drivers
module Hyper = Tk_kernel.Hyper

type phase_event = {
  ev_code : int;
  ev_time_ns : int;
  ev_cpu : Core.activity;
}

type t = {
  plat : Platform.t;
  interp : Interp.t;
  devices : string list;  (** registered subset (a "kernel config") *)
  mutable events : phase_event list;  (** newest first *)
  mutable warns : int list;  (** warn codes, newest first *)
  mutable console : char list;
  mutable sleep_ns_total : int;
  (* how long the platform stays in deep sleep per cycle (the ephemeral
     task interval, scaled) *)
  mutable sleep_ns : int;
  mutable last_exit_r0 : int;
}

exception Guest_panic of int

let record t code =
  t.events <-
    { ev_code = code; ev_time_ns = t.plat.soc.Soc.clock.Clock.now;
      ev_cpu = Core.activity t.plat.soc.Soc.cpu }
    :: t.events;
  Tk_stats.Trace.phase t.plat.soc.Soc.trace code;
  Tk_stats.Timeseries.phase t.plat.soc.Soc.sampler code;
  Tk_stats.Span.phase t.plat.soc.Soc.spans code

(** [trace t] — the platform's flight recorder (enable/dump through
    {!Tk_stats.Trace}). *)
let trace t = t.plat.soc.Soc.trace

let handle_svc t (cpu : Exec.cpu) n =
  let r0 = cpu.Exec.r.(0) in
  if n = Hyper.exit_call then begin
    t.last_exit_r0 <- r0;
    raise (Interp.Halt "call-complete")
  end
  else if n = Hyper.platform_off then begin
    (* deep sleep: everything is off; fast-forward. The tick is paused
       like Linux's timekeeping_suspend. *)
    record t 900;
    Timer.stop_tick t.plat.soc.Soc.cpu_timer;
    Clock.advance t.plat.soc.Soc.clock t.sleep_ns;
    t.sleep_ns_total <- t.sleep_ns_total + t.sleep_ns;
    Timer.start_tick t.plat.soc.Soc.cpu_timer Tk_kernel.Layout.jiffy_ns;
    record t 901
  end
  else if n = Hyper.console_putc then t.console <- Char.chr (r0 land 0x7F) :: t.console
  else if n = Hyper.phase_mark then record t r0
  else if n = Hyper.warn_hit then t.warns <- r0 :: t.warns
  else if n = Hyper.panic then raise (Guest_panic r0)
  else raise (Interp.Fault (Printf.sprintf "unknown hypercall %d" n))

(** [start_call t fn args] stages guest function [fn] on the boot thread
    without executing anything: registers loaded, LR at the exit stub,
    pc at the entry. Drive it with {!call_step} (the lockstep scheduler's
    A9 lane) or let {!call} run it to completion. *)
let start_call t fn args =
  let image = t.plat.built.Tk_kernel.Image.image in
  let cpu = t.interp.Interp.cpu in
  List.iteri (fun i a -> if i < 4 then cpu.Exec.r.(i) <- a) args;
  cpu.Exec.r.(Types.lr) <- Asm.symbol image "call_exit_stub";
  Interp.set_pc t.interp (Asm.symbol image fn)

(** [call_step t ~deadline] advances a staged call until the A9 clock
    reaches absolute time [deadline] ([`Runnable] — call again with a
    later deadline) or the call returns ([`Done r0]). *)
let call_step ?(fuel = 200_000_000) t ~deadline =
  match Interp.run_until t.interp ~deadline ~fuel with
  | () -> `Runnable
  | exception Interp.Halt _ -> `Done t.last_exit_r0

(** [call t fn args] invokes guest function [fn] on the boot thread and
    runs until it returns (via the exit stub). Returns guest r0. *)
let call ?(fuel = 200_000_000) t fn args =
  start_call t fn args;
  (try Interp.run t.interp ~fuel with Interp.Halt _ -> ());
  t.last_exit_r0

(** [create ?layout ?devices ?sleep_ms ()] builds a platform and boots
    minikern: kernel_main + driver inits. [devices] selects the
    registered subset (a "kernel configuration" in the §7.2 sense — the
    image always contains every driver, like a defconfig vs yes-to-all
    build pair sharing sources). *)
let create ?layout ?devices ?(sleep_ms = 50) ?(plat : Platform.t option) () =
  let plat =
    match plat with Some p -> p | None -> Platform.create ?layout ()
  in
  let devices =
    match devices with
    | Some d -> List.filter (fun n -> List.mem n d) Platform.registration_order
    | None -> Platform.registration_order
  in
  let interp = Interp.create ~soc:plat.soc () in
  let t =
    { plat; interp; devices; events = []; warns = []; console = [];
      sleep_ns_total = 0; sleep_ns = sleep_ms * 1_000_000; last_exit_r0 = 0 }
  in
  t.interp.Interp.on_svc <- (fun _ cpu n -> handle_svc t cpu n);
  t.interp.Interp.irq_vector <-
    Asm.symbol plat.built.Tk_kernel.Image.image "irq_entry";
  (* boot thread entry state *)
  interp.Interp.cpu.Exec.r.(Types.sp) <- Soc.stack_top Tk_kernel.Layout.thr_main;
  ignore (call t "kernel_main" []);
  List.iter (fun name -> ignore (call t (name ^ "_init") [])) t.devices;
  t

(** [suspend_resume_cycle t] runs one full ephemeral-task kernel cycle
    (freeze -> dpm_suspend -> sleep -> dpm_resume -> thaw) natively.
    Returns the phase events of this cycle, oldest first. *)
let suspend_resume_cycle ?(prepare_traffic = true) t =
  let before = List.length t.events in
  if prepare_traffic && List.mem "wifi" t.devices then
    ignore (call t "wifi_prepare_traffic" []);
  ignore (call t "pm_suspend" []);
  let evs = ref [] and n = ref (List.length t.events - before) in
  List.iter
    (fun e ->
      if !n > 0 then begin
        evs := e :: !evs;
        decr n
      end)
    t.events;
  !evs

(** [device_states t] reads each device's kernel-side power state out of
    guest memory (for end-state differential tests). *)
let device_states t =
  let image = t.plat.built.Tk_kernel.Image.image in
  let lay = t.plat.built.Tk_kernel.Image.layout in
  List.map
    (fun name ->
      let addr = Asm.symbol image ("dev_" ^ name) in
      ( name,
        Mem.ram_read t.plat.soc.Soc.mem
          (addr + lay.Tk_kernel.Layout.dev_state) 4 ))
    t.devices

(** [set_async t name on] marks device [name] for asynchronous
    suspend/resume (the PM core then runs its callbacks through
    [async_schedule], Linux's parallelized power transitions [50]). *)
let set_async t name on =
  let image = t.plat.built.Tk_kernel.Image.image in
  let dev = Asm.symbol image ("dev_" ^ name) in
  ignore (call t "dpm_set_async" [ dev; (if on then 1 else 0) ])

(** [runtime_pm t name `Suspend|`Resume] drives runtime power
    management for one device while the system stays awake ([90], §8 —
    complementary to, and co-existing with, the offloaded phases). *)
let runtime_pm t name dir =
  let image = t.plat.built.Tk_kernel.Image.image in
  let dev = Asm.symbol image ("dev_" ^ name) in
  let fn =
    match dir with
    | `Suspend -> "pm_runtime_suspend"
    | `Resume -> "pm_runtime_resume"
  in
  call t fn [ dev ]

(** [read_sym t name] reads a word-sized guest variable. *)
let read_sym t name =
  let image = t.plat.built.Tk_kernel.Image.image in
  Mem.ram_read t.plat.soc.Soc.mem (Asm.symbol image name) 4
