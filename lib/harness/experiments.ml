(** Measured experiment drivers shared by the benchmark harness and the
    integration tests.

    Each run executes one cold suspend/resume cycle (populating the DBT
    code cache) and measures a second, warm cycle — the paper reports
    warm-cache numbers (§7.1). Phase and per-device figures come from
    the guest's phase-marker hypercalls; whole-cycle energy from the
    activity deltas and the §7.4 power model. *)

open Tk_machine
open Tk_drivers
module Translator = Tk_dbt.Translator
module Power = Tk_energy.Power_model

type phase = {
  p_busy_ms : float;
  p_idle_ms : float;
  p_busy_cycles : int;
  p_instrs : int;
}

let phase_of_delta (d : Core.activity) =
  { p_busy_ms = float_of_int d.Core.a_busy_ps /. 1e9;
    p_idle_ms = float_of_int d.Core.a_idle_ps /. 1e9;
    p_busy_cycles = d.Core.a_busy_cycles;
    p_instrs = d.Core.a_instructions }

type run = {
  r_label : string;
  r_whole : phase;  (** suspend + resume, excluding deep sleep *)
  r_suspend : phase;
  r_resume : phase;
  r_devices : (string * phase * phase) list;  (** name, suspend, resume *)
  r_energy : Power.breakdown;
  r_fell_back : bool;
  (* engine statistics (zero for native) *)
  r_host_emitted : int;
  r_guest_translated : int;
  r_emu_cycles : int;
  r_engine_exits : int;
  r_rd_bytes : int;
  r_wr_bytes : int;
}

(* extract phase deltas from a (code, activity) event list, oldest
   first *)
let extract_phases events =
  let find code =
    List.find_opt (fun (c, _) -> c = code) events |> Option.map snd
  in
  let delta a b =
    match (find a, find b) with
    | Some x, Some y -> phase_of_delta (Core.activity_delta x y)
    | _ -> phase_of_delta (Core.activity_delta
                             { Core.a_busy_cycles = 0; a_busy_ps = 0;
                               a_idle_ps = 0; a_instructions = 0;
                               a_cache_misses = 0; a_rd_bytes = 0;
                               a_wr_bytes = 0 }
                             { Core.a_busy_cycles = 0; a_busy_ps = 0;
                               a_idle_ps = 0; a_instructions = 0;
                               a_cache_misses = 0; a_rd_bytes = 0;
                               a_wr_bytes = 0 })
  in
  let dev i =
    let base = Tk_kernel.Hyper.ph_dev_mark + (i * 10) in
    (Platform.dpm_label i, delta base (base + 1), delta (base + 2) (base + 3))
  in
  let ndev = List.length Platform.registration_order in
  ( delta Tk_kernel.Hyper.ph_suspend_begin Tk_kernel.Hyper.ph_suspend_end,
    delta Tk_kernel.Hyper.ph_resume_begin Tk_kernel.Hyper.ph_resume_end,
    List.init ndev dev )

let sum_phase a b =
  { p_busy_ms = a.p_busy_ms +. b.p_busy_ms;
    p_idle_ms = a.p_idle_ms +. b.p_idle_ms;
    p_busy_cycles = a.p_busy_cycles + b.p_busy_cycles;
    p_instrs = a.p_instrs + b.p_instrs }

(** [measure_native ()] — the native-execution arm. *)
let measure_native ?layout () =
  let nat = Native_run.create ?layout () in
  ignore (Native_run.suspend_resume_cycle nat);
  let soc = nat.Native_run.plat.Platform.soc in
  let before = Core.activity soc.Soc.cpu in
  let dma_rd0 = soc.Soc.mem.Mem.dma_read_bytes
  and dma_wr0 = soc.Soc.mem.Mem.dma_write_bytes in
  let ev_before = List.length nat.Native_run.events in
  ignore (Native_run.suspend_resume_cycle nat);
  let after = Core.activity soc.Soc.cpu in
  let whole_delta = Core.activity_delta before after in
  let events =
    Native_run.(
      let evs = ref [] and n = ref (List.length nat.events - ev_before) in
      List.iter
        (fun e ->
          if !n > 0 then begin
            evs := (e.ev_code, e.ev_cpu) :: !evs;
            decr n
          end)
        nat.events;
      !evs)
  in
  let suspend, resume, devices = extract_phases events in
  let dma =
    ( soc.Soc.mem.Mem.dma_read_bytes - dma_rd0,
      soc.Soc.mem.Mem.dma_write_bytes - dma_wr0 )
  in
  { r_label = "native";
    r_whole = phase_of_delta whole_delta;
    r_suspend = suspend; r_resume = resume; r_devices = devices;
    r_energy =
      Power.of_activity ~params:Soc.a9_params ~act:whole_delta ~dma_bytes:dma
        ();
    r_fell_back = false; r_host_emitted = 0; r_guest_translated = 0;
    r_emu_cycles = 0; r_engine_exits = 0;
    r_rd_bytes = whole_delta.Core.a_rd_bytes + fst dma;
    r_wr_bytes = whole_delta.Core.a_wr_bytes + snd dma }

(** [measure_mode mode] — one offloaded arm (Ark / Mid / Baseline). *)
let measure_mode ?layout ?m3_cache_kb ?(label = "") mode =
  let ark = Ark_run.create ?layout ?m3_cache_kb ~mode () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let soc = (Ark_run.plat ark).Platform.soc in
  let before = Core.activity soc.Soc.m3 in
  let dma_rd0 = soc.Soc.mem.Mem.dma_read_bytes
  and dma_wr0 = soc.Soc.mem.Mem.dma_write_bytes in
  let emu0 = ark.Ark_run.ark.Transkernel.Ark.emu_cycles in
  let ev_before = List.length ark.Ark_run.events in
  let res = Ark_run.suspend_resume_cycle ark in
  let after = Core.activity soc.Soc.m3 in
  let whole_delta = Core.activity_delta before after in
  let events =
    List.map
      (fun (e : Ark_run.phase_event) -> (e.Ark_run.ev_code, e.Ark_run.ev_m3))
      (Ark_run.events_of_cycle ark ~before:ev_before)
  in
  let suspend, resume, devices = extract_phases events in
  let dma =
    ( soc.Soc.mem.Mem.dma_read_bytes - dma_rd0,
      soc.Soc.mem.Mem.dma_write_bytes - dma_wr0 )
  in
  let e = ark.Ark_run.ark.Transkernel.Ark.engine in
  { r_label =
      (if label <> "" then label
       else
         match mode with
         | Translator.Ark -> "ARK"
         | Translator.Mid -> "baseline+reg-passthrough"
         | Translator.Baseline -> "baseline");
    r_whole = phase_of_delta whole_delta;
    r_suspend = suspend; r_resume = resume; r_devices = devices;
    r_energy =
      Power.of_activity ~params:Soc.m3_params ~act:whole_delta ~dma_bytes:dma
        ();
    r_fell_back = (match res with `Ok -> false | `Fell_back _ -> true);
    r_host_emitted = e.Tk_dbt.Engine.host_emitted;
    r_guest_translated = e.Tk_dbt.Engine.guest_translated;
    r_emu_cycles = ark.Ark_run.ark.Transkernel.Ark.emu_cycles - emu0;
    r_engine_exits = e.Tk_dbt.Engine.engine_exits;
    r_rd_bytes = whole_delta.Core.a_rd_bytes + fst dma;
    r_wr_bytes = whole_delta.Core.a_wr_bytes + snd dma }

(** [overhead ~native ~offloaded] — busy-cycle ratio, the paper's
    overhead metric (§7.3). *)
let overhead ~(native : phase) ~(offloaded : phase) =
  if native.p_busy_cycles = 0 then 0.0
  else float_of_int offloaded.p_busy_cycles /. float_of_int native.p_busy_cycles

(** [stress_run ~runs ~glitch_every ?rng ()] — the §7.3 fallback stress
    test: many offloaded cycles with the WiFi firmware glitch injected
    in a few. Without [rng] the glitch lands on a fixed stride (every
    [glitch_every]-th cycle, the historical behaviour); with [rng] each
    cycle glitches with probability [1/glitch_every] drawn from that
    state, so a campaign task's glitch schedule is a pure function of
    its task seed. Returns (total runs, fallback count, fallback
    reasons, the run). *)
let stress_run ?(runs = 200) ?(glitch_every = 50) ?rng () =
  let ark = Ark_run.create () in
  let wifi = Platform.device (Ark_run.plat ark) "wifi" in
  let glitch_now i =
    glitch_every > 0
    &&
    match rng with
    | None -> i mod glitch_every = 0
    | Some st -> Random.State.int st glitch_every = 0
  in
  let fell = ref 0 in
  let reasons = ref [] in
  for i = 1 to runs do
    if glitch_now i then wifi.Device.glitch_next_resume <- true;
    match Ark_run.suspend_resume_cycle ark with
    | `Ok -> ()
    | `Fell_back r ->
      incr fell;
      reasons := r :: !reasons
  done;
  (runs, !fell, !reasons, ark)

(** [stress] — {!stress_run} with the fixed-stride glitch schedule. *)
let stress ?runs ?glitch_every () = stress_run ?runs ?glitch_every ()
