(** The offloaded execution arm: ARK on the peripheral core.

    Plays the paper's small CPU-side kernel module: builds the handoff
    {!Transkernel.Manifest} (Table 2 ABI + opaque pointers), performs
    the handoff around each device phase, and receives migrated contexts
    back into native execution on fallback (§6). *)

open Tk_machine

type phase_event = { ev_code : int; ev_time_ns : int; ev_m3 : Core.activity }

type t = {
  nat : Native_run.t;  (** the booted platform (native side) *)
  ark : Transkernel.Ark.t;
  mutable events : phase_event list;  (** newest first *)
  mutable fallbacks : (string * int) list;  (** (reason, time) *)
  cache_dir : string option;
      (** persistent translation cache directory, when warm-starting *)
  mutable quantum : int;
      (** bounded-quantum lockstep: slice offloaded phases every this
          many ns (0 = the sequential scheduler). Any quantum produces
          the same architectural results; at [1] digests are CI-gated
          byte-identical to sequential. *)
  mutable ls_rounds : int;  (** lockstep rounds driven (cumulative) *)
  mutable ls_commits : int;  (** barrier commits applied (cumulative) *)
  mutable ls_max_skew_ns : int;
      (** widest cross-lane clock gap seen at any barrier *)
}

val plat : t -> Tk_drivers.Platform.t

val build_manifest : Tk_drivers.Platform.t -> Transkernel.Manifest.t
(** collect the handoff data the kernel module is entitled to: resolved
    Table 2 ABI, workqueue/threaded-IRQ pointers, tick configuration,
    handoff-return stub *)

val create :
  ?layout:Tk_kernel.Layout.t ->
  ?built:Tk_kernel.Image.built ->
  ?devices:string list ->
  ?mode:Tk_dbt.Translator.mode ->
  ?superblock:bool ->
  ?cache_dir:string ->
  ?sleep_ms:int ->
  ?m3_cache_kb:int ->
  ?quantum:int ->
  unit ->
  t
(** boot the platform natively and prepare ARK; [mode] picks the DBT
    optimization level (the Figure 6 bars). [superblock] stacks the
    trace-formation tier on top of [Ark] mode. [cache_dir] attaches a
    persistent translation cache keyed by the pristine image digest — a
    missing or stale cache file is an ordinary cold start. [built]
    reuses a pre-compiled kernel image (see
    {!Tk_drivers.Platform.create}) — the fleet layer compiles once and
    boots many shard worlds from the same immutable image. *)

val save_cache : t -> unit
(** persist the engine's translation cache to the [cache_dir] given at
    [create] time (no-op without one, or after the store was dropped by
    a self-modifying-code flush) *)

val receive_fallback : t -> Transkernel.Ark.guest_state -> int
(** resume a migrated context natively on the CPU (the receiver step of
    §6); returns the shim's final r0 *)

val suspend_resume_cycle :
  ?prepare_traffic:bool -> ?resume_native:bool -> t ->
  [ `Ok | `Fell_back of string ]
(** one full ephemeral-task cycle with the device phases offloaded:
    native freeze -> handoff -> ARK dpm_suspend -> deep sleep -> ARK
    dpm_resume -> handback -> native thaw. [resume_native] models the
    urgent-wakeup path (§4): resume runs on the CPU instead. *)

val concurrent_cycle :
  ?prepare_traffic:bool ->
  ?domains:bool ->
  ?workload_bytes:int ->
  t ->
  [ `Ok | `Fell_back of string ]
(** one full ephemeral-task cycle with both device phases offloaded and
    a guest CPU workload ([workload_bytes] of IRQ-masked scratch
    [memset]) riding on the A9 {e concurrently} with each, under the
    bounded-quantum lockstep scheduler (quantum from [t.quantum],
    default 20 us when unset). [domains] runs the two cores on separate
    host domains — architectural results are identical to the
    deterministic interleave, only wall-clock differs. *)

val events_of_cycle : t -> before:int -> phase_event list
(** the phase events recorded since [before] (a prior length of
    [t.events]), oldest first *)

val trace : t -> Tk_stats.Trace.t
(** the platform's flight recorder; phase markers from both the runner
    and offloaded guest code are mirrored into it as [ev_phase] marks *)
