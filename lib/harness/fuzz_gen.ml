(** Random guest-program generation and differential execution.

    The §7.3 side-by-side methodology at fuzzing scale, as a library:
    random guest programs — straight-line and with forward conditional
    branches — must leave identical architectural state (r0..r10, NZCV,
    data-buffer contents) whether executed by the native interpreter on
    the simulated A9 or translated and run by the DBT engine on the
    simulated M3, in every translator mode.

    Two consumers share this module: the seeded soak in
    test/test_differential.ml and the parallel campaign runner's [fuzz]
    sweep ({!Tk_campaign.Campaign}). Both demand the same discipline:
    {e every} random draw comes from an explicit [Random.State.t]
    threaded through the generators — no ambient [Random] calls, no
    state captured by closure at module level. That is what makes a
    program reproducible from [(seed, task)] alone and race-free when
    many campaign tasks generate concurrently on separate domains. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine
open Tk_dbt

let buf_base = 0x10500000
let buf_size = 16384
let buf_mid = buf_base + (buf_size / 2)

(* -------------------------- generators ------------------------------ *)

let rnd = Random.State.int
let flip = Random.State.bool

(* destination registers never include the memory base r8 / index r9 *)
let dst_regs = [| 0; 1; 2; 3; 4; 5; 6; 7; 10 |]
let src_regs = [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |]
let gdst st = dst_regs.(rnd st (Array.length dst_regs))
let gsrc st = src_regs.(rnd st (Array.length src_regs))
let gcond st = cond_of_int (rnd st 15)
let gskind st = shift_kind_of_int (rnd st 4)

let gimm st =
  let b = rnd st 256 in
  match rnd st 4 with
  | 0 -> b
  | 1 -> Bits.ror32 b 2
  | 2 -> Bits.ror32 b 8
  | _ -> Bits.ror32 b 30

let gop2 st =
  match rnd st 4 with
  | 0 -> Imm (gimm st)
  | 1 -> Reg (gsrc st)
  | 2 -> Sreg (gsrc st, gskind st, rnd st 32)
  | _ -> Sregreg (gsrc st, gskind st, gsrc st)

let gdp st = Dp (dp_op_of_int (rnd st 16), flip st, gdst st, gsrc st, gop2 st)

let gmem st =
  let idx = match rnd st 4 with 0 | 1 -> Offset | 2 -> Pre | _ -> Post in
  let off =
    if flip st then
      let o = rnd st 129 - 64 in
      Oimm (if idx = Offset then o * 8 else o)
    else
      (* r9 holds a small index set up by the harness *)
      Oreg (9, (if rnd st 3 = 2 then LSR else LSL), rnd st 3)
  in
  Mem
    { ld = flip st; size = mem_size_of_int (rnd st 3); rt = rnd st 8; rn = 8;
      off; idx }

let greglist st =
  let n = 1 + rnd st 4 in
  List.sort_uniq compare (List.init n (fun _ -> rnd st 8))

let gmisc st =
  match rnd st 11 with
  | 0 -> Movw (gdst st, rnd st 0x10000)
  | 1 -> Movt (gdst st, rnd st 0x10000)
  | 2 -> Mul (flip st, gdst st, gsrc st, gsrc st)
  | 3 -> Udiv (gdst st, gsrc st, gsrc st)
  | 4 -> Clz (gdst st, gsrc st)
  | 5 -> Rev (gdst st, gsrc st)
  | 6 -> Sxt (Byte, gdst st, gsrc st)
  | 7 -> Uxt (Half, gdst st, gsrc st)
  | 8 -> Swp (gdst st, rnd st 8, 8)
  | 9 -> Stm (8, true, greglist st)
  | _ -> Ldm (8, true, greglist st)

let ginst st =
  let op =
    let k = rnd st 10 in
    if k < 5 then gdp st else if k < 8 then gmem st else gmisc st
  in
  { cond = gcond st; op }

(* a program is a sequence of slots; [Br] is a conditional forward
   branch to a later slot (index len = the terminating [Bx lr]), so
   every generated program terminates by construction *)
type slot = I of inst | Br of cond * int

(* explicit fill loops: generation order is part of the seed contract *)
let gen_straight st =
  let n = 4 + rnd st 21 in
  let a = Array.make n (I (at Nop)) in
  for i = 0 to n - 1 do
    a.(i) <- I (ginst st)
  done;
  a

let gen_branchy st =
  let n = 8 + rnd st 13 in
  let a = Array.make n (I (at Nop)) in
  for i = 0 to n - 1 do
    a.(i) <-
      (if i < n - 1 && rnd st 4 = 0 then Br (gcond st, i + 1 + rnd st (n - i))
       else I (ginst st))
  done;
  a

let slot_str = function
  | I i -> to_string i
  | Br (c, j) -> Printf.sprintf "b<%d> -> .L%d" (int_of_cond c) j

let program_str slots =
  String.concat "\n"
    (List.mapi (fun i s -> Printf.sprintf ".L%d: %s" i (slot_str s))
       (Array.to_list slots))

(* filter shapes each mode's translator legitimately rejects *)
let translatable mode slots =
  Array.for_all
    (function
      | Br _ -> true
      | I i -> (
        (match i.op with
        | Mem { ld = true; rt; rn; idx = Pre | Post; _ } -> rt <> rn
        | _ -> true)
        &&
        match mode with
        | Translator.Mid ->
          (* Mid reserves r10 (scratch) and r11 (env base) *)
          (not (List.mem 10 (regs_read i)))
          && not (List.mem 10 (regs_written i))
        | Translator.Ark | Translator.Baseline -> true))
    slots

(* --------------------------- harnesses ------------------------------ *)

let build_image slots =
  let lbl j = Printf.sprintf ".L%d" j in
  let body =
    List.concat
      (List.mapi
         (fun i s ->
           Asm.Label (lbl i)
           ::
           (match s with
           | I ins -> [ Asm.Ins ins ]
           | Br (c, j) -> [ Asm.Bcc (c, lbl j) ]))
         (Array.to_list slots))
  in
  let items =
    body @ [ Asm.Label (lbl (Array.length slots)); Asm.Ins (at (Bx lr)) ]
  in
  Asm.link ~base:Soc.kernel_base [ { Asm.name = "fuzzfn"; items } ] []

let fill_buffer soc =
  for i = 0 to (buf_size / 4) - 1 do
    Mem.ram_write soc.Soc.mem (buf_base + (4 * i)) 4
      ((i * 2654435761) land 0xFFFFFFFF)
  done

let seed_regs set =
  set 0 0x12345678;
  set 1 0xFFFFFFF0;
  set 2 17;
  set 3 0x80000000;
  set 4 3;
  set 5 0xCAFEBABE;
  set 6 0;
  set 7 0x7FFFFFFF;
  set 8 buf_mid;
  set 9 6;
  set 10 0x0BADF00D

type arch = { regs : int array; flags : int; digest : int }

(** A harness failure (runaway program, decode crash, engine
    exception) — distinct from a {e divergence}, which is data. *)
exception Harness_error of string

let harness_fail arm e =
  raise (Harness_error (Printf.sprintf "%s: %s" arm (Printexc.to_string e)))

let run_native slots =
  let soc = Soc.create () in
  let image = build_image slots in
  Mem.load_image soc.Soc.mem image;
  fill_buffer soc;
  let interp = Interp.create ~soc () in
  let stop = ref false in
  interp.Interp.on_svc <- (fun _ _ _ -> stop := true);
  let cpu = interp.Interp.cpu in
  seed_regs (fun i v -> cpu.Exec.r.(i) <- Bits.mask32 v);
  let stub = Soc.kernel_base + (4 * Array.length image.Asm.words) + 64 in
  Mem.ram_write soc.Soc.mem stub 4 (V7a.encode_exn (at (Svc 0)));
  cpu.Exec.r.(Types.lr) <- stub;
  Interp.set_pc interp (Asm.symbol image "fuzzfn");
  let steps = ref 0 in
  (try
     while not !stop do
       incr steps;
       if !steps > 1_000_000 then failwith "native runaway";
       Interp.step interp
     done
   with e -> harness_fail "native" e);
  { regs = Array.copy cpu.Exec.r;
    flags = Exec.flags_word cpu;
    digest = Mem.digest soc.Soc.mem ~lo:buf_base ~hi:(buf_base + buf_size) }

let run_dbt mode slots =
  let soc = Soc.create () in
  let image = build_image slots in
  Mem.load_image soc.Soc.mem image;
  fill_buffer soc;
  let engine = Engine.create ~soc ~mode () in
  let cpu = Exec.make_cpu () in
  (match mode with
  | Translator.Ark ->
    seed_regs (fun i v ->
        if i = 10 then Engine.set_guest_reg engine cpu 10 v
        else cpu.Exec.r.(i) <- Bits.mask32 v);
    cpu.Exec.r.(Types.lr) <- Layout.exit_magic
  | Translator.Mid | Translator.Baseline ->
    cpu.Exec.r.(11) <- Layout.env_base;
    seed_regs (fun i v -> Engine.set_guest_reg engine cpu i v);
    Engine.set_guest_reg engine cpu Types.lr Layout.exit_magic);
  cpu.Exec.r.(Types.pc) <- Engine.entry_host engine (Asm.symbol image "fuzzfn");
  (try Engine.run engine cpu ~fuel:5_000_000 with
  | Engine.Context_exit -> ()
  | e -> harness_fail "dbt" e);
  let regs = Array.init 16 (fun i -> Engine.guest_reg engine cpu i) in
  { regs;
    flags =
      (match mode with
      | Translator.Baseline ->
        Mem.ram_read soc.Soc.mem Layout.env_guest_flags 4
      | _ -> Exec.flags_word cpu);
    digest = Mem.digest soc.Soc.mem ~lo:buf_base ~hi:(buf_base + buf_size) }

let diff_archs label n d =
  let mismatch = ref [] in
  for i = 0 to 10 do
    (* r11 is mode-reserved, r12 the documented dead register,
       r13/r14/r15 control state *)
    if n.regs.(i) <> d.regs.(i) then
      mismatch :=
        Printf.sprintf "%s r%d: native=0x%x dbt=0x%x" label i n.regs.(i)
          d.regs.(i)
        :: !mismatch
  done;
  if n.flags <> d.flags then
    mismatch :=
      Printf.sprintf "%s flags: 0x%x vs 0x%x" label n.flags d.flags
      :: !mismatch;
  if n.digest <> d.digest then
    mismatch := Printf.sprintf "%s memory digest differs" label :: !mismatch;
  List.rev !mismatch

let compare_arms mode slots =
  let n = run_native slots in
  let d = run_dbt mode slots in
  match diff_archs "arm" n d with
  | [] -> Ok ()
  | ms -> Error (String.concat "\n" ms)

(* The superblock arm runs the same program twice through one engine
   with a formation threshold of 2: the cold pass exercises fused
   macro-ops in freshly translated blocks, and — blocks now hot — the
   second pass forms and executes superblock traces. Architectural
   state is fully re-seeded between passes (native execution is
   deterministic, so one native run serves as the oracle for both). *)
let run_superblock slots =
  let soc = Soc.create () in
  let image = build_image slots in
  Mem.load_image soc.Soc.mem image;
  let engine = Engine.create ~soc ~mode:Translator.Ark () in
  engine.Engine.superblock <- true;
  engine.Engine.sb_threshold <- 2;
  let cpu = Exec.make_cpu () in
  let pass () =
    fill_buffer soc;
    seed_regs (fun i v ->
        if i = 10 then Engine.set_guest_reg engine cpu 10 v
        else cpu.Exec.r.(i) <- Bits.mask32 v);
    Exec.set_flags_word cpu 0;
    cpu.Exec.r.(Types.lr) <- Layout.exit_magic;
    cpu.Exec.r.(Types.pc) <-
      Engine.entry_host engine (Asm.symbol image "fuzzfn");
    (try Engine.run engine cpu ~fuel:5_000_000 with
    | Engine.Context_exit -> ()
    | e -> harness_fail "superblock" e);
    { regs = Array.init 16 (fun i -> Engine.guest_reg engine cpu i);
      flags = Exec.flags_word cpu;
      digest = Mem.digest soc.Soc.mem ~lo:buf_base ~hi:(buf_base + buf_size) }
  in
  let cold = pass () in
  let hot = pass () in
  (cold, hot)

let compare_superblock slots =
  let n = run_native slots in
  let cold, hot = run_superblock slots in
  match diff_archs "cold" n cold @ diff_archs "hot" n hot with
  | [] -> Ok ()
  | ms -> Error (String.concat "\n" ms)

(** [program_fnv slots] — FNV-1a over the rendered program text; the
    campaign folds these into its task digests so a generator whose
    draws drift (or race) shows up as a digest change, not silence. *)
let program_fnv slots =
  let h = ref 0x1bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    (program_str slots);
  !h
