(** Generic device hardware model.

    Every benchmark device (Table in §7.1) is an instance of this model:
    an MMIO register file, a power state machine with {e real transition
    latencies} (the physical factor that makes suspend/resume idle-bound,
    §2.1), an optional DMA engine, a firmware FIFO and an IRQ line.

    Latencies are scaled down ~20x from typical hardware so a full
    9-device suspend/resume executes ~1-3M guest instructions (see
    DESIGN.md §4.3); all reported results are ratios, which scaling
    preserves.

    Register map (offsets from the device's MMIO base):
    {v
    0x00 R  STATUS   bit0 power_on, bit1 busy, bit2 cmd_done, bit3 error,
                     bit4 dma_busy, bit5 dma_done, bit6 fifo_busy
    0x04 W  CMD      1 power_off, 2 power_on, 3 ack (clear done bits),
                     4 config txn (I2C-style: busy for cfg_latency)
    0x08 W  IRQ_EN   bit0 enables the device's IRQ line
    0x0C W  DMA_SRC  0x10 W DMA_DST  0x14 W DMA_LEN
    0x18 W  DMA_CTRL 1 = mem->dev (drain), 2 = dev->mem (fill)
    0x1C W  FIFO     firmware word; 0x20 R FIFO_SPACE
    0x24+   RW       8 scratch/config words
    v} *)

open Tk_machine

type t = {
  name : string;
  index : int;  (** SoC device slot: MMIO base + IRQ line *)
  soc : Soc.t;
  suspend_ns : int;
  resume_ns : int;
  cfg_ns : int;  (** latency of a CMD=4 config transaction *)
  dma_ns_per_kb : int;
  fw_words : int;  (** firmware words expected before fifo completes *)
  mutable power_on : bool;
  mutable busy : bool;
  mutable cmd_done : bool;
  mutable error : bool;
  mutable dma_busy : bool;
  mutable dma_done : bool;
  mutable fifo_busy : bool;
  mutable irq_en : bool;
  mutable dma_src : int;
  mutable dma_dst : int;
  mutable dma_len : int;
  mutable fifo_count : int;
  mutable fifo_sum : int;
  scratch : int array;
  (* fault injection: swallow the next power-on command (the paper's WiFi
     firmware glitch, §7.3) *)
  mutable glitch_next_resume : bool;
  mutable glitches_hit : int;
  (* transient: power-rail ramp start (ns), -1 outside a transition;
     feeds the async power-ramp span closed in [finish_power]. Never
     live across a snapshot (World.fork refuses while a transition is
     pending), so [saved] does not carry it. *)
  mutable ramp_t0 : int;
  (* stats *)
  mutable cmds : int;
  mutable irqs_raised : int;
}

let status t =
  Bool.to_int t.power_on
  lor (Bool.to_int t.busy lsl 1)
  lor (Bool.to_int t.cmd_done lsl 2)
  lor (Bool.to_int t.error lsl 3)
  lor (Bool.to_int t.dma_busy lsl 4)
  lor (Bool.to_int t.dma_done lsl 5)
  lor (Bool.to_int t.fifo_busy lsl 6)

let raise_irq t =
  if t.irq_en then begin
    t.irqs_raised <- t.irqs_raised + 1;
    Intc.raise_line t.soc.Soc.fabric (Soc.dev_irq t.index)
  end

let finish_power t on =
  t.busy <- false;
  t.power_on <- on;
  t.cmd_done <- true;
  let tr = t.soc.Soc.trace in
  if tr.Tk_stats.Trace.enabled then
    Tk_stats.Trace.emit tr ~core:Tk_stats.Trace.core_none
      Tk_stats.Trace.ev_power t.index (Bool.to_int on);
  let sp = t.soc.Soc.spans in
  (if sp.Tk_stats.Span.enabled then begin
     let t0 = t.ramp_t0 in
     t.ramp_t0 <- -1;
     if t0 >= 0 then
       Tk_stats.Span.emit_async sp ~core:Tk_stats.Trace.core_none
         Tk_stats.Span.sk_power_ramp ~t0
         ((2 * t.index) + Bool.to_int on)
   end);
  raise_irq t

let ramp_begin t =
  let sp = t.soc.Soc.spans in
  if sp.Tk_stats.Span.enabled then t.ramp_t0 <- sp.Tk_stats.Span.now ()

let cmd t v =
  t.cmds <- t.cmds + 1;
  match v with
  | 1 ->
    (* power off after the hardware transition latency *)
    t.busy <- true;
    ramp_begin t;
    Clock.after_ t.soc.Soc.sched_clock t.suspend_ns (fun () ->
        finish_power t false)
  | 2 ->
    t.busy <- true;
    if t.glitch_next_resume then begin
      (* firmware wedged: never completes, never interrupts *)
      t.glitch_next_resume <- false;
      t.glitches_hit <- t.glitches_hit + 1
    end
    else begin
      ramp_begin t;
      Clock.after_ t.soc.Soc.sched_clock t.resume_ns (fun () ->
          finish_power t true)
    end
  | 3 ->
    t.cmd_done <- false;
    t.dma_done <- false;
    t.error <- false
  | 4 ->
    t.busy <- true;
    Clock.after_ t.soc.Soc.sched_clock t.cfg_ns (fun () ->
        t.busy <- false;
        t.cmd_done <- true;
        raise_irq t)
  | _ -> t.error <- true

let dma_start t dir =
  if t.dma_len > 0 then begin
    t.dma_busy <- true;
    let ns = max 2_000 (t.dma_len * t.dma_ns_per_kb / 1024) in
    Clock.after_ t.soc.Soc.sched_clock ns (fun () ->
        let mem = t.soc.Soc.mem in
        (match dir with
        | 1 -> ignore (Mem.dma_read mem t.dma_src t.dma_len)
        | _ ->
          Mem.dma_write mem t.dma_dst
            (List.init t.dma_len (fun i -> (i * 7) land 0xFF)));
        t.dma_busy <- false;
        t.dma_done <- true;
        raise_irq t)
  end

let fifo_write t w =
  t.fifo_count <- t.fifo_count + 1;
  t.fifo_sum <- (t.fifo_sum + w) land 0xFFFFFFFF;
  if t.fifo_count >= t.fw_words then begin
    t.fifo_busy <- true;
    t.fifo_count <- 0;
    (* firmware boot time *)
    Clock.after_ t.soc.Soc.sched_clock 30_000 (fun () ->
        t.fifo_busy <- false;
        t.cmd_done <- true;
        raise_irq t)
  end

let mmio_region t : Mem.region =
  { rbase = Soc.dev_base t.index; rsize = Soc.dev_mmio_stride;
    rname = t.name;
    rread =
      (fun off _ ->
        match off with
        | 0x00 -> status t
        | 0x20 -> if t.fifo_busy then 0 else 16
        | o when o >= 0x24 && o < 0x44 -> t.scratch.((o - 0x24) / 4)
        | _ -> 0);
    rwrite =
      (fun off _ v ->
        match off with
        | 0x04 -> cmd t v
        | 0x08 -> t.irq_en <- v land 1 = 1
        | 0x0C -> t.dma_src <- v
        | 0x10 -> t.dma_dst <- v
        | 0x14 -> t.dma_len <- v
        | 0x18 -> dma_start t v
        | 0x1C -> fifo_write t v
        | o when o >= 0x24 && o < 0x44 -> t.scratch.((o - 0x24) / 4) <- v
        | _ -> ()) }

(** [create soc ~name ~index ~suspend_us ~resume_us ...] builds a device
    and maps its MMIO region. Devices start powered on. *)
let create soc ~name ~index ~suspend_us ~resume_us ?(cfg_us = 25)
    ?(dma_ns_per_kb = 8_000) ?(fw_words = 0) () =
  let t =
    { name; index; soc; suspend_ns = suspend_us * 1000;
      resume_ns = resume_us * 1000; cfg_ns = cfg_us * 1000; dma_ns_per_kb;
      fw_words; power_on = true; busy = false; cmd_done = false;
      error = false; dma_busy = false; dma_done = false; fifo_busy = false;
      irq_en = false; dma_src = 0; dma_dst = 0; dma_len = 0; fifo_count = 0;
      fifo_sum = 0; scratch = Array.make 8 0; glitch_next_resume = false;
      glitches_hit = 0; ramp_t0 = -1; cmds = 0; irqs_raised = 0 }
  in
  Mem.add_region soc.Soc.mem (mmio_region t);
  t

(* ----------------------- snapshot support --------------------------- *)

(** Flat copy of a device's mutable state, for the world-snapshot
    layer. Only valid at quiescence (no transition/DMA/firmware event
    pending): an in-flight completion is a clock closure that a
    snapshot could not re-create, and {!Tk_machine.World.fork} refuses
    to capture while one is pending. *)
type saved = {
  v_power_on : bool;
  v_busy : bool;
  v_cmd_done : bool;
  v_error : bool;
  v_dma_busy : bool;
  v_dma_done : bool;
  v_fifo_busy : bool;
  v_irq_en : bool;
  v_dma_src : int;
  v_dma_dst : int;
  v_dma_len : int;
  v_fifo_count : int;
  v_fifo_sum : int;
  v_scratch : int array;
  v_glitch_next_resume : bool;
  v_glitches_hit : int;
  v_cmds : int;
  v_irqs_raised : int;
}

let capture t =
  { v_power_on = t.power_on; v_busy = t.busy; v_cmd_done = t.cmd_done;
    v_error = t.error; v_dma_busy = t.dma_busy; v_dma_done = t.dma_done;
    v_fifo_busy = t.fifo_busy; v_irq_en = t.irq_en; v_dma_src = t.dma_src;
    v_dma_dst = t.dma_dst; v_dma_len = t.dma_len;
    v_fifo_count = t.fifo_count; v_fifo_sum = t.fifo_sum;
    v_scratch = Array.copy t.scratch;
    v_glitch_next_resume = t.glitch_next_resume;
    v_glitches_hit = t.glitches_hit; v_cmds = t.cmds;
    v_irqs_raised = t.irqs_raised }

let restore t s =
  t.power_on <- s.v_power_on;
  t.busy <- s.v_busy;
  t.cmd_done <- s.v_cmd_done;
  t.error <- s.v_error;
  t.dma_busy <- s.v_dma_busy;
  t.dma_done <- s.v_dma_done;
  t.fifo_busy <- s.v_fifo_busy;
  t.irq_en <- s.v_irq_en;
  t.dma_src <- s.v_dma_src;
  t.dma_dst <- s.v_dma_dst;
  t.dma_len <- s.v_dma_len;
  t.fifo_count <- s.v_fifo_count;
  t.fifo_sum <- s.v_fifo_sum;
  Array.blit s.v_scratch 0 t.scratch 0 (Array.length s.v_scratch);
  t.glitch_next_resume <- s.v_glitch_next_resume;
  t.glitches_hit <- s.v_glitches_hit;
  t.cmds <- s.v_cmds;
  t.irqs_raised <- s.v_irqs_raised

(* Register offsets, shared with the guest drivers. *)
let r_status = 0x00
let r_cmd = 0x04
let r_irq_en = 0x08
let r_dma_src = 0x0C
let r_dma_dst = 0x10
let r_dma_len = 0x14
let r_dma_ctrl = 0x18
let r_fifo = 0x1C
let r_fifo_space = 0x20
let r_scratch = 0x24
