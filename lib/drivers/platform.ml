(** Platform assembly: the full benchmark system of §7.1.

    Builds the kernel image with all nine drivers linked in, instantiates
    the nine device hardware models on a fresh SoC, and records the PM
    registration order (resume order; suspend walks it backwards). *)

open Tk_kernel

(* hardware latencies, scaled (see Device): name, slot, suspend_us,
   resume_us, extras *)
type spec = {
  s_name : string;
  s_index : int;
  s_susp : int;
  s_res : int;
  s_cfg : int;
  s_fw : int;
}

let specs =
  [ { s_name = "sd"; s_index = 0; s_susp = 80; s_res = 150; s_cfg = 10; s_fw = 0 };
    { s_name = "flash"; s_index = 1; s_susp = 60; s_res = 120; s_cfg = 10; s_fw = 0 };
    { s_name = "mmc"; s_index = 2; s_susp = 40; s_res = 100; s_cfg = 10; s_fw = 0 };
    { s_name = "usb"; s_index = 3; s_susp = 50; s_res = 150; s_cfg = 10; s_fw = 0 };
    { s_name = "reg"; s_index = 4; s_susp = 30; s_res = 30; s_cfg = 12; s_fw = 0 };
    { s_name = "kb"; s_index = 5; s_susp = 20; s_res = 40; s_cfg = 10; s_fw = 0 };
    { s_name = "cam"; s_index = 6; s_susp = 30; s_res = 80; s_cfg = 10; s_fw = 0 };
    { s_name = "bt"; s_index = 7; s_susp = 25; s_res = 60; s_cfg = 10; s_fw = 0 };
    { s_name = "wifi"; s_index = 8; s_susp = 50; s_res = 40; s_cfg = 10;
      s_fw = Driver_wifi.fw_words } ]

(** PM-core registration order: parents before children, so resume runs
    regulator -> controllers -> functions; suspend is the reverse. The
    dpm index of a device is its position here. *)
let registration_order =
  [ "reg"; "mmc"; "usb"; "sd"; "flash"; "kb"; "cam"; "bt"; "wifi" ]

(** Human name per dpm index (Figure 6 labels). *)
let dpm_label i = List.nth registration_order i

type t = {
  soc : Tk_machine.Soc.t;
  built : Image.built;
  devices : (string * Device.t) list;
}

let driver_frags (lay : Layout.t) =
  let dev_specific =
    Tk_kcc.Codegen.compile_all
      (Driver_storage.funcs lay @ Driver_usb_devs.funcs lay
      @ Driver_power.funcs lay @ Driver_wifi.funcs lay)
  in
  let libs = Tk_kcc.Codegen.compile_all (Dlib_src.funcs lay) in
  List.map (fun f -> (f, Image.Device_specific)) dev_specific
  @ List.map (fun f -> (f, Image.Driver_lib)) libs

let driver_data (lay : Layout.t) =
  Driver_storage.data lay @ Driver_usb_devs.data lay @ Driver_power.data lay
  @ Driver_wifi.data lay @ Dlib_src.data lay

(** [build_image ?layout ()] — the kernel + drivers guest binary, without
    hardware. *)
let build_image ?(layout = Layout.v4_4) () =
  Image.build ~layout ~extra_frags:(driver_frags layout)
    ~extra_data:(driver_data layout) ()

(** [create ?layout ?built ?m3_cache_kb ()] — SoC + devices + loaded
    image. [built] reuses an already-compiled image (it is immutable
    once built: the words are {e copied} into each platform's DRAM) —
    the fleet layer builds one image and loads it into every shard
    world instead of recompiling per instance. *)
let create ?(layout = Layout.v4_4) ?built ?m3_cache_kb () =
  let soc = Tk_machine.Soc.create ?m3_cache_kb () in
  let devices =
    List.map
      (fun s ->
        ( s.s_name,
          Device.create soc ~name:s.s_name ~index:s.s_index
            ~suspend_us:s.s_susp ~resume_us:s.s_res ~cfg_us:s.s_cfg
            ~fw_words:s.s_fw () ))
      specs
  in
  let built =
    match built with Some b -> b | None -> build_image ~layout ()
  in
  Tk_machine.Mem.load_image soc.Tk_machine.Soc.mem built.Image.image;
  (* telemetry gauges: one power-rail state column per device (0/1), in
     registration order so the series columns match Figure 6's labels *)
  List.iter
    (fun name ->
      let d = List.assoc name devices in
      Tk_stats.Timeseries.add_gauge soc.Tk_machine.Soc.sampler ("pw_" ^ name)
        (fun () -> if d.Device.power_on then 1 else 0))
    registration_order;
  { soc; built; devices }

let device t name = List.assoc name t.devices

(** Guest init calls, in registration order. *)
let init_calls = List.map (fun n -> n ^ "_init") registration_order
