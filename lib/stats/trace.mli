(** Flight recorder: a low-overhead, ring-buffered event trace.

    Every subsystem emits typed events here — instruction retires,
    memory accesses with their stall cost, IRQ raise/deliver, device
    power-rail transitions, DBT translate/chain/invalidate — and the
    harness marks phase boundaries, at which point the recorder
    snapshots its counters (plus any platform probes) so per-phase
    deltas can be tabulated.

    Cost discipline: recording is {e simulation-neutral} (no simulated
    cycles are ever charged here) and near-free on the host when
    disabled — every emission site guards on the flat [enabled] flag and
    [emit] allocates nothing. test/test_neutrality.ml pins the
    neutrality; test/test_trace.ml pins the event stream itself. *)

(* ------------------------- event kinds ------------------------------- *)

(* Kinds are plain ints so hot emission sites stay allocation-free. *)

val ev_retire : int  (** a = pc *)

val ev_read : int  (** a = addr, b = stall cycles (0 = cache hit) *)

val ev_write : int  (** a = addr, b = stall cycles (0 = cache hit) *)

val ev_irq_raise : int  (** a = line (controller-local) *)

val ev_irq_deliver : int  (** a = line acknowledged *)

val ev_power : int  (** a = device slot, b = 1 rail up / 0 rail down *)

val ev_translate : int  (** a = guest block pc, b = guest instructions *)

val ev_chain : int  (** a = patched host site *)

val ev_invalidate : int  (** a = invalidated decode word address *)

val ev_phase : int  (** a = phase marker code *)

val ev_form : int
(** superblock trace formed: a = head gpc, b = guest instructions *)

val kind_name : int -> string

(** [kind_of_name n] — inverse of {!kind_name} over the event
    vocabulary; [None] for unknown names. *)
val kind_of_name : string -> int option

(** Number of event kinds (codes are dense in [0, nkinds)). *)
val nkinds : int

(** Bitmask accepting every event kind. *)
val all_kinds : int

(** [filter_of_names names] parses a comma-list vocabulary into a kind
    bitmask. Accepts the group aliases [mem] (read+write), [irq]
    (raise+deliver) and [dbt] (translate+chain+invalidate+form);
    [Error n] names the first unknown kind. *)
val filter_of_names : string list -> (int, string) result

(** Emitting cores (who was executing when the event fired). *)
val core_cpu : int

val core_m3 : int
val core_none : int
val core_name : int -> string

(* --------------------------- recorder -------------------------------- *)

type t = {
  mutable enabled : bool;
      (** the one flag every hot emission site guards on *)
  mutable filter : int;  (** bitmask over kinds, checked inside {!emit} *)
  mutable now : unit -> int;
      (** simulated time source (ns); wired by [Soc.create] *)
  mutable probes : (string * (unit -> int)) list;
      (** named platform gauges sampled at phase marks (busy cycles,
          cache misses, ...); wired by [Soc.create] *)
  (* ring buffer: parallel pre-sized arrays, no per-event allocation *)
  mutable cap : int;
  mutable q_time : int array;
  mutable q_kind : int array;  (** kind lor (core lsl 8) *)
  mutable q_a : int array;
  mutable q_b : int array;
  mutable head : int;  (** next write slot *)
  mutable total : int;  (** events recorded since enable (>= retained) *)
  counts : int array;  (** per-kind totals, never dropped *)
  mutable rd_miss : int;  (** [ev_read] events with a non-zero stall *)
  mutable wr_miss : int;
  mutable marks : (int * int * int array) list;
      (** phase marks, newest first: code, time ns, counter snapshot
          (counts @ rd_miss @ wr_miss @ probe values) *)
}

val create : unit -> t

(** Shared always-disabled instance, the default wiring target for
    components built before their platform hands them the real
    recorder. Never enable it. *)
val null : t

(** [reset t] forgets all recorded events, counters and phase marks but
    keeps configuration (capacity, filter, wiring). *)
val reset : t -> unit

(** [enable ?cap ?filter t] starts recording from a clean slate.
    [cap] sizes the ring (default 2^18 events); [filter] is a kind
    bitmask (default: everything). *)
val enable : ?cap:int -> ?filter:int -> t -> unit

val disable : t -> unit

(** [emit t ~core kind a b] records one event. Callers must guard with
    [t.enabled] so the disabled hot path stays one load + branch. *)
val emit : t -> core:int -> int -> int -> int -> unit

(** [phase t code] marks a phase boundary: emits an [ev_phase] event and
    snapshots every counter and probe. No-op when disabled. *)
val phase : t -> int -> unit

(** [phase_rows t] — per-phase deltas, oldest first: each row is
    (start code, start ns, duration ns, counter deltas in snapshot
    order) for the interval up to the next mark. *)
val phase_rows : t -> (int * int * int * int array) list

(* --------------------------- consumption ----------------------------- *)

val retained : t -> int
val dropped : t -> int

(** [iter t f] visits the retained events oldest-first:
    [f ~time ~core ~kind ~a ~b]. *)
val iter :
  t -> (time:int -> core:int -> kind:int -> a:int -> b:int -> unit) -> unit

(** [digest t] — compact fingerprint for golden-trace regression tests:
    per-kind totals plus rd/wr miss counts, the number of events ever
    recorded, and an FNV-1a-style hash over the retained event stream. *)
val digest : t -> int list * int * int

(** [dump_jsonl oc t] writes the retained events, oldest first, one JSON
    object per line (kind-specific field names, queryable with jq). *)
val dump_jsonl : out_channel -> t -> unit

(** [summary ?phase_name t] prints the per-phase counter table (plus a
    totals footer) through {!Report}. [phase_name] renders marker codes
    (defaults to the raw integer). *)
val summary : ?phase_name:(int -> string) -> t -> unit
