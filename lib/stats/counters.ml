(** Named monotonic counters used across the simulator.

    Every subsystem (cache model, DBT engine, emulated services, ...)
    accounts its work through a [t] so that benchmarks can report per-phase
    deltas. Counters hold plain [int]s; snapshot/diff is how per-device or
    per-phase figures (e.g. Figure 6) are extracted from a shared set. *)

type t = (string, int ref) Hashtbl.t

(** [create ()] is an empty counter set. *)
let create () : t = Hashtbl.create 64

let find (t : t) name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

(** [add t name n] bumps counter [name] by [n], creating it at 0 first. *)
let add (t : t) name n = find t name := !(find t name) + n

(** [incr t name] is [add t name 1]. *)
let incr (t : t) name = add t name 1

(** [get t name] is the current value of [name] (0 if never touched). *)
let get (t : t) name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

(** [set t name v] overwrites [name] with [v]. *)
let set (t : t) name v = find t name := v

(** [reset t] zeroes every counter but keeps the names. *)
let reset (t : t) = Hashtbl.iter (fun _ r -> r := 0) t

(** [snapshot t] captures the current values as an assoc list sorted by
    name; used with {!diff} to compute per-phase deltas. *)
let snapshot (t : t) =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** [to_assoc t] — the canonical counter schema: name-sorted
    [(name, value)] pairs. This is the one shape counters travel in
    everywhere downstream — trace phase-marks, time-series gauges, run
    manifests and {!Report.counters} all consume it — so a counter
    renamed here renames consistently across every surface. (Alias of
    {!snapshot}; the two names document intent: [snapshot] for a
    later {!diff}, [to_assoc] for export.) *)
let to_assoc = snapshot

(** [to_json t] renders {!to_assoc} as one flat JSON object (sorted
    keys, stable across runs — manifest digests rely on this). *)
let to_json (t : t) =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf {|%s:%d|} (Json.quote k) v)
         (to_assoc t))
  ^ "}"

(** [load t saved] makes [t] hold exactly [saved]: names absent from
    [saved] are {e removed}, not zeroed. The world-snapshot layer needs
    that exactness — a zero-valued leftover name would still render in
    {!to_assoc}/{!to_json}, so an instance restored after a sibling ran
    would expose which names the sibling touched and break
    schedule-order invariance of downstream digests. *)
let load (t : t) saved =
  Hashtbl.reset t;
  List.iter (fun (k, v) -> Hashtbl.replace t k (ref v)) saved

(** [diff before after] is the per-name difference [after - before];
    names absent on one side count as 0 there. *)
let diff before after =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter (fun (k, v) ->
      let cur = match Hashtbl.find_opt tbl k with Some x -> x | None -> 0 in
      Hashtbl.replace tbl k (cur + v))
    after;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** [pp ppf t] prints all non-zero counters, one per line. *)
let pp ppf (t : t) =
  snapshot t
  |> List.iter (fun (k, v) -> if v <> 0 then Fmt.pf ppf "%-40s %d@." k v)
