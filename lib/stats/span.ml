(** Causal span tracer: where did this wakeup's time go?

    The flight recorder ({!Trace}) emits unordered point events and the
    sampler ({!Timeseries}) emits periodic rows; neither answers "what
    happened {e inside} this 3.2 ms wakeup". This module records
    intervals instead: a stack of open spans on the (single-threaded)
    simulated timeline forms a causal tree per wakeup — root span
    [wakeup] from the runner's sleep-end mark to resume-end, with
    children for the resume phase, interpreter/DBT execution bursts,
    per-device phase intervals, plus overlapping async spans for IRQ
    delivery latency and device power-rail ramps.

    Every frame span snapshots a set of monotone attribution gauges
    (instructions, stall cycles, translate cycles, fallback count,
    core energy) at open and close, so sibling deltas telescope into
    the parent delta exactly — the same reconciliation discipline as
    the energy ledger's 0.1% bar, applied to time. {!reconcile}
    computes the residuals; test/test_span.ml pins the bar.

    Cost discipline matches {!Trace}: recording is simulation-neutral,
    every producer guards on the flat [enabled] bool, and the enabled
    path allocates nothing (pre-sized parallel arrays, no closures). *)

(* ------------------------- span kinds -------------------------------- *)

let sk_wakeup = 0
let sk_suspend = 1
let sk_sleep = 2
let sk_resume = 3
let sk_run = 4
let sk_irq_deliver = 5
let sk_dbt_translate = 6
let sk_dbt_form = 7
let sk_power_ramp = 8
let sk_dev_phase = 9
let nkinds = 10

let kind_name = function
  | 0 -> "wakeup"
  | 1 -> "suspend"
  | 2 -> "sleep"
  | 3 -> "resume"
  | 4 -> "run"
  | 5 -> "irq-deliver"
  | 6 -> "dbt-translate"
  | 7 -> "dbt-form"
  | 8 -> "power-ramp"
  | 9 -> "dev-phase"
  | _ -> "?"

let kind_of_name = function
  | "wakeup" -> Some sk_wakeup
  | "suspend" -> Some sk_suspend
  | "sleep" -> Some sk_sleep
  | "resume" -> Some sk_resume
  | "run" -> Some sk_run
  | "irq-deliver" -> Some sk_irq_deliver
  | "dbt-translate" -> Some sk_dbt_translate
  | "dbt-form" -> Some sk_dbt_form
  | "power-ramp" -> Some sk_power_ramp
  | "dev-phase" -> Some sk_dev_phase
  | _ -> None

(* Async spans overlap their siblings (they measure latency across the
   timeline, not exclusive execution), so reconciliation and any
   child-sums-to-parent reasoning must skip them. *)
let is_async k = k = sk_irq_deliver || k = sk_power_ramp || k = sk_dev_phase

(* ---------------------- phase marker codes --------------------------- *)

(* Mirrored from Tk_kernel.Hyper — tk_stats sits below the kernel layer,
   so the values are pinned here and cross-checked by test/test_span.ml:
   1/2 suspend begin/end, 3/4 resume begin/end, 900/901 the runner's
   sleep begin/end, and 100 + dev*10 + k per-device marks with
   k = 0..3 meaning suspend begin/end, resume begin/end. *)
let ph_suspend_begin = 1
let ph_suspend_end = 2
let ph_resume_begin = 3
let ph_resume_end = 4
let ph_sleep_begin = 900
let ph_sleep_end = 901
let ph_dev_mark = 100

(* --------------------------- recorder -------------------------------- *)

type t = {
  mutable enabled : bool;
  mutable now : unit -> int;
  mutable gauges : (string * (unit -> int)) list;
  mutable coalesce_gap_ns : int;
  mutable cap : int;
  (* baked at enable *)
  mutable gnames : string array;
  mutable gfns : (unit -> int) array;
  (* parallel span arrays, slot-indexed; a slot is allocated at open and
     stays in open order, so children always follow their parent *)
  mutable q_kind : int array;
  mutable q_core : int array;
  mutable q_parent : int array;  (* slot of the enclosing frame, -1 root *)
  mutable q_t0 : int array;
  mutable q_t1 : int array;  (* -1 while open *)
  mutable q_arg : int array;
  mutable q_a0 : int array;  (* gauge snapshots, slot * ngauges + g *)
  mutable q_a1 : int array;
  mutable n : int;  (* allocated slots *)
  mutable dropped : int;  (* spans refused at capacity (newest dropped) *)
  stack : int array;  (* open-frame slots, -1 for a dropped frame *)
  mutable depth : int;
  dev_t0 : int array;  (* async device-mark open times, dev*2 + phase *)
}

let default_cap = 1 lsl 16
let max_depth = 64
let max_dev_cells = 64

let create () =
  { enabled = false; now = (fun () -> 0); gauges = [];
    coalesce_gap_ns = 500; cap = default_cap; gnames = [||]; gfns = [||];
    q_kind = [||]; q_core = [||]; q_parent = [||]; q_t0 = [||]; q_t1 = [||];
    q_arg = [||]; q_a0 = [||]; q_a1 = [||]; n = 0; dropped = 0;
    stack = Array.make max_depth (-1); depth = 0;
    dev_t0 = Array.make max_dev_cells (-1) }

let null = create ()

let reset t =
  t.n <- 0;
  t.dropped <- 0;
  t.depth <- 0;
  Array.fill t.dev_t0 0 max_dev_cells (-1)

let bake t =
  t.gnames <- Array.of_list (List.map fst t.gauges);
  t.gfns <- Array.of_list (List.map snd t.gauges)

let allocate t =
  let ng = Array.length t.gfns in
  t.q_kind <- Array.make t.cap 0;
  t.q_core <- Array.make t.cap 0;
  t.q_parent <- Array.make t.cap (-1);
  t.q_t0 <- Array.make t.cap 0;
  t.q_t1 <- Array.make t.cap (-1);
  t.q_arg <- Array.make t.cap 0;
  t.q_a0 <- Array.make (max 1 (t.cap * ng)) 0;
  t.q_a1 <- Array.make (max 1 (t.cap * ng)) 0

let enable ?cap t =
  (match cap with Some c -> t.cap <- max 16 c | None -> ());
  bake t;
  allocate t;
  reset t;
  t.enabled <- true

let disable t = t.enabled <- false

let add_gauge t name f =
  (if List.mem_assoc name t.gauges then
     t.gauges <-
       List.map (fun (n, g) -> if n = name then (n, f) else (n, g)) t.gauges
   else t.gauges <- t.gauges @ [ (name, f) ]);
  (* re-wiring while live resizes the snapshot stride: start over *)
  if t.enabled then begin
    bake t;
    allocate t;
    reset t
  end

(* ------------------------- recording --------------------------------- *)

let snap t (arr : int array) s =
  let ng = Array.length t.gfns in
  let base = s * ng in
  for g = 0 to ng - 1 do
    Array.unsafe_set arr (base + g) ((Array.unsafe_get t.gfns g) ())
  done

(** [enter t ~core kind arg] opens a frame span nested under the current
    top of stack, returning a depth token for {!leave}. *)
let enter t ~core kind arg =
  let tok = t.depth in
  if tok < max_depth then begin
    (if t.n < t.cap then begin
       let s = t.n in
       t.n <- s + 1;
       t.q_kind.(s) <- kind;
       t.q_core.(s) <- core;
       t.q_arg.(s) <- arg;
       t.q_parent.(s) <- (if tok > 0 then t.stack.(tok - 1) else -1);
       t.q_t0.(s) <- t.now ();
       t.q_t1.(s) <- -1;
       snap t t.q_a0 s;
       t.stack.(tok) <- s
     end
     else begin
       t.dropped <- t.dropped + 1;
       t.stack.(tok) <- -1
     end);
    t.depth <- tok + 1
  end
  else t.dropped <- t.dropped + 1;
  tok

let close_top t tnow =
  t.depth <- t.depth - 1;
  let s = t.stack.(t.depth) in
  if s >= 0 then begin
    t.q_t1.(s) <- tnow;
    snap t t.q_a1 s
  end

(** [leave t tok] closes every frame opened since the {!enter} that
    returned [tok] — exception-safe span closing under [Fun.protect]
    truncates stray inner frames at the current instant. *)
let leave t tok =
  if t.depth > tok then begin
    let tnow = t.now () in
    while t.depth > tok do
      close_top t tnow
    done
  end

(** [enter_coalesced] — like {!enter}, but if the most recently
    allocated span is a just-closed sibling of the same kind/core within
    [coalesce_gap_ns], reopen it instead (accumulating [arg]): turns
    back-to-back DBT translate calls into one burst span instead of a
    picket fence of points. *)
let enter_coalesced t ~core kind arg =
  let tok = t.depth in
  let s = t.n - 1 in
  if
    s >= 0 && tok < max_depth
    && t.q_t1.(s) >= 0
    && t.q_kind.(s) = kind
    && t.q_core.(s) = core
    && t.q_parent.(s) = (if tok > 0 then t.stack.(tok - 1) else -1)
    && t.now () - t.q_t1.(s) <= t.coalesce_gap_ns
  then begin
    t.q_t1.(s) <- -1;
    t.q_arg.(s) <- t.q_arg.(s) + arg;
    t.stack.(tok) <- s;
    t.depth <- tok + 1;
    tok
  end
  else enter t ~core kind arg

(** [slot_of t tok] — the slot of the still-open frame behind token
    [tok] ([-1] if it was dropped). For schedulers that must reopen a
    frame cut mid-burst: capture the slot before {!leave}, hand it to
    {!reopen} afterwards. *)
let slot_of t tok = if tok >= 0 && tok < t.depth then t.stack.(tok) else -1

(** [reopen t ~core kind ~slot arg] — reopen the closed frame at
    [slot]: a bounded-quantum cut, where zero simulated time passed
    since the close and the enclosing frame is unchanged, so the
    reopened interval telescopes exactly as if it was never cut. Falls
    back to a fresh {!enter} when the slot no longer matches (recorder
    restarted, frame dropped at the cap, different enclosing frame). *)
let reopen t ~core kind ~slot arg =
  let tok = t.depth in
  if
    slot >= 0 && slot < t.n && tok < max_depth
    && t.q_t1.(slot) >= 0
    && t.q_kind.(slot) = kind
    && t.q_core.(slot) = core
    && t.q_parent.(slot) = (if tok > 0 then t.stack.(tok - 1) else -1)
  then begin
    t.q_t1.(slot) <- -1;
    t.stack.(tok) <- slot;
    t.depth <- tok + 1;
    tok
  end
  else enter t ~core kind arg

(** [emit_async t ~core kind ~t0 arg] records a complete span that
    started at [t0] and ends now — for latencies that overlap the frame
    stack (IRQ delivery, power-rail ramps). Parented to the current top
    of stack; carries no attribution delta. *)
let emit_async t ~core kind ~t0 arg =
  if t.n < t.cap then begin
    let s = t.n in
    t.n <- s + 1;
    t.q_kind.(s) <- kind;
    t.q_core.(s) <- core;
    t.q_arg.(s) <- arg;
    t.q_parent.(s) <- (if t.depth > 0 then t.stack.(t.depth - 1) else -1);
    t.q_t0.(s) <- t0;
    t.q_t1.(s) <- t.now ();
    snap t t.q_a0 s;
    let ng = Array.length t.gfns in
    Array.blit t.q_a0 (s * ng) t.q_a1 (s * ng) ng
  end
  else t.dropped <- t.dropped + 1

(* [close_kind t kind] closes the innermost open frame of [kind] (and
   any stray frames above it). No-op when no such frame is open, so an
   unpaired end mark — e.g. the boot sequence's resume-end with no
   preceding sleep — cannot unwind unrelated spans. *)
let close_kind t kind =
  let found = ref (-1) in
  (try
     for i = t.depth - 1 downto 0 do
       let s = t.stack.(i) in
       if s >= 0 && t.q_kind.(s) = kind then begin
         found := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !found >= 0 then begin
    let tnow = t.now () in
    while t.depth > !found do
      close_top t tnow
    done
  end

(** [phase t code] — the phase-mark dispatcher the harness feeds from
    its [record] path: opens/closes the suspend, sleep, wakeup and
    resume frame spans and turns per-device marks into async spans.
    Callers guard on [t.enabled]. *)
let phase t code =
  if not t.enabled then ()
  else begin
    let core = Trace.core_none in
    if code = ph_suspend_begin then ignore (enter t ~core sk_suspend 0)
  else if code = ph_suspend_end then close_kind t sk_suspend
  else if code = ph_sleep_begin then ignore (enter t ~core sk_sleep 0)
  else if code = ph_sleep_end then begin
    close_kind t sk_sleep;
    (* the wake instant: the root of the causal tree for this wakeup *)
    ignore (enter t ~core sk_wakeup 0)
  end
  else if code = ph_resume_begin then ignore (enter t ~core sk_resume 0)
  else if code = ph_resume_end then begin
    close_kind t sk_resume;
    close_kind t sk_wakeup
  end
  else if code >= ph_dev_mark then begin
    let d = (code - ph_dev_mark) / 10 and k = (code - ph_dev_mark) mod 10 in
    let cell = (2 * d) + (k / 2) in
    if k <= 3 && cell < max_dev_cells then
      if k land 1 = 0 then t.dev_t0.(cell) <- t.now ()
      else begin
        let t0 = t.dev_t0.(cell) in
        t.dev_t0.(cell) <- -1;
        (* arg = dev*2 for the suspend interval, dev*2+1 for resume *)
        if t0 >= 0 then emit_async t ~core sk_dev_phase ~t0 cell
      end
  end
  end

(* --------------------------- consumption ----------------------------- *)

let spans t = t.n
let dropped t = t.dropped

let iter t f =
  for s = 0 to t.n - 1 do
    if t.q_t1.(s) >= 0 then
      f ~id:s ~parent:t.q_parent.(s) ~kind:t.q_kind.(s) ~core:t.q_core.(s)
        ~t0:t.q_t0.(s) ~t1:t.q_t1.(s) ~arg:t.q_arg.(s)
  done

(* ------------------------ reconciliation ----------------------------- *)

type recon = {
  r_roots : int;
  r_max_dur_residual : float;
  r_max_attr_residual : float;
}

(** [reconcile t] — the where-did-the-time-go audit over every closed
    [wakeup] root: the direct (non-async) children must tile the root's
    duration, and their attribution-gauge deltas must telescope into the
    root's deltas. Returns the worst relative residual on each axis;
    both sit at 0.0 by construction and the 0.1% bar in
    test/test_span.ml catches any producer that breaks the nesting or a
    gauge that stops being monotone. *)
let reconcile t =
  let ng = Array.length t.gfns in
  let roots = ref 0 and dmax = ref 0.0 and amax = ref 0.0 in
  let cattr = Array.make (max 1 ng) 0 in
  for p = 0 to t.n - 1 do
    if t.q_kind.(p) = sk_wakeup && t.q_t1.(p) >= 0 then begin
      let pdur = t.q_t1.(p) - t.q_t0.(p) in
      if pdur > 0 then begin
        incr roots;
        let cdur = ref 0 in
        Array.fill cattr 0 ng 0;
        for s = p + 1 to t.n - 1 do
          if
            t.q_parent.(s) = p && t.q_t1.(s) >= 0
            && not (is_async t.q_kind.(s))
          then begin
            cdur := !cdur + (t.q_t1.(s) - t.q_t0.(s));
            for g = 0 to ng - 1 do
              cattr.(g) <-
                cattr.(g) + (t.q_a1.((s * ng) + g) - t.q_a0.((s * ng) + g))
            done
          end
        done;
        let rd = abs_float (float_of_int (pdur - !cdur)) /. float_of_int pdur in
        if rd > !dmax then dmax := rd;
        for g = 0 to ng - 1 do
          let pd = t.q_a1.((p * ng) + g) - t.q_a0.((p * ng) + g) in
          if pd > 0 then begin
            let ra =
              abs_float (float_of_int (pd - cattr.(g))) /. float_of_int pd
            in
            if ra > !amax then amax := ra
          end
        done
      end
    end
  done;
  { r_roots = !roots; r_max_dur_residual = !dmax; r_max_attr_residual = !amax }

(* ----------------------------- export -------------------------------- *)

let dump_jsonl oc t =
  let ng = Array.length t.gfns in
  let b = Buffer.create 256 in
  for s = 0 to t.n - 1 do
    if t.q_t1.(s) >= 0 then begin
      Buffer.clear b;
      Printf.bprintf b
        "{\"id\": %d, \"parent\": %d, \"kind\": %s, \"core\": %s, \
         \"t0_ns\": %d, \"dur_ns\": %d, \"arg\": %d, \"attr\": {"
        s t.q_parent.(s)
        (Json.quote (kind_name t.q_kind.(s)))
        (Json.quote (Trace.core_name t.q_core.(s)))
        t.q_t0.(s)
        (t.q_t1.(s) - t.q_t0.(s))
        t.q_arg.(s);
      for g = 0 to ng - 1 do
        if g > 0 then Buffer.add_string b ", ";
        Printf.bprintf b "%s: %d" (Json.quote t.gnames.(g))
          (t.q_a1.((s * ng) + g) - t.q_a0.((s * ng) + g))
      done;
      Buffer.add_string b "}}\n";
      Buffer.output_buffer oc b
    end
  done

(* Chrome trace-event JSON ("Trace Event Format"), loadable in
   ui.perfetto.dev and chrome://tracing: one process, one thread track
   per emitting core, "X" complete events in microseconds, plus "C"
   counter tracks replayed from the timeseries sampler's rows when a
   sampler is passed. *)
let dump_perfetto ?timeseries oc t =
  let ng = Array.length t.gfns in
  output_string oc "{\"traceEvents\": [\n";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  emit
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \
     \"args\": {\"name\": \"arksim\"}}";
  List.iter
    (fun core ->
      emit
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \
            \"tid\": %d, \"args\": {\"name\": %s}}"
           core
           (Json.quote (Trace.core_name core))))
    [ Trace.core_cpu; Trace.core_m3; Trace.core_none ];
  let b = Buffer.create 256 in
  for s = 0 to t.n - 1 do
    if t.q_t1.(s) >= 0 then begin
      Buffer.clear b;
      Printf.bprintf b
        "{\"name\": %s, \"ph\": \"X\", \"pid\": 0, \"tid\": %d, \
         \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"id\": %d, \
         \"parent\": %d, \"arg\": %d"
        (Json.quote (kind_name t.q_kind.(s)))
        t.q_core.(s)
        (float_of_int t.q_t0.(s) /. 1e3)
        (float_of_int (t.q_t1.(s) - t.q_t0.(s)) /. 1e3)
        s t.q_parent.(s) t.q_arg.(s);
      for g = 0 to ng - 1 do
        Printf.bprintf b ", %s: %d" (Json.quote t.gnames.(g))
          (t.q_a1.((s * ng) + g) - t.q_a0.((s * ng) + g))
      done;
      Buffer.add_string b "}}";
      emit (Buffer.contents b)
    end
  done;
  (match timeseries with
  | Some ts ->
    let labels = Timeseries.labels ts in
    Timeseries.iter_rows ts (fun row ->
        let t_us = float_of_int row.(0) /. 1e3 in
        for c = 2 to Array.length row - 1 do
          emit
            (Printf.sprintf
               "{\"name\": %s, \"ph\": \"C\", \"pid\": 0, \"ts\": %.3f, \
                \"args\": {\"value\": %d}}"
               (Json.quote labels.(c))
               t_us row.(c))
        done)
  | None -> ());
  output_string oc "\n]}\n"

let summary t =
  let count = Array.make nkinds 0 and total = Array.make nkinds 0 in
  for s = 0 to t.n - 1 do
    if t.q_t1.(s) >= 0 then begin
      let k = t.q_kind.(s) in
      count.(k) <- count.(k) + 1;
      total.(k) <- total.(k) + (t.q_t1.(s) - t.q_t0.(s))
    end
  done;
  let rows = ref [] in
  for k = nkinds - 1 downto 0 do
    if count.(k) > 0 then
      rows :=
        [ kind_name k; string_of_int count.(k); string_of_int total.(k);
          string_of_int (total.(k) / count.(k)) ]
        :: !rows
  done;
  Report.table ~title:"causal spans by kind"
    ~header:[ "kind"; "count"; "total (ns)"; "mean (ns)" ]
    !rows;
  let r = reconcile t in
  Printf.printf
    "%d wakeup root(s); worst reconciliation residual: duration %.4f%%, \
     attribution %.4f%%%s\n"
    r.r_roots
    (100.0 *. r.r_max_dur_residual)
    (100.0 *. r.r_max_attr_residual)
    (if t.dropped > 0 then Printf.sprintf " (%d spans dropped)" t.dropped
     else "")
