(** Flight recorder: a low-overhead, ring-buffered event trace.

    The paper's claims are all quantitative (per-phase cycle ratios,
    idle/busy epochs, DRAM traffic), so the simulator needs to explain
    {e where} cycles go, not just report end-of-run aggregates. Every
    subsystem emits typed events here — instruction retires, memory
    accesses with their stall cost, IRQ raise/deliver, device power-rail
    transitions, DBT translate/chain/invalidate — and the harness marks
    phase boundaries, at which point the recorder snapshots its counters
    (plus any platform probes, e.g. per-core busy cycles) so per-phase
    deltas can be tabulated.

    Cost discipline: recording is {e simulation-neutral} (no simulated
    cycles are ever charged here) and near-free on the host when
    disabled — every emission site guards on the flat [enabled] flag and
    [emit] allocates nothing (events live in pre-sized int arrays; the
    ring drops the oldest events when full, while per-kind counters keep
    counting everything). test/test_neutrality.ml pins the neutrality;
    test/test_trace.ml pins the event stream itself. *)

(* ------------------------- event kinds ------------------------------- *)

(* Kinds are plain ints so hot emission sites stay allocation-free. *)
let ev_retire = 0 (* a = pc *)
let ev_read = 1 (* a = addr, b = stall cycles (0 = cache hit) *)
let ev_write = 2 (* a = addr, b = stall cycles (0 = cache hit) *)
let ev_irq_raise = 3 (* a = line (controller-local) *)
let ev_irq_deliver = 4 (* a = line acknowledged *)
let ev_power = 5 (* a = device slot, b = 1 rail up / 0 rail down *)
let ev_translate = 6 (* a = guest block pc, b = guest instructions *)
let ev_chain = 7 (* a = patched host site *)
let ev_invalidate = 8 (* a = invalidated decode word address *)
let ev_phase = 9 (* a = phase marker code *)
let ev_form = 10 (* a = superblock head gpc, b = guest instructions *)

let nkinds = 11

let kind_name = function
  | 0 -> "retire"
  | 1 -> "read"
  | 2 -> "write"
  | 3 -> "irq-raise"
  | 4 -> "irq-deliver"
  | 5 -> "power"
  | 6 -> "translate"
  | 7 -> "chain"
  | 8 -> "invalidate"
  | 9 -> "phase"
  | 10 -> "form"
  | _ -> "?"

let kind_of_name = function
  | "retire" -> Some ev_retire
  | "read" -> Some ev_read
  | "write" -> Some ev_write
  | "irq-raise" -> Some ev_irq_raise
  | "irq-deliver" -> Some ev_irq_deliver
  | "power" -> Some ev_power
  | "translate" -> Some ev_translate
  | "chain" -> Some ev_chain
  | "invalidate" -> Some ev_invalidate
  | "phase" -> Some ev_phase
  | "form" -> Some ev_form
  | _ -> None

let all_kinds = (1 lsl nkinds) - 1

(** [filter_of_names names] parses a comma-list vocabulary into a kind
    bitmask. Accepts the group aliases [mem] (read+write), [irq]
    (raise+deliver) and [dbt] (translate+chain+invalidate). *)
let filter_of_names names =
  List.fold_left
    (fun acc n ->
      match acc with
      | Error _ -> acc
      | Ok m -> (
        match n with
        | "mem" -> Ok (m lor (1 lsl ev_read) lor (1 lsl ev_write))
        | "irq" -> Ok (m lor (1 lsl ev_irq_raise) lor (1 lsl ev_irq_deliver))
        | "dbt" ->
          Ok
            (m lor (1 lsl ev_translate) lor (1 lsl ev_chain)
            lor (1 lsl ev_invalidate) lor (1 lsl ev_form))
        | "all" -> Ok all_kinds
        | _ -> (
          match kind_of_name n with
          | Some k -> Ok (m lor (1 lsl k))
          | None -> Error n)))
    (Ok 0) names

(** Emitting cores (who was executing when the event fired). *)
let core_cpu = 0

let core_m3 = 1
let core_none = 2

let core_name = function 0 -> "cpu" | 1 -> "m3" | _ -> "-"

(* --------------------------- recorder -------------------------------- *)

type t = {
  mutable enabled : bool;
      (** the one flag every hot emission site guards on *)
  mutable filter : int;  (** bitmask over kinds, checked inside {!emit} *)
  mutable now : unit -> int;
      (** simulated time source (ns); wired by [Soc.create] *)
  mutable probes : (string * (unit -> int)) list;
      (** named platform gauges sampled at phase marks (busy cycles,
          cache misses, ...); wired by [Soc.create] *)
  (* ring buffer: parallel pre-sized arrays, no per-event allocation *)
  mutable cap : int;
  mutable q_time : int array;
  mutable q_kind : int array;  (** kind lor (core lsl 8) *)
  mutable q_a : int array;
  mutable q_b : int array;
  mutable head : int;  (** next write slot *)
  mutable total : int;  (** events recorded since enable (>= retained) *)
  counts : int array;  (** per-kind totals, never dropped *)
  mutable rd_miss : int;  (** [ev_read] events with a non-zero stall *)
  mutable wr_miss : int;
  mutable marks : (int * int * int array) list;
      (** phase marks, newest first: code, time ns, counter snapshot
          (counts @ rd_miss @ wr_miss @ probe values) *)
}

let default_cap = 1 lsl 18

let create () =
  { enabled = false; filter = all_kinds; now = (fun () -> 0); probes = [];
    cap = 1; q_time = [| 0 |]; q_kind = [| 0 |]; q_a = [| 0 |];
    q_b = [| 0 |]; head = 0; total = 0; counts = Array.make nkinds 0;
    rd_miss = 0; wr_miss = 0; marks = [] }

(** Shared always-disabled instance, the default wiring target for
    components built before their platform hands them the real
    recorder. Never enable it. *)
let null = create ()

(** [reset t] forgets all recorded events, counters and phase marks but
    keeps configuration (capacity, filter, wiring). *)
let reset t =
  t.head <- 0;
  t.total <- 0;
  Array.fill t.counts 0 nkinds 0;
  t.rd_miss <- 0;
  t.wr_miss <- 0;
  t.marks <- []

let set_capacity t cap =
  let cap = max 1 cap in
  t.cap <- cap;
  t.q_time <- Array.make cap 0;
  t.q_kind <- Array.make cap 0;
  t.q_a <- Array.make cap 0;
  t.q_b <- Array.make cap 0;
  reset t

(** [enable ?cap ?filter t] starts recording from a clean slate.
    [cap] sizes the ring (default 2^18 events); [filter] is a kind
    bitmask (default: everything). *)
let enable ?cap ?filter t =
  (match cap with
  | Some c -> set_capacity t c
  | None -> if t.cap = 1 then set_capacity t default_cap else reset t);
  (match filter with Some f -> t.filter <- f | None -> t.filter <- all_kinds);
  t.enabled <- true

let disable t = t.enabled <- false

(** [emit t ~core kind a b] records one event. Callers must guard with
    [t.enabled] so the disabled hot path stays one load + branch. *)
let emit t ~core kind a b =
  if t.filter land (1 lsl kind) <> 0 then begin
    Array.unsafe_set t.counts kind (Array.unsafe_get t.counts kind + 1);
    if b <> 0 then
      if kind = ev_read then t.rd_miss <- t.rd_miss + 1
      else if kind = ev_write then t.wr_miss <- t.wr_miss + 1;
    let i = t.head in
    Array.unsafe_set t.q_time i (t.now ());
    Array.unsafe_set t.q_kind i (kind lor (core lsl 8));
    Array.unsafe_set t.q_a i a;
    Array.unsafe_set t.q_b i b;
    t.head <- (if i + 1 = t.cap then 0 else i + 1);
    t.total <- t.total + 1
  end

(* ------------------------ phase snapshots ---------------------------- *)

let snapshot t =
  let probes = List.map (fun (_, f) -> f ()) t.probes in
  Array.of_list
    (Array.to_list t.counts @ [ t.rd_miss; t.wr_miss ] @ probes)

(** Column labels matching {!snapshot} order. *)
let snapshot_labels t =
  List.init nkinds kind_name @ [ "rd-miss"; "wr-miss" ]
  @ List.map fst t.probes

(** [phase t code] marks a phase boundary: emits an [ev_phase] event and
    snapshots every counter and probe. No-op when disabled. *)
let phase t code =
  if t.enabled then begin
    emit t ~core:core_none ev_phase code 0;
    t.marks <- (code, t.now (), snapshot t) :: t.marks
  end

(** [phase_rows t] — per-phase deltas, oldest first: each row is
    (start code, start ns, duration ns, counter deltas in {!snapshot}
    order) for the interval up to the next mark. *)
let phase_rows t =
  let marks = List.rev t.marks in
  let rec go = function
    | (c0, t0, s0) :: ((_, t1, s1) :: _ as rest) ->
      (c0, t0, t1 - t0, Array.init (Array.length s0) (fun i -> s1.(i) - s0.(i)))
      :: go rest
    | _ -> []
  in
  go marks

(* --------------------------- consumption ----------------------------- *)

let retained t = min t.total t.cap
let dropped t = t.total - retained t

(** [iter t f] visits the retained events oldest-first:
    [f ~time ~core ~kind ~a ~b]. *)
let iter t f =
  let n = retained t in
  let start = if t.total <= t.cap then 0 else t.head in
  for i = 0 to n - 1 do
    let j = (start + i) mod t.cap in
    let ck = t.q_kind.(j) in
    f ~time:t.q_time.(j) ~core:(ck lsr 8) ~kind:(ck land 0xFF) ~a:t.q_a.(j)
      ~b:t.q_b.(j)
  done

(** [digest t] — compact fingerprint for golden-trace regression tests:
    per-kind totals plus rd/wr miss counts, the number of events ever
    recorded, and an FNV-1a-style hash over the retained event stream
    (time, core, kind, payload — everything). *)
let digest t =
  let h = ref 0x1bf29ce484222325 in
  let mix x =
    h := (!h lxor (x land max_int)) * 0x100000001b3 land max_int
  in
  iter t (fun ~time ~core ~kind ~a ~b ->
      mix time; mix ((core lsl 8) lor kind); mix a; mix b);
  (Array.to_list t.counts @ [ t.rd_miss; t.wr_miss ], t.total, !h)

(* JSONL: one event per line, with kind-specific field names so traces
   are directly queryable with jq (see README). *)
let jsonl_line ~time ~core ~kind ~a ~b =
  let payload =
    match kind with
    | 0 -> Printf.sprintf {|"pc":"0x%x"|} a
    | 1 | 2 -> Printf.sprintf {|"addr":"0x%x","stall":%d|} a b
    | 3 | 4 -> Printf.sprintf {|"line":%d|} a
    | 5 -> Printf.sprintf {|"dev":%d,"on":%b|} a (b = 1)
    | 6 -> Printf.sprintf {|"gpc":"0x%x","ninstr":%d|} a b
    | 7 -> Printf.sprintf {|"site":"0x%x"|} a
    | 8 -> Printf.sprintf {|"addr":"0x%x"|} a
    | 9 -> Printf.sprintf {|"code":%d|} a
    | 10 -> Printf.sprintf {|"gpc":"0x%x","ninstr":%d|} a b
    | _ -> Printf.sprintf {|"a":%d,"b":%d|} a b
  in
  Printf.sprintf {|{"t":%d,"core":%s,"ev":%s,%s}|} time
    (Json.quote (core_name core))
    (Json.quote (kind_name kind))
    payload

(** [dump_jsonl oc t] writes the retained events, oldest first, one JSON
    object per line. *)
let dump_jsonl oc t =
  iter t (fun ~time ~core ~kind ~a ~b ->
      output_string oc (jsonl_line ~time ~core ~kind ~a ~b);
      output_char oc '\n')

(* --------------------------- reporting ------------------------------- *)

(** [summary ?phase_name t] prints the per-phase counter table (plus a
    totals footer) through {!Report}. [phase_name] renders marker codes
    (defaults to the raw integer). *)
let summary ?(phase_name = string_of_int) t =
  let labels = snapshot_labels t in
  (* keep the table readable: drop columns that never fired *)
  let rows = phase_rows t in
  let keep =
    List.mapi
      (fun i _ ->
        List.exists (fun (_, _, _, d) -> d.(i) <> 0) rows)
      labels
  in
  let filter_cols l =
    List.filteri (fun i _ -> List.nth keep i) l
  in
  let header = "phase" :: "at_ms" :: "dur_ms" :: filter_cols labels in
  let body =
    List.map
      (fun (code, t0, dt, d) ->
        phase_name code
        :: Printf.sprintf "%.3f" (float_of_int t0 /. 1e6)
        :: Printf.sprintf "%.3f" (float_of_int dt /. 1e6)
        :: filter_cols (List.map string_of_int (Array.to_list d)))
      rows
  in
  Report.table ~title:"flight recorder: per-phase counters" ~header body;
  Report.kv "flight recorder"
    [ ("events recorded", string_of_int t.total);
      ("events retained", string_of_int (retained t));
      ("events dropped (ring wrap)", string_of_int (dropped t)) ]
