(** Cycle-domain telemetry sampler: periodic columnar snapshots.

    The flight recorder ({!Trace}) captures discrete {e events}; this
    module captures the simulated SoC {e over time}: on a configurable
    virtual-time period it snapshots a set of named integer gauges
    (per-core busy/idle/stall figures, cache and DRAM traffic,
    translation-cache occupancy, per-device power-rail state, ...) into
    fixed-capacity columnar ring buffers. Consumers — the energy
    attribution ledger, the [--timeseries] CSV/JSONL export, the run
    manifest — read whole columns back and work on row deltas.

    Cost discipline mirrors the recorder's: sampling is
    {e simulation-neutral} (gauges are read-only closures over model
    counters; no simulated cycles are ever charged) and near-free on the
    host when disabled — the interpreter loops hoist the [enabled] flag
    once per run and {!tick} is never called on the disabled path, while
    {!sample_now} itself allocates nothing (columns are pre-sized at
    {!enable} time). test/test_timeseries.ml pins the mechanics and the
    zero-allocation property; the neutrality goldens hold with sampling
    on or off. *)

type t = {
  mutable enabled : bool;
      (** the one flag the hot loops hoist and branch on *)
  mutable period_ns : int;  (** virtual-time sampling period *)
  mutable next_due : int;  (** absolute virtual time of the next sample *)
  mutable now : unit -> int;
      (** simulated time source (ns); wired by [Soc.create] *)
  mutable gauges : (string * (unit -> int)) list;
      (** named platform gauges in wiring order; {!add_gauge} replaces
          by name so re-created components (a second DBT engine on the
          same SoC) re-bind their columns instead of duplicating them *)
  mutable cur_phase : int;
      (** phase code in effect; recorded with every row *)
  (* columnar ring: one pre-sized int array per column, no per-sample
     allocation. Column 0 is the sample time (ns), column 1 the phase
     code; gauge columns follow in wiring order. *)
  mutable cap : int;
  mutable names : string array;
  mutable gfns : (unit -> int) array;  (** baked at {!enable} *)
  mutable cols : int array array;
  mutable head : int;  (** next write slot *)
  mutable total : int;  (** rows sampled since enable (>= retained) *)
}

let ncols_builtin = 2

let default_cap = 1 lsl 14
let default_period_ns = 100_000 (* 100 us of virtual time *)

let create () =
  { enabled = false; period_ns = default_period_ns; next_due = max_int;
    now = (fun () -> 0); gauges = []; cur_phase = 0; cap = 0;
    names = [||]; gfns = [||]; cols = [||]; head = 0; total = 0 }

(** Shared always-disabled instance (the pre-wiring default, like
    {!Trace.null}). Never enable it. *)
let null = create ()

(** [add_gauge t name f] wires gauge [name]. If a gauge of that name is
    already wired its closure is replaced in place (keeping column
    order); otherwise it is appended. Must happen before {!enable} —
    columns are baked there. *)
let add_gauge t name f =
  if List.mem_assoc name t.gauges then
    t.gauges <-
      List.map (fun (n, g) -> if n = name then (n, f) else (n, g)) t.gauges
  else t.gauges <- t.gauges @ [ (name, f) ]

(** [sample_now t] records one row unconditionally (used for the
    baseline row at {!enable}, forced phase-boundary rows and the final
    flush). Allocation-free. No-op when disabled. *)
let sample_now t =
  if t.enabled then begin
    let i = t.head in
    let cols = t.cols in
    let now = t.now () in
    (Array.unsafe_get cols 0).(i) <- now;
    (Array.unsafe_get cols 1).(i) <- t.cur_phase;
    let gfns = t.gfns in
    for c = 0 to Array.length gfns - 1 do
      (Array.unsafe_get cols (c + ncols_builtin)).(i) <-
        (Array.unsafe_get gfns c) ()
    done;
    t.head <- (if i + 1 = t.cap then 0 else i + 1);
    t.total <- t.total + 1;
    t.next_due <- now + t.period_ns
  end

(** [tick t] — the hot-loop probe: samples one row when the period has
    elapsed. Callers hoist [t.enabled] and only call this while
    sampling is on, so the disabled path carries no closure call. *)
let tick t = if t.enabled && t.now () >= t.next_due then sample_now t

(** [phase t code] marks a phase boundary: forces a row closing the
    current phase's epoch, then switches the recorded phase to [code].
    Epochs therefore never straddle a phase mark. *)
let phase t code =
  sample_now t;
  t.cur_phase <- code

(** [enable ?cap ?period_ns t] starts sampling from a clean slate: bakes
    the wired gauges into columns, allocates the ring ([cap] rows,
    default 2^14) and records the baseline row. [period_ns] is the
    virtual-time sampling period (default 100 us). *)
let enable ?(cap = default_cap) ?(period_ns = default_period_ns) t =
  let cap = max 2 cap in
  t.cap <- cap;
  t.period_ns <- max 1 period_ns;
  t.names <-
    Array.of_list ("t_ns" :: "phase" :: List.map fst t.gauges);
  t.gfns <- Array.of_list (List.map snd t.gauges);
  t.cols <- Array.init (Array.length t.names) (fun _ -> Array.make cap 0);
  t.head <- 0;
  t.total <- 0;
  t.cur_phase <- 0;
  t.enabled <- true;
  sample_now t

let disable t =
  t.enabled <- false;
  t.next_due <- max_int

(* --------------------------- consumption ----------------------------- *)

let retained t = min t.total t.cap
let dropped t = t.total - retained t

(** Column labels, row order: [t_ns; phase; <gauges in wiring order>]. *)
let labels t = Array.copy t.names

(** [col_index t name] — column position of [name], if wired. *)
let col_index t name =
  let rec go i =
    if i >= Array.length t.names then None
    else if t.names.(i) = name then Some i
    else go (i + 1)
  in
  go 0

(** [rows t] — the retained rows oldest-first, each a fresh array in
    {!labels} order. (Consumption path; not allocation-sensitive.) *)
let rows t =
  let n = retained t in
  let start = if t.total <= t.cap then 0 else t.head in
  Array.init n (fun i ->
      let j = (start + i) mod t.cap in
      Array.map (fun col -> col.(j)) t.cols)

(** [iter_rows t f] visits the retained rows oldest-first. *)
let iter_rows t f = Array.iter f (rows t)

(* ----------------------------- export -------------------------------- *)

(** [to_csv oc t] writes a header line plus one comma-separated line per
    retained row. *)
let to_csv oc t =
  output_string oc (String.concat "," (Array.to_list t.names));
  output_char oc '\n';
  iter_rows t (fun row ->
      output_string oc
        (String.concat ","
           (Array.to_list (Array.map string_of_int row)));
      output_char oc '\n')

(** [to_jsonl oc t] writes one JSON object per retained row, keyed by
    column label (directly queryable with jq; see README). *)
let to_jsonl oc t =
  (* labels can carry model-supplied names (device power rails); quote
     them once through the shared escaper, not per row *)
  let qnames = Array.map Json.quote t.names in
  iter_rows t (fun row ->
      output_char oc '{';
      Array.iteri
        (fun i v ->
          if i > 0 then output_char oc ',';
          output_string oc (Printf.sprintf {|%s:%d|} qnames.(i) v))
        row;
      output_string oc "}\n")
