(** Mergeable streaming-percentile sketch (log-linear histogram).

    The fleet layer needs p50/p99/p999 wakeup latencies over millions of
    samples, aggregated across worker domains that never share memory.
    Sorting is out (unbounded memory, and per-shard sorts cannot be
    combined into an exact global order without keeping every sample);
    instead each shard feeds an HDR-style histogram whose buckets are
    fixed by construction, so merging two sketches is a bucket-wise add
    and is therefore associative and commutative — the aggregation order
    cannot perturb the fleet digest.

    Bucket layout (non-negative ints):
    - values [0, 32) get one exact bucket each (zero error — most
      counter-ish samples live here);
    - values >= 32 go to a log-linear grid: the octave of the top bit,
      split 16 ways by the next four bits. Bucket width is then at most
      [1/16] of the bucket's lower bound, so any reported quantile is
      within 6.25% (relative) of a sample holding that exact rank.

    Ranks are exact: [quantile] walks cumulative counts to the requested
    rank and quantizes only the {e value}, never the rank. *)

(* exact buckets cover [0, 2^exact_bits); above that, 16 sub-buckets per
   octave. 63-bit ints top out at octave 62, giving a fixed 960-slot
   table — small enough to allocate eagerly and merge with a flat loop. *)
let exact_bits = 5
let exact = 1 lsl exact_bits (* 32 *)
let sub_bits = 4
let subs = 1 lsl sub_bits (* 16 *)
let nbuckets = exact + ((63 - exact_bits) * subs) (* 960 *)

type t = {
  counts : int array;
  mutable n : int;
  mutable total : int; (* running sum, for [mean] *)
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make nbuckets 0; n = 0; total = 0;
    min_v = max_int; max_v = min_int }

(* position of the most significant set bit of [v >= 1] *)
let msb v =
  let r = ref 0 and v = ref v in
  if !v >= 1 lsl 32 then begin r := !r + 32; v := !v lsr 32 end;
  if !v >= 1 lsl 16 then begin r := !r + 16; v := !v lsr 16 end;
  if !v >= 1 lsl 8 then begin r := !r + 8; v := !v lsr 8 end;
  if !v >= 1 lsl 4 then begin r := !r + 4; v := !v lsr 4 end;
  if !v >= 1 lsl 2 then begin r := !r + 2; v := !v lsr 2 end;
  if !v >= 1 lsl 1 then r := !r + 1;
  !r

let bucket_of v =
  if v < exact then v
  else
    let e = msb v in
    let sub = (v lsr (e - sub_bits)) land (subs - 1) in
    exact + ((e - exact_bits) * subs) + sub

(** [bounds idx] — inclusive [lo, hi] value range of bucket [idx]. *)
let bounds idx =
  if idx < exact then (idx, idx)
  else begin
    let e = exact_bits + ((idx - exact) / subs) in
    let sub = (idx - exact) mod subs in
    let lo = (subs + sub) lsl (e - sub_bits) in
    (lo, lo + (1 lsl (e - sub_bits)) - 1)
  end

let add_n t v n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + n;
    t.n <- t.n + n;
    t.total <- t.total + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let add t v = add_n t v 1
let count t = t.n
let sum t = t.total
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = if t.n = 0 then 0 else t.max_v
let mean t = if t.n = 0 then 0.0 else float_of_int t.total /. float_of_int t.n

let merge_into dst ~src =
  for i = 0 to nbuckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.n <- dst.n + src.n;
  dst.total <- dst.total + src.total;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let merge a b =
  let t = create () in
  merge_into t ~src:a;
  merge_into t ~src:b;
  t

(** [quantile t phi] — the value at exact rank
    [max 1 (ceil (phi * n))], quantized to its bucket's midpoint and
    clamped to the observed [min, max]. Returns 0 on an empty sketch. *)
let quantile t phi =
  if t.n = 0 then 0
  else begin
    let phi = if phi < 0.0 then 0.0 else if phi > 1.0 then 1.0 else phi in
    let rank =
      let r = int_of_float (ceil (phi *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let acc = ref 0 and idx = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin idx := i; raise Exit end
       done
     with Exit -> ());
    let lo, hi = bounds !idx in
    let mid = lo + ((hi - lo) / 2) in
    let mid = if mid < t.min_v then t.min_v else mid in
    if mid > t.max_v then t.max_v else mid
  end

(** Non-empty buckets in ascending value order, as [(lo, hi, count)]
    rows. This is the canonical serialization: two sketches with equal
    rows are observationally identical, so digests over the rows are
    digests over the sketch. *)
let rows t =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds i in
      out := (lo, hi, t.counts.(i)) :: !out
    end
  done;
  !out

(** [load t rows] — replay serialized rows into [t] (used when merging
    shard results that crossed a domain boundary as data). Each row adds
    [count] samples at the bucket's lower bound; because [lo] is itself
    a member of the bucket, re-sketching is bucket-stable: the merged
    counts land in exactly the original buckets. Min/max/sum degrade to
    bucket-lower-bound precision, which is inside the sketch's stated
    error bound. *)
let load t rows_list =
  List.iter (fun (lo, _hi, c) -> add_n t lo c) rows_list
