(** Causal span tracer: interval-structured telemetry over the simulated
    timeline.

    Where {!Trace} records point events and {!Timeseries} records
    periodic rows, this module records {e spans} — open/close intervals
    nested on the single simulated thread — so every wakeup becomes a
    causal tree: root [wakeup] span, children for the resume phase,
    execution bursts, DBT translation bursts and per-device phase
    intervals, plus overlapping async spans for IRQ delivery latency
    and power-rail ramps.

    Each frame span snapshots the wired attribution gauges at open and
    close; because the gauges are monotone counters, sibling deltas
    telescope exactly into the parent delta ({!reconcile} audits this
    against a 0.1% bar, mirroring the energy ledger).

    Cost discipline: simulation-neutral, producers guard on [enabled],
    and the enabled path allocates nothing. *)

(* ------------------------- span kinds -------------------------------- *)

val sk_wakeup : int  (** root: sleep-end mark to resume-end mark *)

val sk_suspend : int  (** the offloaded (or native) suspend phase *)

val sk_sleep : int  (** the deep-sleep interval between phases *)

val sk_resume : int  (** the resume phase inside the wakeup root *)

val sk_run : int  (** one interpreter / DBT engine execution burst *)

val sk_irq_deliver : int
(** async: interrupt raise to acknowledge; [arg] = line *)

val sk_dbt_translate : int
(** coalesced translation burst; [arg] = guest instructions *)

val sk_dbt_form : int
(** superblock trace formation burst; [arg] = guest instructions *)

val sk_power_ramp : int
(** async: device power-rail ramp; [arg] = dev*2 + (1 = rail up) *)

val sk_dev_phase : int
(** async per-device phase mark pair; [arg] = dev*2 + (1 = resume) *)

val nkinds : int
val kind_name : int -> string
val kind_of_name : string -> int option

(** Async spans overlap their siblings; reconciliation skips them. *)
val is_async : int -> bool

(* --------------------------- recorder -------------------------------- *)

type t = {
  mutable enabled : bool;
      (** the one flag every producer guards on *)
  mutable now : unit -> int;
      (** simulated time source (ns); wired by [Soc.create] *)
  mutable gauges : (string * (unit -> int)) list;
      (** monotone attribution gauges in wiring order *)
  mutable coalesce_gap_ns : int;
      (** bursts closer than this merge in {!enter_coalesced} *)
  mutable cap : int;
  mutable gnames : string array;
  mutable gfns : (unit -> int) array;
  mutable q_kind : int array;
  mutable q_core : int array;
  mutable q_parent : int array;  (** slot of the enclosing frame, -1 root *)
  mutable q_t0 : int array;
  mutable q_t1 : int array;  (** -1 while open *)
  mutable q_arg : int array;
  mutable q_a0 : int array;  (** gauge snapshots, slot * ngauges + g *)
  mutable q_a1 : int array;
  mutable n : int;
  mutable dropped : int;
  stack : int array;
  mutable depth : int;
  dev_t0 : int array;
}

val default_cap : int
val create : unit -> t

(** Shared always-disabled instance (the pre-wiring default, like
    {!Trace.null}). Never enable it. *)
val null : t

(** [add_gauge t name f] wires an attribution gauge, replacing in place
    on a name collision. Wiring while enabled restarts recording (the
    snapshot stride changes). *)
val add_gauge : t -> string -> (unit -> int) -> unit

(** [enable ?cap t] starts recording from a clean slate; [cap] bounds
    retained spans (default 2^16) — past it the newest spans are
    dropped (counted), keeping open/close pairing sound. *)
val enable : ?cap:int -> t -> unit

val disable : t -> unit

(** [reset t] forgets recorded spans but keeps configuration — call it
    per fleet instance after a world restore. *)
val reset : t -> unit

(* ------------------------- recording --------------------------------- *)

(** [enter t ~core kind arg] opens a frame span under the current top of
    stack; returns the depth token for {!leave}. Callers guard on
    [t.enabled]. *)
val enter : t -> core:int -> int -> int -> int

(** [leave t tok] closes every frame opened since the matching {!enter}
    — exception-safe under [Fun.protect], truncating stray inner
    frames at the current instant. *)
val leave : t -> int -> unit

(** Like {!enter}, but merges with an immediately preceding sibling of
    the same kind/core closed less than [coalesce_gap_ns] ago
    (accumulating [arg]): burst formation for DBT translate storms. *)
val enter_coalesced : t -> core:int -> int -> int -> int

(** [slot_of t tok] — the slot of the still-open frame behind token
    [tok] ([-1] if dropped); capture it before {!leave} to later
    {!reopen} a frame cut by a scheduler quantum. *)
val slot_of : t -> int -> int

(** [reopen t ~core kind ~slot arg] — reopen the closed frame at
    [slot] (a bounded-quantum cut: zero simulated time passed and the
    enclosing frame is unchanged), so the reopened interval telescopes
    as if never cut; falls back to {!enter} when the slot no longer
    matches. Returns the {!leave} token. *)
val reopen : t -> core:int -> int -> slot:int -> int -> int

(** [emit_async t ~core kind ~t0 arg] records a complete span from [t0]
    to now — overlapping latencies (IRQ delivery, power ramps) that do
    not nest on the frame stack. Carries no attribution delta. *)
val emit_async : t -> core:int -> int -> t0:int -> int -> unit

(** [phase t code] — phase-mark dispatcher fed by the harness [record]
    path; opens/closes the suspend / sleep / wakeup / resume frames and
    converts per-device marks into async spans. The marker vocabulary
    mirrors [Tk_kernel.Hyper] (cross-checked in test/test_span.ml). *)
val phase : t -> int -> unit

(* --------------------------- consumption ----------------------------- *)

val spans : t -> int  (** allocated slots (closed + still open) *)

val dropped : t -> int

(** [iter t f] visits closed spans in open order (children after their
    parent). *)
val iter :
  t ->
  (id:int ->
  parent:int ->
  kind:int ->
  core:int ->
  t0:int ->
  t1:int ->
  arg:int ->
  unit) ->
  unit

type recon = {
  r_roots : int;  (** closed wakeup roots audited *)
  r_max_dur_residual : float;
      (** worst |root duration - sum of direct non-async children| /
          root duration *)
  r_max_attr_residual : float;
      (** worst relative attribution-gauge residual over roots *)
}

(** The where-did-the-time-go audit over every closed wakeup root; both
    residuals must sit within the 0.1% reconciliation bar. *)
val reconcile : t -> recon

(** One JSON object per closed span per line: id, parent, kind, core,
    t0_ns, dur_ns, arg and the attribution-gauge deltas under "attr". *)
val dump_jsonl : out_channel -> t -> unit

(** Chrome trace-event JSON (loadable in ui.perfetto.dev and
    chrome://tracing): per-core thread tracks of "X" complete events,
    plus "C" counter tracks replayed from [timeseries] rows when a
    sampler is passed. *)
val dump_perfetto : ?timeseries:Timeseries.t -> out_channel -> t -> unit

(** Per-kind count/total/mean table plus the reconciliation footer. *)
val summary : t -> unit
