(** Named monotonic counters used across the simulator.

    Every subsystem (cache model, DBT engine, emulated services, ...)
    accounts its work through a [t]; benchmarks extract per-phase or
    per-device figures via {!snapshot}/{!diff}. *)

type t

val create : unit -> t

(** [add t name n] bumps counter [name] by [n], creating it at 0 first. *)
val add : t -> string -> int -> unit

(** [incr t name] is [add t name 1]. *)
val incr : t -> string -> unit

(** [get t name] is the current value of [name] (0 if never touched). *)
val get : t -> string -> int

(** [set t name v] overwrites [name] with [v]. *)
val set : t -> string -> int -> unit

(** [reset t] zeroes every counter but keeps the names. *)
val reset : t -> unit

(** [snapshot t] captures the current values as a name-sorted assoc
    list; pair with {!diff} for per-phase deltas. *)
val snapshot : t -> (string * int) list

(** [to_assoc t] — the canonical counter schema: name-sorted
    [(name, value)] pairs, the shape counters travel in everywhere
    downstream (trace phase-marks, time series, run manifests,
    {!Report.counters}). Alias of {!snapshot}. *)
val to_assoc : t -> (string * int) list

(** [to_json t] renders {!to_assoc} as one flat JSON object with sorted,
    stable keys (manifest digests rely on this). *)
val to_json : t -> string

(** [load t saved] makes [t] hold exactly [saved]: names absent from
    [saved] are {e removed}, not zeroed (a zero-valued leftover would
    still render in {!to_assoc} and leak sibling-instance history into
    restored-world output). Used by the world-snapshot layer. *)
val load : t -> (string * int) list -> unit

(** [diff before after] is the per-name difference [after - before];
    names absent on one side count as 0 there. *)
val diff : (string * int) list -> (string * int) list -> (string * int) list

(** [pp ppf t] prints all non-zero counters, one per line. *)
val pp : Format.formatter -> t -> unit
