(** Plain-text table rendering for the benchmark harness.

    The benches print the same rows/series the paper reports; this
    module keeps the formatting in one place so every table looks
    alike. *)

type align = L | R

(** [table ~title ~header rows] prints an aligned ASCII table. The first
    column is left-aligned, the rest right-aligned unless [aligns] says
    otherwise. *)
val table :
  ?aligns:align list ->
  title:string ->
  header:string list ->
  string list list ->
  unit

(** [kv title pairs] prints a key/value block. *)
val kv : string -> (string * string) list -> unit

(** [counters title assoc] renders a counter snapshot
    ({!Counters.to_assoc}) as a two-column table, dropping zero rows. *)
val counters : string -> (string * int) list -> unit

(** [counter_deltas title deltas] renders a {!Counters.diff} result,
    dropping zero rows and sign-marking growth. *)
val counter_deltas : string -> (string * int) list -> unit

(** Format helpers used throughout the bench output. *)

val fx : float -> string
val pct : float -> string
val ms : int -> string
val mj : float -> string
val f2 : float -> string
