(** Mergeable streaming-percentile sketch (log-linear histogram).

    Fixed-bucket HDR-style histogram over non-negative ints: values
    below 32 are exact, larger values land in a 16-way split of their
    octave, bounding the relative value error of any reported quantile
    at 6.25%. Merging is a bucket-wise add — associative and
    commutative — so shard sketches can be combined in any order
    without perturbing fleet digests. Ranks are always exact; only the
    reported value is quantized. *)

type t

val create : unit -> t

(** [add t v] records one sample. Negative values clamp to 0. *)
val add : t -> int -> unit

(** [add_n t v n] records [n] identical samples ([n <= 0] is a no-op). *)
val add_n : t -> int -> int -> unit

val count : t -> int
val sum : t -> int

(** Exact observed extrema; 0 on an empty sketch. *)
val min_value : t -> int

val max_value : t -> int
val mean : t -> float

(** [quantile t phi] — the value at exact rank [ceil (phi * n)]
    (clamped to [1, n]), quantized to its bucket's midpoint and clamped
    to the observed extrema. 0 on an empty sketch. *)
val quantile : t -> float -> int

(** [merge a b] — a fresh sketch holding every sample of [a] and [b]. *)
val merge : t -> t -> t

(** [merge_into dst ~src] — in-place accumulate [src] into [dst]. *)
val merge_into : t -> src:t -> unit

(** Non-empty buckets as [(lo, hi, count)] rows in ascending value
    order — the canonical serialization. *)
val rows : t -> (int * int * int) list

(** [load t rows] — replay serialized rows (each row is [count] samples
    at its bucket's lower bound; bucket-stable by construction). *)
val load : t -> (int * int * int) list -> unit

(** [bucket_of v] / [bounds idx] — exposed for the unit tests: the
    bucket index of a value and a bucket's inclusive value range. *)
val bucket_of : int -> int

val bounds : int -> int * int
