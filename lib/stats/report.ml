(** Plain-text table rendering for the benchmark harness.

    The benches print the same rows/series the paper reports; this module
    keeps the formatting in one place so every table looks alike. *)

type align = L | R

(** [table ~title ~header rows] prints an aligned ASCII table. The first
    column is left-aligned, the rest right-aligned unless [aligns] says
    otherwise. *)
let table ?(aligns = []) ~title ~header rows =
  let ncol = List.length header in
  let align i =
    match List.nth_opt aligns i with
    | Some a -> a
    | None -> if i = 0 then L else R
  in
  let all = header :: rows in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncol width in
  let render row =
    List.mapi
      (fun i w ->
        let cell = match List.nth_opt row i with Some c -> c | None -> "" in
        match align i with
        | L -> Printf.sprintf "%-*s" w cell
        | R -> Printf.sprintf "%*s" w cell)
      widths
    |> String.concat "  "
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n" (String.make (String.length (render header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows

(** [kv title pairs] prints a key/value block. *)
let kv title pairs =
  Printf.printf "\n== %s ==\n" title;
  let w = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Printf.printf "%-*s : %s\n" w k v) pairs

(** [counters title assoc] renders a counter snapshot ({!Counters.to_assoc})
    as a two-column table, dropping zero rows. *)
let counters title assoc =
  let rows =
    List.filter_map
      (fun (k, v) -> if v = 0 then None else Some [ k; string_of_int v ])
      assoc
  in
  if rows <> [] then table ~title ~header:[ "counter"; "value" ] rows

(** [counter_deltas title deltas] renders a {!Counters.diff} result,
    dropping zero rows and sign-marking growth, so per-phase counter
    tables all share one schema instead of ad-hoc fields. *)
let counter_deltas title deltas =
  let rows =
    List.filter_map
      (fun (k, d) ->
        if d = 0 then None
        else Some [ k; Printf.sprintf "%+d" d ])
      deltas
  in
  if rows <> [] then table ~title ~header:[ "counter"; "delta" ] rows

(** Format helpers used throughout the bench output. *)
let fx f = Printf.sprintf "%.1fx" f

let pct f = Printf.sprintf "%.0f%%" (f *. 100.)
let ms ns = Printf.sprintf "%.2f ms" (float_of_int ns /. 1e6)
let mj uj = Printf.sprintf "%.1f mJ" (uj /. 1000.)
let f2 f = Printf.sprintf "%.2f" f
