(** Cycle-domain telemetry sampler: periodic columnar snapshots.

    On a configurable virtual-time period, snapshots a set of named
    integer gauges (per-core busy/idle figures, cache and DRAM traffic,
    translation-cache occupancy, per-device power-rail state, ...) into
    fixed-capacity columnar ring buffers. Consumers — the energy
    attribution ledger, the [--timeseries] export, the run manifest —
    read whole columns back and work on row deltas.

    Sampling is simulation-neutral (gauges are read-only closures over
    model counters) and near-free when disabled: the interpreter loops
    hoist [enabled] once per run, and {!sample_now} allocates nothing.
    test/test_timeseries.ml pins the mechanics. *)

type t = {
  mutable enabled : bool;
      (** the one flag the hot loops hoist and branch on *)
  mutable period_ns : int;  (** virtual-time sampling period *)
  mutable next_due : int;  (** absolute virtual time of the next sample *)
  mutable now : unit -> int;
      (** simulated time source (ns); wired by [Soc.create] *)
  mutable gauges : (string * (unit -> int)) list;
      (** named platform gauges in wiring order *)
  mutable cur_phase : int;
      (** phase code in effect; recorded with every row *)
  mutable cap : int;
  mutable names : string array;
  mutable gfns : (unit -> int) array;
  mutable cols : int array array;
  mutable head : int;
  mutable total : int;  (** rows sampled since enable (>= retained) *)
}

val default_cap : int
val default_period_ns : int

val create : unit -> t

(** Shared always-disabled instance (the pre-wiring default, like
    {!Trace.null}). Never enable it. *)
val null : t

(** [add_gauge t name f] wires gauge [name]. Replaces in place if the
    name is already wired (keeping column order), else appends. Must
    happen before {!enable}. *)
val add_gauge : t -> string -> (unit -> int) -> unit

(** [enable ?cap ?period_ns t] starts sampling from a clean slate: bakes
    the wired gauges into columns, allocates the ring ([cap] rows,
    default 2^14) and records the baseline row. [period_ns] is the
    virtual-time sampling period (default 100 us). *)
val enable : ?cap:int -> ?period_ns:int -> t -> unit

val disable : t -> unit

(** [tick t] — the hot-loop probe: samples one row when the period has
    elapsed. Callers hoist [t.enabled] and only call this while
    sampling is on. *)
val tick : t -> unit

(** [sample_now t] records one row unconditionally (baseline, forced
    phase boundaries, final flush). Allocation-free; no-op when
    disabled. *)
val sample_now : t -> unit

(** [phase t code] forces a row closing the current phase's epoch, then
    switches the recorded phase to [code]. *)
val phase : t -> int -> unit

val retained : t -> int
val dropped : t -> int

(** Column labels, row order: [t_ns; phase; <gauges in wiring order>]. *)
val labels : t -> string array

(** [col_index t name] — column position of [name], if wired. *)
val col_index : t -> string -> int option

(** [rows t] — the retained rows oldest-first, each a fresh array in
    {!labels} order. *)
val rows : t -> int array array

val iter_rows : t -> (int array -> unit) -> unit

(** [to_csv oc t] writes a header line plus one comma-separated line per
    retained row. *)
val to_csv : out_channel -> t -> unit

(** [to_jsonl oc t] writes one JSON object per retained row, keyed by
    column label. *)
val to_jsonl : out_channel -> t -> unit
