(** The one JSON string escaper.

    Several emitters in this tree hand-render JSON (no JSON library
    ships in the toolchain): run manifests, the flight recorder's JSONL
    dump, the time-series export, counters, analysis findings, campaign
    summaries. Any of them may interpolate strings that originate in
    model data — fallback {e reason} strings, device names, kernel
    symbol names — and a single stray quote or backslash in one of those
    would silently corrupt every downstream [jq] pipeline. All string
    interpolation therefore funnels through this module so every emitter
    produces valid JSON by construction. *)

(** [escape s] — [s] with the JSON string escapes applied (quote,
    backslash, and C0 controls; [\n]/[\t] use the short forms). The
    result is what goes {e between} the quotes. *)
let escape s =
  (* fast path: the overwhelmingly common case is a clean identifier *)
  let clean = ref true in
  String.iter
    (fun c -> if c = '"' || c = '\\' || Char.code c < 0x20 then clean := false)
    s;
  if !clean then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

(** [quote s] — [s] escaped and wrapped in double quotes: a complete
    JSON string literal. *)
let quote s = "\"" ^ escape s ^ "\""
