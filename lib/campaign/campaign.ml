(** Parallel simulation campaigns: deterministic sweep fleets.

    Every experiment this repo runs — the §7.3 fallback stress test, the
    differential fuzz battery, the §7.4 what-if energy grids — is a set
    of fully independent simulations: each task builds its own
    [Soc]/[Ark_run]/[Native_run] world (the simulator is shared-nothing
    per instance) and never touches another task's state. This module
    fans such a campaign out over a {!Pool} of domains and folds the
    results back into one ordered, machine-readable summary.

    {b The invariant: determinism under parallelism.} A campaign is
    identified by [(kind, seed, tasks)] alone. Task [i] derives its
    private PRNG as [Random.State.make [| seed; i; kind tag |]] — never
    from a shared state, never from ambient [Random] — so the work each
    task performs is independent of which worker ran it and of how many
    workers there were. Everything that lands in the document's
    deterministic sections ([meta]/[tasks]/[aggregate], digested) is a
    pure function of the campaign identity; host figures (wall time,
    jobs, core count) are quarantined in [host], outside the digest.
    The acceptance test: the same [--seed] produces byte-identical
    deterministic sections — and therefore the same digest — at any
    [--jobs] value. test/test_campaign.ml pins exactly that, for all
    three kinds. *)

open Tk_machine
open Tk_drivers
open Tk_harness
module Translator = Tk_dbt.Translator
module J = Run_manifest
module Counters = Tk_stats.Counters

type kind = Stress | Fuzz | Whatif

let kind_name = function
  | Stress -> "stress"
  | Fuzz -> "fuzz"
  | Whatif -> "whatif"

let kind_of_string = function
  | "stress" -> Some Stress
  | "fuzz" -> Some Fuzz
  | "whatif" -> Some Whatif
  | _ -> None

(* the kind tag seeds the per-task PRNG so the three sweeps never share
   a random stream even at equal (seed, index) *)
let kind_tag = function Stress -> 0x5712 | Fuzz -> 0xF022 | Whatif -> 0x3A1F

(** Per-task PRNG: the whole determinism story hangs on this being the
    only source of randomness a task ever sees. *)
let task_rng ~kind ~seed index =
  Random.State.make [| seed; index; kind_tag kind |]

(* ------------------------------ tasks -------------------------------- *)

(* Each task returns its deterministic summary: a metrics JSON object
   plus mergeable counters. Anything host-timing-dependent is forbidden
   here — it would break cross-jobs byte identity. *)
type task_out = {
  t_metrics : J.json;
  t_counters : (string * int) list;
}

(* --- stress: §7.3 fallback stress, rng-driven glitch schedule --- *)

let stress_task ~runs ~glitch_every rng =
  let runs, fell, reasons, ark =
    Experiments.stress_run ~runs ~glitch_every ~rng ()
  in
  let soc = (Ark_run.plat ark).Platform.soc in
  let act = Core.activity soc.Soc.m3 in
  let e = ark.Ark_run.ark.Transkernel.Ark.engine in
  { t_metrics =
      J.Obj
        [ ("runs", J.Int runs); ("fallbacks", J.Int fell);
          ( "fallback_rate",
            J.Num (float_of_int fell /. float_of_int (max 1 runs)) );
          ("reasons", J.Arr (List.rev_map (fun r -> J.Str r) reasons));
          ("busy_cycles", J.Int act.Core.a_busy_cycles);
          ("instructions", J.Int act.Core.a_instructions);
          ("dbt_blocks", J.Int e.Tk_dbt.Engine.blocks);
          ("engine_exits", J.Int e.Tk_dbt.Engine.engine_exits) ];
    t_counters =
      ("stress.runs", runs) :: ("stress.fallbacks", fell)
      :: Counters.to_assoc ark.Ark_run.ark.Transkernel.Ark.counters }

(* --- fuzz: the differential battery, a chunk per task --- *)

(* the four fuzz arms: the three translator modes plus the superblock
   trace tier, which stacks on Ark mode (its translatability filter) *)
let fuzz_arms =
  [| ("ark", Translator.Ark, Fuzz_gen.compare_arms Translator.Ark);
     ("mid", Translator.Mid, Fuzz_gen.compare_arms Translator.Mid);
     ( "baseline", Translator.Baseline,
       Fuzz_gen.compare_arms Translator.Baseline );
     ("superblock", Translator.Ark, Fuzz_gen.compare_superblock) |]

let fuzz_task ~programs index rng =
  let arm_name, mode, compare_fn =
    fuzz_arms.(index mod Array.length fuzz_arms)
  in
  let compared = ref 0
  and generated = ref 0
  and divergences = ref 0 in
  let first_report = ref "" in
  let gen_digest = ref 0x1bf29ce484222325 in
  while !compared < programs do
    (* alternate program shapes from the same stream *)
    let slots =
      if Random.State.bool rng then Fuzz_gen.gen_straight rng
      else Fuzz_gen.gen_branchy rng
    in
    incr generated;
    if Fuzz_gen.translatable mode slots then begin
      gen_digest :=
        (!gen_digest lxor Fuzz_gen.program_fnv slots)
        * 0x100000001b3 land max_int;
      (match compare_fn slots with
      | Ok () -> ()
      | Error report ->
        incr divergences;
        if !first_report = "" then
          first_report :=
            report ^ "\nprogram:\n" ^ Fuzz_gen.program_str slots);
      incr compared
    end
  done;
  { t_metrics =
      J.Obj
        ([ ("mode", J.Str arm_name);
           ("programs", J.Int !compared); ("generated", J.Int !generated);
           ("divergences", J.Int !divergences);
           ("gen_digest", J.Str (Printf.sprintf "%016x" !gen_digest)) ]
        @
        if !divergences = 0 then []
        else [ ("first_divergence", J.Str !first_report) ]);
    t_counters =
      [ ("fuzz.compared", !compared); ("fuzz.divergences", !divergences);
        ("fuzz.generated", !generated) ] }

(* --- whatif: §7.4 energy grid, one busy-fraction sample per task --- *)

let whatif_overheads =
  [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 8.0; 10.0; 12.0; 16.0 ]

let whatif_task rng =
  let module W = Tk_energy.Whatif in
  (* busy fraction sampled on 0.05 .. 1.00 in percent steps: coarse
     enough to print exactly, fine enough to fill a heat map *)
  let busy_frac = float_of_int (5 + Random.State.int rng 96) /. 100.0 in
  let series =
    List.map
      (fun ov ->
        ( ov,
          W.relative_energy ~a9:Soc.a9_params ~m3:Soc.m3_params ~overhead:ov
            ~busy_frac () ))
      whatif_overheads
  in
  let be = W.break_even ~busy_frac () in
  let below = List.filter (fun (_, rel) -> rel < 1.0) series in
  { t_metrics =
      J.Obj
        [ ("busy_frac", J.Num busy_frac);
          ( "break_even_overhead",
            if Float.is_finite be then J.Num be else J.Str "unbounded" );
          ( "grid",
            J.Arr
              (List.map
                 (fun (ov, rel) ->
                   J.Obj
                     [ ("overhead", J.Num ov); ("rel_energy", J.Num rel) ])
                 series) ) ];
    t_counters =
      [ ("whatif.points", List.length series);
        ("whatif.saving_points", List.length below) ] }

(* --------------------------- the campaign ---------------------------- *)

type config = {
  kind : kind;
  tasks : int;
  jobs : int;
  seed : int;
  stress_runs : int;  (** suspend/resume cycles per stress task *)
  stress_glitch_every : int;  (** expected cycles between glitches *)
  fuzz_programs : int;  (** compared programs per fuzz task *)
  chaos_fail : int option;
      (** fault injection for the error-propagation path: the given
          task index raises instead of running. Tests (and nothing
          else) use this to pin how worker errors surface in the
          document, the exit code and the CLI message. *)
}

let default_config kind =
  { kind; tasks = 8; jobs = 1; seed = 1; stress_runs = 10;
    stress_glitch_every = 4; fuzz_programs = 8; chaos_fail = None }

type t = {
  config : config;
  doc : J.json;  (** the campaign document, ready to write *)
  digest : string;  (** FNV over the deterministic sections *)
  wall_s : float;
  errors : (int * string) list;  (** (task index, message) *)
  divergences : int;  (** fuzz arms that disagreed (0 outside fuzz) *)
}

let failed t = t.errors <> [] || t.divergences > 0

(** [first_error t] — the lowest-task-index worker error, if any. The
    CLI's non-zero exit path prints this (task index and message)
    instead of a generic failure line. *)
let first_error t = match t.errors with [] -> None | e :: _ -> Some e

(* merge per-task counters by summing equal names *)
let merge_counters outs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (k, v) ->
         let cur = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
         Hashtbl.replace tbl k (cur + v)))
    outs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters_obj kvs = J.Obj (List.map (fun (k, v) -> (k, J.Int v)) kvs)

(** [run config] — execute the campaign on [config.jobs] domains and
    assemble the summary document. Worker tasks never print; every task
    constructs (and drops) its own simulated world. *)
let run (cfg : config) =
  let { kind; tasks; jobs; seed; _ } = cfg in
  let task i =
    (match cfg.chaos_fail with
    | Some j when j = i ->
      failwith (Printf.sprintf "chaos injection (task %d)" i)
    | _ -> ());
    let rng = task_rng ~kind ~seed i in
    match kind with
    | Stress ->
      stress_task ~runs:cfg.stress_runs
        ~glitch_every:cfg.stress_glitch_every rng
    | Fuzz -> fuzz_task ~programs:cfg.fuzz_programs i rng
    | Whatif -> whatif_task rng
  in
  let wall0 = Unix.gettimeofday () in
  let outcomes = Pool.run ~jobs ~tasks task in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let errors = ref [] in
  let task_docs =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Ok out ->
             J.Obj
               [ ("task", J.Int i); ("metrics", out.t_metrics);
                 ("counters", counters_obj out.t_counters) ]
           | Error msg ->
             errors := (i, msg) :: !errors;
             J.Obj [ ("task", J.Int i); ("error", J.Str msg) ])
         outcomes)
  in
  let errors = List.rev !errors in
  let ok_outs =
    Array.to_list outcomes
    |> List.filter_map (function Ok o -> Some o | Error _ -> None)
  in
  let merged = merge_counters (List.map (fun o -> o.t_counters) ok_outs) in
  let counter k = Option.value ~default:0 (List.assoc_opt k merged) in
  let divergences = counter "fuzz.divergences" in
  let kind_aggregate =
    match kind with
    | Stress ->
      [ ("runs", J.Int (counter "stress.runs"));
        ("fallbacks", J.Int (counter "stress.fallbacks"));
        ( "fallback_rate",
          J.Num
            (float_of_int (counter "stress.fallbacks")
            /. float_of_int (max 1 (counter "stress.runs"))) ) ]
    | Fuzz ->
      [ ("programs", J.Int (counter "fuzz.compared"));
        ("divergences", J.Int divergences) ]
    | Whatif -> [ ("points", J.Int (counter "whatif.points")) ]
  in
  let meta =
    J.Obj
      [ ("kind", J.Str (kind_name kind)); ("seed", J.Int seed);
        ("tasks", J.Int tasks);
        ("git_rev", J.Str (Run_manifest.git_rev ())) ]
  in
  let tasks_json = J.Arr task_docs in
  let aggregate =
    J.Obj
      (kind_aggregate
      @ [ ("task_errors", J.Int (List.length errors));
          ("counters", counters_obj merged) ])
  in
  (* the digest covers exactly the sections that must not depend on
     [jobs]: meta, every per-task record, and the aggregate *)
  let digest =
    Run_manifest.digest_string
      (J.to_string
         (J.Obj
            [ ("meta", meta); ("tasks", tasks_json);
              ("aggregate", aggregate) ]))
  in
  let host =
    J.Obj
      [ ("jobs", J.Int jobs); ("wall_s", J.Num wall_s);
        ( "host_cores",
          J.Int (Domain.recommended_domain_count ()) ) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "arksim-campaign-v1"); ("meta", meta);
        ("tasks", tasks_json); ("aggregate", aggregate);
        ("digest", J.Str digest); ("host", host) ]
  in
  { config = cfg; doc; digest; wall_s; errors; divergences }

let write_file path t = J.write_file path t.doc

(** [print_summary t] — the collector-side human rendering (workers
    never print: stdout interleaving across domains would be
    nondeterministic). *)
let print_summary t =
  let cfg = t.config in
  Printf.printf
    "campaign %s: %d tasks on %d job(s) in %.2f s — digest %s\n"
    (kind_name cfg.kind) cfg.tasks cfg.jobs t.wall_s t.digest;
  (match cfg.kind with
  | Fuzz ->
    Printf.printf "  fuzz: %d divergence(s)\n" t.divergences
  | Stress | Whatif -> ());
  List.iter
    (fun (i, msg) -> Printf.printf "  task %d FAILED: %s\n" i msg)
    t.errors;
  if t.errors = [] then Printf.printf "  all tasks completed\n"
