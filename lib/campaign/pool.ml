(** Fixed fleet of [Domain.spawn] workers over an indexed task list.

    The campaign runner's concurrency primitive: [run ~jobs ~tasks f]
    evaluates [f 0 .. f (tasks-1)] on at most [jobs] domains and returns
    the outcomes {e in task order}, whatever order the workers finished
    in. Tasks are claimed from a mutex-protected cursor (dynamic
    scheduling — long tasks don't convoy short ones behind a static
    partition), and every outcome lands in its own slot of a results
    array, also under the mutex, so the final read after [Domain.join]
    is well-defined under the OCaml memory model.

    A task that raises does {e not} wedge the queue or kill its worker:
    the exception is captured as that task's [Error] outcome and the
    worker moves on to the next index. [f] must be self-contained per
    call (the simulator is shared-nothing per [Soc]) and must not
    print — ordered, aggregated output is the collector's job. *)

type 'a outcome = ('a, string) result

(* OCaml domains are heavyweight: every minor collection is a
   stop-the-world barrier across all of them, so domains beyond the
   host's cores buy no throughput and pay GC-sync latency for each
   extra runnable domain (measured ~2x wall on a 1-core host at 6
   domains, ~1.5x at 2). [jobs] therefore stays the *requested*
   concurrency and the pool clamps the spawn count to the cores
   actually present — on a single-core host every jobs value runs
   inline, which is also why results being task-ordered (not
   completion-ordered) matters: callers observe identical output
   whatever the clamp did. *)
let domain_cap jobs =
  if jobs <= 1 then 1
  else min jobs (max 1 (Domain.recommended_domain_count ()))

(** [run ~jobs ~tasks f] — evaluate [f i] for [i] in [0..tasks-1] on
    [min jobs tasks] workers (at least 1), clamped to the host's core
    count since surplus domains only add GC-barrier stalls; [jobs <= 1]
    (or a single-core host) runs inline on the calling domain. The
    result array is indexed by task. *)
let run ~jobs ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  let results : 'a outcome option array = Array.make tasks None in
  let m = Mutex.create () in
  let next = ref 0 in
  let take () =
    Mutex.lock m;
    let i = !next in
    if i < tasks then incr next;
    Mutex.unlock m;
    if i < tasks then Some i else None
  in
  let put i r =
    Mutex.lock m;
    results.(i) <- Some r;
    Mutex.unlock m
  in
  let worker () =
    let rec loop () =
      match take () with
      | None -> ()
      | Some i ->
        let r =
          try Ok (f i)
          with e -> Error (Printexc.to_string e)
        in
        put i r;
        loop ()
    in
    loop ()
  in
  let jobs = max 1 (min (domain_cap jobs) tasks) in
  if jobs <= 1 then worker ()
  else begin
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains
  end;
  Array.map
    (function Some r -> r | None -> Error "task never scheduled")
    results
