(* Quickstart: boot the simulated platform, run one native ephemeral-task
   kernel cycle, then the same cycle offloaded through ARK, and compare.

     dune exec examples/quickstart.exe
*)

open Tk_harness

let () =
  print_endline "== transkernel quickstart ==";

  (* 1. Native execution: minikern on the simulated Cortex-A9 drives all
     nine devices through suspend -> deep sleep -> resume. *)
  let native = Native_run.create () in
  let _events = Native_run.suspend_resume_cycle native in
  let a9 = native.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.cpu in
  Printf.printf "native : busy %.2f ms, idle %.2f ms, %d guest instructions\n"
    (float_of_int (Tk_machine.Core.busy_ns a9) /. 1e6)
    (float_of_int (Tk_machine.Core.idle_ns a9) /. 1e6)
    a9.Tk_machine.Core.instructions;

  (* 2. Offloaded execution: the same kernel binary, but the device
     phases run on the simulated Cortex-M3 through cross-ISA DBT. *)
  let ark = Ark_run.create () in
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back reason -> Printf.printf "(fell back: %s)\n" reason);
  let m3 = (Ark_run.plat ark).Tk_drivers.Platform.soc.Tk_machine.Soc.m3 in
  let engine = ark.Ark_run.ark.Transkernel.Ark.engine in
  Printf.printf
    "ARK    : busy %.2f ms, idle %.2f ms, %d host instructions\n"
    (float_of_int (Tk_machine.Core.busy_ns m3) /. 1e6)
    (float_of_int (Tk_machine.Core.idle_ns m3) /. 1e6)
    m3.Tk_machine.Core.instructions;
  Printf.printf
    "DBT    : %d blocks, %d guest instructions translated into %d host\n"
    engine.Tk_dbt.Engine.blocks engine.Tk_dbt.Engine.guest_translated
    engine.Tk_dbt.Engine.host_emitted;

  (* 3. Both worlds agree on the kernel's end state. *)
  let same =
    Native_run.device_states native = Native_run.device_states ark.Ark_run.nat
  in
  Printf.printf "device end states match native: %b\n" same;

  (* 4. And the point of it all (§7.4): *)
  let e label (core : Tk_machine.Core.t) params =
    let act = Tk_machine.Core.activity core in
    let b = Tk_energy.Power_model.of_activity ~params ~act () in
    Printf.printf "%s system energy: %.2f mJ\n" label
      (Tk_energy.Power_model.total b /. 1000.);
    Tk_energy.Power_model.total b
  in
  let en = e "native " a9 Tk_machine.Soc.a9_params in
  let ea = e "ARK    " m3 Tk_machine.Soc.m3_params in
  Printf.printf "ARK consumes %.0f%% of native energy (paper: 66%%)\n"
    (100. *. ea /. en)
