examples/quickstart.ml: Ark_run Native_run Printf Tk_dbt Tk_drivers Tk_energy Tk_harness Tk_machine Transkernel
