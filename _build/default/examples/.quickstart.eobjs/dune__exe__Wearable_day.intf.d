examples/wearable_day.mli:
