examples/wearable_day.ml: Ark_run List Native_run Printf Tk_drivers Tk_energy Tk_harness Tk_machine
