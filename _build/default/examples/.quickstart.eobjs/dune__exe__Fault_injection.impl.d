examples/fault_injection.ml: Ark_run List Native_run Printf String Tk_drivers Tk_harness Tk_stats Transkernel
