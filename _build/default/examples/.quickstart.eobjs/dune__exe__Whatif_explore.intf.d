examples/whatif_explore.mli:
