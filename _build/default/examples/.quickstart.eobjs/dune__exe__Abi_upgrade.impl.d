examples/abi_upgrade.ml: Ark_run List Native_run Printf String Tk_drivers Tk_harness Tk_isa Tk_kernel Tk_machine
