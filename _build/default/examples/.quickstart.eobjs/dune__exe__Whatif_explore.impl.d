examples/whatif_explore.ml: Core List Printf Soc Tk_drivers Tk_energy Tk_harness Tk_machine
