examples/abi_upgrade.mli:
