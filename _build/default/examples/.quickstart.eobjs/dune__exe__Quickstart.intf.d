examples/quickstart.mli:
