(* Build once, work with many (§2.3, §7.2): ship one ARK "firmware"
   binary, then upgrade the kernel underneath it repeatedly. ARK keeps
   working because it depends only on the 12-function + jiffies ABI; a
   struct-sharing offload compiled against one release visibly misreads
   the next one.

     dune exec examples/abi_upgrade.exe
*)

open Tk_harness
module Layout = Tk_kernel.Layout
module Variants = Tk_kernel.Variants

let () =
  print_endline "== kernel upgrades under one ARK binary ==";
  Printf.printf "the narrow ABI ARK is built against:\n  %s + jiffies\n\n"
    (String.concat ", "
       (List.filter (fun s -> s <> "jiffies") Tk_kernel.Kabi.table2));
  List.iter
    (fun (lay : Layout.t) ->
      (* "flash" a kernel release; the ARK code (this OCaml library,
         compiled once) is reused unchanged *)
      let ark = Ark_run.create ~layout:lay () in
      let r = Ark_run.suspend_resume_cycle ark in
      let clean =
        r = `Ok
        && List.for_all (fun (_, s) -> s = 1)
             (Native_run.device_states ark.Ark_run.nat)
      in
      Printf.printf
        "kernel %-6s  tcb=%2dB work.fn@+%d mutex.count@+%d   ARK: %s\n"
        lay.Layout.version lay.Layout.tcb_size lay.Layout.work_fn
        lay.Layout.mtx_count
        (if clean then "offloaded cycle OK" else "FAILED"))
    Variants.all;

  (* contrast: the §2.3 strawman reading a struct with frozen offsets *)
  print_newline ();
  print_endline "a wide-interface offload (struct sharing, Fig 2a) instead:";
  let old = Variants.v3_16 in
  let nat = Native_run.create ~layout:old () in
  let image = nat.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let mem = nat.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let work = Tk_isa.Asm.symbol image "flash_work" in
  let read off = Tk_machine.Mem.ram_read mem (work + off) 4 in
  Printf.printf
    "  reading work->fn from a %s kernel with %s offsets: 0x%08x (valid)\n"
    old.Layout.version old.Layout.version (read old.Layout.work_fn);
  Printf.printf
    "  reading work->fn with offsets compiled against %s:  0x%08x (garbage)\n"
    Layout.v4_4.Layout.version (read Layout.v4_4.Layout.work_fn);
  print_endline
    "  -> every release would require re-porting; ARK's ABI has not moved."
