(* Figure 7 as a playground: explore how ARK's energy saving depends on
   DBT overhead, native busy fraction, and the peripheral core's cache
   size (the §7.5 recommendation to SoC architects).

     dune exec examples/whatif_explore.exe
*)

open Tk_machine
module W = Tk_energy.Whatif

let () =
  print_endline "== what-if exploration (Figure 7 / §7.5) ==";
  (* where do the break-evens sit for this platform's power numbers? *)
  List.iter
    (fun bf ->
      Printf.printf
        "native %3.0f%% busy: ARK saves energy below %.1fx DBT overhead\n"
        (100. *. bf)
        (W.break_even ~busy_frac:bf ()))
    [ 1.0; 0.6; 0.41; 0.2 ];

  (* a hypothetical better peripheral core: lower idle power *)
  print_newline ();
  let m3' = { Soc.m3_params with Core.idle_mw = 0.5 } in
  Printf.printf "halving the peripheral core's idle power (1 -> 0.5 mW):\n";
  List.iter
    (fun bf ->
      Printf.printf "  at %3.0f%% busy the break-even moves %.1fx -> %.1fx\n"
        (100. *. bf)
        (W.break_even ~busy_frac:bf ())
        (W.break_even ~m3:m3' ~busy_frac:bf ()))
    [ 0.41; 0.2 ];

  (* §7.5: "enlarging the peripheral core's LLC modestly" — measure the
     real effect on the offloaded phase by re-running the system with a
     bigger M3 cache *)
  print_newline ();
  print_endline "peripheral-core LLC sweep (measured, offloaded cycle):";
  List.iter
    (fun kb ->
      let ark = Tk_harness.Ark_run.create ~m3_cache_kb:kb () in
      ignore (Tk_harness.Ark_run.suspend_resume_cycle ark);
      let soc = (Tk_harness.Ark_run.plat ark).Tk_drivers.Platform.soc in
      let m3 = soc.Soc.m3 in
      Core.reset_activity m3;
      ignore (Tk_harness.Ark_run.suspend_resume_cycle ark);
      let act = Core.activity m3 in
      let mbps =
        float_of_int act.Core.a_rd_bytes /. 1e6
        /. (float_of_int (act.Core.a_busy_ps + act.Core.a_idle_ps) /. 1e12)
      in
      Printf.printf
        "  %3d KB LLC: busy %.2f ms, DRAM read %.1f MB/s, %d misses\n" kb
        (float_of_int act.Core.a_busy_ps /. 1e9)
        mbps act.Core.a_cache_misses)
    [ 16; 32; 64; 128 ]
