(* Off the hot path (§3, §6, §7.3): wedge the WiFi firmware so its resume
   command is never acknowledged. The driver times out and WARNs — a
   cold path ARK does not translate. ARK drains its DBT contexts,
   rewrites code-cache addresses on the guest stack, flushes the M3
   cache, fires an IPI, and the CPU finishes the phase natively.

     dune exec examples/fault_injection.exe
*)

open Tk_harness
module Counters = Tk_stats.Counters

let () =
  print_endline "== WiFi firmware glitch -> translated-to-native fallback ==";
  let ark = Ark_run.create () in
  (* a clean warm-up cycle *)
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> print_endline "cycle 1: clean offloaded suspend/resume"
  | `Fell_back r -> Printf.printf "cycle 1 unexpectedly fell back: %s\n" r);

  (* wedge the firmware for the next resume *)
  let wifi = Tk_drivers.Platform.device (Ark_run.plat ark) "wifi" in
  wifi.Tk_drivers.Device.glitch_next_resume <- true;
  (match Ark_run.suspend_resume_cycle ark with
  | `Fell_back reason ->
    Printf.printf "cycle 2: fell back to the CPU (cold path: %s)\n" reason
  | `Ok -> print_endline "cycle 2: unexpectedly clean");
  Printf.printf "  WARN codes recorded natively: %s\n"
    (String.concat ", "
       (List.map (Printf.sprintf "0x%x") ark.Ark_run.nat.Native_run.warns));
  List.iter
    (fun (n, s) ->
      Printf.printf "  %-6s %s\n" n
        (if s = 1 then "resumed"
         else "left suspended (driver cancelled the attempt)"))
    (Native_run.device_states ark.Ark_run.nat);
  let c = ark.Ark_run.ark.Transkernel.Ark.counters in
  Printf.printf
    "  migration: %d (stack rewrite ~%dus, cache flush ~%dus, IPI ~%dus)\n"
    (Counters.get c "fallback.migrations")
    (Transkernel.Ark.ns_stack_rewrite / 1000)
    (Transkernel.Ark.ns_cache_flush / 1000)
    (Transkernel.Ark.ns_ipi / 1000);

  (* the system recovers: next cycle is clean again and wifi comes back *)
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> print_endline "cycle 3: clean again; all devices up"
  | `Fell_back r -> Printf.printf "cycle 3 fell back: %s\n" r);
  List.iter
    (fun (n, s) -> if s <> 1 then Printf.printf "  %s still down!\n" n)
    (Native_run.device_states ark.Ark_run.nat)
