(* A smart-watch day (the paper's §1 motivation): ephemeral tasks fire
   every few seconds — push notifications, sensor sync, display refresh —
   and each wakes the platform, runs briefly, and puts it back to sleep.
   The kernel's device suspend/resume dominates the energy bill; this
   example replays a stretch of such a day natively and offloaded, and
   projects battery life.

     dune exec examples/wearable_day.exe
*)

open Tk_harness
module Power = Tk_energy.Power_model

type workload = { name : string; interval_s : int; cycles : int }

let day =
  [ { name = "push notifications"; interval_s = 5; cycles = 4 };
    { name = "sensor batch sync"; interval_s = 30; cycles = 3 };
    { name = "watch-face refresh"; interval_s = 60; cycles = 3 } ]

let run_arm label create_fn cycle_fn energy_fn =
  Printf.printf "\n-- %s --\n" label;
  let t = create_fn () in
  let total_uj = ref 0.0 and total_sleep_uj = ref 0.0 in
  List.iter
    (fun w ->
      let before = energy_fn t in
      for _ = 1 to w.cycles do
        cycle_fn t
      done;
      let spent = energy_fn t -. before in
      (* deep-sleep energy between tasks *)
      let sleep_uj =
        Power.deep_sleep_uj (float_of_int (w.interval_s * w.cycles) *. 1000.)
      in
      total_uj := !total_uj +. spent;
      total_sleep_uj := !total_sleep_uj +. sleep_uj;
      Printf.printf "  %-20s %d cycles  kernel %.2f mJ  sleep %.2f mJ\n"
        w.name w.cycles (spent /. 1000.) (sleep_uj /. 1000.))
    day;
  Printf.printf "  %-20s kernel %.2f mJ + sleep %.2f mJ = %.2f mJ\n" "TOTAL"
    (!total_uj /. 1000.) (!total_sleep_uj /. 1000.)
    ((!total_uj +. !total_sleep_uj) /. 1000.);
  !total_uj

let native_energy (t : Native_run.t) =
  let soc = t.Native_run.plat.Tk_drivers.Platform.soc in
  let act = Tk_machine.Core.activity soc.Tk_machine.Soc.cpu in
  Power.total (Power.of_activity ~params:Tk_machine.Soc.a9_params ~act ())

let ark_energy (t : Ark_run.t) =
  let soc = (Ark_run.plat t).Tk_drivers.Platform.soc in
  let act = Tk_machine.Core.activity soc.Tk_machine.Soc.m3 in
  Power.total (Power.of_activity ~params:Tk_machine.Soc.m3_params ~act ())

let () =
  print_endline "== a wearable's background day, native vs transkernel ==";
  let e_native =
    run_arm "native kernel (Cortex-A9)"
      (fun () -> Native_run.create ())
      (fun t -> ignore (Native_run.suspend_resume_cycle t))
      native_energy
  in
  let e_ark =
    run_arm "transkernel (Cortex-M3)"
      (fun () -> Ark_run.create ())
      (fun t -> ignore (Ark_run.suspend_resume_cycle t))
      ark_energy
  in
  let kernel_rel = e_ark /. e_native in
  Printf.printf "\nkernel (suspend/resume) energy with ARK: %.0f%% of native\n"
    (100. *. kernel_rel);
  (* paper-style projection: if suspend/resume is 90% of a 5s wakeup
     cycle's energy, what does the measured saving buy? *)
  List.iter
    (fun (frac, point) ->
      let ext =
        Tk_energy.Battery.extension ~susp_frac:frac ~ark_rel:kernel_rel ()
      in
      Printf.printf
        "battery life at %s: +%.0f%% (+%.1f h on a 24 h day)\n" point
        (100. *. ext)
        (Tk_energy.Battery.hours_per_day ext))
    [ (0.9, "5s task intervals (90% share)");
      (0.5, "30s task intervals (50% share)") ]
