lib/dbt/engine.ml: Array Bits Cache Core Exec Hashtbl Layout List Mem Printf Result Rules Soc Tk_isa Tk_machine Translator Types V7a V7m
