lib/dbt/layout.ml:
