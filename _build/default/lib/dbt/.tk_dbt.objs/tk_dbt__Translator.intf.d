lib/dbt/translator.mli: Tk_isa Types
