lib/dbt/rules.ml: Bits Layout List Printf Spec Tk_isa V7m
