lib/dbt/rules.mli: Spec Tk_isa Types
