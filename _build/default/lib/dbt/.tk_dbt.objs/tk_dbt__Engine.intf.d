lib/dbt/engine.mli: Exec Hashtbl Soc Tk_isa Tk_machine Translator Types
