lib/dbt/translator.ml: Bits Layout List Rules Tk_isa V7m
