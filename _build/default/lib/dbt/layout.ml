(** DBT memory-layout constants shared by translator and engine. *)

(** Returning to this address means the DBT context's entry call is done
    (outside RAM, recognisable, never a valid fetch target). *)
let exit_magic = 0xF0000000

(** The engine's guest-visible state block ("env"), in shared DRAM near
    the top of RAM (outside the kernel image and the page pool).

    ARK mode uses one slot: the emulated guest r10 — the register the
    host repurposes as the dedicated scratch (§5.2). Baseline/QEMU mode
    keeps the whole emulated guest CPU here, addressed off host r11. *)
let env_base = 0x10FF0000

let env_r10 = env_base  (* ARK: emulated guest r10 *)
let env_flags_spill = env_base + 4  (* ARK: flag save/restore slot *)

(* baseline: emulated guest registers r0..r15 *)
let env_reg i = env_base + 0x40 + (4 * i)
let env_guest_flags = env_base + 0x80
let env_next_pc = env_base + 0x84  (* where exit stubs leave the guest pc *)

(** SVC immediates in emitted host code — informational only (the engine
    dispatches on the SVC's address via the site table), but they make
    disassembly and traces readable. *)
let svc_call = 33

let svc_jump = 34
let svc_emu = 35
let svc_hook = 36
let svc_indirect = 37
let svc_exit_pc = 38
let svc_fallback = 39
let svc_guest = 40  (* forwarded guest hypercall *)
let svc_tail = 41
