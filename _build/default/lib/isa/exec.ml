(** Single-instruction semantics, shared by both ISAs.

    V7A and V7M implement the same semantics in different encodings, so
    one executor serves both the simulated Cortex-A9 (decoding {!V7a}
    words — "native execution") and the simulated Cortex-M3 (decoding
    {!V7m} words out of the DBT code cache). The equivalence of the two
    paths is what the differential property tests check.

    Conventions (documented simplifications vs architectural ARM):
    {ul
    {- reads of PC (r15) yield [instruction address + 8] (A32 style);}
    {- an [Imm] or plain [Reg] operand2 leaves the carry flag unchanged
       (we do not model the encoder's rotation carry-out);}
    {- shift amounts are taken literally (no "LSR #0 means 32").}} *)

open Types

(** Architectural state of one core: 16 registers, NZCV flags, IRQ enable.
    Values are 32-bit-masked OCaml ints. *)
type cpu = {
  r : int array;
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
  mutable irq_on : bool;
}

let make_cpu () =
  { r = Array.make 16 0; n = false; z = false; c = false; v = false;
    irq_on = false }

(** [copy_into src dst] copies all architectural state. *)
let copy_into src dst =
  Array.blit src.r 0 dst.r 0 16;
  dst.n <- src.n; dst.z <- src.z; dst.c <- src.c; dst.v <- src.v;
  dst.irq_on <- src.irq_on

(** [flags_word cpu] packs NZCV into bits 31:28 (MRS view). *)
let flags_word cpu =
  (Bool.to_int cpu.n lsl 31) lor (Bool.to_int cpu.z lsl 30)
  lor (Bool.to_int cpu.c lsl 29) lor (Bool.to_int cpu.v lsl 28)

(** [set_flags_word cpu w] unpacks bits 31:28 into NZCV (MSR view). *)
let set_flags_word cpu w =
  cpu.n <- Bits.bit w 31; cpu.z <- Bits.bit w 30;
  cpu.c <- Bits.bit w 29; cpu.v <- Bits.bit w 28

(** Environment an instruction executes against: memory plus the traps
    that escape pure data flow. The owner (core interpreter or DBT
    engine) decides what those mean. *)
type env = {
  load : int -> int -> int;  (** [load addr nbytes], zero-extended *)
  store : int -> int -> int -> unit;  (** [store addr nbytes value] *)
  svc : cpu -> int -> unit;
  wfi : cpu -> unit;
  irq_ret : cpu -> unit;
  undef : cpu -> inst -> unit;  (** UDF or unimplementable op *)
}

(** [cond_holds cpu c] evaluates condition [c] against the flags. *)
let cond_holds cpu = function
  | AL -> true
  | EQ -> cpu.z
  | NE -> not cpu.z
  | CS -> cpu.c
  | CC -> not cpu.c
  | MI -> cpu.n
  | PL -> not cpu.n
  | VS -> cpu.v
  | VC -> not cpu.v
  | HI -> cpu.c && not cpu.z
  | LS -> (not cpu.c) || cpu.z
  | GE -> cpu.n = cpu.v
  | LT -> cpu.n <> cpu.v
  | GT -> (not cpu.z) && cpu.n = cpu.v
  | LE -> cpu.z || cpu.n <> cpu.v

let shift_value kind v amt carry_in =
  let v = Bits.mask32 v in
  match kind, amt with
  | _, 0 -> v, carry_in
  | LSL, a when a < 32 -> Bits.mask32 (v lsl a), Bits.bit v (32 - a)
  | LSL, _ -> 0, false
  | LSR, a when a < 32 -> v lsr a, Bits.bit v (a - 1)
  | LSR, _ -> 0, false
  | ASR, a when a < 32 ->
    Bits.mask32 (Bits.s32 v asr a), Bits.bit v (a - 1)
  | ASR, _ -> (if Bits.bit v 31 then 0xFFFFFFFF else 0), Bits.bit v 31
  | ROR, a ->
    let r = Bits.ror32 v (a land 31) in
    r, Bits.bit r 31

(** Result of executing one instruction: did it write the PC? *)
type outcome = Next | Branched

(** [step cpu env ~addr inst] executes [inst] located at [addr]. Returns
    {!Branched} iff the instruction wrote PC (the caller otherwise
    advances PC by 4). All register/flag effects are applied to [cpu]. *)
let step cpu env ~addr ({ cond; op } as inst) : outcome =
  if not (cond_holds cpu cond) then Next
  else begin
    let rd_pc = ref false in
    let rget r = if r = pc then Bits.mask32 (addr + 8) else cpu.r.(r) in
    let rset r v =
      if r = pc then begin
        cpu.r.(pc) <- Bits.mask32 v land lnot 1;
        rd_pc := true
      end
      else cpu.r.(r) <- Bits.mask32 v
    in
    (match op with
    | Dp (o, s, rd, rn, op2) ->
      let op2v, shc =
        match op2 with
        | Imm v -> Bits.mask32 v, cpu.c
        | Reg r -> rget r, cpu.c
        | Sreg (r, k, a) -> shift_value k (rget r) a cpu.c
        | Sregreg (r, k, rs) -> shift_value k (rget r) (rget rs land 0xFF) cpu.c
      in
      let rnv = rget rn in
      let logical res =
        if s then begin
          cpu.n <- Bits.bit res 31; cpu.z <- res = 0; cpu.c <- shc
        end;
        res
      in
      (* TST/TEQ (like CMP/CMN) always set flags; they have no S bit *)
      let logical_always res =
        cpu.n <- Bits.bit res 31;
        cpu.z <- res = 0;
        cpu.c <- shc;
        res
      in
      let arith ~sub ?(rev = false) ~carry () =
        let a, b = if rev then op2v, rnv else rnv, op2v in
        let b' = if sub then Bits.mask32 (lnot b) else b in
        let cin = Bool.to_int carry in
        let full = a + b' + cin in
        let res = Bits.mask32 full in
        if s then begin
          cpu.n <- Bits.bit res 31;
          cpu.z <- res = 0;
          cpu.c <- full > 0xFFFFFFFF;
          let sa = Bits.bit a 31 and sb = Bits.bit b' 31 and sr = Bits.bit res 31 in
          cpu.v <- sa = sb && sa <> sr
        end;
        res
      in
      (match o with
      | MOV -> rset rd (logical op2v)
      | MVN -> rset rd (logical (Bits.mask32 (lnot op2v)))
      | AND -> rset rd (logical (rnv land op2v))
      | ORR -> rset rd (logical (rnv lor op2v))
      | EOR -> rset rd (logical (rnv lxor op2v))
      | BIC -> rset rd (logical (rnv land lnot op2v))
      | TST -> ignore (logical_always (rnv land op2v))
      | TEQ -> ignore (logical_always (rnv lxor op2v))
      | ADD -> rset rd (arith ~sub:false ~carry:false ())
      | ADC -> rset rd (arith ~sub:false ~carry:cpu.c ())
      | SUB -> rset rd (arith ~sub:true ~carry:true ())
      | SBC -> rset rd (arith ~sub:true ~carry:cpu.c ())
      | RSB -> rset rd (arith ~sub:true ~rev:true ~carry:true ())
      | RSC -> rset rd (arith ~sub:true ~rev:true ~carry:cpu.c ())
      | CMP ->
        (* CMP/CMN always set flags regardless of the s bit *)
        let full = rnv + Bits.mask32 (lnot op2v) + 1 in
        let res = Bits.mask32 full in
        cpu.n <- Bits.bit res 31;
        cpu.z <- res = 0;
        cpu.c <- full > 0xFFFFFFFF;
        let sb = Bits.bit (Bits.mask32 (lnot op2v)) 31 in
        cpu.v <- Bits.bit rnv 31 = sb && Bits.bit rnv 31 <> Bits.bit res 31
      | CMN ->
        let full = rnv + op2v in
        let res = Bits.mask32 full in
        cpu.n <- Bits.bit res 31;
        cpu.z <- res = 0;
        cpu.c <- full > 0xFFFFFFFF;
        cpu.v <- Bits.bit rnv 31 = Bits.bit op2v 31
                 && Bits.bit rnv 31 <> Bits.bit res 31)
    | Movw (rd, i) -> rset rd i
    | Movt (rd, i) -> rset rd ((rget rd land 0xFFFF) lor (i lsl 16))
    | Mul (s, rd, rn, rm) ->
      let res = Bits.mask32 (rget rn * rget rm) in
      if s then begin cpu.n <- Bits.bit res 31; cpu.z <- res = 0 end;
      rset rd res
    | Mla (rd, rn, rm, ra) -> rset rd (rget rn * rget rm + rget ra)
    | Udiv (rd, rn, rm) ->
      let d = rget rm in
      rset rd (if d = 0 then 0 else rget rn / d)
    | Mem { ld; size; rt; rn; off; idx } ->
      let offv =
        match off with
        | Oimm i -> i
        | Oreg (rm, k, a) -> fst (shift_value k (rget rm) a cpu.c)
      in
      let base = rget rn in
      let addr_eff =
        match idx with
        | Offset | Pre -> Bits.mask32 (base + offv)
        | Post -> base
      in
      let nb = bytes_of_mem_size size in
      if ld then begin
        let v = env.load addr_eff nb in
        (* writeback first so a loaded rt = rn wins *)
        (match idx with
        | Pre -> rset rn (base + offv)
        | Post -> rset rn (base + offv)
        | Offset -> ());
        rset rt v
      end
      else begin
        let vmask = (1 lsl (nb * 8)) - 1 in
        env.store addr_eff nb (rget rt land vmask);
        match idx with
        | Pre | Post -> rset rn (base + offv)
        | Offset -> ()
      end
    | Ldm (rn, wb, regs) ->
      let base = rget rn in
      let nregs = List.length regs in
      let values =
        List.mapi (fun i r -> r, env.load (Bits.mask32 (base + (4 * i))) 4) regs
      in
      if wb then rset rn (base + (4 * nregs));
      List.iter (fun (r, v) -> rset r v) values
    | Stm (rn, wb, regs) ->
      let base = rget rn in
      let n = List.length regs in
      let start = Bits.mask32 (base - (4 * n)) in
      List.iteri (fun i r -> env.store (Bits.mask32 (start + (4 * i))) 4 (rget r)) regs;
      if wb then rset rn start
    | B off -> rset pc (addr + off)
    | Bl off ->
      rset lr (addr + 4);
      rset pc (addr + off)
    | Bx r -> rset pc (rget r)
    | Blx_r r ->
      let target = rget r in
      rset lr (addr + 4);
      rset pc target
    | Clz (rd, rm) -> rset rd (Bits.clz32 (rget rm))
    | Sxt (sz, rd, rm) ->
      let v = rget rm in
      rset rd
        (match sz with
        | Byte -> Bits.mask32 (Bits.sext (v land 0xFF) 8)
        | Half -> Bits.mask32 (Bits.sext (v land 0xFFFF) 16)
        | Word -> v)
    | Uxt (sz, rd, rm) ->
      let v = rget rm in
      rset rd
        (match sz with Byte -> v land 0xFF | Half -> v land 0xFFFF | Word -> v)
    | Rev (rd, rm) ->
      let v = rget rm in
      rset rd
        (((v land 0xFF) lsl 24) lor ((v land 0xFF00) lsl 8)
        lor ((v lsr 8) land 0xFF00) lor ((v lsr 24) land 0xFF))
    | Mrs rd -> rset rd (flags_word cpu)
    | Msr rs -> set_flags_word cpu (rget rs)
    | Svc n -> env.svc cpu n
    | Wfi -> env.wfi cpu
    | Cps en -> cpu.irq_on <- en
    | Irq_ret -> env.irq_ret cpu; rd_pc := true
    | Swp (rd, rm, rn) ->
      let a = rget rn in
      let old = env.load a 4 in
      env.store a 4 (rget rm);
      rset rd old
    | Nop -> ()
    | Udf _ -> env.undef cpu inst);
    if !rd_pc then Branched else Next
  end
