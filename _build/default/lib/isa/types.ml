(** Shared instruction AST for the two sibling ISAs.

    The guest ("V7A", modelled on ARMv7-A A32) and the host ("V7M",
    modelled on ARMv7-M Thumb-2) implement {e the same instruction
    semantics in different encodings with different restrictions} — exactly
    the ISA-similarity property the transkernel exploits (§2.2, §5 of the
    paper). Both ISAs therefore share this AST; what differs is which
    shapes each ISA can {e encode} ({!V7a} vs {!V7m}) and hence which guest
    instructions translate by identity and which need amendment
    instructions.

    Registers 0..12 are general purpose; 13 = SP, 14 = LR, 15 = PC. Both
    ISAs use PC/LR/SP the same way and share NZCV condition flags — the
    passthrough properties of §5.2/§5.3. *)

type reg = int

let sp = 13
let lr = 14
let pc = 15

(** Condition codes, identical semantics in both ISAs. *)
type cond =
  | EQ | NE | CS | CC | MI | PL | VS | VC | HI | LS | GE | LT | GT | LE | AL

let cond_of_int = function
  | 0 -> EQ | 1 -> NE | 2 -> CS | 3 -> CC | 4 -> MI | 5 -> PL | 6 -> VS
  | 7 -> VC | 8 -> HI | 9 -> LS | 10 -> GE | 11 -> LT | 12 -> GT | 13 -> LE
  | 14 -> AL
  | n -> invalid_arg (Printf.sprintf "cond_of_int %d" n)

let int_of_cond = function
  | EQ -> 0 | NE -> 1 | CS -> 2 | CC -> 3 | MI -> 4 | PL -> 5 | VS -> 6
  | VC -> 7 | HI -> 8 | LS -> 9 | GE -> 10 | LT -> 11 | GT -> 12 | LE -> 13
  | AL -> 14

(** [negate_cond c] is the inverse condition (EQ <-> NE, ...). *)
let negate_cond = function
  | EQ -> NE | NE -> EQ | CS -> CC | CC -> CS | MI -> PL | PL -> MI
  | VS -> VC | VC -> VS | HI -> LS | LS -> HI | GE -> LT | LT -> GE
  | GT -> LE | LE -> GT | AL -> AL

type shift_kind = LSL | LSR | ASR | ROR

let shift_kind_of_int = function
  | 0 -> LSL | 1 -> LSR | 2 -> ASR | 3 -> ROR
  | n -> invalid_arg (Printf.sprintf "shift_kind_of_int %d" n)

let int_of_shift_kind = function LSL -> 0 | LSR -> 1 | ASR -> 2 | ROR -> 3

(** Second operand of data-processing instructions. [Simm] is an already
    decoded 32-bit constant (encodability differs per ISA); [Sreg] shifts
    by an immediate; [Sregreg] shifts by a register — a shape V7M cannot
    express inside a data-processing instruction except as a bare move
    (the "richer shift modes" translation category). *)
type operand2 =
  | Imm of int
  | Reg of reg
  | Sreg of reg * shift_kind * int
  | Sregreg of reg * shift_kind * reg

type dp_op =
  | MOV | MVN | ADD | ADC | SUB | SBC | RSB | RSC
  | AND | ORR | EOR | BIC | CMP | CMN | TST | TEQ

let dp_op_of_int = function
  | 0 -> MOV | 1 -> MVN | 2 -> ADD | 3 -> ADC | 4 -> SUB | 5 -> SBC
  | 6 -> RSB | 7 -> RSC | 8 -> AND | 9 -> ORR | 10 -> EOR | 11 -> BIC
  | 12 -> CMP | 13 -> CMN | 14 -> TST | 15 -> TEQ
  | n -> invalid_arg (Printf.sprintf "dp_op_of_int %d" n)

let int_of_dp_op = function
  | MOV -> 0 | MVN -> 1 | ADD -> 2 | ADC -> 3 | SUB -> 4 | SBC -> 5
  | RSB -> 6 | RSC -> 7 | AND -> 8 | ORR -> 9 | EOR -> 10 | BIC -> 11
  | CMP -> 12 | CMN -> 13 | TST -> 14 | TEQ -> 15

type mem_size = Word | Byte | Half

let mem_size_of_int = function
  | 0 -> Word | 1 -> Byte | 2 -> Half
  | n -> invalid_arg (Printf.sprintf "mem_size_of_int %d" n)

let int_of_mem_size = function Word -> 0 | Byte -> 1 | Half -> 2
let bytes_of_mem_size = function Word -> 4 | Byte -> 1 | Half -> 2

(** Addressing mode: plain offset, pre-indexed with writeback, or
    post-indexed. Writeback forms with register offsets are the "side
    effect" translation category — V7M has no counterpart. *)
type index = Offset | Pre | Post

type mem_off =
  | Oimm of int (* signed byte offset *)
  | Oreg of reg * shift_kind * int (* register offset, shifted by imm *)

type op =
  | Dp of dp_op * bool * reg * reg * operand2
      (** [Dp (op, s, rd, rn, op2)]; [rn] ignored for MOV/MVN, [rd]
          ignored for CMP/CMN/TST/TEQ. [s] = set flags. *)
  | Movw of reg * int  (** rd := imm16 (zero-extended) *)
  | Movt of reg * int  (** rd(31:16) := imm16 *)
  | Mul of bool * reg * reg * reg  (** rd := rn * rm *)
  | Mla of reg * reg * reg * reg  (** rd := rn * rm + ra *)
  | Udiv of reg * reg * reg
  | Mem of { ld : bool; size : mem_size; rt : reg; rn : reg;
             off : mem_off; idx : index }
  | Ldm of reg * bool * reg list
      (** load-multiple, increment-after: pop when rn = SP + writeback *)
  | Stm of reg * bool * reg list
      (** store-multiple, decrement-before: push when rn = SP + writeback *)
  | B of int  (** pc-relative branch, signed byte offset from this inst *)
  | Bl of int  (** call: lr := addr of next inst *)
  | Bx of reg  (** branch to register (function return via [Bx lr]) *)
  | Blx_r of reg  (** indirect call through register *)
  | Clz of reg * reg
  | Sxt of mem_size * reg * reg  (** sign-extend byte/half *)
  | Uxt of mem_size * reg * reg  (** zero-extend byte/half *)
  | Rev of reg * reg  (** byte-reverse *)
  | Mrs of reg  (** rd := NZCV flags (packed in bits 31:28) *)
  | Msr of reg  (** NZCV flags := rd(31:28) *)
  | Svc of int  (** supervisor call: DBT engine trap on the host *)
  | Wfi  (** wait for interrupt: core idles until an event *)
  | Cps of bool  (** interrupt enable (true) / disable (false) *)
  | Irq_ret  (** simulation stand-in for exception return *)
  | Swp of reg * reg * reg  (** [Swp (rd, rm, rn)]: guest-only atomic swap;
                                no V7M counterpart *)
  | Nop
  | Udf of int  (** permanently undefined: triggers a fault *)

(** A conditional instruction. V7M conditionality stands in for Thumb-2 IT
    blocks so that identity translation of conditional guest code stays
    1:1 (see DESIGN.md §4.2). *)
type inst = { cond : cond; op : op }

let at ?(cond = AL) op = { cond; op }

(* -------------------------------------------------------------------- *)
(* Pretty-printing (assembly-like, used by tests, traces and Table 4)    *)
(* -------------------------------------------------------------------- *)

let reg_name r =
  match r with
  | 13 -> "sp" | 14 -> "lr" | 15 -> "pc"
  | _ -> Printf.sprintf "r%d" r

let cond_suffix = function
  | AL -> ""
  | EQ -> "eq" | NE -> "ne" | CS -> "cs" | CC -> "cc" | MI -> "mi"
  | PL -> "pl" | VS -> "vs" | VC -> "vc" | HI -> "hi" | LS -> "ls"
  | GE -> "ge" | LT -> "lt" | GT -> "gt" | LE -> "le"

let shift_name = function LSL -> "lsl" | LSR -> "lsr" | ASR -> "asr" | ROR -> "ror"

let dp_name = function
  | MOV -> "mov" | MVN -> "mvn" | ADD -> "add" | ADC -> "adc" | SUB -> "sub"
  | SBC -> "sbc" | RSB -> "rsb" | RSC -> "rsc" | AND -> "and" | ORR -> "orr"
  | EOR -> "eor" | BIC -> "bic" | CMP -> "cmp" | CMN -> "cmn" | TST -> "tst"
  | TEQ -> "teq"

let string_of_operand2 = function
  | Imm i -> Printf.sprintf "#0x%x" i
  | Reg r -> reg_name r
  | Sreg (r, k, a) -> Printf.sprintf "%s, %s #%d" (reg_name r) (shift_name k) a
  | Sregreg (r, k, rs) ->
    Printf.sprintf "%s, %s %s" (reg_name r) (shift_name k) (reg_name rs)

let string_of_off = function
  | Oimm 0 -> ""
  | Oimm i -> Printf.sprintf ", #%d" i
  | Oreg (r, LSL, 0) -> Printf.sprintf ", %s" (reg_name r)
  | Oreg (r, k, a) -> Printf.sprintf ", %s, %s #%d" (reg_name r) (shift_name k) a

let string_of_reglist regs =
  "{" ^ String.concat ", " (List.map reg_name regs) ^ "}"

(** [to_string ?wide i] renders [i] in assembly syntax. [wide] appends the
    ".w" qualifier V7M listings use (matching Table 4 of the paper). *)
let to_string ?(wide = false) { cond; op } =
  let c = cond_suffix cond in
  let w = if wide then ".w" else "" in
  let m name = name ^ (if name = "" then "" else c) ^ w in
  match op with
  | Dp (o, s, rd, rn, op2) ->
    let sfx = if s then "s" else "" in
    let base = dp_name o ^ sfx ^ c ^ w in
    (match o with
    | MOV | MVN -> Printf.sprintf "%s %s, %s" base (reg_name rd) (string_of_operand2 op2)
    | CMP | CMN | TST | TEQ ->
      Printf.sprintf "%s %s, %s" base (reg_name rn) (string_of_operand2 op2)
    | ADD | ADC | SUB | SBC | RSB | RSC | AND | ORR | EOR | BIC ->
      Printf.sprintf "%s %s, %s, %s" base (reg_name rd) (reg_name rn)
        (string_of_operand2 op2))
  | Movw (rd, i) -> Printf.sprintf "%s %s, #0x%x" (m "movw") (reg_name rd) i
  | Movt (rd, i) -> Printf.sprintf "%s %s, #0x%x" (m "movt") (reg_name rd) i
  | Mul (s, rd, rn, rm) ->
    Printf.sprintf "mul%s%s%s %s, %s, %s" (if s then "s" else "") c w
      (reg_name rd) (reg_name rn) (reg_name rm)
  | Mla (rd, rn, rm, ra) ->
    Printf.sprintf "%s %s, %s, %s, %s" (m "mla") (reg_name rd) (reg_name rn)
      (reg_name rm) (reg_name ra)
  | Udiv (rd, rn, rm) ->
    Printf.sprintf "%s %s, %s, %s" (m "udiv") (reg_name rd) (reg_name rn)
      (reg_name rm)
  | Mem { ld; size; rt; rn; off; idx } ->
    let opn = (if ld then "ldr" else "str")
              ^ (match size with Word -> "" | Byte -> "b" | Half -> "h")
              ^ c ^ w in
    (match idx with
    | Offset -> Printf.sprintf "%s %s, [%s%s]" opn (reg_name rt) (reg_name rn)
                  (string_of_off off)
    | Pre -> Printf.sprintf "%s %s, [%s%s]!" opn (reg_name rt) (reg_name rn)
               (string_of_off off)
    | Post ->
      let suffix =
        match off with
        | Oimm i -> Printf.sprintf "#%d" i
        | Oreg (r, LSL, 0) -> reg_name r
        | Oreg (r, k, a) ->
          Printf.sprintf "%s, %s #%d" (reg_name r) (shift_name k) a
      in
      Printf.sprintf "%s %s, [%s], %s" opn (reg_name rt) (reg_name rn) suffix)
  | Ldm (rn, wb, regs) ->
    if rn = sp && wb then Printf.sprintf "%s %s" (m "pop") (string_of_reglist regs)
    else
      Printf.sprintf "%s %s%s, %s" (m "ldm") (reg_name rn) (if wb then "!" else "")
        (string_of_reglist regs)
  | Stm (rn, wb, regs) ->
    if rn = sp && wb then Printf.sprintf "%s %s" (m "push") (string_of_reglist regs)
    else
      Printf.sprintf "%s %s%s, %s" (m "stmdb") (reg_name rn)
        (if wb then "!" else "") (string_of_reglist regs)
  | B off -> Printf.sprintf "b%s%s .%+d" c w off
  | Bl off -> Printf.sprintf "bl%s .%+d" c off
  | Bx r -> Printf.sprintf "bx%s %s" c (reg_name r)
  | Blx_r r -> Printf.sprintf "blx%s %s" c (reg_name r)
  | Clz (rd, rm) -> Printf.sprintf "%s %s, %s" (m "clz") (reg_name rd) (reg_name rm)
  | Sxt (sz, rd, rm) ->
    Printf.sprintf "%s %s, %s"
      (m (match sz with Byte -> "sxtb" | Half -> "sxth" | Word -> "sxtw"))
      (reg_name rd) (reg_name rm)
  | Uxt (sz, rd, rm) ->
    Printf.sprintf "%s %s, %s"
      (m (match sz with Byte -> "uxtb" | Half -> "uxth" | Word -> "uxtw"))
      (reg_name rd) (reg_name rm)
  | Rev (rd, rm) -> Printf.sprintf "%s %s, %s" (m "rev") (reg_name rd) (reg_name rm)
  | Mrs rd -> Printf.sprintf "%s %s, apsr" (m "mrs") (reg_name rd)
  | Msr rd -> Printf.sprintf "%s apsr, %s" (m "msr") (reg_name rd)
  | Svc n -> Printf.sprintf "svc%s #%d" c n
  | Wfi -> m "wfi"
  | Cps true -> "cpsie i"
  | Cps false -> "cpsid i"
  | Irq_ret -> m "irqret"
  | Swp (rd, rm, rn) ->
    Printf.sprintf "%s %s, %s, [%s]" (m "swp") (reg_name rd) (reg_name rm)
      (reg_name rn)
  | Nop -> m "nop"
  | Udf n -> Printf.sprintf "udf #%d" n

(** Registers read by an instruction (approximate; used by the translator
    for scratch-register pressure checks and by tests). *)
let regs_read { op; _ } =
  let of_op2 = function
    | Imm _ -> []
    | Reg r -> [ r ]
    | Sreg (r, _, _) -> [ r ]
    | Sregreg (r, _, rs) -> [ r; rs ]
  in
  let of_off = function Oimm _ -> [] | Oreg (r, _, _) -> [ r ] in
  match op with
  | Dp ((MOV | MVN), _, _, _, op2) -> of_op2 op2
  | Dp (_, _, _, rn, op2) -> rn :: of_op2 op2
  | Movw _ -> []
  | Movt (rd, _) -> [ rd ]
  | Mul (_, _, rn, rm) -> [ rn; rm ]
  | Mla (_, rn, rm, ra) -> [ rn; rm; ra ]
  | Udiv (_, rn, rm) -> [ rn; rm ]
  | Mem { ld; rt; rn; off; _ } ->
    (rn :: of_off off) @ (if ld then [] else [ rt ])
  | Ldm (rn, _, _) -> [ rn ]
  | Stm (rn, _, regs) -> rn :: regs
  | B _ | Bl _ -> []
  | Bx r | Blx_r r -> [ r ]
  | Clz (_, rm) | Sxt (_, _, rm) | Uxt (_, _, rm) | Rev (_, rm) -> [ rm ]
  | Mrs _ -> []
  | Msr r -> [ r ]
  | Svc _ | Wfi | Cps _ | Irq_ret | Nop | Udf _ -> []
  | Swp (_, rm, rn) -> [ rm; rn ]

(** Registers written by an instruction. *)
let regs_written { op; _ } =
  match op with
  | Dp ((CMP | CMN | TST | TEQ), _, _, _, _) -> []
  | Dp (_, _, rd, _, _) -> [ rd ]
  | Movw (rd, _) | Movt (rd, _) -> [ rd ]
  | Mul (_, rd, _, _) | Mla (rd, _, _, _) | Udiv (rd, _, _) -> [ rd ]
  | Mem { ld; rt; rn; idx; _ } ->
    (if ld then [ rt ] else []) @ (if idx <> Offset then [ rn ] else [])
  | Ldm (rn, wb, regs) -> regs @ (if wb then [ rn ] else [])
  | Stm (rn, wb, _) -> if wb then [ rn ] else []
  | B _ -> []
  | Bl _ -> [ lr ]
  | Bx _ -> []
  | Blx_r _ -> [ lr ]
  | Clz (rd, _) | Sxt (_, rd, _) | Uxt (_, rd, _) | Rev (rd, _) -> [ rd ]
  | Mrs rd -> [ rd ]
  | Msr _ -> []
  | Svc _ | Wfi | Cps _ | Irq_ret | Nop | Udf _ -> []
  | Swp (rd, _, _) -> [ rd ]
