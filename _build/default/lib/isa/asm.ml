(** Assembler and linker for guest (V7A) kernel images.

    {!Tk_kcc} (and a little hand-written assembly in the kernel) produces
    {!item} lists; [link] lays out code and data, resolves labels, encodes
    every instruction with {!V7a.encode} and yields an {!image}: encoded
    words plus a symbol table. The image is loaded verbatim into simulated
    DRAM — the DBT engine later reads those very words back.

    Labels are global; a fragment's name is implicitly a label at its
    first instruction. *)

open Types

type item =
  | Label of string  (** local label *)
  | Ins of inst  (** fully resolved instruction *)
  | Bcc of cond * string  (** conditional branch to label *)
  | Jmp of string  (** unconditional branch to label *)
  | Call of string  (** BL to label *)
  | Adr of reg * string  (** rd := address of label (movw+movt pair) *)
  | Word of int  (** literal data word in the code stream *)

(** A named code fragment (one function). *)
type fragment = { name : string; items : item list }

(** A named data object: [words] initialize the front, the rest of [size]
    bytes is zero. *)
type datum = { dname : string; size : int; words : int list }

let data ?(words = []) dname size = { dname; size; words }

(** Linked image: encoded guest words, base address, symbol table and the
    reverse map used for traces and fallback diagnostics. *)
type image = {
  base : int;
  code_size : int;  (** bytes of code (before the data section) *)
  words : int array;  (** code then data, word-indexed from [base] *)
  symbols : (string, int) Hashtbl.t;
  sym_of_addr : (int, string) Hashtbl.t;  (** function entry points *)
  frag_sizes : (string * int) list;  (** per-fragment code bytes *)
}

exception Link_error of string

let link_err fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

let item_size = function
  | Label _ -> 0
  | Ins _ | Bcc _ | Jmp _ | Call _ | Word _ -> 4
  | Adr _ -> 8

(** [fragment_size f] is the code size of [f] in bytes. *)
let fragment_size f =
  List.fold_left (fun acc i -> acc + item_size i) 0 f.items

(** [symbol image name] is the address of [name].
    @raise Link_error if undefined. *)
let symbol image name =
  match Hashtbl.find_opt image.symbols name with
  | Some a -> a
  | None -> link_err "undefined symbol %s" name

(** [symbol_opt image name] is the address of [name], if defined. *)
let symbol_opt image name = Hashtbl.find_opt image.symbols name

(** [link ~base fragments data] lays out [fragments] starting at [base]
    (word-aligned), followed by the data section, resolves all label
    references and encodes to V7A.
    @raise Link_error on duplicate/undefined symbols or encoding failure *)
let link ~base fragments (data : datum list) : image =
  if base land 3 <> 0 then link_err "base 0x%x not word aligned" base;
  let symbols = Hashtbl.create 256 in
  let sym_of_addr = Hashtbl.create 256 in
  let define name addr =
    if Hashtbl.mem symbols name then link_err "duplicate symbol %s" name;
    Hashtbl.add symbols name addr
  in
  (* pass 1: addresses *)
  let cursor = ref base in
  let frag_sizes = ref [] in
  List.iter
    (fun f ->
      define f.name !cursor;
      Hashtbl.replace sym_of_addr !cursor f.name;
      let start = !cursor in
      List.iter
        (fun it ->
          (match it with
          | Label l -> define l !cursor
          | _ -> ());
          cursor := !cursor + item_size it)
        f.items;
      frag_sizes := (f.name, !cursor - start) :: !frag_sizes)
    fragments;
  let code_size = !cursor - base in
  (* data section, 8-byte aligned *)
  cursor := (!cursor + 7) land lnot 7;
  List.iter
    (fun d ->
      define d.dname !cursor;
      cursor := !cursor + ((d.size + 3) land lnot 3))
    data;
  let total = !cursor - base in
  let words = Array.make (total / 4) 0 in
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> link_err "undefined symbol %s" name
  in
  let emit addr inst =
    match V7a.encode inst with
    | Ok w -> words.((addr - base) / 4) <- w
    | Error e ->
      link_err "cannot encode `%s' at 0x%x: %s" (Types.to_string inst) addr e
  in
  (* pass 2: emit *)
  let cursor = ref base in
  List.iter
    (fun f ->
      List.iter
        (fun it ->
          let a = !cursor in
          (match it with
          | Label _ -> ()
          | Ins i -> emit a i
          | Bcc (c, l) -> emit a { cond = c; op = B (resolve l - a) }
          | Jmp l -> emit a { cond = AL; op = B (resolve l - a) }
          | Call l -> emit a { cond = AL; op = Bl (resolve l - a) }
          | Adr (rd, l) ->
            let v = resolve l in
            emit a (at (Movw (rd, v land 0xFFFF)));
            emit (a + 4) (at (Movt (rd, (v lsr 16) land 0xFFFF)))
          | Word w -> words.((a - base) / 4) <- Bits.mask32 w);
          cursor := !cursor + item_size it)
        f.items)
    fragments;
  (* data *)
  let cursor = ref (base + ((code_size + 7) land lnot 7)) in
  List.iter
    (fun (d : datum) ->
      List.iteri
        (fun i w -> words.((!cursor - base) / 4 + i) <- Bits.mask32 w)
        d.words;
      cursor := !cursor + ((d.size + 3) land lnot 3))
    data;
  { base; code_size; words; symbols; sym_of_addr;
    frag_sizes = List.rev !frag_sizes }

(** [nearest_symbol image addr] names the fragment containing [addr] (for
    traces): ["name+0xoff"]. *)
let nearest_symbol image addr =
  let best = ref None in
  Hashtbl.iter
    (fun a name ->
      if a <= addr then
        match !best with
        | Some (ba, _) when ba >= a -> ()
        | _ -> best := Some (a, name))
    image.sym_of_addr;
  match !best with
  | Some (a, name) when addr = a -> name
  | Some (a, name) -> Printf.sprintf "%s+0x%x" name (addr - a)
  | None -> Printf.sprintf "0x%x" addr
