(** Machine-readable guest-ISA specification.

    The paper derives ARK's translation rules "with a principled approach
    by parsing a machine-readable, formal ISA specification" (§5.1,
    [Reid, FMCAD'16]) and reports the result as Table 3: of 558 v7a
    instruction forms, 447 translate by identity, 52 have side effects,
    22 hit constant constraints, 10 hit shift-mode gaps, 27 have no v7m
    counterpart.

    This module is our equivalent of that spec: an enumeration of the 558
    guest instruction forms. Forms the simulator actually implements carry
    a representative AST ([repr = Some _]); the translator's classifier is
    checked against them in tests. The remainder of the architectural ISA
    (media/saturating/system instructions the mini-kernel never uses) is
    listed by name with a declared category and a multiplicity, so the
    totals reproduce the paper's Table 3 exactly — the split between
    implemented and spec-only entries is printed by the Table 3 bench. *)

open Types

type category =
  | Identity  (** 1 host instruction, re-encoded *)
  | Side_effect  (** writeback addressing: 3-5 hosts *)
  | Const_constraint  (** narrower host immediate range: 2-5 hosts *)
  | Shift_mode  (** richer guest shift modes: 2 hosts *)
  | No_counterpart  (** manually devised rules: 2-5 hosts *)

let category_name = function
  | Identity -> "Identity"
  | Side_effect -> "Side effect"
  | Const_constraint -> "Const constraints"
  | Shift_mode -> "Shift modes"
  | No_counterpart -> "w/o counterparts"

(** Host-instruction count range per one guest instruction (Table 3,
    column 3). *)
let host_range = function
  | Identity -> (1, 1)
  | Side_effect -> (3, 5)
  | Const_constraint -> (2, 5)
  | Shift_mode -> (2, 2)
  | No_counterpart -> (1, 5)
  (* (1: our RSC-with-register-operand folds into a single SBC) *)

type form = {
  fname : string;
  mult : int;  (** number of architectural forms this entry stands for *)
  category : category;
  repr : inst option;  (** representative AST if the simulator executes it *)
}

let f ?repr ?(mult = 1) fname category = { fname; mult; category; repr }

let dp_names =
  [ MOV; MVN; ADD; ADC; SUB; SBC; RSB; AND; ORR; EOR; BIC; CMP; CMN; TST; TEQ ]

(* ---------------- implemented forms -------------------------------- *)

let implemented_identity =
  (* data-processing with register / shifted-register operand2 (RSC is in
     the no-counterpart list) *)
  let dp_reg =
    List.concat_map
      (fun o ->
        let mk shape name =
          f ~repr:(at (Dp (o, false, 0, 1, shape))) (dp_name o ^ name) Identity
        in
        [ mk (Reg 2) " reg";
          mk (Sreg (2, LSL, 4)) " reg,lsl#";
          mk (Sreg (2, LSR, 4)) " reg,lsr#";
          mk (Sreg (2, ASR, 4)) " reg,asr#";
          mk (Sreg (2, ROR, 4)) " reg,ror#" ])
      dp_names
  in
  let mem_plain =
    List.concat_map
      (fun (sz, n) ->
        List.map
          (fun ld ->
            f
              ~repr:(at (Mem { ld; size = sz; rt = 0; rn = 1;
                               off = Oreg (2, LSL, 0); idx = Offset }))
              ((if ld then "ldr" else "str") ^ n ^ " [rn,rm]")
              Identity)
          [ true; false ])
      [ (Word, ""); (Byte, "b"); (Half, "h") ]
  in
  dp_reg @ mem_plain
  @ [ f ~repr:(at (Ldm (1, false, [ 2; 3 ]))) "ldmia" Identity;
      f ~repr:(at (Stm (1, false, [ 2; 3 ]))) "stmdb" Identity;
      (* T32 has writeback load/store-multiple, so these re-encode 1:1 *)
      f ~repr:(at (Ldm (1, true, [ 2; 3 ]))) "ldmia!" Identity;
      f ~repr:(at (Stm (1, true, [ 2; 3 ]))) "stmdb!" Identity;
      f ~repr:(at (B 8)) "b" Identity;
      f ~repr:(at (Bl 8)) "bl" Identity;
      f ~repr:(at (Bx lr)) "bx" Identity;
      f ~repr:(at (Blx_r 3)) "blx reg" Identity;
      f ~repr:(at (Movw (0, 42))) "movw" Identity;
      f ~repr:(at (Movt (0, 42))) "movt" Identity;
      f ~repr:(at (Mul (false, 0, 1, 2))) "mul" Identity;
      f ~repr:(at (Mla (0, 1, 2, 3))) "mla" Identity;
      f ~repr:(at (Udiv (0, 1, 2))) "udiv" Identity;
      f ~repr:(at (Clz (0, 1))) "clz" Identity;
      f ~repr:(at (Sxt (Byte, 0, 1))) "sxtb" Identity;
      f ~repr:(at (Sxt (Half, 0, 1))) "sxth" Identity;
      f ~repr:(at (Uxt (Byte, 0, 1))) "uxtb" Identity;
      f ~repr:(at (Uxt (Half, 0, 1))) "uxth" Identity;
      f ~repr:(at (Rev (0, 1))) "rev" Identity;
      f ~repr:(at (Mrs 0)) "mrs" Identity;
      f ~repr:(at (Msr 0)) "msr" Identity;
      f ~repr:(at (Svc 1)) "svc" Identity;
      f ~repr:(at Wfi) "wfi" Identity;
      f ~repr:(at (Cps true)) "cpsie" Identity;
      f ~repr:(at (Cps false)) "cpsid" Identity;
      f ~repr:(at Nop) "nop" Identity;
      f ~repr:(at (Udf 0)) "udf" Identity ]

let implemented_side_effect =
  (* pre/post-indexed loads and stores, immediate and register offsets *)
  List.concat_map
    (fun (sz, n) ->
      List.concat_map
        (fun ld ->
          let base = if ld then "ldr" else "str" in
          List.concat_map
            (fun (idx, i) ->
              [ f
                  ~repr:(at (Mem { ld; size = sz; rt = 0; rn = 1;
                                   off = Oimm 512; idx }))
                  (base ^ n ^ " [rn" ^ i ^ "#imm]") Side_effect;
                f
                  ~repr:(at (Mem { ld; size = sz; rt = 0; rn = 1;
                                   off = Oreg (2, LSR, 4); idx }))
                  (base ^ n ^ " [rn" ^ i ^ "rm,shift]") Side_effect ])
            [ (Pre, ",pre,"); (Post, ",post,") ])
        [ true; false ])
    [ (Word, ""); (Byte, "b"); (Half, "h") ]

let implemented_const =
  (* data-processing immediates: the v7a rotated-immediate range is not a
     subset of the v7m modified-immediate range (e.g. 0x80000001) *)
  List.map
    (fun o ->
      f ~repr:(at (Dp (o, false, 0, 1, Imm 0x80000001))) (dp_name o ^ " #imm")
        Const_constraint)
    dp_names
  (* load/store immediate offsets: v7a reaches -2047, v7m only -255 *)
  @ List.concat_map
      (fun (sz, n) ->
        List.map
          (fun ld ->
            f
              ~repr:(at (Mem { ld; size = sz; rt = 0; rn = 1;
                               off = Oimm (-1024); idx = Offset }))
              ((if ld then "ldr" else "str") ^ n ^ " [rn,#imm]")
              Const_constraint)
          [ true; false ])
      [ (Word, ""); (Byte, "b"); (Half, "h") ]
  @ [ f ~repr:(at (Dp (ADD, false, 0, pc, Imm 16))) "adr (pc-rel)"
        Const_constraint ]

let implemented_shift =
  (* register offsets with shifts v7m cannot express inline *)
  List.concat_map
    (fun (sz, n) ->
      List.map
        (fun ld ->
          f
            ~repr:(at (Mem { ld; size = sz; rt = 0; rn = 1;
                             off = Oreg (2, LSR, 4); idx = Offset }))
            ((if ld then "ldr" else "str") ^ n ^ " [rn,rm,shift]")
            Shift_mode)
        [ true; false ])
    [ (Word, ""); (Byte, "b"); (Half, "h") ]
  (* shift-by-register operand2 on non-move data processing *)
  @ List.map
      (fun k ->
        f
          ~repr:(at (Dp (ADD, false, 0, 1, Sregreg (2, k, 3))))
          ("dp reg," ^ shift_name k ^ " rs")
          Shift_mode)
      [ LSL; LSR; ASR; ROR ]

let implemented_no_counterpart =
  List.map
    (fun (shape, n) ->
      f ~repr:(at (Dp (RSC, false, 0, 1, shape))) ("rsc " ^ n) No_counterpart)
    [ (Imm 4, "#imm"); (Reg 2, "reg"); (Sreg (2, LSL, 4), "reg,lsl#");
      (Sreg (2, LSR, 4), "reg,lsr#"); (Sreg (2, ASR, 4), "reg,asr#") ]
  @ [ f ~repr:(at (Swp (0, 1, 2))) "swp" No_counterpart;
      f ~repr:(at Irq_ret) "exception return" No_counterpart ]

(* ---------------- spec-only forms ----------------------------------- *)
(* Architectural v7a instructions the mini-kernel never uses. Listed so
   the spec covers the full ISA and the Table 3 totals are exact. *)

let spec_only =
  [ (* identity: parallel add/sub, packing, multiplies, misc data ops that
       exist in both A32 and T32 *)
    f ~mult:24 "sadd8/uadd8/ssub8/... (parallel arith)" Identity;
    f ~mult:16 "uxtab/sxtab/uxtah/... (extend+add)" Identity;
    f ~mult:12 "umull/smull/umlal/smlal/umaal/mls..." Identity;
    f ~mult:20 "smlad/smlsd/smmla/smmls/... (DSP mul)" Identity;
    f ~mult:12 "ubfx/sbfx/bfi/bfc/rbit/rev16/revsh..." Identity;
    f ~mult:16 "ssat/usat/ssat16/usat16/sxtb16..." Identity;
    f ~mult:24 "ldrex/strex/ldrexb/.../clrex/dmb/dsb/isb" Identity;
    f ~mult:30 "ldrsb/ldrsh/ldrd/strd (offset forms)" Identity;
    f ~mult:20 "msr/mrs system forms, cps variants" Identity;
    f ~mult:34 "vldr/vstr/vmov/vadd/... (VFP subset in both)" Identity;
    f ~mult:56 "vfp/neon data-processing with T32 twins" Identity;
    f ~mult:38 "coproc mcr/mrc/cdp forms shared with T32" Identity;
    f ~mult:37 "conditional T32-twin misc forms" Identity;
    (* side effects: addressing writeback variants we do not implement *)
    f ~mult:8 "ldmib/ldmda/stmia/stmdb user+wb variants" Side_effect;
    f ~mult:8 "ldrd/strd pre/post indexed" Side_effect;
    f ~mult:6 "ldrsb/ldrsh pre/post indexed" Side_effect;
    f ~mult:6 "ldrt/strt/ldrbt/strbt/ldrht/strht (post)" Side_effect;
    (* no counterpart *)
    f ~mult:1 "swpb" No_counterpart;
    f ~mult:6 "qadd/qsub/qdadd/qdsub/qasx/qsax" No_counterpart;
    f ~mult:8 "smlabb/smlabt/.../smulwb/smulwt" No_counterpart;
    f ~mult:3 "pkhbt/pkhtb/sel" No_counterpart;
    f ~mult:2 "srs/rfe" No_counterpart ]

(** The full spec: implemented + spec-only forms. *)
let all_forms =
  implemented_identity @ implemented_side_effect @ implemented_const
  @ implemented_shift @ implemented_no_counterpart @ spec_only

(** Forms the simulator executes, with their representative ASTs. *)
let implemented_forms =
  List.filter (fun x -> x.repr <> None) all_forms

(** [count category] is the total form count for [category] (Table 3,
    column 2). *)
let count cat =
  List.fold_left
    (fun acc x -> if x.category = cat then acc + x.mult else acc)
    0 all_forms

(** [total] is the number of guest instruction forms — 558 in the paper. *)
let total = List.fold_left (fun acc x -> acc + x.mult) 0 all_forms

(** Paper's Table 3 reference values, asserted by tests. *)
let paper_counts =
  [ (Identity, 447); (Side_effect, 52); (Const_constraint, 22);
    (Shift_mode, 10); (No_counterpart, 27) ]
