(** 32-bit arithmetic on OCaml [int]s.

    The whole simulator represents 32-bit machine words as native [int]s
    masked to the low 32 bits — far faster than boxed [int32] in the
    interpreter hot loops. This module is the single place where masking,
    sign handling, rotation and field packing live. *)

let mask32 x = x land 0xFFFFFFFF

(** [s32 x] reinterprets the low 32 bits of [x] as a signed value. *)
let s32 x =
  let x = mask32 x in
  if x land 0x80000000 <> 0 then x - 0x100000000 else x

(** [bit x i] is bit [i] of [x] as a bool. *)
let bit x i = (x lsr i) land 1 = 1

(** [ror32 x n] rotates the 32-bit value right by [n] (mod 32). *)
let ror32 x n =
  let n = n land 31 in
  if n = 0 then mask32 x else mask32 ((x lsr n) lor (x lsl (32 - n)))

(** [rol32 x n] rotates left. *)
let rol32 x n = ror32 x ((32 - n) land 31)

(** [sext v bits] sign-extends the low [bits] bits of [v]. *)
let sext v bits =
  let m = 1 lsl (bits - 1) in
  let v = v land ((1 lsl bits) - 1) in
  if v land m <> 0 then v - (1 lsl bits) else v

(** Field packing for instruction encodings: [put w pos len v] inserts the
    [len]-bit value [v] at bit [pos]; raises if [v] does not fit. *)
let put w pos len v =
  assert (v >= 0 && v < 1 lsl len);
  w lor (v lsl pos)

(** [get w pos len] extracts the [len]-bit field at [pos]. *)
let get w pos len = (w lsr pos) land ((1 lsl len) - 1)

(** [clz32 x] counts leading zeros of the 32-bit value (32 for 0). *)
let clz32 x =
  let x = mask32 x in
  if x = 0 then 32
  else
    let rec go n i = if bit x i then n else go (n + 1) (i - 1) in
    go 0 31

(** [highest_bit x] is the index of the most significant set bit, or -1. *)
let highest_bit x = 31 - clz32 x

(** [lowest_bit x] is the index of the least significant set bit, or -1. *)
let lowest_bit x =
  if x = 0 then -1
  else
    let rec go i = if bit x i then i else go (i + 1) in
    go 0
