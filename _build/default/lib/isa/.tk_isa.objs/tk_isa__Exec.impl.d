lib/isa/exec.ml: Array Bits Bool List Types
