lib/isa/asm.ml: Array Bits Hashtbl List Printf Types V7a
