lib/isa/v7m.ml: Bits Bool Fun List Printf Result Types
