lib/isa/bits.ml:
