lib/isa/types.ml: List Printf String
