lib/isa/v7a.ml: Bits Bool Fun List Printf Result Types
