lib/isa/spec.ml: List Types
