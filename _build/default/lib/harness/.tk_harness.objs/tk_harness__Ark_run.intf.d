lib/harness/ark_run.mli: Core Native_run Tk_dbt Tk_drivers Tk_kernel Tk_machine Transkernel
