lib/harness/native_run.mli: Core Interp Tk_drivers Tk_kernel Tk_machine
