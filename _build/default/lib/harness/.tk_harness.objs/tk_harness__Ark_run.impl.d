lib/harness/ark_run.ml: Array Asm Clock Core Exec Hyper Image Interp Kabi Layout List Mem Native_run Platform Soc Timer Tk_dbt Tk_drivers Tk_isa Tk_kernel Tk_machine Transkernel
