lib/harness/experiments.ml: Ark_run Core Device List Mem Native_run Option Platform Soc Tk_dbt Tk_drivers Tk_energy Tk_kernel Tk_machine Transkernel
