lib/harness/native_run.ml: Array Asm Char Clock Core Exec Interp List Mem Platform Printf Soc Timer Tk_drivers Tk_isa Tk_kernel Tk_machine Types
