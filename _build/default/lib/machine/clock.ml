(** Simulated platform time and event queue.

    One global nanosecond clock per simulated platform. The currently
    executing core advances it as it retires instructions; device-side
    activity (power-state transitions completing, DMA finishing, timer
    expiry) is scheduled as absolute-time events. When the core idles
    (WFI), time fast-forwards to the next event — that is exactly how the
    busy/idle split of Figure 5a arises. *)

type event = { at : int; seq : int; fn : unit -> unit }

type t = {
  mutable now : int;  (** ns since simulation start *)
  mutable events : event list;  (** sorted by (at, seq) *)
  mutable seq : int;
}

let create () = { now = 0; events = []; seq = 0 }

(** [at t ns fn] schedules [fn] to run at absolute time [ns] (clamped to
    now). Returns a cancel function. *)
let at t ns fn =
  let ev = { at = max ns t.now; seq = t.seq; fn } in
  t.seq <- t.seq + 1;
  let rec insert = function
    | [] -> [ ev ]
    | e :: rest when (e.at, e.seq) <= (ev.at, ev.seq) -> e :: insert rest
    | rest -> ev :: rest
  in
  t.events <- insert t.events;
  let cancelled = ref false in
  fun () ->
    if not !cancelled then begin
      cancelled := true;
      t.events <- List.filter (fun (e : event) -> e.seq <> ev.seq) t.events
    end

(** [after t dns fn] schedules [fn] in [dns] ns from now. *)
let after t dns fn = at t (t.now + dns) fn

(** [after_ t dns fn] — like {!after}, discarding the cancel handle. *)
let after_ t dns fn =
  let _cancel : unit -> unit = after t dns fn in
  ()

(** [run_due t] fires every event with [at <= now], in order. *)
let run_due t =
  let rec go () =
    match t.events with
    | e :: rest when e.at <= t.now ->
      t.events <- rest;
      e.fn ();
      go ()
    | _ -> ()
  in
  go ()

(** [advance t dns] moves time forward by [dns] ns and fires due events. *)
let advance t dns =
  t.now <- t.now + dns;
  run_due t

(** [next_event_time t] is the time of the earliest pending event. *)
let next_event_time t =
  match t.events with [] -> None | e :: _ -> Some e.at

(** [skip_to_next_event t] fast-forwards to the next event and fires it;
    returns the ns skipped. Returns [None] when no event is pending —
    a deadlocked WFI, which callers treat as a simulation bug. *)
let skip_to_next_event t =
  match next_event_time t with
  | None -> None
  | Some at ->
    let skipped = max 0 (at - t.now) in
    t.now <- max t.now at;
    run_due t;
    Some skipped
