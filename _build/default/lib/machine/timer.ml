(** Hardware timers.

    Each side of the SoC has one: the CPU timer drives the native kernel's
    periodic tick (jiffies) and exposes a free-running counter the guest
    reads for [udelay]/[ktime_get]; the peripheral core's private timer
    gives ARK its time base (§4.6: "ARK converts the expected wait time to
    the hardware timer cycles on the peripheral core").

    MMIO register file:
    - 0x00 R: COUNT_LO — free-running ns counter, low 32 bits
    - 0x04 R: COUNT_HI
    - 0x08 W: TICK_PERIOD_NS — start periodic IRQs (0 stops)
    - 0x0C W: ONESHOT_NS — raise one IRQ after this delay *)

type t = {
  clock : Clock.t;
  fabric : Intc.fabric;
  irq_line : int;
  mutable period : int;
  mutable cancel_tick : (unit -> unit) option;
}

let create ~clock ~fabric ~irq_line =
  { clock; fabric; irq_line; period = 0; cancel_tick = None }

(** [now_ns t] is the free-running counter value. *)
let now_ns t = t.clock.Clock.now

let stop_tick t =
  (match t.cancel_tick with Some c -> c () | None -> ());
  t.cancel_tick <- None;
  t.period <- 0

(** [start_tick t ns] raises the timer IRQ every [ns] nanoseconds. *)
let start_tick t ns =
  stop_tick t;
  if ns > 0 then begin
    t.period <- ns;
    let rec arm () =
      t.cancel_tick <-
        Some
          (Clock.after t.clock t.period (fun () ->
               Intc.raise_line t.fabric t.irq_line;
               if t.period > 0 then arm ()))
    in
    arm ()
  end

(** [oneshot t ns] raises the timer IRQ once, [ns] from now. Returns a
    cancel function. *)
let oneshot t ns =
  Clock.after t.clock ns (fun () -> Intc.raise_line t.fabric t.irq_line)

let mmio_region t ~base : Mem.region =
  { rbase = base; rsize = 0x100; rname = "timer";
    rread =
      (fun off _ ->
        match off with
        | 0x00 -> now_ns t land 0xFFFFFFFF
        | 0x04 -> (now_ns t lsr 32) land 0xFFFFFFFF
        | _ -> 0);
    rwrite =
      (fun off _ v ->
        match off with
        | 0x08 -> if v = 0 then stop_tick t else start_tick t v
        | 0x0C ->
          let _cancel : unit -> unit = oneshot t v in
          ()
        | _ -> ()) }
