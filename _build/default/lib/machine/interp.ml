(** Guest-native interpreter: the CPU executing V7A kernel code directly.

    This is the paper's "native execution" arm: the monolithic kernel
    running device suspend/resume on the Cortex-A9. The loop fetches
    encoded words from DRAM (through the A9's cache model), decodes them
    (memoized), executes via {!Tk_isa.Exec} and charges cycles; pending
    GIC interrupts vector to the kernel's IRQ entry stub between
    instructions.

    Guest [SVC] is used as a simulation hypercall (halt / platform-off /
    console), dispatched to the embedding runner through [on_svc]. *)

open Tk_isa

exception Halt of string  (** raised by hypercalls to end a run *)

exception Fault of string  (** simulation bug: deadlock, bad fetch, ... *)

type t = {
  soc : Soc.t;
  core : Core.t;
  cpu : Exec.cpu;
  decode_cache : (int, Types.inst) Hashtbl.t;
  mutable env : Exec.env;
  mutable irq_vector : int;  (** guest address of the IRQ entry stub *)
  mutable irq_saved : (int * int) list;  (** (return pc, flags) *)
  mutable on_svc : t -> Exec.cpu -> int -> unit;
  mutable trace : (int -> Types.inst -> unit) option;
}

let dummy_env : Exec.env =
  { load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
    svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
    undef = (fun _ _ -> ()) }

let create ~(soc : Soc.t) () =
  let core = soc.cpu in
  let t =
    { soc; core; cpu = Exec.make_cpu (); decode_cache = Hashtbl.create 4096;
      env = dummy_env; irq_vector = 0; irq_saved = [];
      on_svc = (fun _ _ _ -> ()); trace = None }
  in
  let mem = soc.mem in
  let load addr nbytes =
    if Mem.in_ram mem addr then begin
      Core.charge core (Cache.access core.cache ~write:false addr);
      Mem.ram_read mem addr nbytes
    end
    else begin
      Core.charge core core.p.mmio_penalty;
      Mem.read mem addr nbytes
    end
  in
  let store addr nbytes v =
    if Mem.in_ram mem addr then begin
      Core.charge core (Cache.access core.cache ~write:true addr);
      (* self-modifying code safety: drop any stale decode *)
      if Hashtbl.mem t.decode_cache (addr land lnot 3) then
        Hashtbl.remove t.decode_cache (addr land lnot 3);
      Mem.ram_write mem addr nbytes v
    end
    else begin
      Core.charge core core.p.mmio_penalty;
      Mem.write mem addr nbytes v
    end
  in
  let wfi _cpu =
    if not (Core.idle_until_event core) then
      raise (Fault "WFI with no pending event: platform deadlock")
  in
  let irq_ret cpu =
    match t.irq_saved with
    | [] -> raise (Fault "IRQ return with empty saved-context stack")
    | (ret_pc, flags) :: rest ->
      t.irq_saved <- rest;
      cpu.Exec.r.(Types.pc) <- ret_pc;
      Exec.set_flags_word cpu flags;
      cpu.Exec.irq_on <- true
  in
  let undef _cpu inst =
    raise (Fault (Printf.sprintf "undefined instruction: %s" (Types.to_string inst)))
  in
  t.env <-
    { load; store; svc = (fun cpu n -> t.on_svc t cpu n); wfi; irq_ret; undef };
  t

(** [set_pc t addr] positions the next fetch. *)
let set_pc t addr = t.cpu.Exec.r.(Types.pc) <- addr

let fetch_decode t addr =
  match Hashtbl.find_opt t.decode_cache addr with
  | Some i -> i
  | None ->
    let w = Mem.ram_read t.soc.mem addr 4 in
    let i =
      try V7a.decode w
      with V7a.Decode_error _ | Invalid_argument _ ->
        raise (Fault (Printf.sprintf "bad fetch at 0x%x (word 0x%x)" addr w))
    in
    Hashtbl.add t.decode_cache addr i;
    i

let deliver_irq t =
  let cpu = t.cpu in
  t.irq_saved <- (cpu.Exec.r.(Types.pc), Exec.flags_word cpu) :: t.irq_saved;
  cpu.Exec.irq_on <- false;
  cpu.Exec.r.(Types.pc) <- t.irq_vector

(** [step t] executes one instruction (delivering a pending enabled IRQ
    first). *)
let step t =
  let cpu = t.cpu in
  if cpu.Exec.irq_on && Intc.highest t.soc.fabric.gic <> None then
    deliver_irq t;
  let addr = cpu.Exec.r.(Types.pc) in
  if not (Mem.in_ram t.soc.mem addr) then
    raise (Fault (Printf.sprintf "PC outside RAM: 0x%x" addr));
  let i = fetch_decode t addr in
  (match t.trace with Some f -> f addr i | None -> ());
  Core.count_instruction t.core;
  Core.charge t.core (Core.instr_cycles t.core + Core.fetch_cost t.core addr);
  match Exec.step cpu t.env ~addr i with
  | Exec.Next -> cpu.Exec.r.(Types.pc) <- addr + 4
  | Exec.Branched -> ()

(** [run t ~fuel] steps until a hypercall raises {!Halt} (or [fuel]
    instructions elapse, which raises {!Fault} — a runaway guest). *)
let run t ~fuel =
  let n = ref 0 in
  while !n < fuel do
    incr n;
    step t
  done;
  raise (Fault (Printf.sprintf "fuel exhausted after %d instructions" fuel))
