lib/machine/core.ml: Cache Clock
