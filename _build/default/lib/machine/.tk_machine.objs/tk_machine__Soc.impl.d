lib/machine/soc.ml: Cache Clock Core Intc List Mem Timer
