lib/machine/interp.ml: Array Cache Core Exec Hashtbl Intc Mem Printf Soc Tk_isa Types V7a
