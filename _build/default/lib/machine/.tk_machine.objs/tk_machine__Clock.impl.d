lib/machine/clock.ml: List
