lib/machine/intc.ml: Array Hashtbl List Mem
