lib/machine/mem.ml: Array Bytes Char Int32 List Printf Tk_isa
