lib/machine/timer.ml: Clock Intc Mem
