lib/stats/counters.ml: Fmt Hashtbl List
