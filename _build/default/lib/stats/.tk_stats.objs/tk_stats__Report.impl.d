lib/stats/report.ml: List Printf String
