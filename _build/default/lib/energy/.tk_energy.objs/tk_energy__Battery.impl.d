lib/energy/battery.ml: Power_model Tk_machine
