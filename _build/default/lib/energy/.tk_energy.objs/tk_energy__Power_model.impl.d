lib/energy/power_model.ml: Core Tk_machine
