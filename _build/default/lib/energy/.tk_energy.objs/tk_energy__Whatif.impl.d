lib/energy/whatif.ml: Core List Power_model Soc Tk_machine
