(** The Figure 7 what-if analysis.

    How does ARK's relative system energy depend on (a) the DBT overhead
    and (b) the processor-core usage of the native kernel? Evaluated
    analytically from the same power model the measurements use, exactly
    as §7.4 does, yielding the two break-even overheads the paper calls
    out: below ~3.5x ARK saves energy even at 100% busy; above ~5.2x it
    wastes energy even at 20% busy. *)

open Tk_machine

(** [relative_energy ~overhead ~busy_frac ~rd_mbps_m3] — ARK's system
    energy as a fraction of native's, for a native phase of unit
    duration with [busy_frac] of it busy, when the DBT runs at
    [overhead] (M3 cycles per A9 cycle; busy time scales by
    [overhead * clock_ratio]). *)
let relative_energy ?(rd_mbps_m3 = 16.0) ?(rd_mbps_a9 = 4.0)
    ~(a9 : Core.params) ~(m3 : Core.params) ~overhead ~busy_frac () =
  let clock_ratio = float_of_int a9.Core.freq_mhz /. float_of_int m3.Core.freq_mhz in
  let busy_n = busy_frac and idle = 1.0 -. busy_frac in
  let busy_a = busy_n *. overhead *. clock_ratio in
  let p_mem rd =
    Power_model.p_mem_active_base_mw +. (Power_model.p_mem_per_mbps_rd *. rd)
  in
  let e_native =
    (busy_n *. (a9.Core.busy_mw +. p_mem rd_mbps_a9 +. Power_model.p_io_mw))
    +. (idle
       *. (a9.Core.idle_mw +. Power_model.p_mem_sr_mw +. Power_model.p_io_mw))
  in
  let e_ark =
    (busy_a *. (m3.Core.busy_mw +. p_mem rd_mbps_m3 +. Power_model.p_io_mw))
    +. (idle
       *. (m3.Core.idle_mw +. Power_model.p_mem_sr_mw +. Power_model.p_io_mw))
  in
  e_ark /. e_native

(** [break_even ~busy_frac] — the DBT overhead at which ARK's energy
    equals native's for a given native busy fraction (bisection). *)
let break_even ?(a9 = Soc.a9_params) ?(m3 = Soc.m3_params) ~busy_frac () =
  let f ov = relative_energy ~a9 ~m3 ~overhead:ov ~busy_frac () -. 1.0 in
  let rec go lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if f mid > 0.0 then go lo mid (n - 1) else go mid hi (n - 1)
  in
  if f 0.01 > 0.0 then 0.0
  else if f 100.0 < 0.0 then infinity
  else go 0.01 100.0 60

(** [grid ~overheads ~busy_fracs] — the Figure 7 heat-map series. *)
let grid ?(a9 = Soc.a9_params) ?(m3 = Soc.m3_params) ~overheads ~busy_fracs () =
  List.map
    (fun busy_frac ->
      ( busy_frac,
        List.map
          (fun ov ->
            (ov, relative_energy ~a9 ~m3 ~overhead:ov ~busy_frac ()))
          overheads ))
    busy_fracs
