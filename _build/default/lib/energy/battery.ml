(** Battery-life projection (§7.4) and the big.LITTLE comparison.

    The paper projects battery-life extension for ephemeral-task
    workloads from [38]: a wakeup cycle spends fraction [susp_frac] of
    its system energy in the kernel's suspend/resume, of which the
    device phases — the part ARK offloads — are [phase_frac] (54% on
    average per the §2.1 pilot study [92]); ARK reduces that slice to
    [ark_rel]. Whole-cycle energy scales by
    [1 - susp_frac*phase_frac*(1-ark_rel)] and battery life by its
    inverse: 0.9 x 0.54 x 0.34 recovers the paper's 18%. *)

(** [extension ~susp_frac ~ark_rel] — battery-life extension factor. *)
let extension ?(phase_frac = 0.54) ~susp_frac ~ark_rel () =
  1.0 /. (1.0 -. (susp_frac *. phase_frac *. (1.0 -. ark_rel))) -. 1.0

(** [hours_per_day ext] — extra hours on a 24 h budget. *)
let hours_per_day ext = 24.0 *. (1.0 -. (1.0 /. (1.0 +. ext)))

(* ------------------------- big.LITTLE (§7.4) ------------------------ *)

(** LITTLE-core parameters from the characterizations the paper cites:
    40 mW idle [69], 1.3x the big core's energy efficiency at 70% of its
    clock [47]; DRAM utilization favorably assumed equal to the big
    core's. *)
type little = { l_idle_mw : float; l_eff : float; l_clock_frac : float }

let little_defaults = { l_idle_mw = 40.0; l_eff = 1.3; l_clock_frac = 0.7 }

(** [little_relative ~a9 ~busy_ms ~idle_ms ~e_native] — energy of running
    the same phase on a LITTLE core, relative to native-on-big. *)
let little_relative ?(l = little_defaults) ~(a9 : Tk_machine.Core.params)
    ~busy_ms ~idle_ms ~e_native_uj () =
  let busy_l = busy_ms /. l.l_clock_frac in
  let p_busy_l = a9.Tk_machine.Core.busy_mw *. l.l_clock_frac /. l.l_eff in
  let e_little =
    (busy_l *. (p_busy_l +. Power_model.p_mem_active_base_mw +. Power_model.p_io_mw))
    +. (idle_ms
       *. (l.l_idle_mw +. Power_model.p_mem_sr_mw +. Power_model.p_io_mw))
  in
  e_little /. e_native_uj
