(** The §7.4 system-level energy model.

    {v E = E_core + T_idle * (P_mem_sr + P_io) + T_busy * (P_mem + P_io) v}

    [E_core] integrates the per-core busy/idle powers of Table 6 over the
    measured activity; DRAM active power follows a Micron-style LPDDR2
    model driven by the measured read/write bandwidth (cache misses +
    DMA); self-refresh is 1.3 mW; average IO power during suspend/resume
    is 5 mW (both values straight from the paper). All energies are in
    microjoules (mW x ms). *)

open Tk_machine

(** DRAM power parameters (LPDDR2, Micron TN4201-style). *)
let p_mem_sr_mw = 1.3

let p_mem_active_base_mw = 6.0
let p_mem_per_mbps_rd = 0.55
let p_mem_per_mbps_wr = 0.65

(** Average IO power while devices are quiescing (from [90] via §7.4). *)
let p_io_mw = 5.0

type breakdown = {
  e_core_busy : float;  (** uJ *)
  e_core_idle : float;
  e_dram : float;
  e_io : float;
  busy_ms : float;
  idle_ms : float;
  rd_mbps : float;
  wr_mbps : float;
}

let total b = b.e_core_busy +. b.e_core_idle +. b.e_dram +. b.e_io

(** [of_activity ~params ~act ~dma_bytes] evaluates the model for one
    measured phase on one core. [dma_bytes] adds device-mastered DRAM
    traffic (reads, writes) on top of the core's cache-miss traffic. *)
let of_activity ~(params : Core.params) ~(act : Core.activity)
    ?(dma_bytes = (0, 0)) () =
  let busy_ms = float_of_int act.Core.a_busy_ps /. 1e9 in
  let idle_ms = float_of_int act.Core.a_idle_ps /. 1e9 in
  let dma_rd, dma_wr = dma_bytes in
  let rd_bytes = act.Core.a_rd_bytes + dma_rd in
  let wr_bytes = act.Core.a_wr_bytes + dma_wr in
  let active_ms = busy_ms +. idle_ms in
  let mbps bytes =
    if active_ms <= 0.0 then 0.0
    else float_of_int bytes /. 1e6 /. (active_ms /. 1e3)
  in
  let rd_mbps = mbps rd_bytes and wr_mbps = mbps wr_bytes in
  let p_mem =
    p_mem_active_base_mw
    +. (p_mem_per_mbps_rd *. rd_mbps)
    +. (p_mem_per_mbps_wr *. wr_mbps)
  in
  { e_core_busy = busy_ms *. params.Core.busy_mw;
    e_core_idle = idle_ms *. params.Core.idle_mw;
    e_dram = (busy_ms *. p_mem) +. (idle_ms *. p_mem_sr_mw);
    e_io = (busy_ms +. idle_ms) *. p_io_mw;
    busy_ms; idle_ms; rd_mbps; wr_mbps }

(** [deep_sleep_uj ms] — platform deep-sleep energy: DRAM self-refresh
    plus a 0.5 mW sleep floor; every core is off. *)
let deep_sleep_uj ms = ms *. (p_mem_sr_mw +. 0.5)
