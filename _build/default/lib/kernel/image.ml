(** Kernel image assembly: compile and link minikern (+ drivers).

    Produces the guest binary the CPU boots natively and the DBT engine
    translates. Fragments carry a layer tag (Table 5 / Figure 3a
    categories: kernel services, kernel libs, driver libs,
    device-specific) so the benches can report per-layer inventories. *)

open Tk_isa

type layer = Kernel_service | Kernel_lib | Driver_lib | Device_specific

let layer_name = function
  | Kernel_service -> "kernel services"
  | Kernel_lib -> "kernel libs"
  | Driver_lib -> "driver libs"
  | Device_specific -> "device-specific"

type built = {
  image : Asm.image;
  layout : Layout.t;
  abi : Kabi.resolved;
  layers : (string * layer) list;  (** fragment name -> layer *)
}

(** [build ?layout ~extra ()] compiles the kernel with [layout] plus the
    [extra] (driver) fragments/data and links the image at
    {!Tk_machine.Soc.kernel_base}. [extra] is a list of
    [(fragment, layer)] plus data. *)
let build ?(layout = Layout.v4_4) ?(extra_frags = []) ?(extra_data = []) () =
  let lay = layout in
  let service_funcs =
    Sched_src.funcs lay @ Time_src.funcs lay @ Locks_src.funcs lay
    @ Work_src.funcs lay @ Irq_src.funcs lay @ Pm_src.funcs lay
    @ Boot_src.funcs lay
  in
  let lib_funcs = Klib_src.funcs lay @ Alloc_src.funcs lay in
  let service_frags =
    Tk_kcc.Codegen.compile_all service_funcs
    @ Sched_src.frags lay @ Irq_src.frags lay @ Pm_src.frags lay
    @ Boot_src.frags lay
  in
  let lib_frags = Tk_kcc.Codegen.compile_all lib_funcs @ Klib_src.frags lay in
  let layers =
    List.map (fun (f : Asm.fragment) -> (f.name, Kernel_service)) service_frags
    @ List.map (fun (f : Asm.fragment) -> (f.name, Kernel_lib)) lib_frags
    @ List.map (fun ((f : Asm.fragment), l) -> (f.name, l)) extra_frags
  in
  let data =
    Sched_src.data lay @ Time_src.data lay @ Locks_src.data lay
    @ Work_src.data lay @ Irq_src.data lay @ Alloc_src.data lay
    @ Pm_src.data lay @ Klib_src.data lay @ extra_data
  in
  let frags = service_frags @ lib_frags @ List.map fst extra_frags in
  let image = Asm.link ~base:Tk_machine.Soc.kernel_base frags data in
  let abi = Kabi.resolve (Asm.symbol_opt image) in
  { image; layout = lay; abi; layers }

(** [layer_sizes b] sums code bytes per layer (the Figure 3a / Table 5
    style inventory). *)
let layer_sizes b =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, size) ->
      match List.assoc_opt name b.layers with
      | Some layer ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt tbl layer) in
        Hashtbl.replace tbl layer (cur + size)
      | None -> ())
    b.image.frag_sizes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(** [instructions b] — total encoded instructions in the image's code
    section. *)
let instructions b = b.image.code_size / 4
