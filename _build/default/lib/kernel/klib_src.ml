(** Kernel library routines (the paper's "kernel libs" layer).

    [memcpy]/[memset] are hand-written assembly using post-indexed
    addressing — the hot "side effect" translation category (Table 4 G1).
    [warn]/[panic_stop] are the cold-path markers whose call sites divert
    ARK to fallback. *)

open Tk_isa
open Tk_isa.Types
open Tk_kcc
open Ir

(* memcpy(dst, src, n): word loop with post-indexed load/store, byte tail *)
let memcpy_frag : Asm.fragment =
  let i op = Asm.Ins (at op) in
  let ic c op = Asm.Ins (at ~cond:c op) in
  { Asm.name = "memcpy";
    items =
      [ i (Stm (sp, true, [ 4; lr ]));
        Asm.Label ".Lmemcpy_words";
        i (Dp (CMP, false, 0, 2, Imm 4));
        Asm.Bcc (CC, ".Lmemcpy_bytes");
        i (Mem { ld = true; size = Word; rt = 3; rn = 1; off = Oimm 4;
                 idx = Post });
        i (Mem { ld = false; size = Word; rt = 3; rn = 0; off = Oimm 4;
                 idx = Post });
        i (Dp (SUB, false, 2, 2, Imm 4));
        Asm.Jmp ".Lmemcpy_words";
        Asm.Label ".Lmemcpy_bytes";
        i (Dp (CMP, false, 0, 2, Imm 0));
        Asm.Bcc (EQ, ".Lmemcpy_done");
        i (Mem { ld = true; size = Byte; rt = 3; rn = 1; off = Oimm 1;
                 idx = Post });
        i (Mem { ld = false; size = Byte; rt = 3; rn = 0; off = Oimm 1;
                 idx = Post });
        i (Dp (SUB, false, 2, 2, Imm 1));
        Asm.Jmp ".Lmemcpy_bytes";
        Asm.Label ".Lmemcpy_done";
        ic AL (Ldm (sp, true, [ 4; pc ])) ] }

(* memset(dst, byte, n) *)
let memset_frag : Asm.fragment =
  let i op = Asm.Ins (at op) in
  { Asm.name = "memset";
    items =
      [ i (Stm (sp, true, [ 4; lr ]));
        i (Dp (AND, false, 1, 1, Imm 0xFF));
        i (Dp (ORR, false, 1, 1, Sreg (1, LSL, 8)));
        i (Dp (ORR, false, 1, 1, Sreg (1, LSL, 16)));
        Asm.Label ".Lmemset_words";
        i (Dp (CMP, false, 0, 2, Imm 4));
        Asm.Bcc (CC, ".Lmemset_bytes");
        i (Mem { ld = false; size = Word; rt = 1; rn = 0; off = Oimm 4;
                 idx = Post });
        i (Dp (SUB, false, 2, 2, Imm 4));
        Asm.Jmp ".Lmemset_words";
        Asm.Label ".Lmemset_bytes";
        i (Dp (CMP, false, 0, 2, Imm 0));
        Asm.Bcc (EQ, ".Lmemset_done");
        i (Mem { ld = false; size = Byte; rt = 1; rn = 0; off = Oimm 1;
                 idx = Post });
        i (Dp (SUB, false, 2, 2, Imm 1));
        Asm.Jmp ".Lmemset_bytes";
        Asm.Label ".Lmemset_done";
        i (Ldm (sp, true, [ 4; pc ])) ] }

let funcs (lay : Layout.t) : Ir.func list =
  [ (* kernel WARN(): count it, tell the harness, keep going (native
       semantics); under ARK the call site itself triggers fallback *)
    func "warn" ~params:[ "code" ]
      [ stw (glob "warn_count") (ldw (glob "warn_count") + int 1);
        Ksrc_util.svc Hyper.warn_hit;
        ret0 ];
    func "panic_stop" ~params:[ "code" ]
      [ Ksrc_util.svc Hyper.panic; ret0 ];
    func "syslog" ~params:[ "msg" ]
      [ (* rate-limited printk stand-in: just count *)
        stw (glob "syslog_count") (ldw (glob "syslog_count") + int 1);
        ret0 ];
    (* try_wake(tcb): wake a kthread blocked without a sleep deadline;
       the minikern wake_up_process *)
    func "try_wake" ~params:[ "t" ]
      [ if_ (v "t" == int 0) [ ret (int 0) ] [];
        if_
          (ldw (v "t" + int lay.tcb_state) == int Layout.st_blocked)
          [ if_
              (ldw (v "t" + int lay.tcb_wake_at) == int 0)
              [ stw (v "t" + int lay.tcb_state) (int Layout.st_runnable);
                ret (int 1) ]
              [] ]
          [];
        ret (int 0) ] ]

let frags (_lay : Layout.t) = [ memcpy_frag; memset_frag ]

let data (_lay : Layout.t) : Asm.datum list =
  [ Asm.data "warn_count" 4; Asm.data "syslog_count" 4 ]
