(** The narrow, stable kernel ABI (paper Table 2).

    Exactly 12 functions + 1 variable. This is everything ARK is allowed
    to know about the guest kernel by name; it obtains their addresses
    from the kernel's symbol table at handoff. Note what is {e absent}:
    no struct layouts, no field offsets, no internal function names —
    those belong to {!Layout} and change across kernel variants, while
    this list must not (the build-once-run-many property, tested in
    [test_abi.ml]).

    Beyond the 13 names, ARK also intercepts the two spin-lock entry
    points, which the paper treats as an emulated core-specific service
    (Table 2 top); they are equally invariant across variants. *)

(** Upcall entry points: ARK starts translated execution here. *)
let worker_thread = "worker_thread"

let irq_thread = "irq_thread"
let do_softirq = "do_softirq"
let run_local_timers = "run_local_timers"
let generic_handle_irq = "generic_handle_irq"

(** Downcalls ARK emulates (stateless services). *)
let schedule = "schedule"

let msleep = "msleep"
let udelay = "udelay"
let ktime_get = "ktime_get"

(** Hooked-and-translated: ARK observes the call (to wake the right DBT
    context) and then lets the translated body run — deferred work is
    stateful (§4.3). *)
let queue_work_on = "queue_work_on"

let tasklet_schedule = "tasklet_schedule"
let async_schedule = "async_schedule"

(** The single variable: ARK updates it from the peripheral core's
    hardware timer (§4.6). *)
let jiffies = "jiffies"

(** Core-specific emulated service (spinlocks, §4.4). *)
let spin_lock = "spin_lock"

let spin_unlock = "spin_unlock"

(** The 12 functions + 1 variable of Table 2, in the paper's order. *)
let table2 =
  [ jiffies; udelay; msleep; tasklet_schedule; irq_thread; ktime_get;
    queue_work_on; worker_thread; run_local_timers; generic_handle_irq;
    schedule; async_schedule; do_softirq ]

(** Symbols whose call sites divert to ARK's emulation (never
    translated). *)
let emulated = [ schedule; msleep; udelay; ktime_get; spin_lock; spin_unlock ]

(** Symbols ARK hooks before translating through. *)
let hooked = [ queue_work_on; tasklet_schedule; async_schedule ]

(** Cold-path symbols: calling one triggers translated->native fallback
    (§3 principle 3, §6). These are recognized by name at translation
    time, like the paper's "cold branches pre-defined by us, e.g. kernel
    WARN()". *)
let cold = [ "warn"; "panic_stop"; "kernel_oom"; "syslog" ]

(** The resolved ABI: what the CPU-side kernel module hands to ARK. *)
type resolved = {
  addr_of : string -> int;  (** address of an ABI symbol *)
  name_of_addr : int -> string option;  (** reverse, over the ABI set *)
  jiffies_addr : int;
}

(** [resolve lookup] builds the resolved ABI from a symbol-table lookup.
    Raises [Failure] if any of the Table 2 names is missing — an ABI
    break, exactly what Figure 3 is about. *)
let resolve lookup =
  let tbl = Hashtbl.create 32 in
  let rev = Hashtbl.create 32 in
  List.iter
    (fun name ->
      match lookup name with
      | Some addr ->
        Hashtbl.replace tbl name addr;
        Hashtbl.replace rev addr name
      | None -> failwith (Printf.sprintf "kernel ABI break: no symbol %s" name))
    (table2 @ [ spin_lock; spin_unlock ]);
  (* cold symbols are best-effort: a kernel without syslog simply has
     fewer recognizable cold entries *)
  List.iter
    (fun name ->
      match lookup name with
      | Some addr ->
        Hashtbl.replace tbl name addr;
        Hashtbl.replace rev addr name
      | None -> ())
    cold;
  { addr_of =
      (fun n ->
        match Hashtbl.find_opt tbl n with
        | Some a -> a
        | None -> failwith ("not an ABI symbol: " ^ n));
    name_of_addr = (fun a -> Hashtbl.find_opt rev a);
    jiffies_addr = (match lookup jiffies with Some a -> a | None -> 0) }
