(** Dynamic memory: buddy page allocator + slab (kmalloc/kfree).

    Translated under ARK as a stateful service (§4.5): the offloaded
    execution frees memory allocated on the CPU and vice versa, against
    the same free lists in shared DRAM. The slow path (out of pages)
    calls [kernel_oom] — a cold symbol, so under ARK it aborts offloading
    (fallback); natively it WARNs and returns NULL. *)

open Tk_isa
open Tk_kcc
open Ir

let page_size = 4096
let max_order = 7  (* up to 512 KiB blocks *)
let n_classes = 7  (* 32..2048 bytes *)
let class_sizes = [ 32; 64; 128; 256; 512; 1024; 2048 ]
let slab_magic = 0x51AB0000
let max_block = Stdlib.( lsl ) page_size max_order
let buddy_top_off = Stdlib.( * ) max_order 4

let funcs (_lay : Layout.t) : Ir.func list =
  [ (* free-list helpers: blocks/objects link through their first word *)
    func "fl_push" ~params:[ "headp"; "blk" ]
      [ stw (v "blk") (ldw (v "headp"));
        stw (v "headp") (v "blk");
        ret0 ];
    func "fl_pop" ~params:[ "headp" ] ~locals:[ "blk" ]
      [ assign "blk" (ldw (v "headp"));
        if_ (v "blk" != int 0) [ stw (v "headp") (ldw (v "blk")) ] [];
        ret (v "blk") ];
    func "fl_unlink" ~params:[ "headp"; "blk" ] ~locals:[ "prev"; "cur" ]
      [ assign "prev" (int 0);
        assign "cur" (ldw (v "headp"));
        while_ (v "cur" != int 0)
          [ if_ (v "cur" == v "blk")
              [ if_ (v "prev" == int 0)
                  [ stw (v "headp") (ldw (v "cur")) ]
                  [ stw (v "prev") (ldw (v "cur")) ];
                ret (int 1) ]
              [];
            assign "prev" (v "cur");
            assign "cur" (ldw (v "cur")) ];
        ret (int 0) ];
    func "buddy_init" ~locals:[ "blk"; "stop"; "step" ]
      [ assign "step" (int max_block);
        assign "blk" (int Tk_machine.Soc.page_pool_base);
        assign "stop" (int Tk_machine.Soc.page_pool_base
                      + int Tk_machine.Soc.page_pool_size);
        while_ (v "blk" < v "stop")
          [ expr (call "fl_push"
                    [ glob "buddy_heads" + int buddy_top_off; v "blk" ]);
            assign "blk" (v "blk" + v "step") ];
        ret0 ];
    func "alloc_pages" ~params:[ "order" ] ~locals:[ "o"; "blk"; "half" ]
      [ expr (call "spin_lock" [ int 0 ]);
        assign "o" (v "order");
        while_ (v "o" <= int max_order)
          [ if_ (ldw (glob "buddy_heads" + (v "o" lsl int 2)) != int 0)
              [ Break ]
              [];
            assign "o" (v "o" + int 1) ];
        if_ (v "o" > int max_order)
          [ (* slow path: out of physical pages *)
            stw (glob "oom_count") (ldw (glob "oom_count") + int 1);
            expr (call "spin_unlock" [ int 0 ]);
            expr (call "kernel_oom" [ v "order" ]);
            ret (int 0) ]
          [];
        assign "blk" (call "fl_pop" [ glob "buddy_heads" + (v "o" lsl int 2) ]);
        while_ (v "o" > v "order")
          [ assign "o" (v "o" - int 1);
            assign "half" (v "blk" + (int page_size lsl v "o"));
            expr (call "fl_push"
                    [ glob "buddy_heads" + (v "o" lsl int 2); v "half" ]) ];
        expr (call "spin_unlock" [ int 0 ]);
        ret (v "blk") ];
    func "free_pages" ~params:[ "blk"; "order" ] ~locals:[ "o"; "bud"; "got" ]
      [ expr (call "spin_lock" [ int 0 ]);
        assign "o" (v "order");
        while_ (v "o" < int max_order)
          [ assign "bud" (v "blk" lxor (int page_size lsl v "o"));
            assign "got"
              (call "fl_unlink" [ glob "buddy_heads" + (v "o" lsl int 2); v "bud" ]);
            if_ (v "got" == int 0) [ Break ] [];
            assign "blk" (v "blk" land bnot (int page_size lsl v "o"));
            assign "o" (v "o" + int 1) ];
        expr (call "fl_push" [ glob "buddy_heads" + (v "o" lsl int 2); v "blk" ]);
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    func "kernel_oom" ~params:[ "order" ]
      [ expr (call "warn" [ int 0xDEAD ]); ret0 ];
    func "kmalloc" ~params:[ "size" ]
      ~locals:[ "c"; "obj"; "page"; "i"; "csize" ]
      [ assign "c" (int 0);
        while_ (v "c" < int n_classes)
          [ if_ (ldw (glob "slab_sizes" + (v "c" lsl int 2)) >= v "size" + int 4)
              [ Break ] [];
            assign "c" (v "c" + int 1) ];
        if_ (v "c" >= int n_classes) [ ret (int 0) ] [];
        expr (call "spin_lock" [ int 0 ]);
        assign "obj" (call "fl_pop" [ glob "slab_heads" + (v "c" lsl int 2) ]);
        if_ (v "obj" == int 0)
          [ expr (call "spin_unlock" [ int 0 ]);
            assign "page" (call "alloc_pages" [ int 0 ]);
            if_ (v "page" == int 0) [ ret (int 0) ] [];
            expr (call "spin_lock" [ int 0 ]);
            assign "csize" (ldw (glob "slab_sizes" + (v "c" lsl int 2)));
            assign "i" (int 0);
            while_ (v "i" + v "csize" <= int page_size)
              [ expr (call "fl_push"
                        [ glob "slab_heads" + (v "c" lsl int 2);
                          v "page" + v "i" ]);
                assign "i" (v "i" + v "csize") ];
            assign "obj" (call "fl_pop" [ glob "slab_heads" + (v "c" lsl int 2) ]) ]
          [];
        expr (call "spin_unlock" [ int 0 ]);
        stw (v "obj") (int slab_magic lor v "c");
        ret (v "obj" + int 4) ];
    func "kfree" ~params:[ "p" ] ~locals:[ "obj"; "c" ]
      [ if_ (v "p" == int 0) [ ret0 ] [];
        assign "obj" (v "p" - int 4);
        assign "c" (ldw (v "obj") land int 0xFF);
        expr (call "spin_lock" [ int 0 ]);
        expr (call "fl_push" [ glob "slab_heads" + (v "c" lsl int 2); v "obj" ]);
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ] ]

let data (_lay : Layout.t) : Asm.datum list =
  [ Asm.data "buddy_heads" (Stdlib.( * ) (Stdlib.( + ) max_order 1) 4);
    Asm.data "slab_heads" (Stdlib.( * ) n_classes 4);
    Asm.data ~words:class_sizes "slab_sizes" (Stdlib.( * ) n_classes 4);
    Asm.data "oom_count" 4 ]
