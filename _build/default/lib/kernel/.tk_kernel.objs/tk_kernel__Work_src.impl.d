lib/kernel/work_src.ml: Asm Ir Ksrc_util Layout Stdlib Tk_isa Tk_kcc
