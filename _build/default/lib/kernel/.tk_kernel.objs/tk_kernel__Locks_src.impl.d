lib/kernel/locks_src.ml: Asm Ir Ksrc_util Layout Tk_isa Tk_kcc
