lib/kernel/sched_src.ml: Asm Ir Ksrc_util Layout Stdlib Tk_isa Tk_kcc Tk_machine
