lib/kernel/kabi.ml: Hashtbl List Printf
