lib/kernel/layout.ml:
