lib/kernel/image.ml: Alloc_src Asm Boot_src Hashtbl Irq_src Kabi Klib_src Layout List Locks_src Option Pm_src Sched_src Time_src Tk_isa Tk_kcc Tk_machine Work_src
