lib/kernel/ksrc_util.ml: Asm Hyper Layout Tk_isa Tk_kcc
