lib/kernel/boot_src.ml: Asm Hyper Ir Ksrc_util Layout Time_src Tk_isa Tk_kcc Tk_machine
