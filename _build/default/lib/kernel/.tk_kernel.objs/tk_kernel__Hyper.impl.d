lib/kernel/hyper.ml:
