lib/kernel/variants.ml: Layout
