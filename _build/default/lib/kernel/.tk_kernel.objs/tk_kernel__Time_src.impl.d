lib/kernel/time_src.ml: Asm Ir Layout Stdlib Tk_isa Tk_kcc Tk_machine
