lib/kernel/klib_src.ml: Asm Hyper Ir Ksrc_util Layout Tk_isa Tk_kcc
