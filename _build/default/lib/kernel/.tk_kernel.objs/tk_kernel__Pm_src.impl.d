lib/kernel/pm_src.ml: Asm Hyper Ir Ksrc_util Layout Stdlib Tk_isa Tk_kcc
