(** The device power-management core (Linux dpm).

    [dpm_suspend] walks registered devices in reverse registration order
    invoking their suspend callbacks (optionally via [async_schedule] for
    async-capable devices, as Linux parallelizes power transitions [50]);
    [dpm_resume] mirrors it. This is the phase ARK offloads: under
    offload the CPU stops right before [dpm_suspend] and the peripheral
    core executes it (and later [dpm_resume]) through DBT. *)

open Tk_isa
open Tk_isa.Types
open Tk_kcc
open Ir

(* dev_mark(code): phase-marker hypercall with r0 = code (r0 already
   holds the first argument on entry) *)
let dev_mark_frag : Asm.fragment =
  { Asm.name = "dev_mark";
    items = [ Asm.Ins (at (Svc Hyper.phase_mark)); Asm.Ins (at (Bx lr)) ] }

let funcs (lay : Layout.t) : Ir.func list =
  [ func "device_register" ~params:[ "dev" ] ~locals:[ "n" ]
      [ assign "n" (ldw (glob "dpm_count"));
        stw (glob "dpm_devices" + (v "n" lsl int 2)) (v "dev");
        stw (glob "dpm_count") (v "n" + int 1);
        ret0 ];
    func "dpm_suspend" ~locals:[ "i"; "d"; "fn" ]
      [ assign "i" (ldw (glob "dpm_count") - int 1);
        while_ (sge (v "i") (int 0))
          [ assign "d" (ldw (glob "dpm_devices" + (v "i" lsl int 2)));
            (* runtime-suspended devices are already down (see
               pm_runtime_suspend); skip their callbacks *)
            if_ (ldw (v "d" + int lay.dev_state) != int 0)
              [ assign "fn" (ldw (v "d" + int lay.dev_suspend));
                if_ ((ldw (v "d" + int lay.dev_flags) land int 1) != int 0)
                  [ expr (call "async_schedule" [ v "fn"; v "d" ]) ]
                  [ expr (call "dev_mark"
                            [ int Hyper.ph_dev_mark + (v "i" * int 10) ]);
                    expr (callptr (v "fn") [ v "d" ]);
                    expr (call "dev_mark"
                            [ int Hyper.ph_dev_mark + (v "i" * int 10) + int 1 ]) ] ]
              [];
            assign "i" (v "i" - int 1) ];
        expr (call "async_synchronize" []);
        ret0 ];
    func "dpm_resume" ~locals:[ "i"; "n"; "d"; "fn" ]
      [ assign "i" (int 0);
        assign "n" (ldw (glob "dpm_count"));
        while_ (v "i" < v "n")
          [ assign "d" (ldw (glob "dpm_devices" + (v "i" lsl int 2)));
            assign "fn" (ldw (v "d" + int lay.dev_resume));
            (* skip devices that are already powered (resumed early) *)
            if_ (ldw (v "d" + int lay.dev_state) == int 0)
              [ if_ ((ldw (v "d" + int lay.dev_flags) land int 1) != int 0)
                  [ expr (call "async_schedule" [ v "fn"; v "d" ]) ]
                  [ expr (call "dev_mark"
                            [ int Hyper.ph_dev_mark + (v "i" * int 10) + int 2 ]);
                    expr (callptr (v "fn") [ v "d" ]);
                    expr (call "dev_mark"
                            [ int Hyper.ph_dev_mark + (v "i" * int 10) + int 3 ]) ] ]
              [];
            assign "i" (v "i" + int 1) ];
        expr (call "async_synchronize" []);
        ret0 ];
    (* runtime PM (Linux pm_runtime functions): put an idle device to sleep while
       the system stays up — the complementary mechanism of [90] the
       paper says ARK co-exists with (§8) *)
    func "pm_runtime_suspend" ~params:[ "d" ]
      [ if_ (ldw (v "d" + int lay.dev_state) != int 0)
          [ expr (callptr (ldw (v "d" + int lay.dev_suspend)) [ v "d" ]) ]
          [];
        ret0 ];
    func "pm_runtime_resume" ~params:[ "d" ]
      [ if_ (ldw (v "d" + int lay.dev_state) == int 0)
          [ expr (callptr (ldw (v "d" + int lay.dev_resume)) [ v "d" ]) ]
          [];
        ret0 ];
    (* async-capable marking (Linux: device_enable_async_suspend) *)
    func "dpm_set_async" ~params:[ "d"; "on" ]
      [ if_ (v "on" != int 0)
          [ stw (v "d" + int lay.dev_flags)
              (ldw (v "d" + int lay.dev_flags) lor int 1) ]
          [ stw (v "d" + int lay.dev_flags)
              (ldw (v "d" + int lay.dev_flags) land bnot (int 1)) ];
        ret0 ];
    (* freezing user tasks: bounded busywork over the thread table, the
       cheap prefix/suffix of the suspend path that stays on the CPU *)
    func "freeze_processes" ~locals:[ "i"; "n"; "t" ]
      [ assign "n" (int 0);
        assign "i" (int 0);
        while_ (v "i" < int 400)
          [ assign "t"
              (glob "tcbs"
              + ((v "i" - (v "i" / int Layout.nthreads * int Layout.nthreads))
                * int lay.tcb_size));
            assign "n" (v "n" + ldw (v "t" + int lay.tcb_state));
            assign "i" (v "i" + int 1) ];
        ret (v "n") ];
    func "thaw_processes" ~locals:[ "i"; "n" ]
      [ assign "n" (int 0);
        assign "i" (int 0);
        while_ (v "i" < int 300)
          [ assign "n" ((v "n" + v "i") lxor (v "n" lsr int 3));
            assign "i" (v "i" + int 1) ];
        ret (v "n") ];
    (* the whole native suspend/resume syscall path *)
    func "pm_suspend"
      [ expr (call "freeze_processes" []);
        Ksrc_util.phase_mark Hyper.ph_suspend_begin;
        expr (call "dpm_suspend" []);
        Ksrc_util.phase_mark Hyper.ph_suspend_end;
        Ksrc_util.svc Hyper.platform_off;
        Ksrc_util.phase_mark Hyper.ph_resume_begin;
        expr (call "dpm_resume" []);
        Ksrc_util.phase_mark Hyper.ph_resume_end;
        expr (call "thaw_processes" []);
        ret0 ] ]

let frags (_lay : Layout.t) = [ dev_mark_frag ]

let data (_lay : Layout.t) : Asm.datum list =
  [ Asm.data "dpm_devices" (Stdlib.( * ) Layout.max_devices 4);
    Asm.data "dpm_count" 4 ]
