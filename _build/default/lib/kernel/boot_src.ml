(** Kernel boot: set up threads, daemons, tick, allocator.

    [kernel_main] runs once (natively, on the CPU) right after the
    runner loads the image: it is the [start_kernel]+[rest_init] of
    minikern. [call_exit_stub] is the return trampoline the OCaml runner
    points LR at when invoking a guest function directly. *)

open Tk_isa
open Tk_isa.Types
open Tk_kcc
open Ir

let call_exit_frag : Asm.fragment =
  { Asm.name = "call_exit_stub";
    items = [ Asm.Ins (at (Svc Hyper.exit_call)); Asm.Ins (at (Udf 0xE817)) ] }

let funcs (lay : Layout.t) : Ir.func list =
  [ func "kernel_main" ~locals:[ "t" ]
      [ (* boot thread occupies TCB slot 0 *)
        stw (glob "current") (glob "tcbs");
        stw (glob "tcbs" + int lay.tcb_state) (int Layout.st_runnable);
        stw (glob "tcbs" + int lay.tcb_wake_at) (int 0);
        expr (call "buddy_init" []);
        (* kernel daemons *)
        assign "t"
          (call "thread_create"
             [ int Layout.thr_softirqd; glob "softirqd_main";
               Ksrc_util.tcb_of_slot lay Layout.thr_softirqd ]);
        assign "t"
          (call "thread_create"
             [ int Layout.thr_kworker_sys; glob "worker_thread";
               glob "system_wq" ]);
        stw (glob "system_wq" + int lay.wq_worker) (v "t");
        assign "t"
          (call "thread_create"
             [ int Layout.thr_kworker_pm; glob "worker_thread"; glob "pm_wq" ]);
        stw (glob "pm_wq" + int lay.wq_worker) (v "t");
        assign "t"
          (call "thread_create"
             [ int Layout.thr_kworker_aux; glob "worker_thread";
               glob "wifi_wq" ]);
        stw (glob "wifi_wq" + int lay.wq_worker) (v "t");
        stw (glob "next_irq_thread") (int Layout.thr_irq_first);
        (* periodic tick *)
        expr (call "request_irq"
                [ int Tk_machine.Soc.irq_cpu_timer; glob "tick_handler";
                  int 0; int 0 ]);
        stw (int Time_src.tick_period_addr) (int Layout.jiffy_ns);
        Ksrc_util.cpsie;
        (* let the daemons run to their parking points *)
        expr (call "schedule" []);
        expr (call "schedule" []);
        ret0 ] ]

let frags (_lay : Layout.t) = [ call_exit_frag ]
