(** The minikern scheduler — cooperative kthreads on one CPU.

    Mirrors the concurrency structure device suspend/resume actually has
    (§2.1: "simple concurrency ... for hardware asynchrony and kernel
    modularity, not multicore parallelism"): a syscall thread, kernel
    daemons (softirqd, kworkers, threaded-IRQ threads) and hardware IRQs.
    [schedule]/[__switch_to] run only natively; ARK emulates them with
    its own context scheduler sharing {e no} state with these TCBs. *)

open Tk_isa
open Tk_isa.Types
open Tk_kcc
open Ir

let switch_frag (lay : Layout.t) : Asm.fragment =
  let i op = Asm.Ins (at op) in
  { Asm.name = "__switch_to";
    items =
      [ i (Stm (sp, true, [ 4; 5; 6; 7; 8; 9; lr ]));
        i (Mem { ld = false; size = Word; rt = sp; rn = 0;
                 off = Oimm lay.tcb_sp; idx = Offset });
        i (Mem { ld = true; size = Word; rt = sp; rn = 1;
                 off = Oimm lay.tcb_sp; idx = Offset });
        i (Ldm (sp, true, [ 4; 5; 6; 7; 8; 9; pc ])) ] }

let trampoline_frag (lay : Layout.t) : Asm.fragment =
  let i op = Asm.Ins (at op) in
  { Asm.name = "thread_trampoline";
    items =
      [ Asm.Adr (2, "current");
        i (Mem { ld = true; size = Word; rt = 2; rn = 2; off = Oimm 0;
                 idx = Offset });
        i (Mem { ld = true; size = Word; rt = 1; rn = 2;
                 off = Oimm lay.tcb_entry; idx = Offset });
        i (Mem { ld = true; size = Word; rt = 0; rn = 2;
                 off = Oimm lay.tcb_arg; idx = Offset });
        i (Blx_r 1);
        Asm.Call "thread_exit";
        (* unreachable *)
        i (Udf 0xDEAD) ] }

let funcs (lay : Layout.t) : Ir.func list =
  let nthreads = Layout.nthreads in
  let st = lay.tcb_state and sz = lay.tcb_size in
  [ func "schedule" ~locals:[ "prev"; "idx"; "nxt"; "i"; "cand"; "tmp" ]
      [ assign "prev" (ldw (glob "current"));
        assign "idx" ((v "prev" - glob "tcbs") / int sz);
        assign "nxt" (int 0);
        assign "i" (int 1);
        while_ (v "i" <= int nthreads)
          [ assign "tmp" (v "idx" + v "i");
            assign "tmp" (v "tmp" - (v "tmp" / int nthreads * int nthreads));
            assign "cand" (glob "tcbs" + (v "tmp" * int sz));
            if_
              (ldw (v "cand" + int st) == int Layout.st_runnable)
              [ assign "nxt" (v "cand"); Break ]
              [];
            assign "i" (v "i" + int 1) ];
        (* nothing runnable: idle until an interrupt makes one runnable *)
        while_ (v "nxt" == int 0)
          [ Ksrc_util.wfi;
            assign "i" (int 0);
            while_ (v "i" < int nthreads)
              [ assign "cand" (glob "tcbs" + (v "i" * int sz));
                if_
                  (ldw (v "cand" + int st) == int Layout.st_runnable)
                  [ assign "nxt" (v "cand"); Break ]
                  [];
                assign "i" (v "i" + int 1) ] ];
        if_ (v "nxt" != v "prev")
          [ stw (glob "current") (v "nxt");
            expr (call "__switch_to" [ v "prev"; v "nxt" ]) ]
          [];
        ret0 ];
    func "thread_create" ~params:[ "idx"; "entry"; "arg" ]
      ~locals:[ "tcb"; "sp0" ]
      [ assign "tcb" (glob "tcbs" + (v "idx" * int sz));
        stw (v "tcb" + int lay.tcb_entry) (v "entry");
        stw (v "tcb" + int lay.tcb_arg) (v "arg");
        stw (v "tcb" + int lay.tcb_wake_at) (int 0);
        (* craft an initial stack frame __switch_to can pop: r4..r9 + pc *)
        assign "sp0"
          (int Tk_machine.Soc.stacks_base
          + ((v "idx" + int 1) * int Tk_machine.Soc.stack_size)
          - int 16);
        assign "sp0" (v "sp0" - int 28);
        stw (v "sp0" + int 24) (glob "thread_trampoline");
        stw (v "tcb" + int lay.tcb_sp) (v "sp0");
        stw (v "tcb" + int st) (int Layout.st_runnable);
        ret (v "tcb") ];
    func "thread_exit" ~locals:[ "cur" ]
      [ assign "cur" (ldw (glob "current"));
        stw (v "cur" + int st) (int Layout.st_free);
        expr (call "schedule" []);
        forever [ Ksrc_util.wfi ] ] ]

let frags lay = [ switch_frag lay; trampoline_frag lay ]

let data (lay : Layout.t) : Asm.datum list =
  let tcbs_bytes = Stdlib.( * ) Layout.nthreads lay.tcb_size in
  [ Asm.data "tcbs" tcbs_bytes; Asm.data "current" 4 ]
