(** Helpers shared by the minikern IR sources. *)

open Tk_isa
module Ir = Tk_kcc.Ir
open Tk_isa.Types

(** [svc_code code n] — inline asm: [mov r0, #code; svc #n]. Clobbers r0,
    so only use as a statement (never mid-expression). *)
let svc_code code n =
  Ir.Asm [ Asm.Ins (at (Dp (MOV, false, 0, 0, Imm code))); Asm.Ins (at (Svc n)) ]

(** [svc n] — inline asm: [svc #n]. *)
let svc n = Ir.Asm [ Asm.Ins (at (Svc n)) ]

(** [phase_mark id] — benchmark phase-boundary hypercall. *)
let phase_mark id = svc_code id Hyper.phase_mark

let cpsid = Ir.Asm [ Asm.Ins (at (Cps false)) ]
let cpsie = Ir.Asm [ Asm.Ins (at (Cps true)) ]
let wfi = Ir.Asm [ Asm.Ins (at Wfi) ]

(** TCB address of kthread slot [i] (guest expression). *)
let tcb_of_slot (lay : Layout.t) i =
  let off = i * lay.tcb_size in
  Ir.(glob "tcbs" + int off)

(** Field access shorthands. *)
let fld base off = Ir.(ldw (base + int off))

let set_fld base off value = Ir.(stw (base + int off) value)
