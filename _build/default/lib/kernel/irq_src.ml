(** Interrupt handling: descriptors, registration, dispatch, threaded IRQ.

    [irq_entry] (assembly) is the ISA-specific early stage: it saves the
    caller-saved state, acknowledges the GIC and calls the ISA-neutral
    [generic_handle_irq] — exactly the boundary the paper draws: under
    ARK the early stage is {e emulated} (it is v7m-specific there) and
    translation starts at [generic_handle_irq] (§4.2). Hard handlers may
    return IRQ_WAKE_THREAD to kick their threaded handler, which runs in
    a kernel daemon ([irq_thread]) — per-IRQ DBT contexts under ARK. *)

open Tk_isa
open Tk_isa.Types
open Tk_kcc
open Ir

let gic = Tk_machine.Soc.gic_base
let gic_enable_set = Stdlib.( + ) gic Tk_machine.Intc.enable_set_off
let gic_iar = Stdlib.( + ) gic Tk_machine.Intc.iar_off
let gic_eoi = Stdlib.( + ) gic Tk_machine.Intc.eoi_off
let lo16 x = Stdlib.( land ) x 0xFFFF
let hi16 x = Stdlib.( land ) (Stdlib.( lsr ) x 16) 0xFFFF

(* The hardware IRQ entry stub the native interpreter vectors to. *)
let irq_entry_frag : Asm.fragment =
  let i op = Asm.Ins (at op) in
  { Asm.name = "irq_entry";
    items =
      [ i (Stm (sp, true, [ 0; 1; 2; 3; 4; 5; 12; lr ]));
        i (Movw (4, lo16 gic_iar));
        i (Movt (4, hi16 gic_iar));
        i (Mem { ld = true; size = Word; rt = 0; rn = 4; off = Oimm 0;
                 idx = Offset });
        (* spurious? (1023) *)
        i (Movw (5, 1023));
        i (Dp (CMP, false, 0, 0, Reg 5));
        Asm.Bcc (EQ, ".Lirq_out");
        i (Dp (MOV, false, 5, 0, Reg 0));
        Asm.Call "generic_handle_irq";
        (* EOI *)
        i (Movw (4, lo16 gic_eoi));
        i (Movt (4, hi16 gic_eoi));
        i (Mem { ld = false; size = Word; rt = 5; rn = 4; off = Oimm 0;
                 idx = Offset });
        Asm.Label ".Lirq_out";
        i (Ldm (sp, true, [ 0; 1; 2; 3; 4; 5; 12; lr ]));
        i Irq_ret ] }

let funcs (lay : Layout.t) : Ir.func list =
  let dsz = lay.irqd_size in
  [ func "request_irq" ~params:[ "line"; "handler"; "thread_fn"; "arg" ]
      ~locals:[ "d"; "slot"; "tcb" ]
      [ assign "d" (glob "irq_desc" + (v "line" * int dsz));
        stw (v "d" + int lay.irqd_handler) (v "handler");
        stw (v "d" + int lay.irqd_thread_fn) (v "thread_fn");
        stw (v "d" + int lay.irqd_arg) (v "arg");
        stw (v "d" + int lay.irqd_thread_flag) (int 0);
        if_ (v "thread_fn" != int 0)
          [ assign "slot" (ldw (glob "next_irq_thread"));
            stw (glob "next_irq_thread") (v "slot" + int 1);
            assign "tcb"
              (call "thread_create" [ v "slot"; glob "irq_thread"; v "d" ]);
            stw (v "d" + int lay.irqd_thread_tcb) (v "tcb") ]
          [ stw (v "d" + int lay.irqd_thread_tcb) (int 0) ];
        (* unmask at the interrupt controller *)
        stw (int gic_enable_set) (v "line");
        ret (int 0) ];
    func "generic_handle_irq" ~params:[ "line" ] ~locals:[ "d"; "h"; "r" ]
      [ assign "d" (glob "irq_desc" + (v "line" * int dsz));
        assign "h" (ldw (v "d" + int lay.irqd_handler));
        if_ (v "h" == int 0) [ ret0 ] [];
        assign "r" (callptr (v "h") [ v "line"; ldw (v "d" + int lay.irqd_arg) ]);
        if_ (v "r" == int Layout.irq_wake_thread)
          [ stw (v "d" + int lay.irqd_thread_flag) (int 1);
            expr (call "try_wake" [ ldw (v "d" + int lay.irqd_thread_tcb) ]) ]
          [];
        ret0 ];
    (* threaded-IRQ daemon main *)
    func "irq_thread" ~params:[ "d" ] ~locals:[ "line" ]
      [ forever
          [ if_ (ldw (v "d" + int lay.irqd_thread_flag) != int 0)
              [ stw (v "d" + int lay.irqd_thread_flag) (int 0);
                assign "line" ((v "d" - glob "irq_desc") / int dsz);
                expr
                  (callptr
                     (ldw (v "d" + int lay.irqd_thread_fn))
                     [ v "line"; ldw (v "d" + int lay.irqd_arg) ]) ]
              [ stw
                  (ldw (v "d" + int lay.irqd_thread_tcb) + int lay.tcb_state)
                  (int Layout.st_blocked);
                expr (call "schedule" []) ] ] ] ]

let frags (_lay : Layout.t) = [ irq_entry_frag ]

let data (lay : Layout.t) : Asm.datum list =
  [ Asm.data "irq_desc" (Stdlib.( * ) Tk_machine.Soc.nlines lay.irqd_size);
    Asm.data "next_irq_thread" 4 ]
