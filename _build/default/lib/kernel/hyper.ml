(** Guest hypercall numbers (V7A [SVC] immediates).

    The simulation equivalent of "talking to the platform": ending a
    shim call, powering the platform off, console output, phase markers
    for the benchmarks. These are {e native-side} conveniences; none of
    them exists on the ARK side (translated code never executes SVC —
    the host SVCs in the code cache belong to the DBT engine). *)

let exit_call = 0  (** return from an OCaml-initiated guest call *)

let platform_off = 1  (** suspend complete: power everything down *)

let console_putc = 2  (** r0 = character (guest printk backend) *)

let phase_mark = 3  (** r0 = phase id: benchmark boundary *)

let warn_hit = 4  (** r0 = code; kernel WARN() — cold path marker *)

let panic = 5  (** unrecoverable guest error *)

(** Phase ids for [phase_mark]. *)
let ph_suspend_begin = 1

let ph_suspend_end = 2
let ph_resume_begin = 3
let ph_resume_end = 4
let ph_dev_mark = 100  (** + device index * 10 + (0 begin / 1 end) *)
