(** Timekeeping: jiffies, delays, sleeps, kernel timers.

    Natively, [udelay]/[ktime_get] busy-read the CPU hardware timer, the
    periodic tick IRQ advances [jiffies] and [run_local_timers] expires
    timers and wakes sleepers — all executed by the A9. Under ARK,
    [udelay]/[msleep]/[ktime_get]/[jiffies] are {e emulated} against the
    peripheral core's private timer (§4.6); only [run_local_timers] (an
    upcall) and [add_timer]/[del_timer] (stateful list surgery) are
    translated. *)

open Tk_isa
open Tk_kcc
open Ir

let count_addr = Tk_machine.Soc.cpu_timer_base  (* COUNT_LO register *)
let tick_period_addr = Stdlib.( + ) Tk_machine.Soc.cpu_timer_base 0x08

(* jiffies advanced per tick; sim jiffy is Layout.jiffy_ns *)
let jiffies_per_ms = Layout.jiffies_per_ms

let funcs (lay : Layout.t) : Ir.func list =
  [ (* busy-wait: poll the free-running ns counter *)
    func "udelay" ~params:[ "us" ] ~locals:[ "target" ]
      [ assign "target" (ldw (int count_addr) + (v "us" * int 1000));
        while_ (((ldw (int count_addr) - v "target") land int 0x80000000)
               != int 0)
          [];
        ret0 ];
    func "ktime_get" [ ret (ldw (int count_addr)) ];
    func "msleep" ~params:[ "ms" ] ~locals:[ "cur" ]
      [ expr (call "spin_lock" [ int 0 ]);
        assign "cur" (ldw (glob "current"));
        stw
          (v "cur" + int lay.tcb_wake_at)
          (ldw (glob "jiffies") + (v "ms" * int jiffies_per_ms) + int 1);
        stw (v "cur" + int lay.tcb_state) (int Layout.st_blocked);
        expr (call "spin_unlock" [ int 0 ]);
        expr (call "schedule" []);
        ret0 ];
    (* wake expired sleepers, run expired timer callbacks *)
    func "run_local_timers"
      ~locals:[ "j"; "i"; "t"; "w"; "prev"; "tm"; "nxt" ]
      [ assign "j" (ldw (glob "jiffies"));
        assign "i" (int 0);
        while_ (v "i" < int Layout.nthreads)
          [ assign "t" (glob "tcbs" + (v "i" * int lay.tcb_size));
            if_
              (ldw (v "t" + int lay.tcb_state) == int Layout.st_blocked)
              [ assign "w" (ldw (v "t" + int lay.tcb_wake_at));
                if_ (v "w" != int 0)
                  [ if_
                      (((v "j" - v "w") land int 0x80000000) == int 0)
                      [ stw (v "t" + int lay.tcb_state)
                          (int Layout.st_runnable);
                        stw (v "t" + int lay.tcb_wake_at) (int 0) ]
                      [] ]
                  [] ]
              [];
            assign "i" (v "i" + int 1) ];
        (* kernel timers *)
        assign "prev" (int 0);
        assign "tm" (ldw (glob "timer_head"));
        while_ (v "tm" != int 0)
          [ assign "nxt" (ldw (v "tm" + int lay.tm_next));
            if_
              (((v "j" - ldw (v "tm" + int lay.tm_expires))
               land int 0x80000000)
              == int 0)
              [ if_ (v "prev" == int 0)
                  [ stw (glob "timer_head") (v "nxt") ]
                  [ stw (v "prev" + int lay.tm_next) (v "nxt") ];
                expr
                  (callptr
                     (ldw (v "tm" + int lay.tm_fn))
                     [ ldw (v "tm" + int lay.tm_arg) ]) ]
              [ assign "prev" (v "tm") ];
            assign "tm" (v "nxt") ];
        ret0 ];
    func "add_timer" ~params:[ "tm" ]
      [ expr (call "spin_lock" [ int 0 ]);
        stw (v "tm" + int lay.tm_next) (ldw (glob "timer_head"));
        stw (glob "timer_head") (v "tm");
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    func "del_timer" ~params:[ "tm" ] ~locals:[ "prev"; "cur" ]
      [ expr (call "spin_lock" [ int 0 ]);
        assign "prev" (int 0);
        assign "cur" (ldw (glob "timer_head"));
        while_ (v "cur" != int 0)
          [ if_ (v "cur" == v "tm")
              [ if_ (v "prev" == int 0)
                  [ stw (glob "timer_head") (ldw (v "cur" + int lay.tm_next)) ]
                  [ stw (v "prev" + int lay.tm_next)
                      (ldw (v "cur" + int lay.tm_next)) ];
                Break ]
              [];
            assign "prev" (v "cur");
            assign "cur" (ldw (v "cur" + int lay.tm_next)) ];
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    (* hard IRQ handler of the CPU tick timer *)
    func "tick_handler" ~params:[ "line"; "arg" ]
      [ stw (glob "jiffies") (ldw (glob "jiffies") + int 1);
        expr (call "run_local_timers" []);
        ret (int Layout.irq_handled) ] ]

let data (_lay : Layout.t) : Asm.datum list =
  [ Asm.data "jiffies" 4; Asm.data "timer_head" 4 ]
