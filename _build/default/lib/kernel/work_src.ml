(** Deferred work: workqueues, tasklets/softirq, async PM helpers.

    All of this is {e translated} under ARK — deferred work is stateful
    (work queued on the CPU before handoff must run on the peripheral
    core, §4.3). ARK's involvement is limited to (a) upcalling the daemon
    main functions ([worker_thread], [do_softirq]) from dedicated DBT
    contexts and (b) hooking [queue_work_on]/[tasklet_schedule]/
    [async_schedule] to mark the right context runnable. *)

open Tk_isa
open Tk_kcc
open Ir

let funcs (lay : Layout.t) : Ir.func list =
  let ws = lay.work_size in
  let af_fn = ws and af_arg = Stdlib.( + ) ws 4
  and af_use = Stdlib.( + ) ws 8 in
  let aentry_size = Stdlib.( + ) ws 12 in
  [ func "queue_work_on" ~params:[ "cpu"; "wq"; "work" ]
      [ expr (call "spin_lock" [ int 0 ]);
        if_ (ldw (v "work" + int lay.work_pending) == int 0)
          [ stw (v "work" + int lay.work_pending) (int 1);
            stw (v "work" + int lay.work_next) (int 0);
            if_ (ldw (v "wq" + int lay.wq_head) == int 0)
              [ stw (v "wq" + int lay.wq_head) (v "work") ]
              [ stw (ldw (v "wq" + int lay.wq_tail) + int lay.work_next)
                  (v "work") ];
            stw (v "wq" + int lay.wq_tail) (v "work");
            expr (call "try_wake" [ ldw (v "wq" + int lay.wq_worker) ]) ]
          [];
        expr (call "spin_unlock" [ int 0 ]);
        ret (int 1) ];
    (* kworker daemon main: drain, then block until new work *)
    func "worker_thread" ~params:[ "wq" ] ~locals:[ "work"; "fn" ]
      [ forever
          [ expr (call "spin_lock" [ int 0 ]);
            assign "work" (ldw (v "wq" + int lay.wq_head));
            if_ (v "work" != int 0)
              [ stw (v "wq" + int lay.wq_head)
                  (ldw (v "work" + int lay.work_next));
                if_ (ldw (v "wq" + int lay.wq_head) == int 0)
                  [ stw (v "wq" + int lay.wq_tail) (int 0) ]
                  [];
                stw (v "work" + int lay.work_pending) (int 0);
                expr (call "spin_unlock" [ int 0 ]);
                assign "fn" (ldw (v "work" + int lay.work_fn));
                expr (callptr (v "fn") [ v "work" ]) ]
              [ expr (call "spin_unlock" [ int 0 ]);
                stw
                  (ldw (v "wq" + int lay.wq_worker) + int lay.tcb_state)
                  (int Layout.st_blocked);
                expr (call "schedule" []) ] ] ];
    func "cancel_work" ~params:[ "wq"; "work" ] ~locals:[ "prev"; "cur" ]
      [ expr (call "spin_lock" [ int 0 ]);
        if_ (ldw (v "work" + int lay.work_pending) != int 0)
          [ assign "prev" (int 0);
            assign "cur" (ldw (v "wq" + int lay.wq_head));
            while_ (v "cur" != int 0)
              [ if_ (v "cur" == v "work")
                  [ if_ (v "prev" == int 0)
                      [ stw (v "wq" + int lay.wq_head)
                          (ldw (v "cur" + int lay.work_next)) ]
                      [ stw (v "prev" + int lay.work_next)
                          (ldw (v "cur" + int lay.work_next)) ];
                    if_ (ldw (v "wq" + int lay.wq_tail) == v "cur")
                      [ stw (v "wq" + int lay.wq_tail) (v "prev") ]
                      [];
                    Break ]
                  [];
                assign "prev" (v "cur");
                assign "cur" (ldw (v "cur" + int lay.work_next)) ];
            stw (v "work" + int lay.work_pending) (int 0) ]
          [];
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    func "flush_workqueue" ~params:[ "wq" ]
      [ while_ (ldw (v "wq" + int lay.wq_head) != int 0)
          [ expr (call "schedule" []) ];
        ret0 ];
    (* ---- tasklets / softirq ---- *)
    func "tasklet_schedule" ~params:[ "t" ]
      [ expr (call "spin_lock" [ int 0 ]);
        if_ (ldw (v "t" + int lay.tl_state) == int 0)
          [ stw (v "t" + int lay.tl_state) (int 1);
            stw (v "t" + int lay.tl_next) (ldw (glob "tasklet_head"));
            stw (glob "tasklet_head") (v "t");
            stw (glob "softirq_pending") (int 1);
            expr (call "try_wake" [ Ksrc_util.tcb_of_slot lay Layout.thr_softirqd ]) ]
          [];
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    func "do_softirq" ~locals:[ "t" ]
      [ while_ (int 1)
          [ expr (call "spin_lock" [ int 0 ]);
            assign "t" (ldw (glob "tasklet_head"));
            if_ (v "t" == int 0)
              [ stw (glob "softirq_pending") (int 0);
                expr (call "spin_unlock" [ int 0 ]);
                Break ]
              [];
            stw (glob "tasklet_head") (ldw (v "t" + int lay.tl_next));
            stw (v "t" + int lay.tl_state) (int 0);
            expr (call "spin_unlock" [ int 0 ]);
            expr (callptr (ldw (v "t" + int lay.tl_fn))
                    [ ldw (v "t" + int lay.tl_arg) ]) ];
        ret0 ];
    func "softirqd_main" ~params:[ "me" ]
      [ forever
          [ if_ (ldw (glob "softirq_pending") != int 0)
              [ expr (call "do_softirq" []) ]
              [ stw (v "me" + int lay.tcb_state) (int Layout.st_blocked);
                expr (call "schedule" []) ] ] ];
    (* ---- async (PM core's async_schedule) ---- *)
    func "async_schedule" ~params:[ "fn"; "arg" ] ~locals:[ "i"; "e" ]
      [ expr (call "spin_lock" [ int 0 ]);
        assign "e" (int 0);
        assign "i" (int 0);
        while_ (v "i" < int Layout.n_async_work)
          [ if_ (ldw (glob "async_pool" + (v "i" * int aentry_size)
                      + int af_use)
                == int 0)
              [ assign "e" (glob "async_pool" + (v "i" * int aentry_size));
                Break ]
              [];
            assign "i" (v "i" + int 1) ];
        if_ (v "e" == int 0)
          [ (* pool exhausted: run synchronously *)
            expr (call "spin_unlock" [ int 0 ]);
            expr (callptr (v "fn") [ v "arg" ]);
            ret (int 0) ]
          [];
        stw (v "e" + int af_use) (int 1);
        stw (v "e" + int af_fn) (v "fn");
        stw (v "e" + int af_arg) (v "arg");
        stw (v "e" + int lay.work_fn) (glob "async_run");
        stw (v "e" + int lay.work_arg) (v "e");
        stw (glob "async_pending") (ldw (glob "async_pending") + int 1);
        expr (call "spin_unlock" [ int 0 ]);
        expr (call "queue_work_on" [ int 0; glob "pm_wq"; v "e" ]);
        ret (int 1) ];
    func "async_run" ~params:[ "work" ]
      [ expr (callptr (ldw (v "work" + int af_fn))
                [ ldw (v "work" + int af_arg) ]);
        expr (call "spin_lock" [ int 0 ]);
        stw (glob "async_pending") (ldw (glob "async_pending") - int 1);
        stw (v "work" + int af_use) (int 0);
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    func "async_synchronize"
      [ while_ (ldw (glob "async_pending") != int 0)
          [ expr (call "schedule" []) ];
        ret0 ] ]

let data (lay : Layout.t) : Asm.datum list =
  let aentry_size = Stdlib.( + ) lay.work_size 12 in
  [ Asm.data "system_wq" lay.wq_size;
    Asm.data "pm_wq" lay.wq_size;
    Asm.data "wifi_wq" lay.wq_size;
    Asm.data "tasklet_head" 4;
    Asm.data "softirq_pending" 4;
    Asm.data "async_pool" (Stdlib.( * ) Layout.n_async_work aentry_size);
    Asm.data "async_pending" 4 ]
