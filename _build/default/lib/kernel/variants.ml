(** Kernel "version" variants.

    Linux's internal structures change constantly (Figure 3: hundreds of
    functions/types referenced by device suspend/resume change ABI
    between releases — e.g. the mutex reference count going int->long in
    v4.10 broke mutex's binary interface, §4.4). We model that by
    building minikern with permuted field offsets and struct sizes per
    "release". A wide-interface offload (struct sharing across ISAs)
    breaks on every one of these; ARK, depending only on {!Kabi}, runs
    them all unmodified — the build-once-run-many experiment (§7.2). *)

let v3_16 : Layout.t =
  { Layout.v4_4 with
    version = "v3.16";
    (* TCB fields in a different order *)
    tcb_size = 32; tcb_sp = 0; tcb_state = 4; tcb_entry = 8; tcb_arg = 12;
    tcb_wake_at = 16;
    (* work_struct led with the callback, as older kernels did *)
    work_size = 16; work_fn = 0; work_arg = 4; work_next = 8;
    work_pending = 12;
    wq_size = 16; wq_worker = 0; wq_head = 4; wq_tail = 8;
    irqd_size = 24; irqd_arg = 0; irqd_handler = 4; irqd_thread_fn = 8;
    irqd_thread_flag = 12; irqd_thread_tcb = 16;
    dev_size = 36; dev_suspend = 0; dev_resume = 4; dev_mmio = 8;
    dev_irq = 12; dev_flags = 16; dev_state = 20; dev_priv = 24 }

let v4_9 : Layout.t =
  { Layout.v4_4 with
    version = "v4.9";
    tm_size = 20; tm_expires = 0; tm_next = 4; tm_fn = 8; tm_arg = 12;
    tl_size = 20; tl_fn = 0; tl_next = 4; tl_arg = 8; tl_state = 12;
    dev_size = 40; dev_priv = 32 }

let v4_20 : Layout.t =
  { Layout.v4_4 with
    version = "v4.20";
    (* the v4.10 mutex ABI break: count grows and moves *)
    mtx_size = 12; mtx_owner = 0; mtx_count = 4;
    sem_size = 8; sem_count = 4;
    cmp_size = 8; cmp_done = 4;
    tcb_size = 40; tcb_state = 0; tcb_sp = 8; tcb_wake_at = 16;
    tcb_entry = 24; tcb_arg = 32;
    work_size = 20; work_next = 0; work_fn = 8; work_arg = 12;
    work_pending = 16;
    irqd_size = 28; irqd_handler = 4; irqd_thread_fn = 12; irqd_arg = 16;
    irqd_thread_tcb = 20; irqd_thread_flag = 24 }

(** All modelled releases, oldest first. *)
let all = [ v3_16; Layout.v4_4; v4_9; v4_20 ]

(** [struct_fields lay] — the "types" view used by the Figure 3 bench:
    name -> representative field offsets. *)
let struct_fields (lay : Layout.t) =
  [ ("task_struct", [ lay.tcb_size; lay.tcb_state; lay.tcb_sp;
                      lay.tcb_wake_at; lay.tcb_entry; lay.tcb_arg ]);
    ("work_struct", [ lay.work_size; lay.work_next; lay.work_fn;
                      lay.work_arg; lay.work_pending ]);
    ("workqueue_struct", [ lay.wq_size; lay.wq_head; lay.wq_tail;
                           lay.wq_worker ]);
    ("tasklet_struct", [ lay.tl_size; lay.tl_next; lay.tl_fn; lay.tl_arg;
                         lay.tl_state ]);
    ("timer_list", [ lay.tm_size; lay.tm_next; lay.tm_expires; lay.tm_fn;
                     lay.tm_arg ]);
    ("irq_desc", [ lay.irqd_size; lay.irqd_handler; lay.irqd_thread_fn;
                   lay.irqd_arg; lay.irqd_thread_tcb; lay.irqd_thread_flag ]);
    ("mutex", [ lay.mtx_size; lay.mtx_count; lay.mtx_owner ]);
    ("semaphore", [ lay.sem_size; lay.sem_count ]);
    ("completion", [ lay.cmp_size; lay.cmp_done ]);
    ("device", [ lay.dev_size; lay.dev_mmio; lay.dev_irq; lay.dev_suspend;
                 lay.dev_resume; lay.dev_flags; lay.dev_state; lay.dev_priv ])
  ]
