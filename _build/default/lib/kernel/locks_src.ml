(** Locking primitives.

    Spinlocks disable interrupts (UP kernel) with a nesting depth —
    core-specific, so ARK {e emulates} them by pausing interrupt dispatch
    (§4.4). Sleepable locks (mutex, semaphore) and completions are
    {e stateful}: the clock framework may hold a mutex across the
    offload, so their operations are translated; their slow paths sleep
    via [msleep]-polling, which reaches ARK's emulated sleep. *)

open Tk_isa
open Tk_kcc
open Ir

let funcs (lay : Layout.t) : Ir.func list =
  [ func "spin_lock" ~params:[ "lock" ]
      [ Ksrc_util.cpsid;
        stw (glob "spin_depth") (ldw (glob "spin_depth") + int 1);
        ret0 ];
    func "spin_unlock" ~params:[ "lock" ]
      [ stw (glob "spin_depth") (ldw (glob "spin_depth") - int 1);
        if_ (ldw (glob "spin_depth") == int 0) [ Ksrc_util.cpsie ] [];
        ret0 ];
    (* mutex: fast path takes it under the spinlock; contention sleeps
       and retries (wait_event-style) *)
    func "mutex_lock" ~params:[ "m" ] ~locals:[ "got" ]
      [ assign "got" (int 0);
        while_ (v "got" == int 0)
          [ expr (call "spin_lock" [ int 0 ]);
            if_ (ldw (v "m" + int lay.mtx_count) == int 0)
              [ stw (v "m" + int lay.mtx_count) (int 1);
                stw (v "m" + int lay.mtx_owner) (ldw (glob "current"));
                assign "got" (int 1);
                expr (call "spin_unlock" [ int 0 ]) ]
              [ expr (call "spin_unlock" [ int 0 ]);
                expr (call "msleep" [ int 1 ]) ] ];
        ret0 ];
    func "mutex_unlock" ~params:[ "m" ]
      [ expr (call "spin_lock" [ int 0 ]);
        stw (v "m" + int lay.mtx_count) (int 0);
        stw (v "m" + int lay.mtx_owner) (int 0);
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    func "down" ~params:[ "sem" ] ~locals:[ "got" ]
      [ assign "got" (int 0);
        while_ (v "got" == int 0)
          [ expr (call "spin_lock" [ int 0 ]);
            if_ (ldw (v "sem" + int lay.sem_count) > int 0)
              [ stw (v "sem" + int lay.sem_count)
                  (ldw (v "sem" + int lay.sem_count) - int 1);
                assign "got" (int 1);
                expr (call "spin_unlock" [ int 0 ]) ]
              [ expr (call "spin_unlock" [ int 0 ]);
                expr (call "msleep" [ int 1 ]) ] ];
        ret0 ];
    func "up" ~params:[ "sem" ]
      [ expr (call "spin_lock" [ int 0 ]);
        stw (v "sem" + int lay.sem_count)
          (ldw (v "sem" + int lay.sem_count) + int 1);
        expr (call "spin_unlock" [ int 0 ]);
        ret0 ];
    func "init_completion" ~params:[ "c" ]
      [ stw (v "c" + int lay.cmp_done) (int 0); ret0 ];
    func "complete" ~params:[ "c" ]
      [ stw (v "c" + int lay.cmp_done) (int 1); ret0 ];
    (* sleep-poll wait: the IRQ side calls [complete]; we re-check per
       jiffy — under ARK this is an emulated sleep between checks *)
    func "wait_for_completion" ~params:[ "c" ]
      [ while_ (ldw (v "c" + int lay.cmp_done) == int 0)
          [ expr (call "msleep" [ int 1 ]) ];
        stw (v "c" + int lay.cmp_done) (int 0);
        ret0 ];
    (* bounded variant: returns 1 on completion, 0 on timeout *)
    func "wait_for_completion_timeout" ~params:[ "c"; "ms" ]
      ~locals:[ "left" ]
      [ assign "left" (v "ms");
        while_ (ldw (v "c" + int lay.cmp_done) == int 0)
          [ if_ (v "left" == int 0) [ ret (int 0) ] [];
            expr (call "msleep" [ int 1 ]);
            assign "left" (v "left" - int 1) ];
        stw (v "c" + int lay.cmp_done) (int 0);
        ret (int 1) ] ]

let data (_lay : Layout.t) : Asm.datum list = [ Asm.data "spin_depth" 4 ]
