(** Guest kernel data-structure layout.

    Field offsets of minikern's structures. These constants are the
    kernel's {e internal} ABI — the wide, brittle interface the paper
    argues one must NOT build an offload on (§2.3, Figure 3). They are
    shared between the IR sources (this library) and the OCaml-side tests
    that peek at guest memory; ARK ({!Transkernel}) must never import
    them. Kernel "version variants" ({!Variants}) shuffle them to prove
    the point. *)

(* Scale-down: the guest "millisecond" is 100us of simulated time and a
   jiffy is 50us — every sleep, timeout and device latency shrinks by
   the same factor, so busy/idle proportions (what the paper's figures
   are made of) are preserved while a full 9-device suspend/resume stays
   around 2M simulated instructions (DESIGN.md §4.3). *)
let jiffy_ns = 50_000
let ms_ns = 100_000  (* one scaled guest millisecond *)
let jiffies_per_ms = ms_ns / jiffy_ns
let ms_to_jiffies ms = ms * jiffies_per_ms

(** A layout instance — the default matches "v4.4"; variants permute
    fields and sizes the way kernel releases do. *)
type t = {
  version : string;
  (* thread control block *)
  tcb_size : int;
  tcb_state : int;
  tcb_sp : int;
  tcb_wake_at : int;
  tcb_entry : int;
  tcb_arg : int;
  (* work_struct *)
  work_size : int;
  work_next : int;
  work_fn : int;
  work_arg : int;
  work_pending : int;
  (* workqueue_struct *)
  wq_size : int;
  wq_head : int;
  wq_tail : int;
  wq_worker : int;  (** tcb pointer of the kworker daemon *)
  (* tasklet_struct *)
  tl_size : int;
  tl_next : int;
  tl_fn : int;
  tl_arg : int;
  tl_state : int;
  (* timer_list *)
  tm_size : int;
  tm_next : int;
  tm_expires : int;
  tm_fn : int;
  tm_arg : int;
  (* irq_desc *)
  irqd_size : int;
  irqd_handler : int;
  irqd_thread_fn : int;
  irqd_arg : int;
  irqd_thread_tcb : int;
  irqd_thread_flag : int;  (** set when the threaded handler must run *)
  (* mutex *)
  mtx_size : int;
  mtx_count : int;
  mtx_owner : int;
  (* semaphore *)
  sem_size : int;
  sem_count : int;
  (* completion *)
  cmp_size : int;
  cmp_done : int;
  (* device (PM core) *)
  dev_size : int;
  dev_mmio : int;  (** MMIO base of the device *)
  dev_irq : int;  (** platform IRQ line *)
  dev_suspend : int;  (** fn ptr *)
  dev_resume : int;  (** fn ptr *)
  dev_flags : int;  (** bit0 = async suspend *)
  dev_state : int;  (** 1 = on, 0 = suspended (kernel's view) *)
  dev_priv : int;  (** driver-private word *)
}

let v4_4 =
  { version = "v4.4";
    tcb_size = 32; tcb_state = 0; tcb_sp = 4; tcb_wake_at = 8; tcb_entry = 12;
    tcb_arg = 16;
    work_size = 16; work_next = 0; work_fn = 4; work_arg = 8; work_pending = 12;
    wq_size = 16; wq_head = 0; wq_tail = 4; wq_worker = 8;
    tl_size = 16; tl_next = 0; tl_fn = 4; tl_arg = 8; tl_state = 12;
    tm_size = 16; tm_next = 0; tm_expires = 4; tm_fn = 8; tm_arg = 12;
    irqd_size = 20; irqd_handler = 0; irqd_thread_fn = 4; irqd_arg = 8;
    irqd_thread_tcb = 12; irqd_thread_flag = 16;
    mtx_size = 8; mtx_count = 0; mtx_owner = 4;
    sem_size = 4; sem_count = 0;
    cmp_size = 4; cmp_done = 0;
    dev_size = 32; dev_mmio = 0; dev_irq = 4; dev_suspend = 8; dev_resume = 12;
    dev_flags = 16; dev_state = 20; dev_priv = 24 }

(** Thread states. *)
let st_free = 0

let st_runnable = 1
(* IRQ handler return values (Linux irqreturn_t). *)
let st_blocked = 2
let irq_none = 0

let irq_handled = 1
let irq_wake_thread = 2

(** Kthread slots (index into the TCB array and the stack region).
    Slots 8..15 are reserved for ARK DBT contexts. *)
let nthreads = 8

(* boot / syscall thread *)
let thr_main = 0

let thr_softirqd = 1
(* system_wq worker *)
let thr_kworker_sys = 2
(* pm_wq worker *)
let thr_kworker_pm = 3
(* per-driver wq worker (wifi) *)
let thr_kworker_aux = 4
(* threaded-IRQ daemons: 5..7 *)
let thr_irq_first = 5
(* Maximum devices in the PM core's array. *)
let n_irq_threads = 3
(* Static pools. *)
let max_devices = 12
let n_async_work = 8
