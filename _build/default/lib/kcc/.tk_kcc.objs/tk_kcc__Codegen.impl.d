lib/kcc/codegen.ml: Asm Bits Ir List Option Printf String Tk_isa V7a
