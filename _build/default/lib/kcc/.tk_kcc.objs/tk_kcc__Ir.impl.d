lib/kcc/ir.ml: Tk_isa
