(** Intermediate representation for guest kernel code.

    The mini monolithic kernel ("minikern") is authored in this small
    C-like IR and compiled to real V7A machine code by {!Codegen} — the
    stand-in for GCC compiling Linux. The DBT engine therefore operates
    on genuine guest binaries, not on OCaml closures.

    Semantics: all values are 32-bit words; comparisons yield 0/1;
    function calls pass up to 4 arguments in r0-r3 and return in r0 (the
    AAPCS subset the kernel uses). *)

type size = W | B | H

type binop =
  | Add | Sub | Mul | Div
  | And | Or | Xor
  | Shl | Shr  (* logical *) | Sar  (* arithmetic *)
  | Eq | Ne
  | Ltu | Leu | Gtu | Geu  (* unsigned compares *)
  | Lts | Les | Gts | Ges  (* signed compares *)

type expr =
  | Int of int
  | Var of string  (** local variable or parameter *)
  | Glob of string  (** address of a linker symbol *)
  | Bin of binop * expr * expr
  | Not of expr  (** bitwise complement *)
  | Neg of expr
  | Lnot of expr  (** logical not: e = 0 ? 1 : 0 *)
  | Load of size * expr
  | Call of string * expr list
  | Callptr of expr * expr list  (** call through a function pointer *)

type stmt =
  | Assign of string * expr
  | Store of size * expr * expr  (** [Store (sz, addr, value)] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Break
  | Ret of expr option
  | Expr of expr  (** evaluate for side effects (usually a call) *)
  | Asm of Tk_isa.Asm.item list  (** inline assembly escape *)

type func = {
  fname : string;
  params : string list;
  locals : string list;
  body : stmt list;
}

(** [func name ~params ~locals body] declares a function. *)
let func ?(params = []) ?(locals = []) fname body =
  { fname; params; locals; body }

(* ------------------------ authoring DSL ----------------------------- *)

let int n = Int n
let v name = Var name
let glob name = Glob name
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( land ) a b = Bin (And, a, b)
let ( lor ) a b = Bin (Or, a, b)
let ( lxor ) a b = Bin (Xor, a, b)
let ( lsl ) a b = Bin (Shl, a, b)
let ( lsr ) a b = Bin (Shr, a, b)
let ( asr ) a b = Bin (Sar, a, b)
let ( == ) a b = Bin (Eq, a, b)
let ( != ) a b = Bin (Ne, a, b)
let ( < ) a b = Bin (Ltu, a, b)
let ( <= ) a b = Bin (Leu, a, b)
let ( > ) a b = Bin (Gtu, a, b)
let ( >= ) a b = Bin (Geu, a, b)
let slt a b = Bin (Lts, a, b)
let sle a b = Bin (Les, a, b)
let sgt a b = Bin (Gts, a, b)
let sge a b = Bin (Ges, a, b)
let lnot e = Lnot e

(** [bnot e] — bitwise complement. *)
let bnot e = Not e

(** [ldw a] / [ldb a] / [ldh a] — memory loads. *)
let ldw a = Load (W, a)

let ldb a = Load (B, a)
let ldh a = Load (H, a)

let call f args = Call (f, args)
let callptr p args = Callptr (p, args)
let assign name e = Assign (name, e)

(** [stw a v] / [stb a v] / [sth a v] — memory stores. *)
let stw a value = Store (W, a, value)

let stb a value = Store (B, a, value)
let sth a value = Store (H, a, value)

let if_ c t e = If (c, t, e)
let while_ c b = While (c, b)
let ret e = Ret (Some e)
let ret0 = Ret None
let expr e = Expr e

(** [forever body] is an infinite loop (daemon main loops). *)
let forever body = While (Int 1, body)
