(** Code generation: IR -> V7A assembly fragments.

    A deliberately simple compiler whose output resembles -O0/-O1 kernel
    code: locals live in stack slots, expressions evaluate in the
    callee-saved register stack r4..r9, calls follow AAPCS (r0-r3 args,
    r0 result). Peepholes fold immediates into operands, use shifted
    register offsets for array indexing and conditional branches for
    comparisons — producing exactly the operand shapes (rotated
    immediates, [ldr rT, [rn, rm, lsl #k]], dense conditional branches)
    whose translation the paper's Table 3/4 is about.

    r10 and r11 are never allocated: r10 is the guest register the DBT
    designates as the host scratch (chosen as "the least used one in the
    guest binary", §5.2) and r11 is the baseline engine's emulated-state
    base. r12 is a call-clobbered scratch. *)

open Tk_isa
open Tk_isa.Types

exception Codegen_error of string

let cg_err fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

(* expression-stack registers *)
let xreg depth =
  if depth > 5 then cg_err "expression too deep (needs r%d)" (4 + depth)
  else 4 + depth

let saved_regs = [ 4; 5; 6; 7; 8; 9 ]

let cond_of_cmp : Ir.binop -> cond option = function
  | Eq -> Some EQ | Ne -> Some NE
  | Ltu -> Some CC | Leu -> Some LS | Gtu -> Some HI | Geu -> Some CS
  | Lts -> Some LT | Les -> Some LE | Gts -> Some GT | Ges -> Some GE
  | _ -> None

let mem_size_of : Ir.size -> mem_size = function
  | Ir.W -> Word | Ir.B -> Byte | Ir.H -> Half

type ctx = {
  slots : (string * int) list;  (** variable -> stack slot index *)
  frame_words : int;
  mutable label_n : int;
  fname : string;
  mutable out : Asm.item list;  (** reversed *)
  mutable loop_ends : string list;
}

let emit ctx it = ctx.out <- it :: ctx.out
let ins ctx ?cond op = emit ctx (Asm.Ins (at ?cond op))

let fresh_label ctx tag =
  ctx.label_n <- ctx.label_n + 1;
  Printf.sprintf ".L_%s_%s%d" ctx.fname tag ctx.label_n

let slot ctx name =
  match List.assoc_opt name ctx.slots with
  | Some i -> 4 * i
  | None -> cg_err "%s: unknown variable %s" ctx.fname name

(** Materialize constant [n] into register [rd]. *)
let load_const ctx rd n =
  let n = Bits.mask32 n in
  if V7a.imm_ok n then ins ctx (Dp (MOV, false, rd, 0, Imm n))
  else if V7a.imm_ok (Bits.mask32 (lnot n)) then
    ins ctx (Dp (MVN, false, rd, 0, Imm (Bits.mask32 (lnot n))))
  else begin
    ins ctx (Movw (rd, n land 0xFFFF));
    if n lsr 16 <> 0 then ins ctx (Movt (rd, n lsr 16))
  end

(* Fold [e] into an operand2 if it is a small constant or fits a shifted
   register; evaluates into the expression stack otherwise. *)
let rec operand2 ctx depth (e : Ir.expr) : operand2 =
  match e with
  | Ir.Int n when V7a.imm_ok (Bits.mask32 n) -> Imm (Bits.mask32 n)
  | Ir.Bin (Ir.Shl, a, Ir.Int k) when k >= 1 && k <= 31 ->
    eval ctx depth a;
    Sreg (xreg depth, LSL, k)
  | Ir.Bin (Ir.Shr, a, Ir.Int k) when k >= 1 && k <= 31 ->
    eval ctx depth a;
    Sreg (xreg depth, LSR, k)
  | Ir.Bin (Ir.Sar, a, Ir.Int k) when k >= 1 && k <= 31 ->
    eval ctx depth a;
    Sreg (xreg depth, ASR, k)
  | e ->
    eval ctx depth e;
    Reg (xreg depth)

(** Evaluate the address expression of a load/store into a (base, offset)
    addressing mode at [depth]. *)
and address ctx depth (e : Ir.expr) : reg * mem_off =
  match e with
  | Ir.Bin (Ir.Add, a, Ir.Int i) when abs i <= V7a.mem_imm_max ->
    eval ctx depth a;
    (xreg depth, Oimm i)
  | Ir.Bin (Ir.Sub, a, Ir.Int i) when abs i <= V7a.mem_imm_max ->
    eval ctx depth a;
    (xreg depth, Oimm (-i))
  | Ir.Bin (Ir.Add, a, Ir.Bin (Ir.Shl, b, Ir.Int k)) when k >= 0 && k <= 31 ->
    eval ctx depth a;
    eval ctx (depth + 1) b;
    (xreg depth, Oreg (xreg (depth + 1), LSL, k))
  | Ir.Bin (Ir.Add, a, b) ->
    eval ctx depth a;
    eval ctx (depth + 1) b;
    (xreg depth, Oreg (xreg (depth + 1), LSL, 0))
  | e ->
    eval ctx depth e;
    (xreg depth, Oimm 0)

(** [eval ctx depth e] leaves the value of [e] in [xreg depth]. *)
and eval ctx depth (e : Ir.expr) : unit =
  let rt = xreg depth in
  match e with
  | Ir.Int n -> load_const ctx rt n
  | Ir.Var name -> ins ctx (Mem { ld = true; size = Word; rt; rn = sp;
                                  off = Oimm (slot ctx name); idx = Offset })
  | Ir.Glob g -> emit ctx (Asm.Adr (rt, g))
  | Ir.Not e ->
    let op2 = operand2 ctx depth e in
    ins ctx (Dp (MVN, false, rt, 0, op2))
  | Ir.Neg e ->
    eval ctx depth e;
    ins ctx (Dp (RSB, false, rt, rt, Imm 0))
  | Ir.Lnot e ->
    eval ctx depth e;
    ins ctx (Dp (CMP, false, 0, rt, Imm 0));
    ins ctx (Dp (MOV, false, rt, 0, Imm 0));
    ins ctx ~cond:EQ (Dp (MOV, false, rt, 0, Imm 1))
  | Ir.Bin (op, a, b) ->
    (match cond_of_cmp op with
    | Some c ->
      eval ctx depth a;
      let op2 = operand2 ctx (depth + 1) b in
      ins ctx (Dp (CMP, false, 0, rt, op2));
      ins ctx (Dp (MOV, false, rt, 0, Imm 0));
      ins ctx ~cond:c (Dp (MOV, false, rt, 0, Imm 1))
    | None ->
      (match op with
      | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor ->
        let dp = match op with
          | Ir.Add -> ADD | Ir.Sub -> SUB | Ir.And -> AND
          | Ir.Or -> ORR | Ir.Xor -> EOR | _ -> assert false
        in
        eval ctx depth a;
        let op2 = operand2 ctx (depth + 1) b in
        ins ctx (Dp (dp, false, rt, rt, op2))
      | Ir.Mul ->
        eval ctx depth a;
        eval ctx (depth + 1) b;
        ins ctx (Mul (false, rt, rt, xreg (depth + 1)))
      | Ir.Div ->
        eval ctx depth a;
        eval ctx (depth + 1) b;
        ins ctx (Udiv (rt, rt, xreg (depth + 1)))
      | Ir.Shl | Ir.Shr | Ir.Sar ->
        let k = match op with
          | Ir.Shl -> LSL | Ir.Shr -> LSR | Ir.Sar -> ASR | _ -> assert false
        in
        (match b with
        | Ir.Int n when n >= 0 && n <= 31 ->
          eval ctx depth a;
          if n = 0 then () else ins ctx (Dp (MOV, false, rt, 0, Sreg (rt, k, n)))
        | _ ->
          eval ctx depth a;
          eval ctx (depth + 1) b;
          ins ctx (Dp (MOV, false, rt, 0, Sregreg (rt, k, xreg (depth + 1)))))
      | Ir.Eq | Ir.Ne | Ir.Ltu | Ir.Leu | Ir.Gtu | Ir.Geu
      | Ir.Lts | Ir.Les | Ir.Gts | Ir.Ges -> assert false))
  | Ir.Load (sz, ea) ->
    let rn, off = address ctx depth ea in
    ins ctx (Mem { ld = true; size = mem_size_of sz; rt; rn; off; idx = Offset })
  | Ir.Call (f, args) ->
    eval_call ctx depth (`Direct f) args
  | Ir.Callptr (p, args) ->
    eval ctx depth p;
    eval_call ctx (depth + 1) (`Indirect rt) args

and eval_call ctx depth target args =
  if List.length args > 4 then cg_err "%s: more than 4 call arguments" ctx.fname;
  List.iteri (fun i a -> eval ctx (depth + i) a) args;
  List.iteri
    (fun i _ -> ins ctx (Dp (MOV, false, i, 0, Reg (xreg (depth + i)))))
    args;
  (match target with
  | `Direct f -> emit ctx (Asm.Call f)
  | `Indirect r -> ins ctx (Blx_r r));
  (* result lands where the caller expects: one slot below [depth] for
     indirect calls (the pointer occupied a slot), at [depth] otherwise *)
  let rres = match target with `Direct _ -> xreg depth | `Indirect r -> r in
  ins ctx (Dp (MOV, false, rres, 0, Reg 0))

(* ------------------------- statements -------------------------------- *)

let rec branch_if_false ctx (e : Ir.expr) label =
  (* conditional branch peephole: compare-and-branch without
     materializing the 0/1 value *)
  match e with
  | Ir.Int 0 -> emit ctx (Asm.Jmp label)
  | Ir.Int _ -> ()
  | Ir.Bin (op, a, b) when cond_of_cmp op <> None ->
    let c = Option.get (cond_of_cmp op) in
    eval ctx 0 a;
    let op2 = operand2 ctx 1 b in
    ins ctx (Dp (CMP, false, 0, xreg 0, op2));
    emit ctx (Asm.Bcc (negate_cond c, label))
  | Ir.Lnot e ->
    branch_if_true ctx e label
  | e ->
    eval ctx 0 e;
    ins ctx (Dp (CMP, false, 0, xreg 0, Imm 0));
    emit ctx (Asm.Bcc (EQ, label))

and branch_if_true ctx (e : Ir.expr) label =
  match e with
  | Ir.Int 0 -> ()
  | Ir.Int _ -> emit ctx (Asm.Jmp label)
  | Ir.Bin (op, a, b) when cond_of_cmp op <> None ->
    let c = Option.get (cond_of_cmp op) in
    eval ctx 0 a;
    let op2 = operand2 ctx 1 b in
    ins ctx (Dp (CMP, false, 0, xreg 0, op2));
    emit ctx (Asm.Bcc (c, label))
  | Ir.Lnot e -> branch_if_false ctx e label
  | e ->
    eval ctx 0 e;
    ins ctx (Dp (CMP, false, 0, xreg 0, Imm 0));
    emit ctx (Asm.Bcc (NE, label))

let rec stmt ctx (s : Ir.stmt) =
  match s with
  | Ir.Assign (name, e) ->
    eval ctx 0 e;
    ins ctx (Mem { ld = false; size = Word; rt = xreg 0; rn = sp;
                   off = Oimm (slot ctx name); idx = Offset })
  | Ir.Store (sz, ea, ev) ->
    let rn, off = address ctx 0 ea in
    ignore rn;
    (* keep address operands live below the value *)
    let vdepth = match off with Oreg _ -> 2 | Oimm _ -> 1 in
    eval ctx vdepth ev;
    ins ctx (Mem { ld = false; size = mem_size_of sz; rt = xreg vdepth;
                   rn = xreg 0; off; idx = Offset })
  | Ir.If (c, t, e) ->
    let lelse = fresh_label ctx "else" in
    let lend = fresh_label ctx "endif" in
    branch_if_false ctx c lelse;
    List.iter (stmt ctx) t;
    if e <> [] then emit ctx (Asm.Jmp lend);
    emit ctx (Asm.Label lelse);
    List.iter (stmt ctx) e;
    if e <> [] then emit ctx (Asm.Label lend)
  | Ir.While (c, body) ->
    let lloop = fresh_label ctx "loop" in
    let lend = fresh_label ctx "endloop" in
    emit ctx (Asm.Label lloop);
    branch_if_false ctx c lend;
    ctx.loop_ends <- lend :: ctx.loop_ends;
    List.iter (stmt ctx) body;
    (match ctx.loop_ends with
    | _ :: rest -> ctx.loop_ends <- rest
    | [] -> assert false);
    emit ctx (Asm.Jmp lloop);
    emit ctx (Asm.Label lend)
  | Ir.Break ->
    (match ctx.loop_ends with
    | l :: _ -> emit ctx (Asm.Jmp l)
    | [] -> cg_err "%s: break outside loop" ctx.fname)
  | Ir.Ret e ->
    (match e with
    | Some e ->
      eval ctx 0 e;
      ins ctx (Dp (MOV, false, 0, 0, Reg (xreg 0)))
    | None -> ());
    epilogue ctx
  | Ir.Expr e -> eval ctx 0 e
  | Ir.Asm items -> List.iter (emit ctx) items

and epilogue ctx =
  if ctx.frame_words > 0 then
    ins ctx (Dp (ADD, false, sp, sp, Imm (4 * ctx.frame_words)));
  ins ctx (Ldm (sp, true, saved_regs @ [ pc ]))

(** [compile f] compiles one IR function into an assembly fragment. *)
let compile (f : Ir.func) : Asm.fragment =
  let vars = f.params @ f.locals in
  let dup =
    List.find_opt
      (fun v -> List.length (List.filter (String.equal v) vars) > 1)
      vars
  in
  (match dup with
  | Some v -> cg_err "%s: duplicate variable %s" f.fname v
  | None -> ());
  if List.length f.params > 4 then cg_err "%s: more than 4 parameters" f.fname;
  let ctx =
    { slots = List.mapi (fun i v -> (v, i)) vars;
      frame_words = List.length vars; label_n = 0; fname = f.fname;
      out = []; loop_ends = [] }
  in
  (* prologue *)
  ins ctx (Stm (sp, true, saved_regs @ [ lr ]));
  if ctx.frame_words > 0 then
    ins ctx (Dp (SUB, false, sp, sp, Imm (4 * ctx.frame_words)));
  List.iteri
    (fun i p ->
      ins ctx (Mem { ld = false; size = Word; rt = i; rn = sp;
                     off = Oimm (slot ctx p); idx = Offset }))
    f.params;
  List.iter (stmt ctx) f.body;
  (* implicit return for void fall-through *)
  epilogue ctx;
  { Asm.name = f.fname; items = List.rev ctx.out }

(** [compile_all funcs] compiles a translation unit. *)
let compile_all funcs = List.map compile funcs
