(** The USB host controller and its attached input devices (keyboard,
    camera, Bluetooth adapter).

    The controller's suspend/resume is the control-heaviest path of the
    benchmark — dense branches over port state, exactly why USB shows the
    highest DBT overhead in Figure 6. The attached devices exercise the
    USB core (port power), deferred work, slab and DMA draining. *)

open Tk_kernel
open Tk_kcc
open Ir
module Dev = Device

let usb_index = 3
let kb_index = 5
let cam_index = 6
let bt_index = 7

(* A generic USB function device: drain its transfer ring via DMA from a
   deferred workitem, then port-suspend; mirrored on resume. *)
let usb_function_driver (lay : Layout.t) ~name ~drain_bytes ~warn_base
    ~hash_words ~hash_passes =
  let wa = lay.work_arg in
  [ func (name ^ "_drain_work") ~params:[ "work" ] ~locals:[ "d"; "buf" ]
      [ assign "d" (ldw (v "work" + int wa));
        assign "buf" (call "kmalloc" [ int drain_bytes ]);
        if_ (v "buf" != int 0)
          [ (* pull pending reports/frames out of the ring *)
            expr (call "dma_xfer_poll" [ v "d"; v "buf"; int drain_bytes; int 2 ]);
            expr (call "kfree" [ v "buf" ]) ]
          [];
        expr (call "complete" [ glob (name ^ "_drained") ]);
        ret0 ];
    func (name ^ "_suspend") ~params:[ "d" ] ~locals:[ "ok" ]
      [ expr (call "queue_work_on" [ int 0; glob "system_wq"; glob (name ^ "_work") ]);
        assign "ok"
          (call "wait_for_completion_timeout" [ glob (name ^ "_drained"); int 30 ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int warn_base ]); ret (Neg (int 1)) ]
          [];
        assign "ok" (call "usb_port_suspend" [ v "d" ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int (Stdlib.( + ) warn_base 1) ]);
            ret (Neg (int 1)) ]
          [];
        expr (call "dev_state_hash"
                [ v "d"; glob (name ^ "_hashbuf"); int hash_words;
                  int hash_passes ]);
        stw (v "d" + int lay.dev_state) (int 0);
        ret (int 0) ];
    func (name ^ "_resume") ~params:[ "d" ] ~locals:[ "ok" ]
      [ assign "ok" (call "usb_port_resume" [ v "d" ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int (Stdlib.( + ) warn_base 2) ]);
            ret (Neg (int 1)) ]
          [];
        expr (call "dev_state_hash"
                [ v "d"; glob (name ^ "_hashbuf"); int hash_words;
                  int hash_passes ]);
        stw (v "d" + int lay.dev_state) (int 1);
        ret (int 0) ] ]

let funcs (lay : Layout.t) : Ir.func list =
  let wa = lay.work_arg in
  [ (* ------------------------ USB host controller ------------------- *)
    (* hub status walk: per-port nested decisions, branch-dense *)
    func "usb_hub_quiesce" ~params:[ "d" ]
      ~locals:[ "base"; "port"; "s"; "changes" ]
      [ assign "base" (ldw (v "d" + int lay.dev_mmio));
        assign "changes" (int 0);
        assign "port" (int 0);
        while_ (v "port" < int 4)
          [ assign "s"
              (ldw (v "base" + int Dev.r_scratch
                   + ((v "port" land int 7) lsl int 2)));
            if_ ((v "s" land int 1) != int 0)
              [ if_ ((v "s" land int 2) != int 0)
                  [ (* enabled + connected: signal selective suspend *)
                    stw (v "base" + int Dev.r_scratch
                        + ((v "port" land int 7) lsl int 2))
                      (v "s" lor int 8);
                    assign "changes" (v "changes" + int 1) ]
                  [ (* connected, disabled: power the port down *)
                    stw (v "base" + int Dev.r_scratch
                        + ((v "port" land int 7) lsl int 2))
                      (v "s" land int 0xF5);
                    expr (call "udelay" [ int 1 ]) ] ]
              [ if_ ((v "s" land int 4) != int 0)
                  [ (* overcurrent latched: clear and log *)
                    stw (v "base" + int Dev.r_scratch
                        + ((v "port" land int 7) lsl int 2))
                      (int 0);
                    expr (call "syslog" [ v "port" ]) ]
                  [] ];
            assign "port" (v "port" + int 1) ];
        ret (v "changes") ];
    func "usb_suspend" ~params:[ "d" ] ~locals:[ "ok"; "tries" ]
      [ expr (call "cancel_work" [ glob "system_wq"; glob "usb_work" ]);
        expr (call "mutex_lock" [ glob "usb_mutex" ]);
        (* quiesce until the hub reports no more active ports *)
        assign "tries" (int 0);
        while_ (v "tries" < int 4)
          [ if_ (call "usb_hub_quiesce" [ v "d" ] == int 0) [ Break ] [];
            expr (call "msleep" [ int 1 ]);
            assign "tries" (v "tries" + int 1) ];
        expr (call "dev_state_hash" [ v "d"; glob "usb_hashbuf"; int 4096; int 2 ]);
        expr (call "dev_cmd" [ v "d"; int 1 ]);
        assign "ok" (call "dev_wait_done_sleep" [ v "d"; int 6 ]);
        expr (call "dev_cmd" [ v "d"; int 3 ]);
        expr (call "clk_disable" [ int 3 ]);
        expr (call "mutex_unlock" [ glob "usb_mutex" ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x0B0 ]); ret (Neg (int 1)) ]
          [];
        stw (v "d" + int lay.dev_state) (int 0);
        ret (int 0) ];
    func "usb_resume" ~params:[ "d" ] ~locals:[ "ok"; "port"; "base" ]
      [ expr (call "mutex_lock" [ glob "usb_mutex" ]);
        expr (call "clk_enable" [ int 3 ]);
        expr (call "dev_cmd" [ v "d"; int 2 ]);
        assign "ok" (call "dev_wait_done_sleep" [ v "d"; int 10 ]);
        expr (call "dev_cmd" [ v "d"; int 3 ]);
        (* re-enumerate ports *)
        assign "base" (ldw (v "d" + int lay.dev_mmio));
        assign "port" (int 0);
        while_ (v "port" < int 4)
          [ stw (v "base" + int Dev.r_scratch + ((v "port" land int 7) lsl int 2))
              (int 3);
            expr (call "udelay" [ int 2 ]);
            assign "port" (v "port" + int 1) ];
        expr (call "dev_state_hash" [ v "d"; glob "usb_hashbuf"; int 4096; int 2 ]);
        (* restart hub status polling *)
        expr (call "queue_work_on" [ int 0; glob "system_wq"; glob "usb_work" ]);
        expr (call "mutex_unlock" [ glob "usb_mutex" ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x0B1 ]); ret (Neg (int 1)) ]
          [];
        stw (v "d" + int lay.dev_state) (int 1);
        ret (int 0) ];
    func "usb_hub_work" ~params:[ "work" ] ~locals:[ "d" ]
      [ assign "d" (ldw (v "work" + int wa));
        expr (call "usb_hub_quiesce" [ v "d" ]);
        ret0 ];
    Driver_common.init_func lay ~name:"usb" ~index:usb_index
      ~extra:
        [ stw (glob "usb_work" + int lay.work_fn) (glob "usb_hub_work");
          stw (glob "usb_work" + int wa) (v "d") ]
      () ]
  @ usb_function_driver lay ~name:"kb" ~drain_bytes:256 ~warn_base:0x6B0
      ~hash_words:2048 ~hash_passes:1
  @ [ Driver_common.init_func lay ~name:"kb" ~index:kb_index
        ~extra:
          [ stw (glob "kb_work" + int lay.work_fn) (glob "kb_drain_work");
            stw (glob "kb_work" + int wa) (v "d") ]
        () ]
  @ usb_function_driver lay ~name:"cam" ~drain_bytes:2048 ~warn_base:0xCA0
      ~hash_words:4096 ~hash_passes:1
  @ [ Driver_common.init_func lay ~name:"cam" ~index:cam_index
        ~extra:
          [ stw (glob "cam_work" + int lay.work_fn) (glob "cam_drain_work");
            stw (glob "cam_work" + int wa) (v "d") ]
        () ]
  @ usb_function_driver lay ~name:"bt" ~drain_bytes:512 ~warn_base:0xB70
      ~hash_words:2048 ~hash_passes:1
  @ [ Driver_common.init_func lay ~name:"bt" ~index:bt_index
        ~extra:
          [ stw (glob "bt_work" + int lay.work_fn) (glob "bt_drain_work");
            stw (glob "bt_work" + int wa) (v "d") ]
        () ]

let data (lay : Layout.t) : Tk_isa.Asm.datum list =
  Driver_common.dev_data lay ~name:"usb" ()
  @ Driver_common.dev_data lay ~name:"kb" ()
  @ Driver_common.dev_data lay ~name:"cam" ()
  @ Driver_common.dev_data lay ~name:"bt" ()
  @ [ Tk_isa.Asm.data "usb_hashbuf" 16384;
      Tk_isa.Asm.data "kb_hashbuf" 16384;
      Tk_isa.Asm.data "cam_hashbuf" 16384;
      Tk_isa.Asm.data "bt_hashbuf" 16384;
      Tk_isa.Asm.data "usb_work" lay.work_size;
      Tk_isa.Asm.data "kb_work" lay.work_size;
      Tk_isa.Asm.data "kb_drained" lay.cmp_size;
      Tk_isa.Asm.data "cam_work" lay.work_size;
      Tk_isa.Asm.data "cam_drained" lay.cmp_size;
      Tk_isa.Asm.data "bt_work" lay.work_size;
      Tk_isa.Asm.data "bt_drained" lay.cmp_size ]
