(** The WiFi NIC (TI WL1251-like): the richest driver of the benchmark.

    Exercises everything at once, as the paper's WiFi does (§7.1): slab
    (packet buffers), softirq (RX drain tasklet), DMA (TX ring flush),
    threaded IRQ (command completion), its own workqueue (scan work) and
    firmware upload on resume. Its resume is also the fault-injection
    point: a wedged firmware never answers the power-on command, the
    driver times out and WARNs — the cold path that makes ARK fall back
    to the CPU (§7.3 observed exactly this in 4/1000 runs). *)

open Tk_kernel
open Tk_kcc
open Ir
module Dev = Device

let wifi_index = 8
let fw_words = 512  (* 2 KiB firmware image *)
let n_pkts = 8

let funcs (lay : Layout.t) : Ir.func list =
  let wa = lay.work_arg in
  [ func "wifi_irq_handler" ~params:[ "line"; "d" ] ~locals:[ "s" ]
      [ assign "s" (ldw (ldw (v "d" + int lay.dev_mmio) + int Dev.r_status));
        if_ ((v "s" land int 0x64) != int 0)
          [ ret (int Layout.irq_wake_thread) ]
          [ ret (int Layout.irq_none) ] ];
    func "wifi_irq_thread" ~params:[ "line"; "d" ]
      [ expr (call "dev_cmd" [ v "d"; int 3 ]);
        expr (call "complete" [ ldw (v "d" + int lay.dev_priv) ]);
        ret (int Layout.irq_handled) ];
    (* softirq: free pending RX packet buffers *)
    func "wifi_rx_tasklet" ~params:[ "arg" ] ~locals:[ "i"; "p" ]
      [ assign "i" (int 0);
        while_ (v "i" < int n_pkts)
          [ assign "p" (ldw (glob "wifi_pkts" + (v "i" lsl int 2)));
            if_ (v "p" != int 0)
              [ expr (call "kfree" [ v "p" ]);
                stw (glob "wifi_pkts" + (v "i" lsl int 2)) (int 0) ]
              [];
            assign "i" (v "i" + int 1) ];
        expr (call "complete" [ glob "wifi_drained" ]);
        ret0 ];
    (* periodic scan work on the driver's own workqueue *)
    func "wifi_scan_work" ~params:[ "work" ] ~locals:[ "d"; "buf"; "j"; "acc" ]
      [ assign "d" (ldw (v "work" + int wa));
        assign "buf" (call "kmalloc" [ int 256 ]);
        if_ (v "buf" != int 0)
          [ assign "acc" (int 0);
            assign "j" (int 0);
            while_ (v "j" < int 32)
              [ stw (v "buf" + (v "j" lsl int 2)) (v "acc");
                assign "acc" ((v "acc" + v "j") lxor (v "acc" lsr int 5));
                assign "j" (v "j" + int 1) ];
            expr (call "kfree" [ v "buf" ]) ]
          [];
        ret0 ];
    (* pre-suspend traffic: allocate pending RX packets (called by the
       harness before the ephemeral task sleeps, so the drain happens on
       the offloaded side — "freeing pending WiFi packets", §4.3) *)
    func "wifi_prepare_traffic" ~locals:[ "i"; "p" ]
      [ assign "i" (int 0);
        while_ (v "i" < int n_pkts)
          [ assign "p" (call "kmalloc" [ int 128 ]);
            if_ (v "p" != int 0)
              [ stw (v "p") (v "i");
                stw (glob "wifi_pkts" + (v "i" lsl int 2)) (v "p") ]
              [];
            assign "i" (v "i" + int 1) ];
        expr (call "queue_work_on" [ int 0; glob "wifi_wq"; glob "wifi_scan" ]);
        ret0 ];
    func "wifi_suspend" ~params:[ "d" ] ~locals:[ "ok"; "buf" ]
      [ (* drain RX through the softirq path *)
        expr (call "tasklet_schedule" [ glob "wifi_tasklet" ]);
        assign "ok"
          (call "wait_for_completion_timeout" [ glob "wifi_drained"; int 10 ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x3F0 ]); ret (Neg (int 1)) ]
          [];
        expr (call "cancel_work" [ glob "wifi_wq"; glob "wifi_scan" ]);
        (* flush the TX ring to the device *)
        assign "buf" (call "kmalloc" [ int 2048 ]);
        if_ (v "buf" != int 0)
          [ expr (call "memset" [ v "buf"; int 0x7E; int 2048 ]);
            (* completion signalled through the threaded IRQ *)
            expr (call "dma_xfer_irq" [ v "d"; v "buf"; int 2048; int 1 ]);
            expr (call "kfree" [ v "buf" ]) ]
          [];
        expr (call "dev_state_hash"
                [ v "d"; glob "wifi_hashbuf"; int 4096; int 2 ]);
        expr (call "dev_cmd" [ v "d"; int 1 ]);
        assign "ok"
          (call "wait_for_completion_timeout"
             [ ldw (v "d" + int lay.dev_priv); int 10 ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x3F1 ]); ret (Neg (int 1)) ]
          [];
        stw (v "d" + int lay.dev_state) (int 0);
        ret (int 0) ];
    func "wifi_resume" ~params:[ "d" ] ~locals:[ "ok" ]
      [ expr (call "dev_cmd" [ v "d"; int 2 ]);
        assign "ok"
          (call "wait_for_completion_timeout"
             [ ldw (v "d" + int lay.dev_priv); int 20 ]);
        if_ (v "ok" == int 0)
          [ (* firmware did not respond to the power-on command — the
               §7.3 glitch. Cancel this resume attempt and diagnose. *)
            expr (call "warn" [ int 0x3F2 ]);
            ret (Neg (int 1)) ]
          [];
        assign "ok" (call "fw_upload" [ v "d"; glob "wifi_fw"; int fw_words ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x3F3 ]); ret (Neg (int 1)) ]
          [];
        expr (call "dev_state_hash"
                [ v "d"; glob "wifi_hashbuf"; int 4096; int 2 ]);
        (* restart scanning *)
        expr (call "queue_work_on" [ int 0; glob "wifi_wq"; glob "wifi_scan" ]);
        stw (v "d" + int lay.dev_state) (int 1);
        ret (int 0) ];
    Driver_common.init_func lay ~name:"wifi" ~index:wifi_index
      ~handler:"wifi_irq_handler" ~thread_fn:"wifi_irq_thread"
      ~priv:"wifi_done"
      ~extra:
        [ stw (glob "wifi_tasklet" + int lay.tl_fn) (glob "wifi_rx_tasklet");
          stw (glob "wifi_tasklet" + int lay.tl_arg) (v "d");
          stw (glob "wifi_scan" + int lay.work_fn) (glob "wifi_scan_work");
          stw (glob "wifi_scan" + int wa) (v "d") ]
      () ]

let data (lay : Layout.t) : Tk_isa.Asm.datum list =
  let fw_blob =
    List.init fw_words (fun i ->
        Stdlib.( land )
          (Stdlib.( + ) (Stdlib.( * ) i 0x01000193) 0x811C9DC5)
          0xFFFFFFFF)
  in
  Driver_common.dev_data lay ~name:"wifi" ~completion:true ()
  @ [ Tk_isa.Asm.data "wifi_tasklet" lay.tl_size;
      Tk_isa.Asm.data "wifi_scan" lay.work_size;
      Tk_isa.Asm.data "wifi_drained" lay.cmp_size;
      Tk_isa.Asm.data "wifi_pkts" (Stdlib.( * ) n_pkts 4);
      Tk_isa.Asm.data "wifi_hashbuf" 16384;
      Tk_isa.Asm.data ~words:fw_blob "wifi_fw" (Stdlib.( * ) fw_words 4) ]
