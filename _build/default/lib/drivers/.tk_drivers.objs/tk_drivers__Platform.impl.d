lib/drivers/platform.ml: Device Dlib_src Driver_power Driver_storage Driver_usb_devs Driver_wifi Image Layout List Tk_kcc Tk_kernel Tk_machine
