lib/drivers/driver_power.ml: Device Driver_common Ir Layout Tk_isa Tk_kcc Tk_kernel
