lib/drivers/driver_common.ml: Ir Layout Tk_isa Tk_kcc Tk_kernel Tk_machine
