lib/drivers/dlib_src.ml: Device Ir Layout Tk_isa Tk_kcc Tk_kernel
