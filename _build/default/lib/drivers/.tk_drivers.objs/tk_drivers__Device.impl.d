lib/drivers/device.ml: Array Bool Clock Intc List Mem Soc Tk_machine
