lib/drivers/driver_usb_devs.ml: Device Driver_common Ir Layout Stdlib Tk_isa Tk_kcc Tk_kernel
