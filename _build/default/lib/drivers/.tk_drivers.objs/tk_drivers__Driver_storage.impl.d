lib/drivers/driver_storage.ml: Device Driver_common Ir Layout List Stdlib Tk_isa Tk_kcc Tk_kernel
