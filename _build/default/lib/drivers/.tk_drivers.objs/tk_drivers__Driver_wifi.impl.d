lib/drivers/driver_wifi.ml: Device Driver_common Ir Layout List Stdlib Tk_isa Tk_kcc Tk_kernel
