(** The PMIC regulator (TWL6030-like), behind a slow I2C bus.

    Exercises threaded IRQ: each configuration transaction completes by
    interrupt, acknowledged in the threaded handler; voltage ramps add
    [udelay] busy-waits bound by physics, not CPU speed (§2.1). *)

open Tk_kernel
open Tk_kcc
open Ir
module Dev = Device

let reg_index = 4

let funcs (lay : Layout.t) : Ir.func list =
  [ func "reg_irq_handler" ~params:[ "line"; "d" ] ~locals:[ "s" ]
      [ assign "s" (ldw (ldw (v "d" + int lay.dev_mmio) + int Dev.r_status));
        if_ ((v "s" land int 4) != int 0)
          [ ret (int Layout.irq_wake_thread) ]
          [ ret (int Layout.irq_none) ] ];
    func "reg_irq_thread" ~params:[ "line"; "d" ]
      [ expr (call "dev_cmd" [ v "d"; int 3 ]);
        expr (call "complete" [ ldw (v "d" + int lay.dev_priv) ]);
        ret (int Layout.irq_handled) ];
    (* one IRQ-completed I2C transaction *)
    func "reg_i2c_txn" ~params:[ "d"; "reg"; "val" ] ~locals:[ "base"; "ok" ]
      [ assign "base" (ldw (v "d" + int lay.dev_mmio));
        stw (v "base" + int Dev.r_scratch + ((v "reg" land int 7) lsl int 2))
          (v "val");
        expr (call "dev_cmd" [ v "d"; int 4 ]);
        assign "ok"
          (call "wait_for_completion_timeout"
             [ ldw (v "d" + int lay.dev_priv); int 10 ]);
        ret (v "ok") ];
    func "reg_suspend" ~params:[ "d" ] ~locals:[ "ok" ]
      [ (* program sleep voltages for the two rails we own *)
        assign "ok" (call "reg_i2c_txn" [ v "d"; int 1; int 0x0A ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x2E0 ]); ret (Neg (int 1)) ]
          [];
        assign "ok" (call "reg_i2c_txn" [ v "d"; int 2; int 0x0A ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x2E1 ]); ret (Neg (int 1)) ]
          [];
        expr (call "dev_state_hash" [ v "d"; glob "reg_hashbuf"; int 256; int 1 ]);
        stw (v "d" + int lay.dev_state) (int 0);
        ret (int 0) ];
    func "reg_resume" ~params:[ "d" ] ~locals:[ "ok"; "rail" ]
      [ assign "rail" (int 1);
        while_ (v "rail" <= int 4)
          [ assign "ok" (call "reg_i2c_txn" [ v "d"; v "rail"; int 0x3C ]);
            if_ (v "ok" == int 0)
              [ expr (call "warn" [ int 0x2E2 ]); ret (Neg (int 1)) ]
              [];
            (* voltage ramp-up time *)
            expr (call "udelay" [ int 10 ]);
            assign "rail" (v "rail" + int 1) ];
        expr (call "dev_state_hash" [ v "d"; glob "reg_hashbuf"; int 256; int 1 ]);
        stw (v "d" + int lay.dev_state) (int 1);
        ret (int 0) ];
    Driver_common.init_func lay ~name:"reg" ~index:reg_index
      ~handler:"reg_irq_handler" ~thread_fn:"reg_irq_thread" ~priv:"reg_done"
      () ]

let data (lay : Layout.t) : Tk_isa.Asm.datum list =
  Driver_common.dev_data lay ~name:"reg" ~completion:true ()
  @ [ Tk_isa.Asm.data "reg_hashbuf" 1024 ]
