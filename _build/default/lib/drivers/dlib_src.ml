(** Guest driver libraries (the paper's "driver libs" layer, Fig. 3a):
    generic device polling, I2C transactions, DMA transfers, firmware
    upload, USB port power, MMC host claiming, the common clock
    framework. All translated under ARK; they call into kernel services
    (udelay, mutexes, completions) that may divert to emulation. *)

open Tk_kernel
open Tk_kcc
open Ir
module Dev = Device

(* dev field loads: the device struct layout comes from the kernel Layout *)
let dbase lay d = ldw (v d + int lay.Layout.dev_mmio)

let funcs (lay : Layout.t) : Ir.func list =
  [ (* bounded status poll: returns 1 when (STATUS & mask) = want *)
    func "dev_wait_status" ~params:[ "dev"; "mask"; "want"; "spins" ]
      ~locals:[ "base"; "s"; "i" ]
      [ assign "base" (dbase lay "dev");
        assign "i" (int 0);
        while_ (v "i" < v "spins")
          [ assign "s" (ldw (v "base" + int Dev.r_status));
            if_ ((v "s" land v "mask") == v "want") [ ret (int 1) ] [];
            expr (call "udelay" [ int 2 ]);
            assign "i" (v "i" + int 1) ];
        ret (int 0) ];
    func "dev_cmd" ~params:[ "dev"; "c" ]
      [ stw (dbase lay "dev" + int Dev.r_cmd) (v "c"); ret0 ];
    (* long waits sleep between checks (Linux uses msleep beyond ~10us);
       the CPU idles instead of spinning — the §2.1 idle epochs *)
    func "dev_wait_done_sleep" ~params:[ "dev"; "ms_budget" ]
      ~locals:[ "base"; "s"; "left" ]
      [ assign "base" (dbase lay "dev");
        assign "left" (v "ms_budget");
        while_ (int 1)
          [ assign "s" (ldw (v "base" + int Dev.r_status));
            if_ ((v "s" land int 4) != int 0) [ ret (int 1) ] [];
            if_ (v "left" == int 0) [ ret (int 0) ] [];
            expr (call "msleep" [ int 1 ]);
            assign "left" (v "left" - int 1) ];
        ret (int 0) ];
    (* device context save/verify: the compute-heavy part of real
       suspend/resume paths (descriptor walks, register caches,
       checksums) — translated code, the DBT's bread and butter *)
    func "dev_state_hash" ~params:[ "dev"; "buf"; "words"; "passes" ]
      ~locals:[ "i"; "p"; "acc" ]
      [ assign "acc" (int 0x9E3779B9);
        assign "p" (int 0);
        while_ (v "p" < v "passes")
          [ assign "i" (int 0);
            while_ (v "i" < v "words")
              [ assign "acc"
                  ((v "acc" + ldw (v "buf" + (v "i" lsl int 2)))
                  lxor (v "acc" lsr int 7));
                if_ ((v "i" land int 3) == int 0)
                  [ stw (v "buf" + (v "i" lsl int 2)) (v "acc") ]
                  [];
                assign "i" (v "i" + int 1) ];
            assign "p" (v "p" + int 1) ];
        stw (dbase lay "dev" + int Dev.r_scratch + int 28) (v "acc");
        ret (v "acc") ];
    func "dev_irq_enable" ~params:[ "dev"; "on" ]
      [ stw (dbase lay "dev" + int Dev.r_irq_en) (v "on"); ret0 ];
    (* I2C-style configuration transaction against a slow bus *)
    func "i2c_write" ~params:[ "dev"; "reg"; "val" ] ~locals:[ "base"; "ok" ]
      [ assign "base" (dbase lay "dev");
        stw (v "base" + int Dev.r_scratch + ((v "reg" land int 7) lsl int 2))
          (v "val");
        expr (call "dev_cmd" [ v "dev"; int 4 ]);
        assign "ok" (call "dev_wait_status" [ v "dev"; int 2; int 0; int 400 ]);
        expr (call "dev_cmd" [ v "dev"; int 3 ]);
        ret (v "ok") ];
    (* polled DMA transfer; dir 1 = mem->dev, 2 = dev->mem *)
    func "dma_xfer_poll" ~params:[ "dev"; "addr"; "len"; "dir" ]
      ~locals:[ "base"; "ok" ]
      [ assign "base" (dbase lay "dev");
        if_ (v "dir" == int 1)
          [ stw (v "base" + int Dev.r_dma_src) (v "addr") ]
          [ stw (v "base" + int Dev.r_dma_dst) (v "addr") ];
        stw (v "base" + int Dev.r_dma_len) (v "len");
        stw (v "base" + int Dev.r_dma_ctrl) (v "dir");
        assign "ok"
          (call "dev_wait_status" [ v "dev"; int 0x20; int 0x20; int 4000 ]);
        expr (call "dev_cmd" [ v "dev"; int 3 ]);
        ret (v "ok") ];
    (* IRQ-completed DMA: waits on the device's own completion
       ([dev_priv]), signalled by its (threaded) IRQ handler *)
    func "dma_xfer_irq" ~params:[ "dev"; "addr"; "len"; "dir" ]
      ~locals:[ "base" ]
      [ assign "base" (dbase lay "dev");
        if_ (v "dir" == int 1)
          [ stw (v "base" + int Dev.r_dma_src) (v "addr") ]
          [ stw (v "base" + int Dev.r_dma_dst) (v "addr") ];
        stw (v "base" + int Dev.r_dma_len) (v "len");
        stw (v "base" + int Dev.r_dma_ctrl) (v "dir");
        ret
          (call "wait_for_completion_timeout"
             [ ldw (v "dev" + int lay.Layout.dev_priv); int 40 ]) ];
    (* firmware upload through the FIFO, memory-intensive (§4.5) *)
    func "fw_upload" ~params:[ "dev"; "blob"; "words" ]
      ~locals:[ "base"; "i"; "w"; "chunk" ]
      [ assign "base" (dbase lay "dev");
        (* stage through a freshly allocated bounce buffer, 64B chunks *)
        assign "chunk" (call "kmalloc" [ int 64 ]);
        if_ (v "chunk" == int 0) [ ret (int 0) ] [];
        assign "i" (int 0);
        while_ (v "i" < v "words")
          [ if_ ((v "i" land int 15) == int 0)
              [ expr (call "memcpy" [ v "chunk"; v "blob" + (v "i" lsl int 2);
                                      int 64 ]) ]
              [];
            while_ (ldw (v "base" + int Dev.r_fifo_space) == int 0)
              [ expr (call "udelay" [ int 1 ]) ];
            assign "w" (ldw (v "chunk" + ((v "i" land int 15) lsl int 2)));
            stw (v "base" + int Dev.r_fifo) (v "w");
            assign "i" (v "i" + int 1) ];
        expr (call "kfree" [ v "chunk" ]);
        (* firmware boot completion arrives by interrupt *)
        ret
          (call "wait_for_completion_timeout"
             [ ldw (v "dev" + int lay.Layout.dev_priv); int 8 ]) ];
    (* USB core: port power management with endpoint quiescing *)
    func "usb_port_suspend" ~params:[ "dev" ]
      ~locals:[ "base"; "ep"; "s"; "ok" ]
      [ expr (call "mutex_lock" [ glob "usb_mutex" ]);
        assign "base" (dbase lay "dev");
        (* quiesce endpoints: control-heavy little state machine *)
        assign "ep" (int 0);
        while_ (v "ep" < int 4)
          [ assign "s" (ldw (v "base" + int Dev.r_scratch + (v "ep" lsl int 2)));
            if_ ((v "s" land int 1) != int 0)
              [ (* active endpoint: request halt, spin briefly *)
                stw (v "base" + int Dev.r_scratch + (v "ep" lsl int 2))
                  (v "s" lor int 2);
                expr (call "udelay" [ int 1 ]) ]
              [ if_ ((v "s" land int 4) != int 0)
                  [ stw (v "base" + int Dev.r_scratch + (v "ep" lsl int 2))
                      (int 0) ]
                  [] ];
            assign "ep" (v "ep" + int 1) ];
        expr (call "dev_cmd" [ v "dev"; int 1 ]);
        assign "ok" (call "dev_wait_done_sleep" [ v "dev"; int 5 ]);
        expr (call "dev_cmd" [ v "dev"; int 3 ]);
        expr (call "mutex_unlock" [ glob "usb_mutex" ]);
        ret (v "ok") ];
    func "usb_port_resume" ~params:[ "dev" ] ~locals:[ "base"; "ep"; "ok" ]
      [ expr (call "mutex_lock" [ glob "usb_mutex" ]);
        assign "base" (dbase lay "dev");
        expr (call "dev_cmd" [ v "dev"; int 2 ]);
        assign "ok" (call "dev_wait_done_sleep" [ v "dev"; int 8 ]);
        expr (call "dev_cmd" [ v "dev"; int 3 ]);
        (* re-arm endpoints *)
        assign "ep" (int 0);
        while_ (v "ep" < int 4)
          [ stw (v "base" + int Dev.r_scratch + (v "ep" lsl int 2)) (int 1);
            expr (call "udelay" [ int 1 ]);
            assign "ep" (v "ep" + int 1) ];
        expr (call "mutex_unlock" [ glob "usb_mutex" ]);
        ret (v "ok") ];
    (* MMC core: host claiming *)
    func "mmc_claim_host" [ expr (call "mutex_lock" [ glob "mmc_mutex" ]); ret0 ];
    func "mmc_release_host"
      [ expr (call "mutex_unlock" [ glob "mmc_mutex" ]); ret0 ];
    (* common clock framework: refcounted gates behind a mutex (§4.4's
       clk mutex example) *)
    func "clk_disable" ~params:[ "id" ] ~locals:[ "p"; "c" ]
      [ expr (call "mutex_lock" [ glob "clk_mutex" ]);
        assign "p" (glob "clk_refcnt" + ((v "id" land int 7) lsl int 2));
        assign "c" (ldw (v "p") - int 1);
        stw (v "p") (v "c");
        if_ (v "c" == int 0) [ expr (call "udelay" [ int 4 ]) ] [];
        expr (call "mutex_unlock" [ glob "clk_mutex" ]);
        ret0 ];
    func "clk_enable" ~params:[ "id" ] ~locals:[ "p"; "c" ]
      [ expr (call "mutex_lock" [ glob "clk_mutex" ]);
        assign "p" (glob "clk_refcnt" + ((v "id" land int 7) lsl int 2));
        assign "c" (ldw (v "p") + int 1);
        stw (v "p") (v "c");
        if_ (v "c" == int 1)
          [ (* gate ungating + PLL relock *)
            expr (call "udelay" [ int 6 ]) ]
          [];
        expr (call "mutex_unlock" [ glob "clk_mutex" ]);
        ret0 ] ]

let data (lay : Layout.t) : Tk_isa.Asm.datum list =
  [ Tk_isa.Asm.data "usb_mutex" lay.Layout.mtx_size;
    Tk_isa.Asm.data "mmc_mutex" lay.Layout.mtx_size;
    Tk_isa.Asm.data "clk_mutex" lay.Layout.mtx_size;
    Tk_isa.Asm.data ~words:[ 1; 1; 1; 1; 1; 1; 1; 1 ] "clk_refcnt" 32 ]
