(** Shared scaffolding for the guest drivers: device-struct instances and
    their init/registration functions. *)

open Tk_kernel
open Tk_kcc
open Ir

(** Builds "<name>_init": fills the device struct, registers the IRQ
    handler (optionally threaded) and the device with the PM core, and
    enables the device's IRQ line. [priv] names a datum stored in
    [dev_priv] (usually the driver's completion). *)
let init_func (lay : Layout.t) ~name ~index ?(flags = 0) ?handler ?thread_fn
    ?priv ?(extra = []) () : Ir.func =
  let dev = "dev_" ^ name in
  let irq_line = Tk_machine.Soc.dev_irq index in
  func (name ^ "_init") ~locals:[ "d" ]
    ([ assign "d" (glob dev);
       stw (v "d" + int lay.dev_mmio) (int (Tk_machine.Soc.dev_base index));
       stw (v "d" + int lay.dev_irq) (int irq_line);
       stw (v "d" + int lay.dev_suspend) (glob (name ^ "_suspend"));
       stw (v "d" + int lay.dev_resume) (glob (name ^ "_resume"));
       stw (v "d" + int lay.dev_flags) (int flags);
       stw (v "d" + int lay.dev_state) (int 1);
       (match priv with
       | Some p -> stw (v "d" + int lay.dev_priv) (glob p)
       | None -> stw (v "d" + int lay.dev_priv) (int 0)) ]
    @ (match handler with
      | Some h ->
        [ expr
            (call "request_irq"
               [ int irq_line; glob h;
                 (match thread_fn with Some t -> glob t | None -> int 0);
                 v "d" ]);
          expr (call "dev_irq_enable" [ v "d"; int 1 ]) ]
      | None -> [])
    @ extra
    @ [ expr (call "device_register" [ v "d" ]); ret0 ])

(** Device struct + completion data for a driver. *)
let dev_data (lay : Layout.t) ~name ?(completion = false) () =
  Tk_isa.Asm.data ("dev_" ^ name) lay.dev_size
  :: (if completion then [ Tk_isa.Asm.data (name ^ "_done") lay.cmp_size ]
      else [])
