(** Storage drivers: SD card, USB flash drive, MMC host controller.

    Per the paper's §7.1 service matrix: SD exercises slab + threaded
    IRQ; Flash exercises deferred work + slab + DMA (through the USB
    core); the MMC controller exercises deferred work + slab + the MMC
    host mutex + the clock framework. *)

open Tk_kernel
open Tk_kcc
open Ir
module Dev = Device

let sd_index = 0
let flash_index = 1
let mmc_index = 2

let funcs (lay : Layout.t) : Ir.func list =
  let wa = lay.work_arg in
  [ (* ------------------------------ SD ----------------------------- *)
    func "sd_irq_handler" ~params:[ "line"; "d" ] ~locals:[ "s" ]
      [ assign "s" (ldw (ldw (v "d" + int lay.dev_mmio) + int Dev.r_status));
        if_ ((v "s" land int 0x64) != int 0)
          [ ret (int Layout.irq_wake_thread) ]
          [ ret (int Layout.irq_none) ] ];
    func "sd_irq_thread" ~params:[ "line"; "d" ]
      [ expr (call "dev_cmd" [ v "d"; int 3 ]);
        expr (call "complete" [ ldw (v "d" + int lay.dev_priv) ]);
        ret (int Layout.irq_handled) ];
    func "sd_suspend" ~params:[ "d" ] ~locals:[ "buf"; "acc"; "j"; "base"; "ok" ]
      [ assign "base" (ldw (v "d" + int lay.dev_mmio));
        (* sync "cached blocks": checksum the block cache through a slab
           bounce buffer, hand the digest to the card *)
        assign "buf" (call "kmalloc" [ int 512 ]);
        if_ (v "buf" == int 0)
          [ expr (call "warn" [ int 0x5D0 ]); ret (Neg (int 1)) ]
          [];
        expr (call "memcpy" [ v "buf"; glob "sd_cache"; int 512 ]);
        assign "acc" (int 0);
        assign "j" (int 0);
        while_ (v "j" < int 128)
          [ assign "acc" (v "acc" lxor ldw (v "buf" + (v "j" lsl int 2)));
            assign "j" (v "j" + int 1) ];
        stw (v "base" + int Dev.r_scratch + int 4) (v "acc");
        expr (call "kfree" [ v "buf" ]);
        expr (call "dev_state_hash" [ v "d"; glob "sd_hashbuf"; int 4096; int 1 ]);
        expr (call "dev_cmd" [ v "d"; int 1 ]);
        assign "ok"
          (call "wait_for_completion_timeout"
             [ ldw (v "d" + int lay.dev_priv); int 10 ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x5D1 ]); ret (Neg (int 1)) ]
          [];
        stw (v "d" + int lay.dev_state) (int 0);
        ret (int 0) ];
    func "sd_resume" ~params:[ "d" ] ~locals:[ "ok" ]
      [ expr (call "dev_state_hash" [ v "d"; glob "sd_hashbuf"; int 4096; int 1 ]);
        expr (call "dev_cmd" [ v "d"; int 2 ]);
        assign "ok"
          (call "wait_for_completion_timeout"
             [ ldw (v "d" + int lay.dev_priv); int 15 ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x5D2 ]); ret (Neg (int 1)) ]
          [];
        stw (v "d" + int lay.dev_state) (int 1);
        ret (int 0) ];
    Driver_common.init_func lay ~name:"sd" ~index:sd_index
      ~handler:"sd_irq_handler" ~thread_fn:"sd_irq_thread" ~priv:"sd_done" ();
    (* ----------------------------- Flash --------------------------- *)
    (* deferred flush: runs on the system workqueue *)
    func "flash_flush_work" ~params:[ "work" ] ~locals:[ "d"; "buf" ]
      [ assign "d" (ldw (v "work" + int wa));
        assign "buf" (call "kmalloc" [ int 1024 ]);
        if_ (v "buf" != int 0)
          [ expr (call "memset" [ v "buf"; int 0xA5; int 1024 ]);
            expr (call "dma_xfer_poll" [ v "d"; v "buf"; int 1024; int 1 ]);
            expr (call "kfree" [ v "buf" ]) ]
          [];
        expr (call "complete" [ glob "flash_flush_done" ]);
        ret0 ];
    func "flash_suspend" ~params:[ "d" ] ~locals:[ "ok" ]
      [ expr (call "queue_work_on" [ int 0; glob "system_wq"; glob "flash_work" ]);
        assign "ok"
          (call "wait_for_completion_timeout" [ glob "flash_flush_done"; int 30 ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0xF1A ]); ret (Neg (int 1)) ]
          [];
        assign "ok" (call "usb_port_suspend" [ v "d" ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0xF1B ]); ret (Neg (int 1)) ]
          [];
        expr (call "dev_state_hash" [ v "d"; glob "flash_hashbuf"; int 4096; int 1 ]);
        stw (v "d" + int lay.dev_state) (int 0);
        ret (int 0) ];
    func "flash_resume" ~params:[ "d" ] ~locals:[ "ok"; "buf" ]
      [ assign "ok" (call "usb_port_resume" [ v "d" ]);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0xF1C ]); ret (Neg (int 1)) ]
          [];
        (* re-read the FAT cache *)
        assign "buf" (call "kmalloc" [ int 1024 ]);
        if_ (v "buf" != int 0)
          [ expr (call "dma_xfer_poll" [ v "d"; v "buf"; int 1024; int 2 ]);
            expr (call "kfree" [ v "buf" ]) ]
          [];
        expr (call "dev_state_hash" [ v "d"; glob "flash_hashbuf"; int 4096; int 1 ]);
        stw (v "d" + int lay.dev_state) (int 1);
        ret (int 0) ];
    Driver_common.init_func lay ~name:"flash" ~index:flash_index
      ~extra:
        [ stw (glob "flash_work" + int lay.work_fn) (glob "flash_flush_work");
          stw (glob "flash_work" + int wa) (v "d") ]
      ();
    (* --------------------------- MMC host -------------------------- *)
    func "mmc_irq_handler" ~params:[ "line"; "d" ] ~locals:[ "s" ]
      [ assign "s" (ldw (ldw (v "d" + int lay.dev_mmio) + int Dev.r_status));
        if_ ((v "s" land int 4) != int 0)
          [ expr (call "dev_cmd" [ v "d"; int 3 ]);
            expr (call "complete" [ ldw (v "d" + int lay.dev_priv) ]);
            ret (int Layout.irq_handled) ]
          [ ret (int Layout.irq_none) ] ];
    (* background request retirement, cancelled at suspend *)
    func "mmc_bg_work" ~params:[ "work" ] ~locals:[ "d"; "req" ]
      [ assign "d" (ldw (v "work" + int wa));
        assign "req" (call "kmalloc" [ int 96 ]);
        if_ (v "req" != int 0)
          [ stw (v "req") (int 0x4D4D43);
            expr (call "kfree" [ v "req" ]) ]
          [];
        ret0 ];
    func "mmc_suspend" ~params:[ "d" ] ~locals:[ "req"; "ok" ]
      [ (* clean up pending IO before powering down (§2.1) *)
        expr (call "cancel_work" [ glob "system_wq"; glob "mmc_work" ]);
        expr (call "mmc_claim_host" []);
        assign "req" (call "kmalloc" [ int 64 ]);
        expr (call "dev_cmd" [ v "d"; int 1 ]);
        assign "ok"
          (call "wait_for_completion_timeout"
             [ ldw (v "d" + int lay.dev_priv); int 10 ]);
        expr (call "kfree" [ v "req" ]);
        expr (call "dev_state_hash" [ v "d"; glob "mmc_hashbuf"; int 2048; int 1 ]);
        expr (call "clk_disable" [ int 2 ]);
        expr (call "mmc_release_host" []);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x33C ]); ret (Neg (int 1)) ]
          [];
        stw (v "d" + int lay.dev_state) (int 0);
        ret (int 0) ];
    func "mmc_resume" ~params:[ "d" ] ~locals:[ "ok" ]
      [ expr (call "mmc_claim_host" []);
        expr (call "clk_enable" [ int 2 ]);
        expr (call "dev_cmd" [ v "d"; int 2 ]);
        assign "ok"
          (call "wait_for_completion_timeout"
             [ ldw (v "d" + int lay.dev_priv); int 15 ]);
        expr (call "dev_state_hash" [ v "d"; glob "mmc_hashbuf"; int 2048; int 1 ]);
        (* restart background retirement *)
        expr (call "queue_work_on" [ int 0; glob "system_wq"; glob "mmc_work" ]);
        expr (call "mmc_release_host" []);
        if_ (v "ok" == int 0)
          [ expr (call "warn" [ int 0x33D ]); ret (Neg (int 1)) ]
          [];
        stw (v "d" + int lay.dev_state) (int 1);
        ret (int 0) ];
    Driver_common.init_func lay ~name:"mmc" ~index:mmc_index
      ~handler:"mmc_irq_handler" ~priv:"mmc_done"
      ~extra:
        [ stw (glob "mmc_work" + int lay.work_fn) (glob "mmc_bg_work");
          stw (glob "mmc_work" + int wa) (v "d") ]
      () ]

let data (lay : Layout.t) : Tk_isa.Asm.datum list =
  let cache_words =
    List.init 128 (fun i ->
        Stdlib.( land ) (Stdlib.( * ) i 2654435761) 0xFFFFFFFF)
  in
  Driver_common.dev_data lay ~name:"sd" ~completion:true ()
  @ Driver_common.dev_data lay ~name:"flash" ()
  @ Driver_common.dev_data lay ~name:"mmc" ~completion:true ()
  @ [ Tk_isa.Asm.data ~words:cache_words "sd_cache" 512;
      Tk_isa.Asm.data "sd_hashbuf" 16384;
      Tk_isa.Asm.data "flash_hashbuf" 16384;
      Tk_isa.Asm.data "mmc_hashbuf" 16384;
      Tk_isa.Asm.data "flash_work" lay.work_size;
      Tk_isa.Asm.data "flash_flush_done" lay.cmp_size;
      Tk_isa.Asm.data "mmc_work" lay.work_size ]
