(** The handoff descriptor the CPU-side kernel module passes to ARK.

    Everything here is {e runtime data} the kernel module (compiled with
    the kernel, so entitled to know its internals) collects at handoff:
    the resolved narrow ABI of Table 2, opaque pointers for upcall
    arguments (workqueues, threaded-IRQ descriptors), the tick period,
    and the address execution should return to when a migrated context
    finishes on the CPU. ARK never dereferences kernel structures through
    any of it — pointer values only. *)

type t = {
  abi_addr_of : string -> int;
      (** Table 2 symbol -> guest address (plus spinlock entries) *)
  abi_name_of : int -> string option;  (** reverse, over the same set *)
  jiffies_addr : int;
  entry_suspend : int;  (** guest address of the device-suspend phase *)
  entry_resume : int;
  workqueues : int list;  (** opaque: upcall args for worker contexts *)
  threaded_irqs : int list;  (** opaque: upcall args for irq_thread *)
  tick_ns : int;  (** the kernel's jiffy period (config data) *)
  ms_ns : int;  (** the kernel's millisecond in simulated ns (config) *)
  exit_to : int;
      (** guest address a migrated context returns to (the module's
          handoff-return stub) *)
}
