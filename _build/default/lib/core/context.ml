(** DBT execution contexts (§4.1).

    ARK supports the offloaded phase's concurrency with cooperative
    contexts instead of reproducing the kernel's preemptive threads: one
    primary context for the suspend/resume path, one for interrupt
    handlers, one for tasklets, one for timer callbacks, one per
    workqueue and one per threaded IRQ. Context switch is as cheap as
    swapping the pointer to the DBT state. *)

open Tk_isa

type kind =
  | Primary  (** the offloaded phase entry (dpm_suspend / dpm_resume) *)
  | Worker of int  (** worker_thread(wq): long-running, parks when dry *)
  | Irq_thread of int  (** irq_thread(desc): long-running *)
  | Softirq  (** do_softirq() per wake *)
  | Timerd  (** run_local_timers() per tick *)
  | Irq  (** generic_handle_irq(line) per interrupt *)

let kind_name = function
  | Primary -> "primary"
  | Worker _ -> "worker"
  | Irq_thread _ -> "irq-thread"
  | Softirq -> "softirq"
  | Timerd -> "timerd"
  | Irq -> "irq"

type state =
  | Ready
  | Parked  (** waiting for its wake hook (schedule() from a daemon) *)
  | Sleeping  (** msleep: a clock event will mark it Ready *)
  | Idle  (** on-demand context with nothing to do *)
  | Done

type t = {
  id : int;
  kind : kind;
  cpu : Exec.cpu;  (** host register file (passthrough modes: = guest) *)
  stack_top : int;
  mutable state : state;
  mutable started : bool;  (** long-running context already entered *)
  mutable env_save : int array;  (** per-context copy of the engine env *)
  mutable pending : int list;  (** Irq: platform lines; Timerd: ticks *)
  mutable slices : int;  (** times scheduled (stats) *)
}

let create ~id ~kind ~stack_top =
  { id; kind; cpu = Exec.make_cpu (); stack_top; state = Idle;
    started = false; env_save = Array.make 64 0; pending = []; slices = 0 }

let is_runnable c =
  match c.state with
  | Ready -> true
  | Parked | Sleeping | Idle | Done -> false
