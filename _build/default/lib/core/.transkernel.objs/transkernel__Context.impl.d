lib/core/context.ml: Array Exec Tk_isa
