lib/core/manifest.ml:
