lib/core/ark.ml: Array Cache Clock Context Core Engine Exec Fun Intc Layout List Manifest Mem Soc Tk_dbt Tk_isa Tk_machine Tk_stats Translator
