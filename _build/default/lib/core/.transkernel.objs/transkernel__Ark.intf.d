lib/core/ark.mli: Context Manifest Tk_dbt Tk_isa Tk_machine Tk_stats
