(* Build once, work with many (§7.2 / Figure 3): the same ARK (OCaml
   code, compiled once) must run kernels built with every layout variant,
   while a wide-interface offload (struct sharing) visibly breaks. *)

open Tk_harness
module Layout = Tk_kernel.Layout
module Variants = Tk_kernel.Variants
module Kabi = Tk_kernel.Kabi

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_ark_runs_all_variants () =
  List.iter
    (fun (lay : Layout.t) ->
      let ark = Ark_run.create ~layout:lay () in
      (match Ark_run.suspend_resume_cycle ark with
      | `Ok -> ()
      | `Fell_back r ->
        Alcotest.failf "ARK fell back on kernel %s: %s" lay.Layout.version r);
      List.iter
        (fun (n, s) ->
          checki (Printf.sprintf "%s/%s on" lay.Layout.version n) 1 s)
        (Native_run.device_states ark.Ark_run.nat);
      checki
        (Printf.sprintf "%s warns" lay.Layout.version)
        0
        (List.length ark.Ark_run.nat.Native_run.warns))
    Variants.all

let test_native_runs_all_variants () =
  List.iter
    (fun (lay : Layout.t) ->
      let nat = Native_run.create ~layout:lay () in
      ignore (Native_run.suspend_resume_cycle nat);
      List.iter
        (fun (n, s) ->
          checki (Printf.sprintf "%s/%s" lay.Layout.version n) 1 s)
        (Native_run.device_states nat))
    Variants.all

let test_abi_resolves_everywhere () =
  (* the 12+1 narrow ABI resolves identically by *name* in every build *)
  List.iter
    (fun lay ->
      let b = Tk_drivers.Platform.build_image ~layout:lay () in
      List.iter
        (fun sym -> ignore (b.Tk_kernel.Image.abi.Kabi.addr_of sym))
        (List.filter (fun s -> s <> Kabi.jiffies) Kabi.table2);
      checkb "jiffies var present" true
        (b.Tk_kernel.Image.abi.Kabi.jiffies_addr <> 0))
    Variants.all

let test_wide_interface_breaks () =
  (* the §2.3 strawman: an offload that shares struct layouts compiled
     against v4.4 misreads a v3.16 kernel *)
  let old = Variants.v3_16 in
  let nat = Native_run.create ~layout:old () in
  let image = nat.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let mem = nat.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let work = Tk_isa.Asm.symbol image "flash_work" in
  (* the v3.16 kernel filled work_fn at its own offset *)
  let fn_correct =
    Tk_machine.Mem.ram_read mem (work + old.Layout.work_fn) 4
  in
  let fn_wide =
    Tk_machine.Mem.ram_read mem (work + Layout.v4_4.Layout.work_fn) 4
  in
  checkb "correct offset reads the callback" true
    (fn_correct = Tk_isa.Asm.symbol image "flash_flush_work");
  checkb "v4.4-compiled offset reads garbage" true (fn_correct <> fn_wide)

let test_abi_churn_counts () =
  (* Figure 3b flavour: struct layouts change heavily between releases,
     while the Table 2 ABI stays fixed *)
  let pairs = [ (Variants.v3_16, Layout.v4_4); (Layout.v4_4, Variants.v4_9);
                (Variants.v4_9, Variants.v4_20) ] in
  List.iter
    (fun (a, b) ->
      let fa = Variants.struct_fields a and fb = Variants.struct_fields b in
      let changed =
        List.length
          (List.filter
             (fun (name, fields) -> List.assoc name fb <> fields)
             fa)
      in
      checkb
        (Printf.sprintf "%s->%s changes types" a.Layout.version
           b.Layout.version)
        true (changed > 0))
    pairs;
  (* the narrow ABI's name set is identical everywhere by construction *)
  checki "table2 size" 13 (List.length Kabi.table2)

let test_function_symbols_move () =
  (* addresses move between builds — the reason binary patching of
     addresses isn't the issue, interfaces are *)
  let b1 = Tk_drivers.Platform.build_image ~layout:Layout.v4_4 () in
  let b2 = Tk_drivers.Platform.build_image ~layout:Variants.v4_20 () in
  let moved =
    List.filter
      (fun s ->
        Tk_isa.Asm.symbol b1.Tk_kernel.Image.image s
        <> Tk_isa.Asm.symbol b2.Tk_kernel.Image.image s)
      (* data objects move with struct sizes; code may move with them *)
      [ "current"; "irq_desc"; "dpm_devices"; "async_pool"; "jiffies" ]
  in
  checkb "symbols relocate across builds" true (List.length moved > 0)

let () =
  Alcotest.run "abi"
    [ ( "build once, work with many",
        [ Alcotest.test_case "ARK x all kernel variants" `Slow
            test_ark_runs_all_variants;
          Alcotest.test_case "native sanity on variants" `Slow
            test_native_runs_all_variants;
          Alcotest.test_case "narrow ABI resolves everywhere" `Quick
            test_abi_resolves_everywhere ] );
      ( "wide interfaces are brittle",
        [ Alcotest.test_case "struct sharing breaks (Fig 2a)" `Quick
            test_wide_interface_breaks;
          Alcotest.test_case "type churn across releases (Fig 3b)" `Quick
            test_abi_churn_counts;
          Alcotest.test_case "symbols move across builds" `Quick
            test_function_symbols_move ] ) ]
