(* The transkernel itself: offloaded suspend/resume correctness against
   native execution, emulated services, hooks, fallback, mixed
   execution. *)

open Tk_harness
module Translator = Tk_dbt.Translator
module Ark = Transkernel.Ark

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* end-state equivalence: device power states and kernel-visible globals
   must match native execution after a full cycle *)
let kernel_state_digest (nat : Native_run.t) =
  ( Native_run.device_states nat,
    Native_run.read_sym nat "dpm_count",
    Native_run.read_sym nat "oom_count",
    Native_run.read_sym nat "async_pending",
    Native_run.read_sym nat "tasklet_head",
    Native_run.read_sym nat "spin_depth" )

let test_end_state_matches_native mode () =
  let nat = Native_run.create () in
  ignore (Native_run.suspend_resume_cycle nat);
  let expected = kernel_state_digest nat in
  let ark = Ark_run.create ~mode () in
  let res = Ark_run.suspend_resume_cycle ark in
  checkb "completed without fallback" true (res = `Ok);
  let got = kernel_state_digest ark.Ark_run.nat in
  checkb "kernel end state equals native" true (got = expected);
  checki "no warns" 0 (List.length ark.Ark_run.nat.Native_run.warns)

let test_repeated_cycles () =
  let ark = Ark_run.create () in
  for i = 1 to 4 do
    match Ark_run.suspend_resume_cycle ark with
    | `Ok -> ()
    | `Fell_back r -> Alcotest.failf "cycle %d fell back: %s" i r
  done;
  List.iter
    (fun (n, s) -> checki (n ^ " on") 1 s)
    (Native_run.device_states ark.Ark_run.nat)

let test_idle_time_preserved () =
  (* §7.3: "ARK shows the same amount of accumulated idle time" *)
  let nat = Experiments.measure_native () in
  let ark = Experiments.measure_mode Translator.Ark in
  let ni = nat.Experiments.r_whole.Experiments.p_idle_ms in
  let ai = ark.Experiments.r_whole.Experiments.p_idle_ms in
  if ai < ni *. 0.85 || ai > ni *. 1.15 then
    Alcotest.failf "idle differs: native %.3f ms vs ark %.3f ms" ni ai

let test_overhead_bands () =
  let nat = Experiments.measure_native () in
  let ark = Experiments.measure_mode Translator.Ark in
  let ov =
    Experiments.overhead ~native:nat.Experiments.r_whole
      ~offloaded:ark.Experiments.r_whole
  in
  if ov < 1.5 || ov > 3.5 then
    Alcotest.failf "ARK overhead %.2fx outside [1.5, 3.5]" ov

let test_mode_ordering () =
  let nat = Experiments.measure_native () in
  let ov mode =
    let m = Experiments.measure_mode mode in
    Experiments.overhead ~native:nat.Experiments.r_whole
      ~offloaded:m.Experiments.r_whole
  in
  let ark = ov Translator.Ark in
  let mid = ov Translator.Mid in
  let base = ov Translator.Baseline in
  checkb "ark < mid" true (ark < mid);
  checkb "mid < baseline" true (mid < base);
  checkb "baseline >= 4x ark (paper: 5.2x)" true (base >= 4.0 *. ark)

let test_emulated_services_small () =
  (* §7.3: emulated services contribute ~1% of busy execution *)
  let ark = Experiments.measure_mode Translator.Ark in
  let frac =
    float_of_int ark.Experiments.r_emu_cycles
    /. float_of_int ark.Experiments.r_whole.Experiments.p_busy_cycles
  in
  if frac > 0.06 then
    Alcotest.failf "emulated services are %.1f%% of busy (expected small)"
      (frac *. 100.)

let test_fallback_glitch () =
  let ark = Ark_run.create () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let wifi = Tk_drivers.Platform.device (Ark_run.plat ark) "wifi" in
  wifi.Tk_drivers.Device.glitch_next_resume <- true;
  (match Ark_run.suspend_resume_cycle ark with
  | `Fell_back _ -> ()
  | `Ok -> Alcotest.fail "expected fallback on wedged firmware");
  (* the WARN ran natively after migration *)
  checkb "warn recorded" true
    (List.mem 0x3F2 ark.Ark_run.nat.Native_run.warns);
  (* wifi resume was cancelled; everything else is up *)
  List.iter
    (fun (n, s) -> if n <> "wifi" then checki (n ^ " on") 1 s)
    (Native_run.device_states ark.Ark_run.nat);
  (* and the next cycle works again end to end *)
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "post-fallback cycle fell back: %s" r);
  List.iter
    (fun (n, s) -> checki (n ^ " recovered") 1 s)
    (Native_run.device_states ark.Ark_run.nat)

let test_fallback_stats () =
  let ark = Ark_run.create () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let wifi = Tk_drivers.Platform.device (Ark_run.plat ark) "wifi" in
  wifi.Tk_drivers.Device.glitch_next_resume <- true;
  ignore (Ark_run.suspend_resume_cycle ark);
  let c = ark.Ark_run.ark.Ark.counters in
  checki "one migration" 1 (Tk_stats.Counters.get c "fallback.migrations")

let test_resume_native_mixed () =
  (* urgent wakeup: suspend offloaded, resume natively on the CPU (§4) *)
  let ark = Ark_run.create () in
  (match Ark_run.suspend_resume_cycle ark ~resume_native:true with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "fell back: %s" r);
  List.iter
    (fun (n, s) -> checki (n ^ " on after native resume") 1 s)
    (Native_run.device_states ark.Ark_run.nat);
  (* and a fully offloaded cycle still works afterwards *)
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "fell back: %s" r)

let test_hooks_fired () =
  let ark = Ark_run.create () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let c = ark.Ark_run.ark.Ark.counters in
  checkb "queue_work_on hooked" true
    (Tk_stats.Counters.get c "hook.queue_work_on" > 0);
  checkb "tasklet_schedule hooked" true
    (Tk_stats.Counters.get c "hook.tasklet_schedule" > 0);
  checkb "early irq stage emulated" true
    (Tk_stats.Counters.get c "emu.early_irq" > 0);
  checkb "gic accesses emulated or absent" true
    (Tk_stats.Counters.get c "emu.gic_access" >= 0);
  checkb "sleeps emulated" true (Tk_stats.Counters.get c "emu.msleep" > 0);
  checkb "spinlocks emulated" true
    (Tk_stats.Counters.get c "emu.spin_lock" > 0)

let test_deferred_work_from_cpu () =
  (* work queued on the CPU before handoff must be drained by ARK's
     worker contexts (§4.3) *)
  let ark = Ark_run.create () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let nat = ark.Ark_run.nat in
  let image = (Ark_run.plat ark).Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let lay = (Ark_run.plat ark).Tk_drivers.Platform.built.Tk_kernel.Image.layout in
  let mem = (Ark_run.plat ark).Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let wq = Tk_isa.Asm.symbol image "system_wq" in
  let work = Tk_isa.Asm.symbol image "mmc_work" in
  ignore (Native_run.call nat "queue_work_on" [ 0; wq; work ]);
  checkb "pending before handoff" true
    (Tk_machine.Mem.ram_read mem (wq + lay.Tk_kernel.Layout.wq_head) 4 <> 0);
  (match Ark_run.suspend_resume_cycle ark ~prepare_traffic:false with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "fell back: %s" r);
  checki "drained by ARK" 0
    (Tk_machine.Mem.ram_read mem (wq + lay.Tk_kernel.Layout.wq_head) 4)

let test_code_cache_growth_bounded () =
  let ark = Ark_run.create () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let e = ark.Ark_run.ark.Ark.engine in
  let emitted1 = e.Tk_dbt.Engine.host_emitted in
  ignore (Ark_run.suspend_resume_cycle ark);
  ignore (Ark_run.suspend_resume_cycle ark);
  let emitted3 = e.Tk_dbt.Engine.host_emitted in
  (* warm cache: almost nothing new after the first cycle *)
  checkb "translation amortized" true
    (emitted3 - emitted1 < emitted1 / 10)

let test_async_suspend () =
  (* Linux's parallelized power transitions via async_schedule (§4.3):
     mark the three USB functions async and check the offloaded phase
     still reaches the same end state, with a shorter suspend *)
  let run async =
    let ark = Ark_run.create () in
    List.iter
      (fun d -> Native_run.set_async ark.Ark_run.nat d async)
      [ "kb"; "cam"; "bt" ];
    ignore (Ark_run.suspend_resume_cycle ark);
    let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
    let t0 = soc.Tk_machine.Soc.clock.Tk_machine.Clock.now in
    (match Ark.run_phase ark.Ark_run.ark `Suspend with
    | Ark.Completed -> ()
    | Ark.Fell_back { fb_reason; _ } ->
      Alcotest.failf "async suspend fell back: %s" fb_reason);
    let t1 = soc.Tk_machine.Soc.clock.Tk_machine.Clock.now in
    (match Ark.run_phase ark.Ark_run.ark `Resume with
    | Ark.Completed -> ()
    | Ark.Fell_back { fb_reason; _ } ->
      Alcotest.failf "async resume fell back: %s" fb_reason);
    List.iter
      (fun (n, st) -> checki (n ^ " on") 1 st)
      (Native_run.device_states ark.Ark_run.nat);
    checki "no async work left over" 0
      (Native_run.read_sym ark.Ark_run.nat "async_pending");
    t1 - t0
  in
  let sync_ns = run false in
  let async_ns = run true in
  checkb "async suspend overlaps device latencies" true (async_ns < sync_ns)

let test_config_subset () =
  (* a "defconfig"-style build registering only four devices: the same
     ARK works (kernel configurations, §7.2) *)
  let devices = [ "reg"; "mmc"; "sd"; "wifi" ] in
  let ark = Ark_run.create ~devices () in
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "subset config fell back: %s" r);
  let states = Native_run.device_states ark.Ark_run.nat in
  checki "four devices registered" 4 (List.length states);
  List.iter (fun (n, s) -> checki (n ^ " on") 1 s) states

let test_chain_off_correct () =
  (* the no-chaining ablation must stay correct, only slower *)
  let ark = Ark_run.create () in
  ark.Ark_run.ark.Ark.engine.Tk_dbt.Engine.chain <- false;
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "no-chain fell back: %s" r);
  List.iter
    (fun (n, s) -> checki (n ^ " on") 1 s)
    (Native_run.device_states ark.Ark_run.nat);
  checkb "every branch exits to the engine" true
    (ark.Ark_run.ark.Ark.engine.Tk_dbt.Engine.engine_exits > 10_000)

let test_small_blocks_correct () =
  let ark = Ark_run.create () in
  ark.Ark_run.ark.Ark.engine.Tk_dbt.Engine.block_limit <- 4;
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "block-limit-4 fell back: %s" r);
  List.iter
    (fun (n, s) -> checki (n ^ " on") 1 s)
    (Native_run.device_states ark.Ark_run.nat)

let test_stress_small () =
  let runs, fell, _, ark = Experiments.stress ~runs:12 ~glitch_every:6 () in
  checki "12 runs" 12 runs;
  checki "two injected glitches -> two fallbacks" 2 fell;
  (* last run was clean *)
  ignore ark

let () =
  Alcotest.run "ark"
    [ ( "correctness",
        [ Alcotest.test_case "end state = native (ARK)" `Quick
            (test_end_state_matches_native Translator.Ark);
          Alcotest.test_case "end state = native (baseline)" `Slow
            (test_end_state_matches_native Translator.Baseline);
          Alcotest.test_case "end state = native (mid)" `Slow
            (test_end_state_matches_native Translator.Mid);
          Alcotest.test_case "repeated cycles" `Quick test_repeated_cycles;
          Alcotest.test_case "deferred work from CPU drained" `Quick
            test_deferred_work_from_cpu;
          Alcotest.test_case "mixed: native resume" `Quick
            test_resume_native_mixed ] );
      ( "characteristics",
        [ Alcotest.test_case "idle time preserved" `Quick
            test_idle_time_preserved;
          Alcotest.test_case "overhead in band" `Quick test_overhead_bands;
          Alcotest.test_case "mode ordering (Fig 6)" `Slow test_mode_ordering;
          Alcotest.test_case "emulated services small" `Quick
            test_emulated_services_small;
          Alcotest.test_case "hooks and services fired" `Quick
            test_hooks_fired;
          Alcotest.test_case "warm code cache" `Quick
            test_code_cache_growth_bounded ] );
      ( "configurations",
        [ Alcotest.test_case "async device suspend" `Slow test_async_suspend;
          Alcotest.test_case "device-subset config" `Quick test_config_subset;
          Alcotest.test_case "no-chaining ablation correct" `Quick
            test_chain_off_correct;
          Alcotest.test_case "small translation blocks correct" `Quick
            test_small_blocks_correct ] );
      ( "fallback",
        [ Alcotest.test_case "wifi glitch migrates" `Quick test_fallback_glitch;
          Alcotest.test_case "migration stats" `Quick test_fallback_stats;
          Alcotest.test_case "small stress run" `Slow test_stress_small ] ) ]
