(* The §7.4 energy model: invariants, Figure 7 break-evens, energy
   bands, battery projection, big.LITTLE comparison. *)

open Tk_energy
open Tk_machine
module Translator = Tk_dbt.Translator
open Tk_harness

let checkb = Alcotest.(check bool)

let act ~busy_ms ~idle_ms ~rd ~wr =
  { Core.a_busy_cycles = 0; a_busy_ps = int_of_float (busy_ms *. 1e9);
    a_idle_ps = int_of_float (idle_ms *. 1e9); a_instructions = 0;
    a_cache_misses = 0; a_rd_bytes = rd; a_wr_bytes = wr }

let test_model_monotonic () =
  let e busy =
    Power_model.total
      (Power_model.of_activity ~params:Soc.a9_params
         ~act:(act ~busy_ms:busy ~idle_ms:2.0 ~rd:0 ~wr:0) ())
  in
  checkb "more busy = more energy" true (e 2.0 > e 1.0);
  let e_traffic rd =
    Power_model.total
      (Power_model.of_activity ~params:Soc.m3_params
         ~act:(act ~busy_ms:1.0 ~idle_ms:1.0 ~rd ~wr:0) ())
  in
  checkb "more DRAM traffic = more energy" true
    (e_traffic 1_000_000 > e_traffic 0)

let test_idle_power_gap () =
  (* the M3's idle power is 1.25% of the A9's (§7.4) *)
  let frac = Soc.m3_params.Core.idle_mw /. Soc.a9_params.Core.idle_mw in
  checkb "idle power ratio 1/80" true (frac > 0.01 && frac < 0.015)

let test_breakeven_shape () =
  (* Figure 7: a break-even overhead exists at 100% busy; it grows as
     the workload idles more *)
  let be100 = Whatif.break_even ~busy_frac:1.0 () in
  let be41 = Whatif.break_even ~busy_frac:0.41 () in
  let be20 = Whatif.break_even ~busy_frac:0.20 () in
  checkb "break-even at 100% busy in [2,6]" true (be100 > 2.0 && be100 < 6.0);
  checkb "monotone in idleness" true (be100 < be41 && be41 < be20);
  (* the paper's headline: at its measured overhead ARK saves energy at
     every realistic busy fraction *)
  let rel =
    Whatif.relative_energy ~a9:Soc.a9_params ~m3:Soc.m3_params ~overhead:2.2
      ~busy_frac:0.41 ()
  in
  checkb "ARK-like point saves energy" true (rel < 1.0)

let test_whatif_grid () =
  let g =
    Whatif.grid ~overheads:[ 1.0; 5.0; 15.0 ] ~busy_fracs:[ 0.2; 0.8 ] ()
  in
  List.iter
    (fun (_, series) ->
      let values = List.map snd series in
      checkb "relative energy grows with overhead" true
        (values = List.sort compare values))
    g

let test_battery () =
  (* the paper's two operating points (§7.4) with its measured 66% *)
  let e1 = Battery.extension ~susp_frac:0.9 ~ark_rel:0.66 () in
  let e2 = Battery.extension ~susp_frac:0.5 ~ark_rel:0.66 () in
  (* paper: 18% and 7% *)
  checkb "5s-interval point ~18%" true (e1 > 0.12 && e1 < 0.28);
  checkb "30s-interval point smaller" true (e2 > 0.05 && e2 < e1);
  checkb "hours/day positive" true (Battery.hours_per_day e1 > 1.0)

let test_measured_energy_band () =
  (* the headline claim: ARK consumes 55-80% of native system energy
     for device suspend/resume (paper: 66%) *)
  let nat = Experiments.measure_native () in
  let ark = Experiments.measure_mode Translator.Ark in
  let rel =
    Power_model.total ark.Experiments.r_energy
    /. Power_model.total nat.Experiments.r_energy
  in
  if rel < 0.3 || rel > 0.85 then
    Alcotest.failf "ARK relative energy %.2f outside [0.3, 0.85]" rel;
  (* and the baseline wastes energy *)
  let base = Experiments.measure_mode Translator.Baseline in
  let rel_b =
    Power_model.total base.Experiments.r_energy
    /. Power_model.total nat.Experiments.r_energy
  in
  checkb "baseline loses to native" true (rel_b > 1.5)

let test_dram_rates () =
  (* §7.3: ARK's DRAM read rate well above native's (32 vs 8 MB/s) *)
  let nat = Experiments.measure_native () in
  let ark = Experiments.measure_mode Translator.Ark in
  checkb "ARK reads DRAM harder than native" true
    (ark.Experiments.r_rd_bytes > 2 * nat.Experiments.r_rd_bytes)

let test_biglittle () =
  (* §7.4: LITTLE saves vs native but loses to ARK (77% vs 51-66%) *)
  let nat = Experiments.measure_native () in
  let ark = Experiments.measure_mode Translator.Ark in
  let e_native = Power_model.total nat.Experiments.r_energy in
  let little =
    Battery.little_relative ~a9:Soc.a9_params
      ~busy_ms:nat.Experiments.r_whole.Experiments.p_busy_ms
      ~idle_ms:nat.Experiments.r_whole.Experiments.p_idle_ms
      ~e_native_uj:e_native ()
  in
  let ark_rel = Power_model.total ark.Experiments.r_energy /. e_native in
  checkb "LITTLE saves something" true (little < 1.0);
  checkb "ARK beats LITTLE" true (ark_rel < little)

let () =
  Alcotest.run "energy"
    [ ( "model",
        [ Alcotest.test_case "monotonicity" `Quick test_model_monotonic;
          Alcotest.test_case "idle power gap" `Quick test_idle_power_gap ] );
      ( "what-if (Fig 7)",
        [ Alcotest.test_case "break-even shape" `Quick test_breakeven_shape;
          Alcotest.test_case "grid monotone" `Quick test_whatif_grid ] );
      ( "projections",
        [ Alcotest.test_case "battery extension" `Quick test_battery;
          Alcotest.test_case "big.LITTLE comparison" `Slow test_biglittle ] );
      ( "measured",
        [ Alcotest.test_case "energy band" `Slow test_measured_energy_band;
          Alcotest.test_case "DRAM rates" `Slow test_dram_rates ] ) ]
