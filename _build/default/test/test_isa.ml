(* ISA layer: encodings, immediates, semantics. *)

open Tk_isa
open Tk_isa.Types

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------- generators ------------------------------- *)

let gen_reg = QCheck.Gen.int_range 0 12
let gen_cond = QCheck.Gen.map cond_of_int (QCheck.Gen.int_range 0 14)

let gen_shift_kind =
  QCheck.Gen.map shift_kind_of_int (QCheck.Gen.int_range 0 3)

let gen_dp_op = QCheck.Gen.map dp_op_of_int (QCheck.Gen.int_range 0 15)

let gen_a_imm =
  (* arbitrary v7a-encodable immediate: 8-bit value rotated evenly *)
  QCheck.Gen.map2
    (fun b r -> Bits.ror32 b (2 * r))
    (QCheck.Gen.int_range 0 255) (QCheck.Gen.int_range 0 15)

let gen_operand2 =
  QCheck.Gen.oneof
    [ QCheck.Gen.map (fun v -> Imm v) gen_a_imm;
      QCheck.Gen.map (fun r -> Reg r) gen_reg;
      QCheck.Gen.map3 (fun r k a -> Sreg (r, k, a)) gen_reg gen_shift_kind
        (QCheck.Gen.int_range 1 31);
      QCheck.Gen.map3 (fun r k rs -> Sregreg (r, k, rs)) gen_reg gen_shift_kind
        gen_reg ]

let gen_mem =
  let open QCheck.Gen in
  let* ld = bool in
  let* size = map mem_size_of_int (int_range 0 2) in
  let* rt = gen_reg in
  let* rn = gen_reg in
  let* idx = map (function 0 -> Offset | 1 -> Pre | _ -> Post) (int_range 0 2) in
  let* off =
    oneof
      [ map (fun o -> Oimm o) (int_range (-2047) 2047);
        map3 (fun r k a -> Oreg (r, k, a)) gen_reg gen_shift_kind
          (int_range 0 31) ]
  in
  return (Mem { ld; size; rt; rn; off; idx })

let gen_op =
  let open QCheck.Gen in
  frequency
    [ (6, map2 (fun (o, s) (rd, rn, op2) -> Dp (o, s, rd, rn, op2))
         (pair gen_dp_op bool)
         (triple gen_reg gen_reg gen_operand2));
      (4, gen_mem);
      (1, map2 (fun rd i -> Movw (rd, i)) gen_reg (int_range 0 0xFFFF));
      (1, map2 (fun rd i -> Movt (rd, i)) gen_reg (int_range 0 0xFFFF));
      (1, map3 (fun s rd (rn, rm) -> Mul (s, rd, rn, rm)) bool gen_reg
         (pair gen_reg gen_reg));
      (1, map3 (fun rd rn rm -> Udiv (rd, rn, rm)) gen_reg gen_reg gen_reg);
      (1, map2 (fun rd rm -> Clz (rd, rm)) gen_reg gen_reg);
      (1, map2 (fun rd rm -> Rev (rd, rm)) gen_reg gen_reg);
      (1, map3 (fun rd rm rn -> Swp (rd, rm, rn)) gen_reg gen_reg gen_reg);
      (1, map (fun off -> B (off * 4)) (int_range (-1000) 1000));
      (1, map (fun off -> Bl (off * 4)) (int_range (-1000) 1000));
      (1, map (fun r -> Bx r) gen_reg);
      (1, return Nop) ]

let gen_inst = QCheck.Gen.map2 (fun cond op -> { cond; op }) gen_cond gen_op

let arb_inst =
  QCheck.make ~print:(fun i -> to_string i) gen_inst

(* ------------------------- unit tests ------------------------------- *)

let test_a_imm () =
  check "0x80000001 is a v7a imm" true (V7a.imm_ok 0x80000001);
  check "0xFF is a v7a imm" true (V7a.imm_ok 0xFF);
  check "0x101 not a v7a imm" false (V7a.imm_ok 0x101);
  check "0xFF000000 is a v7a imm" true (V7a.imm_ok 0xFF000000)

let test_m_imm () =
  (* the paper's Table 4 G2 example *)
  check "0x80000001 not a v7m imm" false (V7m.imm_ok 0x80000001);
  check "0xAB is" true (V7m.imm_ok 0xAB);
  check "0x00AB00AB splat" true (V7m.imm_ok 0x00AB00AB);
  check "0xAB00AB00 splat" true (V7m.imm_ok 0xAB00AB00);
  check "0xABABABAB splat" true (V7m.imm_ok 0xABABABAB);
  check "0xFF0 shifted byte" true (V7m.imm_ok 0xFF0);
  check "0x1010 not" false (V7m.imm_ok 0x1010)

let test_m_restrictions () =
  (* writeback with register offsets has no v7m encoding *)
  let i =
    at (Mem { ld = true; size = Word; rt = 0; rn = 1;
              off = Oreg (2, LSR, 4); idx = Post })
  in
  check "post-indexed reg-shift unencodable" false (V7m.encodable i);
  (* register-shifted operand2 only as a bare move *)
  check "add reg-shift-reg unencodable" false
    (V7m.encodable (at (Dp (ADD, false, 0, 1, Sregreg (2, LSL, 3)))));
  check "mov reg-shift-reg ok" true
    (V7m.encodable (at (Dp (MOV, false, 0, 0, Sregreg (2, LSL, 3)))));
  check "rsc unencodable" false
    (V7m.encodable (at (Dp (RSC, false, 0, 1, Reg 2))));
  check "swp unencodable" false (V7m.encodable (at (Swp (0, 1, 2))));
  (* offset ranges *)
  check "ldr [rn,#-1024] unencodable" false
    (V7m.encodable
       (at (Mem { ld = true; size = Word; rt = 0; rn = 1; off = Oimm (-1024);
                  idx = Offset })));
  check "ldr [rn,#4095] ok" true
    (V7m.encodable
       (at (Mem { ld = true; size = Word; rt = 0; rn = 1; off = Oimm 4095;
                  idx = Offset })))

let test_spec_counts () =
  List.iter
    (fun (cat, expected) ->
      checki (Spec.category_name cat) expected (Spec.count cat))
    Spec.paper_counts;
  checki "total forms" 558 Spec.total

(* roundtrip properties *)
let prop_v7a_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"v7a encode/decode roundtrip" arb_inst
    (fun i ->
      match V7a.encode i with
      | Error _ -> QCheck.assume_fail ()
      | Ok w -> V7a.decode w = i)

let prop_v7m_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"v7m encode/decode roundtrip" arb_inst
    (fun i ->
      match V7m.encode i with
      | Error _ -> QCheck.assume_fail ()
      | Ok w -> V7m.decode w = i)

let prop_m_imm_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"v7m modified-imm roundtrip"
    (QCheck.make (QCheck.Gen.int_range 0 0xFFFFFF))
    (fun seed ->
      (* derive a valid imm from the seed *)
      let rot = 8 + ((seed lsr 7) mod 24) in
      let v = Bits.ror32 (0x80 lor (seed land 0x7F)) rot in
      match V7m.encode_imm v with
      | None -> true (* some rotations collapse to simpler forms *)
      | Some code -> V7m.decode_imm code = v)

(* flags semantics spot checks *)
let exec_one ?(cpu = Exec.make_cpu ()) i =
  let env =
    { Exec.load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
      svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
      undef = (fun _ _ -> ()) }
  in
  ignore (Exec.step cpu env ~addr:0x1000 i);
  cpu

let test_flags () =
  let cpu = Exec.make_cpu () in
  cpu.Exec.r.(1) <- 5;
  let cpu = exec_one ~cpu (at (Dp (CMP, false, 0, 1, Imm 5))) in
  check "cmp equal sets Z" true cpu.Exec.z;
  check "cmp equal sets C" true cpu.Exec.c;
  let cpu2 = Exec.make_cpu () in
  cpu2.Exec.r.(1) <- 3;
  let cpu2 = exec_one ~cpu:cpu2 (at (Dp (CMP, false, 0, 1, Imm 5))) in
  check "3 < 5 clears C" false cpu2.Exec.c;
  check "3 < 5 sets N" true cpu2.Exec.n;
  (* signed overflow *)
  let cpu3 = Exec.make_cpu () in
  cpu3.Exec.r.(1) <- 0x7FFFFFFF;
  let cpu3 = exec_one ~cpu:cpu3 (at (Dp (ADD, true, 0, 1, Imm 1))) in
  check "0x7fffffff+1 overflows" true cpu3.Exec.v;
  check "result negative" true cpu3.Exec.n

let test_exec_basics () =
  let cpu = Exec.make_cpu () in
  cpu.Exec.r.(1) <- 0xF0;
  ignore (exec_one ~cpu (at (Dp (MOV, false, 0, 0, Sreg (1, LSR, 4)))));
  checki "lsr" 0xF cpu.Exec.r.(0);
  ignore (exec_one ~cpu (at (Clz (2, 1))));
  checki "clz 0xf0" 24 cpu.Exec.r.(2);
  ignore (exec_one ~cpu (at (Rev (3, 1))));
  checki "rev" 0xF0000000 cpu.Exec.r.(3);
  cpu.Exec.r.(4) <- 100;
  cpu.Exec.r.(5) <- 7;
  ignore (exec_one ~cpu (at (Udiv (6, 4, 5))));
  checki "udiv" 14 cpu.Exec.r.(6)

let test_conditional () =
  let cpu = Exec.make_cpu () in
  cpu.Exec.z <- false;
  cpu.Exec.r.(0) <- 42;
  ignore (exec_one ~cpu (at ~cond:EQ (Dp (MOV, false, 0, 0, Imm 1))));
  checki "EQ skipped when Z clear" 42 cpu.Exec.r.(0);
  cpu.Exec.z <- true;
  ignore (exec_one ~cpu (at ~cond:EQ (Dp (MOV, false, 0, 0, Imm 1))));
  checki "EQ taken when Z set" 1 cpu.Exec.r.(0)

let test_asm_link () =
  let frag =
    { Asm.name = "f";
      items =
        [ Asm.Ins (at (Movw (0, 7)));
          Asm.Label ".l";
          Asm.Ins (at (Dp (ADD, false, 0, 0, Imm 1)));
          Asm.Bcc (NE, ".l");
          Asm.Adr (1, "data0");
          Asm.Ins (at (Bx lr)) ] }
  in
  let img = Asm.link ~base:0x10000 [ frag ] [ Asm.data "data0" 8 ] in
  checki "symbol f" 0x10000 (Asm.symbol img "f");
  checki "label .l" 0x10004 (Asm.symbol img ".l");
  check "data after code" true (Asm.symbol img "data0" > Asm.symbol img "f");
  (* the Bcc encodes a backwards branch *)
  let w = img.Asm.words.(2) in
  (match (V7a.decode w).op with
  | B off -> checki "branch offset" (-4) off
  | _ -> Alcotest.fail "expected branch");
  checki "fragment size" 24 (Asm.fragment_size frag)

let test_nearest_symbol () =
  let frag = { Asm.name = "fn"; items = [ Asm.Ins (at Nop); Asm.Ins (at Nop) ] } in
  let img = Asm.link ~base:0x10000 [ frag ] [] in
  Alcotest.(check string) "exact" "fn" (Asm.nearest_symbol img 0x10000);
  Alcotest.(check string) "offset" "fn+0x4" (Asm.nearest_symbol img 0x10004)

let () =
  Alcotest.run "isa"
    [ ( "immediates",
        [ Alcotest.test_case "v7a rotated immediates" `Quick test_a_imm;
          Alcotest.test_case "v7m modified immediates" `Quick test_m_imm;
          Alcotest.test_case "v7m encoding restrictions" `Quick
            test_m_restrictions ] );
      ( "spec",
        [ Alcotest.test_case "Table 3 category counts" `Quick test_spec_counts ] );
      ( "roundtrip",
        [ QCheck_alcotest.to_alcotest prop_v7a_roundtrip;
          QCheck_alcotest.to_alcotest prop_v7m_roundtrip;
          QCheck_alcotest.to_alcotest prop_m_imm_roundtrip ] );
      ( "semantics",
        [ Alcotest.test_case "flag setting" `Quick test_flags;
          Alcotest.test_case "basic ops" `Quick test_exec_basics;
          Alcotest.test_case "conditional execution" `Quick test_conditional ] );
      ( "assembler",
        [ Alcotest.test_case "link and resolve" `Quick test_asm_link;
          Alcotest.test_case "nearest symbol" `Quick test_nearest_symbol ] ) ]
