test/test_dbt.ml: Alcotest Array Asm Bits Engine Exec Interp Layout List Mem Printexc Printf QCheck QCheck_alcotest Soc String Tk_dbt Tk_isa Tk_machine Translator Types V7a
