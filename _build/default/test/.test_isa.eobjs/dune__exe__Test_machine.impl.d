test/test_machine.ml: Alcotest Array Cache Clock Core Gen Intc List Mem QCheck QCheck_alcotest Soc Timer Tk_drivers Tk_machine
