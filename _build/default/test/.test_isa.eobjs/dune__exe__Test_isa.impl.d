test/test_isa.ml: Alcotest Array Asm Bits Exec List QCheck QCheck_alcotest Spec Tk_isa V7a V7m
