test/test_abi.ml: Alcotest Ark_run List Native_run Printf Tk_drivers Tk_harness Tk_isa Tk_kernel Tk_machine
