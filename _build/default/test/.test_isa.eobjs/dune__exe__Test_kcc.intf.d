test/test_kcc.mli:
