test/test_rules.ml: Alcotest Array Bits Exec List Printf Rules Spec Tk_dbt Tk_isa Types
