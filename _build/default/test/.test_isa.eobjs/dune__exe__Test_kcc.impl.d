test/test_kcc.ml: Alcotest Array Asm Bits Codegen Exec Interp Ir List Mem QCheck QCheck_alcotest Soc Stdlib Tk_isa Tk_kcc Tk_kernel Tk_machine Types V7a
