test/test_energy.ml: Alcotest Battery Core Experiments List Power_model Soc Tk_dbt Tk_energy Tk_harness Tk_machine Whatif
