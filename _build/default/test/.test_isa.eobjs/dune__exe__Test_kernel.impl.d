test/test_kernel.ml: Alcotest List Native_run Random Tk_drivers Tk_harness Tk_isa Tk_kernel Tk_machine
