test/test_ark.mli:
