test/test_dbt.mli:
