test/test_abi.mli:
