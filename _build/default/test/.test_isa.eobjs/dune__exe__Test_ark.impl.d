test/test_ark.ml: Alcotest Ark_run Experiments List Native_run Tk_dbt Tk_drivers Tk_harness Tk_isa Tk_kernel Tk_machine Tk_stats Transkernel
