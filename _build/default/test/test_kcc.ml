(* The mini compiler: compile IR programs and execute them natively on a
   bare platform. *)

open Tk_isa
open Tk_machine
open Tk_kcc
open Ir

let checki = Alcotest.(check int)

(* run [main()] (no args) from a compiled set of functions *)
let run_funcs ?(globals = []) funcs main args =
  let frags = Codegen.compile_all funcs in
  let image = Asm.link ~base:Soc.kernel_base frags globals in
  let soc = Soc.create () in
  Mem.load_image soc.Soc.mem image;
  let interp = Interp.create ~soc () in
  let stop = ref false in
  interp.Interp.on_svc <- (fun _ _ _ -> stop := true);
  let cpu = interp.Interp.cpu in
  let stub =
    Stdlib.( + ) Soc.kernel_base
      (Stdlib.( + ) (Stdlib.( * ) 4 (Array.length image.Asm.words)) 64)
  in
  Mem.ram_write soc.Soc.mem stub 4 (V7a.encode_exn (Types.at (Types.Svc 0)));
  List.iteri (fun i a -> cpu.Exec.r.(i) <- Bits.mask32 a) args;
  cpu.Exec.r.(Types.sp) <- Soc.stack_top 0;
  cpu.Exec.r.(Types.lr) <- stub;
  Interp.set_pc interp (Asm.symbol image main);
  let fuel = ref 10_000_000 in
  while (not !stop) && Stdlib.( > ) !fuel 0 do
    decr fuel;
    Interp.step interp
  done;
  if !fuel = 0 then Alcotest.fail "kcc program did not terminate";
  (cpu.Exec.r.(0), soc, image)

let r1 ?globals funcs main args =
  let r, _, _ = run_funcs ?globals funcs main args in
  r

let test_arith () =
  let f =
    func "main" ~params:[ "a"; "b" ]
      [ ret (((v "a" + v "b") * int 3) - (v "a" / int 2)) ]
  in
  checki "(7+5)*3-3" 33 (r1 [ f ] "main" [ 7; 5 ])

let test_factorial () =
  let f =
    func "fact" ~params:[ "n" ]
      [ if_ (v "n" <= int 1) [ ret (int 1) ] [];
        ret (v "n" * call "fact" [ v "n" - int 1 ]) ]
  in
  checki "6!" 720 (r1 [ f ] "fact" [ 6 ])

let test_loops_break () =
  let f =
    func "main" ~locals:[ "i"; "acc" ]
      [ assign "acc" (int 0);
        assign "i" (int 0);
        while_ (int 1)
          [ if_ (v "i" == int 10) [ Break ] [];
            assign "acc" (v "acc" + v "i");
            assign "i" (v "i" + int 1) ];
        ret (v "acc") ]
  in
  checki "sum 0..9" 45 (r1 [ f ] "main" [])

let test_memory_ops () =
  let f =
    func "main" ~locals:[ "p"; "i" ]
      [ assign "p" (glob "arr");
        assign "i" (int 0);
        while_ (v "i" < int 10)
          [ stw (v "p" + (v "i" lsl int 2)) (v "i" * v "i");
            assign "i" (v "i" + int 1) ];
        (* arr[7] + arr[3] *)
        ret (ldw (v "p" + int 28) + ldw (v "p" + int 12)) ]
  in
  checki "49+9" 58 (r1 ~globals:[ Asm.data "arr" 64 ] [ f ] "main" [])

let test_byte_half () =
  let f =
    func "main"
      [ stb (glob "buf") (int 0x1FF);
        sth (glob "buf" + int 2) (int 0x12345);
        ret (ldb (glob "buf") + ldh (glob "buf" + int 2)) ]
  in
  checki "0xFF + 0x2345" 0x2444
    (r1 ~globals:[ Asm.data "buf" 8 ] [ f ] "main" [])

let test_signed_compare () =
  let f =
    func "main" ~params:[ "a"; "b" ]
      [ if_ (slt (v "a") (v "b")) [ ret (int 1) ] [ ret (int 0) ] ]
  in
  checki "-1 < 1 signed" 1 (r1 [ f ] "main" [ -1; 1 ]);
  checki "1 < -1 signed false" 0 (r1 [ f ] "main" [ 1; -1 ])

let test_unsigned_compare () =
  let f =
    func "main" ~params:[ "a"; "b" ]
      [ if_ (v "a" < v "b") [ ret (int 1) ] [ ret (int 0) ] ]
  in
  checki "0xffffffff < 1 unsigned false" 0 (r1 [ f ] "main" [ -1; 1 ])

let test_function_pointers () =
  let add3 = func "add3" ~params:[ "x" ] [ ret (v "x" + int 3) ] in
  let f =
    func "main" ~locals:[ "fp" ]
      [ assign "fp" (glob "add3"); ret (callptr (v "fp") [ int 39 ]) ]
  in
  checki "indirect call" 42 (r1 [ f; add3 ] "main" [])

let test_logical_ops () =
  let f =
    func "main" ~params:[ "x" ]
      [ ret ((v "x" lor int 0xF0) land bnot (int 0x0F) lxor int 0x100) ]
  in
  checki "bit ops" 0x1F0 (r1 [ f ] "main" [ 0x5 ])

let test_lnot_neg () =
  let f =
    func "main" ~params:[ "x" ]
      [ if_ (lnot (v "x")) [ ret (Neg (int 7)) ] [ ret (int 1) ] ]
  in
  checki "lnot 0 -> -7" (Bits.mask32 (-7)) (r1 [ f ] "main" [ 0 ]);
  checki "lnot 5 -> 1" 1 (r1 [ f ] "main" [ 5 ])

let test_shifts_by_reg () =
  let f =
    func "main" ~params:[ "x"; "n" ]
      [ ret ((v "x" lsl v "n") lor (v "x" lsr v "n")) ]
  in
  checki "dyn shifts" 0xF0F (r1 [ f ] "main" [ 0xF0; 4 ])

let test_memcpy_memset () =
  let funcs = Tk_kernel.Klib_src.funcs Tk_kernel.Layout.v4_4 in
  let frags =
    Codegen.compile_all funcs @ Tk_kernel.Klib_src.frags Tk_kernel.Layout.v4_4
  in
  let main =
    func "main"
      [ expr (call "memset" [ glob "a"; int 0xAB; int 64 ]);
        expr (call "memcpy" [ glob "b"; glob "a"; int 33 ]);
        ret (ldb (glob "b" + int 32) + ldb (glob "b" + int 33)) ]
  in
  let image =
    Asm.link ~base:Soc.kernel_base
      (Codegen.compile main :: frags)
      (Asm.data "a" 64 :: Asm.data "b" 64
      :: Tk_kernel.Klib_src.data Tk_kernel.Layout.v4_4)
  in
  let soc = Soc.create () in
  Mem.load_image soc.Soc.mem image;
  let interp = Interp.create ~soc () in
  let stop = ref false in
  interp.Interp.on_svc <- (fun _ _ _ -> stop := true);
  let cpu = interp.Interp.cpu in
  let stub =
    Stdlib.( + ) Soc.kernel_base
      (Stdlib.( + ) (Stdlib.( * ) 4 (Array.length image.Asm.words)) 64)
  in
  Mem.ram_write soc.Soc.mem stub 4 (V7a.encode_exn (Types.at (Types.Svc 0)));
  cpu.Exec.r.(Types.sp) <- Soc.stack_top 0;
  cpu.Exec.r.(Types.lr) <- stub;
  Interp.set_pc interp (Asm.symbol image "main");
  while not !stop do
    Interp.step interp
  done;
  (* byte 32 copied (0xAB), byte 33 untouched (0) *)
  checki "memcpy boundary" 0xAB cpu.Exec.r.(0)

let test_deep_expression_rejected () =
  (* build a pathologically right-deep expression programmatically *)
  let rec deep n =
    if n = 0 then v "a"
    else Bin (Add, v "a", Bin (Mul, v "a", deep (Stdlib.( - ) n 1)))
  in
  let f = func "main" ~params:[ "a" ] [ ret (deep 10) ] in
  match Codegen.compile f with
  | _ -> Alcotest.fail "expected Codegen_error for deep expression"
  | exception Codegen.Codegen_error _ -> ()

let test_too_many_params () =
  let f = func "main" ~params:[ "a"; "b"; "c"; "d"; "e" ] [ ret0 ] in
  (match Codegen.compile f with
  | _ -> Alcotest.fail "expected Codegen_error"
  | exception Codegen.Codegen_error _ -> ())

let test_duplicate_var () =
  let f = func "main" ~params:[ "a" ] ~locals:[ "a" ] [ ret0 ] in
  (match Codegen.compile f with
  | _ -> Alcotest.fail "expected Codegen_error"
  | exception Codegen.Codegen_error _ -> ())

(* qcheck: arithmetic expressions evaluate like OCaml *)
let rec eval_ref env (e : Ir.expr) =
  let m = Bits.mask32 in
  match e with
  | Int n -> m n
  | Var x -> m (List.assoc x env)
  | Bin (op, a, b) ->
    let a = eval_ref env a and b = eval_ref env b in
    m
      Stdlib.(
        match op with
      | Add -> a + b
      | Sub -> a - b
      | Mul -> a * b
      | Div -> if b = 0 then 0 else a / b
      | And -> a land b
      | Or -> a lor b
      | Xor -> a lxor b
      | Shl -> if b land 255 >= 32 then 0 else a lsl (b land 255)
      | Shr -> if b land 255 >= 32 then 0 else a lsr (b land 255)
      | Sar ->
        if b land 255 >= 32 then if Bits.bit a 31 then 0xFFFFFFFF else 0
        else m (Bits.s32 a asr (b land 255))
      | Eq -> if a = b then 1 else 0
      | Ne -> if a <> b then 1 else 0
      | Ltu -> if a < b then 1 else 0
      | Leu -> if a <= b then 1 else 0
      | Gtu -> if a > b then 1 else 0
      | Geu -> if a >= b then 1 else 0
      | Lts -> if Bits.s32 a < Bits.s32 b then 1 else 0
      | Les -> if Bits.s32 a <= Bits.s32 b then 1 else 0
        | Gts -> if Bits.s32 a > Bits.s32 b then 1 else 0
        | Ges -> if Bits.s32 a >= Bits.s32 b then 1 else 0)
  | Not e -> m (Stdlib.lnot (eval_ref env e))
  | Neg e -> m (Stdlib.( ~- ) (eval_ref env e))
  | Lnot e -> if eval_ref env e = 0 then 1 else 0
  | Load _ | Glob _ | Call _ | Callptr _ -> assert false

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun n -> Int n) (int_range (-1000) 1000);
        oneofl [ Var "a"; Var "b" ] ]
  in
  let binop =
    oneofl
      [ Add; Sub; Mul; Div; And; Or; Xor; Shl; Shr; Sar; Eq; Ne; Ltu; Leu;
        Gtu; Geu; Lts; Les; Gts; Ges ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            (4, map3 (fun op a b -> Bin (op, a, b)) binop
                 (self (Stdlib.( - ) depth 1))
                 (self (Stdlib.( - ) depth 1)));
            (1, map (fun e -> Not e) (self (Stdlib.( - ) depth 1)));
            (1, map (fun e -> Lnot e) (self (Stdlib.( - ) depth 1))) ])
    2

let prop_expr_eval =
  QCheck.Test.make ~count:200 ~name:"compiled expressions match reference"
    (QCheck.make gen_expr) (fun e ->
      let expected = eval_ref [ ("a", 123456); ("b", -7) ] e in
      let f = func "main" ~params:[ "a"; "b" ] [ ret e ] in
      match r1 [ f ] "main" [ 123456; -7 ] with
      | got -> got = expected
      | exception Codegen.Codegen_error _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "kcc"
    [ ( "programs",
        [ Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "recursion (factorial)" `Quick test_factorial;
          Alcotest.test_case "loops and break" `Quick test_loops_break;
          Alcotest.test_case "array stores/loads" `Quick test_memory_ops;
          Alcotest.test_case "byte/halfword accesses" `Quick test_byte_half;
          Alcotest.test_case "signed compares" `Quick test_signed_compare;
          Alcotest.test_case "unsigned compares" `Quick test_unsigned_compare;
          Alcotest.test_case "function pointers" `Quick test_function_pointers;
          Alcotest.test_case "logical ops" `Quick test_logical_ops;
          Alcotest.test_case "lnot and neg" `Quick test_lnot_neg;
          Alcotest.test_case "dynamic shifts" `Quick test_shifts_by_reg;
          Alcotest.test_case "memcpy/memset" `Quick test_memcpy_memset ] );
      ( "diagnostics",
        [ Alcotest.test_case "deep expressions" `Quick
            test_deep_expression_rejected;
          Alcotest.test_case ">4 params rejected" `Quick test_too_many_params;
          Alcotest.test_case "duplicate vars rejected" `Quick
            test_duplicate_var ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_expr_eval ]) ]
