(* minikern running natively: boot, scheduling, deferred work, locks,
   allocator, timers, IRQ — exercised through the guest's own entry
   points, state inspected in guest memory. *)

open Tk_harness
module Layout = Tk_kernel.Layout

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let boot () = Native_run.create ()

let test_boot () =
  let r = boot () in
  (* daemons are parked, jiffies ticking *)
  let j0 = Native_run.read_sym r "jiffies" in
  ignore (Native_run.call r "msleep" [ 5 ]);
  let j1 = Native_run.read_sym r "jiffies" in
  checkb "jiffies advance across sleep" true (j1 > j0)

let test_suspend_resume_states () =
  let r = boot () in
  List.iter (fun (_, s) -> checki "initially on" 1 s) (Native_run.device_states r);
  let evs = Native_run.suspend_resume_cycle r in
  checkb "phase markers emitted" true (List.length evs > 20);
  List.iter
    (fun (n, s) -> checki (n ^ " back on") 1 s)
    (Native_run.device_states r);
  checki "no warns" 0 (List.length r.Native_run.warns)

let test_workqueue () =
  let r = boot () in
  (* queue the wifi scan work and let it run *)
  ignore (Native_run.call r "wifi_prepare_traffic" []);
  ignore (Native_run.call r "msleep" [ 3 ]);
  (* after the scan ran, queue must be empty again *)
  let lay = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.layout in
  let wq =
    Tk_isa.Asm.symbol
      r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image
      "wifi_wq"
  in
  checki "wifi_wq drained" 0
    (Tk_machine.Mem.ram_read r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem
       (wq + lay.Layout.wq_head) 4)

let test_allocator_roundtrip () =
  let r = boot () in
  let p1 = Native_run.call r "kmalloc" [ 100 ] in
  checkb "allocation succeeds" true (p1 <> 0);
  let p2 = Native_run.call r "kmalloc" [ 100 ] in
  checkb "distinct objects" true (p1 <> p2);
  ignore (Native_run.call r "kfree" [ p1 ]);
  let p3 = Native_run.call r "kmalloc" [ 100 ] in
  checki "free list reuses the block" p1 p3;
  (* size-class check: 100 B lands in the 128 B class, so objects in the
     same page are 128 B apart *)
  checki "slab stride" 128 (abs (p2 - p1))

let test_allocator_pages () =
  let r = boot () in
  let a = Native_run.call r "alloc_pages" [ 2 ] in
  checkb "16K block" true (a <> 0);
  checki "aligned to order" 0 (a land ((4096 lsl 2) - 1));
  ignore (Native_run.call r "free_pages" [ a; 2 ]);
  let b = Native_run.call r "alloc_pages" [ 2 ] in
  checki "buddy merge reuses" a b

let test_allocator_oom () =
  let r = boot () in
  (* exhaust the pool: 4 MB / 512 KB top blocks *)
  let rec grab acc =
    let p = Native_run.call r "alloc_pages" [ 7 ] in
    if p = 0 then acc else grab (p :: acc)
  in
  let blocks = grab [] in
  checki "pool yields 8 max-order blocks" 8 (List.length blocks);
  checkb "oom recorded" true (Native_run.read_sym r "oom_count" > 0);
  checkb "oom WARNs" true (List.length r.Native_run.warns > 0);
  (* free everything and allocate again *)
  List.iter (fun p -> ignore (Native_run.call r "free_pages" [ p; 7 ])) blocks;
  checkb "recovers after frees" true (Native_run.call r "alloc_pages" [ 7 ] <> 0)

let test_mutex () =
  let r = boot () in
  let image = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let lay = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.layout in
  let m = Tk_isa.Asm.symbol image "usb_mutex" in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  ignore (Native_run.call r "mutex_lock" [ m ]);
  checki "count taken" 1 (Tk_machine.Mem.ram_read mem (m + lay.Layout.mtx_count) 4);
  ignore (Native_run.call r "mutex_unlock" [ m ]);
  checki "released" 0 (Tk_machine.Mem.ram_read mem (m + lay.Layout.mtx_count) 4)

let test_semaphore () =
  let r = boot () in
  let lay = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.layout in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  (* build a semaphore in spare guest memory *)
  let sem = 0x10700000 in
  Tk_machine.Mem.ram_write mem (sem + lay.Layout.sem_count) 4 2;
  ignore (Native_run.call r "down" [ sem ]);
  ignore (Native_run.call r "down" [ sem ]);
  checki "counted down" 0 (Tk_machine.Mem.ram_read mem (sem + lay.Layout.sem_count) 4);
  ignore (Native_run.call r "up" [ sem ]);
  checki "up" 1 (Tk_machine.Mem.ram_read mem (sem + lay.Layout.sem_count) 4)

let test_completion_via_irq () =
  let r = boot () in
  (* fire an SD command: completion comes through hard irq + threaded irq *)
  let image = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let dev = Tk_isa.Asm.symbol image "dev_sd" in
  ignore (Native_run.call r "dev_cmd" [ dev; 1 ]);
  let ok = Native_run.call r "wait_for_completion_timeout"
             [ Tk_isa.Asm.symbol image "sd_done"; 10 ] in
  checki "completion signalled by threaded irq" 1 ok;
  (* put it back *)
  ignore (Native_run.call r "dev_cmd" [ dev; 2 ]);
  checki "resume completion" 1
    (Native_run.call r "wait_for_completion_timeout"
       [ Tk_isa.Asm.symbol image "sd_done"; 10 ])

let test_ktimer () =
  let r = boot () in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let lay = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.layout in
  let image = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  (* timer that calls complete(flash_flush_done) *)
  let tm = 0x10700100 in
  let j = Native_run.read_sym r "jiffies" in
  Tk_machine.Mem.ram_write mem (tm + lay.Layout.tm_expires) 4 (j + 3);
  Tk_machine.Mem.ram_write mem (tm + lay.Layout.tm_fn) 4
    (Tk_isa.Asm.symbol image "complete");
  Tk_machine.Mem.ram_write mem (tm + lay.Layout.tm_arg) 4
    (Tk_isa.Asm.symbol image "flash_flush_done");
  ignore (Native_run.call r "add_timer" [ tm ]);
  checki "armed" tm (Native_run.read_sym r "timer_head");
  let ok = Native_run.call r "wait_for_completion_timeout"
             [ Tk_isa.Asm.symbol image "flash_flush_done"; 20 ] in
  checki "timer fired and completed" 1 ok;
  checki "timer unlinked after expiry" 0 (Native_run.read_sym r "timer_head")

let test_del_timer () =
  let r = boot () in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let lay = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.layout in
  let tm = 0x10700200 in
  Tk_machine.Mem.ram_write mem (tm + lay.Layout.tm_expires) 4 0x7FFFFFFF;
  Tk_machine.Mem.ram_write mem (tm + lay.Layout.tm_fn) 4 0;
  ignore (Native_run.call r "add_timer" [ tm ]);
  ignore (Native_run.call r "del_timer" [ tm ]);
  checki "deleted" 0 (Native_run.read_sym r "timer_head")

let test_tasklet () =
  let r = boot () in
  (* wifi packets pending + tasklet scheduled -> drained by softirqd *)
  ignore (Native_run.call r "wifi_prepare_traffic" []);
  let image = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let pkts = Tk_isa.Asm.symbol image "wifi_pkts" in
  checkb "packets pending" true (Tk_machine.Mem.ram_read mem pkts 4 <> 0);
  ignore (Native_run.call r "tasklet_schedule"
            [ Tk_isa.Asm.symbol image "wifi_tasklet" ]);
  ignore (Native_run.call r "msleep" [ 3 ]);
  checki "packets freed by softirq" 0 (Tk_machine.Mem.ram_read mem pkts 4);
  checki "tasklet list empty" 0 (Native_run.read_sym r "tasklet_head")

let test_cancel_work () =
  let r = boot () in
  let image = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let lay = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.layout in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let wq = Tk_isa.Asm.symbol image "system_wq" in
  let work = Tk_isa.Asm.symbol image "mmc_work" in
  (* queue from the shim (daemons do not run until we block) *)
  ignore (Native_run.call r "queue_work_on" [ 0; wq; work ]);
  checki "queued" work (Tk_machine.Mem.ram_read mem (wq + lay.Layout.wq_head) 4);
  ignore (Native_run.call r "cancel_work" [ wq; work ]);
  checki "cancelled" 0 (Tk_machine.Mem.ram_read mem (wq + lay.Layout.wq_head) 4);
  checki "pending flag cleared" 0
    (Tk_machine.Mem.ram_read mem (work + lay.Layout.work_pending) 4)

let test_udelay_ktime () =
  let r = boot () in
  let t0 = Native_run.call r "ktime_get" [] in
  ignore (Native_run.call r "udelay" [ 50 ]);
  let t1 = Native_run.call r "ktime_get" [] in
  checkb "udelay waits >= 50us" true (t1 - t0 >= 50_000)

(* property: random kmalloc/kfree interleavings keep live objects
   disjoint and intact (the slab poisons nothing; we write and verify
   our own patterns through guest memory) *)
let test_allocator_property () =
  let r = boot () in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let rng = Random.State.make [| 0x51AB |] in
  let live = ref [] in
  let tag = ref 1 in
  for _step = 1 to 400 do
    if Random.State.bool rng && List.length !live < 40 then begin
      let size = 4 + Random.State.int rng 900 in
      let p = Native_run.call r "kmalloc" [ size ] in
      if p <> 0 then begin
        (* no overlap with any live object *)
        List.iter
          (fun (q, qsize, _) ->
            if p < q + qsize && q < p + size then
              Alcotest.failf "overlap: 0x%x+%d vs 0x%x+%d" p size q qsize)
          !live;
        (* fill with a unique pattern *)
        incr tag;
        for i = 0 to (size / 4) - 1 do
          Tk_machine.Mem.ram_write mem (p + (4 * i)) 4 ((!tag * 65599) + i)
        done;
        live := (p, size, !tag) :: !live
      end
    end
    else
      match !live with
      | [] -> ()
      | (p, size, t) :: rest ->
        (* pattern still intact at free time *)
        for i = 0 to (size / 4) - 1 do
          let got = Tk_machine.Mem.ram_read mem (p + (4 * i)) 4 in
          if got <> ((t * 65599) + i) land 0xFFFFFFFF then
            Alcotest.failf "corruption in 0x%x at +%d" p (4 * i)
        done;
        ignore (Native_run.call r "kfree" [ p ]);
        live := rest
  done;
  (* free the rest; allocator must still be able to hand out pages *)
  List.iter (fun (p, _, _) -> ignore (Native_run.call r "kfree" [ p ])) !live;
  checkb "allocator alive after stress" true
    (Native_run.call r "kmalloc" [ 256 ] <> 0);
  checki "no OOM during stress" 0 (Native_run.read_sym r "oom_count")

let test_jiffies_wraparound () =
  (* msleep and run_local_timers compare jiffies with the (j - w) sign
     trick; force a 32-bit wrap under a sleep *)
  let r = boot () in
  let mem = r.Native_run.plat.Tk_drivers.Platform.soc.Tk_machine.Soc.mem in
  let image = r.Native_run.plat.Tk_drivers.Platform.built.Tk_kernel.Image.image in
  let jaddr = Tk_isa.Asm.symbol image "jiffies" in
  Tk_machine.Mem.ram_write mem jaddr 4 0xFFFFFFFD;
  let t0 = Native_run.call r "ktime_get" [] in
  ignore (Native_run.call r "msleep" [ 3 ]);
  let t1 = Native_run.call r "ktime_get" [] in
  checkb "woke across the wrap" true (t1 - t0 >= 300_000);
  checkb "jiffies wrapped" true
    (Tk_machine.Mem.ram_read mem jaddr 4 < 0x1000)

let test_runtime_pm () =
  (* runtime PM co-exists with system suspend (§8): a runtime-suspended
     device is skipped by dpm_suspend and restored by dpm_resume *)
  let r = boot () in
  let bt = Tk_drivers.Platform.device r.Native_run.plat "bt" in
  ignore (Native_run.runtime_pm r "bt" `Suspend);
  checki "bt runtime-suspended" 0 (List.assoc "bt" (Native_run.device_states r));
  let cmds_before = bt.Tk_drivers.Device.cmds in
  let evs = Native_run.suspend_resume_cycle r in
  ignore evs;
  (* bt hardware saw its resume commands but not a second suspend *)
  checkb "bt skipped during dpm_suspend" true
    (bt.Tk_drivers.Device.cmds - cmds_before <= 3);
  List.iter (fun (n, s) -> checki (n ^ " on") 1 s) (Native_run.device_states r);
  (* plain runtime suspend/resume roundtrip *)
  ignore (Native_run.runtime_pm r "bt" `Suspend);
  ignore (Native_run.runtime_pm r "bt" `Resume);
  checki "bt back" 1 (List.assoc "bt" (Native_run.device_states r))

let test_image_stats () =
  let b = Tk_drivers.Platform.build_image () in
  let sizes = Tk_kernel.Image.layer_sizes b in
  List.iter
    (fun layer ->
      checkb
        (Tk_kernel.Image.layer_name layer ^ " nonempty")
        true
        (match List.assoc_opt layer sizes with Some s -> s > 0 | None -> false))
    [ Tk_kernel.Image.Kernel_service; Tk_kernel.Image.Kernel_lib;
      Tk_kernel.Image.Driver_lib; Tk_kernel.Image.Device_specific ];
  checkb "kernel has thousands of instructions" true
    (Tk_kernel.Image.instructions b > 3000)

let () =
  Alcotest.run "kernel"
    [ ( "boot",
        [ Alcotest.test_case "boots and ticks" `Quick test_boot;
          Alcotest.test_case "full suspend/resume cycle" `Quick
            test_suspend_resume_states ] );
      ( "deferred work",
        [ Alcotest.test_case "workqueue drain" `Quick test_workqueue;
          Alcotest.test_case "cancel_work" `Quick test_cancel_work;
          Alcotest.test_case "tasklet via softirqd" `Quick test_tasklet ] );
      ( "allocator",
        [ Alcotest.test_case "kmalloc/kfree" `Quick test_allocator_roundtrip;
          Alcotest.test_case "buddy pages" `Quick test_allocator_pages;
          Alcotest.test_case "oom slow path" `Quick test_allocator_oom ] );
      ( "locks",
        [ Alcotest.test_case "mutex" `Quick test_mutex;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "completion via threaded irq" `Quick
            test_completion_via_irq ] );
      ( "timers",
        [ Alcotest.test_case "kernel timer fires" `Quick test_ktimer;
          Alcotest.test_case "del_timer" `Quick test_del_timer;
          Alcotest.test_case "udelay/ktime" `Quick test_udelay_ktime ] );
      ( "image",
        [ Alcotest.test_case "layer inventory" `Quick test_image_stats ] );
      ( "runtime pm",
        [ Alcotest.test_case "co-exists with system suspend" `Quick
            test_runtime_pm ] );
      ( "properties",
        [ Alcotest.test_case "allocator under random workloads" `Slow
            test_allocator_property;
          Alcotest.test_case "jiffies wraparound" `Quick
            test_jiffies_wraparound ] ) ]
