(* The DBT engine: differential execution. Random straight-line guest
   code must produce identical architectural state when run natively on
   the simulated A9 and when translated and run on the simulated M3 —
   for every engine configuration. This is the §7.3 correctness
   methodology ("comparing execution results side-by-side with native
   execution") as a property test. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine
open Tk_dbt

let buf_base = 0x10500000
let buf_size = 16384
let buf_mid = buf_base + (buf_size / 2)

(* -------------------------- generators ------------------------------ *)

(* destination registers never include the memory base r8 / index r9 *)
let gen_rd = QCheck.Gen.oneofl [ 0; 1; 2; 3; 4; 5; 6; 7; 10 ]
let gen_rs = QCheck.Gen.oneofl [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
let gen_cond = QCheck.Gen.map cond_of_int (QCheck.Gen.int_range 0 14)

let gen_shift_kind =
  QCheck.Gen.map shift_kind_of_int (QCheck.Gen.int_range 0 3)

let gen_operand2 =
  let open QCheck.Gen in
  oneof
    [ map (fun v -> Imm v)
        (oneof
           [ int_range 0 255;
             map (fun b -> Bits.ror32 b 2) (int_range 0 255);
             map (fun b -> Bits.ror32 b 8) (int_range 0 255);
             map (fun b -> Bits.ror32 b 30) (int_range 0 255) ]);
      map (fun r -> Reg r) gen_rs;
      map3 (fun r k a -> Sreg (r, k, a)) gen_rs gen_shift_kind (int_range 0 31);
      map3 (fun r k rs -> Sregreg (r, k, rs)) gen_rs gen_shift_kind gen_rs ]

let gen_dp =
  let open QCheck.Gen in
  let* o = map dp_op_of_int (int_range 0 15) in
  let* s = bool in
  let* rd = gen_rd in
  let* rn = gen_rs in
  let* op2 = gen_operand2 in
  return (Dp (o, s, rd, rn, op2))

let gen_mem =
  let open QCheck.Gen in
  let* ld = bool in
  let* size = map mem_size_of_int (int_range 0 2) in
  let* rt = oneofl [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let* idx = oneofl [ Offset; Offset; Pre; Post ] in
  let* off =
    oneof
      [ (let* o = int_range (-64) 64 in
         return (Oimm (if idx = Offset then o * 8 else o)));
        (* r9 holds a small index set up by the harness *)
        map2 (fun k a -> Oreg (9, k, a)) (oneofl [ LSL; LSL; LSR ])
          (int_range 0 2) ]
  in
  return (Mem { ld; size; rt; rn = 8; off; idx })

let gen_misc =
  let open QCheck.Gen in
  oneof
    [ map2 (fun rd i -> Movw (rd, i)) gen_rd (int_range 0 0xFFFF);
      map2 (fun rd i -> Movt (rd, i)) gen_rd (int_range 0 0xFFFF);
      map3 (fun s rd (rn, rm) -> Mul (s, rd, rn, rm)) bool gen_rd
        (pair gen_rs gen_rs);
      map3 (fun rd rn rm -> Udiv (rd, rn, rm)) gen_rd gen_rs gen_rs;
      map2 (fun rd rm -> Clz (rd, rm)) gen_rd gen_rs;
      map2 (fun rd rm -> Rev (rd, rm)) gen_rd gen_rs;
      map2 (fun rd rm -> Sxt (Byte, rd, rm)) gen_rd gen_rs;
      map2 (fun rd rm -> Uxt (Half, rd, rm)) gen_rd gen_rs;
      map2 (fun rd rm -> Swp (rd, rm, 8)) gen_rd
        (oneofl [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
      (* push/pop over the test buffer *)
      map (fun regs -> Stm (8, true, List.sort_uniq compare regs))
        (list_size (int_range 1 4) (oneofl [ 0; 1; 2; 3; 4; 5; 6; 7 ]));
      map (fun regs -> Ldm (8, true, List.sort_uniq compare regs))
        (list_size (int_range 1 4) (oneofl [ 0; 1; 2; 3; 4; 5; 6; 7 ])) ]

let gen_inst =
  QCheck.Gen.map2
    (fun cond op -> { cond; op })
    gen_cond
    QCheck.Gen.(frequency [ (5, gen_dp); (3, gen_mem); (2, gen_misc) ])

let gen_program = QCheck.Gen.list_size (QCheck.Gen.int_range 4 24) gen_inst

let arb_program =
  QCheck.make
    ~print:(fun l -> String.concat "\n" (List.map to_string l))
    gen_program

(* --------------------------- harnesses ------------------------------ *)

let build_image prog =
  let items = List.map (fun i -> Asm.Ins i) prog @ [ Asm.Ins (at (Bx lr)) ] in
  Asm.link ~base:Soc.kernel_base [ { Asm.name = "testfn"; items } ] []

let fill_buffer soc =
  for i = 0 to (buf_size / 4) - 1 do
    Mem.ram_write soc.Soc.mem (buf_base + (4 * i)) 4
      ((i * 2654435761) land 0xFFFFFFFF)
  done

let seed_regs set =
  set 0 0x12345678;
  set 1 0xFFFFFFF0;
  set 2 17;
  set 3 0x80000000;
  set 4 3;
  set 5 0xCAFEBABE;
  set 6 0;
  set 7 0x7FFFFFFF;
  set 8 buf_mid;
  set 9 6;
  set 10 0x0BADF00D

type result = { regs : int array; flags : int; digest : int }

let run_native prog =
  let soc = Soc.create () in
  let image = build_image prog in
  Mem.load_image soc.Soc.mem image;
  fill_buffer soc;
  let interp = Interp.create ~soc () in
  let stop = ref false in
  interp.Interp.on_svc <- (fun _ _ _ -> stop := true);
  let cpu = interp.Interp.cpu in
  seed_regs (fun i v -> cpu.Exec.r.(i) <- Bits.mask32 v);
  (* return lands on a stub we place via lr = an SVC in spare RAM *)
  let stub = Soc.kernel_base + (4 * Array.length image.Asm.words) + 64 in
  Mem.ram_write soc.Soc.mem stub 4 (V7a.encode_exn (at (Svc 0)));
  cpu.Exec.r.(Types.lr) <- stub;
  Interp.set_pc interp (Asm.symbol image "testfn");
  (try
     while not !stop do
       Interp.step interp
     done
   with e -> Alcotest.failf "native: %s" (Printexc.to_string e));
  { regs = Array.copy cpu.Exec.r;
    flags = Exec.flags_word cpu;
    digest = Mem.digest soc.Soc.mem ~lo:buf_base ~hi:(buf_base + buf_size) }

let run_dbt mode prog =
  let soc = Soc.create () in
  let image = build_image prog in
  Mem.load_image soc.Soc.mem image;
  fill_buffer soc;
  let engine = Engine.create ~soc ~mode () in
  let cpu = Exec.make_cpu () in
  (match mode with
  | Translator.Ark ->
    seed_regs (fun i v ->
        if i = 10 then Engine.set_guest_reg engine cpu 10 v
        else cpu.Exec.r.(i) <- Bits.mask32 v);
    cpu.Exec.r.(Types.lr) <- Layout.exit_magic
  | Translator.Mid | Translator.Baseline ->
    cpu.Exec.r.(11) <- Layout.env_base;
    seed_regs (fun i v -> Engine.set_guest_reg engine cpu i v);
    Engine.set_guest_reg engine cpu Types.lr Layout.exit_magic);
  cpu.Exec.r.(Types.pc) <-
    Engine.entry_host engine (Asm.symbol image "testfn");
  (try Engine.run engine cpu ~fuel:5_000_000
   with
  | Engine.Context_exit -> ()
  | e -> Alcotest.failf "dbt: %s" (Printexc.to_string e));
  let regs = Array.init 16 (fun i -> Engine.guest_reg engine cpu i) in
  { regs;
    flags =
      (match mode with
      | Translator.Baseline ->
        Mem.ram_read soc.Soc.mem Layout.env_guest_flags 4
      | _ -> Exec.flags_word cpu);
    digest = Mem.digest soc.Soc.mem ~lo:buf_base ~hi:(buf_base + buf_size) }

let differ mode prog =
  let n = run_native prog in
  let d = run_dbt mode prog in
  let mismatch = ref [] in
  for i = 0 to 10 do
    (* r11 is mode-reserved, r12 is the documented dead register,
       r13/r14/r15 are control state *)
    if n.regs.(i) <> d.regs.(i) then
      mismatch := Printf.sprintf "r%d: native=0x%x dbt=0x%x" i n.regs.(i)
                    d.regs.(i)
                  :: !mismatch
  done;
  if n.flags <> d.flags then
    mismatch := Printf.sprintf "flags: 0x%x vs 0x%x" n.flags d.flags :: !mismatch;
  if n.digest <> d.digest then mismatch := "memory digest differs" :: !mismatch;
  if !mismatch <> [] then
    QCheck.Test.fail_reportf "mode mismatch:\n%s"
      (String.concat "\n" !mismatch)
  else true

(* filter shapes each mode's translator legitimately rejects *)
let translatable mode prog =
  List.for_all
    (fun i ->
      (match i.op with
      | Mem { ld = true; rt; rn; idx = Pre | Post; _ } -> rt <> rn
      | _ -> true)
      &&
      match mode with
      | Translator.Mid ->
        (* Mid reserves r10 (scratch) and r11 (env base) *)
        (not (List.mem 10 (regs_read i)))
        && not (List.mem 10 (regs_written i))
      | Translator.Ark | Translator.Baseline -> true)
    prog

let prop_mode name mode =
  QCheck.Test.make ~count:300 ~name arb_program (fun prog ->
      QCheck.assume (translatable mode prog);
      differ mode prog)

(* ------------------------- unit tests ------------------------------- *)

let test_patching () =
  (* a call-and-return pair exercises S_call patching and host returns *)
  let callee =
    { Asm.name = "callee";
      items =
        [ Asm.Ins (at (Dp (ADD, false, 0, 0, Imm 1))); Asm.Ins (at (Bx lr)) ] }
  in
  let caller =
    { Asm.name = "caller";
      items =
        [ Asm.Ins (at (Stm (Types.sp, true, [ 4; Types.lr ])));
          Asm.Call "callee";
          Asm.Call "callee";
          Asm.Ins (at (Ldm (Types.sp, true, [ 4; Types.pc ]))) ] }
  in
  let soc = Soc.create () in
  let image = Asm.link ~base:Soc.kernel_base [ caller; callee ] [] in
  Mem.load_image soc.Soc.mem image;
  let engine = Engine.create ~soc ~mode:Translator.Ark () in
  let run () =
    let cpu = Exec.make_cpu () in
    cpu.Exec.r.(0) <- 40;
    cpu.Exec.r.(Types.sp) <- Soc.stack_top 8;
    cpu.Exec.r.(Types.lr) <- Layout.exit_magic;
    cpu.Exec.r.(Types.pc) <- Engine.entry_host engine (Asm.symbol image "caller");
    (try Engine.run engine cpu ~fuel:100000 with Engine.Context_exit -> ());
    cpu.Exec.r.(0)
  in
  Alcotest.(check int) "first run" 42 (run ());
  let patches_after_first = engine.Engine.patches in
  Alcotest.(check int) "second run" 42 (run ());
  Alcotest.(check int) "no repatching on warm code" patches_after_first
    engine.Engine.patches;
  Alcotest.(check bool) "call sites were patched" true
    (patches_after_first >= 2)

let test_loop_translation () =
  (* a counted loop: exercises conditional branches and chaining *)
  let frag =
    { Asm.name = "loopfn";
      items =
        [ Asm.Ins (at (Movw (0, 0)));
          Asm.Ins (at (Movw (1, 100)));
          Asm.Label ".top";
          Asm.Ins (at (Dp (ADD, false, 0, 0, Imm 3)));
          Asm.Ins (at (Dp (SUB, true, 1, 1, Imm 1)));
          Asm.Bcc (NE, ".top");
          Asm.Ins (at (Bx Types.lr)) ] }
  in
  let soc = Soc.create () in
  let image = Asm.link ~base:Soc.kernel_base [ frag ] [] in
  Mem.load_image soc.Soc.mem image;
  let engine = Engine.create ~soc ~mode:Translator.Ark () in
  let cpu = Exec.make_cpu () in
  cpu.Exec.r.(Types.lr) <- Layout.exit_magic;
  cpu.Exec.r.(Types.pc) <- Engine.entry_host engine (Asm.symbol image "loopfn");
  (try Engine.run engine cpu ~fuel:100000 with Engine.Context_exit -> ());
  Alcotest.(check int) "loop result" 300 cpu.Exec.r.(0)

let test_indirect_call () =
  let callee =
    { Asm.name = "cal2";
      items =
        [ Asm.Ins (at (Dp (MOV, false, 0, 0, Imm 99))); Asm.Ins (at (Bx Types.lr)) ] }
  in
  let caller =
    { Asm.name = "icaller";
      items =
        [ Asm.Ins (at (Stm (Types.sp, true, [ 4; Types.lr ])));
          Asm.Adr (3, "cal2");
          Asm.Ins (at (Blx_r 3));
          Asm.Ins (at (Ldm (Types.sp, true, [ 4; Types.pc ]))) ] }
  in
  let soc = Soc.create () in
  let image = Asm.link ~base:Soc.kernel_base [ caller; callee ] [] in
  Mem.load_image soc.Soc.mem image;
  let engine = Engine.create ~soc ~mode:Translator.Ark () in
  let cpu = Exec.make_cpu () in
  cpu.Exec.r.(Types.sp) <- Soc.stack_top 8;
  cpu.Exec.r.(Types.lr) <- Layout.exit_magic;
  cpu.Exec.r.(Types.pc) <- Engine.entry_host engine (Asm.symbol image "icaller");
  (try Engine.run engine cpu ~fuel:100000 with Engine.Context_exit -> ());
  Alcotest.(check int) "indirect call result" 99 cpu.Exec.r.(0)

let () =
  Alcotest.run "dbt"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest
            (prop_mode "ark = native (random code)" Translator.Ark);
          QCheck_alcotest.to_alcotest
            (prop_mode "mid = native (random code)" Translator.Mid);
          QCheck_alcotest.to_alcotest
            (prop_mode "baseline = native (random code)" Translator.Baseline) ] );
      ( "engine",
        [ Alcotest.test_case "call-site patching" `Quick test_patching;
          Alcotest.test_case "loop chaining" `Quick test_loop_translation;
          Alcotest.test_case "indirect calls" `Quick test_indirect_call ] ) ]
