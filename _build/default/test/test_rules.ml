(* Translation rules: agreement with the ISA spec (Table 3), host
   encodability of every amendment sequence, host-count ranges. *)

open Tk_isa
open Tk_dbt

let checki = Alcotest.(check int)

(* every implemented spec form must classify into its declared category *)
let test_classify_agrees_with_spec () =
  List.iter
    (fun (f : Spec.form) ->
      match f.repr with
      | None -> ()
      | Some i -> (
        match Rules.classify i with
        | cat, _ ->
          Alcotest.(check string)
            (Printf.sprintf "category of %s" f.fname)
            (Spec.category_name f.category) (Spec.category_name cat)
        | exception Rules.Untranslatable _ ->
          (* the spec's no-counterpart bucket includes instructions ARK
             sends to fallback *)
          Alcotest.(check string)
            (Printf.sprintf "%s falls back" f.fname)
            (Spec.category_name Spec.No_counterpart)
            (Spec.category_name f.category)))
    Spec.implemented_forms

(* every emitted amendment sequence must encode in V7M *)
let test_amendments_encode () =
  List.iter
    (fun (f : Spec.form) ->
      match f.repr with
      | None -> ()
      | Some i -> (
        match Rules.legalize ~gpc:0x10010000 i with
        | _, hosts -> Rules.check_encodable hosts
        | exception Rules.Untranslatable _ -> ()))
    Spec.implemented_forms

(* host counts stay within the Table 3 column-3 ranges *)
let test_host_count_ranges () =
  List.iter
    (fun (f : Spec.form) ->
      match f.repr with
      | None -> ()
      | Some i -> (
        match Rules.classify i with
        | cat, n ->
          let lo, hi = Spec.host_range cat in
          if n < lo || n > hi then
            Alcotest.failf "%s: %d hosts outside %d..%d (%s)" f.fname n lo hi
              (Spec.category_name cat)
        | exception Rules.Untranslatable _ -> ()))
    Spec.implemented_forms

(* the paper's Table 4 examples *)
let test_table4_g1 () =
  (* ldr r0, [r1], r2, lsr #4  ->  ldr + lsr + add (3 hosts) *)
  let g1 =
    Types.at
      (Types.Mem
         { ld = true; size = Types.Word; rt = 0; rn = 1;
           off = Types.Oreg (2, Types.LSR, 4); idx = Types.Post })
  in
  let cat, hosts = Rules.legalize ~gpc:0x10010000 g1 in
  Alcotest.(check string)
    "category" "Side effect" (Spec.category_name cat);
  checki "3 hosts" 3 (List.length hosts)

let test_table4_g2 () =
  (* adds r0, r1, #0x80000001 -> mov + ror + adds (3 hosts; the paper's
     pair-of-amendments case) *)
  let g2 =
    Types.at (Types.Dp (Types.ADD, true, 0, 1, Types.Imm 0x80000001))
  in
  let cat, hosts = Rules.legalize ~gpc:0x10010000 g2 in
  Alcotest.(check string)
    "category" "Const constraints" (Spec.category_name cat);
  checki "3 hosts" 3 (List.length hosts);
  (* and the amendments must not set flags *)
  List.iteri
    (fun n h ->
      match h.Types.op with
      | Types.Dp (_, s, _, _, _) when n < 2 ->
        Alcotest.(check bool) "amendment sets no flags" false s
      | _ -> ())
    hosts

let test_table4_g3 () =
  (* sub r0, r1, r2 -> identity *)
  let g3 = Types.at (Types.Dp (Types.SUB, false, 0, 1, Types.Reg 2)) in
  let cat, hosts = Rules.legalize ~gpc:0x10010000 g3 in
  Alcotest.(check string) "identity" "Identity" (Spec.category_name cat);
  checki "1 host" 1 (List.length hosts)

(* identity fraction over the implemented spec must be ~80% of the FULL
   558-form spec when spec-only multiplicities are included *)
let test_identity_fraction () =
  let identity = Spec.count Spec.Identity in
  let frac = float_of_int identity /. float_of_int Spec.total in
  if frac < 0.78 || frac > 0.82 then
    Alcotest.failf "identity fraction %.3f outside [0.78, 0.82]" frac

(* guest r10 emulation wrap *)
let test_r10_wrap () =
  let i = Types.at (Types.Dp (Types.ADD, false, 10, 10, Types.Imm 1)) in
  let _, hosts = Rules.legalize ~gpc:0x10010000 i in
  (* load r10 from env (3) + add (1) + store back (3) *)
  checki "r10 wrap length" 7 (List.length hosts);
  Rules.check_encodable hosts

(* pc-relative reads become materialized constants *)
let test_pc_read () =
  let i = Types.at (Types.Dp (Types.ADD, false, 0, Types.pc, Types.Imm 16)) in
  let cat, hosts = Rules.legalize ~gpc:0x10010000 i in
  Alcotest.(check string)
    "const category" "Const constraints" (Spec.category_name cat);
  Rules.check_encodable hosts;
  (* executing the hosts must yield pc+8+16 *)
  let cpu = Exec.make_cpu () in
  let env =
    { Exec.load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
      svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
      undef = (fun _ _ -> ()) }
  in
  List.iter (fun h -> ignore (Exec.step cpu env ~addr:0 h)) hosts;
  checki "pc-relative value" (0x10010000 + 8 + 16) cpu.Exec.r.(0)

let test_materialize () =
  List.iter
    (fun v ->
      let hosts = Rules.materialize ~cond:Types.AL 3 v in
      Rules.check_encodable hosts;
      let cpu = Exec.make_cpu () in
      let env =
        { Exec.load = (fun _ _ -> 0); store = (fun _ _ _ -> ());
          svc = (fun _ _ -> ()); wfi = (fun _ -> ()); irq_ret = (fun _ -> ());
          undef = (fun _ _ -> ()) }
      in
      List.iter (fun h -> ignore (Exec.step cpu env ~addr:0 h)) hosts;
      checki (Printf.sprintf "materialize 0x%x" v) (Bits.mask32 v)
        cpu.Exec.r.(3))
    [ 0; 1; 0xFF; 0x80000001; 0xDEADBEEF; 0xFFFF; 0x10000; -1; 0x3FC00;
      0xC0000000; 0x00FF00FF ]

let () =
  Alcotest.run "rules"
    [ ( "table3",
        [ Alcotest.test_case "classifier agrees with spec" `Quick
            test_classify_agrees_with_spec;
          Alcotest.test_case "amendments encode in v7m" `Quick
            test_amendments_encode;
          Alcotest.test_case "host counts in range" `Quick
            test_host_count_ranges;
          Alcotest.test_case "identity fraction ~80%" `Quick
            test_identity_fraction ] );
      ( "table4",
        [ Alcotest.test_case "G1 post-indexed shift" `Quick test_table4_g1;
          Alcotest.test_case "G2 constant constraint" `Quick test_table4_g2;
          Alcotest.test_case "G3 identity" `Quick test_table4_g3 ] );
      ( "amendments",
        [ Alcotest.test_case "guest r10 emulation" `Quick test_r10_wrap;
          Alcotest.test_case "pc-relative reads" `Quick test_pc_read;
          Alcotest.test_case "constant materialization" `Quick
            test_materialize ] ) ]
