(* Platform simulator: clock, caches, interrupt fabric, memory, timers. *)

open Tk_machine

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_clock_ordering () =
  let c = Clock.create () in
  let log = ref [] in
  let _c1 : unit -> unit = Clock.at c 100 (fun () -> log := 1 :: !log) in
  let _c2 : unit -> unit = Clock.at c 50 (fun () -> log := 2 :: !log) in
  let _c3 : unit -> unit = Clock.at c 100 (fun () -> log := 3 :: !log) in
  Clock.advance c 100;
  Alcotest.(check (list int)) "fires in time order, FIFO on ties" [ 2; 1; 3 ]
    (List.rev !log)

let test_clock_cancel () =
  let c = Clock.create () in
  let fired = ref false in
  let cancel = Clock.at c 10 (fun () -> fired := true) in
  cancel ();
  Clock.advance c 100;
  checkb "cancelled event does not fire" false !fired

let test_clock_skip () =
  let c = Clock.create () in
  let fired = ref false in
  let _c : unit -> unit = Clock.at c 500 (fun () -> fired := true) in
  (match Clock.skip_to_next_event c with
  | Some skipped -> checki "skips 500ns" 500 skipped
  | None -> Alcotest.fail "expected an event");
  checkb "event fired" true !fired;
  checkb "no more events" true (Clock.skip_to_next_event c = None)

let test_cache_basic () =
  let cache = Cache.create ~name:"t" ~size_kb:1 ~miss_penalty:10 in
  checki "first access misses" 10 (Cache.access cache ~write:false 0x1000);
  checki "second access hits" 0 (Cache.access cache ~write:false 0x1000);
  checki "same line hits" 0 (Cache.access cache ~write:false 0x101C);
  (* 1 KB direct-mapped = 32 sets; +32*32 bytes conflicts *)
  checki "conflicting line misses" 10 (Cache.access cache ~write:false 0x1400);
  checki "original evicted" 10 (Cache.access cache ~write:false 0x1000)

let test_cache_writeback () =
  let cache = Cache.create ~name:"t" ~size_kb:1 ~miss_penalty:10 in
  ignore (Cache.access cache ~write:true 0x1000);
  let wr0 = cache.Cache.wr_bytes in
  ignore (Cache.access cache ~write:false 0x1400);
  checki "dirty eviction writes back a line" 32 (cache.Cache.wr_bytes - wr0);
  let flushed = Cache.flush cache in
  checkb "flush reports dirty lines" true (flushed >= 0);
  checki "flush invalidates" 10 (Cache.access cache ~write:false 0x1400)

let test_fabric_routing () =
  let soc = Soc.create () in
  let fab = soc.Soc.fabric in
  (* a device line routes to both controllers with different numbers *)
  let line = Soc.dev_irq 0 in
  Intc.enable fab.Intc.gic line true;
  Intc.raise_line fab line;
  checkb "gic sees it" true (Intc.highest fab.Intc.gic = Some line);
  let nline = match fab.Intc.route line with Some n -> n | None -> -1 in
  checkb "routed to nvic" true (nline >= 0);
  checkb "different line number" true (nline <> line);
  checki "reverse route" line (fab.Intc.reverse_route nline);
  (* a CPU-only line does not reach the NVIC *)
  checkb "timer line unrouted" true (fab.Intc.route Soc.irq_cpu_timer = None)

let test_intc_ack_eoi () =
  let ic = Intc.create ~name:"t" ~nlines:8 in
  Intc.enable ic 3 true;
  Intc.enable ic 5 true;
  Intc.set_pending ic 5;
  Intc.set_pending ic 3;
  checki "lowest line first" 3 (Intc.ack ic);
  checkb "in service masks others" true (Intc.highest ic = None);
  Intc.eoi ic 3;
  checki "next pending" 5 (Intc.ack ic);
  Intc.eoi ic 5;
  checki "spurious" 1023 (Intc.ack ic)

let test_gic_mmio () =
  let soc = Soc.create () in
  let base = Soc.gic_base in
  Mem.write soc.Soc.mem (base + Intc.enable_set_off) 4 7;
  checkb "enabled via mmio" true soc.Soc.fabric.Intc.gic.Intc.enabled.(7);
  Intc.set_pending soc.Soc.fabric.Intc.gic 7;
  checki "IAR acks" 7 (Mem.read soc.Soc.mem (base + Intc.iar_off) 4);
  Mem.write soc.Soc.mem (base + Intc.eoi_off) 4 7;
  checkb "after eoi nothing in service" true
    (soc.Soc.fabric.Intc.gic.Intc.in_service = None)

let test_mem_bounds () =
  let soc = Soc.create () in
  Mem.write soc.Soc.mem Soc.ram_base 4 0xDEADBEEF;
  checki "ram roundtrip" 0xDEADBEEF (Mem.read soc.Soc.mem Soc.ram_base 4);
  Mem.write soc.Soc.mem (Soc.ram_base + 5) 1 0xFF;
  checki "byte write" 0xFF (Mem.read soc.Soc.mem (Soc.ram_base + 5) 1);
  (match Mem.read soc.Soc.mem 0x60000000 4 with
  | _ -> Alcotest.fail "expected bus fault"
  | exception Mem.Bus_fault _ -> ())

let test_dma_counters () =
  let soc = Soc.create () in
  let before = soc.Soc.mem.Mem.dma_read_bytes in
  ignore (Mem.dma_read soc.Soc.mem Soc.ram_base 128);
  checki "dma read counted" 128 (soc.Soc.mem.Mem.dma_read_bytes - before);
  Mem.dma_write soc.Soc.mem Soc.ram_base [ 1; 2; 3 ];
  checki "dma write landed" 1 (Mem.read soc.Soc.mem Soc.ram_base 1)

let test_timer_tick () =
  let soc = Soc.create () in
  Timer.start_tick soc.Soc.cpu_timer 1000;
  Clock.advance soc.Soc.clock 3500;
  checkb "tick raised the line" true
    soc.Soc.fabric.Intc.gic.Intc.pending.(Soc.irq_cpu_timer);
  Timer.stop_tick soc.Soc.cpu_timer;
  Intc.clear_pending soc.Soc.fabric.Intc.gic Soc.irq_cpu_timer;
  Clock.advance soc.Soc.clock 5000;
  checkb "stopped tick stays quiet" false
    soc.Soc.fabric.Intc.gic.Intc.pending.(Soc.irq_cpu_timer)

let test_core_accounting () =
  let soc = Soc.create () in
  let cpu = soc.Soc.cpu in
  Core.charge cpu 1200;  (* 1200 cycles at 1.2 GHz = 1 us *)
  checkb "busy ~1us" true
    (let ns = Core.busy_ns cpu in ns >= 995 && ns <= 1000);
  let _c : unit -> unit =
    Clock.at soc.Soc.clock (soc.Soc.clock.Clock.now + 5000) (fun () -> ())
  in
  checkb "idles to event" true (Core.idle_until_event cpu);
  checki "idle ns" 5000 (Core.idle_ns cpu)

let test_cpi_model () =
  let soc = Soc.create () in
  let m3 = soc.Soc.m3 in
  let total = ref 0 in
  for _ = 1 to 3000 do
    total := !total + Core.instr_cycles m3
  done;
  (* m3 CPI = 1 + 4/3 = 2.33 *)
  let cpi = float_of_int !total /. 3000.0 in
  checkb "m3 CPI ~2.33" true (cpi > 2.3 && cpi < 2.4);
  checki "a9 CPI exactly 1" 1 (Core.instr_cycles soc.Soc.cpu)

let test_device_model () =
  let soc = Soc.create () in
  let d =
    Tk_drivers.Device.create soc ~name:"t" ~index:0 ~suspend_us:10
      ~resume_us:20 ()
  in
  let base = Soc.dev_base 0 in
  Mem.write soc.Soc.mem (base + Tk_drivers.Device.r_cmd) 4 1;
  checki "busy during transition" 3 (Mem.read soc.Soc.mem base 4);
  Clock.advance soc.Soc.clock 11_000;
  (* power_on cleared, cmd_done set *)
  checki "suspended" 4 (Mem.read soc.Soc.mem base 4);
  ignore d

let test_device_glitch () =
  let soc = Soc.create () in
  let d =
    Tk_drivers.Device.create soc ~name:"t" ~index:0 ~suspend_us:10
      ~resume_us:20 ()
  in
  d.Tk_drivers.Device.power_on <- false;
  d.Tk_drivers.Device.glitch_next_resume <- true;
  let base = Soc.dev_base 0 in
  Mem.write soc.Soc.mem (base + Tk_drivers.Device.r_cmd) 4 2;
  Clock.advance soc.Soc.clock 100_000;
  checki "wedged: busy forever, no done" 2 (Mem.read soc.Soc.mem base 4);
  checki "glitch consumed" 1 d.Tk_drivers.Device.glitches_hit

(* property: events always fire in nondecreasing time order *)
let prop_clock_order =
  QCheck.Test.make ~count:200 ~name:"clock fires in time order"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_bound 10_000))
    (fun times ->
      let c = Clock.create () in
      let fired = ref [] in
      List.iter
        (fun at ->
          let _cancel : unit -> unit =
            Clock.at c at (fun () -> fired := at :: !fired)
          in
          ())
        times;
      Clock.advance c 20_000;
      let got = List.rev !fired in
      got = List.sort compare times && List.length got = List.length times)

(* property: a second access to the same line always hits if nothing
   conflicting intervened *)
let prop_cache_rehit =
  QCheck.Test.make ~count:200 ~name:"cache re-hit"
    QCheck.(int_bound 0xFFFFF)
    (fun addr ->
      let cache = Cache.create ~name:"p" ~size_kb:4 ~miss_penalty:7 in
      ignore (Cache.access cache ~write:false addr);
      Cache.access cache ~write:false (addr lxor 3) = 0)

let () =
  Alcotest.run "machine"
    [ ( "clock",
        [ Alcotest.test_case "event ordering" `Quick test_clock_ordering;
          Alcotest.test_case "cancellation" `Quick test_clock_cancel;
          Alcotest.test_case "skip to next event" `Quick test_clock_skip ] );
      ( "cache",
        [ Alcotest.test_case "hits and conflicts" `Quick test_cache_basic;
          Alcotest.test_case "writeback traffic" `Quick test_cache_writeback ] );
      ( "interrupts",
        [ Alcotest.test_case "fabric routing" `Quick test_fabric_routing;
          Alcotest.test_case "ack/eoi protocol" `Quick test_intc_ack_eoi;
          Alcotest.test_case "gic mmio interface" `Quick test_gic_mmio ] );
      ( "memory",
        [ Alcotest.test_case "ram and faults" `Quick test_mem_bounds;
          Alcotest.test_case "dma traffic" `Quick test_dma_counters ] );
      ( "timers", [ Alcotest.test_case "periodic tick" `Quick test_timer_tick ] );
      ( "cores",
        [ Alcotest.test_case "busy/idle accounting" `Quick
            test_core_accounting;
          Alcotest.test_case "fractional CPI" `Quick test_cpi_model ] );
      ( "devices",
        [ Alcotest.test_case "power transitions" `Quick test_device_model;
          Alcotest.test_case "glitch injection" `Quick test_device_glitch ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_clock_order;
          QCheck_alcotest.to_alcotest prop_cache_rehit ] ) ]
